package uspace

import (
	"bytes"
	"errors"
	"testing"

	"unicore/internal/sim"
	"unicore/internal/vfs"
)

func newSpace(t *testing.T) *Space {
	t.Helper()
	fs := vfs.New(sim.NewVirtualClock())
	s, err := New(fs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateJobDir(t *testing.T) {
	s := newSpace(t)
	dir, err := s.CreateJobDir("FZJ-000001")
	if err != nil {
		t.Fatal(err)
	}
	if dir != "/uspace/FZJ-000001" {
		t.Fatalf("dir = %q", dir)
	}
	if _, err := s.CreateJobDir("FZJ-000001"); !errors.Is(err, ErrJobExists) {
		t.Fatalf("duplicate job dir: %v", err)
	}
}

func TestImportInlineAndRead(t *testing.T) {
	s := newSpace(t)
	_, _ = s.CreateJobDir("J1")
	data := []byte("workstation payload")
	if err := s.ImportInline("J1", "in/data.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadJobFile("J1", "in/data.txt")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestImportXspaceIsLocalCopy(t *testing.T) {
	s := newSpace(t)
	_, _ = s.CreateJobDir("J1")
	if err := s.WriteXspace("/home/alice/in.dat", []byte("xdata")); err != nil {
		t.Fatal(err)
	}
	if err := s.ImportXspace("J1", "in.dat", "/home/alice/in.dat"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.ReadJobFile("J1", "in.dat")
	if string(got) != "xdata" {
		t.Fatalf("imported = %q", got)
	}
	// The original must be untouched (copy, not move).
	orig, err := s.ReadXspace("/home/alice/in.dat")
	if err != nil || string(orig) != "xdata" {
		t.Fatalf("original = %q, %v", orig, err)
	}
}

func TestExport(t *testing.T) {
	s := newSpace(t)
	_, _ = s.CreateJobDir("J1")
	_ = s.WriteJobFile("J1", "result.dat", []byte("results"))
	fi, err := s.Export("J1", "result.dat", "/home/alice/results/r.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 7 {
		t.Fatalf("exported info = %+v", fi)
	}
	got, _ := s.ReadXspace("/home/alice/results/r.dat")
	if string(got) != "results" {
		t.Fatalf("exported = %q", got)
	}
}

func TestEscapeRejected(t *testing.T) {
	s := newSpace(t)
	_, _ = s.CreateJobDir("J1")
	_, _ = s.CreateJobDir("J2")
	_ = s.WriteJobFile("J2", "secret.txt", []byte("other job's data"))

	cases := []string{"../J2/secret.txt", "../../home/alice/x", "/etc/passwd"}
	for _, rel := range cases {
		if err := s.ImportInline("J1", rel, []byte("x")); !errors.Is(err, ErrEscape) {
			t.Errorf("ImportInline(%q) err = %v, want ErrEscape", rel, err)
		}
		if _, err := s.ReadJobFile("J1", rel); !errors.Is(err, ErrEscape) {
			t.Errorf("ReadJobFile(%q) err = %v, want ErrEscape", rel, err)
		}
	}
	// Export destinations are confined inside the Xspace: a path that looks
	// like another job's Uspace is re-rooted under the Xspace, never written
	// to the real Uspace tree.
	_ = s.WriteJobFile("J1", "f", []byte("x"))
	if _, err := s.Export("J1", "f", "/uspace/J2/steal"); err != nil {
		t.Errorf("confined export failed: %v", err)
	}
	if s.FS().Exists("/uspace/J2/steal") {
		t.Error("export escaped into the Uspace tree")
	}
	if !s.FS().Exists("/home/uspace/J2/steal") {
		t.Error("confined export did not land under the Xspace root")
	}
	// Import sources are confined the same way: the other job's real Uspace
	// file is unreachable (the confined path simply does not exist).
	if err := s.ImportXspace("J1", "f2", "/uspace/J2/secret.txt"); err == nil {
		t.Error("import reached another job's Uspace")
	}
	if data, err := s.ReadJobFile("J1", "f2"); err == nil {
		t.Errorf("leaked data: %q", data)
	}
	// The empty Xspace path is rejected outright.
	if _, err := s.Export("J1", "f", ""); !errors.Is(err, ErrEscape) {
		t.Errorf("empty Xspace path: %v", err)
	}
}

func TestMissingJobDir(t *testing.T) {
	s := newSpace(t)
	if err := s.ImportInline("GHOST", "f", []byte("x")); !errors.Is(err, ErrNoJobDir) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.ListJobFiles("GHOST"); !errors.Is(err, ErrNoJobDir) {
		t.Fatalf("list err = %v", err)
	}
}

func TestRemoveJobDir(t *testing.T) {
	s := newSpace(t)
	_, _ = s.CreateJobDir("J1")
	_ = s.WriteJobFile("J1", "f", []byte("x"))
	if err := s.RemoveJobDir("J1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadJobFile("J1", "f"); !errors.Is(err, ErrNoJobDir) {
		t.Fatalf("read after remove: %v", err)
	}
	// Removing again is a no-op.
	if err := s.RemoveJobDir("J1"); err != nil {
		t.Fatal(err)
	}
}

func TestListJobFiles(t *testing.T) {
	s := newSpace(t)
	_, _ = s.CreateJobDir("J1")
	_ = s.WriteJobFile("J1", "a.txt", []byte("1"))
	_ = s.WriteJobFile("J1", "sub/b.txt", []byte("22"))
	files, err := s.ListJobFiles("J1")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("%d files", len(files))
	}
	if files[0].Path != "/uspace/J1/a.txt" || files[1].Path != "/uspace/J1/sub/b.txt" {
		t.Fatalf("files = %+v", files)
	}
}

func TestStatJobFile(t *testing.T) {
	s := newSpace(t)
	_, _ = s.CreateJobDir("J1")
	_ = s.WriteJobFile("J1", "f", []byte("abc"))
	fi, err := s.StatJobFile("J1", "f")
	if err != nil || fi.Size != 3 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
}

func TestCustomRoots(t *testing.T) {
	fs := vfs.New(sim.NewVirtualClock())
	s, err := New(fs, WithRoots("/data/home", "/data/uspace"))
	if err != nil {
		t.Fatal(err)
	}
	if s.XspaceRoot() != "/data/home" {
		t.Fatalf("xspace root = %q", s.XspaceRoot())
	}
	dir, _ := s.CreateJobDir("J")
	if dir != "/data/uspace/J" {
		t.Fatalf("job dir = %q", dir)
	}
	if err := s.WriteXspace("/data/home/u/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A path under the *default* root is confined under the custom root
	// rather than escaping to it.
	if err := s.WriteXspace("/home/u/f", []byte("x")); err != nil {
		t.Fatalf("confined write failed: %v", err)
	}
	if fs.Exists("/home/u/f") {
		t.Fatal("write escaped the custom Xspace root")
	}
	if !fs.Exists("/data/home/home/u/f") {
		t.Fatal("confined write did not land under the custom root")
	}
}

func TestTransferBetweenSpaces(t *testing.T) {
	// Simulates the §5.6 Uspace→Uspace transfer at the data layer: read at
	// the source Vsite, write at the destination Vsite.
	src := newSpace(t)
	dst := newSpace(t)
	_, _ = src.CreateJobDir("S")
	_, _ = dst.CreateJobDir("D")
	_ = src.WriteJobFile("S", "stage1.out", []byte("intermediate"))
	data, err := src.ReadJobFile("S", "stage1.out")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteJobFile("D", "stage1.out", data); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.ReadJobFile("D", "stage1.out")
	if string(got) != "intermediate" {
		t.Fatalf("transferred = %q", got)
	}
}
