// Package uspace implements UNICORE's data model (paper §4, §5.6): the
// distinction between data inside UNICORE (the Uspace — per-job directories)
// and outside (the Xspace — the file systems of the Vsite — and the user's
// workstation). Imports move data into a job's Uspace, exports move results
// to the Xspace, and transfers move files between the Uspaces of different
// jobs (the NJS performs the cross-site variant via its peer, §5.6).
//
// One Space manages both trees on a Vsite's shared file system, because "a
// Vsite consists of systems at one Usite sharing the same data space".
package uspace

import (
	"errors"
	"fmt"
	"path"
	"strings"

	"unicore/internal/core"
	"unicore/internal/vfs"
)

// Errors reported by space operations.
var (
	ErrEscape    = errors.New("uspace: path escapes its space")
	ErrNoJobDir  = errors.New("uspace: job directory does not exist")
	ErrJobExists = errors.New("uspace: job directory already exists")
)

// Space is the data space of one Vsite.
type Space struct {
	fs         *vfs.FS
	xspaceRoot string
	uspaceRoot string
}

// Option configures a Space.
type Option func(*Space)

// WithRoots overrides the default /home (Xspace) and /uspace roots.
func WithRoots(xspace, uspaceRoot string) Option {
	return func(s *Space) {
		s.xspaceRoot = xspace
		s.uspaceRoot = uspaceRoot
	}
}

// New creates a Space on fs, creating both roots.
func New(fs *vfs.FS, opts ...Option) (*Space, error) {
	s := &Space{fs: fs, xspaceRoot: "/home", uspaceRoot: "/uspace"}
	for _, o := range opts {
		o(s)
	}
	if err := fs.MkdirAll(s.xspaceRoot); err != nil {
		return nil, fmt.Errorf("uspace: creating Xspace root: %w", err)
	}
	if err := fs.MkdirAll(s.uspaceRoot); err != nil {
		return nil, fmt.Errorf("uspace: creating Uspace root: %w", err)
	}
	return s, nil
}

// FS exposes the underlying file system (the batch tier runs on it).
func (s *Space) FS() *vfs.FS { return s.fs }

// XspaceRoot returns the Xspace root path.
func (s *Space) XspaceRoot() string { return s.xspaceRoot }

// UspaceRoot returns the Uspace root path (the parent of every job
// directory).
func (s *Space) UspaceRoot() string { return s.uspaceRoot }

// JobDir returns the Uspace directory path for a job.
func (s *Space) JobDir(job core.JobID) string {
	return path.Join(s.uspaceRoot, string(job))
}

// CreateJobDir creates the per-job Uspace directory — "create a UNICORE job
// directory to contain the data for and created during the job run" (§5.5).
func (s *Space) CreateJobDir(job core.JobID) (string, error) {
	dir := s.JobDir(job)
	if s.fs.Exists(dir) {
		return "", fmt.Errorf("%w: %s", ErrJobExists, job)
	}
	if err := s.fs.MkdirAll(dir); err != nil {
		return "", err
	}
	return dir, nil
}

// RemoveJobDir deletes a job's Uspace and everything in it.
func (s *Space) RemoveJobDir(job core.JobID) error {
	return s.fs.RemoveAll(s.JobDir(job))
}

// jobPath resolves a Uspace-relative path, refusing escapes.
func (s *Space) jobPath(job core.JobID, rel string) (string, error) {
	dir := s.JobDir(job)
	if !s.fs.Exists(dir) {
		return "", fmt.Errorf("%w: %s", ErrNoJobDir, job)
	}
	if strings.HasPrefix(rel, "/") {
		return "", fmt.Errorf("%w: %q (must be Uspace-relative)", ErrEscape, rel)
	}
	p := path.Join(dir, rel)
	if p != dir && !strings.HasPrefix(p, dir+"/") {
		return "", fmt.Errorf("%w: %q", ErrEscape, rel)
	}
	return p, nil
}

// xspacePath resolves a user-supplied Xspace path. Paths are interpreted
// inside the Xspace — "the file systems available at the Vsites of a Usite
// are called Xspace" (§4) — so "/results/a.dat" and "results/a.dat" both
// name <xspaceRoot>/results/a.dat, unless the path already carries the root
// prefix. Escapes (..) are refused.
func (s *Space) xspacePath(p string) (string, error) {
	cp := path.Clean("/" + p)
	if cp == "/" {
		return "", fmt.Errorf("%w: empty Xspace path", ErrEscape)
	}
	if cp != s.xspaceRoot && !strings.HasPrefix(cp, s.xspaceRoot+"/") {
		cp = path.Join(s.xspaceRoot, cp)
	}
	if cp != s.xspaceRoot && !strings.HasPrefix(cp, s.xspaceRoot+"/") {
		return "", fmt.Errorf("%w: %q outside Xspace %s", ErrEscape, p, s.xspaceRoot)
	}
	return cp, nil
}

// ImportInline stages workstation data (carried inside the AJO) into the
// job's Uspace.
func (s *Space) ImportInline(job core.JobID, rel string, data []byte) error {
	p, err := s.jobPath(job, rel)
	if err != nil {
		return err
	}
	if dir := path.Dir(p); dir != s.JobDir(job) {
		if err := s.fs.MkdirAll(dir); err != nil {
			return err
		}
	}
	return s.fs.WriteFile(p, data)
}

// ImportXspace copies a file from the Vsite's Xspace into the job's Uspace —
// "imports from Xspace to Uspace ... are always local operations performed
// at a Vsite. They are implemented as a copy process" (§5.6).
func (s *Space) ImportXspace(job core.JobID, rel, xspacePath string) error {
	xp, err := s.xspacePath(xspacePath)
	if err != nil {
		return err
	}
	p, err := s.jobPath(job, rel)
	if err != nil {
		return err
	}
	if dir := path.Dir(p); dir != s.JobDir(job) {
		if err := s.fs.MkdirAll(dir); err != nil {
			return err
		}
	}
	return s.fs.Copy(p, xp)
}

// Export copies a job result from the Uspace to permanent Xspace storage and
// returns the resulting file's info.
func (s *Space) Export(job core.JobID, rel, xspacePath string) (vfs.FileInfo, error) {
	p, err := s.jobPath(job, rel)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	xp, err := s.xspacePath(xspacePath)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	if err := s.fs.MkdirAll(path.Dir(xp)); err != nil {
		return vfs.FileInfo{}, err
	}
	if err := s.fs.Copy(xp, p); err != nil {
		return vfs.FileInfo{}, err
	}
	return s.fs.Stat(xp)
}

// ReadJobFile reads a file from a job's Uspace (the outbound side of a
// transfer).
func (s *Space) ReadJobFile(job core.JobID, rel string) ([]byte, error) {
	p, err := s.jobPath(job, rel)
	if err != nil {
		return nil, err
	}
	return s.fs.ReadFile(p)
}

// ReadJobFileRange reads up to limit bytes of a Uspace file starting at
// offset, returning the chunk plus the file's total size and whole-file CRC
// — the §5.6 chunked-transfer primitive. Unlike ReadJobFile it copies only
// the requested window, so serving a 256 KiB chunk of a large result stays
// O(chunk) rather than O(file).
func (s *Space) ReadJobFileRange(job core.JobID, rel string, offset, limit int64) ([]byte, int64, uint64, error) {
	p, err := s.jobPath(job, rel)
	if err != nil {
		return nil, 0, 0, err
	}
	return s.fs.ReadFileRange(p, offset, limit)
}

// WriteJobFile writes a file into a job's Uspace (the inbound side of a
// transfer).
func (s *Space) WriteJobFile(job core.JobID, rel string, data []byte) error {
	p, err := s.jobPath(job, rel)
	if err != nil {
		return err
	}
	if dir := path.Dir(p); dir != s.JobDir(job) {
		if err := s.fs.MkdirAll(dir); err != nil {
			return err
		}
	}
	return s.fs.WriteFile(p, data)
}

// StatJobFile stats a Uspace file.
func (s *Space) StatJobFile(job core.JobID, rel string) (vfs.FileInfo, error) {
	p, err := s.jobPath(job, rel)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return s.fs.Stat(p)
}

// ListJobFiles returns every file in a job's Uspace, recursively.
func (s *Space) ListJobFiles(job core.JobID) ([]vfs.FileInfo, error) {
	dir := s.JobDir(job)
	if !s.fs.Exists(dir) {
		return nil, fmt.Errorf("%w: %s", ErrNoJobDir, job)
	}
	var out []vfs.FileInfo
	err := s.fs.Walk(dir, func(fi vfs.FileInfo) error {
		out = append(out, fi)
		return nil
	})
	return out, err
}

// WriteXspace seeds a file into the Xspace (site administration / test
// fixtures; users own their home directories).
func (s *Space) WriteXspace(p string, data []byte) error {
	xp, err := s.xspacePath(p)
	if err != nil {
		return err
	}
	if err := s.fs.MkdirAll(path.Dir(xp)); err != nil {
		return err
	}
	return s.fs.WriteFile(xp, data)
}

// ReadXspace reads a file from the Xspace.
func (s *Space) ReadXspace(p string) ([]byte, error) {
	xp, err := s.xspacePath(p)
	if err != nil {
		return nil, err
	}
	return s.fs.ReadFile(xp)
}
