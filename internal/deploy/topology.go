package deploy

// Topology specs are the declarative layer above the per-site JSON configs:
// one document describes the whole desired deployment — which Usites exist,
// how many NJS replicas serve each Vsite, which routing policy and spool TTL
// each pool runs, and where the replica journals live. The controller
// (internal/controller) diffs a spec against the live deployment and
// converges it; unicore-ctl parses, validates, diffs, and applies spec
// files; unicore-njs can derive its site config from the shared spec.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"unicore/internal/core"
	"unicore/internal/pool"
)

// TopologyVersion is the spec format this tree reads and writes.
const TopologyVersion = 1

// TopologySpec is the desired state of a whole deployment.
type TopologySpec struct {
	// Version is the spec format version (TopologyVersion).
	Version int `json:"version"`
	// JournalDir roots the per-replica write-ahead journals:
	// <JournalDir>/<usite>/<vsite>/<replica-tag>. Empty disables durability
	// (memory-only replicas; a crashed replica heals empty).
	JournalDir string `json:"journalDir,omitempty"`
	// Sites lists every Usite of the deployment.
	Sites []TopologySite `json:"sites"`
	// Peers lists the federation peer gateways every site of this
	// deployment gossips with. A peer that is also declared under Sites is
	// skipped at boot for its own stack (a gateway never peers with
	// itself), so one shared spec can describe a whole federation.
	Peers []TopologyPeer `json:"peers,omitempty"`
}

// TopologyPeer declares one federation peer gateway.
type TopologyPeer struct {
	Usite core.Usite `json:"usite"`
	// URL is the peer gateway's base URL ("https://gw.fzj.unicore").
	URL string `json:"url"`
}

// TopologySite declares one Usite.
type TopologySite struct {
	Usite core.Usite `json:"usite"`
	// Vsites lists the execution systems of the site.
	Vsites []TopologyVsite `json:"vsites"`
	// Users maps certificate DNs to per-Vsite logins (same shape as the
	// per-site config).
	Users []UserMapping `json:"users,omitempty"`
}

// TopologyVsite declares one execution system and its replica pool.
type TopologyVsite struct {
	Name core.Vsite `json:"name"`
	// Machine selects a profile: "t3e", "vpp700", "sp2", "sx4", "cluster".
	Machine string `json:"machine"`
	// Processors overrides the profile's default PE count (0 keeps it).
	Processors int `json:"processors,omitempty"`
	// Backfill enables EASY backfill in the batch scheduler.
	Backfill bool `json:"backfill,omitempty"`
	// Queues optionally declares batch queues (default: one "batch" queue).
	Queues []QueueConfig `json:"queues,omitempty"`
	// Replicas is the declared NJS replica count (minimum 1). With an
	// Autoscale block this is the resting size; the controller moves the
	// live count inside [Autoscale.Min, Autoscale.Max].
	Replicas int `json:"replicas,omitempty"`
	// Policy selects the pool's consign routing: "round-robin",
	// "least-loaded", or "consistent-hash" (default round-robin).
	Policy string `json:"policy,omitempty"`
	// Generation versions the replica fleet. Bumping it makes the
	// controller roll every replica: drain, retire, recover from the
	// journal, rejoin — one replica at a time.
	Generation int `json:"generation,omitempty"`
	// SpoolTTLSec is the staged-upload garbage-collection horizon in
	// seconds (0 keeps the server default). The controller sweeps each
	// replica's spool on every reconcile pass.
	SpoolTTLSec int `json:"spoolTTLSec,omitempty"`
	// SnapshotEvery is the journal entries between automatic snapshots
	// (0 picks the controller default).
	SnapshotEvery int `json:"snapshotEvery,omitempty"`
	// Autoscale, when present, lets the controller move the replica count
	// with load instead of holding it at Replicas.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
}

// AutoscaleSpec bounds and drives elastic replica pools.
type AutoscaleSpec struct {
	// Min and Max bound the live replica count.
	Min int `json:"min"`
	Max int `json:"max"`
	// BacklogPerReplica scales the pool up: while the Vsite's backlog
	// signal (in-flight consigns from the njs_consign_inflight gauge plus
	// queued batch jobs) exceeds this per healthy replica, each reconcile
	// adds one replica up to Max.
	BacklogPerReplica int `json:"backlogPerReplica"`
	// IdleCycles scales the pool down: after this many consecutive
	// reconciles with zero backlog, zero occupancy, and no event-log
	// growth, each further idle reconcile retires one replica down to Min.
	IdleCycles int `json:"idleCycles"`
}

// SpoolTTL returns the Vsite's staged-upload GC horizon (0 = server default).
func (v *TopologyVsite) SpoolTTL() time.Duration {
	return time.Duration(v.SpoolTTLSec) * time.Second
}

// ReplicaFloor returns the smallest replica count the spec allows for the
// Vsite: Autoscale.Min when autoscaling, else the declared count (min 1).
func (v *TopologyVsite) ReplicaFloor() int {
	if v.Autoscale != nil {
		return v.Autoscale.Min
	}
	return v.DeclaredReplicas()
}

// DeclaredReplicas returns the declared resting replica count (minimum 1).
func (v *TopologyVsite) DeclaredReplicas() int {
	if v.Replicas < 1 {
		return 1
	}
	return v.Replicas
}

// ParseTopology decodes and validates a topology spec document. Unknown
// fields are rejected so a typo ("replcas") cannot silently deploy a
// different topology than the operator wrote.
func ParseTopology(data []byte) (*TopologySpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec TopologySpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("deploy: parsing topology: %w", err)
	}
	// A second document in the stream is a concatenation mistake, not a
	// bigger topology.
	if dec.More() {
		return nil, fmt.Errorf("deploy: parsing topology: trailing data after spec document")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("deploy: topology: %w", err)
	}
	return &spec, nil
}

// LoadTopology reads and validates a topology spec file.
func LoadTopology(path string) (*TopologySpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	spec, err := ParseTopology(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return spec, nil
}

// Encode renders the spec as indented JSON. Encode∘ParseTopology is the
// identity on validated specs (the fuzz target holds the parser to it).
func (s *TopologySpec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("deploy: encoding topology: %w", err)
	}
	return append(data, '\n'), nil
}

// Validate checks the spec for completeness and consistency.
func (s *TopologySpec) Validate() error {
	if s.Version != TopologyVersion {
		return fmt.Errorf("unsupported spec version %d (want %d)", s.Version, TopologyVersion)
	}
	if len(s.Sites) == 0 {
		return fmt.Errorf("no sites declared")
	}
	seenSites := map[core.Usite]bool{}
	for i := range s.Sites {
		site := &s.Sites[i]
		if site.Usite == "" {
			return fmt.Errorf("site %d has no usite name", i)
		}
		if seenSites[site.Usite] {
			return fmt.Errorf("duplicate usite %q", site.Usite)
		}
		seenSites[site.Usite] = true
		if len(site.Vsites) == 0 {
			return fmt.Errorf("usite %s has no vsites", site.Usite)
		}
		seenV := map[core.Vsite]bool{}
		for j := range site.Vsites {
			v := &site.Vsites[j]
			if v.Name == "" {
				return fmt.Errorf("usite %s: vsite %d has no name", site.Usite, j)
			}
			if seenV[v.Name] {
				return fmt.Errorf("usite %s: duplicate vsite %q", site.Usite, v.Name)
			}
			seenV[v.Name] = true
			if _, err := Machine(v.Machine, v.Processors); err != nil {
				return fmt.Errorf("usite %s vsite %s: %w", site.Usite, v.Name, err)
			}
			if v.Replicas < 0 {
				return fmt.Errorf("usite %s vsite %s: negative replica count %d", site.Usite, v.Name, v.Replicas)
			}
			if v.Processors < 0 {
				return fmt.Errorf("usite %s vsite %s: negative processor count %d", site.Usite, v.Name, v.Processors)
			}
			if v.Generation < 0 {
				return fmt.Errorf("usite %s vsite %s: negative generation %d", site.Usite, v.Name, v.Generation)
			}
			if v.SpoolTTLSec < 0 {
				return fmt.Errorf("usite %s vsite %s: negative spool TTL %d", site.Usite, v.Name, v.SpoolTTLSec)
			}
			if v.SnapshotEvery < 0 {
				return fmt.Errorf("usite %s vsite %s: negative snapshot cadence %d", site.Usite, v.Name, v.SnapshotEvery)
			}
			if _, err := pool.ParsePolicy(v.Policy); err != nil {
				return fmt.Errorf("usite %s vsite %s: %w", site.Usite, v.Name, err)
			}
			if a := v.Autoscale; a != nil {
				if a.Min < 1 {
					return fmt.Errorf("usite %s vsite %s: autoscale min %d (want >= 1)", site.Usite, v.Name, a.Min)
				}
				if a.Max < a.Min {
					return fmt.Errorf("usite %s vsite %s: autoscale max %d below min %d", site.Usite, v.Name, a.Max, a.Min)
				}
				if a.BacklogPerReplica < 0 {
					return fmt.Errorf("usite %s vsite %s: negative autoscale backlog %d", site.Usite, v.Name, a.BacklogPerReplica)
				}
				if a.IdleCycles < 0 {
					return fmt.Errorf("usite %s vsite %s: negative autoscale idle cycles %d", site.Usite, v.Name, a.IdleCycles)
				}
				if r := v.DeclaredReplicas(); r < a.Min || r > a.Max {
					return fmt.Errorf("usite %s vsite %s: declared replicas %d outside autoscale bounds [%d,%d]", site.Usite, v.Name, r, a.Min, a.Max)
				}
			}
		}
		for _, u := range site.Users {
			if u.DN == "" {
				return fmt.Errorf("usite %s: user mapping without DN", site.Usite)
			}
			for vs := range u.Logins {
				if !seenV[vs] {
					return fmt.Errorf("usite %s: user %s mapped at unknown vsite %q", site.Usite, u.DN, vs)
				}
			}
		}
	}
	seenPeers := map[core.Usite]bool{}
	for i, p := range s.Peers {
		if p.Usite == "" {
			return fmt.Errorf("peer %d has no usite name", i)
		}
		if p.URL == "" {
			return fmt.Errorf("peer %s has no url", p.Usite)
		}
		if seenPeers[p.Usite] {
			return fmt.Errorf("duplicate peer %q", p.Usite)
		}
		seenPeers[p.Usite] = true
	}
	return nil
}

// Peer returns the declared peer entry for a Usite.
func (s *TopologySpec) Peer(u core.Usite) (*TopologyPeer, bool) {
	for i := range s.Peers {
		if s.Peers[i].Usite == u {
			return &s.Peers[i], true
		}
	}
	return nil, false
}

// Site returns the declared site for a Usite.
func (s *TopologySpec) Site(u core.Usite) (*TopologySite, bool) {
	for i := range s.Sites {
		if s.Sites[i].Usite == u {
			return &s.Sites[i], true
		}
	}
	return nil, false
}

// Vsite returns the declared Vsite of a site.
func (site *TopologySite) Vsite(v core.Vsite) (*TopologyVsite, bool) {
	for i := range site.Vsites {
		if site.Vsites[i].Name == v {
			return &site.Vsites[i], true
		}
	}
	return nil, false
}

// SiteConfig converts one declared site into the per-site JSON config shape
// the builders consume — the bridge that lets unicore-njs and unicore-gateway
// boot from a shared topology spec instead of a per-site file.
func (s *TopologySpec) SiteConfig(u core.Usite) (*SiteConfig, error) {
	site, ok := s.Site(u)
	if !ok {
		return nil, fmt.Errorf("deploy: topology declares no usite %q", u)
	}
	cfg := &SiteConfig{Usite: site.Usite, Users: site.Users}
	for _, v := range site.Vsites {
		cfg.Vsites = append(cfg.Vsites, VsiteConfig{
			Name:       v.Name,
			Machine:    v.Machine,
			Processors: v.Processors,
			Backfill:   v.Backfill,
			Queues:     v.Queues,
			Replicas:   v.DeclaredReplicas(),
		})
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// TopologyChange is one step of a topology diff.
type TopologyChange struct {
	// Op names the change: "add-site", "remove-site", "add-vsite",
	// "remove-vsite", "scale", "policy", "roll", "spool-ttl", "autoscale",
	// "machine", "add-peer", "remove-peer", "peer-url".
	Op    string
	Usite core.Usite
	Vsite core.Vsite
	// Detail is the human-readable delta ("replicas 2 -> 4").
	Detail string
}

// String renders the change for logs and unicore-ctl diff output.
func (c TopologyChange) String() string {
	target := string(c.Usite)
	if c.Vsite != "" {
		target += "/" + string(c.Vsite)
	}
	if c.Detail == "" {
		return fmt.Sprintf("%-12s %s", c.Op, target)
	}
	return fmt.Sprintf("%-12s %s: %s", c.Op, target, c.Detail)
}

// DiffTopology lists the steps that take the current spec to the desired
// one, in apply order: site/Vsite additions first, in-place changes next,
// removals last. Identical specs diff to nil.
func DiffTopology(current, desired *TopologySpec) []TopologyChange {
	var out []TopologyChange
	for i := range desired.Sites {
		want := &desired.Sites[i]
		have, ok := current.Site(want.Usite)
		if !ok {
			out = append(out, TopologyChange{Op: "add-site", Usite: want.Usite,
				Detail: fmt.Sprintf("%d vsite(s)", len(want.Vsites))})
			continue
		}
		out = append(out, diffSite(have, want)...)
	}
	for i := range desired.Peers {
		want := &desired.Peers[i]
		have, ok := current.Peer(want.Usite)
		switch {
		case !ok:
			out = append(out, TopologyChange{Op: "add-peer", Usite: want.Usite, Detail: want.URL})
		case have.URL != want.URL:
			out = append(out, TopologyChange{Op: "peer-url", Usite: want.Usite,
				Detail: fmt.Sprintf("%s -> %s", have.URL, want.URL)})
		}
	}
	for i := range current.Sites {
		if _, ok := desired.Site(current.Sites[i].Usite); !ok {
			out = append(out, TopologyChange{Op: "remove-site", Usite: current.Sites[i].Usite})
		}
	}
	for i := range current.Peers {
		if _, ok := desired.Peer(current.Peers[i].Usite); !ok {
			out = append(out, TopologyChange{Op: "remove-peer", Usite: current.Peers[i].Usite})
		}
	}
	return out
}

// diffSite lists per-Vsite changes between two declarations of one site.
func diffSite(have, want *TopologySite) []TopologyChange {
	var out []TopologyChange
	for i := range want.Vsites {
		wv := &want.Vsites[i]
		hv, ok := have.Vsite(wv.Name)
		if !ok {
			out = append(out, TopologyChange{Op: "add-vsite", Usite: want.Usite, Vsite: wv.Name,
				Detail: fmt.Sprintf("%s x%d", wv.Machine, wv.DeclaredReplicas())})
			continue
		}
		at := func(op, detail string) {
			out = append(out, TopologyChange{Op: op, Usite: want.Usite, Vsite: wv.Name, Detail: detail})
		}
		if hv.Machine != wv.Machine || hv.Processors != wv.Processors || hv.Backfill != wv.Backfill {
			at("machine", fmt.Sprintf("%s/%d -> %s/%d", hv.Machine, hv.Processors, wv.Machine, wv.Processors))
		}
		if hv.DeclaredReplicas() != wv.DeclaredReplicas() {
			at("scale", fmt.Sprintf("replicas %d -> %d", hv.DeclaredReplicas(), wv.DeclaredReplicas()))
		}
		if hv.Policy != wv.Policy {
			at("policy", fmt.Sprintf("%q -> %q", hv.Policy, wv.Policy))
		}
		if hv.Generation != wv.Generation {
			at("roll", fmt.Sprintf("generation %d -> %d", hv.Generation, wv.Generation))
		}
		if hv.SpoolTTLSec != wv.SpoolTTLSec {
			at("spool-ttl", fmt.Sprintf("%ds -> %ds", hv.SpoolTTLSec, wv.SpoolTTLSec))
		}
		if !autoscaleEqual(hv.Autoscale, wv.Autoscale) {
			at("autoscale", fmt.Sprintf("%s -> %s", autoscaleString(hv.Autoscale), autoscaleString(wv.Autoscale)))
		}
	}
	for i := range have.Vsites {
		if _, ok := want.Vsite(have.Vsites[i].Name); !ok {
			out = append(out, TopologyChange{Op: "remove-vsite", Usite: want.Usite, Vsite: have.Vsites[i].Name})
		}
	}
	return out
}

// autoscaleEqual compares two optional autoscale blocks.
func autoscaleEqual(a, b *AutoscaleSpec) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// autoscaleString renders an autoscale block for diff output.
func autoscaleString(a *AutoscaleSpec) string {
	if a == nil {
		return "off"
	}
	return fmt.Sprintf("[%d,%d] backlog %d idle %d", a.Min, a.Max, a.BacklogPerReplica, a.IdleCycles)
}
