// Package deploy holds the file formats and assembly helpers behind the
// cmd/ tools: JSON site configurations (which Vsites a Usite runs, who maps
// to which login), JSON job descriptions for the CLI JPA, and PEM keyring
// loading. It is the glue that turns the in-process library into real
// multi-process deployments over TLS.
package deploy

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"unicore/internal/codine"
	"unicore/internal/core"
	"unicore/internal/gateway"
	"unicore/internal/journal"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// SiteConfig is the JSON description of one Usite.
type SiteConfig struct {
	Usite  core.Usite    `json:"usite"`
	Vsites []VsiteConfig `json:"vsites"`
	// Users maps certificate DNs to per-Vsite logins.
	Users []UserMapping `json:"users,omitempty"`
}

// VsiteConfig is the JSON description of one execution system.
type VsiteConfig struct {
	Name core.Vsite `json:"name"`
	// Machine selects a profile: "t3e", "vpp700", "sp2", "sx4", "cluster".
	Machine string `json:"machine"`
	// Processors overrides the profile's default PE count (0 keeps it).
	Processors int `json:"processors,omitempty"`
	// Backfill enables EASY backfill in the batch scheduler.
	Backfill bool `json:"backfill,omitempty"`
	// Queues optionally declares batch queues (default: one "batch" queue).
	Queues []QueueConfig `json:"queues,omitempty"`
	// Replicas is how many NJS replicas serve this Vsite in a replicated
	// deployment (BuildReplicatedSite); 0 falls back to the deployment-wide
	// default, and plain BuildSite ignores it.
	Replicas int `json:"replicas,omitempty"`
}

// QueueConfig is the JSON description of one batch queue.
type QueueConfig struct {
	Name       string `json:"name"`
	Slots      int    `json:"slots"`
	MaxTimeSec int    `json:"maxTimeSec,omitempty"`
}

// UserMapping is one UUDB entry.
type UserMapping struct {
	DN     core.DN                   `json:"dn"`
	Email  string                    `json:"email,omitempty"`
	Logins map[core.Vsite]uudb.Login `json:"logins"`
	Extra  map[string]string         `json:"extra,omitempty"`
}

// LoadSiteConfig reads and validates a site configuration file.
func LoadSiteConfig(path string) (*SiteConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	var cfg SiteConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("deploy: parsing %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("deploy: %s: %w", path, err)
	}
	return &cfg, nil
}

// Validate checks the configuration for completeness.
func (c *SiteConfig) Validate() error {
	if c.Usite == "" {
		return fmt.Errorf("empty usite name")
	}
	if len(c.Vsites) == 0 {
		return fmt.Errorf("usite %s has no vsites", c.Usite)
	}
	seen := map[core.Vsite]bool{}
	for _, v := range c.Vsites {
		if v.Name == "" {
			return fmt.Errorf("usite %s: vsite without name", c.Usite)
		}
		if seen[v.Name] {
			return fmt.Errorf("usite %s: duplicate vsite %q", c.Usite, v.Name)
		}
		seen[v.Name] = true
		if _, err := Machine(v.Machine, v.Processors); err != nil {
			return fmt.Errorf("vsite %s: %w", v.Name, err)
		}
		if v.Replicas < 0 {
			return fmt.Errorf("vsite %s: negative replica count %d", v.Name, v.Replicas)
		}
	}
	for _, u := range c.Users {
		if u.DN == "" {
			return fmt.Errorf("user mapping without DN")
		}
		for vs := range u.Logins {
			if !seen[vs] {
				return fmt.Errorf("user %s mapped at unknown vsite %q", u.DN, vs)
			}
		}
	}
	return nil
}

// Machine resolves a profile name (processors = 0 keeps the default size).
func Machine(name string, processors int) (machine.Profile, error) {
	var p machine.Profile
	switch name {
	case "t3e":
		p = machine.CrayT3E(512)
	case "vpp700":
		p = machine.FujitsuVPP700(52)
	case "sp2":
		p = machine.IBMSP2(76)
	case "sx4":
		p = machine.NECSX4(16)
	case "cluster":
		p = machine.GenericCluster(32)
	default:
		return machine.Profile{}, fmt.Errorf("unknown machine %q (want t3e, vpp700, sp2, sx4, or cluster)", name)
	}
	if processors > 0 {
		p.Processors = processors
	}
	return p, nil
}

// BuildUsers assembles a site's UUDB from its declared user mappings — the
// piece of a site description shared by the static builders here and the
// spec-driven controller boot path.
func BuildUsers(usite core.Usite, mappings []UserMapping, clock sim.Scheduler) (*uudb.DB, error) {
	users := uudb.New(usite, clock)
	for _, u := range mappings {
		users.AddUser(u.DN, u.Email)
		for vs, login := range u.Logins {
			if err := users.AddMapping(u.DN, vs, login); err != nil {
				return nil, fmt.Errorf("deploy: mapping %s at %s: %w", u.DN, vs, err)
			}
		}
	}
	return users, nil
}

// NJSConfig resolves a declared topology Vsite into the njs.VsiteConfig a
// replica builder consumes (machine profile, queue set).
func (v *TopologyVsite) NJSConfig() (njs.VsiteConfig, error) {
	vc := VsiteConfig{
		Name:       v.Name,
		Machine:    v.Machine,
		Processors: v.Processors,
		Backfill:   v.Backfill,
		Queues:     v.Queues,
	}
	return vc.VsiteNJSConfig()
}

// buildParts assembles a site's UUDB and NJS configuration from its JSON
// description.
func buildParts(cfg *SiteConfig, clock sim.Scheduler) (*uudb.DB, njs.Config, error) {
	users, err := BuildUsers(cfg.Usite, cfg.Users, clock)
	if err != nil {
		return nil, njs.Config{}, err
	}
	var vcs []njs.VsiteConfig
	for i := range cfg.Vsites {
		vc, err := cfg.Vsites[i].VsiteNJSConfig()
		if err != nil {
			return nil, njs.Config{}, err
		}
		vcs = append(vcs, vc)
	}
	return users, njs.Config{Usite: cfg.Usite, Clock: clock, Vsites: vcs}, nil
}

// BuildSite assembles the running pieces of a site: its UUDB, NJS, and
// gateway, under the given clock (sim.RealClock{} in the daemons).
func BuildSite(cfg *SiteConfig, cred *pki.Credential, ca *pki.Authority, clock sim.Scheduler) (*gateway.Gateway, *njs.NJS, *uudb.DB, error) {
	users, njsCfg, err := buildParts(cfg, clock)
	if err != nil {
		return nil, nil, nil, err
	}
	n, err := njs.New(njsCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	gw, err := gateway.New(gateway.Config{
		Usite: cfg.Usite,
		Cred:  cred,
		CA:    ca,
		Users: users,
		NJS:   n,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// Telemetry timestamps (trace span starts) follow the deployment clock.
	gw.Telemetry().SetNow(clock.Now)
	return gw, n, users, nil
}

// BuildDurableSite is BuildSite with journal-backed NJS state rooted at
// stateDir: job state is recovered from the journal at boot and every
// subsequent transition is journaled (automatic snapshot after snapshotEvery
// entries; see njs.AttachJournal). The caller must call
// NJS.ResumeRecovered() once wiring (peers) is complete, and owns the
// returned store — snapshot and close it on shutdown.
func BuildDurableSite(cfg *SiteConfig, cred *pki.Credential, ca *pki.Authority, clock sim.Scheduler, stateDir string, snapshotEvery int) (*gateway.Gateway, *njs.NJS, *uudb.DB, *journal.Store, error) {
	users, njsCfg, err := buildParts(cfg, clock)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	store, err := journal.Open(stateDir)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	n, err := njs.Recover(store, njsCfg, snapshotEvery)
	if err != nil {
		// Surface a failing close alongside the recovery error: a close
		// failure here is a swallowed flush/fsync problem on the journal.
		return nil, nil, nil, nil, errors.Join(err, store.Close())
	}
	gw, err := gateway.New(gateway.Config{
		Usite: cfg.Usite,
		Cred:  cred,
		CA:    ca,
		Users: users,
		NJS:   n,
	})
	if err != nil {
		return nil, nil, nil, nil, errors.Join(err, store.Close())
	}
	gw.Telemetry().SetNow(clock.Now)
	return gw, n, users, store, nil
}

// BuildReplicatedSite assembles a scaled-out site: every Vsite is served by
// a pool of NJS replicas (the per-Vsite count from the JSON config, falling
// back to defaultReplicas, minimum 1) behind a pool.Router that the gateway
// fronts through the njs.Service interface. Each replica carries a distinct
// instance tag so minted job IDs never collide across the pool. The caller
// owns peer wiring: install a protocol client on every returned replica NJS
// (SetPeers) when the site talks to other Usites, and start the router's
// health checks once serving begins.
func BuildReplicatedSite(cfg *SiteConfig, cred *pki.Credential, ca *pki.Authority, clock sim.Scheduler, defaultReplicas int, policy pool.Policy) (*gateway.Gateway, *pool.Router, map[core.Vsite][]*njs.NJS, *uudb.DB, error) {
	users, njsCfg, err := buildParts(cfg, clock)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if defaultReplicas < 1 {
		defaultReplicas = 1
	}
	router, err := pool.NewRouter(cfg.Usite)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	replicas := make(map[core.Vsite][]*njs.NJS, len(njsCfg.Vsites))
	for i, vc := range njsCfg.Vsites {
		count := cfg.Vsites[i].Replicas
		if count < 1 {
			count = defaultReplicas
		}
		set, err := pool.New(pool.Config{Vsite: vc.Name, Policy: policy, Clock: clock})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		for r := 0; r < count; r++ {
			tag := pool.ReplicaTag(r)
			n, err := BuildReplica(cfg.Usite, vc, clock, tag)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			if err := set.Add(tag, n); err != nil {
				return nil, nil, nil, nil, err
			}
			replicas[vc.Name] = append(replicas[vc.Name], n)
		}
		if err := router.AddSet(set); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	gw, err := gateway.New(gateway.Config{
		Usite:   cfg.Usite,
		Cred:    cred,
		CA:      ca,
		Users:   users,
		Backend: router,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	gw.Telemetry().SetNow(clock.Now)
	return gw, router, replicas, users, nil
}

// BuildReplica builds one memory-only NJS replica serving a single Vsite
// under the given pool tag — the unit BuildReplicatedSite assembles pools
// from, exposed so a running Vsite can grow without rebuilding the site
// (the controller adds the result to the live ReplicaSet with set.Add).
// The tag becomes the NJS instance so minted job IDs never collide across
// the pool.
func BuildReplica(usite core.Usite, vc njs.VsiteConfig, clock sim.Scheduler, tag string) (*njs.NJS, error) {
	n, err := njs.New(njs.Config{
		Usite:    usite,
		Clock:    clock,
		Vsites:   []njs.VsiteConfig{vc},
		Instance: tag,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: vsite %s replica %s: %w", vc.Name, tag, err)
	}
	return n, nil
}

// BuildDurableReplica is BuildReplica with journal-backed state: the
// replica's prior life is recovered from the store (empty store = fresh
// replica) and every subsequent transition is journaled. The caller must
// call ResumeRecovered once wiring is complete, and owns the store.
func BuildDurableReplica(usite core.Usite, vc njs.VsiteConfig, clock sim.Scheduler, tag string, store *journal.Store, snapshotEvery int) (*njs.NJS, error) {
	n, err := njs.Recover(store, njs.Config{
		Usite:    usite,
		Clock:    clock,
		Vsites:   []njs.VsiteConfig{vc},
		Instance: tag,
	}, snapshotEvery)
	if err != nil {
		return nil, fmt.Errorf("deploy: vsite %s replica %s: %w", vc.Name, tag, err)
	}
	return n, nil
}

// VsiteNJSConfig resolves one declared Vsite into the njs.VsiteConfig a
// replica of it runs — the single-Vsite slice of what buildParts computes.
func (v *VsiteConfig) VsiteNJSConfig() (njs.VsiteConfig, error) {
	prof, err := Machine(v.Machine, v.Processors)
	if err != nil {
		return njs.VsiteConfig{}, err
	}
	var queues []codine.Queue
	for _, q := range v.Queues {
		mt := time.Duration(q.MaxTimeSec) * time.Second
		if mt == 0 {
			mt = 24 * time.Hour
		}
		queues = append(queues, codine.Queue{Name: q.Name, Slots: q.Slots, MaxTime: mt})
	}
	return njs.VsiteConfig{
		Name:     v.Name,
		Profile:  prof,
		Backfill: v.Backfill,
		Queues:   queues,
	}, nil
}

// LoadAuthority reads a CA PEM file.
func LoadAuthority(path string) (*pki.Authority, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return pki.DecodeAuthorityPEM(data)
}

// LoadCredential reads a credential PEM file.
func LoadCredential(path string) (*pki.Credential, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return pki.DecodeCredentialPEM(data)
}

// WriteFile persists data with private-key-appropriate permissions.
func WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

// ParsePeers builds a site registry from "FZJ=https://gw.fzj:8443,ZIB=...".
func ParsePeers(s string) (*protocol.Registry, error) {
	reg := protocol.NewRegistry()
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		usite, url, ok := strings.Cut(pair, "=")
		if !ok || usite == "" || url == "" {
			return nil, fmt.Errorf("deploy: bad peer %q (want USITE=URL)", pair)
		}
		reg.Add(core.Usite(usite), url)
	}
	return reg, nil
}
