package deploy

import (
	"reflect"
	"testing"
)

// FuzzTopologySpecParse holds the spec parser to its two contracts under
// arbitrary input: it never panics (it returns an error instead), and any
// document it accepts round-trips — Encode of the parsed spec re-parses to a
// deeply equal spec, so `unicore-ctl` can normalise operator files without
// changing their meaning.
func FuzzTopologySpecParse(f *testing.F) {
	f.Add([]byte(sampleTopology))
	f.Add([]byte(`{"version": 1, "sites": [{"usite": "A", "vsites": [{"name": "V", "machine": "cluster"}]}]}`))
	f.Add([]byte(`{"version": 1, "journalDir": "/tmp/j", "sites": [{"usite": "A", "vsites": [
		{"name": "V", "machine": "t3e", "replicas": 4, "policy": "ch",
		 "autoscale": {"min": 1, "max": 8, "backlogPerReplica": 2, "idleCycles": 5}}]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 9}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"version": 1, "sites": [`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseTopology(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc, err := spec.Encode()
		if err != nil {
			t.Fatalf("accepted spec does not encode: %v", err)
		}
		again, err := ParseTopology(enc)
		if err != nil {
			t.Fatalf("encoded form of an accepted spec rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip diverged:\noriginal: %+v\nreparsed: %+v", spec, again)
		}
	})
}
