package deploy

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/journal"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/pool"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatalf("writing %s: %v", name, err)
	}
	return path
}

const siteJSON = `{
  "usite": "FZJ",
  "vsites": [
    {"name": "T3E", "machine": "t3e", "processors": 128, "backfill": true},
    {"name": "CLUSTER", "machine": "cluster",
     "queues": [{"name": "fast", "slots": 8, "maxTimeSec": 3600},
                {"name": "batch", "slots": 24}]}
  ],
  "users": [
    {"dn": "CN=Alice,O=FZJ,C=DE",
     "logins": {"T3E": {"uid": "alice"}, "CLUSTER": {"uid": "ali"}}}
  ]
}`

func TestLoadSiteConfig(t *testing.T) {
	path := writeTemp(t, "site.json", siteJSON)
	cfg, err := LoadSiteConfig(path)
	if err != nil {
		t.Fatalf("LoadSiteConfig: %v", err)
	}
	if cfg.Usite != "FZJ" || len(cfg.Vsites) != 2 || len(cfg.Users) != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestSiteConfigValidation(t *testing.T) {
	bad := []string{
		`{"vsites":[{"name":"V","machine":"t3e"}]}`,                                                                // no usite
		`{"usite":"X","vsites":[]}`,                                                                                // no vsites
		`{"usite":"X","vsites":[{"name":"V","machine":"pdp11"}]}`,                                                  // unknown machine
		`{"usite":"X","vsites":[{"name":"V","machine":"t3e"},{"name":"V","machine":"t3e"}]}`,                       // dup vsite
		`{"usite":"X","vsites":[{"name":"V","machine":"t3e"}],"users":[{"dn":"CN=A","logins":{"W":{"uid":"a"}}}]}`, // unknown vsite mapping
	}
	for i, doc := range bad {
		path := writeTemp(t, "bad.json", doc)
		if _, err := LoadSiteConfig(path); err == nil {
			t.Fatalf("case %d: bad config accepted: %s", i, doc)
		}
	}
}

func TestMachineProfiles(t *testing.T) {
	for _, name := range []string{"t3e", "vpp700", "sp2", "sx4", "cluster"} {
		p, err := Machine(name, 0)
		if err != nil {
			t.Fatalf("Machine(%s): %v", name, err)
		}
		if p.Processors <= 0 {
			t.Fatalf("Machine(%s) has %d processors", name, p.Processors)
		}
	}
	p, err := Machine("t3e", 64)
	if err != nil || p.Processors != 64 {
		t.Fatalf("override: %+v, %v", p, err)
	}
	if _, err := Machine("cray1", 0); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestBuildSiteEndToEnd(t *testing.T) {
	path := writeTemp(t, "site.json", siteJSON)
	cfg, err := LoadSiteConfig(path)
	if err != nil {
		t.Fatalf("LoadSiteConfig: %v", err)
	}
	ca, err := pki.NewAuthority("Deploy-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	cred, err := ca.IssueServer("gateway.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	clock := sim.NewVirtualClock()
	gw, n, users, err := BuildSite(cfg, cred, ca, clock)
	if err != nil {
		t.Fatalf("BuildSite: %v", err)
	}
	if gw.Usite() != "FZJ" || n.Usite() != "FZJ" {
		t.Fatalf("usites: gw=%s njs=%s", gw.Usite(), n.Usite())
	}
	login, err := users.Map("CN=Alice,O=FZJ,C=DE", "T3E")
	if err != nil || login.UID != "alice" {
		t.Fatalf("mapping = %+v, %v", login, err)
	}
	// The custom queues took effect.
	vs, ok := n.Vsite("CLUSTER")
	if !ok {
		t.Fatal("CLUSTER vsite missing")
	}
	names := vs.RMS.QueueNames()
	if len(names) != 2 || names[0] != "fast" || names[1] != "batch" {
		t.Fatalf("queues = %v", names)
	}
}

// TestBuildDurableSiteRecovers boots a durable site, consigns a job to
// completion, tears the site down (crash), and boots a second durable site
// over the same state directory: the job must come back verbatim.
func TestBuildDurableSiteRecovers(t *testing.T) {
	path := writeTemp(t, "site.json", siteJSON)
	cfg, err := LoadSiteConfig(path)
	if err != nil {
		t.Fatalf("LoadSiteConfig: %v", err)
	}
	ca, err := pki.NewAuthority("Deploy-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	cred, err := ca.IssueServer("gateway.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	clock := sim.NewVirtualClock()
	stateDir := t.TempDir()

	_, n, _, store, err := BuildDurableSite(cfg, cred, ca, clock, stateDir, 0)
	if err != nil {
		t.Fatalf("BuildDurableSite: %v", err)
	}
	n.ResumeRecovered()
	job := &ajo.AbstractJob{
		Header: ajo.Header{ActionID: "deploy-job", ActionName: "deploy-job"},
		Target: core.Target{Usite: "FZJ", Vsite: "CLUSTER"},
		UserDN: "CN=Alice,O=FZJ,C=DE",
		Actions: ajo.ActionList{&ajo.UserTask{
			TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "hello"}},
			Command:  "echo hello durable world",
		}},
	}
	id, err := n.Consign(context.Background(), "CN=Alice,O=FZJ,C=DE", "dur-1", job)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.RunUntilIdle(0)
	if err := n.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	n.Kill()
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, n2, _, store2, err := BuildDurableSite(cfg, cred, ca, clock, stateDir, 0)
	if err != nil {
		t.Fatalf("BuildDurableSite (reboot): %v", err)
	}
	defer store2.Close()
	n2.ResumeRecovered()
	clock.RunUntilIdle(0)
	o, found, err := n2.Outcome("CN=Alice,O=FZJ,C=DE", false, id)
	if err != nil || !found {
		t.Fatalf("Outcome after reboot: %v found=%v", err, found)
	}
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("recovered job = %s", o.Status)
	}
	hit, ok := o.Find("hello")
	if !ok || string(hit.Stdout) != "hello durable world\n" {
		t.Fatalf("recovered stdout = %q (found=%v)", hit.Stdout, ok)
	}
}

func TestCredentialFiles(t *testing.T) {
	ca, err := pki.NewAuthority("File-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	caPath := filepath.Join(t.TempDir(), "ca.pem")
	data, err := ca.EncodePEM()
	if err != nil {
		t.Fatalf("EncodePEM: %v", err)
	}
	if err := WriteFile(caPath, data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info, err := os.Stat(caPath)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("key file mode = %v, want 0600", info.Mode().Perm())
	}
	back, err := LoadAuthority(caPath)
	if err != nil {
		t.Fatalf("LoadAuthority: %v", err)
	}
	if back.Name() != "File-CA" {
		t.Fatalf("name = %q", back.Name())
	}

	cred, err := ca.IssueUser("File User", "Org")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	credPath := filepath.Join(t.TempDir(), "user.pem")
	cd, _ := cred.EncodePEM()
	if err := WriteFile(credPath, cd); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := LoadCredential(credPath)
	if err != nil {
		t.Fatalf("LoadCredential: %v", err)
	}
	if loaded.DN() != cred.DN() {
		t.Fatalf("DN = %s, want %s", loaded.DN(), cred.DN())
	}
	if _, err := LoadCredential(filepath.Join(t.TempDir(), "missing.pem")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

const jobJSON = `{
  "name": "cli job",
  "target": "FZJ/T3E",
  "project": "hpc",
  "tasks": [
    {"id": "imp", "type": "import", "data": "hello input", "to": "in.dat"},
    {"id": "run", "type": "script", "script": "cat in.dat > out.dat\n",
     "processors": 2, "runTimeSec": 600},
    {"id": "exp", "type": "export", "from": "out.dat", "toXspace": "/res/out.dat"}
  ],
  "deps": [
    {"before": "imp", "after": "run"},
    {"before": "run", "after": "exp"}
  ]
}`

func TestJobSpecBuild(t *testing.T) {
	path := writeTemp(t, "job.json", jobJSON)
	spec, err := LoadJobSpec(path)
	if err != nil {
		t.Fatalf("LoadJobSpec: %v", err)
	}
	job, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if job.Target != (core.Target{Usite: "FZJ", Vsite: "T3E"}) {
		t.Fatalf("target = %s", job.Target)
	}
	if job.CountActions() != 4 { // root job group + three tasks
		t.Fatalf("actions = %d, want 4", job.CountActions())
	}
	run, ok := job.Find("run")
	if !ok {
		t.Fatal("task run missing")
	}
	req, _ := ajo.TaskResources(run)
	if req.Processors != 2 || req.RunTime != 10*time.Minute {
		t.Fatalf("resources = %+v", req)
	}
}

func TestJobSpecImportsWorkstationFile(t *testing.T) {
	dataPath := writeTemp(t, "input.bin", "workstation bytes")
	spec := &JobSpec{
		Name:   "with file",
		Target: "FZJ/T3E",
		Tasks: []TaskSpec{
			{ID: "imp", Type: "import", File: dataPath, To: "in.dat"},
			{ID: "run", Type: "script", Script: "cat in.dat\n"},
		},
		Deps: []DepSpec{{Before: "imp", After: "run"}},
	}
	job, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	imp, _ := job.Find("imp")
	it := imp.(*ajo.ImportTask)
	if string(it.Source.Inline) != "workstation bytes" {
		t.Fatalf("inline = %q", it.Source.Inline)
	}
}

func TestJobSpecNestedGroups(t *testing.T) {
	spec := &JobSpec{
		Name:   "parent",
		Target: "FZJ/T3E",
		Tasks: []TaskSpec{
			{ID: "tr", Type: "transfer", FromTask: "pre", Files: []string{"p.dat"}},
			{ID: "main", Type: "script", Script: "cat p.dat\n"},
		},
		Deps: []DepSpec{
			{Before: "pre", After: "tr"},
			{Before: "tr", After: "main"},
		},
		Jobs: []JobSpec{{
			Name:   "pre",
			Target: "ZIB/T3E",
			Tasks:  []TaskSpec{{ID: "p", Type: "script", Script: "write p.dat 16\n"}},
		}},
	}
	job, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The transfer's FromAction was rewritten to the sub-job's real ID.
	tr, _ := job.Find("tr")
	from := tr.(*ajo.TransferTask).FromAction
	var subID ajo.ActionID
	for _, a := range job.Actions {
		if sub, ok := a.(*ajo.AbstractJob); ok {
			subID = sub.ID()
		}
	}
	if from != subID || subID == "" {
		t.Fatalf("transfer from %q, sub-job id %q", from, subID)
	}
}

func TestJobSpecErrors(t *testing.T) {
	cases := []JobSpec{
		{Name: "no target", Tasks: []TaskSpec{{ID: "a", Type: "script", Script: "x"}}},
		{Name: "bad type", Target: "A/B", Tasks: []TaskSpec{{ID: "a", Type: "teleport"}}},
		{Name: "dup id", Target: "A/B", Tasks: []TaskSpec{
			{ID: "a", Type: "script", Script: "x"}, {ID: "a", Type: "script", Script: "y"}}},
		{Name: "bad dep", Target: "A/B",
			Tasks: []TaskSpec{{ID: "a", Type: "script", Script: "x"}},
			Deps:  []DepSpec{{Before: "ghost", After: "a"}}},
		{Name: "no id", Target: "A/B", Tasks: []TaskSpec{{Type: "script", Script: "x"}}},
	}
	for _, c := range cases {
		if _, err := c.Build(); err == nil {
			t.Fatalf("spec %q built successfully", c.Name)
		}
	}
}

var _ = uudb.Login{} // keep the import for the site JSON round trip above

func TestBuildReplicatedSite(t *testing.T) {
	// T3E pins its own replica count; CLUSTER falls back to the default.
	doc := `{
  "usite": "FZJ",
  "vsites": [
    {"name": "T3E", "machine": "t3e", "processors": 128, "replicas": 2},
    {"name": "CLUSTER", "machine": "cluster"}
  ],
  "users": [
    {"dn": "CN=Alice,O=FZJ,C=DE",
     "logins": {"T3E": {"uid": "alice"}, "CLUSTER": {"uid": "ali"}}}
  ]
}`
	path := writeTemp(t, "site.json", doc)
	cfg, err := LoadSiteConfig(path)
	if err != nil {
		t.Fatalf("LoadSiteConfig: %v", err)
	}
	ca, err := pki.NewAuthority("Deploy-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	cred, err := ca.IssueServer("gateway.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	clock := sim.NewVirtualClock()
	gw, router, replicas, _, err := BuildReplicatedSite(cfg, cred, ca, clock, 3, pool.LeastLoaded)
	if err != nil {
		t.Fatalf("BuildReplicatedSite: %v", err)
	}
	if got := len(replicas["T3E"]); got != 2 {
		t.Fatalf("T3E replicas = %d, want the per-vsite override 2", got)
	}
	if got := len(replicas["CLUSTER"]); got != 3 {
		t.Fatalf("CLUSTER replicas = %d, want the default 3", got)
	}
	// Replica instance tags keep job IDs disjoint across the pool.
	tags := map[string]bool{}
	for _, n := range replicas["CLUSTER"] {
		if tags[n.Instance()] {
			t.Fatalf("duplicate replica instance tag %q", n.Instance())
		}
		tags[n.Instance()] = true
	}
	// The gateway fronts the router, and a consigned job lands on exactly
	// one replica with the DN→login mapping applied.
	if gw.Backend() != njs.Service(router) {
		t.Fatal("gateway backend is not the router")
	}
	b := client.NewJob("hello", core.Target{Usite: "FZJ", Vsite: "CLUSTER"})
	b.Script("noop", "echo hello\n", resources.Request{Processors: 1, RunTime: time.Hour})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := router.Consign(context.Background(), "CN=Alice,O=FZJ,C=DE", "c1", job)
	if err != nil {
		t.Fatalf("Consign through router: %v", err)
	}
	owners := 0
	for _, n := range replicas["CLUSTER"] {
		if jobs, _ := n.List("CN=Alice,O=FZJ,C=DE"); len(jobs) == 1 && jobs[0].Job == id {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("job %s owned by %d replicas, want exactly 1", id, owners)
	}
}

// TestBuildReplicaGrowsLiveVsite covers the extracted single-replica build
// path: a replica built on its own joins an already-serving ReplicaSet and
// takes traffic, without rebuilding the site.
func TestBuildReplicaGrowsLiveVsite(t *testing.T) {
	clock := sim.NewVirtualClock()
	vcfg := VsiteConfig{Name: "CLUSTER", Machine: "cluster"}
	vc, err := vcfg.VsiteNJSConfig()
	if err != nil {
		t.Fatalf("VsiteNJSConfig: %v", err)
	}
	set, err := pool.New(pool.Config{Vsite: "CLUSTER", Policy: pool.RoundRobin, Clock: clock})
	if err != nil {
		t.Fatalf("pool.New: %v", err)
	}
	set.SetLoginMapper(func(core.DN, core.Vsite) (uudb.Login, error) {
		return uudb.Login{UID: "a"}, nil
	})
	for r := 0; r < 2; r++ {
		n, err := BuildReplica("FZJ", vc, clock, pool.ReplicaTag(r))
		if err != nil {
			t.Fatalf("BuildReplica(%d): %v", r, err)
		}
		if err := set.Add(pool.ReplicaTag(r), n); err != nil {
			t.Fatalf("Add(%d): %v", r, err)
		}
	}
	// The set is live: consign a job through it first…
	b := client.NewJob("before-grow", core.Target{Usite: "FZJ", Vsite: "CLUSTER"})
	b.Script("noop", "echo hi\n", resources.Request{Processors: 1, RunTime: time.Hour})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := set.Consign(context.Background(), "CN=A", "grow-0", job); err != nil {
		t.Fatalf("Consign before grow: %v", err)
	}
	// …then grow it by one replica built in isolation.
	n3, err := BuildReplica("FZJ", vc, clock, pool.ReplicaTag(2))
	if err != nil {
		t.Fatalf("BuildReplica(2): %v", err)
	}
	if n3.Usite() != "FZJ" || n3.Instance() != "r2" {
		t.Fatalf("replica identity wrong: usite=%s instance=%s", n3.Usite(), n3.Instance())
	}
	if err := set.Add(pool.ReplicaTag(2), n3); err != nil {
		t.Fatalf("Add(2) on live set: %v", err)
	}
	if got := len(set.Names()); got != 3 {
		t.Fatalf("set has %d replicas after grow, want 3", got)
	}
	// The newcomer serves: round robin reaches it within one lap of the set.
	landed := false
	for i := 1; i <= 3 && !landed; i++ {
		b := client.NewJob("after-grow", core.Target{Usite: "FZJ", Vsite: "CLUSTER"})
		b.Script("noop", "echo hi\n", resources.Request{Processors: 1, RunTime: time.Hour})
		job, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if _, err := set.Consign(context.Background(), "CN=A", fmt.Sprintf("grow-%d", i), job); err != nil {
			t.Fatalf("Consign after grow: %v", err)
		}
		if jobs, _ := n3.List("CN=A"); len(jobs) > 0 {
			landed = true
		}
	}
	if !landed {
		t.Fatal("grown replica never took a consign within a full round-robin lap")
	}
}

// TestBuildDurableReplicaRecovers round-trips one replica through a crash:
// consign against the journaled replica, kill it, rebuild from the same
// store, and find the job again under the same instance tag.
func TestBuildDurableReplicaRecovers(t *testing.T) {
	clock := sim.NewVirtualClock()
	vcfg := VsiteConfig{Name: "CLUSTER", Machine: "cluster"}
	vc, err := vcfg.VsiteNJSConfig()
	if err != nil {
		t.Fatalf("VsiteNJSConfig: %v", err)
	}
	dir := t.TempDir()
	store, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	n, err := BuildDurableReplica("FZJ", vc, clock, "r0", store, 0)
	if err != nil {
		t.Fatalf("BuildDurableReplica: %v", err)
	}
	n.SetLoginMapper(func(core.DN, core.Vsite) (uudb.Login, error) {
		return uudb.Login{UID: "a"}, nil
	})
	n.ResumeRecovered()
	b := client.NewJob("durable", core.Target{Usite: "FZJ", Vsite: "CLUSTER"})
	b.Script("noop", "echo durable\n", resources.Request{Processors: 1, RunTime: time.Hour})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := n.Consign(context.Background(), "CN=A", "dur-r0", job)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	if err := store.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	n.Kill()
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	store2, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close()
	n2, err := BuildDurableReplica("FZJ", vc, clock, "r0", store2, 0)
	if err != nil {
		t.Fatalf("BuildDurableReplica (reboot): %v", err)
	}
	n2.ResumeRecovered()
	if n2.Instance() != "r0" {
		t.Fatalf("recovered instance = %q, want r0", n2.Instance())
	}
	jobs, err := n2.List("CN=A")
	if err != nil || len(jobs) != 1 || jobs[0].Job != id {
		t.Fatalf("recovered jobs = %+v, %v (want the consigned job %s)", jobs, err, id)
	}
}

// TestBuildDurableSiteErrorPathClosesStore drives BuildDurableSite into its
// post-journal-open failure path (a nil credential fails gateway assembly)
// and checks two things the error handling owes the caller: the assembly
// error itself survives (errors.Join must not mask it), and the journal
// store was really closed — the same state directory must boot cleanly
// afterwards, proving no replayable state was held hostage by a leaked
// writer.
func TestBuildDurableSiteErrorPathClosesStore(t *testing.T) {
	path := writeTemp(t, "site.json", siteJSON)
	cfg, err := LoadSiteConfig(path)
	if err != nil {
		t.Fatalf("LoadSiteConfig: %v", err)
	}
	ca, err := pki.NewAuthority("Deploy-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	clock := sim.NewVirtualClock()
	stateDir := t.TempDir()

	_, _, _, _, err = BuildDurableSite(cfg, nil, ca, clock, stateDir, 0)
	if err == nil {
		t.Fatal("BuildDurableSite with nil credential succeeded")
	}
	if !strings.Contains(err.Error(), "credential") {
		t.Fatalf("gateway assembly error masked by the close path: %v", err)
	}

	// The store must have been closed: the directory boots again.
	cred, err := ca.IssueServer("gateway.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	_, n, _, store, err := BuildDurableSite(cfg, cred, ca, clock, stateDir, 0)
	if err != nil {
		t.Fatalf("BuildDurableSite after failed attempt: %v", err)
	}
	n.ResumeRecovered()
	if err := store.Close(); err != nil {
		t.Fatalf("closing recovered store: %v", err)
	}
}
