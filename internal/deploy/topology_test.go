package deploy

import (
	"reflect"
	"strings"
	"testing"

	"unicore/internal/core"
)

// sampleTopology is a two-site spec exercising every optional knob.
const sampleTopology = `{
  "version": 1,
  "journalDir": "/var/lib/unicore",
  "sites": [
    {
      "usite": "FZJ",
      "vsites": [
        {
          "name": "T3E",
          "machine": "t3e",
          "processors": 512,
          "replicas": 3,
          "policy": "least-loaded",
          "generation": 2,
          "spoolTTLSec": 3600,
          "snapshotEvery": 256,
          "autoscale": {"min": 2, "max": 6, "backlogPerReplica": 4, "idleCycles": 3}
        },
        {
          "name": "CLUSTER",
          "machine": "cluster",
          "backfill": true,
          "queues": [{"name": "fast", "slots": 8, "maxTimeSec": 600}]
        }
      ],
      "users": [
        {"dn": "CN=Alice,O=Test", "logins": {"T3E": {"uid": "alice"}}}
      ]
    },
    {
      "usite": "ZIB",
      "vsites": [{"name": "SP2", "machine": "sp2", "replicas": 2}]
    }
  ],
  "peers": [
    {"usite": "FZJ", "url": "https://gw.fzj.unicore"},
    {"usite": "ZIB", "url": "https://gw.zib.unicore"},
    {"usite": "RUS", "url": "https://gw.rus.unicore"}
  ]
}`

func parseSample(t *testing.T) *TopologySpec {
	t.Helper()
	spec, err := ParseTopology([]byte(sampleTopology))
	if err != nil {
		t.Fatalf("ParseTopology: %v", err)
	}
	return spec
}

// TestTopologyRoundTrip is the property the fuzz target generalises: a
// validated spec survives encode→parse unchanged.
func TestTopologyRoundTrip(t *testing.T) {
	spec := parseSample(t)
	data, err := spec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	again, err := ParseTopology(data)
	if err != nil {
		t.Fatalf("ParseTopology(Encode): %v", err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", spec, again)
	}
	// And the spec's lookups see what the document declared.
	site, ok := spec.Site("FZJ")
	if !ok {
		t.Fatal("Site(FZJ) not found")
	}
	v, ok := site.Vsite("T3E")
	if !ok {
		t.Fatal("Vsite(T3E) not found")
	}
	if v.DeclaredReplicas() != 3 || v.ReplicaFloor() != 2 || v.SpoolTTL().Seconds() != 3600 {
		t.Fatalf("T3E decoded wrong: %+v", v)
	}
	if c, ok := site.Vsite("CLUSTER"); !ok || c.DeclaredReplicas() != 1 {
		t.Fatalf("CLUSTER should default to 1 replica, got %+v", c)
	}
}

// TestTopologyValidate walks the rejection surface: each mutation of the
// valid sample must fail with a message naming the problem.
func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name, munge, want string
	}{
		{"version", `"version": 1`, "unsupported spec version"},
		{"machine", `"machine": "sp2"`, "unknown machine"},
		{"policy", `"policy": "least-loaded"`, "unknown policy"},
		{"negative-replicas", `"replicas": 2`, "negative replica count"},
		{"autoscale-min", `"min": 2`, "autoscale min"},
		{"autoscale-max", `"max": 6`, "autoscale max"},
		{"declared-outside", `"replicas": 3`, "outside autoscale bounds"},
		{"unknown-user-vsite", `"T3E": {"uid": "alice"}`, "unknown vsite"},
		{"peer-no-url", `{"usite": "RUS", "url": "https://gw.rus.unicore"}`, "has no url"},
		{"dup-peer", `{"usite": "RUS", "url": "https://gw.rus.unicore"}`, "duplicate peer"},
	}
	repl := map[string]string{
		"version":            `"version": 9`,
		"machine":            `"machine": "cray-3000"`,
		"policy":             `"policy": "psychic"`,
		"negative-replicas":  `"replicas": -1`,
		"autoscale-min":      `"min": 0`,
		"autoscale-max":      `"max": 1`,
		"declared-outside":   `"replicas": 9`,
		"unknown-user-vsite": `"GONE": {"uid": "alice"}`,
		"peer-no-url":        `{"usite": "RUS", "url": ""}`,
		"dup-peer":           `{"usite": "FZJ", "url": "https://gw.rus.unicore"}`,
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := strings.Replace(sampleTopology, tc.munge, repl[tc.name], 1)
			if doc == sampleTopology {
				t.Fatalf("munge %q did not apply", tc.munge)
			}
			_, err := ParseTopology([]byte(doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
	// Structural rejections that aren't single-token munges.
	structural := []struct{ name, doc, want string }{
		{"unknown-field", `{"version": 1, "sites": [], "replcas": 3}`, "unknown field"},
		{"trailing", sampleTopology + `{"version": 1}`, "trailing data"},
		{"no-sites", `{"version": 1, "sites": []}`, "no sites"},
		{"dup-site", `{"version": 1, "sites": [
			{"usite": "A", "vsites": [{"name": "V", "machine": "cluster"}]},
			{"usite": "A", "vsites": [{"name": "V", "machine": "cluster"}]}]}`, "duplicate usite"},
	}
	for _, tc := range structural {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestTopologySiteConfig checks the bridge from topology spec to the
// per-site config the builders consume.
func TestTopologySiteConfig(t *testing.T) {
	spec := parseSample(t)
	cfg, err := spec.SiteConfig("FZJ")
	if err != nil {
		t.Fatalf("SiteConfig: %v", err)
	}
	if cfg.Usite != "FZJ" || len(cfg.Vsites) != 2 || len(cfg.Users) != 1 {
		t.Fatalf("converted config wrong: %+v", cfg)
	}
	if cfg.Vsites[0].Replicas != 3 || cfg.Vsites[1].Replicas != 1 {
		t.Fatalf("replica counts not carried over: %+v", cfg.Vsites)
	}
	if _, err := spec.SiteConfig("NOPE"); err == nil {
		t.Fatal("SiteConfig of undeclared usite succeeded")
	}
}

// TestDiffTopology drives every change kind the differ reports.
func TestDiffTopology(t *testing.T) {
	cur := parseSample(t)
	if d := DiffTopology(cur, parseSample(t)); d != nil {
		t.Fatalf("identical specs diff to %v, want nil", d)
	}
	want := parseSample(t)
	site, _ := want.Site("FZJ")
	v, _ := site.Vsite("T3E")
	v.Replicas = 5
	v.Generation = 3
	v.Policy = "consistent-hash"
	v.SpoolTTLSec = 7200
	v.Autoscale = nil
	site.Vsites = append(site.Vsites, TopologyVsite{Name: "SX4", Machine: "sx4"})
	want.Sites = want.Sites[:1] // drop ZIB
	want.Peers[2].URL = "https://gw2.rus.unicore"
	want.Peers = append(want.Peers, TopologyPeer{Usite: "LRZ", URL: "https://gw.lrz.unicore"})

	ops := map[string]int{}
	for _, c := range DiffTopology(cur, want) {
		ops[c.Op]++
		if c.String() == "" {
			t.Fatalf("change %+v renders empty", c)
		}
	}
	for _, op := range []string{"scale", "roll", "policy", "spool-ttl", "autoscale", "add-vsite", "remove-site", "add-peer", "peer-url"} {
		if ops[op] != 1 {
			t.Fatalf("diff ops = %v, want one %q", ops, op)
		}
	}

	// Removing a vsite or peer shows up from the other direction.
	var sawRemove, sawRemovePeer bool
	for _, c := range DiffTopology(want, cur) {
		if c.Op == "remove-vsite" && c.Vsite == core.Vsite("SX4") {
			sawRemove = true
		}
		if c.Op == "remove-peer" && c.Usite == core.Usite("LRZ") {
			sawRemovePeer = true
		}
	}
	if !sawRemove {
		t.Fatal("reverse diff lacks remove-vsite SX4")
	}
	if !sawRemovePeer {
		t.Fatal("reverse diff lacks remove-peer LRZ")
	}
}
