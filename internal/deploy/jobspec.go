package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/resources"
)

// JobSpec is the JSON job description the CLI JPA consumes — the file-based
// equivalent of filling in the JPA's GUI forms.
type JobSpec struct {
	Name    string     `json:"name"`
	Target  string     `json:"target"` // "USITE/VSITE"
	Project string     `json:"project,omitempty"`
	Tasks   []TaskSpec `json:"tasks"`
	Deps    []DepSpec  `json:"deps,omitempty"`
	// Jobs nests job groups for other destinations.
	Jobs []JobSpec `json:"jobs,omitempty"`
}

// TaskSpec is one task of a JobSpec.
type TaskSpec struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Type is one of: script, command, execute, compile, link, import,
	// export, transfer.
	Type string `json:"type"`

	// script
	Script string `json:"script,omitempty"`
	// command
	Command string `json:"command,omitempty"`
	// execute
	Executable string   `json:"executable,omitempty"`
	Args       []string `json:"args,omitempty"`
	// compile / link
	Language  string   `json:"language,omitempty"`
	Sources   []string `json:"sources,omitempty"`
	Objects   []string `json:"objects,omitempty"`
	Libraries []string `json:"libraries,omitempty"`
	Output    string   `json:"output,omitempty"`
	// import: File is a path on the submitting workstation (read at build
	// time and carried inline in the AJO, §5.6); Xspace names a file already
	// at the Vsite.
	File   string `json:"file,omitempty"`
	Data   string `json:"data,omitempty"` // literal inline data
	Xspace string `json:"xspace,omitempty"`
	To     string `json:"to,omitempty"`
	// export
	From     string `json:"from,omitempty"`
	ToXspace string `json:"toXspace,omitempty"`
	// transfer
	FromTask string   `json:"fromTask,omitempty"`
	Files    []string `json:"files,omitempty"`

	// resources
	Processors int `json:"processors,omitempty"`
	RunTimeSec int `json:"runTimeSec,omitempty"`
	MemoryMB   int `json:"memoryMB,omitempty"`
	PermDiskMB int `json:"permDiskMB,omitempty"`
	TempDiskMB int `json:"tempDiskMB,omitempty"`
}

// DepSpec wires two tasks, optionally naming handed-over files.
type DepSpec struct {
	Before string   `json:"before"`
	After  string   `json:"after"`
	Files  []string `json:"files,omitempty"`
}

// LoadJobSpec reads a job description file.
func LoadJobSpec(path string) (*JobSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	var spec JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("deploy: parsing %s: %w", path, err)
	}
	return &spec, nil
}

// Build converts the spec into a validated AbstractJob.
func (s *JobSpec) Build() (*ajo.AbstractJob, error) {
	target, err := core.ParseTarget(s.Target)
	if err != nil {
		return nil, err
	}
	job := &ajo.AbstractJob{
		Header:  ajo.Header{ActionID: ajo.NewID("job"), ActionName: s.Name},
		Target:  target,
		Project: s.Project,
	}
	ids := map[string]ajo.ActionID{}
	for _, t := range s.Tasks {
		a, err := t.build()
		if err != nil {
			return nil, fmt.Errorf("deploy: task %q: %w", t.ID, err)
		}
		if _, dup := ids[t.ID]; dup {
			return nil, fmt.Errorf("deploy: duplicate task id %q", t.ID)
		}
		ids[t.ID] = a.ID()
		job.Actions = append(job.Actions, a)
	}
	for _, sub := range s.Jobs {
		subJob, err := sub.Build()
		if err != nil {
			return nil, fmt.Errorf("deploy: job group %q: %w", sub.Name, err)
		}
		if _, dup := ids[sub.Name]; dup {
			return nil, fmt.Errorf("deploy: job group name %q collides with a task id", sub.Name)
		}
		ids[sub.Name] = subJob.ID()
		job.Actions = append(job.Actions, subJob)
	}
	for _, d := range s.Deps {
		before, ok := ids[d.Before]
		if !ok {
			return nil, fmt.Errorf("deploy: dependency names unknown task %q", d.Before)
		}
		after, ok := ids[d.After]
		if !ok {
			return nil, fmt.Errorf("deploy: dependency names unknown task %q", d.After)
		}
		job.Dependencies = append(job.Dependencies, ajo.Dependency{Before: before, After: after, Files: d.Files})
	}
	// Transfer tasks referenced sibling specs by ID; rewrite them.
	for _, a := range job.Actions {
		if tr, ok := a.(*ajo.TransferTask); ok {
			src, ok := ids[string(tr.FromAction)]
			if !ok {
				return nil, fmt.Errorf("deploy: transfer %s names unknown task %q", tr.ActionID, tr.FromAction)
			}
			tr.FromAction = src
		}
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	return job, nil
}

// request assembles the task's resource demand.
func (t *TaskSpec) request() resources.Request {
	return resources.Request{
		Processors: t.Processors,
		RunTime:    time.Duration(t.RunTimeSec) * time.Second,
		MemoryMB:   t.MemoryMB,
		PermDiskMB: t.PermDiskMB,
		TempDiskMB: t.TempDiskMB,
	}
}

// build converts one task spec.
func (t *TaskSpec) build() (ajo.Action, error) {
	if t.ID == "" {
		return nil, fmt.Errorf("task without id")
	}
	name := t.Name
	if name == "" {
		name = t.ID
	}
	base := ajo.TaskBase{
		Header:    ajo.Header{ActionID: ajo.ActionID(t.ID), ActionName: name},
		Resources: t.request(),
	}
	hdr := ajo.Header{ActionID: ajo.ActionID(t.ID), ActionName: name}
	switch t.Type {
	case "script":
		return &ajo.ScriptTask{TaskBase: base, Script: t.Script}, nil
	case "command":
		return &ajo.UserTask{TaskBase: base, Command: t.Command}, nil
	case "execute":
		return &ajo.ExecuteTask{TaskBase: base, Executable: t.Executable, Arguments: t.Args}, nil
	case "compile":
		return &ajo.CompileTask{TaskBase: base, Language: t.Language, Sources: t.Sources, Output: t.Output}, nil
	case "link":
		return &ajo.LinkTask{TaskBase: base, Objects: t.Objects, Libraries: t.Libraries, Output: t.Output}, nil
	case "import":
		src := ajo.ImportSource{XspacePath: t.Xspace}
		switch {
		case t.File != "":
			data, err := os.ReadFile(t.File)
			if err != nil {
				return nil, fmt.Errorf("reading workstation file: %w", err)
			}
			src = ajo.ImportSource{Inline: data}
		case t.Data != "":
			src = ajo.ImportSource{Inline: []byte(t.Data)}
		}
		return &ajo.ImportTask{Header: hdr, Source: src, To: t.To}, nil
	case "export":
		return &ajo.ExportTask{Header: hdr, From: t.From, ToXspace: t.ToXspace}, nil
	case "transfer":
		// FromTask is resolved to the real ActionID by JobSpec.Build.
		return &ajo.TransferTask{Header: hdr, FromAction: ajo.ActionID(t.FromTask), Files: t.Files}, nil
	default:
		return nil, fmt.Errorf("unknown task type %q", t.Type)
	}
}
