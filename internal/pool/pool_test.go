package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/staging"
	"unicore/internal/telemetry"
)

// fakeService is a minimal in-memory njs.Service for pool routing tests. It
// reproduces the two NJS behaviours the pool depends on: idempotent
// consignment by consign ID, and the killed-NJS refusal (ErrDown) —
// optionally after admitting, which models the killed-between-admit-and-ack
// window of the durable consign path.
type fakeService struct {
	usite    core.Usite
	vsite    core.Vsite
	instance string

	mu           sync.Mutex
	seq          int
	jobs         map[core.JobID]core.DN // job → owner
	consigns     map[string]core.JobID  // consign ID → admitted job
	consignN     int                    // admissions performed
	pollN        int                    // polls served
	down         bool
	admitUnacked bool // admit the job, then refuse the ack (ErrDown)
	load         float64
	aborts       []core.JobID // jobs aborted via Control
	mapper       njs.LoginMapper
	stages       map[string]int64 // staged handle → chunk watermark
}

func newFake(usite core.Usite, vsite core.Vsite, instance string) *fakeService {
	return &fakeService{
		usite: usite, vsite: vsite, instance: instance,
		jobs:     make(map[core.JobID]core.DN),
		consigns: make(map[string]core.JobID),
	}
}

func (f *fakeService) Usite() core.Usite { return f.usite }

func (f *fakeService) Consign(ctx context.Context, user core.DN, consignID string, job *ajo.AbstractJob) (core.JobID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down && !f.admitUnacked {
		return "", njs.ErrDown
	}
	if consignID != "" {
		if id, dup := f.consigns[consignID]; dup {
			return id, nil
		}
	}
	f.seq++
	id := core.JobID(fmt.Sprintf("%s-%s-%06d", f.usite, f.instance, f.seq))
	f.jobs[id] = user
	f.consignN++
	if consignID != "" {
		f.consigns[consignID] = id
	}
	if f.down { // admitted, but the ack is refused — the unacked window
		return id, njs.ErrDown
	}
	return id, nil
}

func (f *fakeService) Poll(caller core.DN, asServer bool, id core.JobID) (protocol.PollReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pollN++
	if _, ok := f.jobs[id]; !ok {
		return protocol.PollReply{Found: false}, nil
	}
	return protocol.PollReply{Found: true, Summary: ajo.Summary{Job: string(id)}}, nil
}

func (f *fakeService) Outcome(caller core.DN, asServer bool, id core.JobID) (*ajo.Outcome, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.jobs[id]; !ok {
		return nil, false, nil
	}
	return &ajo.Outcome{}, true, nil
}

func (f *fakeService) List(caller core.DN) ([]protocol.JobInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []protocol.JobInfo
	for id, owner := range f.jobs {
		if owner == caller {
			out = append(out, protocol.JobInfo{Job: id})
		}
	}
	return out, nil
}

func (f *fakeService) Control(caller core.DN, asServer bool, id core.JobID, op ajo.ControlOp) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.jobs[id]; !ok {
		return fmt.Errorf("%w: %s", njs.ErrUnknownJob, id)
	}
	if op == ajo.OpAbort {
		f.aborts = append(f.aborts, id)
	}
	return nil
}

// ConsignedJobs implements pool.ConsignReporter, mirroring the NJS index.
func (f *fakeService) ConsignedJobs() map[string]core.JobID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]core.JobID, len(f.consigns))
	for k, v := range f.consigns {
		out[k] = v
	}
	return out
}

func (f *fakeService) FetchFile(id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.jobs[id]; !ok {
		return protocol.TransferReply{Found: false}, nil
	}
	return protocol.TransferReply{Found: true}, nil
}

func (f *fakeService) FetchFileOwned(caller core.DN, asServer bool, id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	return f.FetchFile(id, file, offset, limit)
}

func (f *fakeService) Pages() []resources.Page {
	return []resources.Page{{Target: core.Target{Usite: f.usite, Vsite: f.vsite}}}
}

func (f *fakeService) Load() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.load
}

func (f *fakeService) VsiteLoads() map[core.Vsite]njs.VsiteLoad {
	f.mu.Lock()
	defer f.mu.Unlock()
	return map[core.Vsite]njs.VsiteLoad{
		f.vsite: {Load: f.load, Pending: 0, Replicas: 1, Healthy: 1},
	}
}

func (f *fakeService) SetLoginMapper(fn njs.LoginMapper) {
	f.mu.Lock()
	f.mapper = fn
	f.mu.Unlock()
}

func (f *fakeService) Ping() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return njs.ErrDown
	}
	return nil
}

func (f *fakeService) Events(caller core.DN, asServer bool, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if req.Job != "" {
		if _, ok := f.jobs[req.Job]; !ok {
			return protocol.EventsReply{}, fmt.Errorf("%w: %s", njs.ErrUnknownJob, req.Job)
		}
		return protocol.EventsReply{Cursor: req.Cursor}, nil
	}
	return protocol.EventsReply{Origins: map[string]uint64{f.instance: req.Cursor}}, nil
}

func (f *fakeService) EventsNotify(protocol.SubscribeRequest) (<-chan struct{}, func()) {
	return make(chan struct{}), func() {}
}

func (f *fakeService) StageOpen(caller core.DN, asServer bool, req protocol.PutOpenRequest) (protocol.PutOpenReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return protocol.PutOpenReply{}, njs.ErrDown
	}
	f.seq++
	h := fmt.Sprintf("stg-%s-%06d", f.instance, f.seq)
	if f.stages == nil {
		f.stages = make(map[string]int64)
	}
	f.stages[h] = 0
	return protocol.PutOpenReply{Handle: h, ChunkSize: req.ChunkSize, Window: req.Window}, nil
}

func (f *fakeService) StageChunk(caller core.DN, asServer bool, req protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return protocol.PutChunkReply{}, njs.ErrDown
	}
	w, ok := f.stages[req.Handle]
	if !ok {
		return protocol.PutChunkReply{}, fmt.Errorf("%w: %q", staging.ErrUnknownHandle, req.Handle)
	}
	if req.Index == w {
		w++
		f.stages[req.Handle] = w
	}
	return protocol.PutChunkReply{Received: w}, nil
}

// StagedHandles implements pool.StageReporter, mirroring the NJS spool index.
func (f *fakeService) StagedHandles() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.stages))
	for h := range f.stages {
		out = append(out, h)
	}
	return out
}

func (f *fakeService) StageCommit(caller core.DN, asServer bool, req protocol.PutCommitRequest) (protocol.PutCommitReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return protocol.PutCommitReply{}, njs.ErrDown
	}
	w, ok := f.stages[req.Handle]
	if !ok {
		return protocol.PutCommitReply{}, fmt.Errorf("%w: %q", staging.ErrUnknownHandle, req.Handle)
	}
	return protocol.PutCommitReply{Chunks: w, CRC: req.CRC}, nil
}

func (f *fakeService) Metrics() []telemetry.Snapshot {
	return []telemetry.Snapshot{{Origin: "fake/" + string(f.usite) + "/" + f.instance}}
}

func (f *fakeService) setDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

func (f *fakeService) jobCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.jobs)
}

var _ njs.Service = (*fakeService)(nil)

func testJob(vsite core.Vsite) *ajo.AbstractJob {
	return &ajo.AbstractJob{Target: core.Target{Usite: "FZJ", Vsite: vsite}}
}

// newTestSet builds a 3-replica set over fakes under a virtual clock.
func newTestSet(t *testing.T, policy Policy) (*ReplicaSet, *sim.VirtualClock, []*fakeService) {
	t.Helper()
	clock := sim.NewVirtualClock()
	set, err := New(Config{
		Vsite:       "CLUSTER",
		Policy:      policy,
		Clock:       clock,
		BackoffBase: 10 * time.Second,
		BackoffMax:  80 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var fakes []*fakeService
	for i := 0; i < 3; i++ {
		f := newFake("FZJ", "CLUSTER", fmt.Sprintf("r%d", i))
		fakes = append(fakes, f)
		if err := set.Add(fmt.Sprintf("r%d", i), f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return set, clock, fakes
}

func TestRoundRobinSpreadsConsigns(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	for i := 0; i < 9; i++ {
		if _, err := set.Consign(context.Background(), "CN=u", fmt.Sprintf("c%d", i), testJob("CLUSTER")); err != nil {
			t.Fatalf("Consign: %v", err)
		}
	}
	for i, f := range fakes {
		if got := f.jobCount(); got != 3 {
			t.Errorf("replica r%d admitted %d jobs, want 3", i, got)
		}
	}
}

func TestAllReplicasUnhealthyIsCleanErrNoReplica(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, LeastLoaded, ConsistentHash} {
		set, _, fakes := newTestSet(t, policy)
		for _, f := range fakes {
			f.setDown(true)
		}
		set.CheckNow() // trip every breaker
		if h := set.Healthy(); len(h) != 0 {
			t.Fatalf("[%s] healthy after CheckNow on all-down pool: %v", policy, h)
		}
		if _, err := set.Consign(context.Background(), "CN=u", "c1", testJob("CLUSTER")); !errors.Is(err, ErrNoReplica) {
			t.Errorf("[%s] Consign on all-down pool: err = %v, want ErrNoReplica", policy, err)
		}
		if _, err := set.Poll("CN=u", false, "FZJ-r0-000001"); !errors.Is(err, ErrNoReplica) {
			t.Errorf("[%s] Poll on all-down pool: err = %v, want ErrNoReplica", policy, err)
		}
	}
}

// TestConsignFailoverDoesNotDuplicate is the unacked-admission retry
// contract: replica r0 admits a job but dies before acknowledging; the pool
// fails over to the next healthy replica, and a client retry with the same
// consign ID converges on the acknowledged admission instead of running the
// job a third time.
func TestConsignFailoverDoesNotDuplicate(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	fakes[0].setDown(true)
	fakes[0].admitUnacked = true
	fakes[1].setDown(true) // plain refusal, nothing admitted
	set.rr.Store(-1)       // make r0 the first pick

	id, err := set.Consign(context.Background(), "CN=u", "retry-1", testJob("CLUSTER"))
	if err != nil {
		t.Fatalf("Consign with failover: %v", err)
	}
	if fakes[2].jobCount() != 1 {
		t.Fatalf("surviving replica admitted %d jobs, want 1", fakes[2].jobCount())
	}

	// Retry with the same consign ID: the ack index answers, nobody admits.
	id2, err := set.Consign(context.Background(), "CN=u", "retry-1", testJob("CLUSTER"))
	if err != nil || id2 != id {
		t.Fatalf("retry: id=%s err=%v, want converged id %s", id2, err, id)
	}
	if n := fakes[2].jobCount(); n != 1 {
		t.Fatalf("retry duplicated the job: surviving replica has %d jobs", n)
	}

	// Reads route to the acknowledged copy, never the unacked orphan on r0.
	reply, err := set.Poll("CN=u", false, id)
	if err != nil || !reply.Found {
		t.Fatalf("Poll(%s): found=%v err=%v", id, reply.Found, err)
	}
	if fakes[0].pollN != 0 {
		t.Errorf("read was routed to the failed replica (%d polls)", fakes[0].pollN)
	}
}

// TestConsistentHashAffinitySurvivesReplicaRestart covers both restart
// flavours: a replica restart (SetService hot-swap under the same pool
// name) keeps job reads landing on the owner, and a pool restart (fresh
// ReplicaSet, empty affinity) re-places the same consign ID on the same
// replica via the name-keyed hash ring.
func TestConsistentHashAffinitySurvivesReplicaRestart(t *testing.T) {
	set, clock, fakes := newTestSet(t, ConsistentHash)
	id, err := set.Consign(context.Background(), "CN=u", "stable-key", testJob("CLUSTER"))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	var owner int
	for i, f := range fakes {
		if f.jobCount() == 1 {
			owner = i
		}
	}
	ownerName := fmt.Sprintf("r%d", owner)

	// Kill the owner: the health check trips its breaker and pinned reads
	// fail fast with ErrReplicaDown instead of consulting a stale copy.
	fakes[owner].setDown(true)
	set.CheckNow()
	if _, err := set.Poll("CN=u", false, id); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("Poll with owner down: err = %v, want ErrReplicaDown", err)
	}

	// Restart: a recovered service (same jobs) is swapped in under the same
	// replica name. The pinned read works again without re-routing.
	recovered := newFake("FZJ", "CLUSTER", fmt.Sprintf("r%d", owner))
	recovered.jobs[id] = "CN=u"
	recovered.consigns["stable-key"] = id
	if err := set.SetService(ownerName, recovered); err != nil {
		t.Fatalf("SetService: %v", err)
	}
	reply, err := set.Poll("CN=u", false, id)
	if err != nil || !reply.Found {
		t.Fatalf("Poll after restart: found=%v err=%v", reply.Found, err)
	}
	if recovered.pollN != 1 {
		t.Fatalf("restarted owner served %d polls, want 1", recovered.pollN)
	}

	// Pool restart: a fresh set over the same replica names has no affinity
	// state, yet the hash ring re-places the same consign key on the same
	// replica, where NJS-level idempotency converges on the admitted job.
	set2, err := New(Config{Vsite: "CLUSTER", Policy: ConsistentHash, Clock: clock})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, f := range fakes {
		svc := njs.Service(f)
		if i == owner {
			svc = recovered
		}
		if err := set2.Add(fmt.Sprintf("r%d", i), svc); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	id2, err := set2.Consign(context.Background(), "CN=u", "stable-key", testJob("CLUSTER"))
	if err != nil || id2 != id {
		t.Fatalf("re-consign after pool restart: id=%s err=%v, want %s", id2, err, id)
	}
	if n := recovered.jobCount(); n != 1 {
		t.Fatalf("pool restart duplicated the job: owner has %d jobs", n)
	}
}

func TestBreakerBacksOffExponentiallyAndRecovers(t *testing.T) {
	set, clock, fakes := newTestSet(t, RoundRobin)
	fakes[0].setDown(true)
	set.CheckNow() // trip r0: open for BackoffBase (10s)

	if h := set.Healthy(); len(h) != 2 {
		t.Fatalf("healthy = %v, want 2 replicas", h)
	}
	// Backoff window holds: still excluded before expiry.
	clock.Advance(5 * time.Second)
	for i := 0; i < 6; i++ {
		if _, err := set.Consign(context.Background(), "CN=u", fmt.Sprintf("b%d", i), testJob("CLUSTER")); err != nil {
			t.Fatalf("Consign: %v", err)
		}
	}
	if n := fakes[0].jobCount(); n != 0 {
		t.Fatalf("tripped replica received %d consigns inside the backoff window", n)
	}

	// Window expires, probe fails, window doubles: after the first re-trip
	// the replica is open for 20s, so at +15s it must still be excluded.
	clock.Advance(6 * time.Second) // t=11s: half-open
	if _, err := set.Consign(context.Background(), "CN=u", "probe-1", testJob("CLUSTER")); err != nil {
		t.Fatalf("Consign: %v", err)
	}
	if n := fakes[0].jobCount(); n != 0 {
		t.Fatalf("half-open probe admitted %d jobs on a dead replica", n)
	}
	clock.Advance(15 * time.Second) // t=26s: inside the doubled window
	if got := set.Healthy(); len(got) != 2 {
		t.Fatalf("healthy = %v inside doubled backoff window, want 2", got)
	}

	// Replica heals: once the window expires the probe closes the breaker.
	fakes[0].setDown(false)
	clock.Advance(10 * time.Second) // t=36s: past 11s+20s
	set.CheckNow()
	if got := set.Healthy(); len(got) != 3 {
		t.Fatalf("healthy = %v after recovery, want all 3", got)
	}
}

func TestLeastLoadedPrefersIdleReplica(t *testing.T) {
	set, _, fakes := newTestSet(t, LeastLoaded)
	fakes[0].load = 0.9
	fakes[1].load = 0.5
	fakes[2].load = 0.1
	for i := 0; i < 3; i++ {
		if _, err := set.Consign(context.Background(), "CN=u", fmt.Sprintf("l%d", i), testJob("CLUSTER")); err != nil {
			t.Fatalf("Consign: %v", err)
		}
	}
	if n := fakes[2].jobCount(); n != 3 {
		t.Fatalf("idle replica admitted %d jobs, want all 3", n)
	}
}

func TestRouterRoutesAcrossVsitesAndReportsHealth(t *testing.T) {
	clock := sim.NewVirtualClock()
	router, err := NewRouter("FZJ")
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	var all []*fakeService
	for _, vs := range []core.Vsite{"A", "B"} {
		set, err := New(Config{Vsite: vs, Clock: clock})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for i := 0; i < 2; i++ {
			f := newFake("FZJ", vs, fmt.Sprintf("%s%d", vs, i))
			all = append(all, f)
			if err := set.Add(fmt.Sprintf("%s-r%d", vs, i), f); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		if err := router.AddSet(set); err != nil {
			t.Fatalf("AddSet: %v", err)
		}
	}
	job := &ajo.AbstractJob{Target: core.Target{Usite: "FZJ", Vsite: "B"}}
	id, err := router.Consign(context.Background(), "CN=u", "x1", job)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	if reply, err := router.Poll("CN=u", false, id); err != nil || !reply.Found {
		t.Fatalf("Poll: found=%v err=%v", reply.Found, err)
	}
	if a := all[0].jobCount() + all[1].jobCount(); a != 0 {
		t.Fatalf("Vsite A admitted %d jobs for a Vsite B consign", a)
	}

	loads := router.VsiteLoads()
	if got := loads["A"]; got.Replicas != 2 || got.Healthy != 2 {
		t.Fatalf("VsiteLoads[A] = %+v, want 2/2 replicas healthy", got)
	}
	// Drain Vsite A entirely: the load report says 0 healthy, the router
	// still serves B.
	all[0].setDown(true)
	all[1].setDown(true)
	router.CheckNow()
	if got := router.VsiteLoads()["A"]; got.Healthy != 0 || got.Replicas != 2 {
		t.Fatalf("VsiteLoads[A] after drain = %+v, want 0 healthy of 2", got)
	}
	if err := router.Ping(); err != nil {
		t.Fatalf("Ping with one live Vsite: %v", err)
	}
	if _, err := router.Consign(context.Background(), "CN=u", "x2", job); err != nil {
		t.Fatalf("Consign to live Vsite after drain: %v", err)
	}
	if _, err := router.Consign(context.Background(), "CN=u", "x3", &ajo.AbstractJob{Target: core.Target{Usite: "FZJ", Vsite: "A"}}); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Consign to drained Vsite: err = %v, want ErrNoReplica", err)
	}
}

// TestRejoinAbortsOrphanAdmissions: a replica journals an admission, dies
// before acking, and consign failover re-admits the job elsewhere. When the
// replica rejoins (journal recovery + SetService), the pool must abort its
// orphan copy — the logical job never executes twice — while retries keep
// converging on the acknowledged admission.
func TestRejoinAbortsOrphanAdmissions(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	fakes[0].setDown(true)
	fakes[0].admitUnacked = true // journals the admission, refuses the ack
	fakes[1].setDown(true)
	set.rr.Store(-1) // make r0 the first pick

	id, err := set.Consign(context.Background(), "CN=u", "orphan-1", testJob("CLUSTER"))
	if err != nil {
		t.Fatalf("Consign with failover: %v", err)
	}
	orphanID, ok := fakes[0].consigns["orphan-1"]
	if !ok {
		t.Fatal("victim did not journal the unacked admission")
	}

	// The victim recovers from its journal, orphan included, and rejoins.
	recovered := newFake("FZJ", "CLUSTER", "r0")
	recovered.jobs[orphanID] = "CN=u"
	recovered.consigns["orphan-1"] = orphanID
	if err := set.SetService("r0", recovered); err != nil {
		t.Fatalf("SetService: %v", err)
	}
	if len(recovered.aborts) != 1 || recovered.aborts[0] != orphanID {
		t.Fatalf("orphan %s not aborted on rejoin (aborts: %v)", orphanID, recovered.aborts)
	}
	// Retries still converge on the acknowledged copy, not the orphan.
	id2, err := set.Consign(context.Background(), "CN=u", "orphan-1", testJob("CLUSTER"))
	if err != nil || id2 != id {
		t.Fatalf("retry after rejoin: id=%s err=%v, want %s", id2, err, id)
	}
}

// TestPoolRestartAdoptsReplicaAdmissions: a fresh ReplicaSet (empty ack
// index) over already-running replicas adopts their admitted consign IDs at
// Add time, so retries converge under every routing policy — not just
// consistent hashing.
func TestPoolRestartAdoptsReplicaAdmissions(t *testing.T) {
	set, clock, fakes := newTestSet(t, RoundRobin)
	id, err := set.Consign(context.Background(), "CN=u", "adopt-1", testJob("CLUSTER"))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}

	set2, err := New(Config{Vsite: "CLUSTER", Policy: RoundRobin, Clock: clock})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, f := range fakes {
		if err := set2.Add(fmt.Sprintf("r%d", i), f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	// A retry through the rebuilt pool must not round-robin onto a second
	// replica: the adopted index answers.
	for i := 0; i < 3; i++ {
		id2, err := set2.Consign(context.Background(), "CN=u", "adopt-1", testJob("CLUSTER"))
		if err != nil || id2 != id {
			t.Fatalf("retry %d after pool restart: id=%s err=%v, want %s", i, id2, err, id)
		}
	}
	total := 0
	for _, f := range fakes {
		total += f.jobCount()
	}
	if total != 1 {
		t.Fatalf("pool restart duplicated the job: %d admissions across replicas", total)
	}
	// Reads are affinity-routed without a scatter warm-up.
	if reply, err := set2.Poll("CN=u", false, id); err != nil || !reply.Found {
		t.Fatalf("Poll after adoption: found=%v err=%v", reply.Found, err)
	}
}

// TestConcurrentSameConsignIDSerializes: concurrent retries of one consign
// ID must not race onto different replicas; exactly one admission happens.
func TestConcurrentSameConsignIDSerializes(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	const callers = 8
	ids := make([]core.JobID, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := set.Consign(context.Background(), "CN=u", "same-id", testJob("CLUSTER"))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	total := 0
	for _, f := range fakes {
		total += f.jobCount()
	}
	if total != 1 {
		t.Fatalf("%d admissions for one consign ID, want 1", total)
	}
	for i := 1; i < callers; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("caller %d got %s, caller 0 got %s", i, ids[i], ids[0])
		}
	}
}

// TestEmptyConsignIDDoesNotFailOver: without a consign ID there is no
// idempotency to converge on, so an unacked admission must surface its
// error instead of risking a duplicate on another replica.
func TestEmptyConsignIDDoesNotFailOver(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	fakes[0].setDown(true)
	fakes[0].admitUnacked = true // journals the admission, refuses the ack
	set.rr.Store(-1)             // make r0 the first pick

	if _, err := set.Consign(context.Background(), "CN=u", "", testJob("CLUSTER")); !errors.Is(err, njs.ErrDown) {
		t.Fatalf("ID-less consign on a dying replica: err = %v, want ErrDown surfaced", err)
	}
	if n := fakes[1].jobCount() + fakes[2].jobCount(); n != 0 {
		t.Fatalf("ID-less consign failed over anyway: %d admissions on other replicas", n)
	}
	// The failure still tripped the breaker.
	if h := set.Healthy(); len(h) != 2 {
		t.Fatalf("healthy = %v after the refused ack, want 2", h)
	}
}

// TestPoolRestartConflictAbortsNeitherCopy: after a full pool restart the
// ack index is rebuilt by adoption, so when two replicas both hold a copy
// of one consign ID (an orphaned failover from before the restart), the
// pool cannot know which copy the client was acknowledged — it must keep
// both reachable and abort neither.
func TestPoolRestartConflictAbortsNeitherCopy(t *testing.T) {
	clock := sim.NewVirtualClock()
	set, err := New(Config{Vsite: "CLUSTER", Policy: RoundRobin, Clock: clock})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Both replicas hold a copy of consign ID "dup-1" from before the pool
	// restart: r0's was the unacked orphan, r1's the acknowledged one — but
	// the rebuilt pool cannot tell.
	a := newFake("FZJ", "CLUSTER", "r0")
	a.jobs["FZJ-r0-000001"] = "CN=u"
	a.consigns["dup-1"] = "FZJ-r0-000001"
	b := newFake("FZJ", "CLUSTER", "r1")
	b.jobs["FZJ-r1-000001"] = "CN=u"
	b.consigns["dup-1"] = "FZJ-r1-000001"
	if err := set.Add("r0", a); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := set.Add("r1", b); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if len(a.aborts) != 0 || len(b.aborts) != 0 {
		t.Fatalf("a conflicting adopted copy was aborted (r0: %v, r1: %v)", a.aborts, b.aborts)
	}
	// Both job IDs stay reachable.
	for _, id := range []core.JobID{"FZJ-r0-000001", "FZJ-r1-000001"} {
		if reply, err := set.Poll("CN=u", false, id); err != nil || !reply.Found {
			t.Fatalf("Poll(%s): found=%v err=%v", id, reply.Found, err)
		}
	}
}
