package pool

import (
	"context"
	"errors"
	"strings"
	"testing"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/staging"
)

// stagedJob builds an AJO whose single ImportTask references a staged handle.
func stagedJob(vsite core.Vsite, handle string) *ajo.AbstractJob {
	return &ajo.AbstractJob{
		Target: core.Target{Usite: "FZJ", Vsite: vsite},
		Actions: ajo.ActionList{&ajo.ImportTask{
			Header: ajo.Header{ActionID: "imp"},
			Source: ajo.ImportSource{Staged: handle},
			To:     "in.dat",
		}},
	}
}

func TestStageCallsFollowTheHandlePin(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	open, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER", ChunkSize: 8, Window: 2})
	if err != nil {
		t.Fatalf("StageOpen: %v", err)
	}
	// Every chunk and the commit must land on the replica that holds the
	// spool entry, regardless of the round-robin cursor.
	for i := int64(0); i < 4; i++ {
		if _, err := set.StageChunk("CN=u", false, protocol.PutChunkRequest{Handle: open.Handle, Index: i}); err != nil {
			t.Fatalf("StageChunk(%d): %v", i, err)
		}
	}
	commit, err := set.StageCommit("CN=u", false, protocol.PutCommitRequest{Handle: open.Handle})
	if err != nil {
		t.Fatalf("StageCommit: %v", err)
	}
	if commit.Chunks != 4 {
		t.Fatalf("commit saw %d chunks, want 4 (calls scattered off the pin?)", commit.Chunks)
	}
	holders := 0
	for _, f := range fakes {
		f.mu.Lock()
		if _, ok := f.stages[open.Handle]; ok {
			holders++
		}
		f.mu.Unlock()
	}
	if holders != 1 {
		t.Fatalf("%d replicas hold handle %s, want exactly 1", holders, open.Handle)
	}
}

func TestStageOpenFailsOverToHealthyReplica(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	fakes[0].setDown(true)
	fakes[1].setDown(true)
	open, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
	if err != nil {
		t.Fatalf("StageOpen with 2 of 3 replicas dead: %v", err)
	}
	if !strings.Contains(open.Handle, "-r2-") {
		t.Fatalf("handle %s not minted by the sole healthy replica", open.Handle)
	}
	fakes[2].setDown(true)
	if _, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"}); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("StageOpen on drained pool: err = %v, want ErrNoReplica", err)
	}
}

func TestStagedConsignPinsToHoldingReplica(t *testing.T) {
	// Round-robin would spread admissions; the staged handle must override it.
	set, _, fakes := newTestSet(t, RoundRobin)
	open, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
	if err != nil {
		t.Fatalf("StageOpen: %v", err)
	}
	holder := -1
	for i, f := range fakes {
		f.mu.Lock()
		if _, ok := f.stages[open.Handle]; ok {
			holder = i
		}
		f.mu.Unlock()
	}
	if holder < 0 {
		t.Fatal("no replica holds the opened handle")
	}
	for i := 0; i < 3; i++ {
		if _, err := set.Consign(context.Background(), "CN=u", "", stagedJob("CLUSTER", open.Handle)); err != nil {
			t.Fatalf("Consign(%d): %v", i, err)
		}
	}
	if got := fakes[holder].jobCount(); got != 3 {
		t.Fatalf("holding replica admitted %d of 3 staged jobs", got)
	}

	// With the holder down, the consign must fail with ErrReplicaDown — not
	// fail over to a replica that cannot satisfy the import.
	fakes[holder].setDown(true)
	set.CheckNow()
	if _, err := set.Consign(context.Background(), "CN=u", "retry", stagedJob("CLUSTER", open.Handle)); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("staged consign with holder down: err = %v, want ErrReplicaDown", err)
	}
}

func TestStageOpenPrefersCallersPreviousReplica(t *testing.T) {
	// Round-robin would spread sequential opens across replicas; one user's
	// uploads must land together, because a job referencing them all can
	// only be admitted where ALL the bytes are.
	set, _, fakes := newTestSet(t, RoundRobin)
	first, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
	if err != nil {
		t.Fatalf("StageOpen: %v", err)
	}
	for i := 0; i < 3; i++ {
		next, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
		if err != nil {
			t.Fatalf("StageOpen(%d): %v", i, err)
		}
		set.mu.RLock()
		a, b := set.stage[first.Handle].rep, set.stage[next.Handle].rep
		set.mu.RUnlock()
		if a != b {
			t.Fatalf("open %d landed on %s, first on %s — one user's uploads split across replicas", i, b.name, a.name)
		}
	}
	holders := 0
	for _, f := range fakes {
		if len(f.StagedHandles()) > 0 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d replicas hold this user's uploads, want 1", holders)
	}
}

func TestStagedConsignAcrossReplicasIsRefused(t *testing.T) {
	set, _, _ := newTestSet(t, RoundRobin)
	a, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
	if err != nil {
		t.Fatalf("StageOpen: %v", err)
	}
	b, err := set.StageOpen("CN=other", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
	if err != nil {
		t.Fatalf("StageOpen: %v", err)
	}
	set.mu.RLock()
	split := set.stage[a.Handle].rep != set.stage[b.Handle].rep
	set.mu.RUnlock()
	if !split {
		t.Skip("round-robin placed both opens on one replica")
	}
	job := stagedJob("CLUSTER", a.Handle)
	job.Actions = append(job.Actions, &ajo.ImportTask{
		Header: ajo.Header{ActionID: "imp2"},
		Source: ajo.ImportSource{Staged: b.Handle},
		To:     "other.dat",
	})
	if _, err := set.Consign(context.Background(), "CN=u", "", job); err == nil || !strings.Contains(err.Error(), "different replicas") {
		t.Fatalf("consign with uploads on two replicas: err = %v, want a loud refusal", err)
	}
}

func TestReconcileRestoresStagePins(t *testing.T) {
	// A pool rebuilt from scratch (gateway restart) adopts each replica's
	// spooled handles at Add time, so staged consigns keep their affinity
	// without any scatter.
	set, clock, fakes := newTestSet(t, RoundRobin)
	open, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
	if err != nil {
		t.Fatalf("StageOpen: %v", err)
	}
	rebuilt, err := New(Config{Vsite: "CLUSTER", Clock: clock})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, f := range fakes {
		if err := rebuilt.Add(ReplicaTag(i), f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	rebuilt.mu.RLock()
	pin, ok := rebuilt.stage[open.Handle]
	rebuilt.mu.RUnlock()
	if !ok {
		t.Fatal("rebuilt pool did not adopt the spooled handle")
	}
	if _, err := rebuilt.Consign(context.Background(), "CN=u", "", stagedJob("CLUSTER", open.Handle)); err != nil {
		t.Fatalf("staged consign on rebuilt pool: %v", err)
	}
	// The admission landed on the adopted pin's replica.
	holder := -1
	for i, f := range fakes {
		if f.jobCount() > 0 {
			holder = i
		}
	}
	if holder < 0 || rebuilt.byName[ReplicaTag(holder)] != pin.rep {
		t.Fatalf("staged consign landed off the adopted pin (holder %d)", holder)
	}
}

func TestStageChunkUnknownHandleScatters(t *testing.T) {
	set, _, _ := newTestSet(t, RoundRobin)
	open, err := set.StageOpen("CN=u", false, protocol.PutOpenRequest{Vsite: "CLUSTER"})
	if err != nil {
		t.Fatalf("StageOpen: %v", err)
	}
	// Simulate a pool restart: the pin map is empty but one replica's spool
	// still holds the handle. A chunk scatters, finds it, and re-pins.
	set.mu.Lock()
	set.stage = make(map[string]stagePin)
	set.mu.Unlock()
	if _, err := set.StageChunk("CN=u", false, protocol.PutChunkRequest{Handle: open.Handle, Index: 0}); err != nil {
		t.Fatalf("StageChunk after pin loss: %v", err)
	}
	set.mu.RLock()
	_, repinned := set.stage[open.Handle]
	set.mu.RUnlock()
	if !repinned {
		t.Fatal("scatter did not re-pin the handle")
	}
	if _, err := set.StageChunk("CN=u", false, protocol.PutChunkRequest{Handle: "stg-nowhere", Index: 0}); !errors.Is(err, staging.ErrUnknownHandle) {
		t.Fatalf("unknown handle: err = %v, want ErrUnknownHandle", err)
	}
}
