package pool

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"unicore/internal/core"
	"unicore/internal/protocol"
)

// TestDrainStopsNewWorkKeepsOwnedWork: a drained replica takes no new
// consigns or staged-upload opens, but everything it already owns — jobs,
// pinned uploads — stays reachable through the pool.
func TestDrainStopsNewWorkKeepsOwnedWork(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	// Land a job and an upload on r1 so it owns something before draining.
	var owned core.JobID
	for i := 0; owned == "" && i < 6; i++ {
		id, err := set.Consign(context.Background(), "CN=A", fmt.Sprintf("pre-%d", i), testJob("CLUSTER"))
		if err != nil {
			t.Fatalf("Consign(pre-%d): %v", i, err)
		}
		if name, _ := set.Owner(id); name == "r1" {
			owned = id
		}
	}
	if owned == "" {
		t.Fatal("round robin never landed a job on r1")
	}
	// Fresh callers dodge the last-open preference so round robin walks the
	// set; one open lands on r1 within a lap's worth of callers.
	var handle string
	var stager core.DN
	for i := 0; handle == "" && i < 9; i++ {
		caller := core.DN(fmt.Sprintf("CN=B%d", i))
		reply, err := set.StageOpen(caller, false, protocol.PutOpenRequest{Vsite: "CLUSTER", Name: "in.dat"})
		if err != nil {
			t.Fatalf("StageOpen: %v", err)
		}
		if name, _ := set.StagePinOwner(reply.Handle); name == "r1" {
			handle, stager = reply.Handle, caller
		}
	}
	if handle == "" {
		t.Fatal("no staged upload landed on r1")
	}

	if err := set.Drain("r1"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !set.Draining("r1") {
		t.Fatal("Draining(r1) = false after Drain")
	}
	if h := set.Healthy(); len(h) != 2 {
		t.Fatalf("Healthy() = %v, want the two undrained replicas", h)
	}

	// New work avoids r1 across a full lap of every policy's pick loop.
	before := fakes[1].jobCount()
	for i := 0; i < 9; i++ {
		if _, err := set.Consign(context.Background(), "CN=A", fmt.Sprintf("during-%d", i), testJob("CLUSTER")); err != nil {
			t.Fatalf("Consign(during-%d): %v", i, err)
		}
		if reply, err := set.StageOpen(stager, false, protocol.PutOpenRequest{Vsite: "CLUSTER", Name: "more.dat"}); err != nil {
			t.Fatalf("StageOpen during drain: %v", err)
		} else if name, _ := set.StagePinOwner(reply.Handle); name == "r1" {
			t.Fatal("drained replica took a new staged-upload open (last-open preference not revoked)")
		}
	}
	if got := fakes[1].jobCount(); got != before {
		t.Fatalf("drained replica admitted %d new jobs", got-before)
	}

	// Owned work still routes to r1: a poll of its job, chunks of its upload.
	if reply, err := set.Poll("CN=A", false, owned); err != nil || !reply.Found {
		t.Fatalf("Poll of drained replica's job: found=%v err=%v", reply.Found, err)
	}
	if _, err := set.StageChunk(stager, false, protocol.PutChunkRequest{Handle: handle, Index: 0, Data: []byte("x")}); err != nil {
		t.Fatalf("StageChunk to drained replica: %v", err)
	}

	st, err := set.DrainStatus("r1")
	if err != nil {
		t.Fatalf("DrainStatus: %v", err)
	}
	if !st.Draining || st.Inflight != 0 || st.Jobs == 0 || st.StagePins == 0 {
		t.Fatalf("DrainStatus = %+v, want settled-but-owning", st)
	}

	// Undrain returns it to rotation.
	if err := set.Undrain("r1"); err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	if h := set.Healthy(); len(h) != 3 {
		t.Fatalf("Healthy() after undrain = %v, want 3", h)
	}
	before = fakes[1].jobCount()
	for i := 0; i < 3; i++ {
		if _, err := set.Consign(context.Background(), "CN=A", fmt.Sprintf("after-%d", i), testJob("CLUSTER")); err != nil {
			t.Fatalf("Consign(after-%d): %v", i, err)
		}
	}
	if fakes[1].jobCount() == before {
		t.Fatal("undrained replica took no work across a full lap")
	}
}

// TestRemoveRetiresReplica: a removed replica leaves routing entirely, its
// pins are dropped, and — the duplicate-prevention half of the contract —
// an acked consign ID it served still converges on the recorded job.
func TestRemoveRetiresReplica(t *testing.T) {
	set, _, fakes := newTestSet(t, RoundRobin)
	var acked core.JobID
	var ackedCID string
	consigned := 0
	for i := 0; acked == "" && i < 6; i++ {
		cid := fmt.Sprintf("rm-%d", i)
		id, err := set.Consign(context.Background(), "CN=A", cid, testJob("CLUSTER"))
		if err != nil {
			t.Fatalf("Consign: %v", err)
		}
		consigned++
		if name, _ := set.Owner(id); name == "r2" {
			acked, ackedCID = id, cid
		}
	}
	if acked == "" {
		t.Fatal("no consign landed on r2")
	}

	if err := set.Remove("r2"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := set.Remove("r2"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("second Remove err = %v, want ErrUnknownReplica", err)
	}
	if got := len(set.Names()); got != 2 {
		t.Fatalf("Names() has %d entries after Remove, want 2", got)
	}
	if _, ok := set.Owner(acked); ok {
		t.Fatal("removed replica still owns its job pin")
	}
	// The ack index survives retirement: a client retry of the consign the
	// retired replica acked converges instead of duplicating the job.
	id, err := set.Consign(context.Background(), "CN=A", ackedCID, testJob("CLUSTER"))
	if err != nil {
		t.Fatalf("retry of retired ack: %v", err)
	}
	if id != acked {
		t.Fatalf("retry re-admitted as %s, want convergence on %s", id, acked)
	}
	// And no replica admitted a duplicate: total admissions still equal
	// the unique consign IDs issued.
	total := 0
	for _, f := range fakes {
		total += f.jobCount()
	}
	if total != consigned {
		t.Fatalf("pool holds %d jobs for %d unique consigns", total, consigned)
	}

	// New work spreads over the survivors only.
	retiredJobs := fakes[2].jobCount()
	for i := 0; i < 4; i++ {
		if _, err := set.Consign(context.Background(), "CN=A", fmt.Sprintf("post-rm-%d", i), testJob("CLUSTER")); err != nil {
			t.Fatalf("Consign after Remove: %v", err)
		}
	}
	if got := fakes[2].jobCount(); got != retiredJobs {
		t.Fatalf("removed replica admitted %d new jobs", got-retiredJobs)
	}
}

// TestParseReplicaTag round-trips the conventional replica namespace.
func TestParseReplicaTag(t *testing.T) {
	for i := 0; i < 5; i++ {
		got, ok := ParseReplicaTag(ReplicaTag(i))
		if !ok || got != i {
			t.Fatalf("ParseReplicaTag(ReplicaTag(%d)) = %d, %v", i, got, ok)
		}
	}
	for _, bad := range []string{"", "r", "x3", "r-1", "rX", "3"} {
		if _, ok := ParseReplicaTag(bad); ok {
			t.Fatalf("ParseReplicaTag(%q) accepted", bad)
		}
	}
}

// TestDrainUnknownReplica: the drain surface rejects unknown names.
func TestDrainUnknownReplica(t *testing.T) {
	set, _, _ := newTestSet(t, RoundRobin)
	if err := set.Drain("ghost"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("Drain(ghost) = %v", err)
	}
	if err := set.Undrain("ghost"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("Undrain(ghost) = %v", err)
	}
	if _, err := set.DrainStatus("ghost"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("DrainStatus(ghost) = %v", err)
	}
}
