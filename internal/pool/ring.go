package pool

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// virtualNodes is how many points each replica contributes to the hash ring.
// More points smooth the key distribution; 64 keeps the ring small while
// bounding per-replica imbalance to a few percent.
const virtualNodes = 64

// ring is a consistent-hash ring over replica names. Membership is by name,
// never by service pointer, so a replica that is killed and swapped for a
// recovered instance (SetService) keeps exactly the ring positions it had —
// the property that lets hash-routed jobs find their owner across restarts.
type ring struct {
	entries []ringEntry // sorted by point
}

type ringEntry struct {
	point uint64
	name  string
}

// hashKey maps an arbitrary routing key onto the ring.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// add inserts a replica's virtual nodes. The ring is rebuilt copy-on-write:
// readers that snapshotted the previous entries slice keep a consistent
// (merely stale) view, so membership changes never race in-flight lookups.
func (r *ring) add(name string) {
	next := make([]ringEntry, 0, len(r.entries)+virtualNodes)
	next = append(next, r.entries...)
	for i := 0; i < virtualNodes; i++ {
		next = append(next, ringEntry{
			point: hashKey(name + "#" + strconv.Itoa(i)),
			name:  name,
		})
	}
	sort.Slice(next, func(i, j int) bool { return next[i].point < next[j].point })
	r.entries = next
}

// remove drops a replica's virtual nodes, copy-on-write like add: in-flight
// lookups keep their snapshot, and the keys that hashed to the removed
// replica redistribute over the survivors.
func (r *ring) remove(name string) {
	next := make([]ringEntry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.name != name {
			next = append(next, e)
		}
	}
	r.entries = next
}

// lookup walks clockwise from key's point and returns the first distinct
// replica accepted by ok ("" when none qualifies). The walk order for a given
// key depends only on ring membership, so two lookups of the same key with
// the same healthy set always agree.
func (r *ring) lookup(key string, ok func(name string) bool) string {
	n := len(r.entries)
	if n == 0 {
		return ""
	}
	h := hashKey(key)
	start := sort.Search(n, func(i int) bool { return r.entries[i].point >= h })
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		e := r.entries[(start+i)%n]
		if seen[e.name] {
			continue
		}
		seen[e.name] = true
		if ok(e.name) {
			return e.name
		}
	}
	return ""
}
