package pool

// Staged-upload routing. A staged upload's chunks live in exactly one
// replica's spool, so the pool pins every transfer handle to the replica
// that holds it: chunk and commit calls follow the pin, and the handles
// referenced by a consigned AJO's ImportTasks become the consign-affinity
// hint — the admission must land on the replica that holds the bytes.
//
// Pins are rebuilt whenever a replica joins or rejoins the set (the
// reconcile pass asks a StageReporter for its spooled handles), so they
// survive pool restarts and replica recovery; as a last resort a
// handle-scoped call scatters over the usable replicas and re-pins on the
// one that recognizes the handle. Pins are pruned on the spool's TTL
// horizon so the map does not grow forever.

import (
	"errors"
	"fmt"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/staging"
)

// StageReporter is the optional introspection surface a pooled service may
// implement (*njs.NJS does): the transfer handles its spools currently hold.
// The pool consults it when a replica joins or rejoins the set, so the
// handle→replica pins survive pool restarts and replica recovery.
type StageReporter interface {
	// StagedHandles returns every spooled transfer handle.
	StagedHandles() []string
}

// stagePin records which replica holds a transfer handle, and when the pin
// was (re)confirmed — the pruning horizon.
type stagePin struct {
	rep *Replica
	at  time.Time
}

// stagePinTTL is how long an untouched pin survives before lazy pruning —
// one sweep interval past the server-side spool TTL, so a pin never outlives
// a prune-eligible upload by much, and never dies before one.
const stagePinTTL = njs.DefaultSpoolTTL + njs.DefaultSpoolTTL/2

// pinStage records (or refreshes) a handle's pin, pruning expired pins on
// the way — O(map) only when something is actually stale.
func (s *ReplicaSet) pinStage(handle string, rep *Replica) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	s.stage[handle] = stagePin{rep: rep, at: now}
	for h, p := range s.stage {
		if now.Sub(p.at) > stagePinTTL {
			delete(s.stage, h)
		}
	}
	s.mu.Unlock()
}

// reconcileStage adopts a joining replica's spooled handles into the pin
// map (the staging half of the reconcile pass).
func (s *ReplicaSet) reconcileStage(r *Replica, svc njs.Service) {
	rep, ok := svc.(StageReporter)
	if !ok {
		return
	}
	for _, h := range rep.StagedHandles() {
		s.pinStage(h, r)
	}
}

// StageOpen begins a staged upload on a healthy replica and pins the
// returned handle to it. The caller's previous open wins over the routing
// policy: a job's staged inputs must all land on one replica (the consign
// can only be admitted where ALL the bytes are), and sequential uploads by
// one user are overwhelmingly one job's inputs. Like an ID-less consign, an
// open that failed on a dead replica retries on the next healthy one —
// nothing was acknowledged, and an orphan spool entry on the dead replica
// is garbage-collected.
func (s *ReplicaSet) StageOpen(caller core.DN, asServer bool, req protocol.PutOpenRequest) (protocol.PutOpenReply, error) {
	tried := make(map[*Replica]bool)
	var lastErr error
	for {
		rep := s.pickStageOpen(caller, req.Name, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		rep.calls.Add(1)
		reply, err := rep.service().StageOpen(caller, asServer, req)
		rep.calls.Add(-1)
		if err == nil {
			rep.markSuccess()
			s.pinStage(reply.Handle, rep)
			s.mu.Lock()
			s.lastOpen[caller] = rep
			s.mu.Unlock()
			return reply, nil
		}
		if !failoverable(err) {
			return protocol.PutOpenReply{}, err
		}
		s.markFailure(rep)
		lastErr = err
	}
	if lastErr != nil {
		return protocol.PutOpenReply{}, fmt.Errorf("%w (last replica error: %v)", ErrNoReplica, lastErr)
	}
	return protocol.PutOpenReply{}, ErrNoReplica
}

// pickStageOpen prefers the replica of the caller's previous open, then
// falls back to the consign policy. A draining replica loses the
// preference — opens are new work — even though its held uploads stay
// reachable for chunk and commit calls.
func (s *ReplicaSet) pickStageOpen(caller core.DN, key string, tried map[*Replica]bool) *Replica {
	s.mu.RLock()
	last := s.lastOpen[caller]
	s.mu.RUnlock()
	if last != nil && !tried[last] && s.acceptsNew(last, s.cfg.Clock.Now()) {
		return last
	}
	return s.pickConsign(key, tried)
}

// stageOrder returns the replicas to consult for a handle-scoped staging
// call: the pinned replica exclusively (failing with ErrReplicaDown while it
// is unhealthy — the chunks are nowhere else), or, for an unpinned handle,
// every usable replica in scatter order.
func (s *ReplicaSet) stageOrder(handle string) ([]*Replica, error) {
	s.mu.RLock()
	pin, pinned := s.stage[handle]
	s.mu.RUnlock()
	now := s.cfg.Clock.Now()
	if pinned {
		if !s.usable(pin.rep, now) {
			return nil, fmt.Errorf("%w: replica %s holds staged upload %s", ErrReplicaDown, pin.rep.name, handle)
		}
		return []*Replica{pin.rep}, nil
	}
	var order []*Replica
	for _, r := range s.snapshotReplicas() {
		if s.usable(r, now) {
			order = append(order, r)
		}
	}
	if len(order) == 0 {
		return nil, ErrNoReplica
	}
	return order, nil
}

// setStageCall routes one handle-scoped staging call: follow the pin, or
// scatter until a replica recognizes the handle and re-pin there.
func setStageCall[T any](s *ReplicaSet, handle string, call func(njs.Service) (T, error)) (T, error) {
	var zero T
	reps, err := s.stageOrder(handle)
	if err != nil {
		return zero, err
	}
	var last error = fmt.Errorf("%w: %q", staging.ErrUnknownHandle, handle)
	for _, rep := range reps {
		rep.calls.Add(1)
		reply, err := call(rep.service())
		rep.calls.Add(-1)
		if errors.Is(err, staging.ErrUnknownHandle) {
			last = err
			continue
		}
		if err == nil {
			s.pinStage(handle, rep)
		}
		return reply, err
	}
	return zero, last
}

// StageChunk routes a chunk to the replica that holds the upload.
func (s *ReplicaSet) StageChunk(caller core.DN, asServer bool, req protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	return setStageCall(s, req.Handle, func(svc njs.Service) (protocol.PutChunkReply, error) {
		return svc.StageChunk(caller, asServer, req)
	})
}

// StageCommit routes a commit to the replica that holds the upload.
func (s *ReplicaSet) StageCommit(caller core.DN, asServer bool, req protocol.PutCommitRequest) (protocol.PutCommitReply, error) {
	return setStageCall(s, req.Handle, func(svc njs.Service) (protocol.PutCommitReply, error) {
		return svc.StageCommit(caller, asServer, req)
	})
}

// stageHint resolves the consign-affinity constraint of a job's staged
// uploads: the one replica pinned for ALL of them. Handles pinned to
// different replicas make the job unsatisfiable anywhere — that consign
// fails loudly here rather than failing later at import time. Unpinned
// handles impose no constraint (the import surfaces the missing upload).
func (s *ReplicaSet) stageHint(job *ajo.AbstractJob) (*Replica, error) {
	handles := job.StagedHandles()
	if len(handles) == 0 {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var hint *Replica
	for _, h := range handles {
		pin, ok := s.stage[h]
		if !ok {
			continue
		}
		if hint != nil && pin.rep != hint {
			return nil, fmt.Errorf(
				"pool: job references staged uploads on different replicas (%s and %s) — re-stage them together",
				hint.name, pin.rep.name)
		}
		hint = pin.rep
	}
	return hint, nil
}

// --- Router fan-out -------------------------------------------------------

// StageOpen routes a staged-upload open to the target Vsite's replica set.
func (r *Router) StageOpen(caller core.DN, asServer bool, req protocol.PutOpenRequest) (protocol.PutOpenReply, error) {
	set, ok := r.Set(req.Vsite)
	if !ok {
		return protocol.PutOpenReply{}, fmt.Errorf("%w: %q", njs.ErrUnknownVsite, req.Vsite)
	}
	return set.StageOpen(caller, asServer, req)
}

// routerStageCall finds the upload's Vsite set by handle (scatter on a cold
// pool) and runs the call there.
func routerStageCall[T any](r *Router, handle string, call func(*ReplicaSet) (T, error)) (T, error) {
	var zero T
	var routeErr error
	for _, set := range r.Sets() {
		reply, err := call(set)
		switch {
		case err == nil:
			return reply, nil
		case errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicaDown):
			routeErr = scatterErr(routeErr, err)
		case errors.Is(err, staging.ErrUnknownHandle):
			// Keep scanning the other sets.
		default:
			return zero, err
		}
	}
	if routeErr != nil {
		return zero, routeErr
	}
	return zero, fmt.Errorf("%w: %q", staging.ErrUnknownHandle, handle)
}

// StageChunk delivers a chunk to the set (and replica) holding the upload.
func (r *Router) StageChunk(caller core.DN, asServer bool, req protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	return routerStageCall(r, req.Handle, func(set *ReplicaSet) (protocol.PutChunkReply, error) {
		return set.StageChunk(caller, asServer, req)
	})
}

// StageCommit seals an upload on the set (and replica) holding it.
func (r *Router) StageCommit(caller core.DN, asServer bool, req protocol.PutCommitRequest) (protocol.PutCommitReply, error) {
	return routerStageCall(r, req.Handle, func(set *ReplicaSet) (protocol.PutCommitReply, error) {
		return set.StageCommit(caller, asServer, req)
	})
}
