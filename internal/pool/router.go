package pool

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/telemetry"
)

// Router aggregates the ReplicaSets of one Usite and implements njs.Service,
// so a gateway fronts a replicated server tier through the exact interface
// it uses for a single NJS (paper §4.2: the gateway stays the one door to
// the site; the pooling behind it is invisible to clients). Consignments are
// routed to the target Vsite's set; job-scoped reads are routed by each
// set's job affinity; listings and load figures are merged across sets.
type Router struct {
	usite core.Usite

	// mu guards set membership and the mapper: sets are usually registered
	// at assembly time, but a controller may add one to a live router when
	// the declared topology grows a Vsite.
	mu    sync.RWMutex
	sets  map[core.Vsite]*ReplicaSet
	order []core.Vsite

	mapper njs.LoginMapper
}

// Router implements the NJS service surface.
var _ njs.Service = (*Router)(nil)

// NewRouter creates an empty router for one Usite; add per-Vsite sets with
// AddSet before serving traffic.
func NewRouter(usite core.Usite) (*Router, error) {
	if usite == "" {
		return nil, errors.New("pool: empty usite")
	}
	return &Router{usite: usite, sets: make(map[core.Vsite]*ReplicaSet)}, nil
}

// AddSet registers a Vsite's replica set — at assembly time, or on a live
// router when the declared topology grows a Vsite.
func (r *Router) AddSet(set *ReplicaSet) error {
	if set == nil {
		return errors.New("pool: nil replica set")
	}
	r.mu.Lock()
	if _, dup := r.sets[set.Vsite()]; dup {
		r.mu.Unlock()
		return fmt.Errorf("pool: duplicate replica set for vsite %q", set.Vsite())
	}
	r.sets[set.Vsite()] = set
	r.order = append(r.order, set.Vsite())
	mapper := r.mapper
	r.mu.Unlock()
	if mapper != nil {
		set.SetLoginMapper(mapper)
	}
	return nil
}

// Set returns the replica set serving a Vsite.
func (r *Router) Set(v core.Vsite) (*ReplicaSet, bool) {
	r.mu.RLock()
	s, ok := r.sets[v]
	r.mu.RUnlock()
	return s, ok
}

// Sets lists the replica sets in registration order.
func (r *Router) Sets() []*ReplicaSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ReplicaSet, 0, len(r.order))
	for _, v := range r.order {
		out = append(out, r.sets[v])
	}
	return out
}

// Usite returns the site this router fronts.
func (r *Router) Usite() core.Usite { return r.usite }

// SetLoginMapper installs the DN→login resolver on every replica of every
// set — the gateway calls this once when it adopts the router as its
// backend, exactly as it would a single NJS.
func (r *Router) SetLoginMapper(fn njs.LoginMapper) {
	r.mu.Lock()
	r.mapper = fn
	r.mu.Unlock()
	for _, set := range r.Sets() {
		set.SetLoginMapper(fn)
	}
}

// CheckNow actively health-checks every replica of every set once.
func (r *Router) CheckNow() {
	for _, set := range r.Sets() {
		set.CheckNow()
	}
}

// StartHealthChecks arms the active health-check loop on every set (for
// real-clock daemons; see ReplicaSet.StartHealthChecks).
func (r *Router) StartHealthChecks() {
	for _, set := range r.Sets() {
		set.StartHealthChecks()
	}
}

// StopHealthChecks cancels every set's health-check loop.
func (r *Router) StopHealthChecks() {
	for _, set := range r.Sets() {
		set.StopHealthChecks()
	}
}

// Consign admits an AJO on the target Vsite's replica set (§5.3 admission
// with pool failover).
func (r *Router) Consign(ctx context.Context, user core.DN, consignID string, job *ajo.AbstractJob) (core.JobID, error) {
	if job.Target.Usite != r.usite {
		return "", fmt.Errorf("%w: %s (this pool serves %s)", njs.ErrWrongUsite, job.Target, r.usite)
	}
	set, ok := r.Set(job.Target.Vsite)
	if !ok {
		return "", fmt.Errorf("%w: %q", njs.ErrUnknownVsite, job.Target.Vsite)
	}
	return set.Consign(ctx, user, consignID, job)
}

// Metrics returns every set's pool snapshot and per-replica snapshots — the
// full per-replica breakdown behind a MsgMetrics scrape of a pooled Usite.
func (r *Router) Metrics() []telemetry.Snapshot {
	var out []telemetry.Snapshot
	for _, set := range r.Sets() {
		out = append(out, set.Metrics()...)
	}
	return out
}

// scatterErr folds per-set routing failures: a set that reported the job
// unreachable (owner down / no replica) wins over "not found", because the
// job may well live behind the unhealthy replica.
func scatterErr(first, err error) error {
	if first == nil {
		return err
	}
	return first
}

// Poll finds the job's Vsite set by affinity (scatter on a cold pool) and
// returns its status summary.
func (r *Router) Poll(caller core.DN, asServer bool, id core.JobID) (protocol.PollReply, error) {
	var routeErr error
	for _, set := range r.Sets() {
		reply, err := set.Poll(caller, asServer, id)
		if err != nil {
			if errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicaDown) {
				routeErr = scatterErr(routeErr, err)
				continue
			}
			return protocol.PollReply{}, err
		}
		if reply.Found {
			return reply, nil
		}
	}
	if routeErr != nil {
		return protocol.PollReply{}, routeErr
	}
	return protocol.PollReply{Found: false}, nil
}

// Outcome finds the job's Vsite set and returns its outcome tree.
func (r *Router) Outcome(caller core.DN, asServer bool, id core.JobID) (*ajo.Outcome, bool, error) {
	var routeErr error
	for _, set := range r.Sets() {
		o, found, err := set.Outcome(caller, asServer, id)
		if err != nil {
			if errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicaDown) {
				routeErr = scatterErr(routeErr, err)
				continue
			}
			return nil, false, err
		}
		if found {
			return o, true, nil
		}
	}
	if routeErr != nil {
		return nil, false, routeErr
	}
	return nil, false, nil
}

// Control routes an abort/hold/resume to the replica that owns the job.
func (r *Router) Control(caller core.DN, asServer bool, id core.JobID, op ajo.ControlOp) error {
	var routeErr error
	for _, set := range r.Sets() {
		err := set.Control(caller, asServer, id, op)
		switch {
		case errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicaDown):
			// The job may live behind this set's unhealthy replicas:
			// unreachable beats "not found" (see scatterErr).
			routeErr = scatterErr(routeErr, err)
		case errors.Is(err, njs.ErrUnknownJob):
			// Keep scanning the other sets.
		default:
			return err // success, or a real per-job failure
		}
	}
	if routeErr != nil {
		return routeErr
	}
	return fmt.Errorf("%w: %s", njs.ErrUnknownJob, id)
}

// FetchFile serves a peer-NJS Uspace read from the replica that owns the
// job (§5.6 Uspace-to-Uspace transfers).
func (r *Router) FetchFile(id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	var routeErr error
	for _, set := range r.Sets() {
		reply, err := set.FetchFile(id, file, offset, limit)
		if err != nil {
			if errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicaDown) {
				routeErr = scatterErr(routeErr, err)
				continue
			}
			return protocol.TransferReply{}, err
		}
		if reply.Found {
			return reply, nil
		}
	}
	if routeErr != nil {
		return protocol.TransferReply{}, routeErr
	}
	return protocol.TransferReply{Found: false}, nil
}

// FetchFileOwned serves an owner Uspace read from the replica that owns the
// job.
func (r *Router) FetchFileOwned(caller core.DN, asServer bool, id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	var routeErr error
	for _, set := range r.Sets() {
		reply, err := set.FetchFileOwned(caller, asServer, id, file, offset, limit)
		if err != nil {
			if errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicaDown) {
				routeErr = scatterErr(routeErr, err)
				continue
			}
			return protocol.TransferReply{}, err
		}
		if reply.Found {
			return reply, nil
		}
	}
	if routeErr != nil {
		return protocol.TransferReply{}, routeErr
	}
	return protocol.TransferReply{Found: false}, nil
}

// Events merges the protocol-v2 event streams behind this Usite. A
// job-scoped subscription is routed to the Vsite set (and, inside it, the
// replica) that owns the job; per-job cursors survive failover unchanged. A
// user-scoped subscription merges every set's per-replica streams under
// per-origin cursors.
func (r *Router) Events(caller core.DN, asServer bool, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	if req.Job != "" {
		var routeErr error
		for _, set := range r.Sets() {
			reply, err := set.Events(caller, asServer, req)
			switch {
			case err == nil:
				return reply, nil
			case errors.Is(err, ErrNoReplica) || errors.Is(err, ErrReplicaDown):
				routeErr = scatterErr(routeErr, err)
			case errors.Is(err, njs.ErrUnknownJob):
				// Keep scanning the other sets.
			default:
				return protocol.EventsReply{}, err
			}
		}
		if routeErr != nil {
			return protocol.EventsReply{}, routeErr
		}
		return protocol.EventsReply{}, fmt.Errorf("%w: %s", njs.ErrUnknownJob, req.Job)
	}
	merged := protocol.EventsReply{Cursor: req.Cursor, Origins: make(map[string]uint64)}
	for _, set := range r.Sets() {
		reply, err := set.Events(caller, asServer, req)
		if err != nil {
			return protocol.EventsReply{}, err
		}
		merged.Events = append(merged.Events, reply.Events...)
		for origin, next := range reply.Origins {
			merged.Origins[origin] = next
		}
		merged.Gap = merged.Gap || reply.Gap
	}
	sortEvents(merged.Events)
	return merged, nil
}

// EventsNotify combines the notify channels of every set's replicas; the
// returned channel closes when any replica of the Usite appends an event.
func (r *Router) EventsNotify(req protocol.SubscribeRequest) (<-chan struct{}, func()) {
	var chs []<-chan struct{}
	var releases []func()
	for _, set := range r.Sets() {
		ch, release := set.EventsNotify(req)
		chs = append(chs, ch)
		releases = append(releases, release)
	}
	return combineNotify(chs, releases)
}

// List merges the caller's jobs across every set, newest first. Jobs owned
// by a tripped replica are omitted until it recovers (see
// ReplicaSet.List).
func (r *Router) List(caller core.DN) ([]protocol.JobInfo, error) {
	var out []protocol.JobInfo
	for _, set := range r.Sets() {
		jobs, err := set.List(caller)
		if err != nil {
			return nil, err
		}
		out = append(out, jobs...)
	}
	sortJobInfos(out)
	return out, nil
}

// Pages returns one resource page per Vsite (§5.4) — replicas of a Vsite
// share one machine profile, so the first healthy replica speaks for the
// set.
func (r *Router) Pages() []resources.Page {
	var out []resources.Page
	for _, set := range r.Sets() {
		reps := set.snapshotReplicas()
		if len(reps) == 0 {
			continue
		}
		pick := reps[0]
		now := set.cfg.Clock.Now()
		for _, rep := range reps {
			if rep.state(now) == stateClosed {
				pick = rep
				break
			}
		}
		out = append(out, pick.service().Pages()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target.String() < out[j].Target.String() })
	return out
}

// Load reports the mean healthy-replica occupancy across the Vsites — the
// overall figure the §6 broker reads.
func (r *Router) Load() float64 {
	sets := r.Sets()
	if len(sets) == 0 {
		return 0
	}
	total := 0.0
	for _, set := range sets {
		total += set.LoadInfo().Load
	}
	return total / float64(len(sets))
}

// VsiteLoads reports per-Vsite occupancy with the replica-pool health the
// broker uses to skip drained sites.
func (r *Router) VsiteLoads() map[core.Vsite]njs.VsiteLoad {
	sets := r.Sets()
	out := make(map[core.Vsite]njs.VsiteLoad, len(sets))
	for _, set := range sets {
		out[set.Vsite()] = set.LoadInfo()
	}
	return out
}

// Ping reports nil while at least one replica of one set is healthy.
func (r *Router) Ping() error {
	for _, set := range r.Sets() {
		if len(set.Healthy()) > 0 {
			return nil
		}
	}
	return ErrNoReplica
}
