// Package pool scales the UNICORE server tier horizontally. The paper's
// gateway presents each Usite as a single door to many Vsites (§4.2, §5.5),
// but binds one NJS to each Vsite — the single-system bottleneck the
// production follow-up to the testbed deployment (§5.7) had to engineer
// away. This package fronts N njs.Service replicas per Vsite with:
//
//   - pluggable routing — round-robin, least-loaded (live load queries, the
//     same signal the §6 broker consumes), and consistent-hash-by-job-id so
//     Poll/Outcome/FetchFile land on the replica that owns the job,
//   - active health checks with exponential-backoff circuit breaking, so a
//     dead or drowning replica stops receiving traffic until it proves
//     itself again, and
//   - consign failover: an admission that was never acknowledged is retried
//     on the next healthy replica. This is safe because consignment is
//     idempotent (the durable-ack contract of the journal subsystem): a
//     retry with the same consign ID converges on the acknowledged
//     admission instead of duplicating the job.
//
// A ReplicaSet pools the replicas of one Vsite; a Router aggregates the
// ReplicaSets of one Usite and itself implements njs.Service, so a gateway
// fronts a pool exactly as it fronts a single NJS.
//
// Replicas must be built with distinct njs.Config.Instance tags: the tag
// keeps minted job IDs (and the deterministic sub-job consign IDs derived
// from them) disjoint across the replicas of one Usite.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
)

// Errors reported by replica routing.
var (
	// ErrNoReplica reports that no healthy replica is available for a
	// request — every breaker is open and every half-open probe failed.
	ErrNoReplica = errors.New("pool: no healthy replica")
	// ErrReplicaDown reports that the specific replica that owns a job is
	// unhealthy; the job will be reachable again once the replica is
	// restarted (SetService) or its health probe succeeds.
	ErrReplicaDown = errors.New("pool: owning replica is unhealthy")
	// ErrUnknownReplica reports a replica name that was never added.
	ErrUnknownReplica = errors.New("pool: unknown replica")
	// ErrDuplicateReplica reports an Add with an already-used name.
	ErrDuplicateReplica = errors.New("pool: duplicate replica name")
)

// Policy selects how a ReplicaSet routes new consignments.
type Policy int

const (
	// RoundRobin cycles admissions over the healthy replicas.
	RoundRobin Policy = iota
	// LeastLoaded queries each healthy replica's live load (njs.Service.Load)
	// and admits on the least occupied one.
	LeastLoaded
	// ConsistentHash places admissions by hashing the consign ID onto the
	// replica ring, so retries of one submission target the same replica and
	// the placement survives pool restarts.
	ConsistentHash
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case ConsistentHash:
		return "consistent-hash"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy resolves a policy name as used by command-line flags.
func ParsePolicy(s string) (Policy, error) {
	switch strings.TrimSpace(s) {
	case "round-robin", "rr", "":
		return RoundRobin, nil
	case "least-loaded", "ll":
		return LeastLoaded, nil
	case "consistent-hash", "ch", "hash":
		return ConsistentHash, nil
	}
	return 0, fmt.Errorf("pool: unknown policy %q (want round-robin, least-loaded, or consistent-hash)", s)
}

// Defaults for Config's optional knobs.
const (
	DefaultCheckInterval    = 5 * time.Second
	DefaultFailureThreshold = 1
	DefaultBackoffBase      = time.Second
	DefaultBackoffMax       = time.Minute
)

// Config assembles a ReplicaSet.
type Config struct {
	// Vsite is the execution system this set serves.
	Vsite core.Vsite
	// Policy selects the consign routing strategy (default RoundRobin).
	Policy Policy
	// Clock drives health-check timing and circuit-breaker backoff. Required.
	Clock sim.Scheduler
	// CheckInterval is the active health-check cadence used by
	// StartHealthChecks (default DefaultCheckInterval).
	CheckInterval time.Duration
	// FailureThreshold is how many consecutive failures trip a replica's
	// breaker (default DefaultFailureThreshold).
	FailureThreshold int
	// BackoffBase is the first breaker-open duration; each consecutive trip
	// doubles it up to BackoffMax (defaults DefaultBackoffBase/Max).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
}

// replicaState is the circuit-breaker state of one replica.
type replicaState int

const (
	stateClosed   replicaState = iota // healthy: takes traffic
	stateOpen                         // tripped: excluded until backoff expires
	stateHalfOpen                     // backoff expired: probe before use
)

// serviceBox wraps the Service interface so it can live in an atomic.Value
// regardless of the stored concrete type.
type serviceBox struct{ svc njs.Service }

// Replica is one pooled NJS behind a stable name. The service pointer is
// hot-swappable (SetService), preserving the gateway's SetNJS semantics per
// replica: a recovered NJS takes over mid-traffic without the pool, the
// gateway, or the clients noticing more than the recovery gap.
type Replica struct {
	name string
	svc  atomic.Value // serviceBox

	// draining excludes the replica from new-work routing (consigns, staged
	//-upload opens) while leaving everything it already owns reachable —
	// the first phase of drain-before-kill replacement.
	draining atomic.Bool
	// calls counts routed admission/staging calls currently executing on
	// the replica; a drain has settled when it reaches zero.
	calls atomic.Int64

	// mu guards the breaker state below.
	mu        sync.Mutex
	fails     int       // consecutive failures since the last success
	trips     int       // consecutive breaker trips (backoff exponent)
	openUntil time.Time // breaker open until this instant; zero = closed
}

// Name returns the replica's stable pool name.
func (r *Replica) Name() string { return r.name }

// service returns the current service behind the replica.
func (r *Replica) service() njs.Service { return r.svc.Load().(serviceBox).svc }

// state classifies the breaker at instant now.
func (r *Replica) state(now time.Time) replicaState {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.openUntil.IsZero():
		return stateClosed
	case now.Before(r.openUntil):
		return stateOpen
	default:
		return stateHalfOpen
	}
}

// markSuccess closes the breaker and resets the backoff.
func (r *Replica) markSuccess() {
	r.mu.Lock()
	r.fails, r.trips = 0, 0
	r.openUntil = time.Time{}
	r.mu.Unlock()
}

// ackEntry records one acknowledged consignment for idempotent convergence.
// adopted marks an entry inherited from a replica's own index during
// reconcile (e.g. after a pool restart) rather than earned by a live
// acknowledgement — an adopted entry may be the orphan half of a failover,
// so it never licenses aborting a conflicting copy.
type ackEntry struct {
	rep     *Replica
	job     core.JobID
	adopted bool
}

// ReplicaTag is the conventional stable pool name (and njs.Config.Instance
// tag) of replica i. Deployments must reuse the tag a replica was journaled
// under when recovering it, so recovered replicas keep minting job IDs in
// their own disjoint namespace.
func ReplicaTag(i int) string { return fmt.Sprintf("r%d", i) }

// ReplicaSet fronts the NJS replicas of one Vsite: it routes new
// consignments by policy, pins every admitted job to the replica that owns
// it, health-checks the replicas, and fails unacknowledged admissions over
// to the next healthy replica.
type ReplicaSet struct {
	cfg Config

	// mu guards replica membership, the ring, the affinity and ack indexes,
	// and the mapper. Routing takes it only for map work, never across a
	// replica call.
	mu       sync.RWMutex
	replicas []*Replica
	byName   map[string]*Replica
	ring     ring
	affinity map[core.JobID]*Replica  // job → owning replica
	acks     map[string]ackEntry      // consign ID → acknowledged admission
	inflight map[string]chan struct{} // consign ID → in-flight admission
	stage    map[string]stagePin      // staged-upload handle → holding replica
	lastOpen map[core.DN]*Replica     // user → replica of their latest StageOpen
	mapper   njs.LoginMapper
	checking bool
	timer    sim.Timer

	rr atomic.Int64 // round-robin cursor

	// tel records routing decisions, breaker transitions, and failover
	// retries, and holds the "pool.consign" trace spans. Its clock is the
	// set's clock, so spans order on simulation time under a testbed.
	tel *telemetry.Registry
}

// New assembles an empty ReplicaSet; add replicas with Add.
func New(cfg Config) (*ReplicaSet, error) {
	if cfg.Vsite == "" {
		return nil, errors.New("pool: empty vsite")
	}
	if cfg.Clock == nil {
		return nil, errors.New("pool: nil clock")
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = DefaultCheckInterval
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = DefaultBackoffMax
	}
	s := &ReplicaSet{
		cfg:      cfg,
		byName:   make(map[string]*Replica),
		affinity: make(map[core.JobID]*Replica),
		acks:     make(map[string]ackEntry),
		inflight: make(map[string]chan struct{}),
		stage:    make(map[string]stagePin),
		lastOpen: make(map[core.DN]*Replica),
		tel:      telemetry.New("pool/" + string(cfg.Vsite)),
	}
	s.tel.SetNow(cfg.Clock.Now)
	return s, nil
}

// Telemetry returns the set's metrics registry (testbed hook).
func (s *ReplicaSet) Telemetry() *telemetry.Registry { return s.tel }

// Metrics returns the pool's own snapshot followed by each replica's —
// the per-replica breakdown behind a MsgMetrics scrape.
func (s *ReplicaSet) Metrics() []telemetry.Snapshot {
	out := []telemetry.Snapshot{s.tel.Snapshot()}
	for _, rep := range s.snapshotReplicas() {
		out = append(out, rep.service().Metrics()...)
	}
	return out
}

// Vsite returns the execution system this set serves.
func (s *ReplicaSet) Vsite() core.Vsite { return s.cfg.Vsite }

// Policy returns the consign routing policy.
func (s *ReplicaSet) Policy() Policy { return s.cfg.Policy }

// Add registers a replica under a stable name. The name, not the service
// pointer, is the replica's identity on the consistent-hash ring.
func (s *ReplicaSet) Add(name string, svc njs.Service) error {
	if name == "" {
		return errors.New("pool: empty replica name")
	}
	if svc == nil {
		return errors.New("pool: nil service")
	}
	s.mu.Lock()
	if _, dup := s.byName[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateReplica, name)
	}
	r := &Replica{name: name}
	r.svc.Store(serviceBox{svc})
	if s.mapper != nil {
		svc.SetLoginMapper(s.mapper)
	}
	s.replicas = append(s.replicas, r)
	s.byName[name] = r
	s.ring.add(name)
	s.mu.Unlock()
	s.reconcile(r, svc)
	return nil
}

// SetService hot-swaps the service behind a replica — the per-replica SetNJS:
// a recovered NJS takes over from the dead one under the same pool identity.
// The swap re-installs the login mapper and closes the replica's breaker
// (the replacement is presumed healthy until proven otherwise).
func (s *ReplicaSet) SetService(name string, svc njs.Service) error {
	if svc == nil {
		return errors.New("pool: nil service")
	}
	s.mu.RLock()
	r, ok := s.byName[name]
	mapper := s.mapper
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownReplica, name)
	}
	if mapper != nil {
		svc.SetLoginMapper(mapper)
	}
	r.svc.Store(serviceBox{svc})
	r.markSuccess()
	s.reconcile(r, svc)
	return nil
}

// ConsignReporter is the optional introspection surface a pooled service
// may implement (*njs.NJS does): the consign IDs it has admitted, with
// their job IDs. The pool consults it when a replica joins or rejoins the
// set, to reconcile the replica's recovered admissions against the pool's
// acknowledgement index.
type ConsignReporter interface {
	// ConsignedJobs returns the completed consign-ID → job-ID admissions.
	ConsignedJobs() map[string]core.JobID
}

// reconcile folds a joining (or journal-recovered) replica's admissions
// into the pool's indexes. Unclaimed consign IDs are adopted — restoring
// acknowledgement convergence and read affinity across a pool restart, for
// every routing policy. A consign ID that this pool LIVE-acknowledged on a
// different replica marks an orphan: the rejoining replica journaled the
// admission, died before acking, and consign failover re-admitted the job
// elsewhere; the orphan copy is aborted so the logical job never executes
// twice (its ID still resolves, to the aborted tombstone). When the
// existing entry was itself adopted — after a full pool restart nobody
// knows which copy the client was acknowledged — the conflicting copy is
// left running: duplicated work is recoverable, aborting the acknowledged
// copy is not.
func (s *ReplicaSet) reconcile(r *Replica, svc njs.Service) {
	// Staged-upload pins rebuild the same way the consign-ack index does:
	// the joining replica's spool speaks for where the bytes are.
	s.reconcileStage(r, svc)
	rep, ok := svc.(ConsignReporter)
	if !ok {
		return
	}
	for cid, jobID := range rep.ConsignedJobs() {
		s.mu.Lock()
		e, acked := s.acks[cid]
		switch {
		case !acked:
			s.acks[cid] = ackEntry{rep: r, job: jobID, adopted: true}
			s.affinity[jobID] = r
			s.mu.Unlock()
		case e.rep == r:
			s.affinity[jobID] = r
			s.mu.Unlock()
		case e.adopted:
			// Conflicting adopted copies: keep both reachable, abort
			// neither.
			s.affinity[jobID] = r
			s.mu.Unlock()
		default:
			s.affinity[jobID] = r
			s.mu.Unlock()
			// Abort outside the lock; an already-terminal orphan is fine.
			_ = svc.Control("", true, jobID, ajo.OpAbort)
		}
	}
}

// Service returns the current service behind a named replica.
func (s *ReplicaSet) Service(name string) (njs.Service, bool) {
	s.mu.RLock()
	r, ok := s.byName[name]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return r.service(), true
}

// Names lists the replicas in registration order.
func (s *ReplicaSet) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.replicas))
	for i, r := range s.replicas {
		out[i] = r.name
	}
	return out
}

// Healthy lists the replicas currently taking new work: breaker closed and
// not draining.
func (s *ReplicaSet) Healthy() []string {
	now := s.cfg.Clock.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, r := range s.replicas {
		if r.state(now) == stateClosed && !r.draining.Load() {
			out = append(out, r.name)
		}
	}
	return out
}

// SetLoginMapper installs the DN→login resolver on every replica (present
// and future); part of the njs.Service surface the gateway drives.
func (s *ReplicaSet) SetLoginMapper(fn njs.LoginMapper) {
	s.mu.Lock()
	s.mapper = fn
	reps := append([]*Replica(nil), s.replicas...)
	s.mu.Unlock()
	for _, r := range reps {
		r.service().SetLoginMapper(fn)
	}
}

// snapshotReplicas returns the replica slice without holding the lock across
// replica calls.
func (s *ReplicaSet) snapshotReplicas() []*Replica {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Replica(nil), s.replicas...)
}

// indexByName builds a lookup over a replica snapshot.
func indexByName(reps []*Replica) map[string]*Replica {
	m := make(map[string]*Replica, len(reps))
	for _, r := range reps {
		m[r.name] = r
	}
	return m
}

// markFailure records a failed call; FailureThreshold consecutive failures
// trip the breaker for BackoffBase·2^trips (capped at BackoffMax).
func (s *ReplicaSet) markFailure(r *Replica) {
	now := s.cfg.Clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails++
	if r.fails < s.cfg.FailureThreshold {
		return
	}
	r.fails = 0
	shift := r.trips
	if shift > 16 {
		shift = 16 // the cap below saturates long before this
	}
	d := s.cfg.BackoffBase << shift
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	r.openUntil = now.Add(d)
	r.trips++
	s.tel.Counter("pool_breaker_open_total", "replica", r.name).Inc()
}

// probe pings a replica once and updates its breaker.
func (s *ReplicaSet) probe(r *Replica) bool {
	wasOpen := r.state(s.cfg.Clock.Now()) != stateClosed
	if err := r.service().Ping(); err != nil {
		s.markFailure(r)
		return false
	}
	r.markSuccess()
	if wasOpen {
		// Half-open → closed: the replica healed and rejoined the set.
		s.tel.Counter("pool_breaker_close_total", "replica", r.name).Inc()
	}
	return true
}

// usable reports whether a replica may receive traffic right now: a closed
// breaker passes, an open one is excluded, and an expired (half-open) one is
// probed inline — the recovery path that lets a healed replica rejoin.
func (s *ReplicaSet) usable(r *Replica, now time.Time) bool {
	switch r.state(now) {
	case stateClosed:
		return true
	case stateHalfOpen:
		return s.probe(r)
	default:
		return false
	}
}

// acceptsNew reports whether NEW work (a fresh consign, a staged-upload
// open) may be routed to the replica: usable and not draining. Job- and
// handle-scoped calls bypass this check on purpose — a draining replica
// keeps serving the jobs and uploads it already owns until it is retired.
func (s *ReplicaSet) acceptsNew(r *Replica, now time.Time) bool {
	return !r.draining.Load() && s.usable(r, now)
}

// CheckNow actively health-checks every replica once: each replica is pinged
// and its breaker updated. Daemons run it on a cadence via
// StartHealthChecks; tests and virtual-clock deployments call it directly.
func (s *ReplicaSet) CheckNow() {
	for _, r := range s.snapshotReplicas() {
		s.probe(r)
	}
}

// StartHealthChecks arms the active health-check loop on the configured
// clock: CheckNow every CheckInterval. Meant for real-clock daemons; under a
// virtual clock the perpetual timer would keep RunUntilIdle from ever going
// idle, so virtual deployments call CheckNow at the instants they care
// about.
func (s *ReplicaSet) StartHealthChecks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.checking {
		return
	}
	s.checking = true
	s.armLocked()
}

// armLocked schedules the next health sweep; callers hold s.mu.
func (s *ReplicaSet) armLocked() {
	s.timer = s.cfg.Clock.AfterFunc(s.cfg.CheckInterval, func() {
		s.CheckNow()
		s.mu.Lock()
		if s.checking {
			s.armLocked()
		}
		s.mu.Unlock()
	})
}

// StopHealthChecks cancels the active health-check loop.
func (s *ReplicaSet) StopHealthChecks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checking = false
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// failoverable reports whether a consign error indicts the replica (retry
// elsewhere) rather than the request (report to the caller). njs.ErrDown is
// the killed-NJS refusal — including the killed-between-admit-and-ack case,
// whose retry is exactly what the idempotent consign contract covers.
func failoverable(err error) bool {
	return errors.Is(err, njs.ErrDown)
}

// Consign admits an AJO on a policy-chosen healthy replica, failing an
// unacknowledged admission over to the next healthy replica. A consign ID
// that was already acknowledged converges on the recorded admission, and
// concurrent retries of one consign ID wait for the first attempt instead
// of racing onto different replicas — the pool-level half of the
// idempotency contract; the NJS-level half dedupes retries that reach the
// same replica. If no replica is healthy the error is ErrNoReplica.
func (s *ReplicaSet) Consign(ctx context.Context, user core.DN, consignID string, job *ajo.AbstractJob) (core.JobID, error) {
	if consignID == "" {
		return s.consignOnce(ctx, user, consignID, job)
	}
	for {
		s.mu.Lock()
		if e, acked := s.acks[consignID]; acked {
			s.mu.Unlock()
			return e.job, nil
		}
		done, busy := s.inflight[consignID]
		if !busy {
			done = make(chan struct{})
			s.inflight[consignID] = done
			s.mu.Unlock()
			id, err := s.consignOnce(ctx, user, consignID, job)
			s.mu.Lock()
			delete(s.inflight, consignID)
			s.mu.Unlock()
			close(done)
			return id, err
		}
		s.mu.Unlock()
		<-done
		// The attempt we waited on either acked (the loop returns it from
		// the index) or failed (we try ourselves).
	}
}

// consignOnce runs one policy-routed admission attempt with failover. A job
// referencing staged uploads is pinned to the replica whose spool holds the
// bytes (the consign-affinity hint): routing it anywhere else would admit a
// job whose imports cannot be satisfied, so if that replica is down the
// admission fails with ErrReplicaDown instead of failing over.
func (s *ReplicaSet) consignOnce(ctx context.Context, user core.DN, consignID string, job *ajo.AbstractJob) (core.JobID, error) {
	hint, err := s.stageHint(job)
	if err != nil {
		return "", err
	}
	if hint != nil {
		if !s.usable(hint, s.cfg.Clock.Now()) {
			return "", fmt.Errorf("%w: replica %s holds this job's staged uploads", ErrReplicaDown, hint.name)
		}
		s.tel.Counter("pool_route_total", "replica", hint.name).Inc()
		sp := s.tel.StartSpan(ctx, "pool.consign").Note(hint.name)
		hint.calls.Add(1)
		id, err := hint.service().Consign(ctx, user, consignID, job)
		hint.calls.Add(-1)
		sp.End()
		if err == nil {
			hint.markSuccess()
			s.recordAck(consignID, hint, id)
			return id, nil
		}
		if failoverable(err) {
			s.markFailure(hint)
		}
		return "", err
	}
	tried := make(map[*Replica]bool)
	var lastErr error
	for {
		rep := s.pickConsign(consignID, tried)
		if rep == nil {
			break
		}
		if len(tried) > 0 {
			s.tel.Counter("pool_failover_retries_total").Inc()
		}
		tried[rep] = true
		s.tel.Counter("pool_route_total", "replica", rep.name).Inc()
		sp := s.tel.StartSpan(ctx, "pool.consign").Note(rep.name)
		rep.calls.Add(1)
		id, err := rep.service().Consign(ctx, user, consignID, job)
		rep.calls.Add(-1)
		sp.End()
		if err == nil {
			rep.markSuccess()
			s.recordAck(consignID, rep, id)
			return id, nil
		}
		if !failoverable(err) {
			return "", err
		}
		s.markFailure(rep)
		if consignID == "" {
			// Without a consign ID there is no idempotency to converge on:
			// retrying elsewhere could duplicate an admission the dead
			// replica's journal captured, so the failure is surfaced.
			return "", err
		}
		// The replica refused to take responsibility (unacked admission):
		// it is tripped, and the retry moves to the next healthy replica.
		// If the dead replica's journal did capture the admission, the
		// reconcile-on-rejoin pass aborts that orphan copy, and the
		// affinity/ack indexes keep every read on the acknowledged one.
		lastErr = err
	}
	if lastErr != nil {
		return "", fmt.Errorf("%w (last replica error: %v)", ErrNoReplica, lastErr)
	}
	return "", ErrNoReplica
}

// recordAck pins an acknowledged admission to its replica.
func (s *ReplicaSet) recordAck(consignID string, rep *Replica, id core.JobID) {
	s.mu.Lock()
	if consignID != "" {
		s.acks[consignID] = ackEntry{rep: rep, job: id}
	}
	s.affinity[id] = rep
	s.mu.Unlock()
}

// pickConsign chooses the next replica for an admission under the configured
// policy, excluding already-tried replicas, open breakers, and draining
// replicas.
func (s *ReplicaSet) pickConsign(key string, tried map[*Replica]bool) *Replica {
	now := s.cfg.Clock.Now()
	reps := s.snapshotReplicas()
	if len(reps) == 0 {
		return nil
	}
	switch s.cfg.Policy {
	case LeastLoaded:
		var best *Replica
		bestLoad := 0.0
		for _, r := range reps {
			if tried[r] || !s.acceptsNew(r, now) {
				continue
			}
			l := r.service().Load()
			if best == nil || l < bestLoad {
				best, bestLoad = r, l
			}
		}
		return best
	case ConsistentHash:
		s.mu.RLock()
		rg := s.ring
		s.mu.RUnlock()
		byName := indexByName(reps)
		name := rg.lookup(key, func(n string) bool {
			r := byName[n]
			return r != nil && !tried[r] && s.acceptsNew(r, now)
		})
		if name == "" {
			return nil
		}
		return byName[name]
	default: // RoundRobin
		start := int(s.rr.Add(1))
		for i := 0; i < len(reps); i++ {
			r := reps[(start+i)%len(reps)]
			if tried[r] || !s.acceptsNew(r, now) {
				continue
			}
			return r
		}
		return nil
	}
}

// owner returns the replica pinned to a job, if any.
func (s *ReplicaSet) owner(id core.JobID) (*Replica, bool) {
	s.mu.RLock()
	r, ok := s.affinity[id]
	s.mu.RUnlock()
	return r, ok
}

// recordAffinity pins a job discovered by scatter to the replica that
// answered for it.
func (s *ReplicaSet) recordAffinity(id core.JobID, rep *Replica) {
	s.mu.Lock()
	s.affinity[id] = rep
	s.mu.Unlock()
}

// lookupOrder returns the replicas to consult for a job-scoped read, in
// order. A pinned job goes straight (and only) to its owner — routing a read
// elsewhere could observe a stale or duplicate copy — and errors with
// ErrReplicaDown while the owner is unhealthy. An unpinned job (the pool
// restarted since admission) is searched consistent-hash-first, then across
// the remaining healthy replicas.
func (s *ReplicaSet) lookupOrder(id core.JobID) ([]*Replica, error) {
	now := s.cfg.Clock.Now()
	if rep, ok := s.owner(id); ok {
		if !s.usable(rep, now) {
			return nil, fmt.Errorf("%w: replica %s owns job %s", ErrReplicaDown, rep.name, id)
		}
		return []*Replica{rep}, nil
	}
	reps := s.snapshotReplicas()
	s.mu.RLock()
	rg := s.ring
	s.mu.RUnlock()
	byName := indexByName(reps)
	var order []*Replica
	seen := make(map[*Replica]bool)
	if first := rg.lookup(string(id), func(n string) bool {
		r := byName[n]
		return r != nil && s.usable(r, now)
	}); first != "" {
		r := byName[first]
		order = append(order, r)
		seen[r] = true
	}
	for _, r := range reps {
		if !seen[r] && s.usable(r, now) {
			order = append(order, r)
		}
	}
	if len(order) == 0 {
		return nil, ErrNoReplica
	}
	return order, nil
}

// Poll routes a status poll to the replica that owns the job.
func (s *ReplicaSet) Poll(caller core.DN, asServer bool, id core.JobID) (protocol.PollReply, error) {
	reps, err := s.lookupOrder(id)
	if err != nil {
		return protocol.PollReply{}, err
	}
	for _, rep := range reps {
		reply, err := rep.service().Poll(caller, asServer, id)
		if err != nil {
			return protocol.PollReply{}, err
		}
		if reply.Found {
			s.recordAffinity(id, rep)
			return reply, nil
		}
	}
	return protocol.PollReply{Found: false}, nil
}

// Outcome routes an outcome fetch to the replica that owns the job.
func (s *ReplicaSet) Outcome(caller core.DN, asServer bool, id core.JobID) (*ajo.Outcome, bool, error) {
	reps, err := s.lookupOrder(id)
	if err != nil {
		return nil, false, err
	}
	for _, rep := range reps {
		o, found, err := rep.service().Outcome(caller, asServer, id)
		if err != nil {
			return nil, false, err
		}
		if found {
			s.recordAffinity(id, rep)
			return o, true, nil
		}
	}
	return nil, false, nil
}

// Control routes an abort/hold/resume to the replica that owns the job.
func (s *ReplicaSet) Control(caller core.DN, asServer bool, id core.JobID, op ajo.ControlOp) error {
	reps, err := s.lookupOrder(id)
	if err != nil {
		return err
	}
	var last error = fmt.Errorf("%w: %s", njs.ErrUnknownJob, id)
	for _, rep := range reps {
		err := rep.service().Control(caller, asServer, id, op)
		if errors.Is(err, njs.ErrUnknownJob) {
			last = err
			continue
		}
		if err == nil {
			s.recordAffinity(id, rep)
		}
		return err
	}
	return last
}

// FetchFile routes a peer-NJS Uspace read to the replica that owns the job.
func (s *ReplicaSet) FetchFile(id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	reps, err := s.lookupOrder(id)
	if err != nil {
		return protocol.TransferReply{}, err
	}
	for _, rep := range reps {
		reply, err := rep.service().FetchFile(id, file, offset, limit)
		if err != nil {
			return protocol.TransferReply{}, err
		}
		if reply.Found {
			s.recordAffinity(id, rep)
			return reply, nil
		}
	}
	return protocol.TransferReply{Found: false}, nil
}

// FetchFileOwned routes an owner Uspace read to the replica that owns the
// job.
func (s *ReplicaSet) FetchFileOwned(caller core.DN, asServer bool, id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	reps, err := s.lookupOrder(id)
	if err != nil {
		return protocol.TransferReply{}, err
	}
	for _, rep := range reps {
		reply, err := rep.service().FetchFileOwned(caller, asServer, id, file, offset, limit)
		if err != nil {
			return protocol.TransferReply{}, err
		}
		if reply.Found {
			s.recordAffinity(id, rep)
			return reply, nil
		}
	}
	return protocol.TransferReply{Found: false}, nil
}

// Events routes a protocol-v2 subscription read. A job-scoped request goes
// to the replica that owns the job (the existing read affinity); its per-job
// Seq cursor is replica-independent — a journal-recovered replacement replica
// restores the job's event stream with the original numbering — so failover
// needs no cursor translation beyond re-routing, and the subscriber resumes
// with no lost and no duplicated events. A user-scoped request scatters over
// the usable replicas and merges their streams, keyed by per-origin cursors.
func (s *ReplicaSet) Events(caller core.DN, asServer bool, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	if req.Job != "" {
		reps, err := s.lookupOrder(req.Job)
		if err != nil {
			return protocol.EventsReply{}, err
		}
		for _, rep := range reps {
			reply, err := rep.service().Events(caller, asServer, req)
			if errors.Is(err, njs.ErrUnknownJob) {
				continue
			}
			if err != nil {
				return protocol.EventsReply{}, err
			}
			s.recordAffinity(req.Job, rep)
			return reply, nil
		}
		return protocol.EventsReply{}, fmt.Errorf("%w: %s", njs.ErrUnknownJob, req.Job)
	}
	now := s.cfg.Clock.Now()
	merged := protocol.EventsReply{Cursor: req.Cursor, Origins: make(map[string]uint64)}
	for _, rep := range s.snapshotReplicas() {
		if !s.usable(rep, now) {
			continue
		}
		reply, err := rep.service().Events(caller, asServer, req)
		if err != nil {
			return protocol.EventsReply{}, err
		}
		merged.Events = append(merged.Events, reply.Events...)
		for origin, next := range reply.Origins {
			merged.Origins[origin] = next
		}
		merged.Gap = merged.Gap || reply.Gap
	}
	sortEvents(merged.Events)
	return merged, nil
}

// sortEvents orders a merged event batch deterministically: by server time,
// then origin, then per-replica append order.
func sortEvents(evs []protocol.JobEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if !evs[i].Time.Equal(evs[j].Time) {
			return evs[i].Time.Before(evs[j].Time)
		}
		if evs[i].Origin != evs[j].Origin {
			return evs[i].Origin < evs[j].Origin
		}
		return evs[i].Global < evs[j].Global
	})
}

// EventsNotify combines the notify channels of every replica: the returned
// channel closes when any replica appends an event. The release func must be
// called when the wait ends; it reclaims the fan-in goroutines.
func (s *ReplicaSet) EventsNotify(req protocol.SubscribeRequest) (<-chan struct{}, func()) {
	// A pinned job's events can only appear on its owning replica.
	if req.Job != "" {
		if rep, ok := s.owner(req.Job); ok {
			return rep.service().EventsNotify(req)
		}
	}
	reps := s.snapshotReplicas()
	chs := make([]<-chan struct{}, 0, len(reps))
	releases := make([]func(), 0, len(reps))
	for _, rep := range reps {
		ch, release := rep.service().EventsNotify(req)
		chs = append(chs, ch)
		releases = append(releases, release)
	}
	return combineNotify(chs, releases)
}

// combineNotify fans several notify channels into one. The out channel closes
// on the first signal; release tears the waiter goroutines down.
func combineNotify(chs []<-chan struct{}, releases []func()) (<-chan struct{}, func()) {
	out := make(chan struct{})
	stop := make(chan struct{})
	var once sync.Once
	for _, ch := range chs {
		go func(ch <-chan struct{}) {
			select {
			case <-ch:
				once.Do(func() { close(out) })
			case <-stop:
			}
		}(ch)
	}
	var stopOnce sync.Once
	release := func() {
		stopOnce.Do(func() { close(stop) })
		for _, r := range releases {
			r()
		}
	}
	return out, release
}

// List merges the caller's jobs across the replicas currently taking
// traffic, newest first — the same order a single NJS reports. Half-open
// replicas are probed and included when they answer; a tripped replica's
// jobs are omitted until it recovers (poll one of them to get an explicit
// ErrReplicaDown instead of a silent gap).
func (s *ReplicaSet) List(caller core.DN) ([]protocol.JobInfo, error) {
	now := s.cfg.Clock.Now()
	var out []protocol.JobInfo
	for _, rep := range s.snapshotReplicas() {
		if !s.usable(rep, now) {
			continue
		}
		jobs, err := rep.service().List(caller)
		if err != nil {
			return nil, err
		}
		out = append(out, jobs...)
	}
	sortJobInfos(out)
	return out, nil
}

// sortJobInfos orders job listings newest-first with the NJS tie-break.
func sortJobInfos(out []protocol.JobInfo) {
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.After(out[j].Submitted)
		}
		return out[i].Job > out[j].Job
	})
}

// LoadInfo aggregates the set's live load for the §6 broker: mean occupancy
// and summed backlog over the healthy replicas, plus the replica/healthy
// counts that let the broker skip a drained Vsite.
func (s *ReplicaSet) LoadInfo() njs.VsiteLoad {
	now := s.cfg.Clock.Now()
	reps := s.snapshotReplicas()
	info := njs.VsiteLoad{Replicas: len(reps)}
	for _, rep := range reps {
		if rep.state(now) != stateClosed {
			continue
		}
		vl := rep.service().VsiteLoads()[s.cfg.Vsite]
		info.Load += vl.Load
		info.Pending += vl.Pending
		info.Inflight += vl.Inflight
		info.Healthy++
	}
	if info.Healthy > 0 {
		info.Load /= float64(info.Healthy)
	}
	return info
}
