package pool

// Drain-before-kill and dynamic membership. Rolling replacement of a live
// replica runs in three pool-visible phases: Drain stops routing NEW work
// (consigns, staged-upload opens) to the replica while everything it owns —
// running jobs, pinned uploads, event cursors — stays reachable; the caller
// waits for DrainStatus to settle (no routed admission or staging call in
// flight); then either SetService swaps in a journal-recovered replacement
// under the same name (the reconcile pass re-homes ack-index entries and
// stage pins automatically) or Remove retires the name for good. Add grows a
// live set the same way BuildReplicatedSite assembles one.

import (
	"fmt"
	"strconv"
	"strings"

	"unicore/internal/core"
)

// ParseReplicaTag inverts ReplicaTag: "r3" → 3. It reports false for names
// outside the conventional namespace (deployments may pool replicas under
// arbitrary names).
func ParseReplicaTag(tag string) (int, bool) {
	rest, ok := strings.CutPrefix(tag, "r")
	if !ok || rest == "" {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// DrainStatus is the settling state of one (possibly draining) replica.
type DrainStatus struct {
	// Draining reports whether new-work routing currently excludes the
	// replica.
	Draining bool
	// Inflight is how many routed admission/staging calls are executing on
	// the replica right now; a drain has settled when this is zero.
	Inflight int
	// StagePins is how many staged-upload handles the replica currently
	// holds: live spool handles when the service reports them
	// (StageReporter), otherwise the pool's pin count for the replica.
	// Pins survive replacement — a journal-recovered service rescans its
	// spool and the rejoin reconciliation re-homes them.
	StagePins int
	// Jobs is how many jobs the pool has pinned to the replica.
	Jobs int
}

// Drain excludes a replica from new-work routing. Idempotent; the replica
// keeps serving job- and handle-scoped calls for everything it owns.
func (s *ReplicaSet) Drain(name string) error {
	s.mu.RLock()
	r, ok := s.byName[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownReplica, name)
	}
	if !r.draining.Swap(true) {
		s.tel.Counter("pool_drain_total", "replica", name).Inc()
	}
	return nil
}

// Undrain returns a drained replica to new-work routing.
func (s *ReplicaSet) Undrain(name string) error {
	s.mu.RLock()
	r, ok := s.byName[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownReplica, name)
	}
	r.draining.Store(false)
	return nil
}

// Draining reports whether a replica is currently drained.
func (s *ReplicaSet) Draining(name string) bool {
	s.mu.RLock()
	r, ok := s.byName[name]
	s.mu.RUnlock()
	return ok && r.draining.Load()
}

// DrainStatus reports how far a replica's drain has settled.
func (s *ReplicaSet) DrainStatus(name string) (DrainStatus, error) {
	s.mu.RLock()
	r, ok := s.byName[name]
	s.mu.RUnlock()
	if !ok {
		return DrainStatus{}, fmt.Errorf("%w: %q", ErrUnknownReplica, name)
	}
	st := DrainStatus{
		Draining: r.draining.Load(),
		Inflight: int(r.calls.Load()),
	}
	if rep, ok := r.service().(StageReporter); ok {
		st.StagePins = len(rep.StagedHandles())
	} else {
		s.mu.RLock()
		for _, p := range s.stage {
			if p.rep == r {
				st.StagePins++
			}
		}
		s.mu.RUnlock()
	}
	s.mu.RLock()
	for _, rep := range s.affinity {
		if rep == r {
			st.Jobs++
		}
	}
	s.mu.RUnlock()
	return st, nil
}

// Remove retires a replica from the set for good: it leaves the ring (its
// keys redistribute), its job and upload pins are dropped, and job-scoped
// reads for what it owned fall back to the scatter path. Acknowledged
// consign IDs stay in the ack index — a client retry of an admission the
// retired replica acked still converges on the recorded job ID instead of
// duplicating the job. The caller owns the retired service (Kill it, close
// its journal); scale down only after the replica's drain has settled.
func (s *ReplicaSet) Remove(name string) error {
	s.mu.Lock()
	r, ok := s.byName[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownReplica, name)
	}
	delete(s.byName, name)
	for i, rep := range s.replicas {
		if rep == r {
			s.replicas = append(s.replicas[:i], s.replicas[i+1:]...)
			break
		}
	}
	s.ring.remove(name)
	for id, rep := range s.affinity {
		if rep == r {
			delete(s.affinity, id)
		}
	}
	for h, p := range s.stage {
		if p.rep == r {
			delete(s.stage, h)
		}
	}
	for dn, rep := range s.lastOpen {
		if rep == r {
			delete(s.lastOpen, dn)
		}
	}
	s.mu.Unlock()
	s.tel.Counter("pool_remove_total", "replica", name).Inc()
	return nil
}

// Owner reports which replica a job is pinned to, if any.
func (s *ReplicaSet) Owner(id core.JobID) (string, bool) {
	rep, ok := s.owner(id)
	if !ok {
		return "", false
	}
	return rep.name, true
}

// StagePinOwner reports which replica holds a staged-upload handle, if any.
func (s *ReplicaSet) StagePinOwner(handle string) (string, bool) {
	s.mu.RLock()
	pin, ok := s.stage[handle]
	s.mu.RUnlock()
	if !ok {
		return "", false
	}
	return pin.rep.name, true
}
