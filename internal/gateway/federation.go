package gateway

// The gateway's federation half: attaching a federation membership, serving
// the gossip exchange, broker-driven placement and cross-gateway forwarding
// of consigns, and the proxying rules for job-scoped and staging calls that
// concern a remotely-placed job.
//
// Division of labour: package federation owns the peer table, gossip state,
// placement broker, and forwarding client; this file owns every policy
// decision that needs the request's authentication context (who signed,
// user or server role) — exactly the judgments the paper assigns to the
// gateway tier.

import (
	"context"
	"encoding/json"
	"fmt"

	"unicore/internal/ajo"
	"unicore/internal/broker"
	"unicore/internal/core"
	"unicore/internal/federation"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/telemetry"
)

// SetFederation attaches a federation membership: the federation reads the
// local catalog and load through the gateway, and its telemetry registry
// (fed_advertise_total, fed_forward_total, fed_forward_ack_seconds,
// fed_peer_stale) joins MsgMetrics scrapes. Passing nil detaches.
func (g *Gateway) SetFederation(f *federation.Federation) {
	if f == nil {
		g.fed.Store(nil)
		return
	}
	f.BindLocal(
		func() []resources.Page { return g.svc().Pages() },
		func() map[string]protocol.VsiteLoad { return g.vsiteLoadsOf(g.svc()) },
	)
	g.AddMetricsSource(func() []telemetry.Snapshot {
		return []telemetry.Snapshot{f.Registry().Snapshot()}
	})
	g.fed.Store(f)
}

// Federation returns the attached federation membership, or nil.
func (g *Gateway) Federation() *federation.Federation { return g.fed.Load() }

// vsiteLoadsOf snapshots one backend's per-Vsite load in wire form (shared
// by the MsgLoad reply and the federation's self-advertisements).
func (g *Gateway) vsiteLoadsOf(svc njs.Service) map[string]protocol.VsiteLoad {
	loads := svc.VsiteLoads()
	out := make(map[string]protocol.VsiteLoad, len(loads))
	for v, l := range loads {
		out[string(v)] = protocol.VsiteLoad{
			Load: l.Load, Pending: l.Pending, Inflight: l.Inflight,
			Replicas: l.Replicas, Healthy: l.Healthy,
		}
	}
	return out
}

// handleFedAdvertise serves one gossip exchange. Only peer gateways (server
// role) may gossip, and only a federated gateway answers.
func (g *Gateway) handleFedAdvertise(raw json.RawMessage, asServer bool) (any, protocol.MsgType, error) {
	if !asServer {
		return nil, "", fmt.Errorf("%w: federation gossip is gateway-to-gateway traffic", ErrNotPermitted)
	}
	f := g.fed.Load()
	if f == nil {
		return nil, "", federation.ErrNotFederated
	}
	var req protocol.FedAdvertiseRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, "", fmt.Errorf("gateway: bad fed-advertise request: %w", err)
	}
	//lint:allow versiongate the dispatch gate already refused v1-sealed envelopes for this v2-only exchange
	return f.HandleAdvertise(req), protocol.MsgFedAdvertiseReply, nil
}

// fedConsign applies federation policy to one decoded consign before local
// admission. It returns handled=false when the job should continue into the
// local NJS (possibly retargeted by auto-placement); handled=true when it
// produced the reply itself (a forward, or a refusal).
func (g *Gateway) fedConsign(ctx context.Context, f *federation.Federation, consignID string, job *ajo.AbstractJob, owner core.DN, asServer bool) (any, protocol.MsgType, bool, error) {
	if asServer {
		// Server-to-server consigns — a peer gateway's forward or an NJS
		// distributing a sub-job — must target the receiving site. Anything
		// else would let a misrouted forward bounce between gateways.
		if job.Target.Usite != "" && job.Target.Usite != g.usite {
			return nil, "", true, fmt.Errorf("gateway: server consignment for %s arrived at %s (forwarding loop refused)", job.Target.Usite, g.usite)
		}
		return nil, "", false, nil
	}
	stagedAt, err := f.StagedSite(job)
	if err != nil {
		return nil, "", true, err
	}
	stagedLocally := stagedAt == "" && len(job.StagedHandles()) > 0
	target := job.Target
	if target.Vsite == "" && (target.Usite == "" || target.Usite == g.usite) {
		// Auto placement (`unicore-submit -site auto`): rank every local
		// and advertised Vsite, honouring where the job's staged inputs
		// are spooled.
		cands, err := f.Place(job.MaxResources())
		if err != nil {
			return nil, "", true, err
		}
		target = core.Target{}
		for _, c := range cands {
			if stagedAt != "" && c.Target.Usite != stagedAt {
				continue
			}
			if stagedLocally && c.Target.Usite != g.usite {
				continue
			}
			target = c.Target
			break
		}
		if target.Usite == "" {
			return nil, "", true, fmt.Errorf("%w: none of the %d candidates can reach the job's staged inputs", broker.ErrNoCandidate, len(cands))
		}
		if target.Usite == g.usite {
			broker.Retarget(job, target)
			return nil, "", false, nil
		}
	}
	if target.Usite == "" || target.Usite == g.usite {
		if stagedAt != "" {
			return nil, "", true, fmt.Errorf("gateway: job targets %s but its staged inputs are spooled at %s", g.usite, stagedAt)
		}
		return nil, "", false, nil
	}
	// The job runs at a peer. Its staged inputs must already be there.
	if stagedLocally {
		return nil, "", true, fmt.Errorf("gateway: job targets %s but its staged inputs are spooled at %s", target.Usite, g.usite)
	}
	if stagedAt != "" && stagedAt != target.Usite {
		return nil, "", true, fmt.Errorf("gateway: job targets %s but its staged inputs are spooled at %s", target.Usite, stagedAt)
	}
	reply, err := f.Forward(ctx, owner, consignID, job, target)
	if err != nil {
		// The forward did not come back with a journaled ack: answer
		// not-accepted so the client retries — the namespaced consign ID
		// converges on the same remote job once the peer is back.
		return protocol.ConsignReply{Accepted: false, Reason: err.Error()}, protocol.MsgConsignReply, true, nil
	}
	return reply, protocol.MsgConsignReply, true, nil
}

// fedRoute decides whether a job-scoped request (poll, outcome, control,
// fetch, transfer, job events) must be relayed to the peer gateway whose
// NJS minted the job ID. Peer servers relay freely; a user is relayed only
// when this gateway's placement record shows it forwarded that job for
// them — the proxying rule that keeps origin-side authorization intact
// even though the relay itself travels under the gateway's server identity.
func (g *Gateway) fedRoute(dn core.DN, asServer bool, job core.JobID) (*federation.Federation, core.Usite, bool, error) {
	f := g.fed.Load()
	if f == nil || job == "" {
		return nil, "", false, nil
	}
	peer := f.JobSite(job)
	if peer == "" {
		return nil, "", false, nil
	}
	if asServer {
		return f, peer, true, nil
	}
	if pl, ok := f.Placement(job); ok && pl.Owner == dn {
		return f, peer, true, nil
	}
	return nil, "", false, fmt.Errorf("gateway: job %s was not placed through this gateway", job)
}

// stageOwner resolves the effective owner of a staging call: a server-role
// relay may carry the user it acts for (the consign UserDN rule applied to
// spools); everyone else owns their own uploads.
func stageOwner(dn core.DN, asServer bool, owner core.DN) core.DN {
	if asServer && owner != "" {
		return owner
	}
	return dn
}

// servesVsite reports whether the local backend fronts the named Vsite.
func (g *Gateway) servesVsite(v core.Vsite) bool {
	for _, p := range g.svc().Pages() {
		if p.Target.Vsite == v {
			return true
		}
	}
	return false
}

// fedStageOpen relays a user's staged upload toward the unique fresh peer
// advertising the Vsite, pinning the returned handle so chunks, commits,
// and the eventual consign follow it there. It returns handled=false when
// the upload is local (or no peer advertises the Vsite — the local error
// is the clearer one).
func (g *Gateway) fedStageOpen(ctx context.Context, dn core.DN, asServer bool, req protocol.PutOpenRequest) (any, protocol.MsgType, bool, error) {
	f := g.fed.Load()
	if f == nil || asServer || g.servesVsite(req.Vsite) {
		return nil, "", false, nil
	}
	peer, err := f.VsiteHost(req.Vsite)
	if err != nil {
		return nil, "", false, nil
	}
	req.Owner = dn
	var reply protocol.PutOpenReply
	//lint:allow versiongate Relay delegates to Client.Call, which gates and fails fast on v1 peers
	if err := f.Relay(ctx, peer, protocol.MsgPutOpen, req, &reply); err != nil {
		return nil, "", true, fmt.Errorf("gateway: relaying staged upload to %s: %w", peer, err)
	}
	f.PinStage(reply.Handle, peer, dn)
	return reply, protocol.MsgPutOpenReply, true, nil
}

// fedStageRelay relays a chunk or commit for a peer-pinned handle. Only the
// user who opened the upload may follow it.
func (g *Gateway) fedStageRelay(ctx context.Context, dn core.DN, asServer bool, handle string, t protocol.MsgType, payload, replyOut any) (bool, error) {
	f := g.fed.Load()
	if f == nil || asServer {
		return false, nil
	}
	pin, ok := f.StagePeer(handle)
	if !ok {
		return false, nil
	}
	if pin.Owner != dn {
		return true, fmt.Errorf("gateway: staged upload %s is not owned by %s", handle, dn)
	}
	return true, f.Relay(ctx, pin.Peer, t, payload, replyOut)
}
