// Protocol v3 stream serving: the gateway's half of the persistent
// multiplexed frame transport. The HTTP upgrade at /unicore/v3 hands the raw
// connection to protocol.ServeStreamConn; the typed frame handlers below are
// the same consignTyped/pollTyped/... cores the signed-envelope dispatch
// uses, so authorisation, federation relaying, and error texts are identical
// on both paths. Stream traffic is observable through dedicated telemetry
// counters (gateway_stream_*) and deliberately never counts into
// Stats().ByType — that map remains a census of signed envelopes.
package gateway

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/protocol"
)

// serveStreamUpgrade upgrades one GET /unicore/v3 request to a raw v3 frame
// stream (Upgrade: unicore-v3) and serves it until the peer goes away.
func (g *Gateway) serveStreamUpgrade(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") != protocol.StreamUpgradeProto {
		http.Error(w, "expected Upgrade: "+protocol.StreamUpgradeProto, http.StatusUpgradeRequired)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		// A front end that cannot yield the raw connection (recorders, some
		// proxies) has no stream path; clients fall back to envelopes.
		http.Error(w, "stream upgrade unsupported", http.StatusNotImplemented)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		http.Error(w, "hijack failed", http.StatusInternalServerError)
		return
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\nUpgrade: " + protocol.StreamUpgradeProto + "\r\nConnection: Upgrade\r\n\r\n"
	if _, err := buf.WriteString(resp); err != nil || buf.Flush() != nil {
		conn.Close()
		return
	}
	// The stream outlives the upgrade request: detach from its cancellation
	// but keep its trace/log values.
	g.ServeStream(context.WithoutCancel(r.Context()), conn)
}

// ServeStream serves one accepted v3 stream connection — the entry point
// shared by the HTTP upgrade above and in-process transports (testbeds hand
// over one end of a net.Pipe).
func (g *Gateway) ServeStream(ctx context.Context, conn net.Conn) {
	active := g.tel.Gauge("gateway_stream_conns")
	active.Inc()
	defer active.Dec()
	protocol.ServeStreamConn(ctx, conn, g, protocol.StreamServerOpts{
		Cred:       g.cred,
		CA:         g.ca,
		Usite:      g.usite,
		MaxVersion: g.maxVer,
		OnFrame: func(kind byte) {
			g.tel.Counter("gateway_stream_frames_total", "kind", frameKindName(kind)).Inc()
		},
	})
}

// StreamHello authorises one verified Hello envelope: the same role policy
// and site-specific authentication the envelope path applies per request,
// performed once and bound to the connection.
func (g *Gateway) StreamHello(o protocol.Opened) error {
	verifies := g.tel.Counter("pki_verify_total")
	verifies.Inc()
	switch o.Role {
	case pki.RoleUser, pki.RoleServer:
	default:
		g.countFailure("role")
		return fmt.Errorf("%w: %q", ErrNotPermitted, o.Role)
	}
	if o.Role == pki.RoleUser && g.siteAuth != nil {
		if err := g.siteAuth(o.From); err != nil {
			g.countFailure("site-auth")
			return fmt.Errorf("%w: %v", ErrSiteAuth, err)
		}
	}
	g.tel.Counter("gateway_stream_hellos_total", "role", string(o.Role)).Inc()
	return nil
}

// StreamConsign serves one consignment arriving as a frame.
func (g *Gateway) StreamConsign(ctx context.Context, dn core.DN, asServer bool, req protocol.ConsignRequest) (protocol.ConsignReply, error) {
	sp := g.tel.StartSpan(ctx, "gateway.dispatch").Note(string(protocol.MsgConsign))
	defer sp.End()
	return g.consignTyped(ctx, req, dn, asServer)
}

// StreamPoll serves one status poll arriving as a frame.
func (g *Gateway) StreamPoll(ctx context.Context, dn core.DN, asServer bool, req protocol.PollRequest) (protocol.PollReply, error) {
	sp := g.tel.StartSpan(ctx, "gateway.dispatch").Note(string(protocol.MsgPoll))
	defer sp.End()
	return g.pollTyped(ctx, req, dn, asServer)
}

// StreamPutChunk serves one staged-upload chunk arriving as a raw frame —
// the zero-copy upload path: no base64, no per-chunk signature; integrity is
// the per-chunk CRC now and the signed whole-transfer digest at commit.
func (g *Gateway) StreamPutChunk(ctx context.Context, dn core.DN, asServer bool, req protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	//lint:allow versiongate v3 stream handlers only run after a v3 handshake; no older peer can reach them
	sp := g.tel.StartSpan(ctx, "gateway.dispatch").Note(string(protocol.MsgPutChunk))
	defer sp.End()
	return g.putChunkTyped(ctx, req, dn, asServer)
}

// StreamFetch serves one owner-authorised file read arriving as a frame.
func (g *Gateway) StreamFetch(ctx context.Context, dn core.DN, asServer bool, req protocol.FetchRequest) (protocol.TransferReply, error) {
	sp := g.tel.StartSpan(ctx, "gateway.dispatch").Note(string(protocol.MsgFetch))
	defer sp.End()
	return g.fetchTyped(ctx, req, dn, asServer)
}

// StreamTransfer serves one NJS-to-NJS Uspace read arriving as a frame.
func (g *Gateway) StreamTransfer(ctx context.Context, dn core.DN, asServer bool, req protocol.TransferRequest) (protocol.TransferReply, error) {
	sp := g.tel.StartSpan(ctx, "gateway.dispatch").Note(string(protocol.MsgTransfer))
	defer sp.End()
	return g.transferTyped(ctx, req, dn, asServer)
}

// StreamEvents serves one event-batch round of a stream subscription: the
// same federation routing and long-poll core as an envelope MsgSubscribe.
func (g *Gateway) StreamEvents(ctx context.Context, dn core.DN, asServer bool, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	//lint:allow versiongate v3 stream handlers only run after a v3 handshake; no older peer can reach them
	sp := g.tel.StartSpan(ctx, "gateway.dispatch").Note(string(protocol.MsgSubscribe))
	defer sp.End()
	return g.subscribeTyped(ctx, req, dn, asServer)
}

// frameKindName labels frame kinds for metrics.
func frameKindName(kind byte) string {
	switch kind {
	case protocol.FrameHello:
		return "hello"
	case protocol.FrameHelloOK:
		return "hello-ok"
	case protocol.FrameCall:
		return "call"
	case protocol.FrameReply:
		return "reply"
	case protocol.FramePut:
		return "put"
	case protocol.FramePutAck:
		return "put-ack"
	case protocol.FrameFetch:
		return "fetch"
	case protocol.FrameData:
		return "data"
	case protocol.FrameSub:
		return "sub"
	case protocol.FrameEvents:
		return "events"
	case protocol.FrameSubStop:
		return "sub-stop"
	case protocol.FrameError:
		return "error"
	default:
		return fmt.Sprintf("0x%02x", kind)
	}
}
