package gateway

import (
	"context"
	"encoding/json"
	"testing"

	"unicore/internal/protocol"
	"unicore/internal/telemetry"
)

// TestMetricsScrape pulls the v2 telemetry snapshot from a live gateway:
// the default scrape is one merged site-wide snapshot with spans stripped,
// -per-replica style requests return every origin, and the request's own
// envelope verification is already visible in the counters it reads back.
func TestMetricsScrape(t *testing.T) {
	s := newSite(t)
	consign(t, s.client(s.alice), scriptJob("metrics-traffic", "echo hi\n"))
	// One traced request so the scrape has a span to carry: spans record
	// only for envelopes whose header names a trace ID.
	ctx := telemetry.WithTrace(context.Background(), telemetry.NewTraceID())
	var lr protocol.ListReply
	if err := s.client(s.alice).Call(ctx, "FZJ", protocol.MsgList, protocol.ListRequest{}, &lr); err != nil {
		t.Fatalf("traced list: %v", err)
	}

	scrape := func(req protocol.MetricsRequest) protocol.MetricsReply {
		t.Helper()
		env, err := protocol.Seal(s.alice, protocol.MsgMetrics, req)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		mt, raw, _, _, err := protocol.Open(s.ca, s.gw.Handle(env))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if mt != protocol.MsgMetricsReply {
			t.Fatalf("reply type = %s, want %s (payload %s)", mt, protocol.MsgMetricsReply, raw)
		}
		var reply protocol.MetricsReply
		if err := json.Unmarshal(raw, &reply); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return reply
	}

	merged := scrape(protocol.MetricsRequest{})
	if len(merged.Snapshots) != 1 {
		t.Fatalf("default scrape returned %d snapshots, want 1 merged", len(merged.Snapshots))
	}
	snap := merged.Snapshots[0]
	if snap.Total("pki_verify_total") == 0 {
		t.Error("merged scrape has pki_verify_total == 0 after a consign")
	}
	if snap.Total("gateway_requests_total") == 0 {
		t.Error("merged scrape has gateway_requests_total == 0 after a consign")
	}
	if snap.HistCount("consign_ack_seconds") == 0 {
		t.Error("merged scrape has no consign_ack_seconds observations")
	}
	if len(snap.Spans) != 0 {
		t.Errorf("default scrape carried %d spans, want none", len(snap.Spans))
	}

	per := scrape(protocol.MetricsRequest{PerReplica: true, Spans: true})
	if len(per.Snapshots) < 2 {
		t.Fatalf("per-replica scrape returned %d snapshots, want gateway + NJS", len(per.Snapshots))
	}
	origins := make(map[string]bool)
	var spans int
	for _, sn := range per.Snapshots {
		origins[sn.Origin] = true
		spans += len(sn.Spans)
	}
	if len(origins) != len(per.Snapshots) {
		t.Fatalf("per-replica origins not distinct: %v", origins)
	}
	if spans == 0 {
		t.Error("per-replica scrape with Spans carried no spans")
	}
	// The merged view reproduces the per-replica totals.
	all := telemetry.Merge("check", per.Snapshots...)
	if all.Total("pki_verify_total") < snap.Total("pki_verify_total") {
		t.Errorf("per-replica merge lost counts: %v < %v",
			all.Total("pki_verify_total"), snap.Total("pki_verify_total"))
	}
}

// TestMetricsRequiresV2 keeps v1 interop untouched: MsgMetrics inside a
// v1-sealed envelope is refused with the version-rejection marker, answered
// at v1 so a strict v1 verifier can read the error it caused.
func TestMetricsRequiresV2(t *testing.T) {
	s := newSite(t)
	env, err := protocol.SealAt(s.alice, 1, protocol.MsgMetrics, protocol.MetricsRequest{})
	if err != nil {
		t.Fatalf("SealAt(1): %v", err)
	}
	ver, mt, raw, _, _, err := protocol.OpenVersioned(s.ca, s.gw.Handle(env))
	if err != nil {
		t.Fatalf("OpenVersioned: %v", err)
	}
	if mt != protocol.MsgError {
		t.Fatalf("v1 metrics request answered with %s, want %s", mt, protocol.MsgError)
	}
	if ver != 1 {
		t.Fatalf("rejection sealed at v%d, want v1", ver)
	}
	var er protocol.ErrorReply
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decode error reply: %v", err)
	}
	if !protocol.IsVersionRejection(&er) {
		t.Fatalf("rejection %v not recognised by IsVersionRejection", &er)
	}
}
