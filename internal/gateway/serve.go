package gateway

import (
	"crypto/tls"
	"net"
	"net/http"

	"unicore/internal/pki"
)

// ServeTLS serves a gateway (or split Front) handler on a mutually
// authenticated TLS listener — the https of §4.1: the server presents its
// X.509 certificate, and the client must present one chaining to the CA
// before any request is processed.
//
// ServeTLS blocks until the listener closes. The returned server can be shut
// down by closing the listener.
func ServeTLS(l net.Listener, handler http.Handler, cred *pki.Credential, ca *pki.Authority) error {
	srv := &http.Server{Handler: handler}
	tl := tls.NewListener(l, pki.ServerTLS(cred, ca))
	err := srv.Serve(tl)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ClientTransport builds an http.RoundTripper that presents the client
// credential and validates gateway certificates against the CA — the user
// side of the mutual TLS handshake.
func ClientTransport(cred *pki.Credential, ca *pki.Authority) *http.Transport {
	return &http.Transport{TLSClientConfig: pki.ClientTLS(cred, ca)}
}
