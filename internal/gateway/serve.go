package gateway

import (
	"crypto/tls"
	"net"
	"net/http"

	"unicore/internal/pki"
	"unicore/internal/protocol"
)

// ServeTLS serves a gateway (or split Front) handler on a mutually
// authenticated TLS listener — the https of §4.1: the server presents its
// X.509 certificate, and the client must present one chaining to the CA
// before any request is processed.
//
// ServeTLS blocks until the listener closes. The returned server can be shut
// down by closing the listener.
func ServeTLS(l net.Listener, handler http.Handler, cred *pki.Credential, ca *pki.Authority) error {
	srv := &http.Server{Handler: handler}
	tl := tls.NewListener(l, pki.ServerTLS(cred, ca))
	err := srv.Serve(tl)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ClientTransport builds the protocol transport that presents the client
// credential and validates gateway certificates against the CA — the user
// side of the mutual TLS handshake. Envelope POSTs and v3 stream upgrades
// share the same TLS configuration.
func ClientTransport(cred *pki.Credential, ca *pki.Authority) *protocol.HTTPTransport {
	return protocol.NewHTTPTransport(&http.Transport{TLSClientConfig: pki.ClientTLS(cred, ca)})
}
