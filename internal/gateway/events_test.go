package gateway

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"unicore/internal/pki"
	"unicore/internal/protocol"
)

// subscribeEnvelope seals a MsgSubscribe request for a site user.
func (s *site) subscribeEnvelope(t *testing.T, req protocol.SubscribeRequest) []byte {
	t.Helper()
	body, err := protocol.Seal(s.alice, protocol.MsgSubscribe, req)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return body
}

// openEvents decodes an events reply envelope.
func (s *site) openEvents(t *testing.T, data []byte) protocol.EventsReply {
	t.Helper()
	mt, raw, _, _, err := protocol.Open(s.ca, data)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if mt == protocol.MsgError {
		var er protocol.ErrorReply
		_ = json.Unmarshal(raw, &er)
		t.Fatalf("error reply: %v", &er)
	}
	if mt != protocol.MsgEventsReply {
		t.Fatalf("reply type = %s, want %s", mt, protocol.MsgEventsReply)
	}
	var reply protocol.EventsReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return reply
}

// TestSubscribeLongPollWakesOnEvent holds a user-stream subscription open
// until a consignment appends the first events, then returns them coalesced.
func TestSubscribeLongPollWakesOnEvent(t *testing.T) {
	s := newSite(t)
	env := s.subscribeEnvelope(t, protocol.SubscribeRequest{WaitMs: 30_000})

	replies := make(chan protocol.EventsReply, 1)
	go func() {
		replies <- s.openEvents(t, s.gw.HandleContext(context.Background(), env))
	}()
	select {
	case r := <-replies:
		t.Fatalf("long-poll returned before any event: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}

	id := consign(t, s.client(s.alice), scriptJob("wake", "echo hi\n"))
	var reply protocol.EventsReply
	select {
	case reply = <-replies:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke after the consignment")
	}
	if len(reply.Events) == 0 {
		t.Fatal("woken long-poll returned no events")
	}
	if reply.Events[0].Job != id || reply.Events[0].Type != "admitted" {
		t.Fatalf("first event = %+v, want admitted %s", reply.Events[0], id)
	}
}

// TestSubscribeLongPollDeadline returns an empty batch once the requested
// wall-clock wait expires without events.
func TestSubscribeLongPollDeadline(t *testing.T) {
	s := newSite(t)
	env := s.subscribeEnvelope(t, protocol.SubscribeRequest{WaitMs: 30})
	start := time.Now()
	reply := s.openEvents(t, s.gw.HandleContext(context.Background(), env))
	if len(reply.Events) != 0 {
		t.Fatalf("idle subscription returned %d events", len(reply.Events))
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("long-poll returned before its deadline")
	}
}

// TestSubscribeLongPollCancellation releases the held request as soon as the
// caller's context is cancelled — the propagation path of Session contexts.
func TestSubscribeLongPollCancellation(t *testing.T) {
	s := newSite(t)
	env := s.subscribeEnvelope(t, protocol.SubscribeRequest{WaitMs: 60_000})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan protocol.EventsReply, 1)
	go func() { done <- s.openEvents(t, s.gw.HandleContext(ctx, env)) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case reply := <-done:
		if len(reply.Events) != 0 {
			t.Fatalf("cancelled subscription returned %d events", len(reply.Events))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not release the long-poll")
	}
}

// TestReplyMirrorsRequestVersion keeps v1 peers working against a v2 server:
// a v1-sealed request gets a v1-sealed reply, and a v2 request a v2 reply.
func TestReplyMirrorsRequestVersion(t *testing.T) {
	s := newSite(t)
	for _, ver := range []int{1, 2} {
		env, err := protocol.SealAt(s.alice, ver, protocol.MsgList, protocol.ListRequest{})
		if err != nil {
			t.Fatalf("SealAt(%d): %v", ver, err)
		}
		got, mt, _, _, _, err := protocol.OpenVersioned(s.ca, s.gw.Handle(env))
		if err != nil {
			t.Fatalf("OpenVersioned(reply to v%d): %v", ver, err)
		}
		if mt != protocol.MsgListReply {
			t.Fatalf("v%d request answered with %s", ver, mt)
		}
		if got != ver {
			t.Fatalf("reply to a v%d request sealed at v%d", ver, got)
		}
	}
	// An authentication failure on a v1 envelope is answered at v1 too —
	// a strict v1 verifier must be able to read the error it caused.
	otherCA, err := pki.NewAuthority("IMPOSTOR")
	if err != nil {
		t.Fatal(err)
	}
	stranger, err := otherCA.IssueUser("Mallory", "ELSEWHERE")
	if err != nil {
		t.Fatal(err)
	}
	badEnv, err := protocol.SealAt(stranger, 1, protocol.MsgList, protocol.ListRequest{})
	if err != nil {
		t.Fatal(err)
	}
	gotVer, mt, _, _, _, err := protocol.OpenVersioned(s.ca, s.gw.Handle(badEnv))
	if err != nil {
		t.Fatalf("OpenVersioned(auth-failure reply): %v", err)
	}
	if mt != protocol.MsgError {
		t.Fatalf("untrusted signer answered with %s, want error", mt)
	}
	if gotVer != 1 {
		t.Fatalf("auth-failure reply to a v1 envelope sealed at v%d, want v1", gotVer)
	}

	// A version beyond the supported range is rejected with the negotiation
	// marker clients downgrade on.
	raw, err := json.Marshal(map[string]any{"version": protocol.Version + 1, "type": "list"})
	if err != nil {
		t.Fatal(err)
	}
	mt, body, _, _, err := protocol.Open(s.ca, s.gw.Handle(raw))
	if err != nil {
		t.Fatalf("Open(rejection): %v", err)
	}
	if mt != protocol.MsgError {
		t.Fatalf("future-version request answered with %s", mt)
	}
	var er protocol.ErrorReply
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !protocol.IsVersionRejection(&er) {
		t.Fatalf("rejection %v not recognised by IsVersionRejection", &er)
	}
}
