package gateway

import (
	"context"
	"crypto/tls"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/pki"
	"unicore/internal/protocol"
)

// TestMutualTLSEndToEnd serves a real gateway over TLS on the loopback and
// runs the full §4.1 handshake: the server presents its certificate, the
// client presents a user certificate, and a job flows end to end.
func TestMutualTLSEndToEnd(t *testing.T) {
	s := newSite(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer l.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- ServeTLS(l, s.gw, s.gw.cred, s.ca) }()

	// The registry points at the real TLS address; localhost certificates
	// carry the "gw.fzj" DNS name, so the client must set the server name.
	url := "https://" + l.Addr().String()
	reg := protocol.NewRegistry()
	reg.Add("FZJ", url)
	rt := ClientTransport(s.alice, s.ca)
	rt.HTTP.TLSClientConfig.ServerName = "gw.fzj"
	c := protocol.NewClient(rt, s.alice, s.ca, reg)

	job := scriptJob("over-tls", "echo tls works\n")
	raw, _ := ajo.Marshal(job)
	var reply protocol.ConsignReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, protocol.ConsignRequest{AJO: raw}, &reply); err != nil {
		t.Fatalf("consign over TLS: %v", err)
	}
	if !reply.Accepted {
		t.Fatalf("refused: %s", reply.Reason)
	}
	s.clock.RunUntilIdle(100000)
	var poll protocol.PollReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: reply.Job}, &poll); err != nil {
		t.Fatalf("poll over TLS: %v", err)
	}
	if poll.Summary.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s", poll.Summary.Status)
	}

	// A client with no certificate is refused during the handshake — the
	// §4.1 mutual authentication, before any request is processed.
	bare := &http.Client{
		Timeout: 5 * time.Second,
		Transport: &http.Transport{TLSClientConfig: &tls.Config{
			RootCAs:    s.ca.Pool(),
			ServerName: "gw.fzj",
			MinVersion: tls.VersionTLS13,
		}},
	}
	if resp, err := bare.Post(url+protocol.Endpoint, "application/json", strings.NewReader("{}")); err == nil {
		// TLS 1.3 reports missing client certs on first read or as an HTTP
		// failure; either way the request must not succeed.
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && len(body) > 0 {
			t.Fatal("request without a client certificate was served")
		}
	}
	l.Close()
	if err := <-serveErr; err != nil && !strings.Contains(err.Error(), "use of closed") {
		t.Fatalf("ServeTLS: %v", err)
	}
}

// TestServeHTTPSurface covers the Web-server surface: the UNICORE Web page,
// unknown paths, and oversized envelopes.
func TestServeHTTPSurface(t *testing.T) {
	s := newSite(t)

	// The UNICORE Web page (§4.2: the https server "provides the UNICORE
	// Web page") lists Vsites and applets.
	soft, err := s.ca.IssueSoftware("UNICORE Consortium")
	if err != nil {
		t.Fatalf("IssueSoftware: %v", err)
	}
	applet, _ := SignApplet(soft, "jpa", "1.0", []byte("payload"))
	if err := s.gw.InstallApplet(applet); err != nil {
		t.Fatalf("InstallApplet: %v", err)
	}
	rec := httptest.NewRecorder()
	s.gw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	page := rec.Body.String()
	if rec.Code != http.StatusOK || !strings.Contains(page, "FZJ/T3E") || !strings.Contains(page, "jpa") {
		t.Fatalf("web page = %d\n%s", rec.Code, page)
	}

	// Unknown paths 404.
	rec = httptest.NewRecorder()
	s.gw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nothing", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", rec.Code)
	}

	// GET on the envelope endpoint is not allowed.
	rec = httptest.NewRecorder()
	s.gw.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, protocol.Endpoint, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET endpoint = %d", rec.Code)
	}

	// Oversized request bodies are rejected before parsing.
	huge := strings.NewReader(strings.Repeat("x", maxRequest+1))
	rec = httptest.NewRecorder()
	s.gw.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, protocol.Endpoint, huge))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized request = %d", rec.Code)
	}
}

// TestFrontHTTPSurface covers the firewall front's HTTP handling.
func TestFrontHTTPSurface(t *testing.T) {
	_, front, cleanup := splitSite(t)
	defer cleanup()
	rec := httptest.NewRecorder()
	front.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, protocol.Endpoint, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET through front = %d", rec.Code)
	}
	huge := strings.NewReader(strings.Repeat("x", maxRequest+1))
	rec = httptest.NewRecorder()
	front.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, protocol.Endpoint, huge))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized through front = %d", rec.Code)
	}
}

// TestVerifyRoles ensures only user and server roles pass the gateway; a
// software-publisher certificate cannot drive the job interface.
func TestVerifyRoles(t *testing.T) {
	s := newSite(t)
	soft, err := s.ca.IssueSoftware("Sneaky Publisher")
	if err != nil {
		t.Fatalf("IssueSoftware: %v", err)
	}
	c := s.client(soft)
	err = c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &protocol.ListReply{})
	if err == nil {
		t.Fatal("software-role caller was served")
	}
	if !strings.Contains(err.Error(), "role") {
		t.Fatalf("err = %v, want role refusal", err)
	}
	_ = pki.RoleSoftware
}
