package gateway

import (
	"context"
	"net"
	"strings"
	"testing"

	"unicore/internal/ajo"
	"unicore/internal/protocol"
)

// splitSite wires a site in the §5.2 firewall configuration: the Front
// relays over a real TCP socket on a site-selectable port to the Inner.
func splitSite(t *testing.T) (*site, *Front, func()) {
	t.Helper()
	s := newSite(t)

	inner := NewInner(s.gw)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener available: %v", err)
	}
	go inner.Serve(l)

	frontCred, err := s.ca.IssueServer("front.fzj", "gw.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	front, err := NewFront(frontCred, s.ca, TCPDial(l.Addr().String()))
	if err != nil {
		t.Fatalf("NewFront: %v", err)
	}
	// Replace the combined gateway with the split front at the same host.
	s.net.Register("gw.fzj", front)
	cleanup := func() {
		front.Close()
		inner.Close()
	}
	return s, front, cleanup
}

func TestSplitEndToEnd(t *testing.T) {
	s, _, cleanup := splitSite(t)
	defer cleanup()

	c := s.client(s.alice)
	id := consign(t, c, scriptJob("split", "echo through the firewall\n"))
	s.clock.RunUntilIdle(100000)

	var poll protocol.PollReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &poll); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if poll.Summary.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s, want SUCCESSFUL", poll.Summary.Status)
	}
}

func TestSplitRejectsAtTheFirewall(t *testing.T) {
	s, front, cleanup := splitSite(t)
	defer cleanup()

	// An unauthenticated envelope is answered at the front; it must never
	// reach the inner gateway.
	before := s.gw.Stats().Requests
	reply := front.Handle([]byte("garbage"))
	tp, _, _, _, err := protocol.Open(s.ca, reply)
	if err != nil || tp != protocol.MsgError {
		t.Fatalf("front reply = %s (err %v), want sealed error", tp, err)
	}
	if after := s.gw.Stats().Requests; after != before {
		t.Fatalf("unauthenticated request crossed the firewall (%d -> %d)", before, after)
	}
}

func TestSplitSurvivesInnerReconnect(t *testing.T) {
	s, front, cleanup := splitSite(t)
	defer cleanup()

	c := s.client(s.alice)
	if err := c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &protocol.ListReply{}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	// Drop the pooled connection behind the front's back; the next call must
	// transparently redial.
	front.mu.Lock()
	front.conn.Close()
	front.mu.Unlock()
	if err := c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &protocol.ListReply{}); err != nil {
		t.Fatalf("call after reconnect: %v", err)
	}
}

func TestSplitInnerDown(t *testing.T) {
	s := newSite(t)
	frontCred, err := s.ca.IssueServer("front.fzj", "gw.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	front, err := NewFront(frontCred, s.ca, TCPDial("127.0.0.1:1")) // nothing listens there
	if err != nil {
		t.Fatalf("NewFront: %v", err)
	}
	s.net.Register("gw.fzj", front)
	c := s.client(s.alice)
	err = c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &protocol.ListReply{})
	if err == nil {
		t.Fatal("call succeeded with the inner server down")
	}
	if !strings.Contains(err.Error(), "relay") {
		t.Fatalf("err = %v, want a relay failure", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	payload := []byte("framed payload")
	errc := make(chan error, 1)
	go func() { errc <- writeFrame(a, payload) }()
	got, err := readFrame(b)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("frame = %q, want %q", got, payload)
	}
	if err := <-errc; err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var sink net.Conn
	a, b := net.Pipe()
	sink = a
	defer a.Close()
	defer b.Close()
	_ = sink
	big := make([]byte, maxFrame+1)
	if err := writeFrame(a, big); err == nil {
		t.Fatal("oversized frame written")
	}
}
