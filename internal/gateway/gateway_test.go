package gateway

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// site bundles one in-process Usite for gateway tests.
type site struct {
	clock *sim.VirtualClock
	ca    *pki.Authority
	gw    *Gateway
	njs   *njs.NJS
	users *uudb.DB
	net   *protocol.InProc
	reg   *protocol.Registry
	alice *pki.Credential
}

func newSite(t *testing.T, opts ...func(*Config)) *site {
	t.Helper()
	clock := sim.NewVirtualClock()
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	srvCred, err := ca.IssueServer("gateway.fzj", "gw.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	alice, err := ca.IssueUser("Alice Ahlmann", "FZJ")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	users := uudb.New("FZJ", clock)
	users.AddUser(alice.DN(), "alice@fzj.de")
	if err := users.AddMapping(alice.DN(), "T3E", uudb.Login{UID: "aahlm", Groups: []string{"zam"}}); err != nil {
		t.Fatalf("AddMapping: %v", err)
	}
	n, err := njs.New(njs.Config{
		Usite:  "FZJ",
		Clock:  clock,
		Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(64)}},
	})
	if err != nil {
		t.Fatalf("njs.New: %v", err)
	}
	cfg := Config{Usite: "FZJ", Cred: srvCred, CA: ca, Users: users, NJS: n}
	for _, o := range opts {
		o(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	inproc := protocol.NewInProc()
	inproc.Register("gw.fzj", gw)
	reg := protocol.NewRegistry()
	reg.Add("FZJ", "https://gw.fzj")
	return &site{clock: clock, ca: ca, gw: gw, njs: n, users: users, net: inproc, reg: reg, alice: alice}
}

func (s *site) client(cred *pki.Credential) *protocol.Client {
	return protocol.NewClient(s.net, cred, s.ca, s.reg)
}

// scriptJob builds a one-task script job for the test Vsite.
func scriptJob(name, script string) *ajo.AbstractJob {
	return &ajo.AbstractJob{
		Header: ajo.Header{ActionID: ajo.NewID("job"), ActionName: name},
		Target: core.Target{Usite: "FZJ", Vsite: "T3E"},
		Actions: ajo.ActionList{
			&ajo.ScriptTask{
				TaskBase: ajo.TaskBase{
					Header:    ajo.Header{ActionID: "s1", ActionName: "script"},
					Resources: resources.Request{Processors: 1, RunTime: time.Minute},
				},
				Script: script,
			},
		},
	}
}

func consign(t *testing.T, c *protocol.Client, job *ajo.AbstractJob) core.JobID {
	t.Helper()
	raw, err := ajo.Marshal(job)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var reply protocol.ConsignReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, protocol.ConsignRequest{ConsignID: string(job.ID()), AJO: raw}, &reply); err != nil {
		t.Fatalf("consign: %v", err)
	}
	if !reply.Accepted {
		t.Fatalf("consign refused: %s", reply.Reason)
	}
	return reply.Job
}

func TestEndToEndScriptJob(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	id := consign(t, c, scriptJob("hello", "echo hello unicore\n"))
	s.clock.RunUntilIdle(100000)

	var poll protocol.PollReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &poll); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if !poll.Found || poll.Summary.Status != ajo.StatusSuccessful {
		t.Fatalf("job = %+v, want successful", poll.Summary)
	}

	var oreply protocol.OutcomeReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgOutcome, protocol.OutcomeRequest{Job: id}, &oreply); err != nil {
		t.Fatalf("outcome: %v", err)
	}
	if !oreply.Found {
		t.Fatal("outcome not found")
	}
	o, err := ajo.UnmarshalOutcome(oreply.Outcome)
	if err != nil {
		t.Fatalf("UnmarshalOutcome: %v", err)
	}
	task, ok := o.Find("s1")
	if !ok {
		t.Fatal("no outcome for task s1")
	}
	if got := string(task.Stdout); !strings.Contains(got, "hello unicore") {
		t.Fatalf("stdout = %q, want it to contain %q", got, "hello unicore")
	}
}

func TestListAndControl(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	// A job that would run for a while: hold it immediately.
	id := consign(t, c, scriptJob("long", "cpu 30m\n"))

	var list protocol.ListReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].Job != id {
		t.Fatalf("list = %+v, want the one consigned job", list.Jobs)
	}

	var ctl protocol.ControlReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgControl, protocol.ControlRequest{Job: id, Op: ajo.OpAbort}, &ctl); err != nil {
		t.Fatalf("control: %v", err)
	}
	if !ctl.OK {
		t.Fatalf("abort refused: %s", ctl.Reason)
	}
	s.clock.RunUntilIdle(100000)
	var poll protocol.PollReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &poll); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if poll.Summary.Status != ajo.StatusAborted {
		t.Fatalf("status = %s, want ABORTED", poll.Summary.Status)
	}
}

func TestUnmappedUserIsRefused(t *testing.T) {
	s := newSite(t)
	mallory, err := s.ca.IssueUser("Mallory", "Nowhere")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	c := s.client(mallory)
	raw, _ := ajo.Marshal(scriptJob("x", "echo x\n"))
	var reply protocol.ConsignReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, protocol.ConsignRequest{AJO: raw}, &reply); err != nil {
		t.Fatalf("call: %v", err)
	}
	if reply.Accepted {
		t.Fatal("consign accepted for a user with no UUDB mapping")
	}
	if !strings.Contains(reply.Reason, "mapping") {
		t.Fatalf("reason = %q, want a mapping failure", reply.Reason)
	}
}

func TestRevokedCertificateIsRejected(t *testing.T) {
	s := newSite(t)
	s.ca.Revoke(s.alice.Cert)
	c := s.client(s.alice)
	err := c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &protocol.ListReply{})
	if err == nil {
		t.Fatal("revoked certificate was accepted")
	}
	var er *protocol.ErrorReply
	if !strings.Contains(err.Error(), "revoked") {
		t.Fatalf("err = %v (%T, errAs=%v), want revocation failure", err, err, er)
	}
}

func TestBlockedUserIsRejected(t *testing.T) {
	s := newSite(t)
	s.users.Block(s.alice.DN())
	c := s.client(s.alice)
	raw, _ := ajo.Marshal(scriptJob("x", "echo x\n"))
	var reply protocol.ConsignReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, protocol.ConsignRequest{AJO: raw}, &reply); err != nil {
		t.Fatalf("call: %v", err)
	}
	if reply.Accepted {
		t.Fatal("consign accepted for a blocked user")
	}
}

func TestSiteAuthHook(t *testing.T) {
	denied := core.DN("")
	s := newSite(t, func(c *Config) {
		c.SiteAuth = func(dn core.DN) error {
			if dn == denied {
				return nil
			}
			if strings.Contains(string(dn), "Alice") {
				return nil
			}
			return protocol.ErrorReply{Code: "dce", Message: "no DCE ticket"}
		}
	})
	bob, err := s.ca.IssueUser("Bob", "RUS")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	if err := c0(t, s, s.alice); err != nil {
		t.Fatalf("alice should pass site auth: %v", err)
	}
	if err := c0(t, s, bob); err == nil {
		t.Fatal("bob should fail site auth")
	}
}

func c0(t *testing.T, s *site, cred *pki.Credential) error {
	t.Helper()
	return s.client(cred).Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &protocol.ListReply{})
}

func TestTransferRequiresServerRole(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	err := c.Call(context.Background(), "FZJ", protocol.MsgTransfer, protocol.TransferRequest{Job: "FZJ-000001", File: "x"}, &protocol.TransferReply{})
	if err == nil {
		t.Fatal("user-role transfer request was accepted")
	}
	if !strings.Contains(err.Error(), "NJS-to-NJS") {
		t.Fatalf("err = %v, want role refusal", err)
	}
}

func TestOtherUsersJobsAreInvisible(t *testing.T) {
	s := newSite(t)
	id := consign(t, s.client(s.alice), scriptJob("private", "echo secret\n"))
	s.clock.RunUntilIdle(100000)

	bob, err := s.ca.IssueUser("Bob", "RUS")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	cb := s.client(bob)
	err = cb.Call(context.Background(), "FZJ", protocol.MsgOutcome, protocol.OutcomeRequest{Job: id}, &protocol.OutcomeReply{})
	if err == nil {
		t.Fatal("bob could read alice's outcome")
	}
	var list protocol.ListReply
	if err := cb.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("bob sees %d jobs, want 0", len(list.Jobs))
	}
}

func TestResourcePages(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	var reply protocol.ResourcesReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgResources, protocol.ResourcesRequest{}, &reply); err != nil {
		t.Fatalf("resources: %v", err)
	}
	if len(reply.PagesDER) != 1 {
		t.Fatalf("got %d pages, want 1", len(reply.PagesDER))
	}
	page, err := resources.UnmarshalASN1(reply.PagesDER[0])
	if err != nil {
		t.Fatalf("UnmarshalASN1: %v", err)
	}
	if page.Target != (core.Target{Usite: "FZJ", Vsite: "T3E"}) {
		t.Fatalf("page target = %s", page.Target)
	}
	if page.Architecture != "Cray T3E" {
		t.Fatalf("architecture = %q", page.Architecture)
	}

	// Asking for a non-existent Vsite is an error.
	err = c.Call(context.Background(), "FZJ", protocol.MsgResources, protocol.ResourcesRequest{Vsite: "SX4"}, &reply)
	if err == nil {
		t.Fatal("resources for unknown Vsite succeeded")
	}
}

func TestSignedApplets(t *testing.T) {
	s := newSite(t)
	software, err := s.ca.IssueSoftware("UNICORE Consortium")
	if err != nil {
		t.Fatalf("IssueSoftware: %v", err)
	}
	payload := []byte("JPA bytecode v1.2")
	applet, err := SignApplet(software, "jpa", "1.2", payload)
	if err != nil {
		t.Fatalf("SignApplet: %v", err)
	}
	if err := s.gw.InstallApplet(applet); err != nil {
		t.Fatalf("InstallApplet: %v", err)
	}

	c := s.client(s.alice)
	var reply protocol.AppletReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgApplet, protocol.AppletRequest{Name: "jpa"}, &reply); err != nil {
		t.Fatalf("applet fetch: %v", err)
	}
	// The user-side verification: the applet certificate is checked so the
	// user knows the software has not been tampered with (§4.1).
	dn, err := s.ca.VerifySignature(reply.Payload, reply.Signature, pki.RoleSoftware)
	if err != nil {
		t.Fatalf("verify applet: %v", err)
	}
	if dn.CommonName() != "UNICORE Consortium" {
		t.Fatalf("applet signer = %s", dn)
	}

	// Tampered payloads are refused at install time...
	bad := applet
	bad.Payload = []byte("JPA bytecode v1.2 + trojan")
	if err := s.gw.InstallApplet(bad); err == nil {
		t.Fatal("tampered applet installed")
	}
	// ...and detected client-side if served anyway.
	if _, err := s.ca.VerifySignature(bad.Payload, bad.Signature, pki.RoleSoftware); err == nil {
		t.Fatal("tampered applet verified")
	}

	// A user-signed applet must not install: wrong role.
	if _, err := SignApplet(s.alice, "jmc", "1.0", payload); err == nil {
		t.Fatal("user credential signed an applet")
	}
}

func TestLoadQuery(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	var before protocol.LoadReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgLoad, protocol.LoadRequest{}, &before); err != nil {
		t.Fatalf("load: %v", err)
	}
	if before.Overall != 0 {
		t.Fatalf("idle load = %v, want 0", before.Overall)
	}
	// Saturate the Vsite and ask again. 64 PEs; each job takes 32.
	for i := 0; i < 4; i++ {
		job := scriptJob("fill", "cpu 30m\n")
		job.Actions[0].(*ajo.ScriptTask).Resources.Processors = 32
		job.Header.ActionID = ajo.NewID("fill")
		consign(t, c, job)
	}
	s.clock.Advance(time.Second)
	var after protocol.LoadReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgLoad, protocol.LoadRequest{}, &after); err != nil {
		t.Fatalf("load: %v", err)
	}
	if after.Overall != 1 {
		t.Fatalf("saturated load = %v, want 1", after.Overall)
	}
	vl, ok := after.Vsites["T3E"]
	if !ok {
		t.Fatalf("no per-vsite load: %+v", after.Vsites)
	}
	if vl.Pending != 2 {
		t.Fatalf("pending = %d, want 2 (4 jobs, 2 fit)", vl.Pending)
	}
}

func TestStatsCounting(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	// Stats().ByType is a census of signed envelopes; pin the hot kinds to
	// the envelope path (v3 stream traffic has its own gateway_stream_*
	// counters).
	c.DisableStreams = true
	_ = c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &protocol.ListReply{})
	_ = c.Call(context.Background(), "FZJ", protocol.MsgTransfer, protocol.TransferRequest{}, nil) // rejected: role
	st := s.gw.Stats()
	if st.Requests != 2 {
		t.Fatalf("requests = %d, want 2", st.Requests)
	}
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	if st.ByType[protocol.MsgList] != 1 || st.ByType[protocol.MsgTransfer] != 1 {
		t.Fatalf("by-type = %v", st.ByType)
	}
}

func TestMalformedEnvelope(t *testing.T) {
	s := newSite(t)
	reply := s.gw.Handle([]byte("this is not an envelope"))
	tp, raw, _, _, err := protocol.Open(s.ca, reply)
	if err != nil {
		t.Fatalf("error reply not sealed properly: %v", err)
	}
	if tp != protocol.MsgError {
		t.Fatalf("reply type = %s, want error", tp)
	}
	var er protocol.ErrorReply
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decoding error reply: %v", err)
	}
	if er.Code != "authentication" {
		t.Fatalf("code = %q, want authentication", er.Code)
	}
}

func TestConsignIdempotency(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	job := scriptJob("once", "echo once\n")
	raw, _ := ajo.Marshal(job)
	req := protocol.ConsignRequest{ConsignID: "retry-1", AJO: raw}
	var r1, r2 protocol.ConsignReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, req, &r1); err != nil {
		t.Fatalf("consign 1: %v", err)
	}
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, req, &r2); err != nil {
		t.Fatalf("consign 2: %v", err)
	}
	if r1.Job != r2.Job {
		t.Fatalf("retried consign created a second job: %s vs %s", r1.Job, r2.Job)
	}
	var list protocol.ListReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgList, protocol.ListRequest{}, &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("list has %d jobs, want 1", len(list.Jobs))
	}
}

func TestForgedUserDNInAJO(t *testing.T) {
	s := newSite(t)
	c := s.client(s.alice)
	job := scriptJob("forged", "echo x\n")
	job.UserDN = core.MakeDN("Somebody Else", "X", "DE")
	raw, _ := ajo.Marshal(job)
	var reply protocol.ConsignReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, protocol.ConsignRequest{AJO: raw}, &reply); err == nil {
		if reply.Accepted {
			t.Fatal("AJO with a forged user DN was accepted from a user-role signer")
		}
	}
}
