package gateway

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"unicore/internal/pki"
	"unicore/internal/protocol"
)

// This file reproduces the firewall deployment of §5.2: "the two parts of
// the UNICORE server, the Web server and the NJS, can be run on different
// systems. The Web server has to be installed on the firewall system and the
// NJS on a system inside the firewall. The communication between the two
// components is done via IP socket connection to a site selectable port."
//
// The Front is the Web-server half: it terminates https, authenticates the
// caller's envelope at the firewall, and relays the verified bytes over a
// framed IP socket. The Inner is the NJS-side half: it reads frames off the
// socket and feeds them to the full gateway logic.

// maxFrame bounds one relayed message (envelopes carry inline files).
const maxFrame = maxRequest

// ErrFrameTooLarge reports an oversized frame on the split socket.
var ErrFrameTooLarge = errors.New("gateway: frame exceeds maximum size")

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Inner is the NJS-side half of a split gateway. It owns the full gateway
// logic; the Front relays envelopes to it over the socket.
type Inner struct {
	gw *Gateway

	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
}

// NewInner wraps a gateway as the inside-the-firewall server.
func NewInner(gw *Gateway) *Inner {
	return &Inner{gw: gw}
}

// Serve accepts connections from the Front until the listener closes. Each
// connection carries a sequence of request/reply frames.
func (in *Inner) Serve(l net.Listener) error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		l.Close()
		return errors.New("gateway: inner server closed")
	}
	in.listeners = append(in.listeners, l)
	in.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			in.mu.Lock()
			closed := in.closed
			in.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go in.handleConn(conn)
	}
}

// Close stops every listener.
func (in *Inner) Close() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.closed = true
	for _, l := range in.listeners {
		l.Close()
	}
	in.listeners = nil
}

// HandleConn serves one Front connection: frames in, frames out, until EOF.
// Exported so tests and in-process deployments can drive it over net.Pipe.
func (in *Inner) HandleConn(conn net.Conn) {
	in.handleConn(conn)
}

func (in *Inner) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // EOF or broken pipe: the Front redials
		}
		if err := writeFrame(conn, in.gw.Handle(req)); err != nil {
			return
		}
	}
}

// Front is the Web-server half of a split gateway, deployed on the firewall
// system. It authenticates callers (the https user authentication happens at
// the firewall) and relays verified envelopes to the Inner over the
// site-selectable port.
type Front struct {
	cred *pki.Credential
	ca   *pki.Authority
	dial func() (net.Conn, error)

	mu   sync.Mutex
	conn net.Conn // pooled connection to the Inner
}

// NewFront builds the firewall half. dial opens a connection to the Inner's
// socket; TCPDial is the common choice.
func NewFront(cred *pki.Credential, ca *pki.Authority, dial func() (net.Conn, error)) (*Front, error) {
	if cred == nil || cred.Role != pki.RoleServer {
		return nil, errors.New("gateway: front needs a server-role credential")
	}
	if ca == nil {
		return nil, errors.New("gateway: front needs the CA")
	}
	if dial == nil {
		return nil, errors.New("gateway: front needs a dialer")
	}
	return &Front{cred: cred, ca: ca, dial: dial}, nil
}

// TCPDial returns a dialer to the Inner's TCP address.
func TCPDial(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// ServeHTTP implements the firewall-side https endpoint.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != protocol.Endpoint {
		http.NotFound(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequest+1))
	if err != nil {
		http.Error(w, "reading request", http.StatusBadRequest)
		return
	}
	if len(body) > maxRequest {
		http.Error(w, "request too large", http.StatusRequestEntityTooLarge)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(f.Handle(body))
}

// Handle authenticates the envelope at the firewall and relays it inward.
// Failures are answered locally with sealed error replies (at the version
// the request arrived with) — unauthenticated traffic never crosses the
// firewall. Note the relay serializes frames on one pooled connection, so a
// split site that serves MsgSubscribe long-polls should configure a small
// gateway MaxEventWait; subscribers recover by re-issuing their cursor.
func (f *Front) Handle(data []byte) []byte {
	ver, _, _, _, role, err := protocol.OpenVersioned(f.ca, data)
	if err != nil {
		if ver == 0 {
			ver = protocol.Version
		}
		return f.sealError(ver, "authentication", err)
	}
	if role != pki.RoleUser && role != pki.RoleServer {
		return f.sealError(ver, "role", fmt.Errorf("%w: %q", ErrNotPermitted, role))
	}
	reply, err := f.relay(data)
	if err != nil {
		return f.sealError(ver, "relay", fmt.Errorf("gateway: relaying inside the firewall: %w", err))
	}
	return reply
}

// relay sends one frame to the Inner, reusing the pooled connection and
// redialling once on failure.
func (f *Front) relay(data []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if f.conn == nil {
			conn, err := f.dial()
			if err != nil {
				return nil, err
			}
			f.conn = conn
		}
		if err := writeFrame(f.conn, data); err == nil {
			if reply, err := readFrame(f.conn); err == nil {
				return reply, nil
			}
		}
		f.conn.Close()
		f.conn = nil
	}
	return nil, errors.New("inner connection failed twice")
}

// Close drops the pooled connection.
func (f *Front) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conn != nil {
		f.conn.Close()
		f.conn = nil
	}
}

func (f *Front) sealError(ver int, code string, cause error) []byte {
	out, err := protocol.SealAt(f.cred, ver, protocol.MsgError, protocol.ErrorReply{
		Code:    code,
		Message: cause.Error(),
	})
	if err != nil {
		return []byte(`{"fatal":"sealing error reply failed"}`)
	}
	return out
}
