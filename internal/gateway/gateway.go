// Package gateway implements the UNICORE server's public face (paper §4.2,
// §5.2): the https Web server plus the Java security servlet. The gateway
//
//   - authenticates every request by verifying the envelope signature chain
//     against the site CA (the reproduction of the https/X.509 mutual
//     authentication of §4.1),
//   - maps the user's certificate distinguished name to the local user-id at
//     the target system through the site's UUDB ("the Java security servlet
//     (gateway) which maps the user's certificate to the user's id at the
//     target system"),
//   - offers a hook for "additional site specific authentication" (smart
//     cards, DCE) exactly where the paper places it,
//   - serves the signed applets (JPA/JMC payloads) and the Vsites' resource
//     pages in ASN.1, and
//   - forwards authenticated requests to the NJS — either in-process (the
//     combined server) or across the firewall split of §5.2 (see split.go).
//
// # Concurrency model
//
// Handle is safe for any number of concurrent callers and takes no gateway
// lock on the request path: traffic counters are lock-free atomics (with a
// small mutex only around the dynamic failure-cause map), and the applet
// store sits behind its own RWMutex so applet serving never contends with
// anything else. Per-request state flows through the NJS, which shards its
// locking per job.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/federation"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/telemetry"
	"unicore/internal/uudb"
)

// maxRequest bounds one request envelope. AJOs carry workstation files
// inline (§5.6), so the bound is generous.
const maxRequest = 64 << 20

// DefaultMaxEventWait caps how long one MsgSubscribe request may long-poll
// server-side. The cap is real (wall-clock) time even under a virtual-clock
// deployment: holding a request is a transport concern, and burning no
// virtual events keeps simulations deterministic.
const DefaultMaxEventWait = 2 * time.Minute

// Errors reported by the gateway.
var (
	ErrNotPermitted = errors.New("gateway: role not permitted for this request")
	ErrSiteAuth     = errors.New("gateway: site-specific authentication failed")
	ErrBadApplet    = errors.New("gateway: applet signature invalid")
)

// SiteAuth is the hook for site-specific authentication beyond the X.509
// check: "for sites that require the use of smart cards or run DCE ... it
// also offers an interface for additional site specific authentication"
// (§4.2). It runs for user-role callers after signature verification.
type SiteAuth func(dn core.DN) error

// Applet is a signed software payload — the stand-in for the signed Java
// applets (JPA/JMC) of §4.1/§5.2. The signature is a detached signature by a
// software-publisher credential over Payload; clients verify it before
// trusting the code ("the applet certificate is checked to assure the user
// that the software has not been tampered with").
type Applet struct {
	Name      string
	Version   string
	Payload   []byte
	Signature pki.Signature
}

// SignApplet produces an applet signed by a software-publisher credential.
func SignApplet(publisher *pki.Credential, name, version string, payload []byte) (Applet, error) {
	if publisher.Role != pki.RoleSoftware {
		return Applet{}, fmt.Errorf("gateway: applet signer has role %s, want %s", publisher.Role, pki.RoleSoftware)
	}
	sig, err := publisher.Sign(payload)
	if err != nil {
		return Applet{}, err
	}
	return Applet{Name: name, Version: version, Payload: payload, Signature: sig}, nil
}

// Stats counts gateway traffic, by message type and by rejection cause.
type Stats struct {
	Requests  int64
	Rejected  int64
	ByType    map[protocol.MsgType]int64
	ByFailure map[string]int64
}

// Config assembles a gateway.
type Config struct {
	Usite core.Usite
	// Cred is the gateway's server certificate (presented in every reply
	// envelope, mirroring the server side of the SSL handshake).
	Cred *pki.Credential
	// CA is the trust root for verifying callers.
	CA *pki.Authority
	// Users is the site's UNICORE user database for DN→login mapping.
	Users *uudb.DB
	// NJS is the site's network job supervisor. The gateway installs itself
	// as the NJS's login mapper. Exactly one of NJS and Backend must be set.
	NJS *njs.NJS
	// Backend is the generalised server tier behind the gateway: any
	// njs.Service — in particular a pool.Router fronting health-checked NJS
	// replica pools per Vsite. Exactly one of NJS and Backend must be set.
	Backend njs.Service
	// SiteAuth, when set, is consulted for every user-role request.
	SiteAuth SiteAuth
	// MaxEventWait caps the server-side long-poll of one MsgSubscribe
	// request (default DefaultMaxEventWait).
	MaxEventWait time.Duration
	// MaxVersion caps the protocol version this gateway accepts (0 = the
	// build's protocol.Version). A capped gateway rejects newer envelopes
	// and refuses v3 streams exactly like a build that predates them —
	// the knob behind the negotiation matrix tests.
	MaxVersion int
}

// Gateway is one Usite's UNICORE server front end.
type Gateway struct {
	usite    core.Usite
	cred     *pki.Credential
	ca       *pki.Authority
	users    *uudb.DB
	siteAuth SiteAuth
	maxWait  time.Duration
	maxVer   int

	// backend holds the server tier behind an atomic pointer so a recovered
	// NJS (or a rebuilt replica router) can be swapped in while requests are
	// in flight (the gateway and the NJS restart independently in the §5.2
	// split deployment). The box keeps the stored concrete type uniform.
	backend atomic.Pointer[backendBox]

	// fed is the optional federation membership (SetFederation): gossip
	// with peer gateways, broker placement over their advertisements, and
	// cross-gateway forwarding of consigns. Nil on unfederated gateways —
	// every federation hook on the request path is a single atomic load.
	fed atomic.Pointer[federation.Federation]

	// appletMu guards only the applet store; serving an applet never
	// contends with traffic accounting or other requests.
	appletMu sync.RWMutex
	applets  map[string]Applet

	// Traffic counters are atomics so the request hot path takes no lock.
	// byType is pre-populated with every defined message type at New and
	// never mutated afterwards, making the per-type increment lock-free;
	// extraMu covers the two small maps with dynamic keys.
	requests   atomic.Int64
	rejected   atomic.Int64
	byType     map[protocol.MsgType]*atomic.Int64
	extraMu    sync.Mutex
	extraTypes map[protocol.MsgType]int64
	byFailure  map[string]int64

	// tel mirrors the traffic counters into the scrapeable registry and adds
	// what Stats never carried: signature-verify latency, long-poll occupancy,
	// and the "gateway.dispatch" trace spans. Deployments running on a virtual
	// clock point its clock at the simulation via Telemetry().SetNow.
	tel *telemetry.Registry

	// sourceMu guards extra metric sources (e.g. a topology controller's
	// registry) appended to MsgMetrics scrapes alongside the backend's.
	sourceMu sync.Mutex
	sources  []func() []telemetry.Snapshot
}

// New assembles a gateway and wires it into the NJS as its login mapper.
func New(cfg Config) (*Gateway, error) {
	if cfg.Usite == "" {
		return nil, errors.New("gateway: empty usite")
	}
	if cfg.Cred == nil || cfg.Cred.Role != pki.RoleServer {
		return nil, errors.New("gateway: need a server-role credential")
	}
	if cfg.CA == nil {
		return nil, errors.New("gateway: nil CA")
	}
	if cfg.Users == nil {
		return nil, errors.New("gateway: nil user database")
	}
	backend := cfg.Backend
	if cfg.NJS != nil {
		if backend != nil {
			return nil, errors.New("gateway: set either NJS or Backend, not both")
		}
		backend = cfg.NJS
	}
	if backend == nil {
		return nil, errors.New("gateway: nil NJS/Backend")
	}
	maxWait := cfg.MaxEventWait
	if maxWait <= 0 {
		maxWait = DefaultMaxEventWait
	}
	maxVer := cfg.MaxVersion
	if maxVer <= 0 || maxVer > protocol.Version {
		maxVer = protocol.Version
	}
	g := &Gateway{
		usite:      cfg.Usite,
		cred:       cfg.Cred,
		ca:         cfg.CA,
		users:      cfg.Users,
		siteAuth:   cfg.SiteAuth,
		maxWait:    maxWait,
		maxVer:     maxVer,
		applets:    make(map[string]Applet),
		byType:     make(map[protocol.MsgType]*atomic.Int64),
		extraTypes: make(map[protocol.MsgType]int64),
		byFailure:  make(map[string]int64),
		tel:        telemetry.New("gateway/" + string(cfg.Usite)),
	}
	for _, t := range protocol.MsgTypes() {
		g.byType[t] = new(atomic.Int64)
	}
	g.SetBackend(backend)
	return g, nil
}

// backendBox wraps the service interface for atomic storage regardless of
// the concrete backend type.
type backendBox struct{ svc njs.Service }

// svc returns the server tier currently behind this gateway.
func (g *Gateway) svc() njs.Service { return g.backend.Load().svc }

// Backend returns the server tier currently behind this gateway: a single
// *njs.NJS or a pool.Router over replica sets.
func (g *Gateway) Backend() njs.Service { return g.svc() }

// NJS returns the network job supervisor currently behind this gateway, or
// nil when the backend is a replica pool rather than a single NJS (use
// Backend for the general form).
func (g *Gateway) NJS() *njs.NJS {
	n, _ := g.svc().(*njs.NJS)
	return n
}

// SetBackend swaps the server tier behind the gateway — the restart path: a
// recovered NJS (njs.Recover) or a rebuilt router takes over from the dead
// one without the gateway or its clients noticing anything beyond the
// recovery gap. The gateway re-installs itself as the new backend's login
// mapper.
func (g *Gateway) SetBackend(s njs.Service) {
	s.SetLoginMapper(g.MapLogin)
	g.backend.Store(&backendBox{svc: s})
}

// SetNJS swaps a single NJS in as the gateway's backend (SetBackend's
// original, NJS-typed form — kept for the combined deployment and the
// restart path of the crash testbed).
func (g *Gateway) SetNJS(n *njs.NJS) { g.SetBackend(n) }

// Telemetry returns the gateway's metrics registry (debug endpoints and
// virtual-clock deployments wire its clock through SetNow).
func (g *Gateway) Telemetry() *telemetry.Registry { return g.tel }

// AddMetricsSource appends an extra snapshot source to MsgMetrics scrapes —
// how out-of-band registries (a topology controller's, say) become visible
// through the same `unicore-status metrics` door as the serving tiers.
func (g *Gateway) AddMetricsSource(fn func() []telemetry.Snapshot) {
	if fn == nil {
		return
	}
	g.sourceMu.Lock()
	g.sources = append(g.sources, fn)
	g.sourceMu.Unlock()
}

// Metrics returns the gateway's snapshot followed by the backend tier's and
// any registered extra sources' — the full per-origin breakdown behind a
// MsgMetrics scrape.
func (g *Gateway) Metrics() []telemetry.Snapshot {
	out := append([]telemetry.Snapshot{g.tel.Snapshot()}, g.svc().Metrics()...)
	g.sourceMu.Lock()
	sources := append([]func() []telemetry.Snapshot(nil), g.sources...)
	g.sourceMu.Unlock()
	for _, fn := range sources {
		out = append(out, fn()...)
	}
	return out
}

// Usite returns the site this gateway fronts.
func (g *Gateway) Usite() core.Usite { return g.usite }

// DN returns the gateway's server identity.
func (g *Gateway) DN() core.DN { return g.cred.DN() }

// MapLogin resolves a user DN to the local login at a Vsite — the security
// servlet's defining function. It is installed into the NJS so that the
// mapping stays at the security tier.
func (g *Gateway) MapLogin(dn core.DN, vsite core.Vsite) (uudb.Login, error) {
	return g.users.Map(dn, vsite)
}

// InstallApplet registers a signed applet after verifying its signature
// chains to the CA with the software role — a site never serves tampered
// code.
func (g *Gateway) InstallApplet(a Applet) error {
	if _, err := g.ca.VerifySignature(a.Payload, a.Signature, pki.RoleSoftware); err != nil {
		return fmt.Errorf("%w: %v", ErrBadApplet, err)
	}
	g.appletMu.Lock()
	defer g.appletMu.Unlock()
	g.applets[a.Name] = a
	return nil
}

// AppletNames lists the installed applets, sorted.
func (g *Gateway) AppletNames() []string {
	g.appletMu.RLock()
	names := make([]string, 0, len(g.applets))
	for n := range g.applets {
		names = append(names, n)
	}
	g.appletMu.RUnlock()
	sort.Strings(names)
	return names
}

// Stats returns a snapshot of the traffic counters. Only message types that
// have been seen appear in the maps.
func (g *Gateway) Stats() Stats {
	s := Stats{
		Requests:  g.requests.Load(),
		Rejected:  g.rejected.Load(),
		ByType:    make(map[protocol.MsgType]int64, len(g.byType)),
		ByFailure: make(map[string]int64),
	}
	for t, c := range g.byType {
		if v := c.Load(); v != 0 {
			s.ByType[t] = v
		}
	}
	g.extraMu.Lock()
	for t, v := range g.extraTypes {
		s.ByType[t] += v
	}
	for k, v := range g.byFailure {
		s.ByFailure[k] = v
	}
	g.extraMu.Unlock()
	return s
}

func (g *Gateway) count(t protocol.MsgType) {
	g.requests.Add(1)
	g.tel.Counter("gateway_requests_total", "type", string(t)).Inc()
	if c, ok := g.byType[t]; ok {
		c.Add(1)
		return
	}
	// A type outside the protocol's defined set (possible on forged or
	// future-version envelopes) falls back to the guarded overflow map.
	g.extraMu.Lock()
	g.extraTypes[t]++
	g.extraMu.Unlock()
}

func (g *Gateway) countFailure(cause string) {
	g.rejected.Add(1)
	g.tel.Counter("gateway_rejected_total", "cause", cause).Inc()
	g.extraMu.Lock()
	g.byFailure[cause]++
	g.extraMu.Unlock()
}

// ServeHTTP implements the site's https endpoint: POST /unicore carries
// envelopes; GET / serves the UNICORE Web page ("the https Web server which
// provides the UNICORE Web page", §4.2).
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == protocol.StreamEndpoint:
		g.serveStreamUpgrade(w, r)
	case r.Method == http.MethodPost && r.URL.Path == protocol.Endpoint:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequest+1))
		if err != nil {
			http.Error(w, "reading request", http.StatusBadRequest)
			return
		}
		if len(body) > maxRequest {
			http.Error(w, "request too large", http.StatusRequestEntityTooLarge)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(g.HandleContext(r.Context(), body)); err != nil {
			return
		}
	case r.Method == http.MethodGet && r.URL.Path == "/":
		g.serveIndex(w)
	default:
		http.NotFound(w, r)
	}
}

// serveIndex renders the site's Web page.
func (g *Gateway) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>UNICORE site %s</title></head><body>\n", g.usite)
	fmt.Fprintf(w, "<h1>UNICORE site %s</h1>\n<h2>Vsites</h2>\n<ul>\n", g.usite)
	for _, p := range g.svc().Pages() {
		fmt.Fprintf(w, "<li>%s &mdash; %s, %d PEs</li>\n", p.Target, p.Architecture, p.Processors.Max)
	}
	fmt.Fprintf(w, "</ul>\n<h2>Signed applets</h2>\n<ul>\n")
	for _, name := range g.AppletNames() {
		fmt.Fprintf(w, "<li>%s</li>\n", name)
	}
	fmt.Fprintf(w, "</ul>\n</body></html>\n")
}

// Handle authenticates one request envelope and dispatches it, returning the
// sealed reply envelope. It is the shared core of the combined server, the
// TLS server, and the firewall-split inner half.
func (g *Gateway) Handle(data []byte) []byte {
	return g.HandleContext(context.Background(), data)
}

// HandleContext is Handle under a caller context: a MsgSubscribe long-poll
// waits on it, so cancelling the inbound request (the client went away)
// releases the held goroutine immediately. The reply envelope is sealed at
// the version the request arrived with, which is what keeps v1 peers working
// against a v2 server.
func (g *Gateway) HandleContext(ctx context.Context, data []byte) []byte {
	verifyStart := time.Now()
	o, err := protocol.OpenTraced(g.ca, data)
	g.tel.Counter("pki_verify_total").Inc()
	g.tel.Histogram("pki_verify_seconds", telemetry.ScaleSeconds).ObserveSince(verifyStart)
	ver, t, raw, dn, role := o.Version, o.Type, o.Payload, o.From, o.Role
	if err != nil {
		g.countFailure("authentication")
		// Mirror the failing peer's version when it parsed in range, so a
		// strict v1 verifier can still read the error reply.
		if ver == 0 {
			ver = protocol.Version
		}
		return g.sealError(ver, o.Trace, "authentication", err)
	}
	if ver > g.maxVer {
		// A version-capped gateway rejects newer envelopes the same way an
		// old build does (there, OpenTraced itself fails the version range
		// check): the client reads the rejection and downgrades.
		g.countFailure("authentication")
		return g.sealError(g.maxVer, o.Trace, "authentication",
			fmt.Errorf("%w: %d", protocol.ErrBadVersion, ver))
	}
	if o.Trace != "" {
		// Adopt the caller's trace: every span below this point — including
		// the backend tier's — lands in the same cross-tier trace.
		ctx = telemetry.WithTrace(ctx, o.Trace)
	}
	g.count(t)
	switch role {
	case pki.RoleUser, pki.RoleServer:
		// Users and peer UNICORE servers may talk to a gateway.
	default:
		g.countFailure("role")
		return g.sealError(ver, o.Trace, "role", fmt.Errorf("%w: %q", ErrNotPermitted, role))
	}
	if role == pki.RoleUser && g.siteAuth != nil {
		if err := g.siteAuth(dn); err != nil {
			g.countFailure("site-auth")
			return g.sealError(ver, o.Trace, "site-auth", fmt.Errorf("%w: %v", ErrSiteAuth, err))
		}
	}
	asServer := role == pki.RoleServer

	sp := g.tel.StartSpan(ctx, "gateway.dispatch").Note(string(t))
	reply, rt, err := g.dispatch(ctx, ver, t, raw, dn, asServer)
	sp.End()
	if err != nil {
		g.countFailure(string(t))
		return g.sealError(ver, o.Trace, string(t), err)
	}
	out, err := protocol.SealTracedAt(g.cred, ver, o.Trace, rt, reply)
	if err != nil {
		return g.sealError(ver, o.Trace, "internal", err)
	}
	return out
}

// dispatch routes one authenticated request to the NJS. ver is the protocol
// version the envelope arrived with: v2-only requests (the staging MsgPut*
// family) inside a v1 envelope are refused with a version rejection.
func (g *Gateway) dispatch(ctx context.Context, ver int, t protocol.MsgType, raw json.RawMessage, dn core.DN, asServer bool) (any, protocol.MsgType, error) {
	if protocol.V2Only(t) && ver < 2 {
		return nil, "", fmt.Errorf("%w: %s requires protocol v2", protocol.ErrBadVersion, t)
	}
	switch t {
	case protocol.MsgConsign:
		return g.handleConsign(ctx, raw, dn, asServer)
	case protocol.MsgPoll:
		var req protocol.PollRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad poll request: %w", err)
		}
		reply, err := g.pollTyped(ctx, req, dn, asServer)
		return reply, protocol.MsgPollReply, err
	case protocol.MsgOutcome:
		var req protocol.OutcomeRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad outcome request: %w", err)
		}
		if f, peer, relay, err := g.fedRoute(dn, asServer, req.Job); err != nil {
			return nil, "", err
		} else if relay {
			var reply protocol.OutcomeReply
			err := f.Relay(ctx, peer, protocol.MsgOutcome, req, &reply)
			return reply, protocol.MsgOutcomeReply, err
		}
		o, found, err := g.svc().Outcome(dn, asServer, req.Job)
		if err != nil {
			return nil, "", err
		}
		reply := protocol.OutcomeReply{Found: found}
		if found {
			enc, err := ajo.MarshalOutcome(o)
			if err != nil {
				return nil, "", err
			}
			reply.Outcome = enc
		}
		return reply, protocol.MsgOutcomeReply, nil
	case protocol.MsgList:
		jobs, err := g.svc().List(dn)
		return protocol.ListReply{Jobs: jobs}, protocol.MsgListReply, err
	case protocol.MsgControl:
		var req protocol.ControlRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad control request: %w", err)
		}
		if f, peer, relay, err := g.fedRoute(dn, asServer, req.Job); err != nil {
			return nil, "", err
		} else if relay {
			var reply protocol.ControlReply
			err := f.Relay(ctx, peer, protocol.MsgControl, req, &reply)
			return reply, protocol.MsgControlReply, err
		}
		err := g.svc().Control(dn, asServer, req.Job, req.Op)
		reply := protocol.ControlReply{OK: err == nil}
		if err != nil {
			reply.Reason = err.Error()
		}
		return reply, protocol.MsgControlReply, nil
	case protocol.MsgResources:
		var req protocol.ResourcesRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad resources request: %w", err)
		}
		return g.handleResources(req)
	case protocol.MsgTransfer:
		var req protocol.TransferRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad transfer request: %w", err)
		}
		reply, err := g.transferTyped(ctx, req, dn, asServer)
		return reply, protocol.MsgTransferReply, err
	case protocol.MsgApplet:
		var req protocol.AppletRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad applet request: %w", err)
		}
		g.appletMu.RLock()
		a, ok := g.applets[req.Name]
		g.appletMu.RUnlock()
		if !ok {
			return nil, "", fmt.Errorf("gateway: no applet %q at %s", req.Name, g.usite)
		}
		return protocol.AppletReply{
			Name: a.Name, Version: a.Version, Payload: a.Payload, Signature: a.Signature,
		}, protocol.MsgAppletReply, nil
	case protocol.MsgFetch:
		var req protocol.FetchRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad fetch request: %w", err)
		}
		reply, err := g.fetchTyped(ctx, req, dn, asServer)
		return reply, protocol.MsgFetchReply, err
	case protocol.MsgSubscribe:
		var req protocol.SubscribeRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad subscribe request: %w", err)
		}
		reply, err := g.subscribeTyped(ctx, req, dn, asServer)
		return reply, protocol.MsgEventsReply, err
	case protocol.MsgPutOpen:
		var req protocol.PutOpenRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad put-open request: %w", err)
		}
		if reply, rt, handled, err := g.fedStageOpen(ctx, dn, asServer, req); handled || err != nil {
			return reply, rt, err
		}
		reply, err := g.svc().StageOpen(stageOwner(dn, asServer, req.Owner), asServer, req)
		return reply, protocol.MsgPutOpenReply, err
	case protocol.MsgPutChunk:
		var req protocol.PutChunkRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad put-chunk request: %w", err)
		}
		reply, err := g.putChunkTyped(ctx, req, dn, asServer)
		return reply, protocol.MsgPutChunkReply, err
	case protocol.MsgPutCommit:
		var req protocol.PutCommitRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad put-commit request: %w", err)
		}
		fwd := req
		fwd.Owner = dn
		var relayReply protocol.PutCommitReply
		if relay, err := g.fedStageRelay(ctx, dn, asServer, req.Handle, protocol.MsgPutCommit, fwd, &relayReply); relay {
			return relayReply, protocol.MsgPutCommitReply, err
		}
		reply, err := g.svc().StageCommit(stageOwner(dn, asServer, req.Owner), asServer, req)
		return reply, protocol.MsgPutCommitReply, err
	case protocol.MsgLoad:
		// One backend load for the whole reply: a concurrent SetBackend swap
		// must not yield a report mixing two backends' figures.
		svc := g.svc()
		return protocol.LoadReply{Overall: svc.Load(), Vsites: g.vsiteLoadsOf(svc)}, protocol.MsgLoadReply, nil
	case protocol.MsgFedAdvertise:
		return g.handleFedAdvertise(raw, asServer)
	case protocol.MsgMetrics:
		var req protocol.MetricsRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, "", fmt.Errorf("gateway: bad metrics request: %w", err)
		}
		snaps := g.Metrics()
		if !req.PerReplica {
			snaps = []telemetry.Snapshot{telemetry.Merge("usite/"+string(g.usite), snaps...)}
		}
		if !req.Spans {
			for i := range snaps {
				snaps[i].Spans = nil
			}
		}
		return protocol.MetricsReply{Snapshots: snaps}, protocol.MsgMetricsReply, nil
	default:
		return nil, "", fmt.Errorf("gateway: unsupported request type %q", t)
	}
}

// handleConsign admits an AJO from its JSON envelope form.
func (g *Gateway) handleConsign(ctx context.Context, raw json.RawMessage, dn core.DN, asServer bool) (any, protocol.MsgType, error) {
	var req protocol.ConsignRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, "", fmt.Errorf("gateway: bad consign request: %w", err)
	}
	reply, err := g.consignTyped(ctx, req, dn, asServer)
	return reply, protocol.MsgConsignReply, err
}

// consignTyped admits an AJO — the shared core of the envelope and v3 frame
// paths. A user-signed consignment is owned by the signer; a server-signed
// consignment (a peer NJS distributing a job group, §5.5) is owned by the
// user recorded in the AJO.
func (g *Gateway) consignTyped(ctx context.Context, req protocol.ConsignRequest, dn core.DN, asServer bool) (protocol.ConsignReply, error) {
	action, err := ajo.Unmarshal(req.AJO)
	if err != nil {
		return protocol.ConsignReply{}, fmt.Errorf("gateway: decoding AJO: %w", err)
	}
	job, ok := action.(*ajo.AbstractJob)
	if !ok {
		return protocol.ConsignReply{}, fmt.Errorf("gateway: consigned action is %s, want a job", action.Kind())
	}
	owner := dn
	if asServer {
		if job.UserDN == "" {
			return protocol.ConsignReply{}, errors.New("gateway: server consignment without a user DN")
		}
		owner = job.UserDN
	} else if job.UserDN != "" && job.UserDN != dn {
		return protocol.ConsignReply{}, fmt.Errorf("gateway: AJO user %s does not match signer %s", job.UserDN, dn)
	}
	if f := g.fed.Load(); f != nil {
		reply, _, handled, err := g.fedConsign(ctx, f, req.ConsignID, job, owner, asServer)
		if err != nil {
			return protocol.ConsignReply{}, err
		}
		if handled {
			cr, _ := reply.(protocol.ConsignReply)
			return cr, nil
		}
	}
	id, err := g.svc().Consign(ctx, owner, req.ConsignID, job)
	reply := protocol.ConsignReply{Accepted: err == nil, Job: id}
	if err != nil {
		reply.Reason = err.Error()
		reply.Accepted = false
	}
	return reply, nil
}

// pollTyped serves one job-status poll, relaying federated placements.
func (g *Gateway) pollTyped(ctx context.Context, req protocol.PollRequest, dn core.DN, asServer bool) (protocol.PollReply, error) {
	if f, peer, relay, err := g.fedRoute(dn, asServer, req.Job); err != nil {
		return protocol.PollReply{}, err
	} else if relay {
		var reply protocol.PollReply
		err := f.Relay(ctx, peer, protocol.MsgPoll, req, &reply)
		return reply, err
	}
	return g.svc().Poll(dn, asServer, req.Job)
}

// transferTyped serves one NJS-to-NJS Uspace read.
func (g *Gateway) transferTyped(ctx context.Context, req protocol.TransferRequest, dn core.DN, asServer bool) (protocol.TransferReply, error) {
	if !asServer {
		return protocol.TransferReply{}, fmt.Errorf("%w: Uspace transfers are NJS-to-NJS traffic", ErrNotPermitted)
	}
	if f, peer, relay, err := g.fedRoute(dn, asServer, req.Job); err != nil {
		return protocol.TransferReply{}, err
	} else if relay {
		var reply protocol.TransferReply
		err := f.Relay(ctx, peer, protocol.MsgTransfer, req, &reply)
		return reply, err
	}
	return g.svc().FetchFile(req.Job, req.File, req.Offset, req.Limit)
}

// fetchTyped serves one owner-authorised file fetch.
func (g *Gateway) fetchTyped(ctx context.Context, req protocol.FetchRequest, dn core.DN, asServer bool) (protocol.TransferReply, error) {
	if f, peer, relay, err := g.fedRoute(dn, asServer, req.Job); err != nil {
		return protocol.TransferReply{}, err
	} else if relay {
		var reply protocol.TransferReply
		err := f.Relay(ctx, peer, protocol.MsgFetch, req, &reply)
		return reply, err
	}
	return g.svc().FetchFileOwned(dn, asServer, req.Job, req.File, req.Offset, req.Limit)
}

// putChunkTyped serves one staged-upload chunk, relaying peer-pinned handles.
func (g *Gateway) putChunkTyped(ctx context.Context, req protocol.PutChunkRequest, dn core.DN, asServer bool) (protocol.PutChunkReply, error) {
	fwd := req
	fwd.Owner = dn
	var relayReply protocol.PutChunkReply
	//lint:allow versiongate the relay delegates to Client.Call, which gates and fails fast on v1 peers
	if relay, err := g.fedStageRelay(ctx, dn, asServer, req.Handle, protocol.MsgPutChunk, fwd, &relayReply); relay {
		return relayReply, err
	}
	return g.svc().StageChunk(stageOwner(dn, asServer, req.Owner), asServer, req)
}

// subscribeTyped serves one event-batch subscription round. Job-scoped
// streams of a remotely-placed job relay to the peer (its gateway holds the
// long-poll); a user's all-jobs stream (empty Job) stays local — it is
// scoped to this Usite's log.
func (g *Gateway) subscribeTyped(ctx context.Context, req protocol.SubscribeRequest, dn core.DN, asServer bool) (protocol.EventsReply, error) {
	if f, peer, relay, err := g.fedRoute(dn, asServer, req.Job); err != nil {
		return protocol.EventsReply{}, err
	} else if relay {
		var reply protocol.EventsReply
		//lint:allow versiongate the relay delegates to Client.Call, which gates and fails fast on v1 peers
		err := f.Relay(ctx, peer, protocol.MsgSubscribe, req, &reply)
		return reply, err
	}
	return g.longPollEvents(ctx, dn, asServer, req)
}

// handleResources serves the ASN.1 resource pages of §5.4.
func (g *Gateway) handleResources(req protocol.ResourcesRequest) (any, protocol.MsgType, error) {
	var pages [][]byte
	for _, p := range g.svc().Pages() {
		if req.Vsite != "" && p.Target.Vsite != req.Vsite {
			continue
		}
		der, err := p.MarshalASN1()
		if err != nil {
			return nil, "", fmt.Errorf("gateway: encoding resource page %s: %w", p.Target, err)
		}
		pages = append(pages, der)
	}
	if req.Vsite != "" && len(pages) == 0 {
		return nil, "", fmt.Errorf("gateway: no Vsite %q at %s", req.Vsite, g.usite)
	}
	return protocol.ResourcesReply{PagesDER: pages}, protocol.MsgResourcesReply, nil
}

// longPollEvents serves one MsgSubscribe: fetch buffered events past the
// cursor; when none are available and the request asked to wait, hold until
// the backend signals an append, the wall-clock wait expires, or the caller
// goes away — then reply with everything buffered by then (coalescing). The
// notify channel is taken before each fetch, so an append racing the fetch
// wakes the next round instead of being lost.
func (g *Gateway) longPollEvents(ctx context.Context, dn core.DN, asServer bool, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	occupancy := g.tel.Gauge("gateway_longpoll_active")
	occupancy.Inc()
	defer occupancy.Dec()
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait > g.maxWait {
		wait = g.maxWait
	}
	var deadline <-chan time.Time
	if wait > 0 {
		tm := time.NewTimer(wait)
		defer tm.Stop()
		deadline = tm.C
	}
	for {
		svc := g.svc()
		ch, release := svc.EventsNotify(req)
		reply, err := svc.Events(dn, asServer, req)
		if err != nil || len(reply.Events) > 0 || wait <= 0 {
			release()
			return reply, err
		}
		select {
		case <-ch:
			release()
		case <-deadline:
			release()
			return reply, nil
		case <-ctx.Done():
			release()
			return reply, nil
		}
	}
}

// sealError wraps a failure as a signed error reply at the request's
// protocol version, echoing the request's trace ID so a failed hop still
// shows up in its trace. If even sealing fails the gateway returns an
// unsigned error document as a last resort.
func (g *Gateway) sealError(ver int, trace, code string, cause error) []byte {
	out, err := protocol.SealTracedAt(g.cred, ver, trace, protocol.MsgError, protocol.ErrorReply{
		Code:    code,
		Message: cause.Error(),
	})
	if err != nil {
		fallback, _ := json.Marshal(map[string]string{"fatal": err.Error()})
		return fallback
	}
	return out
}
