package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"

	"unicore/internal/ajo"
	"unicore/internal/protocol"
)

// TestVersionNegotiationMatrix runs every gateway×client protocol-version
// pairing through a real consign/poll workload and asserts the negotiated
// version is min(gateway, client), the job succeeds regardless, and the
// persistent v3 stream is used exactly when both ends speak v3.
func TestVersionNegotiationMatrix(t *testing.T) {
	for gwVer := 1; gwVer <= protocol.Version; gwVer++ {
		for clVer := 1; clVer <= protocol.Version; clVer++ {
			t.Run(fmt.Sprintf("gw=v%d,client=v%d", gwVer, clVer), func(t *testing.T) {
				s := newSite(t, func(cfg *Config) { cfg.MaxVersion = gwVer })
				c := s.client(s.alice)
				c.MaxVersion = clVer
				id := consign(t, c, scriptJob("nego", "echo hello\n"))
				s.clock.RunUntilIdle(100000)

				var poll protocol.PollReply
				if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &poll); err != nil {
					t.Fatalf("poll: %v", err)
				}
				if !poll.Found || poll.Summary.Status != ajo.StatusSuccessful {
					t.Fatalf("job = %+v, want successful", poll.Summary)
				}

				want := gwVer
				if clVer < want {
					want = clVer
				}
				if got := c.SiteVersion("FZJ"); got != want {
					t.Fatalf("negotiated version = %d, want %d", got, want)
				}
				// The persistent stream exists exactly at v3×v3: every other
				// pairing must leave the stream telemetry untouched.
				hellos := s.gw.Telemetry().Snapshot().Total("gateway_stream_hellos_total")
				if want == 3 && hellos == 0 {
					t.Fatal("v3 pairing served no stream hello; traffic stayed on envelopes")
				}
				if want < 3 && hellos != 0 {
					t.Fatalf("v%d pairing accepted %v stream hellos", want, hellos)
				}
			})
		}
	}
}

// recordingTransport captures every envelope POST body on its way through.
type recordingTransport struct {
	base protocol.Transport
	mu   sync.Mutex
	sent [][]byte
}

func (r *recordingTransport) Post(ctx context.Context, baseURL string, body []byte) ([]byte, error) {
	r.mu.Lock()
	r.sent = append(r.sent, append([]byte(nil), body...))
	r.mu.Unlock()
	return r.base.Post(ctx, baseURL, body)
}

func (r *recordingTransport) OpenStream(ctx context.Context, baseURL string) (net.Conn, error) {
	return r.base.OpenStream(ctx, baseURL)
}

// TestV1WireShapeUnchanged pins the v1 wire format across the v3 redesign: a
// client negotiated down to v1 sends one signed envelope per request whose
// JSON carries exactly the pre-v2 key set — no trace header, no stream
// frames, nothing a 1999-vintage peer would choke on.
func TestV1WireShapeUnchanged(t *testing.T) {
	s := newSite(t, func(cfg *Config) { cfg.MaxVersion = 1 })
	rt := &recordingTransport{base: s.net}
	c := protocol.NewClient(rt, s.alice, s.ca, s.reg)
	id := consign(t, c, scriptJob("v1", "echo v1\n"))
	s.clock.RunUntilIdle(100000)
	var poll protocol.PollReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &poll); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if got := c.SiteVersion("FZJ"); got != 1 {
		t.Fatalf("negotiated version = %d, want 1", got)
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.sent) == 0 {
		t.Fatal("no envelopes captured")
	}
	sawV1 := false
	for _, body := range rt.sent {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(body, &raw); err != nil {
			t.Fatalf("request is not a JSON envelope: %v", err)
		}
		var ver int
		if err := json.Unmarshal(raw["version"], &ver); err != nil {
			t.Fatalf("envelope version: %v", err)
		}
		if ver != 1 {
			continue // pre-negotiation probes at v2/v3 are expected and rejected
		}
		sawV1 = true
		for key := range raw {
			switch key {
			case "version", "type", "payload", "signature":
			default:
				t.Fatalf("v1 envelope carries post-v1 key %q: %s", key, body)
			}
		}
	}
	if !sawV1 {
		t.Fatal("no v1 envelope was ever sent")
	}
}

// TestStreamKillReconnectIdempotent severs the persistent v3 connection in
// the middle of a pipelined burst of calls and asserts the client absorbs it:
// in-flight calls are replayed on a fresh stream (or fall back to envelopes),
// a re-consign of the same ConsignID after the kill is answered with the same
// job — no duplicate admission — and the workload completes.
func TestStreamKillReconnectIdempotent(t *testing.T) {
	s := newSite(t)
	flaky := protocol.NewFlaky(s.net, 0, 1)
	flaky.Streams = true
	c := protocol.NewClient(flaky, s.alice, s.ca, s.reg)

	job := scriptJob("kill", "echo survive\n")
	id := consign(t, c, job)

	// Pipelined polls racing the kill: half are in flight when the stream
	// dies; every one must still return (replayed on a reconnect or via the
	// envelope fallback).
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var poll protocol.PollReply
			if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &poll); err != nil {
				errs <- err
			}
		}()
	}
	if n := flaky.KillStreams(); n == 0 {
		t.Fatal("no live stream to kill: the workload never left the envelope path")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("pipelined poll across the kill: %v", err)
	}

	// Idempotent replay: the same ConsignID after the kill must not admit a
	// second job.
	raw, err := ajo.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	var again protocol.ConsignReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgConsign, protocol.ConsignRequest{ConsignID: string(job.ID()), AJO: raw}, &again); err != nil {
		t.Fatalf("re-consign: %v", err)
	}
	if !again.Accepted || again.Job != id {
		t.Fatalf("re-consign after kill = %+v, want the original job %s", again, id)
	}

	s.clock.RunUntilIdle(100000)
	var poll protocol.PollReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &poll); err != nil {
		t.Fatalf("final poll: %v", err)
	}
	if !poll.Found || poll.Summary.Status != ajo.StatusSuccessful {
		t.Fatalf("job = %+v, want successful", poll.Summary)
	}

	// A second kill severs the reconnected stream too — the tracking set
	// must have registered the replacement connection.
	if n := flaky.KillStreams(); n == 0 {
		t.Fatal("no reconnected stream registered after the first kill")
	}
	var last protocol.PollReply
	if err := c.Call(context.Background(), "FZJ", protocol.MsgPoll, protocol.PollRequest{Job: id}, &last); err != nil {
		t.Fatalf("poll after second kill: %v", err)
	}
}
