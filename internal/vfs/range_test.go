package vfs

import (
	"bytes"
	"errors"
	"hash/crc64"
	"math"
	"testing"
)

func TestReadFileRange(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 500)
	for i := range content {
		content[i] = byte(i)
	}
	if err := fs.WriteFile("/d/f", content); err != nil {
		t.Fatal(err)
	}
	wantCRC := crc64.Checksum(content, crcTable)

	cases := []struct {
		name          string
		offset, limit int64
		want          []byte
	}{
		{"whole file via zero limit", 0, 0, content},
		{"interior window", 100, 100, content[100:200]},
		{"window truncated at EOF", 450, 100, content[450:]},
		{"offset at EOF", 500, 10, nil},
		{"offset past EOF", 600, 10, nil},
		{"huge limit must not overflow", 1, math.MaxInt64, content[1:]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, size, crc, err := fs.ReadFileRange("/d/f", tc.offset, tc.limit)
			if err != nil {
				t.Fatalf("ReadFileRange: %v", err)
			}
			if !bytes.Equal(data, tc.want) {
				t.Fatalf("data = %d bytes, want %d", len(data), len(tc.want))
			}
			if size != 500 || crc != wantCRC {
				t.Fatalf("size=%d crc-ok=%v", size, crc == wantCRC)
			}
		})
	}

	t.Run("negative offset", func(t *testing.T) {
		_, _, _, err := fs.ReadFileRange("/d/f", -1, 10)
		if !errors.Is(err, ErrBadRange) {
			t.Fatalf("err = %v, want ErrBadRange", err)
		}
	})
	t.Run("directory", func(t *testing.T) {
		if _, _, _, err := fs.ReadFileRange("/d", 0, 10); !errors.Is(err, ErrIsDir) {
			t.Fatalf("err = %v, want ErrIsDir", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, _, _, err := fs.ReadFileRange("/d/none", 0, 10); !errors.Is(err, ErrNotExist) {
			t.Fatalf("err = %v, want ErrNotExist", err)
		}
	})
}

// TestReadFileRangeCRCInvalidation checks the cached whole-file CRC tracks
// mutations: appends invalidate it and rewrites replace it.
func TestReadFileRangeCRCInvalidation(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	crcOf := func(b []byte) uint64 { return crc64.Checksum(b, crcTable) }
	read := func() uint64 {
		t.Helper()
		_, _, crc, err := fs.ReadFileRange("/d/f", 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		return crc
	}

	if err := fs.WriteFile("/d/f", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != crcOf([]byte("one")) {
		t.Fatal("initial CRC wrong")
	}
	if err := fs.AppendFile("/d/f", []byte("+two")); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != crcOf([]byte("one+two")) {
		t.Fatal("CRC stale after append")
	}
	if err := fs.WriteFile("/d/f", []byte("three")); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != crcOf([]byte("three")) {
		t.Fatal("CRC stale after rewrite")
	}
	// Stat must agree with the cache.
	fi, err := fs.Stat("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.CRC != crcOf([]byte("three")) {
		t.Fatal("Stat CRC disagrees with ReadFileRange CRC")
	}
}
