package vfs

import (
	"hash/crc64"
	"reflect"
	"testing"
)

// chunkedRead walks a file the way the NJS transfer path does: fixed-size
// ReadFileRange calls until offset reaches the reported size, then verifies
// the assembled bytes against the reported whole-file CRC.
func chunkedRead(t *testing.T, fs *FS, p string, chunk int64) []byte {
	t.Helper()
	var buf []byte
	var offset int64
	for {
		data, size, crc, err := fs.ReadFileRange(p, offset, chunk)
		if err != nil {
			t.Fatalf("ReadFileRange(%s, %d): %v", p, offset, err)
		}
		buf = append(buf, data...)
		offset += int64(len(data))
		if offset >= size || len(data) == 0 {
			if got := crc64.Checksum(buf, crcTable); got != crc {
				t.Fatalf("chunked read of %s: assembled CRC %x != reported %x", p, got, crc)
			}
			return buf
		}
	}
}

// TestChunkedReadCRCAfterWrite is the regression guard for the PR-1 CRC
// cache: a write landing after a chunked ReadFileRange has populated the
// cache must yield a freshly computed whole-file CRC on the next ranged
// read, for every mutation path that replaces or extends contents.
func TestChunkedReadCRCAfterWrite(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/u/job"); err != nil {
		t.Fatal(err)
	}
	first := make([]byte, 1000)
	for i := range first {
		first[i] = byte(i)
	}
	if err := fs.WriteFile("/u/job/out.dat", first); err != nil {
		t.Fatal(err)
	}
	// Populate the CRC cache with a multi-chunk read.
	if got := chunkedRead(t, fs, "/u/job/out.dat", 256); !reflect.DeepEqual(got, first) {
		t.Fatal("first chunked read returned wrong bytes")
	}

	// WriteFile replaces the node: the next ranged read must recompute.
	second := []byte("rewritten contents, shorter than before")
	if err := fs.WriteFile("/u/job/out.dat", second); err != nil {
		t.Fatal(err)
	}
	if got := chunkedRead(t, fs, "/u/job/out.dat", 16); !reflect.DeepEqual(got, second) {
		t.Fatal("chunked read after rewrite returned stale bytes")
	}

	// AppendFile mutates in place: the cache must be invalidated.
	if err := fs.AppendFile("/u/job/out.dat", []byte(" +tail")); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), second...), []byte(" +tail")...)
	if got := chunkedRead(t, fs, "/u/job/out.dat", 16); !reflect.DeepEqual(got, want) {
		t.Fatal("chunked read after append returned stale bytes")
	}

	// Copy overwrites the destination through WriteFile: same guarantee.
	if err := fs.WriteFile("/u/job/src.dat", []byte("copied body")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Copy("/u/job/out.dat", "/u/job/src.dat"); err != nil {
		t.Fatal(err)
	}
	if got := chunkedRead(t, fs, "/u/job/out.dat", 4); string(got) != "copied body" {
		t.Fatalf("chunked read after copy = %q", got)
	}
}

func TestObserverSeesMutationsInOrder(t *testing.T) {
	fs := New(nil)
	var got []Mutation
	fs.Observe(func(m Mutation) { got = append(got, m) })

	if err := fs.MkdirAll("/u/job"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/u/job/a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/u/job/a", []byte("+two")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/u/job/a", "/u/job/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/u/job/b"); err != nil {
		t.Fatal(err)
	}

	want := []Mutation{
		{Op: OpMkdir, Path: "/u/job"},
		{Op: OpWrite, Path: "/u/job/a", Data: []byte("one")},
		{Op: OpWrite, Path: "/u/job/a", Data: []byte("one+two")}, // append reports full contents
		{Op: OpRename, Path: "/u/job/a", To: "/u/job/b"},
		{Op: OpRemove, Path: "/u/job/b"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mutations:\n got %+v\nwant %+v", got, want)
	}
}

func TestObserverNotCalledOnFailure(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	fs.SetQuota(4)
	calls := 0
	fs.Observe(func(Mutation) { calls++ })
	if err := fs.WriteFile("/d/big", []byte("exceeds the quota")); err == nil {
		t.Fatal("write over quota succeeded")
	}
	if err := fs.WriteFile("/missing/parent", []byte("x")); err == nil {
		t.Fatal("write without parent succeeded")
	}
	if calls != 0 {
		t.Fatalf("observer called %d times for failed mutations", calls)
	}
}

func TestObserverDataIsPrivateCopy(t *testing.T) {
	fs := New(nil)
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	var seen []byte
	fs.Observe(func(m Mutation) {
		if m.Op == OpWrite {
			seen = m.Data
		}
	})
	input := []byte("original")
	if err := fs.WriteFile("/d/f", input); err != nil {
		t.Fatal(err)
	}
	input[0] = 'X' // caller reuses its buffer
	if err := fs.AppendFile("/d/f", []byte("...")); err != nil {
		t.Fatal(err)
	}
	if string(seen) != "original..." {
		t.Fatalf("observer saw %q", seen)
	}
	// Mutating what the observer retained must not corrupt the file.
	seen[0] = 'Z'
	data, err := fs.ReadFile("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "original..." {
		t.Fatalf("file corrupted through observer slice: %q", data)
	}
}
