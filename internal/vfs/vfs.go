// Package vfs implements the file-space substrate underneath UNICORE's data
// model. Each Vsite owns one FS (the systems of a Vsite "share the same data
// space", paper §4); the Xspace and the Uspace job directories are subtrees
// of it. An in-memory implementation keeps the whole reproduction hermetic
// and lets tests assert byte-exact data flow and quota behaviour.
//
// Paths are slash-separated and absolute ("/home/alice/in.dat"). The API is
// deliberately close to the os package so the shell interpreter and staging
// code read naturally.
package vfs

import (
	"errors"
	"fmt"
	"hash/crc64"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"unicore/internal/sim"
)

// Error values mirror the os package where sensible.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrQuota    = errors.New("vfs: quota exceeded")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrBadPath  = errors.New("vfs: malformed path")
	ErrBadRange = errors.New("vfs: bad read range")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name    string // base name
	Path    string // full cleaned path
	Size    int64
	IsDir   bool
	ModTime time.Time
	CRC     uint64 // crc64 of contents; 0 for directories
}

// MutationOp classifies a change reported to an FS observer.
type MutationOp uint8

const (
	// OpWrite materialised a file with the contents in Mutation.Data. Appends
	// are reported as writes carrying the full resulting contents, so an
	// observer replaying mutations elsewhere stays idempotent.
	OpWrite MutationOp = iota + 1
	// OpMkdir created a directory (and possibly missing parents).
	OpMkdir
	// OpRemove deleted the path (file or whole subtree).
	OpRemove
	// OpRename moved Path to To.
	OpRename
)

// Mutation describes one successful change to the file system. Data is a
// private copy the observer may retain.
type Mutation struct {
	Op   MutationOp
	Path string
	To   string // rename destination
	Data []byte
}

// FS is a thread-safe in-memory file system with an optional byte quota.
//
// An observer installed with Observe is invoked after every successful
// mutation, while the FS write lock is still held — that keeps the
// notification order identical to the apply order, which is what a
// write-ahead journal needs. Observers must be fast and must not call back
// into the FS.
type FS struct {
	mu       sync.RWMutex
	root     *node
	clock    sim.Clock
	quota    int64 // 0 = unlimited
	used     int64
	observer func(Mutation)
}

type node struct {
	name     string
	dir      bool
	data     []byte
	modTime  time.Time
	children map[string]*node
	// crc caches the whole-file checksum so chunked readers (ReadFileRange)
	// do not rescan the contents per chunk. Invalidated on append; a
	// WriteFile replaces the node, so its zero value starts invalid.
	crc   uint64
	crcOK bool
}

// New returns an empty FS whose timestamps come from clock. A nil clock uses
// the real clock.
func New(clock sim.Clock) *FS {
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &FS{
		root:  &node{name: "/", dir: true, children: map[string]*node{}},
		clock: clock,
	}
}

// Observe installs fn as the FS's mutation observer (nil uninstalls). See
// the FS doc comment for the calling contract.
func (fs *FS) Observe(fn func(Mutation)) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.observer = fn
}

// notifyLocked reports a successful mutation. Caller holds the write lock.
func (fs *FS) notifyLocked(m Mutation) {
	if fs.observer != nil {
		fs.observer(m)
	}
}

// notifyWriteLocked reports a write, copying the contents only when someone
// is listening. Caller holds the write lock.
func (fs *FS) notifyWriteLocked(p string, data []byte) {
	if fs.observer == nil {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.observer(Mutation{Op: OpWrite, Path: p, Data: cp})
}

// SetQuota sets the total byte quota (0 disables). Lowering the quota below
// current usage is allowed; subsequent growth fails until usage shrinks.
func (fs *FS) SetQuota(bytes int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.quota = bytes
}

// Used returns the bytes currently stored in file contents.
func (fs *FS) Used() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.used
}

// Quota returns the configured quota (0 = unlimited).
func (fs *FS) Quota() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.quota
}

// clean validates and normalises a path.
func clean(p string) (string, error) {
	if p == "" || !strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, p)
	}
	cp := path.Clean(p)
	return cp, nil
}

// split returns the cleaned components of a path ("/a/b" -> ["a","b"]).
func split(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// lookup walks to the node for p. Caller holds at least a read lock.
func (fs *FS) lookup(p string) (*node, error) {
	cp, err := clean(p)
	if err != nil {
		return nil, err
	}
	n := fs.root
	for _, part := range split(cp) {
		if !n.dir {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, p)
		}
		child, ok := n.children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
		}
		n = child
	}
	return n, nil
}

// parent walks to the parent directory of p and returns it plus the base
// name. Caller holds the write lock.
func (fs *FS) parent(p string) (*node, string, error) {
	cp, err := clean(p)
	if err != nil {
		return nil, "", err
	}
	parts := split(cp)
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%w: cannot address root", ErrBadPath)
	}
	n := fs.root
	for _, part := range parts[:len(parts)-1] {
		child, ok := n.children[part]
		if !ok {
			return nil, "", fmt.Errorf("%w: %q", ErrNotExist, path.Dir(cp))
		}
		if !child.dir {
			return nil, "", fmt.Errorf("%w: %q", ErrNotDir, part)
		}
		n = child
	}
	return n, parts[len(parts)-1], nil
}

// MkdirAll creates the directory p and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	cp, err := clean(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.root
	for _, part := range split(cp) {
		child, ok := n.children[part]
		if !ok {
			child = &node{name: part, dir: true, children: map[string]*node{}, modTime: fs.clock.Now()}
			n.children[part] = child
		} else if !child.dir {
			return fmt.Errorf("%w: %q", ErrNotDir, part)
		}
		n = child
	}
	fs.notifyLocked(Mutation{Op: OpMkdir, Path: cp})
	return nil
}

// Mkdir creates a single directory whose parent must exist.
func (fs *FS) Mkdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	par, base, err := fs.parent(p)
	if err != nil {
		return err
	}
	if _, ok := par.children[base]; ok {
		return fmt.Errorf("%w: %q", ErrExist, p)
	}
	par.children[base] = &node{name: base, dir: true, children: map[string]*node{}, modTime: fs.clock.Now()}
	cp, _ := clean(p)
	fs.notifyLocked(Mutation{Op: OpMkdir, Path: cp})
	return nil
}

// WriteFile creates or replaces the file at p with data. The parent
// directory must exist.
func (fs *FS) WriteFile(p string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	par, base, err := fs.parent(p)
	if err != nil {
		return err
	}
	existing, ok := par.children[base]
	var old int64
	if ok {
		if existing.dir {
			return fmt.Errorf("%w: %q", ErrIsDir, p)
		}
		old = int64(len(existing.data))
	}
	if err := fs.chargeLocked(int64(len(data)) - old); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	par.children[base] = &node{name: base, data: buf, modTime: fs.clock.Now()}
	cp, _ := clean(p)
	fs.notifyWriteLocked(cp, data)
	return nil
}

// AppendFile appends data to the file at p, creating it if absent.
func (fs *FS) AppendFile(p string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	par, base, err := fs.parent(p)
	if err != nil {
		return err
	}
	n, ok := par.children[base]
	if ok && n.dir {
		return fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	if err := fs.chargeLocked(int64(len(data))); err != nil {
		return err
	}
	if !ok {
		n = &node{name: base}
		par.children[base] = n
	}
	n.data = append(n.data, data...)
	n.modTime = fs.clock.Now()
	n.crcOK = false
	// Appends are observed as full-content writes (see MutationOp).
	cp, _ := clean(p)
	fs.notifyWriteLocked(cp, n.data)
	return nil
}

// ReadFile returns a copy of the contents of p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// ReadFileRange returns up to limit bytes of the file at p starting at
// offset, together with the file's total size and whole-file CRC. limit <= 0
// means "to end of file"; a range reaching past EOF is truncated; an offset
// at or past EOF returns no data with the metadata intact (how chunked
// readers detect the end of a transfer). Negative offsets are an error.
//
// The whole-file CRC is cached on the node, so serving an N-chunk file costs
// one checksum pass plus one copy per chunk — not a full-file copy and scan
// per chunk as ReadFile would.
func (fs *FS) ReadFileRange(p string, offset, limit int64) ([]byte, int64, uint64, error) {
	if offset < 0 {
		return nil, 0, 0, fmt.Errorf("%w: negative offset %d", ErrBadRange, offset)
	}
	fs.mu.RLock()
	n, err := fs.lookup(p)
	if err != nil {
		fs.mu.RUnlock()
		return nil, 0, 0, err
	}
	if n.dir {
		fs.mu.RUnlock()
		return nil, 0, 0, fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	if n.crcOK {
		data, size, crc := rangeOf(n, offset, limit)
		fs.mu.RUnlock()
		return data, size, crc, nil
	}
	fs.mu.RUnlock()

	// First ranged read of this file: take the write lock to fill the CRC
	// cache. The node must be re-resolved — it may have been replaced.
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err = fs.lookup(p)
	if err != nil {
		return nil, 0, 0, err
	}
	if n.dir {
		return nil, 0, 0, fmt.Errorf("%w: %q", ErrIsDir, p)
	}
	if !n.crcOK {
		n.crc = crc64.Checksum(n.data, crcTable)
		n.crcOK = true
	}
	data, size, crc := rangeOf(n, offset, limit)
	return data, size, crc, nil
}

// rangeOf copies the [offset, offset+limit) window of a file node. Caller
// holds at least a read lock and has validated offset >= 0.
func rangeOf(n *node, offset, limit int64) ([]byte, int64, uint64) {
	size := int64(len(n.data))
	if offset >= size {
		return nil, size, n.crc
	}
	end := size
	// Compare limit against the remaining bytes rather than computing
	// offset+limit, which overflows for wire-supplied limits near MaxInt64.
	if limit > 0 && limit < size-offset {
		end = offset + limit
	}
	out := make([]byte, end-offset)
	copy(out, n.data[offset:end])
	return out, size, n.crc
}

// Stat describes the file or directory at p.
func (fs *FS) Stat(p string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return FileInfo{}, err
	}
	cp, _ := clean(p)
	return fs.infoLocked(n, cp), nil
}

func (fs *FS) infoLocked(n *node, fullPath string) FileInfo {
	fi := FileInfo{Name: n.name, Path: fullPath, IsDir: n.dir, ModTime: n.modTime}
	if fullPath == "/" {
		fi.Name = "/"
	}
	if !n.dir {
		fi.Size = int64(len(n.data))
		if n.crcOK {
			fi.CRC = n.crc
		} else {
			fi.CRC = crc64.Checksum(n.data, crcTable)
		}
	}
	return fi
}

// Exists reports whether p names a file or directory.
func (fs *FS) Exists(p string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, err := fs.lookup(p)
	return err == nil
}

// List returns the entries of directory p sorted by name.
func (fs *FS) List(p string) ([]FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, p)
	}
	cp, _ := clean(p)
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FileInfo, 0, len(names))
	for _, name := range names {
		out = append(out, fs.infoLocked(n.children[name], path.Join(cp, name)))
	}
	return out, nil
}

// Walk visits every file (not directories) under root in sorted path order.
func (fs *FS) Walk(root string, visit func(FileInfo) error) error {
	fs.mu.RLock()
	n, err := fs.lookup(root)
	if err != nil {
		fs.mu.RUnlock()
		return err
	}
	cp, _ := clean(root)
	var infos []FileInfo
	var rec func(n *node, p string)
	rec = func(n *node, p string) {
		if !n.dir {
			infos = append(infos, fs.infoLocked(n, p))
			return
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rec(n.children[name], path.Join(p, name))
		}
	}
	rec(n, cp)
	fs.mu.RUnlock()
	for _, fi := range infos {
		if err := visit(fi); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a file or an empty directory.
func (fs *FS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	par, base, err := fs.parent(p)
	if err != nil {
		return err
	}
	n, ok := par.children[base]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, p)
	}
	fs.used -= subtreeSize(n)
	delete(par.children, base)
	cp, _ := clean(p)
	fs.notifyLocked(Mutation{Op: OpRemove, Path: cp})
	return nil
}

// RemoveAll deletes p and everything under it. Removing a missing path is a
// no-op, as with os.RemoveAll.
func (fs *FS) RemoveAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	par, base, err := fs.parent(p)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	n, ok := par.children[base]
	if !ok {
		return nil
	}
	fs.used -= subtreeSize(n)
	delete(par.children, base)
	cp, _ := clean(p)
	fs.notifyLocked(Mutation{Op: OpRemove, Path: cp})
	return nil
}

// Rename moves a file or directory. The destination parent must exist and
// the destination name must be free.
func (fs *FS) Rename(oldp, newp string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	opar, obase, err := fs.parent(oldp)
	if err != nil {
		return err
	}
	n, ok := opar.children[obase]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldp)
	}
	npar, nbase, err := fs.parent(newp)
	if err != nil {
		return err
	}
	if _, exists := npar.children[nbase]; exists {
		return fmt.Errorf("%w: %q", ErrExist, newp)
	}
	delete(opar.children, obase)
	n.name = nbase
	n.modTime = fs.clock.Now()
	npar.children[nbase] = n
	ocp, _ := clean(oldp)
	ncp, _ := clean(newp)
	fs.notifyLocked(Mutation{Op: OpRename, Path: ocp, To: ncp})
	return nil
}

// Copy duplicates the file at src to dst within this FS.
func (fs *FS) Copy(dst, src string) error {
	data, err := fs.ReadFile(src)
	if err != nil {
		return err
	}
	return fs.WriteFile(dst, data)
}

// CopyTree recursively copies the directory (or file) at src to dst.
func (fs *FS) CopyTree(dst, src string) error {
	info, err := fs.Stat(src)
	if err != nil {
		return err
	}
	if !info.IsDir {
		return fs.Copy(dst, src)
	}
	if err := fs.MkdirAll(dst); err != nil {
		return err
	}
	entries, err := fs.List(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := fs.CopyTree(path.Join(dst, e.Name), e.Path); err != nil {
			return err
		}
	}
	return nil
}

// CopyBetween copies a single file across file systems (e.g. a transfer
// between the Uspaces of two Vsites).
func CopyBetween(dst *FS, dstPath string, src *FS, srcPath string) error {
	data, err := src.ReadFile(srcPath)
	if err != nil {
		return err
	}
	return dst.WriteFile(dstPath, data)
}

// TreeSize returns the total content bytes under p.
func (fs *FS) TreeSize(p string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return 0, err
	}
	return subtreeSize(n), nil
}

func subtreeSize(n *node) int64 {
	if !n.dir {
		return int64(len(n.data))
	}
	var total int64
	for _, c := range n.children {
		total += subtreeSize(c)
	}
	return total
}

// chargeLocked applies a usage delta, enforcing the quota for growth.
func (fs *FS) chargeLocked(delta int64) error {
	if delta > 0 && fs.quota > 0 && fs.used+delta > fs.quota {
		return fmt.Errorf("%w: need %d bytes, %d of %d used", ErrQuota, delta, fs.used, fs.quota)
	}
	fs.used += delta
	return nil
}
