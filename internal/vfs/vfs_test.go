package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"unicore/internal/sim"
)

func newFS() *FS { return New(sim.NewVirtualClock()) }

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS()
	if err := fs.MkdirAll("/home/alice"); err != nil {
		t.Fatal(err)
	}
	want := []byte("program data\n")
	if err := fs.WriteFile("/home/alice/in.dat", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/home/alice/in.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

func TestReadFileReturnsCopy(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/d")
	_ = fs.WriteFile("/d/f", []byte("abc"))
	got, _ := fs.ReadFile("/d/f")
	got[0] = 'X'
	again, _ := fs.ReadFile("/d/f")
	if string(again) != "abc" {
		t.Fatalf("mutation of returned slice leaked into FS: %q", again)
	}
}

func TestWriteFileCopiesInput(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/d")
	data := []byte("abc")
	_ = fs.WriteFile("/d/f", data)
	data[0] = 'X'
	got, _ := fs.ReadFile("/d/f")
	if string(got) != "abc" {
		t.Fatalf("caller mutation leaked into FS: %q", got)
	}
}

func TestErrors(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/d/sub")
	_ = fs.WriteFile("/d/f", []byte("x"))

	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("read missing: %v", err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir: %v", err)
	}
	if err := fs.WriteFile("/d/sub", []byte("y")); !errors.Is(err, ErrIsDir) {
		t.Errorf("write over dir: %v", err)
	}
	if err := fs.WriteFile("/missing/f", nil); !errors.Is(err, ErrNotExist) {
		t.Errorf("write without parent: %v", err)
	}
	if err := fs.WriteFile("relative", nil); !errors.Is(err, ErrBadPath) {
		t.Errorf("relative path: %v", err)
	}
	if err := fs.Mkdir("/d"); !errors.Is(err, ErrExist) {
		t.Errorf("mkdir existing: %v", err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty dir: %v", err)
	}
	if _, err := fs.List("/d/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("list file: %v", err)
	}
}

func TestAppendFile(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/log")
	if err := fs.AppendFile("/log/out", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/log/out", []byte("b")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/log/out")
	if string(got) != "ab" {
		t.Fatalf("append result %q", got)
	}
}

func TestRemoveAndRemoveAll(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/a/b")
	_ = fs.WriteFile("/a/b/f1", []byte("12345"))
	_ = fs.WriteFile("/a/f2", []byte("678"))

	if err := fs.Remove("/a/b/f1"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/b/f1") {
		t.Fatal("file still exists after Remove")
	}
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Fatal("tree still exists after RemoveAll")
	}
	if got := fs.Used(); got != 0 {
		t.Fatalf("Used() = %d after removing everything", got)
	}
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatalf("RemoveAll on missing path: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/src")
	_ = fs.MkdirAll("/dst")
	_ = fs.WriteFile("/src/f", []byte("data"))
	if err := fs.Rename("/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/src/f") {
		t.Fatal("source still present")
	}
	got, err := fs.ReadFile("/dst/g")
	if err != nil || string(got) != "data" {
		t.Fatalf("dest read: %q, %v", got, err)
	}
	if err := fs.Rename("/dst/g", "/dst/g2"); err != nil {
		t.Fatal(err)
	}
	_ = fs.WriteFile("/dst/h", []byte("x"))
	if err := fs.Rename("/dst/h", "/dst/g2"); !errors.Is(err, ErrExist) {
		t.Fatalf("rename over existing: %v", err)
	}
}

func TestQuota(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/d")
	fs.SetQuota(10)
	if err := fs.WriteFile("/d/a", bytes.Repeat([]byte("x"), 8)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/b", []byte("yyy")); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota write: %v", err)
	}
	// Replacing a file only charges the delta.
	if err := fs.WriteFile("/d/a", bytes.Repeat([]byte("x"), 10)); err != nil {
		t.Fatalf("replace within quota: %v", err)
	}
	if err := fs.AppendFile("/d/a", []byte("z")); !errors.Is(err, ErrQuota) {
		t.Fatalf("append over quota: %v", err)
	}
	_ = fs.Remove("/d/a")
	if err := fs.WriteFile("/d/b", []byte("yyy")); err != nil {
		t.Fatalf("write after freeing space: %v", err)
	}
}

func TestStatAndCRC(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/d")
	_ = fs.WriteFile("/d/f", []byte("hello"))
	fi, err := fs.Stat("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Name != "f" || fi.Size != 5 || fi.IsDir || fi.CRC == 0 {
		t.Fatalf("Stat = %+v", fi)
	}
	_ = fs.WriteFile("/d/g", []byte("hello"))
	gi, _ := fs.Stat("/d/g")
	if gi.CRC != fi.CRC {
		t.Fatal("same contents produced different CRCs")
	}
	di, err := fs.Stat("/d")
	if err != nil || !di.IsDir {
		t.Fatalf("Stat dir = %+v, %v", di, err)
	}
	ri, err := fs.Stat("/")
	if err != nil || !ri.IsDir || ri.Name != "/" {
		t.Fatalf("Stat root = %+v, %v", ri, err)
	}
}

func TestListSorted(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/d")
	for _, name := range []string{"c", "a", "b"} {
		_ = fs.WriteFile("/d/"+name, []byte(name))
	}
	entries, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	if fmt.Sprint(names) != "[a b c]" {
		t.Fatalf("List order = %v", names)
	}
}

func TestWalk(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/a/b")
	_ = fs.WriteFile("/a/x", []byte("1"))
	_ = fs.WriteFile("/a/b/y", []byte("22"))
	var paths []string
	err := fs.Walk("/", func(fi FileInfo) error {
		paths = append(paths, fi.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(paths) != "[/a/b/y /a/x]" {
		t.Fatalf("Walk order = %v", paths)
	}
}

func TestCopyAndCopyTree(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/src/deep")
	_ = fs.WriteFile("/src/f", []byte("f"))
	_ = fs.WriteFile("/src/deep/g", []byte("gg"))
	if err := fs.CopyTree("/dst", "/src"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/dst/deep/g")
	if err != nil || string(got) != "gg" {
		t.Fatalf("copied tree read: %q, %v", got, err)
	}
}

func TestCopyBetween(t *testing.T) {
	a, b := newFS(), newFS()
	_ = a.MkdirAll("/u")
	_ = b.MkdirAll("/u")
	_ = a.WriteFile("/u/data", []byte("payload"))
	if err := CopyBetween(b, "/u/data", a, "/u/data"); err != nil {
		t.Fatal(err)
	}
	got, _ := b.ReadFile("/u/data")
	if string(got) != "payload" {
		t.Fatalf("cross-FS copy = %q", got)
	}
	sa, _ := a.Stat("/u/data")
	sb, _ := b.Stat("/u/data")
	if sa.CRC != sb.CRC {
		t.Fatal("CRCs differ after cross-FS copy")
	}
}

func TestTreeSize(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/a/b")
	_ = fs.WriteFile("/a/f", bytes.Repeat([]byte("x"), 10))
	_ = fs.WriteFile("/a/b/g", bytes.Repeat([]byte("y"), 5))
	n, err := fs.TreeSize("/a")
	if err != nil || n != 15 {
		t.Fatalf("TreeSize = %d, %v", n, err)
	}
}

func TestPathNormalisation(t *testing.T) {
	fs := newFS()
	_ = fs.MkdirAll("/a/b")
	_ = fs.WriteFile("/a/b/f", []byte("x"))
	if _, err := fs.ReadFile("/a//b/./f"); err != nil {
		t.Fatalf("normalised read failed: %v", err)
	}
	if _, err := fs.ReadFile("/a/b/../b/f"); err != nil {
		t.Fatalf("dot-dot read failed: %v", err)
	}
}

// Property: Used() always equals the byte sum of all files, through any
// sequence of writes, appends, and removals.
func TestQuickUsedInvariant(t *testing.T) {
	type op struct {
		Kind byte
		File uint8
		Size uint8
	}
	f := func(ops []op) bool {
		fs := newFS()
		_ = fs.MkdirAll("/d")
		for _, o := range ops {
			p := fmt.Sprintf("/d/f%d", o.File%8)
			switch o.Kind % 3 {
			case 0:
				_ = fs.WriteFile(p, bytes.Repeat([]byte("x"), int(o.Size)))
			case 1:
				_ = fs.AppendFile(p, bytes.Repeat([]byte("y"), int(o.Size)))
			case 2:
				_ = fs.Remove(p)
			}
		}
		total, _ := fs.TreeSize("/")
		return fs.Used() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: quota is never exceeded no matter the operation sequence.
func TestQuickQuotaNeverExceeded(t *testing.T) {
	f := func(seed int64, quota uint16) bool {
		r := rand.New(rand.NewSource(seed))
		q := int64(quota%512) + 16
		fs := newFS()
		_ = fs.MkdirAll("/d")
		fs.SetQuota(q)
		for i := 0; i < 100; i++ {
			p := fmt.Sprintf("/d/f%d", r.Intn(5))
			switch r.Intn(3) {
			case 0:
				_ = fs.WriteFile(p, bytes.Repeat([]byte("x"), r.Intn(64)))
			case 1:
				_ = fs.AppendFile(p, bytes.Repeat([]byte("y"), r.Intn(64)))
			case 2:
				_ = fs.Remove(p)
			}
			if fs.Used() > q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rename preserves contents and total usage.
func TestQuickRenamePreserves(t *testing.T) {
	f := func(data []byte) bool {
		fs := newFS()
		_ = fs.MkdirAll("/d")
		if err := fs.WriteFile("/d/a", data); err != nil {
			return false
		}
		before := fs.Used()
		if err := fs.Rename("/d/a", "/d/b"); err != nil {
			return false
		}
		got, err := fs.ReadFile("/d/b")
		return err == nil && bytes.Equal(got, data) && fs.Used() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
