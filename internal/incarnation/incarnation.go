// Package incarnation translates abstract tasks into real batch jobs — the
// NJS's "java translation server" role: "translate the abstract
// specifications into the local system specific nomenclature using
// translation tables" (paper §5.5). A Table is the per-Vsite translation
// table "the UNICORE site administrator together with the Vsite system
// administrator" sets up; Incarnate produces the batch script (with the
// dialect's directives) and the codine job specification.
package incarnation

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/codine"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/resources"
	"unicore/internal/uudb"
)

// Errors reported by incarnation.
var (
	ErrNotExecutable = errors.New("incarnation: action does not incarnate to a batch job")
	ErrNoTranslation = errors.New("incarnation: no translation for abstract name")
)

// Table is one Vsite's translation table.
type Table struct {
	Target  core.Target
	Profile machine.Profile
	Queue   string // destination batch queue
	// Compilers maps abstract language names to compiler commands; seeded
	// from the profile ("f90" → cf90 on the T3E).
	Compilers map[string]string
	// Linker is the link command.
	Linker string
	// Defaults fills unspecified resource fields before incarnation.
	Defaults resources.Request
}

// NewTable derives the standard table for a profile, as the site
// administrator would.
func NewTable(target core.Target, p machine.Profile, queue string) Table {
	return Table{
		Target:  target,
		Profile: p,
		Queue:   queue,
		Compilers: map[string]string{
			"f90":     p.FortranCompiler,
			"fortran": p.FortranCompiler,
		},
		Linker: p.Linker,
		Defaults: resources.Request{
			Processors: 1,
			RunTime:    time.Hour,
			MemoryMB:   64,
		},
	}
}

// Incarnated is the result of translating one task.
type Incarnated struct {
	Script string
	Spec   codine.JobSpec // FS and Done are filled in by the NJS
}

// Incarnate translates an executable task into a batch job for the table's
// destination system, under the mapped local login.
func Incarnate(a ajo.Action, login uudb.Login, tbl Table) (Incarnated, error) {
	if !a.Kind().IsExecutable() {
		return Incarnated{}, fmt.Errorf("%w: %s", ErrNotExecutable, a.Kind())
	}
	req, _ := ajo.TaskResources(a)
	req = req.WithDefaults(tbl.Defaults)

	body, env, err := taskBody(a, tbl)
	if err != nil {
		return Incarnated{}, err
	}

	var sb strings.Builder
	writeDirectives(&sb, tbl, a, req, login)
	sb.WriteString("# --- incarnated by UNICORE NJS ---\n")
	for _, k := range sortedKeys(env) {
		fmt.Fprintf(&sb, "%s=%s\n", k, env[k])
	}
	sb.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		sb.WriteByte('\n')
	}

	name := a.Name()
	if name == "" {
		name = string(a.ID())
	}
	return Incarnated{
		Script: sb.String(),
		Spec: codine.JobSpec{
			Name:      name,
			Owner:     login.UID,
			Project:   login.Project,
			Queue:     tbl.Queue,
			Slots:     req.Processors,
			TimeLimit: req.RunTime,
			Env:       env,
		},
	}, nil
}

// taskBody renders the command section for each executable task class.
func taskBody(a ajo.Action, tbl Table) (string, map[string]string, error) {
	switch t := a.(type) {
	case *ajo.CompileTask:
		cc, ok := tbl.Compilers[strings.ToLower(t.Language)]
		if !ok {
			return "", nil, fmt.Errorf("%w: compiler for %q at %s", ErrNoTranslation, t.Language, tbl.Target)
		}
		parts := []string{cc, "-c", "-o", t.Output}
		parts = append(parts, t.Options...)
		parts = append(parts, t.Sources...)
		return strings.Join(parts, " "), nil, nil

	case *ajo.LinkTask:
		if tbl.Linker == "" {
			return "", nil, fmt.Errorf("%w: linker at %s", ErrNoTranslation, tbl.Target)
		}
		parts := []string{tbl.Linker, "-o", t.Output}
		parts = append(parts, t.Objects...)
		for _, lib := range t.Libraries {
			parts = append(parts, "-l", lib)
		}
		return strings.Join(parts, " "), nil, nil

	case *ajo.ExecuteTask:
		exe := t.Executable
		if !strings.HasPrefix(exe, "/") && !strings.HasPrefix(exe, "./") {
			exe = "./" + exe
		}
		parts := []string{exe}
		parts = append(parts, t.Arguments...)
		if t.Stdin != "" {
			parts = append(parts, "<", t.Stdin)
		}
		return strings.Join(parts, " "), t.Environment, nil

	case *ajo.UserTask:
		return t.Command, nil, nil

	case *ajo.ScriptTask:
		return t.Script, nil, nil
	}
	return "", nil, fmt.Errorf("%w: %T", ErrNotExecutable, a)
}

// writeDirectives emits the batch directive header in the destination
// dialect. The shell treats them as comments; they exist so the incarnated
// script is what the destination system would really have received.
func writeDirectives(sb *strings.Builder, tbl Table, a ajo.Action, req resources.Request, login uudb.Login) {
	name := a.Name()
	if name == "" {
		name = string(a.ID())
	}
	secs := int(req.RunTime / time.Second)
	switch tbl.Profile.Dialect {
	case machine.DialectNQE:
		fmt.Fprintf(sb, "#QSUB -r %s\n", name)
		fmt.Fprintf(sb, "#QSUB -q %s\n", tbl.Queue)
		fmt.Fprintf(sb, "#QSUB -l mpp_p=%d\n", req.Processors)
		fmt.Fprintf(sb, "#QSUB -l mpp_t=%d\n", secs)
		fmt.Fprintf(sb, "#QSUB -lM %dMw\n", req.MemoryMB/8)
		if login.Project != "" {
			fmt.Fprintf(sb, "#QSUB -A %s\n", login.Project)
		}
	case machine.DialectNQS:
		fmt.Fprintf(sb, "#@$-r %s\n", name)
		fmt.Fprintf(sb, "#@$-q %s\n", tbl.Queue)
		fmt.Fprintf(sb, "#@$-lP %d\n", req.Processors)
		fmt.Fprintf(sb, "#@$-lT %d\n", secs)
		fmt.Fprintf(sb, "#@$-lM %dmb\n", req.MemoryMB)
		if login.Project != "" {
			fmt.Fprintf(sb, "#@$-A %s\n", login.Project)
		}
	case machine.DialectLoadLeveler:
		fmt.Fprintf(sb, "# @ job_name = %s\n", name)
		fmt.Fprintf(sb, "# @ class = %s\n", tbl.Queue)
		fmt.Fprintf(sb, "# @ job_type = parallel\n")
		fmt.Fprintf(sb, "# @ min_processors = %d\n", req.Processors)
		fmt.Fprintf(sb, "# @ wall_clock_limit = %s\n", hhmmss(secs))
		if login.Project != "" {
			fmt.Fprintf(sb, "# @ account_no = %s\n", login.Project)
		}
		fmt.Fprintf(sb, "# @ queue\n")
	case machine.DialectCodine:
		fmt.Fprintf(sb, "#$ -N %s\n", name)
		fmt.Fprintf(sb, "#$ -q %s\n", tbl.Queue)
		fmt.Fprintf(sb, "#$ -pe mpi %d\n", req.Processors)
		fmt.Fprintf(sb, "#$ -l h_rt=%d\n", secs)
		if login.Project != "" {
			fmt.Fprintf(sb, "#$ -P %s\n", login.Project)
		}
	default:
		fmt.Fprintf(sb, "# unknown dialect %s\n", tbl.Profile.Dialect)
	}
}

func hhmmss(secs int) string {
	return fmt.Sprintf("%02d:%02d:%02d", secs/3600, secs/60%60, secs%60)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
