package incarnation

import (
	"errors"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/resources"
	"unicore/internal/uudb"
)

var (
	t3eTarget = core.Target{Usite: "FZJ", Vsite: "T3E"}
	login     = uudb.Login{UID: "alice", Project: "zam"}
)

func t3eTable() Table { return NewTable(t3eTarget, machine.CrayT3E(512), "batch") }

func TestIncarnateCompileTask(t *testing.T) {
	task := &ajo.CompileTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: "cc", ActionName: "compile-main"},
			Resources: resources.Request{Processors: 1, RunTime: 10 * time.Minute, MemoryMB: 64},
		},
		Language: "f90",
		Sources:  []string{"main.f90", "util.f90"},
		Options:  []string{"-O3"},
		Output:   "main.o",
	}
	inc, err := Incarnate(task, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inc.Script, "cf90 -c -o main.o -O3 main.f90 util.f90") {
		t.Fatalf("script missing translated compile line:\n%s", inc.Script)
	}
	// NQE directives for the T3E.
	for _, want := range []string{"#QSUB -q batch", "#QSUB -l mpp_p=1", "#QSUB -l mpp_t=600", "#QSUB -A zam", "#QSUB -r compile-main"} {
		if !strings.Contains(inc.Script, want) {
			t.Errorf("script missing directive %q:\n%s", want, inc.Script)
		}
	}
	if inc.Spec.Owner != "alice" || inc.Spec.Project != "zam" || inc.Spec.Queue != "batch" {
		t.Fatalf("spec = %+v", inc.Spec)
	}
	if inc.Spec.Slots != 1 || inc.Spec.TimeLimit != 10*time.Minute {
		t.Fatalf("spec resources = %+v", inc.Spec)
	}
}

func TestIncarnateLinkTask(t *testing.T) {
	task := &ajo.LinkTask{
		TaskBase:  ajo.TaskBase{Header: ajo.Header{ActionID: "ld"}},
		Objects:   []string{"main.o", "util.o"},
		Libraries: []string{"MPI", "BLAS"},
		Output:    "prog",
	}
	inc, err := Incarnate(task, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inc.Script, "segldr -o prog main.o util.o -l MPI -l BLAS") {
		t.Fatalf("link line wrong:\n%s", inc.Script)
	}
}

func TestIncarnateExecuteTask(t *testing.T) {
	task := &ajo.ExecuteTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: "run"},
			Resources: resources.Request{Processors: 128, RunTime: 2 * time.Hour},
		},
		Executable:  "prog",
		Arguments:   []string{"-n", "100"},
		Environment: map[string]string{"OMP_NUM_THREADS": "4"},
		Stdin:       "input.nml",
	}
	inc, err := Incarnate(task, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inc.Script, "./prog -n 100 < input.nml") {
		t.Fatalf("execute line wrong:\n%s", inc.Script)
	}
	if !strings.Contains(inc.Script, "OMP_NUM_THREADS=4") {
		t.Fatalf("environment missing:\n%s", inc.Script)
	}
	if !strings.Contains(inc.Script, "#QSUB -l mpp_p=128") {
		t.Fatalf("slots directive missing:\n%s", inc.Script)
	}
	if inc.Spec.Slots != 128 {
		t.Fatalf("slots = %d", inc.Spec.Slots)
	}
}

func TestIncarnateUserAndScriptTasks(t *testing.T) {
	u := &ajo.UserTask{TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "u"}}, Command: "echo hello > msg.txt"}
	inc, err := Incarnate(u, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inc.Script, "echo hello > msg.txt") {
		t.Fatalf("user command lost:\n%s", inc.Script)
	}
	s := &ajo.ScriptTask{TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "s"}}, Script: "echo line1\necho line2\n"}
	inc, err = Incarnate(s, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inc.Script, "echo line1\necho line2\n") {
		t.Fatalf("script body lost:\n%s", inc.Script)
	}
}

func TestDefaultsApplied(t *testing.T) {
	u := &ajo.UserTask{TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "u"}}, Command: "true"}
	inc, err := Incarnate(u, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if inc.Spec.Slots != 1 || inc.Spec.TimeLimit != time.Hour {
		t.Fatalf("defaults not applied: %+v", inc.Spec)
	}
}

func TestDialectDirectives(t *testing.T) {
	u := &ajo.UserTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: "u", ActionName: "task"},
			Resources: resources.Request{Processors: 4, RunTime: 90 * time.Minute, MemoryMB: 256},
		},
		Command: "true",
	}
	cases := []struct {
		profile machine.Profile
		wants   []string
	}{
		{machine.CrayT3E(64), []string{"#QSUB -l mpp_p=4", "#QSUB -l mpp_t=5400"}},
		{machine.FujitsuVPP700(8), []string{"#@$-lP 4", "#@$-lT 5400", "#@$-lM 256mb"}},
		{machine.NECSX4(8), []string{"#@$-lP 4"}},
		{machine.IBMSP2(32), []string{"# @ min_processors = 4", "# @ wall_clock_limit = 01:30:00", "# @ queue"}},
		{machine.GenericCluster(16), []string{"#$ -pe mpi 4", "#$ -l h_rt=5400"}},
	}
	for _, c := range cases {
		tbl := NewTable(t3eTarget, c.profile, "batch")
		inc, err := Incarnate(u, login, tbl)
		if err != nil {
			t.Fatalf("%s: %v", c.profile.Name, err)
		}
		for _, w := range c.wants {
			if !strings.Contains(inc.Script, w) {
				t.Errorf("%s: missing %q in:\n%s", c.profile.Name, w, inc.Script)
			}
		}
	}
}

func TestUnknownLanguage(t *testing.T) {
	task := &ajo.CompileTask{
		TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "cc"}},
		Language: "cobol", Sources: []string{"x.cob"}, Output: "x.o",
	}
	if _, err := Incarnate(task, login, t3eTable()); !errors.Is(err, ErrNoTranslation) {
		t.Fatalf("err = %v", err)
	}
}

func TestNonExecutableRejected(t *testing.T) {
	imp := &ajo.ImportTask{Header: ajo.Header{ActionID: "i"}, Source: ajo.ImportSource{Inline: []byte("x")}, To: "f"}
	if _, err := Incarnate(imp, login, t3eTable()); !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("err = %v", err)
	}
	job := &ajo.AbstractJob{Header: ajo.Header{ActionID: "j"}, Target: t3eTarget}
	if _, err := Incarnate(job, login, t3eTable()); !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("job err = %v", err)
	}
}

func TestAbsoluteExecutableNotPrefixed(t *testing.T) {
	task := &ajo.ExecuteTask{
		TaskBase:   ajo.TaskBase{Header: ajo.Header{ActionID: "run"}},
		Executable: "/usr/bin/tool",
	}
	inc, err := Incarnate(task, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(inc.Script, ".//usr/bin/tool") {
		t.Fatalf("absolute path mangled:\n%s", inc.Script)
	}
}

func TestCaseInsensitiveLanguage(t *testing.T) {
	task := &ajo.CompileTask{
		TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "cc"}},
		Language: "F90", Sources: []string{"m.f90"}, Output: "m.o",
	}
	inc, err := Incarnate(task, login, t3eTable())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inc.Script, "cf90") {
		t.Fatalf("upper-case language not translated:\n%s", inc.Script)
	}
}

func TestHHMMSS(t *testing.T) {
	if got := hhmmss(3661); got != "01:01:01" {
		t.Fatalf("hhmmss = %q", got)
	}
	if got := hhmmss(0); got != "00:00:00" {
		t.Fatalf("hhmmss(0) = %q", got)
	}
}
