package staging

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"unicore/internal/core"
	"unicore/internal/sim"
	"unicore/internal/vfs"
)

// newTestSpool builds a spool on a fresh virtual-clock FS.
func newTestSpool(t *testing.T) (*Spool, *vfs.FS, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewVirtualClock()
	fs := vfs.New(clock)
	s, err := NewSpool(fs, "/spool", "", clock)
	if err != nil {
		t.Fatalf("NewSpool: %v", err)
	}
	return s, fs, clock
}

// sendChunks delivers data to an open upload on the entry's grid.
func sendChunks(t *testing.T, s *Spool, owner, handle string, chunkSize int64, data []byte) {
	t.Helper()
	for i := int64(0); i*chunkSize < int64(len(data)); i++ {
		lo, hi := i*chunkSize, (i+1)*chunkSize
		if hi > int64(len(data)) {
			hi = int64(len(data))
		}
		piece := data[lo:hi]
		if _, err := s.Chunk(core.DN(owner), handle, i, piece, Checksum(piece)); err != nil {
			t.Fatalf("Chunk(%d): %v", i, err)
		}
	}
}

func TestSpoolRoundTrip(t *testing.T) {
	s, _, _ := newTestSpool(t)
	payload := bytes.Repeat([]byte("spool round trip "), 1000) // ~17 KB, 3 chunks at 8 KiB
	info, err := s.Open("u", "in.dat", 8<<10, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sendChunks(t, s, "u", info.Handle, info.ChunkSize, payload)
	sealed, err := s.Commit("u", info.Handle, Checksum(payload))
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if sealed.Size != int64(len(payload)) || sealed.CRC != Checksum(payload) {
		t.Fatalf("sealed %d/%#x, want %d/%#x", sealed.Size, sealed.CRC, len(payload), Checksum(payload))
	}
	data, _, err := s.Consume("u", info.Handle)
	if err != nil {
		t.Fatalf("Consume: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("consumed bytes differ from upload")
	}
}

func TestSpoolChunkResendIsIdempotent(t *testing.T) {
	s, fs, _ := newTestSpool(t)
	info, err := s.Open("u", "f", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	chunk := []byte("12345678")
	if _, err := s.Chunk("u", info.Handle, 0, chunk, Checksum(chunk)); err != nil {
		t.Fatalf("Chunk: %v", err)
	}
	// A re-send — the reply was lost — is acknowledged without rewriting,
	// even when the (buggy or racing) sender presents different bytes.
	w, err := s.Chunk("u", info.Handle, 0, []byte("DIFFERNT"), Checksum([]byte("DIFFERNT")))
	if err != nil {
		t.Fatalf("re-send: %v", err)
	}
	if w != 1 {
		t.Fatalf("watermark after re-send = %d, want 1", w)
	}
	got, err := fs.ReadFile("/spool/" + info.Handle + "/c00000000")
	if err != nil || !bytes.Equal(got, chunk) {
		t.Fatalf("chunk content changed on re-send: %q, %v", got, err)
	}
}

func TestSpoolRejectsOutOfOrderChunks(t *testing.T) {
	s, _, _ := newTestSpool(t)
	info, err := s.Open("u", "f", 8, 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	chunk := []byte("abcdefgh")
	// Window 2, watermark 0: indices 0 and 1 are in the window, 2 is not.
	if _, err := s.Chunk("u", info.Handle, 1, chunk, Checksum(chunk)); err != nil {
		t.Fatalf("in-window out-of-order chunk refused: %v", err)
	}
	if _, err := s.Chunk("u", info.Handle, 2, chunk, Checksum(chunk)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("chunk beyond window: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := s.Chunk("u", info.Handle, -1, chunk, Checksum(chunk)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("negative index: err = %v, want ErrOutOfOrder", err)
	}
	// Filling the hole advances the watermark over the buffered chunk.
	w, err := s.Chunk("u", info.Handle, 0, chunk, Checksum(chunk))
	if err != nil || w != 2 {
		t.Fatalf("filling the hole: watermark %d, err %v; want 2, nil", w, err)
	}
}

func TestSpoolCommitRefusesHoles(t *testing.T) {
	s, _, _ := newTestSpool(t)
	info, err := s.Open("u", "f", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	chunk := []byte("abcdefgh")
	if _, err := s.Chunk("u", info.Handle, 1, chunk, Checksum(chunk)); err != nil {
		t.Fatalf("Chunk(1): %v", err)
	}
	if _, err := s.Commit("u", info.Handle, Checksum(chunk)); !errors.Is(err, ErrMissingChunk) {
		t.Fatalf("commit with chunk 0 missing: err = %v, want ErrMissingChunk", err)
	}
}

func TestSpoolChunkChecksumVerified(t *testing.T) {
	s, _, _ := newTestSpool(t)
	info, err := s.Open("u", "f", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Chunk("u", info.Handle, 0, []byte("abcdefgh"), 0xbad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bad chunk CRC: err = %v, want ErrChecksum", err)
	}
}

func TestSpoolCommitChecksumVerified(t *testing.T) {
	s, _, _ := newTestSpool(t)
	info, err := s.Open("u", "f", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	chunk := []byte("abcdefgh")
	if _, err := s.Chunk("u", info.Handle, 0, chunk, Checksum(chunk)); err != nil {
		t.Fatalf("Chunk: %v", err)
	}
	if _, err := s.Commit("u", info.Handle, Checksum(chunk)+1); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bad whole-file CRC: err = %v, want ErrChecksum", err)
	}
	// The correct CRC still commits — a failed commit poisons nothing.
	if _, err := s.Commit("u", info.Handle, Checksum(chunk)); err != nil {
		t.Fatalf("Commit after failed commit: %v", err)
	}
}

func TestSpoolOwnerEnforced(t *testing.T) {
	s, _, _ := newTestSpool(t)
	info, err := s.Open("alice", "f", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	chunk := []byte("abcdefgh")
	if _, err := s.Chunk("mallory", info.Handle, 0, chunk, Checksum(chunk)); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign chunk: err = %v, want ErrNotOwner", err)
	}
	if _, err := s.Commit("mallory", info.Handle, Checksum(chunk)); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign commit: err = %v, want ErrNotOwner", err)
	}
	if _, _, err := s.Consume("mallory", info.Handle); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign consume: err = %v, want ErrNotOwner", err)
	}
}

func TestSpoolZeroByteAndOneChunkFiles(t *testing.T) {
	s, _, _ := newTestSpool(t)

	// Zero-byte upload: no chunks at all, sealed by the commit alone.
	empty, err := s.Open("u", "empty", 8, 4)
	if err != nil {
		t.Fatalf("Open(empty): %v", err)
	}
	sealed, err := s.Commit("u", empty.Handle, Checksum(nil))
	if err != nil {
		t.Fatalf("Commit(empty): %v", err)
	}
	if sealed.Size != 0 {
		t.Fatalf("empty upload sealed at %d bytes", sealed.Size)
	}
	data, _, err := s.Consume("u", empty.Handle)
	if err != nil || len(data) != 0 {
		t.Fatalf("Consume(empty) = %d bytes, %v", len(data), err)
	}

	// Exactly-one-chunk upload (short final chunk is also the first).
	one, err := s.Open("u", "one", 8, 4)
	if err != nil {
		t.Fatalf("Open(one): %v", err)
	}
	payload := []byte("abc")
	if _, err := s.Chunk("u", one.Handle, 0, payload, Checksum(payload)); err != nil {
		t.Fatalf("Chunk: %v", err)
	}
	if _, err := s.Commit("u", one.Handle, Checksum(payload)); err != nil {
		t.Fatalf("Commit(one): %v", err)
	}
	data, _, err = s.Consume("u", one.Handle)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("Consume(one) = %q, %v", data, err)
	}
}

func TestSpoolSweepCollectsAbandonedAndConsumed(t *testing.T) {
	s, fs, clock := newTestSpool(t)
	const ttl = time.Hour

	abandoned, err := s.Open("u", "abandoned", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	chunk := []byte("abcdefgh")
	if _, err := s.Chunk("u", abandoned.Handle, 0, chunk, Checksum(chunk)); err != nil {
		t.Fatalf("Chunk: %v", err)
	}

	// A consumed upload is collected immediately.
	done, err := s.Open("u", "done", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Commit("u", done.Handle, Checksum(nil)); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if _, _, err := s.Consume("u", done.Handle); err != nil {
		t.Fatalf("Consume: %v", err)
	}
	if n := s.Sweep(ttl); n != 1 {
		t.Fatalf("first sweep removed %d entries, want 1 (the consumed one)", n)
	}
	if _, ok := s.Stat(done.Handle); ok {
		t.Fatal("consumed upload survived the sweep")
	}
	if _, ok := s.Stat(abandoned.Handle); !ok {
		t.Fatal("young abandoned upload was swept early")
	}

	// Past the TTL the abandoned upload goes too, chunks and all.
	clock.Advance(ttl + time.Minute)
	if n := s.Sweep(ttl); n != 1 {
		t.Fatalf("second sweep removed %d entries, want 1 (the abandoned one)", n)
	}
	if fs.Exists("/spool/" + abandoned.Handle) {
		t.Fatal("abandoned upload's spool directory survived the sweep")
	}
	if _, err := s.Chunk("u", abandoned.Handle, 1, chunk, Checksum(chunk)); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("chunk after sweep: err = %v, want ErrUnknownHandle", err)
	}
}

// TestSpoolTagsKeepHandlesDisjoint: every spool of a deployment mints under
// its own tag (replica instance + Vsite), so handles never collide across
// the Vsites of one NJS or the replicas of a pool — and the tag survives a
// rescan, counter included.
func TestSpoolTagsKeepHandlesDisjoint(t *testing.T) {
	clock := sim.NewVirtualClock()
	fs := vfs.New(clock)
	a, err := NewSpool(fs, "/spoolA", "r1-T3E", clock)
	if err != nil {
		t.Fatalf("NewSpool: %v", err)
	}
	b, err := NewSpool(fs, "/spoolB", "r2-T3E", clock)
	if err != nil {
		t.Fatalf("NewSpool: %v", err)
	}
	ia, err := a.Open("u", "f", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ib, err := b.Open("u", "f", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ia.Handle == ib.Handle {
		t.Fatalf("two spools minted the same handle %q", ia.Handle)
	}
	if want := "stg-r1-T3E-"; !strings.HasPrefix(ia.Handle, want) {
		t.Fatalf("handle %q does not carry its spool tag %q", ia.Handle, want)
	}
	// A rescan restores the counter under the tag: no re-minted collision.
	re, err := NewSpool(fs, "/spoolA", "r1-T3E", clock)
	if err != nil {
		t.Fatalf("NewSpool: %v", err)
	}
	if err := re.Rescan(); err != nil {
		t.Fatalf("Rescan: %v", err)
	}
	next, err := re.Open("u", "f2", 8, 4)
	if err != nil {
		t.Fatalf("Open after rescan: %v", err)
	}
	if next.Handle == ia.Handle {
		t.Fatalf("rescanned spool re-minted handle %q", next.Handle)
	}
}

func TestSpoolRescanRestoresEntries(t *testing.T) {
	s, fs, clock := newTestSpool(t)
	payload := bytes.Repeat([]byte("x"), 20) // 2.5 chunks at 8 bytes
	open, err := s.Open("u", "partial", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sendChunks(t, s, "u", open.Handle, 8, payload[:16]) // two full chunks, not committed

	sealed, err := s.Open("u", "sealed", 8, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sendChunks(t, s, "u", sealed.Handle, 8, payload)
	if _, err := s.Commit("u", sealed.Handle, Checksum(payload)); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// An orphan directory without metadata (the open never became durable)
	// is discarded by the rescan.
	if err := fs.MkdirAll("/spool/stg-junk"); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}

	// A recovered NJS builds a fresh Spool over the replayed file tree.
	recovered, err := NewSpool(fs, "/spool", "", clock)
	if err != nil {
		t.Fatalf("NewSpool: %v", err)
	}
	if err := recovered.Rescan(); err != nil {
		t.Fatalf("Rescan: %v", err)
	}
	if fs.Exists("/spool/stg-junk") {
		t.Fatal("orphan spool directory survived the rescan")
	}
	info, ok := recovered.Stat(open.Handle)
	if !ok || info.Chunks != 2 || info.Committed {
		t.Fatalf("partial upload after rescan: %+v, ok %v; want 2 chunks, uncommitted", info, ok)
	}
	// The partial upload resumes exactly where the acked chunks left off.
	last := payload[16:]
	if _, err := recovered.Chunk("u", open.Handle, 2, last, Checksum(last)); err != nil {
		t.Fatalf("resuming after rescan: %v", err)
	}
	if _, err := recovered.Commit("u", open.Handle, Checksum(payload)); err != nil {
		t.Fatalf("Commit after rescan: %v", err)
	}
	data, _, err := recovered.Consume("u", open.Handle)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("Consume after rescan: %q, %v", data, err)
	}
	// Fresh handles never collide with recovered ones.
	next, err := recovered.Open("u", "fresh", 8, 4)
	if err != nil {
		t.Fatalf("Open after rescan: %v", err)
	}
	if next.Handle == open.Handle || next.Handle == sealed.Handle {
		t.Fatalf("recovered spool re-minted handle %s", next.Handle)
	}
}
