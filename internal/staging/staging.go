// Package staging is the bulk data-transfer engine of the reproduction — the
// production-grade successor of the paper's §5.6 chunked transfers ("data are
// transferred in chunks, on user request"). The seed implementation moved one
// signed envelope per sequential 256 KiB chunk and buffered whole files in
// memory; this package replaces both directions:
//
//   - Download: a windowed parallel engine (download.go) keeps N ranged chunk
//     requests in flight with readahead and streams the bytes, in order, to
//     an io.Writer — no whole-file buffering, resumable from any progress
//     point, the whole-file CRC verified incrementally as bytes are written.
//
//   - Upload: a chunked staged-upload engine (upload.go) streams an io.Reader
//     into a per-user spool area on the NJS through the protocol-v2
//     MsgPutOpen/MsgPutChunk/MsgPutCommit messages, so huge job inputs no
//     longer travel inline inside one giant signed consign envelope — the
//     AJO's ImportTask references the committed upload by its transfer handle
//     (ajo.ImportSource.Staged).
//
//   - Spool: the server half (spool.go) keeps every upload as chunk files
//     plus a metadata document on the Vsite's data space, so a journaled NJS
//     persists acknowledged chunks for free through the vfs mutation observer
//     and rebuilds the spool index from the file system after crash recovery.
//     Abandoned uploads are garbage-collected by Sweep.
//
// Chunk sends and ranged reads are idempotent, which is what makes every
// retry in this package safe: a lost reply is recovered by re-sending the
// same chunk or re-reading the same range.
package staging

import (
	"context"
	"errors"
	"fmt"
	"hash/crc64"
	"time"
)

// crcTable is the shared CRC64-ECMA table; the same polynomial the vfs layer
// and the journal use, so checksums compare across tiers.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum returns the crc64 (ECMA) of data — the per-chunk and whole-file
// checksum of the staging protocol.
func Checksum(data []byte) uint64 { return crc64.Checksum(data, crcTable) }

// Defaults for the transfer engines. DefaultChunkSize is the single shared
// chunk constant of the repository: the client fetch path and the NJS–NJS
// transfer path both size their ranged reads with it (the seed duplicated a
// 256 KiB constant in both tiers).
const (
	// DefaultChunkSize is one ranged request per chunk: 1 MiB amortises the
	// per-envelope sign/verify cost 4× better than the seed's 256 KiB.
	DefaultChunkSize = 1 << 20
	// DefaultWindow is how many chunk requests the engines keep in flight.
	DefaultWindow = 8
	// DefaultRetries is how often a failed chunk round trip is re-attempted
	// (idempotence makes the re-send safe).
	DefaultRetries = 4
	// DefaultBackoff spaces chunk retries; attempt k waits k×DefaultBackoff.
	DefaultBackoff = 50 * time.Millisecond
	// MaxChunkSize bounds what a server accepts per chunk (the gateway bounds
	// whole envelopes separately).
	MaxChunkSize = 8 << 20
	// MaxWindow bounds the out-of-order window a spool holds open.
	MaxWindow = 64
)

// Errors reported by the transfer engines and the spool.
var (
	// ErrNotFound reports a ranged read of a file (or job) that does not
	// exist. The engines fail fast on it instead of burning retries.
	ErrNotFound = errors.New("staging: no such file")
	// ErrChecksum reports a CRC mismatch: a chunk that did not survive
	// transit, or a committed/downloaded file whose content does not match
	// the announced whole-file checksum.
	ErrChecksum = errors.New("staging: checksum mismatch")
	// ErrMutated reports that the source file changed size or content while a
	// chunked download was in flight — the transfer is aborted (surfaced, not
	// looped) because a consistent byte stream can no longer be produced.
	ErrMutated = errors.New("staging: file changed during transfer")
	// ErrUnknownHandle reports a chunk/commit/consume against a transfer
	// handle this spool does not hold (wrong replica, expired, or swept).
	ErrUnknownHandle = errors.New("staging: unknown transfer handle")
	// ErrOutOfOrder reports a chunk sent more than the negotiated window
	// beyond the contiguous watermark.
	ErrOutOfOrder = errors.New("staging: chunk out of order")
	// ErrNotOwner reports a staging operation by a DN that did not open the
	// upload.
	ErrNotOwner = errors.New("staging: transfer belongs to another user")
	// ErrNotCommitted reports a consume of an upload that was never sealed.
	ErrNotCommitted = errors.New("staging: upload not committed")
	// ErrCommitted reports a chunk write to an already-sealed upload.
	ErrCommitted = errors.New("staging: upload already committed")
	// ErrMissingChunk reports a commit with holes in the chunk sequence.
	ErrMissingChunk = errors.New("staging: missing chunk")
)

// isPermanent reports an error no retry can cure: the engines surface it
// immediately instead of burning their retry budget.
func isPermanent(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrNotOwner) ||
		errors.Is(err, ErrOutOfOrder) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrCommitted) || errors.Is(err, ErrMissingChunk)
}

// withRetry runs one idempotent staging round trip, re-attempting transient
// failures opt.Retries times with linear backoff (attempt k sleeps
// k×opt.Backoff, cancellable). Permanent errors and context cancellation
// surface immediately — this is the single retry policy under every chunk
// fetch, chunk send, and commit.
func withRetry(ctx context.Context, opt Options, what string, call func() error) error {
	var lastErr error
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Duration(attempt) * opt.Backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err := call()
		if err == nil {
			return nil
		}
		if isPermanent(err) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("staging: %s failed after %d attempts: %w", what, opt.Retries+1, lastErr)
}

// Options tunes a transfer engine. The zero value selects every default, so
// callers only set what they deviate on.
type Options struct {
	// ChunkSize is the byte size of one ranged request (default
	// DefaultChunkSize).
	ChunkSize int64
	// Window is the number of chunk requests kept in flight (default
	// DefaultWindow; 1 degrades to the seed's sequential per-envelope loop).
	Window int
	// Retries is the number of re-attempts per failed chunk round trip
	// (default DefaultRetries; negative disables retrying).
	Retries int
	// Backoff spaces retries of one chunk: attempt k sleeps k×Backoff
	// (default DefaultBackoff). Real time — the failures being ridden out are
	// transport- and failover-level.
	Backoff time.Duration
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	return o
}
