package staging

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/vfs"
)

// fileSource serves ranged reads over an in-memory file, like the NJS
// transfer endpoint does: every reply carries the file's current size and
// whole-file CRC. mutate (optional) swaps the content after a given number of
// reads; failAt injects one transient failure per listed offset.
type fileSource struct {
	mu      sync.Mutex
	data    []byte
	reads   int
	mutateN int    // after this many reads...
	mutate  []byte // ...the file becomes this (nil = never)
	failAt  map[int64]int
}

func (f *fileSource) src(_ context.Context, offset, limit int64) (Chunk, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	if f.mutate != nil && f.reads > f.mutateN {
		f.data, f.mutate = f.mutate, nil
	}
	if n := f.failAt[offset]; n > 0 {
		f.failAt[offset] = n - 1
		return Chunk{}, fmt.Errorf("transient: reply for offset %d lost", offset)
	}
	size := int64(len(f.data))
	if offset > size {
		offset = size
	}
	end := offset + limit
	if end > size {
		end = size
	}
	return Chunk{
		Data: append([]byte(nil), f.data[offset:end]...),
		Size: size,
		CRC:  Checksum(f.data),
	}, nil
}

// pattern returns n deterministic, position-dependent bytes.
func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i/251)
	}
	return out
}

func TestDownloadStreamsInOrder(t *testing.T) {
	payload := pattern(100_000)
	f := &fileSource{data: payload}
	var got bytes.Buffer
	p, err := Download(context.Background(), f.src, &got, Options{ChunkSize: 4096, Window: 6})
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("downloaded bytes differ from source")
	}
	if p.Offset != int64(len(payload)) || p.CRC != Checksum(payload) {
		t.Fatalf("progress %+v, want offset %d crc %#x", p, len(payload), Checksum(payload))
	}
}

func TestDownloadZeroByteFile(t *testing.T) {
	f := &fileSource{data: nil}
	var got bytes.Buffer
	if _, err := Download(context.Background(), f.src, &got, Options{ChunkSize: 4096, Window: 4}); err != nil {
		t.Fatalf("Download(empty): %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty file downloaded as %d bytes", got.Len())
	}
}

func TestDownloadSingleChunkFile(t *testing.T) {
	payload := pattern(100)
	f := &fileSource{data: payload}
	var got bytes.Buffer
	if _, err := Download(context.Background(), f.src, &got, Options{ChunkSize: 4096, Window: 4}); err != nil {
		t.Fatalf("Download: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("single-chunk download differs from source")
	}
}

// TestDownloadSurfacesMidTransferMutation is the regression test for the seed
// fetch loop: a file that changes between chunks must abort the transfer with
// a checksum/mutation error — never loop, and never hand back a silent
// mixture of old and new bytes.
func TestDownloadSurfacesMidTransferMutation(t *testing.T) {
	payload := pattern(64_000)
	changed := append(pattern(64_000), []byte("GREW")...)
	f := &fileSource{data: payload, mutateN: 1, mutate: changed}
	var got bytes.Buffer
	_, err := Download(context.Background(), f.src, &got, Options{ChunkSize: 4096, Window: 1, Retries: -1})
	if !errors.Is(err, ErrMutated) {
		t.Fatalf("mid-transfer mutation: err = %v, want ErrMutated", err)
	}
}

// TestDownloadShrinkingFileDoesNotLoop covers the nastier mutation: the file
// shrinks below the current offset, which in a naive loop re-reads EOF
// forever.
func TestDownloadShrinkingFileDoesNotLoop(t *testing.T) {
	payload := pattern(64_000)
	f := &fileSource{data: payload, mutateN: 2, mutate: pattern(100)}
	var got bytes.Buffer
	_, err := Download(context.Background(), f.src, &got, Options{ChunkSize: 4096, Window: 1, Retries: -1})
	if !errors.Is(err, ErrMutated) {
		t.Fatalf("shrinking file: err = %v, want ErrMutated", err)
	}
}

func TestDownloadRetriesTransientFailures(t *testing.T) {
	payload := pattern(50_000)
	f := &fileSource{data: payload, failAt: map[int64]int{4096: 2, 12288: 1}}
	var got bytes.Buffer
	_, err := Download(context.Background(), f.src, &got, Options{
		ChunkSize: 4096, Window: 4, Retries: 3, Backoff: 1,
	})
	if err != nil {
		t.Fatalf("Download with transient failures: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("retried download differs from source")
	}
}

func TestDownloadFailsFastOnMissingFile(t *testing.T) {
	calls := 0
	src := func(context.Context, int64, int64) (Chunk, error) {
		calls++
		return Chunk{}, fmt.Errorf("%w: no such job file", ErrNotFound)
	}
	if _, err := Download(context.Background(), src, &bytes.Buffer{}, Options{Retries: 5, Backoff: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file: err = %v, want ErrNotFound", err)
	}
	if calls != 1 {
		t.Fatalf("missing file was retried %d times; permanent errors must fail fast", calls)
	}
}

// TestDownloadResumeAfterDroppedReply drives the resume contract: a download
// that dies mid-file (retries exhausted on a dropped reply) reports its
// progress, and Resume continues from that exact offset — no byte refetched,
// no byte missing, whole-file CRC still verified.
func TestDownloadResumeAfterDroppedReply(t *testing.T) {
	payload := pattern(80_000)
	f := &fileSource{data: payload, failAt: map[int64]int{40960: 1}}
	var got bytes.Buffer
	p, err := Download(context.Background(), f.src, &got, Options{
		ChunkSize: 4096, Window: 1, Retries: -1, // no retries: the dropped reply kills the transfer
	})
	if err == nil {
		t.Fatal("Download succeeded despite the dropped reply")
	}
	if p.Offset != 40960 {
		t.Fatalf("progress offset %d, want 40960 (the contiguous prefix)", p.Offset)
	}
	resumed, err := Resume(context.Background(), f.src, &got, p, Options{ChunkSize: 4096, Window: 4})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("resumed download differs from source")
	}
	if resumed.Offset != int64(len(payload)) {
		t.Fatalf("resumed progress %d, want %d", resumed.Offset, len(payload))
	}
}

// --- upload engine over a real spool -------------------------------------

// spoolPutter adapts a Spool directly to the Putter interface — the upload
// engine against the real server half, minus the wire.
type spoolPutter struct {
	s     *Spool
	owner core.DN
	// dropChunkReplies drops the reply of the first send of each listed
	// index: the spool processes the chunk but the "client" sees an error.
	mu               sync.Mutex
	dropChunkReplies map[int64]int
	dropCommits      int
}

func (p *spoolPutter) PutOpen(_ context.Context, req protocol.PutOpenRequest) (protocol.PutOpenReply, error) {
	info, err := p.s.Open(p.owner, req.Name, req.ChunkSize, req.Window)
	if err != nil {
		return protocol.PutOpenReply{}, err
	}
	return protocol.PutOpenReply{Handle: info.Handle, ChunkSize: info.ChunkSize, Window: info.Window}, nil
}

func (p *spoolPutter) PutChunk(_ context.Context, req protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	w, err := p.s.Chunk(p.owner, req.Handle, req.Index, req.Data, req.CRC)
	if err != nil {
		return protocol.PutChunkReply{}, err
	}
	p.mu.Lock()
	drop := p.dropChunkReplies[req.Index] > 0
	if drop {
		p.dropChunkReplies[req.Index]--
	}
	p.mu.Unlock()
	if drop {
		return protocol.PutChunkReply{}, fmt.Errorf("transient: chunk %d reply lost", req.Index)
	}
	return protocol.PutChunkReply{Received: w}, nil
}

func (p *spoolPutter) PutCommit(_ context.Context, req protocol.PutCommitRequest) (protocol.PutCommitReply, error) {
	info, err := p.s.Commit(p.owner, req.Handle, req.CRC)
	if err != nil {
		return protocol.PutCommitReply{}, err
	}
	p.mu.Lock()
	drop := p.dropCommits > 0
	if drop {
		p.dropCommits--
	}
	p.mu.Unlock()
	if drop {
		return protocol.PutCommitReply{}, fmt.Errorf("transient: commit reply lost")
	}
	return protocol.PutCommitReply{Size: info.Size, CRC: info.CRC, Chunks: info.Chunks}, nil
}

func newSpoolPutter(t *testing.T) (*spoolPutter, *Spool) {
	t.Helper()
	clock := sim.NewVirtualClock()
	s, err := NewSpool(vfs.New(clock), "/spool", "", clock)
	if err != nil {
		t.Fatalf("NewSpool: %v", err)
	}
	return &spoolPutter{s: s, owner: "u", dropChunkReplies: map[int64]int{}}, s
}

func uploadRoundTrip(t *testing.T, p *spoolPutter, payload []byte, opt Options) {
	t.Helper()
	handle, commit, err := Upload(context.Background(), p, "CLUSTER", "in.dat", bytes.NewReader(payload), opt)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if commit.Size != int64(len(payload)) || commit.CRC != Checksum(payload) {
		t.Fatalf("commit %d/%#x, want %d/%#x", commit.Size, commit.CRC, len(payload), Checksum(payload))
	}
	data, _, err := p.s.Consume("u", handle)
	if err != nil {
		t.Fatalf("Consume: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("spooled bytes differ from upload")
	}
}

func TestUploadRoundTrip(t *testing.T) {
	p, _ := newSpoolPutter(t)
	uploadRoundTrip(t, p, pattern(100_000), Options{ChunkSize: 4096, Window: 4, Backoff: 1})
}

func TestUploadZeroByteAndOneChunk(t *testing.T) {
	p, _ := newSpoolPutter(t)
	uploadRoundTrip(t, p, nil, Options{ChunkSize: 4096, Window: 4, Backoff: 1})
	p2, _ := newSpoolPutter(t)
	uploadRoundTrip(t, p2, pattern(100), Options{ChunkSize: 4096, Window: 4, Backoff: 1})
}

// TestUploadResendsAfterDroppedReplies proves chunk re-send idempotency end
// to end: replies are dropped after the spool applied the chunk, the engine
// re-sends, and the sealed content is still byte-exact.
func TestUploadResendsAfterDroppedReplies(t *testing.T) {
	p, _ := newSpoolPutter(t)
	p.dropChunkReplies = map[int64]int{0: 1, 3: 2}
	p.dropCommits = 1
	uploadRoundTrip(t, p, pattern(40_000), Options{ChunkSize: 4096, Window: 4, Retries: 4, Backoff: 1})
}
