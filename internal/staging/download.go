package staging

import (
	"context"
	"fmt"
	"hash/crc64"
	"io"
)

// Chunk is one ranged read reply: a window of the file plus the file's
// metadata at read time. Size and CRC must be identical across every chunk of
// one transfer; a difference means the file mutated mid-download and the
// engine aborts with ErrMutated instead of assembling inconsistent bytes.
type Chunk struct {
	Data []byte
	Size int64  // total file size at read time
	CRC  uint64 // whole-file crc64 at read time
}

// Source fetches one ranged chunk: up to limit bytes starting at offset. An
// offset at or past EOF returns the file metadata with no data. Reads must be
// idempotent — the engine re-issues a range after a lost reply. Wrap a
// missing file in ErrNotFound so the engine fails fast instead of retrying.
type Source func(ctx context.Context, offset, limit int64) (Chunk, error)

// Progress is the resumable state of a download: Offset bytes have been
// delivered to the writer and CRC is the running crc64 over them. The zero
// Progress starts from the beginning; the Progress returned by a failed
// Download/Resume continues it (against the same writer) without refetching
// or rehashing what already arrived.
type Progress struct {
	Offset int64
	CRC    uint64
}

// Download streams a whole file from src to w through a windowed parallel
// engine: opt.Window ranged requests are kept in flight (readahead), replies
// are reordered, and the bytes are written strictly in order — so w sees a
// plain sequential stream and no whole-file buffer ever exists. The
// whole-file checksum is folded incrementally as bytes are written and
// verified against the server-announced CRC at the end.
//
// On failure the returned Progress tells how far the writer got; pass it to
// Resume to continue. Chunk-level failures are retried opt.Retries times with
// backoff before they abort the transfer — which is what lets a download ride
// out a replica failover (the owning replica is killed and recovers
// mid-transfer) without restarting from byte zero.
func Download(ctx context.Context, src Source, w io.Writer, opt Options) (Progress, error) {
	return Resume(ctx, src, w, Progress{}, opt)
}

// Resume is Download starting from a prior Progress (its Offset bytes are
// assumed to be already in w). The whole-file CRC is still verified, because
// Progress carries the running checksum of the bytes delivered so far.
func Resume(ctx context.Context, src Source, w io.Writer, p Progress, opt Options) (Progress, error) {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The first chunk is fetched inline: it establishes the file's size and
	// whole-file CRC and surfaces not-found/authorization errors before any
	// parallelism starts.
	first, err := fetchRetry(ctx, src, p.Offset, opt)
	if err != nil {
		return p, err
	}
	size, want := first.Size, first.CRC
	if p.Offset > size {
		return p, fmt.Errorf("%w: resume offset %d beyond size %d", ErrMutated, p.Offset, size)
	}

	written, crc := p.Offset, p.CRC
	// consume folds one in-order chunk into the writer and the running CRC.
	// The progress CRC may only ever cover bytes the writer accepted — on a
	// short write exactly the delivered prefix is folded, so the returned
	// Progress still resumes correctly.
	consume := func(c Chunk, off int64) error {
		if c.Size != size || c.CRC != want {
			return fmt.Errorf("%w: size %d→%d, crc %#x→%#x", ErrMutated, size, c.Size, want, c.CRC)
		}
		expect := size - off
		if expect > opt.ChunkSize {
			expect = opt.ChunkSize
		}
		if int64(len(c.Data)) != expect {
			return fmt.Errorf("%w: chunk at %d returned %d bytes, want %d", ErrMutated, off, len(c.Data), expect)
		}
		n, err := w.Write(c.Data)
		crc = crc64.Update(crc, crcTable, c.Data[:n])
		written += int64(n)
		return err
	}
	if err := consume(first, p.Offset); err != nil {
		return Progress{Offset: written, CRC: crc}, err
	}

	// Windowed parallel body: launch up to opt.Window readahead fetches,
	// reorder replies, write in order, refill the window as it drains.
	type result struct {
		off   int64
		chunk Chunk
		err   error
	}
	results := make(chan result, opt.Window) // buffered: a cancelled engine never strands a sender
	launch := func(off int64) {
		go func() {
			c, err := fetchRetry(ctx, src, off, opt)
			results <- result{off: off, chunk: c, err: err}
		}()
	}
	nextLaunch := written
	inflight := 0
	for i := 0; i < opt.Window && nextLaunch < size; i++ {
		launch(nextLaunch)
		nextLaunch += opt.ChunkSize
		inflight++
	}
	pending := make(map[int64]Chunk, opt.Window)
	for written < size {
		var res result
		select {
		case res = <-results:
		case <-ctx.Done():
			return Progress{Offset: written, CRC: crc}, ctx.Err()
		}
		inflight--
		if res.err != nil {
			return Progress{Offset: written, CRC: crc}, res.err
		}
		pending[res.off] = res.chunk
		for {
			c, ok := pending[written]
			if !ok {
				break
			}
			delete(pending, written)
			if err := consume(c, written); err != nil {
				return Progress{Offset: written, CRC: crc}, err
			}
		}
		if nextLaunch < size {
			launch(nextLaunch)
			nextLaunch += opt.ChunkSize
			inflight++
		}
	}
	_ = inflight // remaining fetches drain into the buffered channel and are dropped
	if crc != want {
		return Progress{Offset: written, CRC: crc},
			fmt.Errorf("%w: assembled crc %#x, announced %#x", ErrChecksum, crc, want)
	}
	return Progress{Offset: written, CRC: crc}, nil
}

// fetchRetry reads one range on the shared retry policy (reads are
// idempotent; ErrNotFound is permanent and fails fast).
func fetchRetry(ctx context.Context, src Source, off int64, opt Options) (Chunk, error) {
	var c Chunk
	err := withRetry(ctx, opt, fmt.Sprintf("chunk at offset %d", off), func() error {
		var err error
		c, err = src(ctx, off, opt.ChunkSize)
		return err
	})
	if err != nil {
		return Chunk{}, err
	}
	return c, nil
}
