package staging

import (
	"encoding/json"
	"fmt"
	"hash/crc64"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"unicore/internal/core"
	"unicore/internal/sim"
	"unicore/internal/vfs"
)

// Spool is the server half of staged uploads: one per Vsite, rooted in the
// Vsite's data space next to the Xspace and Uspace trees. Every upload lives
// entirely in the file system — chunk files plus a metadata document — so a
// journaled NJS persists acknowledged chunks through the ordinary vfs
// mutation observer, and Rescan rebuilds the in-memory index byte-exactly
// from a crash-recovered file tree.
//
// Layout under the root:
//
//	<root>/<handle>/meta.json   upload metadata (owner, grid, state)
//	<root>/<handle>/c00000042   chunk 42 (fixed grid; only the last is short)
//
// A Spool is safe for concurrent use.
type Spool struct {
	mu      sync.Mutex
	fs      *vfs.FS
	root    string
	tag     string
	clock   sim.Clock
	seq     int64
	entries map[string]*spoolEntry
}

// spoolEntry mirrors one meta.json plus the derived contiguous watermark.
type spoolEntry struct {
	meta      spoolMeta
	watermark int64 // contiguous chunks received from index 0
}

// spoolMeta is the persisted metadata document of one upload.
type spoolMeta struct {
	Handle    string    `json:"handle"`
	Owner     core.DN   `json:"owner"`
	Name      string    `json:"name,omitempty"`
	ChunkSize int64     `json:"chunkSize"`
	Window    int       `json:"window"`
	Created   time.Time `json:"created"`
	Committed bool      `json:"committed,omitempty"`
	Consumed  bool      `json:"consumed,omitempty"`
	Size      int64     `json:"size,omitempty"` // sealed at commit
	CRC       uint64    `json:"crc,omitempty"`  // sealed at commit
}

// Info is the externally visible state of one spooled upload.
type Info struct {
	Handle    string
	Owner     core.DN
	Name      string
	ChunkSize int64
	Window    int
	Created   time.Time
	Committed bool
	Consumed  bool
	// Chunks is the contiguous watermark (== total chunks once committed).
	Chunks int64
	Size   int64
	CRC    uint64
}

// NewSpool creates (or reopens) a spool rooted at root on fs. tag is minted
// into every handle ("stg-<tag>-00000001") and MUST be distinct per spool
// across a whole deployment — the NJS tags each Vsite's spool with its
// replica instance plus the Vsite name, so handles resolve unambiguously
// within a multi-Vsite NJS and across the replicas of a pool. Call Rescan to
// adopt entries already present in a recovered file tree.
func NewSpool(fs *vfs.FS, root, tag string, clock sim.Clock) (*Spool, error) {
	if fs == nil {
		return nil, fmt.Errorf("staging: nil fs")
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	if err := fs.MkdirAll(root); err != nil {
		return nil, fmt.Errorf("staging: creating spool root: %w", err)
	}
	return &Spool{fs: fs, root: root, tag: tag, clock: clock, entries: make(map[string]*spoolEntry)}, nil
}

// mintLocked forms the next handle under this spool's tag.
func (s *Spool) mintLocked() string {
	s.seq++
	if s.tag == "" {
		return fmt.Sprintf("stg-%08d", s.seq)
	}
	return fmt.Sprintf("stg-%s-%08d", s.tag, s.seq)
}

// dir returns an upload's directory.
func (s *Spool) dir(handle string) string { return path.Join(s.root, handle) }

// chunkPath returns the file of chunk index.
func (s *Spool) chunkPath(handle string, index int64) string {
	return path.Join(s.dir(handle), fmt.Sprintf("c%08d", index))
}

// persistMetaLocked writes an entry's meta.json (journaled via the FS
// observer like every other mutation).
func (s *Spool) persistMetaLocked(e *spoolEntry) error {
	raw, err := json.Marshal(e.meta)
	if err != nil {
		return err
	}
	return s.fs.WriteFile(path.Join(s.dir(e.meta.Handle), "meta.json"), raw)
}

// Open begins an upload for owner and returns its handle. The requested
// chunk size and window are clamped to [1, MaxChunkSize] / [1, MaxWindow].
func (s *Spool) Open(owner core.DN, name string, chunkSize int64, window int) (Info, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize > MaxChunkSize {
		chunkSize = MaxChunkSize
	}
	if window <= 0 {
		window = DefaultWindow
	}
	if window > MaxWindow {
		window = MaxWindow
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &spoolEntry{meta: spoolMeta{
		Handle:    s.mintLocked(),
		Owner:     owner,
		Name:      name,
		ChunkSize: chunkSize,
		Window:    window,
		Created:   s.clock.Now(),
	}}
	if err := s.fs.MkdirAll(s.dir(e.meta.Handle)); err != nil {
		return Info{}, err
	}
	if err := s.persistMetaLocked(e); err != nil {
		return Info{}, err
	}
	s.entries[e.meta.Handle] = e
	return e.info(), nil
}

// lookupLocked resolves a handle with its owner check. An empty owner skips
// the check (server-internal access).
func (s *Spool) lookupLocked(owner core.DN, handle string) (*spoolEntry, error) {
	e, ok := s.entries[handle]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHandle, handle)
	}
	if owner != "" && e.meta.Owner != owner {
		return nil, fmt.Errorf("%w: %q", ErrNotOwner, handle)
	}
	return e, nil
}

// Chunk stores chunk index of an upload. The grid is strict: every chunk
// except the last must be exactly ChunkSize bytes (verified at Commit), the
// per-chunk CRC must match, and an index more than Window beyond the
// contiguous watermark is rejected as out of order. Delivery is idempotent:
// re-sending an index below the watermark (or one already buffered in the
// window) is acknowledged without rewriting, which is what makes client
// retries after lost replies safe. Returns the new contiguous watermark.
func (s *Spool) Chunk(owner core.DN, handle string, index int64, data []byte, crc uint64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.lookupLocked(owner, handle)
	if err != nil {
		return 0, err
	}
	if e.meta.Committed {
		if index < e.watermark {
			return e.watermark, nil // late re-send of a received chunk
		}
		return 0, fmt.Errorf("%w: %q", ErrCommitted, handle)
	}
	if index < 0 {
		return 0, fmt.Errorf("%w: negative index %d", ErrOutOfOrder, index)
	}
	if int64(len(data)) > e.meta.ChunkSize || len(data) == 0 {
		return 0, fmt.Errorf("staging: chunk %d of %q has %d bytes, grid is %d",
			index, handle, len(data), e.meta.ChunkSize)
	}
	if Checksum(data) != crc {
		return 0, fmt.Errorf("%w: chunk %d of %q", ErrChecksum, index, handle)
	}
	if index >= e.watermark+int64(e.meta.Window) {
		return 0, fmt.Errorf("%w: chunk %d of %q is beyond watermark %d + window %d",
			ErrOutOfOrder, index, handle, e.watermark, e.meta.Window)
	}
	p := s.chunkPath(handle, index)
	if !s.fs.Exists(p) {
		if err := s.fs.WriteFile(p, data); err != nil {
			return 0, err
		}
	}
	// Advance the watermark over every contiguously present chunk.
	for s.fs.Exists(s.chunkPath(handle, e.watermark)) {
		e.watermark++
	}
	return e.watermark, nil
}

// Commit seals an upload: the chunk sequence must be hole-free, every chunk
// except the last exactly on the grid, and the assembled content must match
// crc. Committing an already-sealed upload with the same CRC is acknowledged
// idempotently. Returns the sealed size and CRC.
func (s *Spool) Commit(owner core.DN, handle string, crc uint64) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.lookupLocked(owner, handle)
	if err != nil {
		return Info{}, err
	}
	if e.meta.Committed {
		if e.meta.CRC != crc {
			return Info{}, fmt.Errorf("%w: commit of %q announces %#x, sealed %#x",
				ErrChecksum, handle, crc, e.meta.CRC)
		}
		return e.info(), nil
	}
	// A chunk file beyond the watermark means a hole below it.
	if maxIdx, err := s.maxChunkLocked(handle); err != nil {
		return Info{}, err
	} else if maxIdx >= e.watermark {
		return Info{}, fmt.Errorf("%w: %q has chunk %d but watermark %d",
			ErrMissingChunk, handle, maxIdx, e.watermark)
	}
	var size int64
	var running uint64
	for i := int64(0); i < e.watermark; i++ {
		data, err := s.fs.ReadFile(s.chunkPath(handle, i))
		if err != nil {
			return Info{}, fmt.Errorf("%w: chunk %d of %q: %v", ErrMissingChunk, i, handle, err)
		}
		if i < e.watermark-1 && int64(len(data)) != e.meta.ChunkSize {
			return Info{}, fmt.Errorf("staging: chunk %d of %q is short (%d of %d bytes) but not last",
				i, handle, len(data), e.meta.ChunkSize)
		}
		running = crc64.Update(running, crcTable, data)
		size += int64(len(data))
	}
	if running != crc {
		return Info{}, fmt.Errorf("%w: %q assembled to %#x, commit announces %#x",
			ErrChecksum, handle, running, crc)
	}
	e.meta.Committed, e.meta.Size, e.meta.CRC = true, size, running
	if err := s.persistMetaLocked(e); err != nil {
		return Info{}, err
	}
	return e.info(), nil
}

// maxChunkLocked returns the highest chunk index present (-1 when none).
func (s *Spool) maxChunkLocked(handle string) (int64, error) {
	entries, err := s.fs.List(s.dir(handle))
	if err != nil {
		return -1, err
	}
	max := int64(-1)
	for _, fi := range entries {
		if !strings.HasPrefix(fi.Name, "c") {
			continue
		}
		idx, err := strconv.ParseInt(fi.Name[1:], 10, 64)
		if err != nil {
			continue
		}
		if idx > max {
			max = idx
		}
	}
	return max, nil
}

// Consume assembles a committed upload's content for staging into a job's
// Uspace. The entry is marked consumed (and persisted so) but kept until the
// next Sweep, which makes a crash-recovery re-dispatch of the consuming
// ImportTask idempotent.
func (s *Spool) Consume(owner core.DN, handle string) ([]byte, Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.lookupLocked(owner, handle)
	if err != nil {
		return nil, Info{}, err
	}
	if !e.meta.Committed {
		return nil, Info{}, fmt.Errorf("%w: %q", ErrNotCommitted, handle)
	}
	data := make([]byte, 0, e.meta.Size)
	for i := int64(0); i < e.watermark; i++ {
		chunk, err := s.fs.ReadFile(s.chunkPath(handle, i))
		if err != nil {
			return nil, Info{}, fmt.Errorf("%w: chunk %d of %q: %v", ErrMissingChunk, i, handle, err)
		}
		data = append(data, chunk...)
	}
	if Checksum(data) != e.meta.CRC {
		return nil, Info{}, fmt.Errorf("%w: %q no longer matches its sealed checksum", ErrChecksum, handle)
	}
	if !e.meta.Consumed {
		e.meta.Consumed = true
		if err := s.persistMetaLocked(e); err != nil {
			return nil, Info{}, err
		}
	}
	return data, e.info(), nil
}

// Stat returns an upload's state.
func (s *Spool) Stat(handle string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[handle]
	if !ok {
		return Info{}, false
	}
	return e.info(), true
}

// Handles lists the spooled uploads, sorted.
func (s *Spool) Handles() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for h := range s.entries {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Sweep garbage-collects the spool: consumed uploads go immediately, and
// uploads never consumed (abandoned half-sent, or committed but never
// consigned) go once older than ttl. Returns how many entries were removed.
func (s *Spool) Sweep(ttl time.Duration) int {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for h, e := range s.entries {
		if !e.meta.Consumed && now.Sub(e.meta.Created) <= ttl {
			continue
		}
		if err := s.fs.RemoveAll(s.dir(h)); err != nil {
			continue // keep the index entry; the next sweep retries
		}
		delete(s.entries, h)
		removed++
	}
	return removed
}

// Rescan rebuilds the in-memory index from the file tree — the recovery path:
// a journal-replayed file system carries every acknowledged chunk and
// metadata document, so a recovered NJS adopts its spool exactly as the dead
// one left it (same handles, same watermarks, no re-minted handle can
// collide).
func (s *Spool) Rescan() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.fs.List(s.root)
	if err != nil {
		return err
	}
	s.entries = make(map[string]*spoolEntry, len(entries))
	for _, fi := range entries {
		if !fi.IsDir {
			continue
		}
		raw, err := s.fs.ReadFile(path.Join(fi.Path, "meta.json"))
		if err != nil {
			// An upload whose open never reached the journal: remove the
			// orphan directory.
			_ = s.fs.RemoveAll(fi.Path)
			continue
		}
		var m spoolMeta
		if err := json.Unmarshal(raw, &m); err != nil || m.Handle != fi.Name {
			_ = s.fs.RemoveAll(fi.Path)
			continue
		}
		e := &spoolEntry{meta: m}
		for s.fs.Exists(s.chunkPath(m.Handle, e.watermark)) {
			e.watermark++
		}
		s.entries[m.Handle] = e
		if n := handleSeq(m.Handle); n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// handleSeq extracts the numeric suffix of a minted handle.
func handleSeq(handle string) int64 {
	i := strings.LastIndexByte(handle, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(handle[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// info snapshots an entry.
func (e *spoolEntry) info() Info {
	return Info{
		Handle:    e.meta.Handle,
		Owner:     e.meta.Owner,
		Name:      e.meta.Name,
		ChunkSize: e.meta.ChunkSize,
		Window:    e.meta.Window,
		Created:   e.meta.Created,
		Committed: e.meta.Committed,
		Consumed:  e.meta.Consumed,
		Chunks:    e.watermark,
		Size:      e.meta.Size,
		CRC:       e.meta.CRC,
	}
}
