package staging

import (
	"context"
	"fmt"
	"hash/crc64"
	"io"

	"unicore/internal/core"
	"unicore/internal/protocol"
)

// Putter issues the three protocol-v2 staged-upload calls against one site.
// client.Session implements it over the signed-envelope client; tests
// implement it directly against a Spool.
type Putter interface {
	// PutOpen begins an upload and returns its transfer handle.
	PutOpen(ctx context.Context, req protocol.PutOpenRequest) (protocol.PutOpenReply, error)
	// PutChunk delivers (idempotently) one chunk.
	PutChunk(ctx context.Context, req protocol.PutChunkRequest) (protocol.PutChunkReply, error)
	// PutCommit seals the upload after verifying the whole-file CRC.
	PutCommit(ctx context.Context, req protocol.PutCommitRequest) (protocol.PutCommitReply, error)
}

// Upload streams r into the spool area of a Vsite and returns the committed
// transfer handle — the value an ajo.ImportTask references as Source.Staged,
// so the input travels in CRC-checked chunks ahead of the AJO instead of
// inline inside the consign envelope.
//
// Chunks are read sequentially from r and sent in window-sized parallel
// batches (the server accepts up to the negotiated window beyond its
// contiguous watermark, so no chunk in a batch can be out of order). Failed
// sends are retried — chunk delivery is idempotent, so a lost reply is cured
// by re-sending the same chunk. The whole-file CRC is folded while reading
// and sealed into the commit.
func Upload(ctx context.Context, p Putter, vsite core.Vsite, name string, r io.Reader, opt Options) (string, protocol.PutCommitReply, error) {
	opt = opt.withDefaults()
	open, err := p.PutOpen(ctx, protocol.PutOpenRequest{
		Vsite: vsite, Name: name, ChunkSize: opt.ChunkSize, Window: opt.Window,
	})
	if err != nil {
		return "", protocol.PutCommitReply{}, err
	}
	chunkSize, window := open.ChunkSize, open.Window
	if chunkSize <= 0 || window <= 0 {
		return open.Handle, protocol.PutCommitReply{},
			fmt.Errorf("staging: server opened %q with chunk %d / window %d", open.Handle, chunkSize, window)
	}

	var crc uint64
	index := int64(0)
	buf := make([]byte, chunkSize)
	eof := false
	for !eof {
		// Read one window-sized batch of chunks off the sequential reader.
		type piece struct {
			index int64
			data  []byte
		}
		var batch []piece
		for len(batch) < window {
			n, err := io.ReadFull(r, buf)
			if n > 0 {
				data := append([]byte(nil), buf[:n]...)
				crc = crc64.Update(crc, crcTable, data)
				batch = append(batch, piece{index: index, data: data})
				index++
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				eof = true
				break
			}
			if err != nil {
				return open.Handle, protocol.PutCommitReply{}, fmt.Errorf("staging: reading upload: %w", err)
			}
		}
		// Send the batch in parallel; every chunk stays within the server's
		// window because the previous batch is fully acknowledged.
		errs := make(chan error, len(batch))
		for _, pc := range batch {
			go func(pc piece) {
				errs <- putChunkRetry(ctx, p, protocol.PutChunkRequest{
					Handle: open.Handle, Index: pc.index, Data: pc.data, CRC: Checksum(pc.data),
				}, opt)
			}(pc)
		}
		for range batch {
			if err := <-errs; err != nil {
				return open.Handle, protocol.PutCommitReply{}, err
			}
		}
	}

	commit, err := putCommitRetry(ctx, p, protocol.PutCommitRequest{Handle: open.Handle, CRC: crc}, opt)
	if err != nil {
		return open.Handle, protocol.PutCommitReply{}, err
	}
	return open.Handle, commit, nil
}

// putChunkRetry delivers one chunk on the shared retry policy (re-sends are
// idempotent).
func putChunkRetry(ctx context.Context, p Putter, req protocol.PutChunkRequest, opt Options) error {
	return withRetry(ctx, opt, fmt.Sprintf("chunk %d of %s", req.Index, req.Handle), func() error {
		_, err := p.PutChunk(ctx, req)
		return err
	})
}

// putCommitRetry seals the upload on the shared retry policy (committing an
// already-committed upload with the same CRC is acknowledged idempotently).
func putCommitRetry(ctx context.Context, p Putter, req protocol.PutCommitRequest, opt Options) (protocol.PutCommitReply, error) {
	var reply protocol.PutCommitReply
	err := withRetry(ctx, opt, fmt.Sprintf("commit of %s", req.Handle), func() error {
		var err error
		reply, err = p.PutCommit(ctx, req)
		return err
	})
	if err != nil {
		return protocol.PutCommitReply{}, err
	}
	return reply, nil
}
