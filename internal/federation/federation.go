// Package federation peers gateways into a grid — the step beyond one
// gateway fronting one Usite that the paper names as the goal of the
// follow-on project (§6): UNICORE sites run by different administrations
// cooperating so that "the best system for an application" may sit behind
// somebody else's gateway.
//
// The design keeps the paper's trust model intact. Peered gateways speak
// the same signed-envelope protocol as everything else, authenticating each
// other with server-role credentials under the shared CA; no new wire
// security is introduced. Three mechanisms ride on top:
//
//   - Gossip: each gateway periodically pushes its advertisement — resource
//     pages, live Replicas/Healthy load, and an accounting charge-back
//     summary, stamped with a monotonically increasing epoch — to its
//     configured peers (MsgFedAdvertise, protocol v2) and ingests the
//     replies. Ads relay transitively with a hop count, so a grid does not
//     need a full mesh of static peer entries.
//   - Placement: a federation-aware broker pass fuses the local catalog
//     with every fresh peer advertisement, cost-weighting remote sites by
//     hop distance and accounting usage, so Choose may return a target at
//     a peer Usite.
//   - Forwarding: a consign placed remotely is re-sealed toward the peer
//     gateway under the forwarding gateway's server identity, preserving
//     the durable-ack contract end to end — the origin acks only with the
//     remote NJS's journaled ack, and consign IDs are namespaced per origin
//     so a client retry converges on the same remote job.
//
// Staleness is judged with the receiver's clock, never the sender's stamp:
// administrative domains do not share a clock, and a peer that stops
// gossiping must drop out of placement no matter what its last ad claimed.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"unicore/internal/accounting"
	"unicore/internal/ajo"
	"unicore/internal/broker"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
)

// DefaultStaleAfter is how long a peer advertisement stays placeable
// without renewal.
const DefaultStaleAfter = 5 * time.Minute

// hopCost is the placement penalty per gateway hop, in broker site-cost
// units (see broker.SetSiteCost): forwarding is cheap but not free, so a
// local Vsite wins ties and a transitively-learned site needs a real
// capacity advantage to attract work.
const hopCost = 0.25

// chargeSoftCap scales the accounting charge-back weight: a peer that has
// already absorbed this many charge units (GFlop-seconds of nominal
// capacity) carries half the maximum usage penalty. The penalty saturates
// below one site-cost unit, so charge-back biases placement without ever
// starving a site.
const chargeSoftCap = 1000.0

// Errors reported by the federation layer.
var (
	ErrNotFederated = errors.New("federation: gateway has no federation configured")
	ErrUnknownPeer  = errors.New("federation: target Usite is not a known peer")
)

// Config assembles a gateway's federation half.
type Config struct {
	// Usite and URL identify this gateway in its own advertisements; URL is
	// what peers dial to forward work here.
	Usite core.Usite
	URL   string
	// Client is a server-credentialled protocol client for gossip and
	// forwarding. Peer URLs learned from ads are registered into its
	// registry, so transitive peers become directly dialable.
	Client *protocol.Client
	// Clock drives the gossip loop and staleness judgments.
	Clock sim.Scheduler
	// StaleAfter bounds how long an un-renewed ad stays placeable
	// (default DefaultStaleAfter).
	StaleAfter time.Duration
	// Policy is the ranking policy of the placement broker.
	Policy broker.Policy
	// Usage supplies the local charge-back summary carried in self-ads.
	// Nil means no accounting figures are advertised.
	Usage func() accounting.Summary
}

// peerState is everything known about one peer gateway.
type peerState struct {
	url    string
	direct bool // statically configured: a gossip target
	have   bool
	ad     protocol.FedAd
	seen   time.Time // local receipt clock, the staleness basis
}

// Placement records where a forwarded job went and who may reach through
// to it. Job-scoped calls (poll, outcome, control, fetch, events) for a
// remotely-placed job are authorized at the origin against this record,
// then relayed under the origin gateway's server identity.
type Placement struct {
	Peer  core.Usite
	Owner core.DN
}

// StagePin records that a staged-upload handle lives in a peer's spool:
// later chunk/commit calls relay there, and a consign referencing the
// handle must be placed at that peer.
type StagePin struct {
	Peer  core.Usite
	Owner core.DN
}

// Federation is one gateway's membership in a multi-gateway grid.
type Federation struct {
	cfg Config
	reg *telemetry.Registry

	// pages and loads read the local serving tier; the gateway binds them
	// (BindLocal) so this package never imports the server stack.
	localMu sync.Mutex
	pages   func() []resources.Page
	loads   func() map[string]protocol.VsiteLoad

	mu        sync.Mutex
	epoch     uint64
	peers     map[core.Usite]*peerState
	placed    map[core.JobID]Placement
	stagePins map[string]StagePin
	timer     sim.Timer
	stopped   bool
}

// New builds a federation membership. It starts idle: add peers, bind the
// local tier, then Start the gossip loop (or drive GossipOnce manually).
func New(cfg Config) (*Federation, error) {
	if cfg.Usite == "" {
		return nil, errors.New("federation: empty usite")
	}
	if cfg.Client == nil {
		return nil, errors.New("federation: nil protocol client")
	}
	if cfg.Clock == nil {
		return nil, errors.New("federation: nil clock")
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = DefaultStaleAfter
	}
	f := &Federation{
		cfg:       cfg,
		reg:       telemetry.New("federation/" + string(cfg.Usite)),
		peers:     make(map[core.Usite]*peerState),
		placed:    make(map[core.JobID]Placement),
		stagePins: make(map[string]StagePin),
	}
	f.reg.SetNow(cfg.Clock.Now)
	return f, nil
}

// Registry exposes the federation's telemetry (fed_advertise_total,
// fed_forward_total, fed_forward_ack_seconds, fed_peer_stale).
func (f *Federation) Registry() *telemetry.Registry { return f.reg }

// Usite returns the local site.
func (f *Federation) Usite() core.Usite { return f.cfg.Usite }

// BindLocal wires the local serving tier in: pages lists the local resource
// catalog, loads the per-Vsite live load. The gateway calls this when the
// federation is attached.
func (f *Federation) BindLocal(pages func() []resources.Page, loads func() map[string]protocol.VsiteLoad) {
	f.localMu.Lock()
	defer f.localMu.Unlock()
	f.pages = pages
	f.loads = loads
}

// AddPeer statically configures a peer gateway (topology `peers` block or
// -peer flag). Direct peers are gossip targets; everything else is learned.
func (f *Federation) AddPeer(u core.Usite, url string) error {
	if u == "" || url == "" {
		return errors.New("federation: peer needs a usite and a url")
	}
	if u == f.cfg.Usite {
		return fmt.Errorf("federation: %s cannot peer with itself", u)
	}
	f.mu.Lock()
	ps := f.peers[u]
	if ps == nil {
		ps = &peerState{}
		f.peers[u] = ps
	}
	ps.url = url
	ps.direct = true
	f.mu.Unlock()
	f.cfg.Client.Registry().Add(u, url)
	f.updateStaleGauge()
	return nil
}

// Peers lists the statically configured (direct) peers, sorted.
func (f *Federation) Peers() []core.Usite {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []core.Usite
	for u, ps := range f.peers {
		if ps.direct {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SelfAd builds this gateway's advertisement: a fresh epoch over the local
// pages, loads, and charge-back summary.
func (f *Federation) SelfAd() protocol.FedAd {
	f.localMu.Lock()
	pages, loads := f.pages, f.loads
	f.localMu.Unlock()
	f.mu.Lock()
	f.epoch++
	ad := protocol.FedAd{
		Origin: f.cfg.Usite,
		URL:    f.cfg.URL,
		Epoch:  f.epoch,
		Stamp:  f.cfg.Clock.Now(),
	}
	f.mu.Unlock()
	if pages != nil {
		for _, p := range pages() {
			if der, err := p.MarshalASN1(); err == nil {
				ad.PagesDER = append(ad.PagesDER, der)
			}
		}
	}
	if loads != nil {
		ad.Loads = loads()
	}
	if f.cfg.Usage != nil {
		sum := f.cfg.Usage()
		ad.Jobs = sum.Jobs
		ad.Charge = sum.Charge
	}
	return ad
}

// fresh reports whether a peer's ad is recent enough to act on.
// Callers hold f.mu.
func (f *Federation) freshLocked(ps *peerState) bool {
	return ps.have && f.cfg.Clock.Now().Sub(ps.seen) <= f.cfg.StaleAfter
}

// KnownAds is the gossip payload: the self-ad followed by every fresh peer
// ad this gateway holds, in stable origin order.
func (f *Federation) KnownAds() []protocol.FedAd {
	ads := []protocol.FedAd{f.SelfAd()}
	f.mu.Lock()
	var origins []core.Usite
	for u := range f.peers {
		origins = append(origins, u)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, u := range origins {
		if ps := f.peers[u]; f.freshLocked(ps) {
			ads = append(ads, ps.ad)
		}
	}
	f.mu.Unlock()
	return ads
}

// ingest folds one received advertisement into the peer table. The hop
// count increments on receipt — it measures distance from the origin to
// the holder of the table. A newer epoch always wins; the same epoch via a
// shorter relay path wins too.
func (f *Federation) ingest(ad protocol.FedAd) {
	if ad.Origin == "" || ad.Origin == f.cfg.Usite {
		return
	}
	ad.Hops++
	f.mu.Lock()
	ps := f.peers[ad.Origin]
	if ps == nil {
		ps = &peerState{}
		f.peers[ad.Origin] = ps
	}
	if ps.have && (ad.Epoch < ps.ad.Epoch || (ad.Epoch == ps.ad.Epoch && ad.Hops >= ps.ad.Hops)) {
		// Not newer and not a shorter path — but the origin is alive
		// somewhere behind this relay, so the renewal still counts against
		// staleness when the epoch matches.
		if ad.Epoch == ps.ad.Epoch {
			ps.seen = f.cfg.Clock.Now()
		}
		f.mu.Unlock()
		return
	}
	ps.ad = ad
	ps.have = true
	ps.seen = f.cfg.Clock.Now()
	if ad.URL != "" && ps.url == "" {
		ps.url = ad.URL
	}
	url := ps.url
	f.mu.Unlock()
	if url != "" {
		// Learned peers become directly dialable: forwarding never needs to
		// route a consign through an intermediate gateway.
		f.cfg.Client.Registry().Add(ad.Origin, url)
	}
}

// HandleAdvertise serves one inbound gossip exchange (the gateway's
// MsgFedAdvertise dispatch): ingest the sender's view, answer with ours.
func (f *Federation) HandleAdvertise(req protocol.FedAdvertiseRequest) protocol.FedAdvertiseReply {
	for _, ad := range req.Ads {
		f.ingest(ad)
	}
	f.reg.Counter("fed_advertise_total", "peer", string(req.From), "dir", "in").Inc()
	f.updateStaleGauge()
	return protocol.FedAdvertiseReply{Ads: f.KnownAds()}
}

// GossipOnce pushes this gateway's view to every direct peer and ingests
// their replies. Per-peer failures are collected, not fatal: an unreachable
// peer merely goes stale.
func (f *Federation) GossipOnce(ctx context.Context) error {
	peers := f.Peers()
	var errs []error
	for _, u := range peers {
		ads := f.KnownAds()
		var reply protocol.FedAdvertiseReply
		err := f.cfg.Client.Call(ctx, u, protocol.MsgFedAdvertise,
			protocol.FedAdvertiseRequest{From: f.cfg.Usite, Ads: ads}, &reply)
		if err != nil {
			errs = append(errs, fmt.Errorf("federation: gossip to %s: %w", u, err))
			continue
		}
		f.reg.Counter("fed_advertise_total", "peer", string(u), "dir", "out").Inc()
		for _, ad := range reply.Ads {
			f.ingest(ad)
		}
	}
	f.updateStaleGauge()
	return errors.Join(errs...)
}

// updateStaleGauge recounts direct peers whose ads have expired (or never
// arrived) — the fed_peer_stale gauge an operator alerts on.
func (f *Federation) updateStaleGauge() {
	f.mu.Lock()
	var stale int64
	for _, ps := range f.peers {
		if ps.direct && !f.freshLocked(ps) {
			stale++
		}
	}
	f.mu.Unlock()
	f.reg.Gauge("fed_peer_stale").Set(stale)
}

// Start arms the periodic gossip loop on the federation's clock.
func (f *Federation) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stopped = false
	if f.timer != nil {
		return
	}
	f.timer = f.cfg.Clock.AfterFunc(interval, func() { f.gossipTick(interval) })
}

// gossipTick runs one gossip round and re-arms.
func (f *Federation) gossipTick(interval time.Duration) {
	f.mu.Lock()
	if f.stopped {
		f.timer = nil
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	_ = f.GossipOnce(context.Background())
	f.mu.Lock()
	if f.stopped {
		f.timer = nil
	} else {
		f.timer = f.cfg.Clock.AfterFunc(interval, func() { f.gossipTick(interval) })
	}
	f.mu.Unlock()
}

// Stop disarms the gossip loop.
func (f *Federation) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stopped = true
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
}

// Place ranks every placeable Vsite — local ones plus those in fresh peer
// advertisements — for the request. Remote candidates carry an additive
// site cost of hopCost per gateway hop plus a saturating charge-back
// penalty, so the local site wins ties and heavily-charged peers shed work.
func (f *Federation) Place(req resources.Request, software ...resources.Software) ([]broker.Candidate, error) {
	b := broker.New(f.cfg.Policy)
	f.localMu.Lock()
	pages, loads := f.pages, f.loads
	f.localMu.Unlock()
	if pages != nil {
		for _, p := range pages() {
			page := p
			b.AddPage(&page)
		}
	}
	if loads != nil {
		for vs, vl := range loads() {
			b.SetLoad(core.Target{Usite: f.cfg.Usite, Vsite: core.Vsite(vs)}, loadOf(vl))
		}
	}
	f.mu.Lock()
	for u, ps := range f.peers {
		if !f.freshLocked(ps) {
			continue
		}
		for _, der := range ps.ad.PagesDER {
			if page, err := resources.UnmarshalASN1(der); err == nil && page.Target.Usite == u {
				b.AddPage(page)
			}
		}
		for vs, vl := range ps.ad.Loads {
			b.SetLoad(core.Target{Usite: u, Vsite: core.Vsite(vs)}, loadOf(vl))
		}
		b.SetSiteCost(u, hopCost*float64(ps.ad.Hops)+ps.ad.Charge/(ps.ad.Charge+chargeSoftCap))
	}
	f.mu.Unlock()
	return b.Candidates(req, software...)
}

// loadOf converts a wire load report into the broker's form.
func loadOf(vl protocol.VsiteLoad) broker.Load {
	return broker.Load{
		Load: vl.Load, Pending: vl.Pending, Inflight: vl.Inflight,
		Replicas: vl.Replicas, Healthy: vl.Healthy,
	}
}

// JobSite resolves which known site minted a job ID (IDs are prefixed with
// the accepting NJS's Usite). It returns "" for local or unrecognized IDs;
// the longest matching site name wins, so hyphenated Usites stay
// unambiguous among the sites this gateway knows.
func (f *Federation) JobSite(id core.JobID) core.Usite {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best core.Usite
	match := func(u core.Usite) {
		if strings.HasPrefix(string(id), string(u)+"-") && len(u) > len(best) {
			best = u
		}
	}
	match(f.cfg.Usite)
	for u := range f.peers {
		match(u)
	}
	if best == f.cfg.Usite {
		return ""
	}
	return best
}

// VsiteHost resolves which fresh peer advertises a Vsite by that name. The
// answer must be unique — with two peers advertising the same Vsite name
// the caller has to target by full Usite/Vsite instead.
func (f *Federation) VsiteHost(v core.Vsite) (core.Usite, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var found core.Usite
	for u, ps := range f.peers {
		if !f.freshLocked(ps) {
			continue
		}
		if _, ok := ps.ad.Loads[string(v)]; !ok {
			continue
		}
		if found != "" {
			return "", fmt.Errorf("federation: Vsite %q is advertised by both %s and %s — target it as USITE/VSITE", v, found, u)
		}
		found = u
	}
	if found == "" {
		return "", fmt.Errorf("%w: no fresh peer advertises Vsite %q", ErrUnknownPeer, v)
	}
	return found, nil
}

// NamespaceConsignID prefixes a client-chosen consign ID with the
// forwarding origin, so dedupe keys from different origins can never
// collide at the remote NJS while a retry from the same origin still
// converges on the same job.
func NamespaceConsignID(origin core.Usite, id string) string {
	if id == "" {
		return ""
	}
	return fmt.Sprintf("fed/%s/%s", origin, id)
}

// Forward consigns a job to the peer gateway fronting target t, under this
// gateway's server identity and on behalf of owner. The returned reply is
// the remote site's own ack — Accepted only once the remote NJS journaled
// the admission — so the origin's durable-ack promise survives the extra
// hop. A transport failure returns an error and the origin must answer
// not-accepted: the client's retry re-forwards under the same namespaced
// consign ID and converges on the remote NJS's dedupe.
func (f *Federation) Forward(ctx context.Context, owner core.DN, consignID string, job *ajo.AbstractJob, t core.Target) (protocol.ConsignReply, error) {
	if t.Usite == "" || t.Usite == f.cfg.Usite {
		return protocol.ConsignReply{}, fmt.Errorf("federation: Forward wants a remote target, got %q", t)
	}
	f.mu.Lock()
	_, known := f.peers[t.Usite]
	f.mu.Unlock()
	if !known {
		return protocol.ConsignReply{}, fmt.Errorf("%w: %s", ErrUnknownPeer, t.Usite)
	}
	job.UserDN = owner
	broker.Retarget(job, t)
	raw, err := ajo.Marshal(job)
	if err != nil {
		return protocol.ConsignReply{}, fmt.Errorf("federation: encoding forwarded job: %w", err)
	}
	var reply protocol.ConsignReply
	start := time.Now()
	err = f.cfg.Client.Call(ctx, t.Usite, protocol.MsgConsign, protocol.ConsignRequest{
		ConsignID: NamespaceConsignID(f.cfg.Usite, consignID),
		AJO:       raw,
	}, &reply)
	if err != nil {
		f.reg.Counter("fed_forward_errors_total", "peer", string(t.Usite)).Inc()
		return protocol.ConsignReply{}, fmt.Errorf("federation: forwarding to %s: %w", t.Usite, err)
	}
	f.reg.Counter("fed_forward_total", "peer", string(t.Usite)).Inc()
	f.reg.Histogram("fed_forward_ack_seconds", telemetry.ScaleSeconds).Observe(time.Since(start).Seconds())
	if reply.Job != "" {
		// Even a not-accepted reply that names a job means the remote NJS
		// admitted it (durability unconfirmed); record the placement so
		// reconciliation by ID routes through this gateway.
		f.mu.Lock()
		f.placed[reply.Job] = Placement{Peer: t.Usite, Owner: owner}
		f.mu.Unlock()
	}
	return reply, nil
}

// Placement reports where a job forwarded through this gateway landed.
func (f *Federation) Placement(id core.JobID) (Placement, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.placed[id]
	return p, ok
}

// Relay performs one job-scoped protocol call against a peer gateway on
// behalf of an already-authorized caller.
func (f *Federation) Relay(ctx context.Context, peer core.Usite, t protocol.MsgType, payload, replyOut any) error {
	return f.cfg.Client.Call(ctx, peer, t, payload, replyOut)
}

// PinStage records that a staged-upload handle lives at a peer.
func (f *Federation) PinStage(handle string, peer core.Usite, owner core.DN) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stagePins[handle] = StagePin{Peer: peer, Owner: owner}
}

// StagePeer looks a staged-upload handle's pin up.
func (f *Federation) StagePeer(handle string) (StagePin, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.stagePins[handle]
	return p, ok
}

// StagedSite resolves the placement constraint a job's staged-upload
// handles impose: "" means every referenced handle (if any) is local, a
// Usite means every handle is pinned to that one peer, and an error means
// the handles straddle sites — such a job cannot run anywhere.
func (f *Federation) StagedSite(job *ajo.AbstractJob) (core.Usite, error) {
	var site core.Usite
	local := false
	for _, h := range job.StagedHandles() {
		pin, ok := f.StagePeer(h)
		if !ok {
			local = true
			continue
		}
		if site == "" {
			site = pin.Peer
		} else if site != pin.Peer {
			return "", fmt.Errorf("federation: staged inputs straddle %s and %s", site, pin.Peer)
		}
	}
	if local && site != "" {
		return "", fmt.Errorf("federation: staged inputs straddle %s and %s", f.cfg.Usite, site)
	}
	return site, nil
}
