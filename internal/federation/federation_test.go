package federation

// Unit coverage for the gossip state machine: epoch precedence, hop-count
// preference, receiver-clock staleness, Vsite host resolution, consign-ID
// namespacing, and the staged-input placement constraint.

import (
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/sim"
)

// newFed builds an idle federation over an empty in-process network — enough
// for everything that does not actually dial a peer.
func newFed(t *testing.T, clock *sim.VirtualClock) *Federation {
	t.Helper()
	ca, err := pki.NewAuthority("Test-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	cred, err := ca.IssueServer("gateway.fzj", "gw.fzj.unicore")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	f, err := New(Config{
		Usite:  "FZJ",
		URL:    "https://gw.fzj.unicore",
		Client: protocol.NewClient(protocol.NewInProc(), cred, ca, protocol.NewRegistry()),
		Clock:  clock,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// ad builds a peer advertisement as it would arrive on the wire.
func ad(origin core.Usite, epoch uint64, hops int, vsites ...string) protocol.FedAd {
	a := protocol.FedAd{
		Origin: origin,
		URL:    "https://gw." + strings.ToLower(string(origin)) + ".unicore",
		Epoch:  epoch,
		Hops:   hops,
		Loads:  map[string]protocol.VsiteLoad{},
	}
	for _, v := range vsites {
		a.Loads[v] = protocol.VsiteLoad{Replicas: 1, Healthy: 1}
	}
	return a
}

// peerAds returns the non-self ads a gossip reply would carry, keyed by
// origin.
func peerAds(f *Federation) map[core.Usite]protocol.FedAd {
	out := map[core.Usite]protocol.FedAd{}
	for _, a := range f.KnownAds() {
		if a.Origin != f.Usite() {
			out[a.Origin] = a
		}
	}
	return out
}

func TestIngestPrefersNewerEpochAndShorterPath(t *testing.T) {
	clock := sim.NewVirtualClock()
	f := newFed(t, clock)
	f.HandleAdvertise(protocol.FedAdvertiseRequest{From: "DWD", Ads: []protocol.FedAd{
		ad("DWD", 5, 0, "SX4"),
	}})
	got := peerAds(f)["DWD"]
	if got.Epoch != 5 || got.Hops != 1 {
		t.Fatalf("after direct ad: epoch %d hops %d, want 5/1", got.Epoch, got.Hops)
	}

	// An older epoch never replaces a newer one, whatever the path.
	f.HandleAdvertise(protocol.FedAdvertiseRequest{From: "LRZ", Ads: []protocol.FedAd{
		ad("DWD", 4, 0, "SX4", "GHOST"),
	}})
	if got := peerAds(f)["DWD"]; got.Epoch != 5 || len(got.Loads) != 1 {
		t.Fatalf("stale epoch overwrote: %+v", got)
	}

	// The same epoch through a longer relay path loses too...
	f.HandleAdvertise(protocol.FedAdvertiseRequest{From: "LRZ", Ads: []protocol.FedAd{
		ad("DWD", 5, 3, "SX4", "GHOST"),
	}})
	if got := peerAds(f)["DWD"]; got.Hops != 1 || len(got.Loads) != 1 {
		t.Fatalf("longer path overwrote: %+v", got)
	}

	// ...but a newer epoch wins even through more hops.
	f.HandleAdvertise(protocol.FedAdvertiseRequest{From: "LRZ", Ads: []protocol.FedAd{
		ad("DWD", 6, 2, "SX4", "VEC"),
	}})
	if got := peerAds(f)["DWD"]; got.Epoch != 6 || got.Hops != 3 || len(got.Loads) != 2 {
		t.Fatalf("newer epoch did not win: %+v", got)
	}
}

func TestStalenessJudgedByReceiverClock(t *testing.T) {
	clock := sim.NewVirtualClock()
	f := newFed(t, clock)
	// A peer whose ad claims a far-future stamp still goes stale on the
	// receiver's clock: sender clocks are not trusted.
	future := ad("DWD", 1, 0, "SX4")
	future.Stamp = clock.Now().Add(24 * time.Hour)
	f.HandleAdvertise(protocol.FedAdvertiseRequest{From: "DWD", Ads: []protocol.FedAd{future}})
	if _, ok := peerAds(f)["DWD"]; !ok {
		t.Fatal("fresh ad missing from KnownAds")
	}
	clock.Advance(DefaultStaleAfter + time.Second)
	if _, ok := peerAds(f)["DWD"]; ok {
		t.Fatal("expired ad still in KnownAds")
	}
	if _, err := f.VsiteHost("SX4"); err == nil {
		t.Fatal("VsiteHost resolved through a stale ad")
	}

	// A same-epoch renewal (the origin is alive behind a relay) un-stales it.
	f.HandleAdvertise(protocol.FedAdvertiseRequest{From: "LRZ", Ads: []protocol.FedAd{
		ad("DWD", 1, 2, "SX4"),
	}})
	if _, ok := peerAds(f)["DWD"]; !ok {
		t.Fatal("renewed ad still stale")
	}
}

func TestVsiteHostAmbiguity(t *testing.T) {
	clock := sim.NewVirtualClock()
	f := newFed(t, clock)
	f.HandleAdvertise(protocol.FedAdvertiseRequest{From: "DWD", Ads: []protocol.FedAd{
		ad("DWD", 1, 0, "SX4"),
		ad("RUS", 1, 1, "SX4", "VPP"),
	}})
	if _, err := f.VsiteHost("SX4"); err == nil {
		t.Fatal("ambiguous Vsite resolved")
	}
	u, err := f.VsiteHost("VPP")
	if err != nil || u != "RUS" {
		t.Fatalf("VsiteHost(VPP) = %s, %v; want RUS", u, err)
	}
	if _, err := f.VsiteHost("NONE"); err == nil {
		t.Fatal("unknown Vsite resolved")
	}
}

func TestJobSiteLongestPrefix(t *testing.T) {
	clock := sim.NewVirtualClock()
	f := newFed(t, clock)
	if err := f.AddPeer("DWD", "https://gw.dwd.unicore"); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
	if err := f.AddPeer("DWD-WEST", "https://gw.dwd-west.unicore"); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
	cases := map[core.JobID]core.Usite{
		"DWD-000001":      "DWD",
		"DWD-WEST-000001": "DWD-WEST",
		"FZJ-000001":      "", // local
		"ZIB-000001":      "", // unknown
	}
	for id, want := range cases {
		if got := f.JobSite(id); got != want {
			t.Fatalf("JobSite(%s) = %q, want %q", id, got, want)
		}
	}
}

func TestNamespaceConsignID(t *testing.T) {
	if got := NamespaceConsignID("FZJ", "abc"); got != "fed/FZJ/abc" {
		t.Fatalf("NamespaceConsignID = %q", got)
	}
	if got := NamespaceConsignID("FZJ", ""); got != "" {
		t.Fatalf("empty consign ID namespaced to %q — dedupe would engage on no-ID consigns", got)
	}
}

func TestStagedSiteConstraint(t *testing.T) {
	clock := sim.NewVirtualClock()
	f := newFed(t, clock)
	f.PinStage("h-dwd-1", "DWD", "CN=U")
	f.PinStage("h-dwd-2", "DWD", "CN=U")
	f.PinStage("h-rus", "RUS", "CN=U")

	jobWith := func(handles ...string) *ajo.AbstractJob {
		j := &ajo.AbstractJob{Target: core.Target{Usite: "FZJ", Vsite: "T3E"}}
		for i, h := range handles {
			j.Actions = append(j.Actions, &ajo.ImportTask{
				Header: ajo.Header{ActionID: ajo.ActionID("imp" + string(rune('a'+i)))},
				Source: ajo.ImportSource{Staged: h},
				To:     "in.dat",
			})
		}
		return j
	}

	if s, err := f.StagedSite(jobWith()); err != nil || s != "" {
		t.Fatalf("no handles: %q, %v", s, err)
	}
	if s, err := f.StagedSite(jobWith("local-handle")); err != nil || s != "" {
		t.Fatalf("local handle: %q, %v", s, err)
	}
	if s, err := f.StagedSite(jobWith("h-dwd-1", "h-dwd-2")); err != nil || s != "DWD" {
		t.Fatalf("one peer: %q, %v", s, err)
	}
	if _, err := f.StagedSite(jobWith("h-dwd-1", "h-rus")); err == nil {
		t.Fatal("two peers accepted")
	}
	if _, err := f.StagedSite(jobWith("h-dwd-1", "local-handle")); err == nil {
		t.Fatal("peer+local straddle accepted")
	}
}

func TestSelfAdEpochsIncrease(t *testing.T) {
	clock := sim.NewVirtualClock()
	f := newFed(t, clock)
	a, b := f.SelfAd(), f.SelfAd()
	if b.Epoch <= a.Epoch {
		t.Fatalf("epochs not increasing: %d then %d", a.Epoch, b.Epoch)
	}
	if a.Origin != "FZJ" || a.Hops != 0 {
		t.Fatalf("self ad wrong: %+v", a)
	}
}
