package shell

import (
	"strings"
	"testing"
	"time"

	"unicore/internal/sim"
	"unicore/internal/vfs"
)

func newCtx(t *testing.T) *Ctx {
	t.Helper()
	fs := vfs.New(sim.NewVirtualClock())
	if err := fs.MkdirAll("/job"); err != nil {
		t.Fatal(err)
	}
	return &Ctx{FS: fs, Cwd: "/job"}
}

func run(t *testing.T, ctx *Ctx, script string) Result {
	t.Helper()
	return Run(ctx, script)
}

func TestEchoAndExit(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "echo hello world\nexit 0\necho unreachable")
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d, stderr=%s", res.ExitCode, res.Stderr)
	}
	if res.Stdout != "hello world\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestExitCodePropagates(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "exit 3")
	if res.ExitCode != 3 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestShErrorStopsScript(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "fail broken\necho after")
	if res.ExitCode != 1 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	if strings.Contains(res.Stdout, "after") {
		t.Fatal("script continued after failure (want sh -e semantics)")
	}
	if !strings.Contains(res.Stderr, "broken") {
		t.Fatalf("stderr = %q", res.Stderr)
	}
}

func TestVariablesAndExpansion(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "NAME=world\necho hello $NAME and ${NAME}!\necho $UNSET-")
	if res.Stdout != "hello world and world!\n-\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestQuoting(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, `echo 'single $X quoted' plain`)
	// Note: the interpreter does not expand inside quotes removal — quotes
	// only group words; $ expansion happens after tokenisation.
	if !strings.Contains(res.Stdout, "single") || !strings.Contains(res.Stdout, "quoted") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestRedirections(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "echo first > out.txt\necho second >> out.txt\ncat out.txt")
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
	}
	if res.Stdout != "first\nsecond\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	data, err := ctx.FS.ReadFile("/job/out.txt")
	if err != nil || string(data) != "first\nsecond\n" {
		t.Fatalf("file = %q, %v", data, err)
	}
}

func TestStdinRedirect(t *testing.T) {
	ctx := newCtx(t)
	_ = ctx.FS.WriteFile("/job/in.txt", []byte("input data"))
	res := run(t, ctx, "cat < in.txt")
	if res.Stdout != "input data" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestAndOrChains(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "true && echo yes\nfalse || echo fallback\nfalse && echo skipped || echo both")
	want := "yes\nfallback\nboth\n"
	if res.Stdout != want {
		t.Fatalf("stdout = %q, want %q", res.Stdout, want)
	}
}

func TestSemicolonSequence(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "echo a; echo b")
	if res.Stdout != "a\nb\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestCommentsAndDirectivesIgnored(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "# comment\n#QSUB -l mpp_p=64\n!SIM directive\necho ran")
	if res.Stdout != "ran\n" || res.ExitCode != 0 {
		t.Fatalf("stdout=%q exit=%d", res.Stdout, res.ExitCode)
	}
}

func TestFileUtilities(t *testing.T) {
	ctx := newCtx(t)
	script := `
mkdir -p sub/deep
echo data > sub/f.txt
cp sub/f.txt sub/deep/g.txt
mv sub/deep/g.txt sub/deep/h.txt
test -f sub/deep/h.txt
test -d sub/deep
touch empty.txt
test -f empty.txt
test -s sub/f.txt
rm sub/f.txt
rm -r sub
ls
`
	res := run(t, ctx, script)
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
	}
	if res.Stdout != "empty.txt\n" {
		t.Fatalf("ls output = %q", res.Stdout)
	}
}

func TestTestFailuresStopScript(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "test -f missing.txt\necho unreachable")
	if res.ExitCode != 1 || strings.Contains(res.Stdout, "unreachable") {
		t.Fatalf("exit=%d stdout=%q", res.ExitCode, res.Stdout)
	}
}

func TestStringTest(t *testing.T) {
	ctx := newCtx(t)
	if res := run(t, ctx, "X=a\ntest $X = a"); res.ExitCode != 0 {
		t.Fatalf("eq test failed: %d", res.ExitCode)
	}
	ctx2 := newCtx(t)
	if res := run(t, ctx2, "test a != a"); res.ExitCode != 1 {
		t.Fatalf("neq test = %d", res.ExitCode)
	}
}

func TestCdAndPwd(t *testing.T) {
	ctx := newCtx(t)
	_ = ctx.FS.MkdirAll("/job/work")
	res := run(t, ctx, "cd work\npwd\necho x > f\ncat /job/work/f")
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
	}
	if !strings.HasPrefix(res.Stdout, "/job/work\n") {
		t.Fatalf("pwd = %q", res.Stdout)
	}
}

func TestCPUAccounting(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "cpu 30s\ncpu 90s")
	if res.CPUTime != 2*time.Minute {
		t.Fatalf("CPUTime = %v", res.CPUTime)
	}
}

func TestWriteAndRead(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "write result.dat 100\nread result.dat")
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
	}
	info, err := ctx.FS.Stat("/job/result.dat")
	if err != nil || info.Size != 100 {
		t.Fatalf("result.dat = %+v, %v", info, err)
	}
	res = run(t, ctx, "read missing.dat")
	if res.ExitCode != 1 {
		t.Fatalf("read missing = %d", res.ExitCode)
	}
}

func TestWriteDeterministic(t *testing.T) {
	a, b := newCtx(t), newCtx(t)
	run(t, a, "write f 64")
	run(t, b, "write f 64")
	da, _ := a.FS.ReadFile("/job/f")
	db, _ := b.FS.ReadFile("/job/f")
	if string(da) != string(db) {
		t.Fatal("write output not deterministic")
	}
}

func TestCommandNotFound(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "nosuchcmd -x")
	if res.ExitCode != 127 {
		t.Fatalf("exit = %d, want 127", res.ExitCode)
	}
}

func TestRegisteredTool(t *testing.T) {
	ctx := newCtx(t)
	ctx.Tools = map[string]Tool{
		"f90": func(c *Ctx, args []string) int {
			c.Stdout.WriteString("compiling " + strings.Join(args, " ") + "\n")
			return 0
		},
	}
	res := run(t, ctx, "f90 -c main.f90")
	if res.Stdout != "compiling -c main.f90\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestToolStdoutRedirect(t *testing.T) {
	ctx := newCtx(t)
	ctx.Tools = map[string]Tool{
		"gen": func(c *Ctx, _ []string) int {
			c.Stdout.WriteString("generated")
			return 0
		},
	}
	res := run(t, ctx, "gen > g.txt")
	if res.ExitCode != 0 || res.Stdout != "" {
		t.Fatalf("exit=%d stdout=%q", res.ExitCode, res.Stdout)
	}
	data, _ := ctx.FS.ReadFile("/job/g.txt")
	if string(data) != "generated" {
		t.Fatalf("file = %q", data)
	}
}

func TestSimulatedBinary(t *testing.T) {
	ctx := newCtx(t)
	bin := SimBinaryHeader + "\necho running $1 with $# args\ncpu 10s\nwrite out.dat 32\nexit 0\n"
	_ = ctx.FS.WriteFile("/job/a.out", []byte(bin))
	res := run(t, ctx, "./a.out alpha beta")
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
	}
	if res.Stdout != "running alpha with 2 args\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.CPUTime != 10*time.Second {
		t.Fatalf("CPUTime = %v", res.CPUTime)
	}
	if !ctx.FS.Exists("/job/out.dat") {
		t.Fatal("binary output missing")
	}
}

func TestBinaryExitDoesNotKillParent(t *testing.T) {
	ctx := newCtx(t)
	bin := SimBinaryHeader + "\nexit 0\n"
	_ = ctx.FS.WriteFile("/job/ok.bin", []byte(bin))
	res := run(t, ctx, "./ok.bin\necho parent continues")
	if res.ExitCode != 0 || !strings.Contains(res.Stdout, "parent continues") {
		t.Fatalf("exit=%d stdout=%q", res.ExitCode, res.Stdout)
	}
}

func TestBinaryFailurePropagates(t *testing.T) {
	ctx := newCtx(t)
	bin := SimBinaryHeader + "\nexit 9\n"
	_ = ctx.FS.WriteFile("/job/bad.bin", []byte(bin))
	res := run(t, ctx, "./bad.bin\necho unreachable")
	if res.ExitCode != 9 || strings.Contains(res.Stdout, "unreachable") {
		t.Fatalf("exit=%d stdout=%q", res.ExitCode, res.Stdout)
	}
}

func TestNonBinaryExecRejected(t *testing.T) {
	ctx := newCtx(t)
	_ = ctx.FS.WriteFile("/job/data.txt", []byte("just text"))
	res := run(t, ctx, "./data.txt")
	if res.ExitCode != 126 {
		t.Fatalf("exit = %d, want 126", res.ExitCode)
	}
}

func TestBinaryNestingLimited(t *testing.T) {
	ctx := newCtx(t)
	// self-recursive binary
	bin := SimBinaryHeader + "\n./self.bin\n"
	_ = ctx.FS.WriteFile("/job/self.bin", []byte(bin))
	res := run(t, ctx, "./self.bin")
	if res.ExitCode == 0 {
		t.Fatal("infinite recursion terminated with success")
	}
}

func TestStepLimit(t *testing.T) {
	ctx := newCtx(t)
	ctx.MaxSteps = 10
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("echo line\n")
	}
	res := run(t, ctx, sb.String())
	if res.ExitCode != 124 {
		t.Fatalf("exit = %d, want 124 (step limit)", res.ExitCode)
	}
}

func TestUnterminatedQuote(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, `echo "oops`)
	if res.ExitCode == 0 {
		t.Fatal("unterminated quote accepted")
	}
}

func TestPipeUnsupported(t *testing.T) {
	ctx := newCtx(t)
	res := run(t, ctx, "echo a | cat")
	if res.ExitCode == 0 {
		t.Fatal("single pipe should be rejected")
	}
	if !strings.Contains(res.Stderr, "unsupported operator") {
		t.Fatalf("stderr = %q", res.Stderr)
	}
}
