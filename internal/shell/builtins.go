package shell

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// builtin signature: args are already expanded; rd is available for stdin.
type builtin func(ctx *Ctx, args []string, rd redirect, out *strings.Builder) int

// builtins is the fixed command set the incarnation and simulated programs
// rely on.
var builtins map[string]builtin

func init() {
	builtins = map[string]builtin{
		"echo":  biEcho,
		"cat":   biCat,
		"cp":    biCp,
		"mv":    biMv,
		"rm":    biRm,
		"mkdir": biMkdir,
		"touch": biTouch,
		"ls":    biLs,
		"pwd":   biPwd,
		"cd":    biCd,
		"test":  biTest,
		"true":  func(*Ctx, []string, redirect, *strings.Builder) int { return 0 },
		"false": func(*Ctx, []string, redirect, *strings.Builder) int { return 1 },
		"exit":  biExit,
		"cpu":   biCPU,
		"write": biWrite,
		"read":  biRead,
		"fail":  biFail,
	}
}

func biEcho(ctx *Ctx, args []string, _ redirect, out *strings.Builder) int {
	fmt.Fprintln(out, strings.Join(args, " "))
	return 0
}

func biCat(ctx *Ctx, args []string, rd redirect, out *strings.Builder) int {
	if len(args) == 0 && rd.stdin != "" {
		args = []string{rd.stdin}
	}
	if len(args) == 0 {
		return 0
	}
	for _, a := range args {
		data, err := ctx.FS.ReadFile(ctx.Abs(a))
		if err != nil {
			fmt.Fprintf(&ctx.Stderr, "cat: %s: %v\n", a, err)
			return 1
		}
		out.Write(data)
	}
	return 0
}

func biCp(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	if len(args) != 2 {
		fmt.Fprintf(&ctx.Stderr, "cp: want 2 arguments\n")
		return 2
	}
	if err := ctx.FS.Copy(ctx.Abs(args[1]), ctx.Abs(args[0])); err != nil {
		fmt.Fprintf(&ctx.Stderr, "cp: %v\n", err)
		return 1
	}
	return 0
}

func biMv(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	if len(args) != 2 {
		fmt.Fprintf(&ctx.Stderr, "mv: want 2 arguments\n")
		return 2
	}
	if err := ctx.FS.Rename(ctx.Abs(args[0]), ctx.Abs(args[1])); err != nil {
		fmt.Fprintf(&ctx.Stderr, "mv: %v\n", err)
		return 1
	}
	return 0
}

func biRm(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	recursive := false
	var files []string
	for _, a := range args {
		if a == "-r" || a == "-rf" {
			recursive = true
		} else {
			files = append(files, a)
		}
	}
	if len(files) == 0 {
		fmt.Fprintf(&ctx.Stderr, "rm: missing operand\n")
		return 2
	}
	for _, f := range files {
		var err error
		if recursive {
			err = ctx.FS.RemoveAll(ctx.Abs(f))
		} else {
			err = ctx.FS.Remove(ctx.Abs(f))
		}
		if err != nil {
			fmt.Fprintf(&ctx.Stderr, "rm: %s: %v\n", f, err)
			return 1
		}
	}
	return 0
}

func biMkdir(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	parents := false
	var dirs []string
	for _, a := range args {
		if a == "-p" {
			parents = true
		} else {
			dirs = append(dirs, a)
		}
	}
	for _, d := range dirs {
		var err error
		if parents {
			err = ctx.FS.MkdirAll(ctx.Abs(d))
		} else {
			err = ctx.FS.Mkdir(ctx.Abs(d))
		}
		if err != nil {
			fmt.Fprintf(&ctx.Stderr, "mkdir: %s: %v\n", d, err)
			return 1
		}
	}
	return 0
}

func biTouch(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	for _, a := range args {
		p := ctx.Abs(a)
		if ctx.FS.Exists(p) {
			continue
		}
		if err := ctx.FS.WriteFile(p, nil); err != nil {
			fmt.Fprintf(&ctx.Stderr, "touch: %s: %v\n", a, err)
			return 1
		}
	}
	return 0
}

func biLs(ctx *Ctx, args []string, _ redirect, out *strings.Builder) int {
	dir := ctx.Cwd
	if len(args) > 0 {
		dir = ctx.Abs(args[0])
	}
	entries, err := ctx.FS.List(dir)
	if err != nil {
		fmt.Fprintf(&ctx.Stderr, "ls: %v\n", err)
		return 1
	}
	for _, e := range entries {
		fmt.Fprintln(out, e.Name)
	}
	return 0
}

func biPwd(ctx *Ctx, _ []string, _ redirect, out *strings.Builder) int {
	fmt.Fprintln(out, ctx.Cwd)
	return 0
}

func biCd(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	if len(args) != 1 {
		fmt.Fprintf(&ctx.Stderr, "cd: want 1 argument\n")
		return 2
	}
	p := ctx.Abs(args[0])
	info, err := ctx.FS.Stat(p)
	if err != nil || !info.IsDir {
		fmt.Fprintf(&ctx.Stderr, "cd: %s: not a directory\n", args[0])
		return 1
	}
	ctx.Cwd = p
	return 0
}

// biTest implements test -f/-d/-s FILE and test STR1 = STR2.
func biTest(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	fail := func() int { return 1 }
	switch {
	case len(args) == 2 && args[0] == "-f":
		info, err := ctx.FS.Stat(ctx.Abs(args[1]))
		if err == nil && !info.IsDir {
			return 0
		}
		return fail()
	case len(args) == 2 && args[0] == "-d":
		info, err := ctx.FS.Stat(ctx.Abs(args[1]))
		if err == nil && info.IsDir {
			return 0
		}
		return fail()
	case len(args) == 2 && args[0] == "-s":
		info, err := ctx.FS.Stat(ctx.Abs(args[1]))
		if err == nil && info.Size > 0 {
			return 0
		}
		return fail()
	case len(args) == 3 && args[1] == "=":
		if args[0] == args[2] {
			return 0
		}
		return fail()
	case len(args) == 3 && args[1] == "!=":
		if args[0] != args[2] {
			return 0
		}
		return fail()
	}
	fmt.Fprintf(&ctx.Stderr, "test: unsupported expression\n")
	return 2
}

func biExit(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	code := 0
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil {
			fmt.Fprintf(&ctx.Stderr, "exit: bad code %q\n", args[0])
			panic(exitSignal{2})
		}
		code = n
	}
	panic(exitSignal{code})
}

// biCPU charges simulated processor time: `cpu 30s`, `cpu 2h`.
func biCPU(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	if len(args) != 1 {
		fmt.Fprintf(&ctx.Stderr, "cpu: want a duration\n")
		return 2
	}
	d, err := time.ParseDuration(args[0])
	if err != nil || d < 0 {
		fmt.Fprintf(&ctx.Stderr, "cpu: bad duration %q\n", args[0])
		return 2
	}
	ctx.CPUTime += d
	return 0
}

// biWrite synthesises output data: `write result.dat 4096` writes 4096
// deterministic bytes.
func biWrite(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	if len(args) != 2 {
		fmt.Fprintf(&ctx.Stderr, "write: want FILE NBYTES\n")
		return 2
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n < 0 {
		fmt.Fprintf(&ctx.Stderr, "write: bad size %q\n", args[1])
		return 2
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte('A' + i%26)
	}
	if err := ctx.FS.WriteFile(ctx.Abs(args[0]), data); err != nil {
		fmt.Fprintf(&ctx.Stderr, "write: %v\n", err)
		return 1
	}
	return 0
}

// biRead asserts an input exists and charges a token of read time:
// `read in.dat`.
func biRead(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	if len(args) != 1 {
		fmt.Fprintf(&ctx.Stderr, "read: want FILE\n")
		return 2
	}
	info, err := ctx.FS.Stat(ctx.Abs(args[0]))
	if err != nil || info.IsDir {
		fmt.Fprintf(&ctx.Stderr, "read: %s: no such file\n", args[0])
		return 1
	}
	return 0
}

func biFail(ctx *Ctx, args []string, _ redirect, _ *strings.Builder) int {
	fmt.Fprintf(&ctx.Stderr, "fail: %s\n", strings.Join(args, " "))
	return 1
}
