// Package shell implements the execution substrate of the batch tier: a
// small, deterministic, POSIX-flavoured script interpreter that runs over a
// vfs.FS instead of a real machine.
//
// The NJS incarnates abstract tasks into batch scripts (paper §5.5); on the
// authors' testbed those scripts ran under NQE, NQS, or LoadLeveler on real
// iron. Here they run under this interpreter, which supports exactly the
// constructs the incarnation emits — comments/directives, variable
// expansion, conditionals via && and ||, redirections, file utilities — plus
// a virtual `cpu` builtin so "computation" consumes simulated time that the
// codine RMS accounts for.
//
// Simulated executables are files beginning with the magic header
// "#!unicore-sim": running one interprets its remaining lines as a script.
// The machine package's compiler/linker tools produce such files, giving the
// reproduction a real compile → link → execute data flow.
package shell

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"

	"unicore/internal/vfs"
)

// SimBinaryHeader marks a simulated executable produced by the link step.
const SimBinaryHeader = "#!unicore-sim"

// Tool is an external command registered with the interpreter (compilers,
// linkers, site utilities). It returns the exit code.
type Tool func(ctx *Ctx, args []string) int

// Ctx is the execution context of one script run.
type Ctx struct {
	FS    *vfs.FS
	Cwd   string            // absolute working directory (the job's Uspace)
	Env   map[string]string // variables; mutated by assignments
	Tools map[string]Tool   // external commands by name

	Stdout, Stderr strings.Builder
	CPUTime        time.Duration // simulated processor time consumed

	// MaxSteps caps executed statements to keep runaway scripts finite
	// (default 100000).
	MaxSteps int
	steps    int
	depth    int // nested simulated-binary depth
}

// Result summarises one script run.
type Result struct {
	ExitCode int
	Stdout   string
	Stderr   string
	CPUTime  time.Duration
}

// exitSignal unwinds the interpreter on `exit N`.
type exitSignal struct{ code int }

// Run executes script in ctx and returns its result. Any command failing
// (nonzero exit) terminates the script with that code, as with `sh -e` —
// batch systems treat job steps the same way.
func Run(ctx *Ctx, script string) Result {
	if ctx.Env == nil {
		ctx.Env = map[string]string{}
	}
	if ctx.Cwd == "" {
		ctx.Cwd = "/"
	}
	if ctx.MaxSteps == 0 {
		ctx.MaxSteps = 100000
	}
	code := runScript(ctx, script)
	return Result{
		ExitCode: code,
		Stdout:   ctx.Stdout.String(),
		Stderr:   ctx.Stderr.String(),
		CPUTime:  ctx.CPUTime,
	}
}

func runScript(ctx *Ctx, script string) (code int) {
	defer func() {
		if r := recover(); r != nil {
			if sig, ok := r.(exitSignal); ok {
				code = sig.code
				return
			}
			panic(r)
		}
	}()
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue // comments and batch directives (#QSUB, #@$, # @, !SIM)
		}
		status := runLine(ctx, line)
		if status != 0 {
			return status
		}
	}
	return 0
}

// runLine executes one line: pipeless command chains joined by && and ||.
func runLine(ctx *Ctx, line string) int {
	segs, ops, err := splitChain(line)
	if err != nil {
		fmt.Fprintf(&ctx.Stderr, "sh: %v\n", err)
		return 2
	}
	status := 0
	for i, seg := range segs {
		if i > 0 {
			if ops[i-1] == "&&" && status != 0 {
				continue
			}
			if ops[i-1] == "||" && status == 0 {
				continue
			}
		}
		status = runSimple(ctx, seg)
	}
	return status
}

// splitChain splits a line on && and || outside quotes.
func splitChain(line string) (segs []string, ops []string, err error) {
	var cur strings.Builder
	inQuote := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			cur.WriteByte(c)
			continue
		}
		switch c {
		case '\'', '"':
			inQuote = c
			cur.WriteByte(c)
		case '&', '|':
			if i+1 < len(line) && line[i+1] == c {
				segs = append(segs, cur.String())
				cur.Reset()
				if c == '&' {
					ops = append(ops, "&&")
				} else {
					ops = append(ops, "||")
				}
				i++
			} else {
				return nil, nil, fmt.Errorf("unsupported operator %q", string(c))
			}
		case ';':
			segs = append(segs, cur.String())
			cur.Reset()
			ops = append(ops, ";")
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote != 0 {
		return nil, nil, fmt.Errorf("unterminated quote")
	}
	segs = append(segs, cur.String())
	return segs, ops, nil
}

// redirection captured from a simple command.
type redirect struct {
	stdout       string // "> f"
	appendStdout string // ">> f"
	stdin        string // "< f"
}

// runSimple executes a single command with optional redirections.
func runSimple(ctx *Ctx, text string) int {
	ctx.steps++
	if ctx.steps > ctx.MaxSteps {
		fmt.Fprintf(&ctx.Stderr, "sh: step limit exceeded\n")
		panic(exitSignal{124})
	}
	words, err := tokenize(text)
	if err != nil {
		fmt.Fprintf(&ctx.Stderr, "sh: %v\n", err)
		return 2
	}
	if len(words) == 0 {
		return 0
	}
	// Variable assignment: NAME=value as the only word.
	if len(words) == 1 {
		if name, val, ok := strings.Cut(words[0], "="); ok && isName(name) {
			ctx.Env[name] = expand(ctx, val)
			return 0
		}
	}
	// Expand variables and peel redirections.
	var argv []string
	var rd redirect
	for i := 0; i < len(words); i++ {
		w := words[i]
		switch w {
		case ">", ">>", "<":
			if i+1 >= len(words) {
				fmt.Fprintf(&ctx.Stderr, "sh: missing redirection target\n")
				return 2
			}
			target := expand(ctx, words[i+1])
			i++
			switch w {
			case ">":
				rd.stdout = target
			case ">>":
				rd.appendStdout = target
			case "<":
				rd.stdin = target
			}
		default:
			argv = append(argv, expand(ctx, w))
		}
	}
	if len(argv) == 0 {
		return 0
	}
	return dispatch(ctx, argv, rd)
}

// isName reports whether s is a valid variable name.
func isName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// tokenize splits a command into words, honouring single and double quotes.
func tokenize(text string) ([]string, error) {
	var words []string
	var cur strings.Builder
	inWord := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch c {
		case ' ', '\t':
			if inWord {
				words = append(words, cur.String())
				cur.Reset()
				inWord = false
			}
		case '\'', '"':
			quote := c
			inWord = true
			i++
			for ; i < len(text) && text[i] != quote; i++ {
				cur.WriteByte(text[i])
			}
			if i >= len(text) {
				return nil, fmt.Errorf("unterminated quote")
			}
		default:
			inWord = true
			cur.WriteByte(c)
		}
	}
	if inWord {
		words = append(words, cur.String())
	}
	return words, nil
}

// expand substitutes $NAME and ${NAME}.
func expand(ctx *Ctx, s string) string {
	var out strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '$' || i+1 >= len(s) {
			out.WriteByte(s[i])
			continue
		}
		if s[i+1] == '{' {
			end := strings.IndexByte(s[i+2:], '}')
			if end < 0 {
				out.WriteByte(s[i])
				continue
			}
			out.WriteString(ctx.Env[s[i+2:i+2+end]])
			i += 2 + end
			continue
		}
		if s[i+1] == '#' || s[i+1] == '@' {
			out.WriteString(ctx.Env[string(s[i+1])])
			i++
			continue
		}
		j := i + 1
		for j < len(s) && (s[j] == '_' ||
			s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' ||
			s[j] >= '0' && s[j] <= '9') {
			j++
		}
		if j == i+1 {
			out.WriteByte(s[i])
			continue
		}
		out.WriteString(ctx.Env[s[i+1:j]])
		i = j - 1
	}
	return out.String()
}

// Abs resolves p relative to the context working directory.
func (ctx *Ctx) Abs(p string) string {
	if strings.HasPrefix(p, "/") {
		return path.Clean(p)
	}
	return path.Join(ctx.Cwd, p)
}

// dispatch routes to builtins, registered tools, or simulated binaries.
func dispatch(ctx *Ctx, argv []string, rd redirect) int {
	name := argv[0]
	args := argv[1:]

	// stdin redirection: present the file contents via $STDIN for builtins
	// that consume it (cat without args).
	if b, ok := builtins[name]; ok {
		return captured(ctx, rd, func(out *strings.Builder) int {
			return b(ctx, args, rd, out)
		})
	}
	if tool, ok := ctx.Tools[name]; ok {
		return captured(ctx, rd, func(out *strings.Builder) int {
			// Tools write to ctx.Stdout; temporarily swap handled by captured.
			return tool(ctx, args)
		})
	}
	// Simulated binary?
	if strings.HasPrefix(name, "./") || strings.HasPrefix(name, "/") {
		return captured(ctx, rd, func(out *strings.Builder) int {
			return runBinary(ctx, name, args)
		})
	}
	fmt.Fprintf(&ctx.Stderr, "sh: %s: command not found\n", name)
	return 127
}

// captured redirects ctx.Stdout into a file for the duration of fn when the
// command has a stdout redirection.
func captured(ctx *Ctx, rd redirect, fn func(out *strings.Builder) int) int {
	if rd.stdout == "" && rd.appendStdout == "" {
		return fn(&ctx.Stdout)
	}
	saved := ctx.Stdout
	ctx.Stdout = strings.Builder{}
	code := fn(&ctx.Stdout)
	text := ctx.Stdout.String()
	ctx.Stdout = saved
	var err error
	if rd.stdout != "" {
		err = ctx.FS.WriteFile(ctx.Abs(rd.stdout), []byte(text))
	} else {
		err = ctx.FS.AppendFile(ctx.Abs(rd.appendStdout), []byte(text))
	}
	if err != nil {
		fmt.Fprintf(&ctx.Stderr, "sh: redirect: %v\n", err)
		return 1
	}
	return code
}

// runBinary executes a simulated executable file.
func runBinary(ctx *Ctx, name string, args []string) int {
	if ctx.depth >= 8 {
		fmt.Fprintf(&ctx.Stderr, "sh: %s: binary nesting too deep\n", name)
		return 126
	}
	data, err := ctx.FS.ReadFile(ctx.Abs(name))
	if err != nil {
		fmt.Fprintf(&ctx.Stderr, "sh: %s: %v\n", name, err)
		return 127
	}
	text := string(data)
	if !strings.HasPrefix(text, SimBinaryHeader) {
		fmt.Fprintf(&ctx.Stderr, "sh: %s: not a unicore-sim executable\n", name)
		return 126
	}
	body := text[len(SimBinaryHeader):]
	// Positional arguments available as $1..$9, $# and $@.
	saved := map[string]string{}
	set := func(k, v string) {
		saved[k] = ctx.Env[k]
		ctx.Env[k] = v
	}
	for i, a := range args {
		if i >= 9 {
			break
		}
		set(fmt.Sprintf("%d", i+1), a)
	}
	set("#", strconv.Itoa(len(args)))
	set("@", strings.Join(args, " "))
	ctx.depth++
	code := runScript(ctx, body)
	ctx.depth--
	for k, v := range saved {
		if v == "" {
			delete(ctx.Env, k)
		} else {
			ctx.Env[k] = v
		}
	}
	return code
}

// ToolNames returns the sorted names of registered tools (for diagnostics).
func (ctx *Ctx) ToolNames() []string {
	out := make([]string, 0, len(ctx.Tools))
	for n := range ctx.Tools {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
