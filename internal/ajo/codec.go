package ajo

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
)

// The AJO *is* the UNICORE protocol (§5.3): "the UNICORE protocol is
// implemented as a Java object called the abstract job object". This file
// provides the two wire codecs:
//
//   - JSON: a self-describing envelope {kind, body} per action, applied
//     recursively. Readable, diffable, and the default for the https
//     endpoints.
//   - gob: a compact binary alternative registered for every concrete type,
//     used by the firewall-split gateway↔NJS socket and benchmarked against
//     JSON in experiment E3.

// envelope wraps one action with its concrete class name.
type envelope struct {
	Kind Kind            `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// newByKind allocates the concrete type for a kind.
func newByKind(k Kind) (Action, error) {
	switch k {
	case KindJob:
		return &AbstractJob{}, nil
	case KindExecute:
		return &ExecuteTask{}, nil
	case KindCompile:
		return &CompileTask{}, nil
	case KindLink:
		return &LinkTask{}, nil
	case KindUser:
		return &UserTask{}, nil
	case KindScript:
		return &ScriptTask{}, nil
	case KindImport:
		return &ImportTask{}, nil
	case KindExport:
		return &ExportTask{}, nil
	case KindTransfer:
		return &TransferTask{}, nil
	case KindControl:
		return &ControlService{}, nil
	case KindList:
		return &ListService{}, nil
	case KindQuery:
		return &QueryService{}, nil
	}
	return nil, fmt.Errorf("ajo: unknown action kind %q", k)
}

// Marshal encodes any action (including a whole recursive AbstractJob) as a
// self-describing JSON document.
func Marshal(a Action) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("ajo: marshal nil action")
	}
	body, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("ajo: marshal %s: %w", a.Kind(), err)
	}
	return json.Marshal(envelope{Kind: a.Kind(), Body: body})
}

// Unmarshal decodes a self-describing JSON document into the concrete action
// type.
func Unmarshal(data []byte) (Action, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ajo: decoding envelope: %w", err)
	}
	a, err := newByKind(env.Kind)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(env.Body, a); err != nil {
		return nil, fmt.Errorf("ajo: decoding %s body: %w", env.Kind, err)
	}
	return a, nil
}

// ActionList is []Action with polymorphic JSON encoding, used for the
// components of an AbstractJob.
type ActionList []Action

// MarshalJSON encodes each element as an envelope.
func (l ActionList) MarshalJSON() ([]byte, error) {
	raw := make([]json.RawMessage, len(l))
	for i, a := range l {
		enc, err := Marshal(a)
		if err != nil {
			return nil, err
		}
		raw[i] = enc
	}
	return json.Marshal(raw)
}

// UnmarshalJSON decodes a list of envelopes.
func (l *ActionList) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("ajo: decoding action list: %w", err)
	}
	out := make(ActionList, len(raw))
	for i, r := range raw {
		a, err := Unmarshal(r)
		if err != nil {
			return err
		}
		out[i] = a
	}
	*l = out
	return nil
}

// --- gob codec ---

func init() {
	gob.Register(&AbstractJob{})
	gob.Register(&ExecuteTask{})
	gob.Register(&CompileTask{})
	gob.Register(&LinkTask{})
	gob.Register(&UserTask{})
	gob.Register(&ScriptTask{})
	gob.Register(&ImportTask{})
	gob.Register(&ExportTask{})
	gob.Register(&TransferTask{})
	gob.Register(&ControlService{})
	gob.Register(&ListService{})
	gob.Register(&QueryService{})
}

// gobBox carries the interface value through gob.
type gobBox struct{ A Action }

// MarshalGob encodes an action with the binary gob codec.
func MarshalGob(a Action) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("ajo: marshal nil action")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobBox{a}); err != nil {
		return nil, fmt.Errorf("ajo: gob encoding %s: %w", a.Kind(), err)
	}
	return buf.Bytes(), nil
}

// UnmarshalGob decodes a gob-encoded action.
func UnmarshalGob(data []byte) (Action, error) {
	var box gobBox
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&box); err != nil {
		return nil, fmt.Errorf("ajo: gob decoding: %w", err)
	}
	if box.A == nil {
		return nil, fmt.Errorf("ajo: gob document held no action")
	}
	return box.A, nil
}

// MarshalOutcome / UnmarshalOutcome serialise outcome trees for the
// retrieve-outcome endpoint.
func MarshalOutcome(o *Outcome) ([]byte, error) {
	return json.Marshal(o)
}

// UnmarshalOutcome decodes an outcome tree.
func UnmarshalOutcome(data []byte) (*Outcome, error) {
	var o Outcome
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("ajo: decoding outcome: %w", err)
	}
	return &o, nil
}
