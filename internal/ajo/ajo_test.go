package ajo

import (
	"strings"
	"testing"
	"time"

	"unicore/internal/core"
	"unicore/internal/resources"
)

var fzjT3E = core.Target{Usite: "FZJ", Vsite: "T3E"}

// sampleJob builds a representative compile-link-execute job with staging,
// the §5.7 workload.
func sampleJob() *AbstractJob {
	return &AbstractJob{
		Header:  Header{ActionID: "job", ActionName: "cfd-run"},
		Target:  fzjT3E,
		UserDN:  core.MakeDN("Alice", "FZJ", "DE"),
		Project: "zam",
		Actions: ActionList{
			&ImportTask{
				Header: Header{ActionID: "imp"},
				Source: ImportSource{Inline: []byte("!SIM: cpu 10s\n")},
				To:     "main.f90",
			},
			&CompileTask{
				TaskBase: TaskBase{Header: Header{ActionID: "cc"}, Resources: resources.Request{Processors: 1, RunTime: 5 * time.Minute}},
				Language: "f90",
				Sources:  []string{"main.f90"},
				Output:   "main.o",
			},
			&LinkTask{
				TaskBase: TaskBase{Header: Header{ActionID: "ld"}},
				Objects:  []string{"main.o"},
				Output:   "a.out",
			},
			&ExecuteTask{
				TaskBase:   TaskBase{Header: Header{ActionID: "run"}, Resources: resources.Request{Processors: 64, RunTime: time.Hour}},
				Executable: "a.out",
			},
			&ExportTask{
				Header:   Header{ActionID: "exp"},
				From:     "result.dat",
				ToXspace: "/home/alice/result.dat",
			},
		},
		Dependencies: []Dependency{
			{Before: "imp", After: "cc"},
			{Before: "cc", After: "ld"},
			{Before: "ld", After: "run"},
			{Before: "run", After: "exp", Files: []string{"result.dat"}},
		},
	}
}

func TestSampleJobValidates(t *testing.T) {
	if err := sampleJob().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                         Kind
		task, exec, file, service bool
	}{
		{KindJob, false, false, false, false},
		{KindExecute, true, true, false, false},
		{KindCompile, true, true, false, false},
		{KindLink, true, true, false, false},
		{KindUser, true, true, false, false},
		{KindScript, true, true, false, false},
		{KindImport, true, false, true, false},
		{KindExport, true, false, true, false},
		{KindTransfer, true, false, true, false},
		{KindControl, false, false, false, true},
		{KindList, false, false, false, true},
		{KindQuery, false, false, false, true},
	}
	for _, c := range cases {
		if c.k.IsTask() != c.task || c.k.IsExecutable() != c.exec ||
			c.k.IsFileTask() != c.file || c.k.IsService() != c.service {
			t.Errorf("%s: predicates = task=%v exec=%v file=%v svc=%v",
				c.k, c.k.IsTask(), c.k.IsExecutable(), c.k.IsFileTask(), c.k.IsService())
		}
	}
	if len(Kinds()) != 12 {
		t.Fatalf("Kinds() lists %d classes, want 12 (Figure 3)", len(Kinds()))
	}
}

func TestValidateRejections(t *testing.T) {
	base := Header{ActionID: "x"}
	cases := []struct {
		name string
		a    Action
	}{
		{"execute without executable", &ExecuteTask{TaskBase: TaskBase{Header: base}}},
		{"compile without sources", &CompileTask{TaskBase: TaskBase{Header: base}, Language: "f90", Output: "o"}},
		{"compile without language", &CompileTask{TaskBase: TaskBase{Header: base}, Sources: []string{"s"}, Output: "o"}},
		{"compile without output", &CompileTask{TaskBase: TaskBase{Header: base}, Language: "f90", Sources: []string{"s"}}},
		{"link without objects", &LinkTask{TaskBase: TaskBase{Header: base}, Output: "a.out"}},
		{"link without output", &LinkTask{TaskBase: TaskBase{Header: base}, Objects: []string{"o"}}},
		{"user task without command", &UserTask{TaskBase: TaskBase{Header: base}}},
		{"script without body", &ScriptTask{TaskBase: TaskBase{Header: base}}},
		{"import without destination", &ImportTask{Header: base, Source: ImportSource{Inline: []byte("x")}}},
		{"import without source", &ImportTask{Header: base, To: "f"}},
		{"import with two sources", &ImportTask{Header: base, Source: ImportSource{Inline: []byte("x"), XspacePath: "/x"}, To: "f"}},
		{"export without from", &ExportTask{Header: base, ToXspace: "/x"}},
		{"transfer without files", &TransferTask{Header: base, FromAction: "a"}},
		{"transfer without source", &TransferTask{Header: base, Files: []string{"f"}}},
		{"control without job", &ControlService{Header: base, Op: OpAbort}},
		{"control with bad op", &ControlService{Header: base, Job: "J1", Op: "explode"}},
		{"query without selector", &QueryService{Header: base, Query: "nonsense"}},
		{"status query without job", &QueryService{Header: base, Query: QueryJobStatus}},
		{"page query without target", &QueryService{Header: base, Query: QueryResourcePage}},
		{"missing ID", &UserTask{TaskBase: TaskBase{}, Command: "ls"}},
	}
	for _, c := range cases {
		if err := c.a.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestJobValidateStructure(t *testing.T) {
	mk := func(mut func(*AbstractJob)) *AbstractJob {
		j := sampleJob()
		mut(j)
		return j
	}
	cases := []struct {
		name string
		job  *AbstractJob
	}{
		{"no target", mk(func(j *AbstractJob) { j.Target = core.Target{} })},
		{"duplicate IDs", mk(func(j *AbstractJob) {
			j.Actions = append(j.Actions, &UserTask{TaskBase: TaskBase{Header: Header{ActionID: "imp"}}, Command: "ls"})
		})},
		{"dangling dependency", mk(func(j *AbstractJob) {
			j.Dependencies = append(j.Dependencies, Dependency{Before: "ghost", After: "cc"})
		})},
		{"cyclic dependencies", mk(func(j *AbstractJob) {
			j.Dependencies = append(j.Dependencies, Dependency{Before: "exp", After: "imp"})
		})},
		{"embedded service", mk(func(j *AbstractJob) {
			j.Actions = append(j.Actions, &ListService{Header: Header{ActionID: "svc"}})
		})},
		{"invalid child", mk(func(j *AbstractJob) {
			j.Actions = append(j.Actions, &UserTask{TaskBase: TaskBase{Header: Header{ActionID: "bad"}}})
		})},
		{"dangling transfer source", mk(func(j *AbstractJob) {
			j.Actions = append(j.Actions, &TransferTask{Header: Header{ActionID: "tr"}, FromAction: "ghost", Files: []string{"f"}})
		})},
		{"nil action", mk(func(j *AbstractJob) { j.Actions = append(j.Actions, nil) })},
	}
	for _, c := range cases {
		if err := c.job.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestNestedJobValidates(t *testing.T) {
	inner := sampleJob()
	inner.ActionID = "sub"
	inner.Target = core.Target{Usite: "LRZ", Vsite: "SP2"}
	outer := &AbstractJob{
		Header:  Header{ActionID: "outer"},
		Target:  fzjT3E,
		Actions: ActionList{inner},
	}
	if err := outer.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nested job without target must fail even when the outer has one.
	inner.Target = core.Target{}
	if err := outer.Validate(); err == nil {
		t.Fatal("nested job without target validated")
	}
}

func TestGraphAndFind(t *testing.T) {
	j := sampleJob()
	g, err := j.Graph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "imp" || order[len(order)-1] != "exp" {
		t.Fatalf("topo order = %v", order)
	}
	if _, ok := j.Find("run"); !ok {
		t.Fatal("Find(run) failed")
	}
	if _, ok := j.Find("ghost"); ok {
		t.Fatal("Find(ghost) succeeded")
	}
}

func TestWalkAndCount(t *testing.T) {
	inner := sampleJob()
	inner.ActionID = "sub"
	outer := &AbstractJob{
		Header:  Header{ActionID: "outer"},
		Target:  fzjT3E,
		Actions: ActionList{inner, &UserTask{TaskBase: TaskBase{Header: Header{ActionID: "u"}}, Command: "ls"}},
	}
	// outer + (sub + 5 children) + u = 8
	if got := outer.CountActions(); got != 8 {
		t.Fatalf("CountActions = %d, want 8", got)
	}
	var kinds []Kind
	outer.Walk(func(a Action) { kinds = append(kinds, a.Kind()) })
	if kinds[0] != KindJob || kinds[1] != KindJob {
		t.Fatalf("walk order starts %v", kinds[:2])
	}
}

func TestMaxResources(t *testing.T) {
	j := sampleJob()
	r := j.MaxResources()
	if r.Processors != 64 || r.RunTime != time.Hour {
		t.Fatalf("MaxResources = %+v", r)
	}
}

func TestTaskResources(t *testing.T) {
	j := sampleJob()
	run, _ := j.Find("run")
	r, ok := TaskResources(run)
	if !ok || r.Processors != 64 {
		t.Fatalf("TaskResources(run) = %+v, %v", r, ok)
	}
	imp, _ := j.Find("imp")
	if _, ok := TaskResources(imp); ok {
		t.Fatal("file task reported resources")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[ActionID]bool{}
	for i := 0; i < 100; i++ {
		id := NewID("t")
		if seen[id] {
			t.Fatalf("duplicate ID %s", id)
		}
		seen[id] = true
		if !strings.HasPrefix(string(id), "t-") {
			t.Fatalf("ID %s missing prefix", id)
		}
	}
}
