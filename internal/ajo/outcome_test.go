package ajo

import (
	"strings"
	"testing"
)

func TestStatusStringsAndTerminal(t *testing.T) {
	cases := []struct {
		s        Status
		name     string
		terminal bool
	}{
		{StatusPending, "PENDING", false},
		{StatusQueued, "QUEUED", false},
		{StatusRunning, "RUNNING", false},
		{StatusHeld, "HELD", false},
		{StatusSuccessful, "SUCCESSFUL", true},
		{StatusFailed, "FAILED", true},
		{StatusAborted, "ABORTED", true},
		{StatusNotDone, "NOT_DONE", true},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String(%d) = %q, want %q", c.s, c.s.String(), c.name)
		}
		if c.s.Terminal() != c.terminal {
			t.Errorf("%s.Terminal() = %v", c.name, c.s.Terminal())
		}
	}
	if Status(99).String() != "Status(99)" {
		t.Errorf("out-of-range String = %q", Status(99).String())
	}
}

func TestStatusColours(t *testing.T) {
	if StatusSuccessful.Colour() != "green" || StatusFailed.Colour() != "red" ||
		StatusRunning.Colour() != "yellow" || StatusQueued.Colour() != "blue" {
		t.Fatal("JMC colours wrong")
	}
	if Status(99).Colour() != "grey" {
		t.Fatal("unknown status colour")
	}
}

func TestAggregate(t *testing.T) {
	mk := func(ss ...Status) []*Outcome {
		var out []*Outcome
		for _, s := range ss {
			out = append(out, &Outcome{Status: s})
		}
		return out
	}
	cases := []struct {
		name string
		in   []*Outcome
		want Status
	}{
		{"empty", nil, StatusSuccessful},
		{"all success", mk(StatusSuccessful, StatusSuccessful), StatusSuccessful},
		{"one failed dominates", mk(StatusSuccessful, StatusFailed, StatusRunning), StatusFailed},
		{"abort dominates running", mk(StatusRunning, StatusAborted), StatusAborted},
		{"running beats queued", mk(StatusQueued, StatusRunning), StatusRunning},
		{"held counts as live", mk(StatusHeld, StatusSuccessful), StatusRunning},
		{"queued when only waiting", mk(StatusQueued, StatusPending), StatusQueued},
		{"notdone folds to failed", mk(StatusSuccessful, StatusNotDone), StatusFailed},
	}
	for _, c := range cases {
		if got := Aggregate(c.in); got != c.want {
			t.Errorf("%s: Aggregate = %s, want %s", c.name, got, c.want)
		}
	}
}

func treeOutcome() *Outcome {
	return &Outcome{
		Action: "job", Kind: KindJob, Status: StatusRunning, Name: "cfd",
		Children: []*Outcome{
			{Action: "cc", Kind: KindCompile, Status: StatusSuccessful},
			{Action: "run", Kind: KindExecute, Status: StatusRunning, Reason: "on T3E",
				Children: nil},
			{Action: "sub", Kind: KindJob, Status: StatusQueued,
				Children: []*Outcome{
					{Action: "sub.t", Kind: KindUser, Status: StatusQueued},
				}},
		},
	}
}

func TestOutcomeFind(t *testing.T) {
	o := treeOutcome()
	hit, ok := o.Find("sub.t")
	if !ok || hit.Kind != KindUser {
		t.Fatalf("Find(sub.t) = %+v, %v", hit, ok)
	}
	if _, ok := o.Find("nope"); ok {
		t.Fatal("found phantom action")
	}
	self, ok := o.Find("job")
	if !ok || self != o {
		t.Fatal("Find(self) failed")
	}
}

func TestRenderDepth(t *testing.T) {
	o := treeOutcome()
	full := o.Render(-1)
	if !strings.Contains(full, "sub.t") {
		t.Fatalf("full render missing grandchild:\n%s", full)
	}
	if !strings.Contains(full, "[yellow]") || !strings.Contains(full, "— on T3E") {
		t.Fatalf("render missing colour or reason:\n%s", full)
	}
	top := o.Render(0)
	if strings.Contains(top, "cc") || strings.Count(top, "\n") != 1 {
		t.Fatalf("depth-0 render shows children:\n%s", top)
	}
	one := o.Render(1)
	if !strings.Contains(one, "cc") || strings.Contains(one, "sub.t") {
		t.Fatalf("depth-1 render wrong:\n%s", one)
	}
}

func TestSummarise(t *testing.T) {
	s := Summarise(treeOutcome())
	if s.Total != 5 {
		t.Fatalf("Total = %d, want 5", s.Total)
	}
	if s.Done != 1 {
		t.Fatalf("Done = %d, want 1 (only cc terminal)", s.Done)
	}
	if s.Failed != 0 {
		t.Fatalf("Failed = %d", s.Failed)
	}
	if s.Status != StatusRunning {
		t.Fatalf("Status = %s", s.Status)
	}
}

func TestNewOutcome(t *testing.T) {
	task := &UserTask{TaskBase: TaskBase{Header: Header{ActionID: "u1", ActionName: "list"}}, Command: "ls"}
	o := NewOutcome(task)
	if o.Action != "u1" || o.Name != "list" || o.Kind != KindUser || o.Status != StatusPending {
		t.Fatalf("NewOutcome = %+v", o)
	}
}
