package ajo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"unicore/internal/core"
	"unicore/internal/resources"
)

// allConcreteActions returns one populated instance of every concrete class
// in Figure 3.
func allConcreteActions() []Action {
	return []Action{
		sampleJob(),
		&ExecuteTask{TaskBase: TaskBase{Header: Header{ActionID: "e"}, Resources: resources.Request{Processors: 2}},
			Executable: "a.out", Arguments: []string{"-x", "1"}, Environment: map[string]string{"OMP_NUM_THREADS": "4"}, Stdin: "in.dat"},
		&CompileTask{TaskBase: TaskBase{Header: Header{ActionID: "c"}}, Language: "f90", Sources: []string{"m.f90"}, Options: []string{"-O3"}, Output: "m.o"},
		&LinkTask{TaskBase: TaskBase{Header: Header{ActionID: "l"}}, Objects: []string{"m.o"}, Libraries: []string{"MPI"}, Output: "a.out"},
		&UserTask{TaskBase: TaskBase{Header: Header{ActionID: "u"}}, Command: "echo hello"},
		&ScriptTask{TaskBase: TaskBase{Header: Header{ActionID: "s"}}, Script: "echo hi\n"},
		&ImportTask{Header: Header{ActionID: "i"}, Source: ImportSource{Inline: []byte{1, 2, 3}}, To: "f"},
		&ExportTask{Header: Header{ActionID: "x"}, From: "f", ToXspace: "/home/u/f"},
		&TransferTask{Header: Header{ActionID: "t"}, FromAction: "sub", Files: []string{"a", "b"}},
		&ControlService{Header: Header{ActionID: "ctl"}, Job: "FZJ-000001", Op: OpAbort},
		&ListService{Header: Header{ActionID: "ls"}},
		&QueryService{Header: Header{ActionID: "q"}, Query: QueryJobStatus, Job: "FZJ-000001"},
	}
}

func TestJSONRoundTripAllKinds(t *testing.T) {
	for _, a := range allConcreteActions() {
		data, err := Marshal(a)
		if err != nil {
			t.Fatalf("%s: marshal: %v", a.Kind(), err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", a.Kind(), err)
		}
		if back.Kind() != a.Kind() || back.ID() != a.ID() {
			t.Fatalf("%s: identity lost: got %s/%s", a.Kind(), back.Kind(), back.ID())
		}
		if !reflect.DeepEqual(normalise(a), normalise(back)) {
			t.Fatalf("%s: round trip mismatch:\n%#v\n%#v", a.Kind(), a, back)
		}
	}
}

func TestGobRoundTripAllKinds(t *testing.T) {
	for _, a := range allConcreteActions() {
		data, err := MarshalGob(a)
		if err != nil {
			t.Fatalf("%s: gob marshal: %v", a.Kind(), err)
		}
		back, err := UnmarshalGob(data)
		if err != nil {
			t.Fatalf("%s: gob unmarshal: %v", a.Kind(), err)
		}
		if back.Kind() != a.Kind() || back.ID() != a.ID() {
			t.Fatalf("%s: identity lost", a.Kind())
		}
	}
}

// normalise re-encodes via plain JSON so nil/empty slice differences do not
// produce false mismatches.
func normalise(a Action) string {
	b, _ := json.Marshal(a)
	return string(b)
}

func TestJSONEnvelopeShape(t *testing.T) {
	data, err := Marshal(&ListService{Header: Header{ActionID: "ls1"}})
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Kind string          `json:"kind"`
		Body json.RawMessage `json:"body"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Kind != "ListService" {
		t.Fatalf("envelope kind = %q (want the Figure 3 class name)", env.Kind)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"kind":"NoSuchTask","body":{}}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Unmarshal([]byte(`{`)); err == nil {
		t.Fatal("broken JSON accepted")
	}
	if _, err := Unmarshal([]byte(`{"kind":"UserTask","body":[1,2]}`)); err == nil {
		t.Fatal("mistyped body accepted")
	}
	if _, err := Marshal(nil); err == nil {
		t.Fatal("nil action marshalled")
	}
	if _, err := UnmarshalGob([]byte("garbage")); err == nil {
		t.Fatal("gob garbage accepted")
	}
}

func TestDeeplyNestedJobRoundTrip(t *testing.T) {
	// Build a job nested 6 levels deep, one task per level — the recursive
	// structure of §3.
	depth := 6
	var build func(level int) *AbstractJob
	build = func(level int) *AbstractJob {
		j := &AbstractJob{
			Header: Header{ActionID: ActionID(fmt.Sprintf("lvl%d", level))},
			Target: core.Target{Usite: core.Usite(fmt.Sprintf("U%d", level)), Vsite: "V"},
			Actions: ActionList{
				&UserTask{TaskBase: TaskBase{Header: Header{ActionID: ActionID(fmt.Sprintf("t%d", level))}}, Command: "ls"},
			},
		}
		if level < depth {
			j.Actions = append(j.Actions, build(level+1))
			j.Dependencies = []Dependency{{Before: j.Actions[0].ID(), After: j.Actions[1].ID()}}
		}
		return j
	}
	root := build(1)
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	bj := back.(*AbstractJob)
	if err := bj.Validate(); err != nil {
		t.Fatalf("decoded job invalid: %v", err)
	}
	if got, want := bj.CountActions(), root.CountActions(); got != want {
		t.Fatalf("decoded action count %d, want %d", got, want)
	}
	// Identity must survive to the innermost level.
	cur := bj
	for i := 1; i < depth; i++ {
		var next *AbstractJob
		for _, a := range cur.Actions {
			if j, ok := a.(*AbstractJob); ok {
				next = j
			}
		}
		if next == nil {
			t.Fatalf("nesting lost at level %d", i)
		}
		cur = next
	}
	if cur.ActionID != ActionID(fmt.Sprintf("lvl%d", depth)) {
		t.Fatalf("innermost ID = %s", cur.ActionID)
	}
}

func TestGobAndJSONAgree(t *testing.T) {
	j := sampleJob()
	gobData, err := MarshalGob(j)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGob(gobData)
	if err != nil {
		t.Fatal(err)
	}
	if normalise(j) != normalise(back) {
		t.Fatal("gob round trip changed the job")
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	o := &Outcome{
		Action: "job", Kind: KindJob, Status: StatusRunning,
		Children: []*Outcome{
			{Action: "cc", Kind: KindCompile, Status: StatusSuccessful, Stdout: []byte("done"), ExitCode: 0,
				Files: []FileRecord{{Path: "m.o", Size: 100, CRC: 42}}},
			{Action: "run", Kind: KindExecute, Status: StatusRunning, Started: time.Date(1999, 8, 3, 10, 0, 0, 0, time.UTC)},
		},
	}
	data, err := MarshalOutcome(o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, back) {
		t.Fatalf("outcome round trip mismatch:\n%+v\n%+v", o, back)
	}
	if _, err := UnmarshalOutcome([]byte("{{")); err == nil {
		t.Fatal("garbage outcome accepted")
	}
}

// Property: any UserTask round-trips byte-identically through both codecs.
func TestQuickUserTaskRoundTrip(t *testing.T) {
	f := func(id string, cmd string, cpus uint8) bool {
		if id == "" || cmd == "" {
			return true
		}
		u := &UserTask{
			TaskBase: TaskBase{Header: Header{ActionID: ActionID(id)}, Resources: resources.Request{Processors: int(cpus)}},
			Command:  cmd,
		}
		j1, err := Marshal(u)
		if err != nil {
			return false
		}
		b1, err := Unmarshal(j1)
		if err != nil {
			return false
		}
		g1, err := MarshalGob(u)
		if err != nil {
			return false
		}
		b2, err := UnmarshalGob(g1)
		if err != nil {
			return false
		}
		return normalise(b1) == normalise(u) && normalise(b2) == normalise(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: inline import data of any content survives the JSON round trip
// (it is base64 inside the AJO, as workstation files are carried inside the
// AJO in the paper).
func TestQuickInlineImportDataPreserved(t *testing.T) {
	f := func(data []byte) bool {
		imp := &ImportTask{Header: Header{ActionID: "i"}, Source: ImportSource{Inline: data}, To: "f"}
		enc, err := Marshal(imp)
		if err != nil {
			return false
		}
		back, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		bi, ok := back.(*ImportTask)
		return ok && bytes.Equal(bi.Source.Inline, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
