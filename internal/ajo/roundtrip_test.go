package ajo

import (
	"reflect"
	"testing"
	"time"

	"unicore/internal/core"
	"unicore/internal/resources"
)

// exhaustiveActions returns, per registered Kind, an instance with EVERY
// field populated with a non-zero value. The journal replays admissions
// through the gob codec, so an action field either codec silently dropped
// would corrupt recovered jobs — these fixtures make any such regression a
// test failure, field by field.
func exhaustiveActions() map[Kind]Action {
	fullResources := resources.Request{
		Processors: 64,
		RunTime:    90 * time.Minute,
		MemoryMB:   512,
		PermDiskMB: 2048,
		TempDiskMB: 1024,
	}
	sub := &AbstractJob{
		Header: Header{ActionID: "nested", ActionName: "nested group"},
		Target: core.Target{Usite: "ZIB", Vsite: "T3E"},
		Actions: ActionList{
			&UserTask{
				TaskBase: TaskBase{Header: Header{ActionID: "inner", ActionName: "inner task"}, Resources: fullResources},
				Command:  "echo inner",
			},
		},
	}
	return map[Kind]Action{
		KindJob: &AbstractJob{
			Header:       Header{ActionID: "grp", ActionName: "job group"},
			Target:       core.Target{Usite: "FZJ", Vsite: "VPP"},
			UserDN:       core.MakeDN("Alice", "FZJ", "DE"),
			Project:      "hpc",
			SiteSecurity: map[string]string{"smartcard": "required"},
			Actions: ActionList{
				sub,
				&TransferTask{Header: Header{ActionID: "pull", ActionName: "pull"}, FromAction: "nested", Files: []string{"prepped.dat"}},
			},
			Dependencies: []Dependency{{Before: "nested", After: "pull", Files: []string{"prepped.dat"}}},
		},
		KindExecute: &ExecuteTask{
			TaskBase:    TaskBase{Header: Header{ActionID: "ex", ActionName: "execute"}, Resources: fullResources},
			Executable:  "a.out",
			Arguments:   []string{"-n", "8", "--verbose"},
			Environment: map[string]string{"OMP_NUM_THREADS": "8", "MODE": "prod"},
			Stdin:       "input.dat",
		},
		KindCompile: &CompileTask{
			TaskBase: TaskBase{Header: Header{ActionID: "cc", ActionName: "compile"}, Resources: fullResources},
			Language: "f90",
			Sources:  []string{"main.f90", "solver.f90"},
			Options:  []string{"-O3", "-fopenmp"},
			Output:   "main.o",
		},
		KindLink: &LinkTask{
			TaskBase:  TaskBase{Header: Header{ActionID: "ld", ActionName: "link"}, Resources: fullResources},
			Objects:   []string{"main.o", "solver.o"},
			Libraries: []string{"MPI", "BLAS"},
			Output:    "a.out",
		},
		KindUser: &UserTask{
			TaskBase: TaskBase{Header: Header{ActionID: "ut", ActionName: "user"}, Resources: fullResources},
			Command:  "grep -c converged log.txt",
		},
		KindScript: &ScriptTask{
			TaskBase: TaskBase{Header: Header{ActionID: "sc", ActionName: "script"}, Resources: fullResources},
			Script:   "cpu 10m\nwrite out.dat 512\necho done\n",
		},
		KindImport: &ImportTask{
			Header: Header{ActionID: "imp", ActionName: "import"},
			Source: ImportSource{Inline: []byte{0x00, 0x01, 0xfe, 0xff}},
			To:     "input.dat",
		},
		KindExport: &ExportTask{
			Header:   Header{ActionID: "exp", ActionName: "export"},
			From:     "result.dat",
			ToXspace: "/results/run-42.dat",
		},
		KindTransfer: &TransferTask{
			Header:     Header{ActionID: "tr", ActionName: "transfer"},
			FromAction: "nested",
			Files:      []string{"a.dat", "b.dat"},
		},
		KindControl: &ControlService{
			Header: Header{ActionID: "ctl", ActionName: "control"},
			Job:    "FZJ-000042",
			Op:     OpResume,
		},
		KindList: &ListService{
			Header: Header{ActionID: "ls", ActionName: "list"},
		},
		KindQuery: &QueryService{
			Header: Header{ActionID: "qy", ActionName: "query"},
			Query:  QueryResourcePage,
			Job:    "FZJ-000042",
			Target: core.Target{Usite: "RUS", Vsite: "SX4"},
		},
	}
}

// TestExhaustiveFixturesCoverEveryKind pins the fixture set to the codec
// registry: adding a Kind without extending the fixtures (or the codecs)
// fails here first.
func TestExhaustiveFixturesCoverEveryKind(t *testing.T) {
	fixtures := exhaustiveActions()
	for _, k := range Kinds() {
		a, ok := fixtures[k]
		if !ok {
			t.Errorf("no exhaustive fixture for kind %s", k)
			continue
		}
		if a.Kind() != k {
			t.Errorf("fixture under key %s reports kind %s", k, a.Kind())
		}
		if err := a.Validate(); err != nil {
			t.Errorf("fixture %s does not validate: %v", k, err)
		}
		// The decoder must know how to allocate it.
		alloc, err := newByKind(k)
		if err != nil {
			t.Errorf("newByKind(%s): %v", k, err)
		} else if alloc.Kind() != k {
			t.Errorf("newByKind(%s) allocates %s", k, alloc.Kind())
		}
	}
	if len(fixtures) != len(Kinds()) {
		t.Errorf("fixtures = %d kinds, registry = %d", len(fixtures), len(Kinds()))
	}
}

// TestExhaustiveRoundTripBothCodecs round-trips every fully populated action
// through both wire codecs and requires structural equality — no field may
// be silently mangled, in either the JSON envelope or the gob stream a
// journal replay decodes.
func TestExhaustiveRoundTripBothCodecs(t *testing.T) {
	codecs := []struct {
		name      string
		marshal   func(Action) ([]byte, error)
		unmarshal func([]byte) (Action, error)
	}{
		{"json", Marshal, Unmarshal},
		{"gob", MarshalGob, UnmarshalGob},
	}
	for _, c := range codecs {
		for k, a := range exhaustiveActions() {
			data, err := c.marshal(a)
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", c.name, k, err)
			}
			back, err := c.unmarshal(data)
			if err != nil {
				t.Fatalf("%s/%s: unmarshal: %v", c.name, k, err)
			}
			if !reflect.DeepEqual(a, back) {
				t.Errorf("%s/%s: round trip mangled the action:\nsent: %#v\ngot:  %#v", c.name, k, a, back)
			}
		}
	}
}

// TestCrossCodecAgreement re-encodes a gob round-trip through JSON (and vice
// versa): whatever path an AJO takes through the system — consigned over
// https (JSON), relayed over the firewall socket (gob), journaled and
// replayed (gob) — the object must stay the same.
func TestCrossCodecAgreement(t *testing.T) {
	for k, a := range exhaustiveActions() {
		g, err := MarshalGob(a)
		if err != nil {
			t.Fatalf("%s: gob: %v", k, err)
		}
		fromGob, err := UnmarshalGob(g)
		if err != nil {
			t.Fatalf("%s: ungob: %v", k, err)
		}
		j, err := Marshal(fromGob)
		if err != nil {
			t.Fatalf("%s: json after gob: %v", k, err)
		}
		fromJSON, err := Unmarshal(j)
		if err != nil {
			t.Fatalf("%s: unjson: %v", k, err)
		}
		if !reflect.DeepEqual(a, fromJSON) {
			t.Errorf("%s: gob→json chain mangled the action:\nsent: %#v\ngot:  %#v", k, a, fromJSON)
		}
	}
}
