package ajo

import (
	"fmt"
	"strings"
	"time"
)

// Status is the state of an abstract action. "A Java class Outcome is
// defined to contain the status of an abstract action and the results of its
// execution" (§5.3); the JMC colours its icons from these states (§5.7).
type Status int

const (
	// StatusPending: consigned but not yet eligible (predecessors unfinished).
	StatusPending Status = iota
	// StatusQueued: delivered to the destination batch system, waiting.
	StatusQueued
	// StatusRunning: executing on the destination system.
	StatusRunning
	// StatusHeld: suspended by a ControlService hold.
	StatusHeld
	// StatusSuccessful: completed with exit code zero.
	StatusSuccessful
	// StatusFailed: completed unsuccessfully.
	StatusFailed
	// StatusAborted: cancelled by a ControlService abort.
	StatusAborted
	// StatusNotDone: never ran because a predecessor failed or was aborted.
	StatusNotDone
)

var statusNames = [...]string{
	"PENDING", "QUEUED", "RUNNING", "HELD",
	"SUCCESSFUL", "FAILED", "ABORTED", "NOT_DONE",
}

func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("Status(%d)", int(s))
	}
	return statusNames[s]
}

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusSuccessful, StatusFailed, StatusAborted, StatusNotDone:
		return true
	}
	return false
}

// Colour returns the JMC display colour for the status — "the icons are
// colored to reflect the job status in a seamless way" (§5.7).
func (s Status) Colour() string {
	switch s {
	case StatusSuccessful:
		return "green"
	case StatusFailed, StatusAborted:
		return "red"
	case StatusRunning:
		return "yellow"
	case StatusQueued, StatusPending, StatusHeld:
		return "blue"
	default:
		return "grey"
	}
}

// FileRecord describes a file produced or exported by an action.
type FileRecord struct {
	Path string `json:"path"`
	Size int64  `json:"size"`
	CRC  uint64 `json:"crc,omitempty"`
}

// Outcome carries the status and results of one action; job outcomes contain
// one child outcome per component, mirroring the AJO recursion.
type Outcome struct {
	Action   ActionID     `json:"action"`
	Name     string       `json:"name,omitempty"`
	Kind     Kind         `json:"kind"`
	Status   Status       `json:"status"`
	Reason   string       `json:"reason,omitempty"`
	ExitCode int          `json:"exitCode,omitempty"`
	Stdout   []byte       `json:"stdout,omitempty"`
	Stderr   []byte       `json:"stderr,omitempty"`
	Files    []FileRecord `json:"files,omitempty"`
	Started  time.Time    `json:"started,omitempty"`
	Finished time.Time    `json:"finished,omitempty"`
	Children []*Outcome   `json:"children,omitempty"`
}

// NewOutcome initialises a pending outcome for an action.
func NewOutcome(a Action) *Outcome {
	return &Outcome{Action: a.ID(), Name: a.Name(), Kind: a.Kind(), Status: StatusPending}
}

// Find locates the outcome for id in the tree rooted at o (including o).
func (o *Outcome) Find(id ActionID) (*Outcome, bool) {
	if o.Action == id {
		return o, true
	}
	for _, c := range o.Children {
		if hit, ok := c.Find(id); ok {
			return hit, true
		}
	}
	return nil, false
}

// Aggregate computes a job-level status from child statuses: failure and
// abort dominate, then any non-terminal state keeps the job live, otherwise
// success.
func Aggregate(children []*Outcome) Status {
	if len(children) == 0 {
		return StatusSuccessful
	}
	sawRunning, sawQueuedOrPending := false, false
	for _, c := range children {
		switch c.Status {
		case StatusFailed:
			return StatusFailed
		case StatusAborted:
			return StatusAborted
		case StatusRunning, StatusHeld:
			sawRunning = true
		case StatusQueued, StatusPending:
			sawQueuedOrPending = true
		case StatusNotDone:
			return StatusFailed
		}
	}
	if sawRunning {
		return StatusRunning
	}
	if sawQueuedOrPending {
		return StatusQueued
	}
	return StatusSuccessful
}

// Render produces the JMC-style indented status tree: one line per action
// with its colour, "depending on the chosen level of detail the status is
// displayed for job groups and/or tasks" (§5.7). depth < 0 renders fully.
func (o *Outcome) Render(depth int) string {
	var b strings.Builder
	o.render(&b, 0, depth)
	return b.String()
}

func (o *Outcome) render(b *strings.Builder, level, depth int) {
	fmt.Fprintf(b, "%s[%s] %s %s", strings.Repeat("  ", level), o.Status.Colour(), o.Kind, o.Action)
	if o.Name != "" {
		fmt.Fprintf(b, " (%s)", o.Name)
	}
	fmt.Fprintf(b, ": %s", o.Status)
	if o.Reason != "" {
		fmt.Fprintf(b, " — %s", o.Reason)
	}
	b.WriteByte('\n')
	if depth == 0 {
		return
	}
	for _, c := range o.Children {
		c.render(b, level+1, depth-1)
	}
}

// Summary is the compact per-job status the poll endpoint returns.
type Summary struct {
	Job     string    `json:"job"`
	Status  Status    `json:"status"`
	Total   int       `json:"total"`  // total actions
	Done    int       `json:"done"`   // terminal actions
	Failed  int       `json:"failed"` // failed/aborted/notdone actions
	Updated time.Time `json:"updated"`
}

// Summarise folds an outcome tree into a Summary (job field left empty).
func Summarise(root *Outcome) Summary {
	var s Summary
	var rec func(o *Outcome)
	rec = func(o *Outcome) {
		s.Total++
		if o.Status.Terminal() {
			s.Done++
		}
		switch o.Status {
		case StatusFailed, StatusAborted, StatusNotDone:
			s.Failed++
		}
		for _, c := range o.Children {
			rec(c)
		}
	}
	rec(root)
	s.Status = root.Status
	return s
}
