// Package ajo implements the Abstract Job Object — "a recursive Java object
// specifying the protocol between GUI, server, and system" (paper §4), here
// a recursive Go object. The type hierarchy mirrors Figure 3:
//
//	AbstractAction
//	├── AbstractJobObject            (AbstractJob: the recursive job group)
//	├── AbstractTaskObject
//	│   ├── ExecuteTask
//	│   │   ├── CompileTask
//	│   │   ├── LinkTask
//	│   │   ├── UserTask
//	│   │   └── ExecuteScriptTask    (ScriptTask)
//	│   └── FileTask
//	│       ├── ImportTask
//	│       ├── ExportTask
//	│       └── TransferTask
//	└── AbstractService
//	    ├── ControlService
//	    ├── ListService
//	    └── QueryService
//
// "From a structural viewpoint a UNICORE job is a recursive object
// containing job groups and tasks" (§3): an AbstractJob holds a DAG of
// actions, among which further AbstractJobs may appear, each carrying the
// destination Vsite for its tasks.
package ajo

import (
	"errors"
	"fmt"
	"sync/atomic"

	"unicore/internal/core"
	"unicore/internal/dag"
	"unicore/internal/resources"
)

// Kind identifies the concrete class of an action. The values are the class
// names from Figure 3 so serialised AJOs read like the paper.
type Kind string

const (
	KindJob      Kind = "AbstractJobObject"
	KindExecute  Kind = "ExecuteTask"
	KindCompile  Kind = "CompileTask"
	KindLink     Kind = "LinkTask"
	KindUser     Kind = "UserTask"
	KindScript   Kind = "ExecuteScriptTask"
	KindImport   Kind = "ImportTask"
	KindExport   Kind = "ExportTask"
	KindTransfer Kind = "TransferTask"
	KindControl  Kind = "ControlService"
	KindList     Kind = "ListService"
	KindQuery    Kind = "QueryService"
)

// Kinds lists every concrete action class (all leaves of Figure 3 plus the
// recursive AbstractJobObject).
func Kinds() []Kind {
	return []Kind{
		KindJob, KindExecute, KindCompile, KindLink, KindUser, KindScript,
		KindImport, KindExport, KindTransfer, KindControl, KindList, KindQuery,
	}
}

// IsTask reports whether k is an AbstractTaskObject subclass — "the unit
// which boils down to a batch job for the destination system" (§3) or a file
// operation.
func (k Kind) IsTask() bool {
	switch k {
	case KindExecute, KindCompile, KindLink, KindUser, KindScript,
		KindImport, KindExport, KindTransfer:
		return true
	}
	return false
}

// IsExecutable reports whether k incarnates to a batch job (an ExecuteTask
// subclass, as opposed to a FileTask handled by the NJS itself).
func (k Kind) IsExecutable() bool {
	switch k {
	case KindExecute, KindCompile, KindLink, KindUser, KindScript:
		return true
	}
	return false
}

// IsFileTask reports whether k is a FileTask subclass.
func (k Kind) IsFileTask() bool {
	return k == KindImport || k == KindExport || k == KindTransfer
}

// IsService reports whether k is an AbstractService subclass.
func (k Kind) IsService() bool {
	return k == KindControl || k == KindList || k == KindQuery
}

// ActionID identifies an action uniquely within its enclosing job group.
type ActionID string

var idCounter atomic.Int64

// NewID mints a process-unique action ID for ad-hoc construction. The JPA
// builder assigns its own deterministic IDs.
func NewID(prefix string) ActionID {
	return ActionID(fmt.Sprintf("%s-%06d", prefix, idCounter.Add(1)))
}

// Action is the AbstractAction of Figure 3.
type Action interface {
	ID() ActionID
	Name() string
	Kind() Kind
	// Validate checks the action's own fields (not graph structure; the
	// enclosing AbstractJob validates that).
	Validate() error
}

// Header carries the identity shared by every action.
type Header struct {
	ActionID   ActionID `json:"id"`
	ActionName string   `json:"name,omitempty"`
}

// ID returns the action's identifier.
func (h Header) ID() ActionID { return h.ActionID }

// Name returns the human-readable action name.
func (h Header) Name() string { return h.ActionName }

func (h Header) validateHeader() error {
	if h.ActionID == "" {
		return errors.New("ajo: action without ID")
	}
	return nil
}

// TaskBase is shared by all executable tasks: identity plus the resource
// request the NJS incarnates into batch directives (§5.4).
type TaskBase struct {
	Header
	Resources resources.Request `json:"resources,omitempty"`
}

// --- ExecuteTask subclasses ---

// ExecuteTask runs an existing executable from the job's Uspace.
type ExecuteTask struct {
	TaskBase
	Executable  string            `json:"executable"`
	Arguments   []string          `json:"arguments,omitempty"`
	Environment map[string]string `json:"environment,omitempty"`
	Stdin       string            `json:"stdin,omitempty"` // Uspace-relative input file
}

func (t *ExecuteTask) Kind() Kind { return KindExecute }

func (t *ExecuteTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if t.Executable == "" {
		return fmt.Errorf("ajo: ExecuteTask %s: empty executable", t.ActionID)
	}
	return nil
}

// CompileTask compiles sources with the destination system's compiler. "At
// this point in time the compile is implemented for F90" (§5.7); the
// incarnation database decides which compilers exist per Vsite.
type CompileTask struct {
	TaskBase
	Language string   `json:"language"` // e.g. "f90"
	Sources  []string `json:"sources"`  // Uspace-relative source files
	Options  []string `json:"options,omitempty"`
	Output   string   `json:"output"` // Uspace-relative object file
}

func (t *CompileTask) Kind() Kind { return KindCompile }

func (t *CompileTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if t.Language == "" {
		return fmt.Errorf("ajo: CompileTask %s: empty language", t.ActionID)
	}
	if len(t.Sources) == 0 {
		return fmt.Errorf("ajo: CompileTask %s: no sources", t.ActionID)
	}
	if t.Output == "" {
		return fmt.Errorf("ajo: CompileTask %s: empty output", t.ActionID)
	}
	return nil
}

// LinkTask links objects and libraries into an executable.
type LinkTask struct {
	TaskBase
	Objects   []string `json:"objects"`
	Libraries []string `json:"libraries,omitempty"` // abstract names resolved via the resource page
	Output    string   `json:"output"`
}

func (t *LinkTask) Kind() Kind { return KindLink }

func (t *LinkTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if len(t.Objects) == 0 {
		return fmt.Errorf("ajo: LinkTask %s: no objects", t.ActionID)
	}
	if t.Output == "" {
		return fmt.Errorf("ajo: LinkTask %s: empty output", t.ActionID)
	}
	return nil
}

// UserTask runs a raw user command line on the destination system.
type UserTask struct {
	TaskBase
	Command string `json:"command"`
}

func (t *UserTask) Kind() Kind { return KindUser }

func (t *UserTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if t.Command == "" {
		return fmt.Errorf("ajo: UserTask %s: empty command", t.ActionID)
	}
	return nil
}

// ScriptTask (ExecuteScriptTask) submits an existing batch script — the
// migration path for "existing batch applications" (§5.7).
type ScriptTask struct {
	TaskBase
	Script string `json:"script"` // script text, carried inside the AJO
}

func (t *ScriptTask) Kind() Kind { return KindScript }

func (t *ScriptTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if t.Script == "" {
		return fmt.Errorf("ajo: ScriptTask %s: empty script", t.ActionID)
	}
	return nil
}

// --- FileTask subclasses (§5.6 data model) ---

// ImportSource describes where imported data comes from: inline bytes from
// the user's workstation ("files from the user's workstation needed in a job
// are put into the AJO", §5.6), a path in the Vsite's Xspace, or a staged
// upload already spooled at the Vsite. Exactly one of the three must be set.
type ImportSource struct {
	// Inline carries workstation data inside the AJO — fine for small files,
	// but a huge input makes the whole signed consign envelope huge.
	Inline []byte `json:"inline,omitempty"`
	// XspacePath names a file in the destination Vsite's Xspace.
	XspacePath string `json:"xspacePath,omitempty"`
	// Staged references a committed staged upload (the transfer handle
	// returned by the protocol-v2 MsgPutOpen/MsgPutChunk/MsgPutCommit
	// sequence) in the destination Vsite's spool area, so bulk inputs travel
	// ahead of the AJO in CRC-checked chunks instead of inline. The handle
	// must belong to the consigning user.
	Staged string `json:"staged,omitempty"`
}

// count reports how many of the alternative sources are set. A non-nil empty
// Inline counts: it deliberately imports an empty file.
func (s ImportSource) count() int {
	n := 0
	if s.Inline != nil {
		n++
	}
	if s.XspacePath != "" {
		n++
	}
	if s.Staged != "" {
		n++
	}
	return n
}

// ImportTask stages data into the job's Uspace.
type ImportTask struct {
	Header
	Source ImportSource `json:"source"`
	To     string       `json:"to"` // Uspace-relative destination
}

func (t *ImportTask) Kind() Kind { return KindImport }

func (t *ImportTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if t.To == "" {
		return fmt.Errorf("ajo: ImportTask %s: empty destination", t.ActionID)
	}
	switch t.Source.count() {
	case 0:
		return fmt.Errorf("ajo: ImportTask %s: no source", t.ActionID)
	case 1:
		return nil
	}
	return fmt.Errorf("ajo: ImportTask %s: more than one of inline, Xspace, and staged source", t.ActionID)
}

// ExportTask copies a result from the Uspace to permanent Xspace storage.
// "Export is done to Xspace at a Vsite ... implemented as a copy process"
// (§5.6).
type ExportTask struct {
	Header
	From     string `json:"from"` // Uspace-relative source
	ToXspace string `json:"toXspace"`
}

func (t *ExportTask) Kind() Kind { return KindExport }

func (t *ExportTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if t.From == "" || t.ToXspace == "" {
		return fmt.Errorf("ajo: ExportTask %s: empty from/to", t.ActionID)
	}
	return nil
}

// StagedHandles returns the staged-upload handles referenced by the job's
// direct ImportTasks. A replica pool uses them as the consign-affinity hint:
// the chunks live in one replica's spool, so the admission must land there.
// Only direct children matter — sub-job groups are consigned separately and
// carry their own hints.
func (j *AbstractJob) StagedHandles() []string {
	var out []string
	for _, a := range j.Actions {
		if imp, ok := a.(*ImportTask); ok && imp.Source.Staged != "" {
			out = append(out, imp.Source.Staged)
		}
	}
	return out
}

// TransferTask moves files between the Uspaces of two job groups, possibly
// at different Usites ("the file transfer between Uspaces has to be
// accomplished through NJS – NJS communication via the gateway", §5.6).
// FromAction names a sibling action (normally a sub-AbstractJob) whose
// Uspace holds the files.
type TransferTask struct {
	Header
	FromAction ActionID `json:"fromAction"`
	Files      []string `json:"files"`
}

func (t *TransferTask) Kind() Kind { return KindTransfer }

func (t *TransferTask) Validate() error {
	if err := t.validateHeader(); err != nil {
		return err
	}
	if t.FromAction == "" {
		return fmt.Errorf("ajo: TransferTask %s: empty source action", t.ActionID)
	}
	if len(t.Files) == 0 {
		return fmt.Errorf("ajo: TransferTask %s: no files", t.ActionID)
	}
	return nil
}

// --- AbstractService subclasses ---

// ControlOp enumerates job-control operations.
type ControlOp string

const (
	OpAbort  ControlOp = "abort"
	OpHold   ControlOp = "hold"
	OpResume ControlOp = "resume"
)

// ControlService controls a previously consigned job (JMC "control the
// jobs", §5.2).
type ControlService struct {
	Header
	Job core.JobID `json:"job"`
	Op  ControlOp  `json:"op"`
}

func (s *ControlService) Kind() Kind { return KindControl }

func (s *ControlService) Validate() error {
	if err := s.validateHeader(); err != nil {
		return err
	}
	if s.Job == "" {
		return fmt.Errorf("ajo: ControlService %s: empty job", s.ActionID)
	}
	switch s.Op {
	case OpAbort, OpHold, OpResume:
		return nil
	}
	return fmt.Errorf("ajo: ControlService %s: unknown op %q", s.ActionID, s.Op)
}

// ListService lists the consigning user's jobs at a Usite.
type ListService struct {
	Header
}

func (s *ListService) Kind() Kind { return KindList }

func (s *ListService) Validate() error { return s.validateHeader() }

// QueryKind selects what a QueryService asks for.
type QueryKind string

const (
	QueryJobStatus    QueryKind = "jobStatus"
	QueryResourcePage QueryKind = "resourcePage"
)

// QueryService retrieves job status or a Vsite resource page.
type QueryService struct {
	Header
	Query  QueryKind   `json:"query"`
	Job    core.JobID  `json:"jobID,omitempty"`
	Target core.Target `json:"target,omitempty"`
}

func (s *QueryService) Kind() Kind { return KindQuery }

func (s *QueryService) Validate() error {
	if err := s.validateHeader(); err != nil {
		return err
	}
	switch s.Query {
	case QueryJobStatus:
		if s.Job == "" {
			return fmt.Errorf("ajo: QueryService %s: job status query without job", s.ActionID)
		}
	case QueryResourcePage:
		if s.Target.IsZero() {
			return fmt.Errorf("ajo: QueryService %s: resource page query without target", s.ActionID)
		}
	default:
		return fmt.Errorf("ajo: QueryService %s: unknown query %q", s.ActionID, s.Query)
	}
	return nil
}

// --- AbstractJobObject ---

// Dependency declares that After runs only once Before completed
// successfully. Files optionally names data sets "created by the
// predecessor [that must be] available to the successor" (§5.7); within one
// job group they share the Uspace, across job groups the NJS transfers them.
type Dependency struct {
	Before ActionID `json:"before"`
	After  ActionID `json:"after"`
	Files  []string `json:"files,omitempty"`
}

// AbstractJob is the AbstractJobObject of Figure 3: the recursive job group.
// It "contains the directed acyclic job graph representing the job
// components together with their dependencies and information about the
// destination site (Vsite), the user, site specific security, and the user
// account group" (§5.3).
type AbstractJob struct {
	Header
	Target       core.Target       `json:"target"`
	UserDN       core.DN           `json:"userDN,omitempty"`  // set by the consigning client
	Project      string            `json:"project,omitempty"` // user account group
	SiteSecurity map[string]string `json:"siteSecurity,omitempty"`
	Actions      ActionList        `json:"actions"`
	Dependencies []Dependency      `json:"dependencies,omitempty"`
}

func (j *AbstractJob) Kind() Kind { return KindJob }

// Find returns the direct child action with the given ID.
func (j *AbstractJob) Find(id ActionID) (Action, bool) {
	for _, a := range j.Actions {
		if a.ID() == id {
			return a, true
		}
	}
	return nil, false
}

// Graph builds the dependency DAG over the job's direct children.
func (j *AbstractJob) Graph() (*dag.Graph, error) {
	g := dag.New()
	for _, a := range j.Actions {
		if err := g.AddNode(string(a.ID())); err != nil {
			return nil, err
		}
	}
	for _, d := range j.Dependencies {
		if err := g.AddEdge(string(d.Before), string(d.After)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Validate checks the whole recursive structure: action field validity,
// unique IDs per level, dependency references, acyclicity, and that nested
// job groups carry a destination.
func (j *AbstractJob) Validate() error {
	if err := j.validateHeader(); err != nil {
		return err
	}
	if j.Target.IsZero() {
		return fmt.Errorf("ajo: job %s: no destination Vsite", j.ActionID)
	}
	seen := make(map[ActionID]bool, len(j.Actions))
	for _, a := range j.Actions {
		if a == nil {
			return fmt.Errorf("ajo: job %s: nil action", j.ActionID)
		}
		if seen[a.ID()] {
			return fmt.Errorf("ajo: job %s: duplicate action ID %q", j.ActionID, a.ID())
		}
		seen[a.ID()] = true
		if a.Kind().IsService() {
			return fmt.Errorf("ajo: job %s: service %s cannot be a job component", j.ActionID, a.ID())
		}
		if err := a.Validate(); err != nil {
			return fmt.Errorf("ajo: job %s: %w", j.ActionID, err)
		}
	}
	for _, d := range j.Dependencies {
		if !seen[d.Before] {
			return fmt.Errorf("ajo: job %s: dependency references unknown action %q", j.ActionID, d.Before)
		}
		if !seen[d.After] {
			return fmt.Errorf("ajo: job %s: dependency references unknown action %q", j.ActionID, d.After)
		}
	}
	// TransferTask sources must reference sibling actions.
	for _, a := range j.Actions {
		if tr, ok := a.(*TransferTask); ok {
			if !seen[tr.FromAction] {
				return fmt.Errorf("ajo: job %s: transfer %s references unknown action %q", j.ActionID, tr.ActionID, tr.FromAction)
			}
		}
	}
	if _, err := j.Graph(); err != nil {
		return fmt.Errorf("ajo: job %s: %w", j.ActionID, err)
	}
	return nil
}

// Walk visits the job and, recursively, every nested action (pre-order).
func (j *AbstractJob) Walk(visit func(Action)) {
	visit(j)
	for _, a := range j.Actions {
		if sub, ok := a.(*AbstractJob); ok {
			sub.Walk(visit)
		} else {
			visit(a)
		}
	}
}

// CountActions returns the total number of actions in the tree, including
// the root.
func (j *AbstractJob) CountActions() int {
	n := 0
	j.Walk(func(Action) { n++ })
	return n
}

// MaxResources returns the component-wise maximum resource request across
// every executable task in this job group (not descending into sub-jobs,
// which are incarnated at their own Vsites).
func (j *AbstractJob) MaxResources() resources.Request {
	var r resources.Request
	for _, a := range j.Actions {
		switch t := a.(type) {
		case *ExecuteTask:
			r = r.Max(t.Resources)
		case *CompileTask:
			r = r.Max(t.Resources)
		case *LinkTask:
			r = r.Max(t.Resources)
		case *UserTask:
			r = r.Max(t.Resources)
		case *ScriptTask:
			r = r.Max(t.Resources)
		}
	}
	return r
}

// TaskResources extracts the resource request of an executable task action,
// if it has one.
func TaskResources(a Action) (resources.Request, bool) {
	switch t := a.(type) {
	case *ExecuteTask:
		return t.Resources, true
	case *CompileTask:
		return t.Resources, true
	case *LinkTask:
		return t.Resources, true
	case *UserTask:
		return t.Resources, true
	case *ScriptTask:
		return t.Resources, true
	}
	return resources.Request{}, false
}

// Interface conformance checks.
var (
	_ Action = (*AbstractJob)(nil)
	_ Action = (*ExecuteTask)(nil)
	_ Action = (*CompileTask)(nil)
	_ Action = (*LinkTask)(nil)
	_ Action = (*UserTask)(nil)
	_ Action = (*ScriptTask)(nil)
	_ Action = (*ImportTask)(nil)
	_ Action = (*ExportTask)(nil)
	_ Action = (*TransferTask)(nil)
	_ Action = (*ControlService)(nil)
	_ Action = (*ListService)(nil)
	_ Action = (*QueryService)(nil)
)
