package testbed

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/journal"
	"unicore/internal/machine"
	"unicore/internal/njs"
)

// storeHandle pairs a journal store with its directory so a simulated crash
// can drop the handle and reopen the same state.
type storeHandle struct {
	dir   string
	store *journal.Store
}

func journalReopen(dir string) (*journal.Store, error) { return journal.Open(dir) }

// crashSpecs is a two-Usite deployment: jobs flow both directions, so a
// crash at ALPHA exercises every recovery edge — local jobs mid-batch,
// sub-jobs ALPHA consigned to BETA (poll loops to re-arm), and sub-jobs BETA
// consigned to ALPHA (peer-side survival + idempotent re-consign).
func crashSpecs() []SiteSpec {
	return []SiteSpec{
		{Usite: "ALPHA", Vsites: []njs.VsiteConfig{{Name: "CLUSTER", Profile: machine.GenericCluster(16)}}},
		{Usite: "BETA", Vsites: []njs.VsiteConfig{{Name: "CLUSTER", Profile: machine.GenericCluster(8)}}},
	}
}

// canonicalOutcome renders an outcome tree without timestamps or job IDs
// (re-dispatched sub-jobs are re-admitted under fresh IDs), so a recovered
// run can be compared action-by-action with an uninterrupted one.
func canonicalOutcome(o *ajo.Outcome) string {
	var b strings.Builder
	var rec func(o *ajo.Outcome, depth int)
	rec = func(o *ajo.Outcome, depth int) {
		// Job-group nodes carry process-global generated IDs (ajo.NewID),
		// which differ between two runs in the same test binary; name them
		// by their human label instead.
		action := string(o.Action)
		if o.Kind == ajo.KindJob {
			action = "job(" + o.Name + ")"
		}
		fmt.Fprintf(&b, "%s%s [%s] %s exit=%d stdout=%q files=%d\n",
			strings.Repeat("  ", depth), action, o.Kind, o.Status, o.ExitCode, o.Stdout, len(o.Files))
		for _, c := range o.Children {
			rec(c, depth+1)
		}
	}
	rec(o, 0)
	return b.String()
}

// runCrashWorkload deploys the two sites, submits a mixed workload, and —
// when crash is set — kills the ALPHA NJS mid-workload and recovers it from
// its journal before letting the clock run dry. It returns the canonical
// outcome of every job, keyed by workload name.
func runCrashWorkload(t *testing.T, crash bool) map[string]string {
	t.Helper()
	d, err := New(crashSpecs()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Crash User", "Test", "crash")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	// Durability on in both runs so the clock traces stay comparable.
	const snapshotEvery = 256
	stores := map[core.Usite]storeHandle{}
	for _, u := range d.Usites() {
		dir := t.TempDir()
		store, err := d.EnableDurability(u, dir, snapshotEvery)
		if err != nil {
			t.Fatalf("EnableDurability(%s): %v", u, err)
		}
		stores[u] = storeHandle{dir: dir, store: store}
	}
	defer func() {
		for _, h := range stores {
			h.store.Close()
		}
	}()

	cfg := DefaultWorkload(7, 24, d.Targets())
	cfg.MultiSiteFraction = 0.35
	cfg.MeanCPU = 15 * time.Minute
	cfg.MaxProcs = 8
	jobs, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)
	type consigned struct {
		name  string
		usite core.Usite
		id    core.JobID
	}
	var ids []consigned
	for _, j := range jobs {
		id, err := jpa.Submit(j)
		if err != nil {
			t.Fatalf("Submit(%s): %v", j.Name(), err)
		}
		ids = append(ids, consigned{name: j.Name(), usite: j.Target.Usite, id: id})
	}

	// Run to mid-workload: staging done, batch jobs queued/running, remote
	// sub-jobs in flight.
	d.Clock.Advance(10 * time.Minute)

	if crash {
		// Prove the crash point is mid-workload in the surviving trace.
		live := 0
		for _, c := range ids {
			sum, err := jmc.Status(c.usite, c.id)
			if err != nil {
				t.Fatalf("Status(%s) at crash point: %v", c.id, err)
			}
			if !sum.Status.Terminal() {
				live++
			}
		}
		if live == 0 {
			t.Fatal("crash point is not mid-workload: every job already terminal")
		}

		h := stores["ALPHA"]
		// The crash point is "right after the last fsync": flush, kill the
		// NJS, drop the store handle, and recover from the directory — the
		// same sequence a real process restart goes through.
		if err := h.store.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		if err := d.KillSite("ALPHA"); err != nil {
			t.Fatalf("KillSite: %v", err)
		}
		if err := h.store.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		store, err := journalReopen(h.dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		stores["ALPHA"] = storeHandle{dir: h.dir, store: store}
		if err := d.RestartSite("ALPHA", store, snapshotEvery); err != nil {
			t.Fatalf("RestartSite: %v", err)
		}
	}

	if fired := d.Run(10_000_000); fired >= 10_000_000 {
		t.Fatal("clock never went idle")
	}

	out := make(map[string]string, len(ids))
	for _, c := range ids {
		o, err := jmc.Outcome(c.usite, c.id)
		if err != nil {
			t.Fatalf("Outcome(%s): %v", c.id, err)
		}
		if !o.Status.Terminal() {
			t.Fatalf("job %s (%s) never finished: %s", c.name, c.id, o.Status)
		}
		out[c.name] = canonicalOutcome(o)
	}
	return out
}

// TestCrashRecoveryMidWorkload is the acceptance test for the durable NJS:
// kill a site mid-workload, recover from journal+snapshot, and every
// surviving job must reach the same terminal outcome as an uninterrupted
// run of the identical workload.
func TestCrashRecoveryMidWorkload(t *testing.T) {
	base := runCrashWorkload(t, false)
	crashed := runCrashWorkload(t, true)
	if len(base) != len(crashed) {
		t.Fatalf("job counts differ: %d vs %d", len(base), len(crashed))
	}
	for name, want := range base {
		got, ok := crashed[name]
		if !ok {
			t.Fatalf("job %s missing from crashed run", name)
		}
		if got != want {
			t.Errorf("job %s diverged after crash recovery:\n--- uninterrupted ---\n%s--- recovered ---\n%s", name, want, got)
		}
	}
	for _, s := range base {
		if strings.Contains(s, "FAILED") || strings.Contains(s, "NOT_DONE") {
			t.Fatalf("baseline workload has failures:\n%s", s)
		}
	}
}
