package testbed

import (
	"context"
	"fmt"
	"testing"
	"time"

	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/events"
	"unicore/internal/protocol"
	"unicore/internal/resources"
)

// drainJobEvents fetches one job's event stream from cursor to exhaustion
// through a session, returning the events and the advanced cursor.
func drainJobEvents(t *testing.T, sess *client.Session, job core.JobID, cursor uint64) ([]client.JobEvent, uint64) {
	t.Helper()
	var out []client.JobEvent
	for {
		reply, err := sess.Events(context.Background(), protocol.SubscribeRequest{Job: job, Cursor: cursor})
		if err != nil {
			t.Fatalf("Events(%s@%d): %v", job, cursor, err)
		}
		if reply.Gap {
			t.Fatalf("event stream of %s gapped at cursor %d", job, cursor)
		}
		out = append(out, reply.Events...)
		if reply.Cursor > cursor {
			cursor = reply.Cursor
		}
		if len(reply.Events) == 0 {
			return out, cursor
		}
	}
}

// checkStream asserts the invariants of a complete job event stream:
// contiguous per-job sequence from 1, admitted first, exactly one terminal
// event, delivered last.
func checkStream(t *testing.T, job core.JobID, evs []client.JobEvent) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatalf("job %s produced no events", job)
	}
	terminals := 0
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("job %s: event %d has Seq %d — lost or duplicated events", job, i, ev.Seq)
		}
		if ev.Terminal {
			terminals++
		}
	}
	if evs[0].Type != events.TypeAdmitted {
		t.Fatalf("job %s: first event is %s, want admitted", job, evs[0].Type)
	}
	last := evs[len(evs)-1]
	if terminals != 1 || !last.Terminal {
		t.Fatalf("job %s: %d terminal events (last terminal=%v), want exactly one, last", job, terminals, last.Terminal)
	}
}

// TestEventStreamRecoversFromDroppedReplies drives a subscription over a
// lossy transport: dropped MsgEventsReply envelopes are recovered by
// re-subscribing at the last cursor, and the assembled stream has no gaps
// and no duplicates — byte-identical to what a reliable subscriber sees.
func TestEventStreamRecoversFromDroppedReplies(t *testing.T) {
	d, err := SingleSite("FZJ", "CLUSTER", 8)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Flaky Watcher", "Test", "flaky")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	// The watcher's transport loses 40% of round trips (half of those after
	// the server processed the request — a dropped reply); the client's
	// retry loop re-issues the idempotent cursor fetch.
	flaky := protocol.NewFlaky(d.Net, 0.4, 1999)
	c := protocol.NewClient(flaky, user, d.CA, d.Registry)
	c.Retries = 100
	sess := client.NewSession(c, "FZJ")

	b := client.NewJob("flaky-watched", core.Target{Usite: "FZJ", Vsite: "CLUSTER"})
	s1 := b.Script("one", "cpu 5m\necho a > x.txt\n", resources.Request{Processors: 1, RunTime: time.Hour})
	s2 := b.Script("two", "cpu 5m\ncat x.txt\n", resources.Request{Processors: 1, RunTime: time.Hour})
	b.After(s1, s2, "x.txt")
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := sess.Submit(context.Background(), job)
	if err != nil {
		t.Fatalf("Submit over flaky transport: %v", err)
	}

	// Interleave clock progress with lossy cursor fetches.
	var flakyStream []client.JobEvent
	cursor := uint64(0)
	for i := 0; i < 40; i++ {
		d.Clock.Advance(30 * time.Second)
		var batch []client.JobEvent
		batch, cursor = drainJobEvents(t, sess, id, cursor)
		flakyStream = append(flakyStream, batch...)
	}
	d.Run(1_000_000)
	tail, _ := drainJobEvents(t, sess, id, cursor)
	flakyStream = append(flakyStream, tail...)
	checkStream(t, id, flakyStream)

	// A reliable subscriber reading the stream in one pass sees exactly the
	// same events in the same order.
	reliable, _ := drainJobEvents(t, d.Session(user, "FZJ"), id, 0)
	if len(reliable) != len(flakyStream) {
		t.Fatalf("flaky stream has %d events, reliable has %d", len(flakyStream), len(reliable))
	}
	for i := range reliable {
		if reliable[i] != flakyStream[i] {
			t.Fatalf("streams diverge at %d:\nflaky:    %+v\nreliable: %+v", i, flakyStream[i], reliable[i])
		}
	}
	if _, lost := flaky.Stats(); lost == 0 {
		t.Fatal("the flaky transport dropped nothing — the test exercised no recovery")
	}
}

// TestUserStreamMergesAcrossReplicas subscribes user-scoped through a
// replicated site's router: events minted by different replicas merge under
// per-origin cursors, and resuming at the returned cursors yields nothing
// new.
func TestUserStreamMergesAcrossReplicas(t *testing.T) {
	d, err := ReplicatedSite("POOL", "CLUSTER", 16, 3, 0)
	if err != nil {
		t.Fatalf("ReplicatedSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Merge User", "Test", "merge")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa := d.JPA(user)
	for i := 0; i < 6; i++ {
		if _, err := jpa.Submit(probeJob(t, fmt.Sprintf("merge-%02d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	d.Run(1_000_000)

	sess := d.Session(user, "POOL")
	var all []client.JobEvent
	origins := map[string]uint64{}
	for {
		reply, err := sess.Events(context.Background(), protocol.SubscribeRequest{Origins: origins})
		if err != nil {
			t.Fatalf("user-scoped Events: %v", err)
		}
		all = append(all, reply.Events...)
		for o, next := range reply.Origins {
			origins[o] = next
		}
		if len(reply.Events) == 0 {
			break
		}
	}
	seen := map[string]bool{}
	terminals := map[core.JobID]int{}
	for _, ev := range all {
		key := fmt.Sprintf("%s/%s/%d", ev.Origin, ev.Job, ev.Seq)
		if seen[key] {
			t.Fatalf("event %s delivered twice in the merged user stream", key)
		}
		seen[key] = true
		if ev.Terminal {
			terminals[ev.Job]++
		}
	}
	if len(terminals) != 6 {
		t.Fatalf("terminal events for %d jobs, want 6", len(terminals))
	}
	for job, n := range terminals {
		if n != 1 {
			t.Fatalf("job %s has %d terminal events in the user stream", job, n)
		}
	}
	// The round-robin pool really spread the jobs over several origins.
	byOrigin := map[string]bool{}
	for _, ev := range all {
		byOrigin[ev.Origin] = true
	}
	if len(byOrigin) < 2 {
		t.Fatalf("all events from %d origin(s); the merge was not exercised", len(byOrigin))
	}
}
