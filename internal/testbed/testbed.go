// Package testbed assembles complete in-process UNICORE deployments: a
// shared certificate authority, per-site user databases, gateways (combined
// or firewall-split), NJSs with their Vsites, an in-process network, and
// user credentials — everything Figure 2 shows, in one process under one
// virtual clock.
//
// The German() constructor reproduces the §5.7 production deployment: the
// six centres (FZJ, RUS, RUKA, LRZ, ZIB, DWD) with the four system types the
// paper names (Cray T3E, Fujitsu VPP/700, IBM SP-2, NEC SX-4).
package testbed

import (
	"fmt"
	"net"
	"strings"

	"unicore/internal/accounting"
	"unicore/internal/client"
	"unicore/internal/codine"
	"unicore/internal/core"
	"unicore/internal/federation"
	"unicore/internal/gateway"
	"unicore/internal/journal"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
	"unicore/internal/uudb"
)

// SiteSpec declares one Usite of a deployment.
type SiteSpec struct {
	Usite  core.Usite
	Vsites []njs.VsiteConfig
	// Split deploys the site in the §5.2 firewall configuration: the Web
	// server half outside, the NJS half inside, talking over a loopback TCP
	// socket.
	Split bool
	// Replicas > 1 deploys the site with a replica pool: every Vsite is
	// served by that many independent NJS replicas behind a pool.Router, the
	// scaled-out server tier. Replicated sites cannot also be Split.
	Replicas int
	// Policy selects the pool's consign routing (used when Replicas > 1).
	Policy pool.Policy
	// SiteAuth is the optional site-specific authentication hook.
	SiteAuth gateway.SiteAuth
}

// Site is one deployed Usite.
type Site struct {
	Spec    SiteSpec
	NJS     *njs.NJS // nil on replicated sites; see Pool/Replicas
	Gateway *gateway.Gateway
	Users   *uudb.DB
	// Pool and Replicas are set on replicated sites (Spec.Replicas > 1):
	// the router behind the gateway, and the replica NJSs per Vsite in
	// replica-index order.
	Pool     *pool.Router
	Replicas map[core.Vsite][]*njs.NJS
	// Front and inner are set in split deployments.
	Front *gateway.Front
	inner *gateway.Inner

	cred *pki.Credential // server credential, kept for NJS restarts
}

// Deployment is a whole multi-Usite UNICORE installation.
type Deployment struct {
	Clock    *sim.VirtualClock
	CA       *pki.Authority
	Net      *protocol.InProc
	Registry *protocol.Registry
	Software *pki.Credential
	Sites    map[core.Usite]*Site

	order   []core.Usite
	managed map[core.Usite]*ManagedSite
	feds    map[core.Usite]*federation.Federation
	gates   map[core.Usite]*gate
}

// hostOf derives the in-process host name of a site's gateway.
func hostOf(u core.Usite) string {
	return "gw." + strings.ToLower(string(u)) + ".unicore"
}

// New deploys the given sites. Every gateway gets signed JPA and JMC applet
// payloads, and every NJS gets a server-credentialled peer client so job
// groups can be distributed between the sites (Figure 2).
func New(specs ...SiteSpec) (*Deployment, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("testbed: no sites")
	}
	clock := sim.NewVirtualClock()
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		return nil, err
	}
	software, err := ca.IssueSoftware("UNICORE Consortium")
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Clock:    clock,
		CA:       ca,
		Net:      protocol.NewInProc(),
		Registry: protocol.NewRegistry(),
		Software: software,
		Sites:    make(map[core.Usite]*Site, len(specs)),
	}
	for _, spec := range specs {
		if _, dup := d.Sites[spec.Usite]; dup {
			return nil, fmt.Errorf("testbed: duplicate Usite %q", spec.Usite)
		}
		site, err := d.deploySite(spec)
		if err != nil {
			return nil, fmt.Errorf("testbed: deploying %s: %w", spec.Usite, err)
		}
		d.Sites[spec.Usite] = site
		d.order = append(d.order, spec.Usite)
	}
	return d, nil
}

// replicaName is the stable pool identity (and njs.Config.Instance tag) of
// replica i — the shared convention of pool.ReplicaTag, which RestartReplica
// relies on to recover a replica under the exact tag it journaled its job
// IDs with.
func replicaName(i int) string { return pool.ReplicaTag(i) }

// deploySite stands up one Usite.
func (d *Deployment) deploySite(spec SiteSpec) (*Site, error) {
	host := hostOf(spec.Usite)
	srvCred, err := d.CA.IssueServer("gateway."+strings.ToLower(string(spec.Usite)), host)
	if err != nil {
		return nil, err
	}
	users := uudb.New(spec.Usite, d.Clock)
	site := &Site{Spec: spec, Users: users, cred: srvCred}
	gwCfg := gateway.Config{
		Usite:    spec.Usite,
		Cred:     srvCred,
		CA:       d.CA,
		Users:    users,
		SiteAuth: spec.SiteAuth,
	}
	if spec.Replicas > 1 {
		// Replica-pool deployment: every Vsite is served by Replicas
		// independent NJSs behind a pool.Router, which the gateway fronts
		// through the same njs.Service interface as a single NJS.
		if spec.Split {
			return nil, fmt.Errorf("replicated site cannot also be split")
		}
		router, err := pool.NewRouter(spec.Usite)
		if err != nil {
			return nil, err
		}
		site.Pool = router
		site.Replicas = make(map[core.Vsite][]*njs.NJS, len(spec.Vsites))
		for _, vc := range spec.Vsites {
			set, err := pool.New(pool.Config{Vsite: vc.Name, Policy: spec.Policy, Clock: d.Clock})
			if err != nil {
				return nil, err
			}
			for i := 0; i < spec.Replicas; i++ {
				n, err := njs.New(njs.Config{
					Usite:    spec.Usite,
					Clock:    d.Clock,
					Vsites:   []njs.VsiteConfig{vc},
					Instance: replicaName(i),
				})
				if err != nil {
					return nil, err
				}
				n.SetPeers(protocol.NewClient(d.Net, srvCred, d.CA, d.Registry))
				if err := set.Add(replicaName(i), n); err != nil {
					return nil, err
				}
				site.Replicas[vc.Name] = append(site.Replicas[vc.Name], n)
			}
			if err := router.AddSet(set); err != nil {
				return nil, err
			}
		}
		gwCfg.Backend = router
	} else {
		n, err := njs.New(njs.Config{Usite: spec.Usite, Clock: d.Clock, Vsites: spec.Vsites})
		if err != nil {
			return nil, err
		}
		// The NJS talks to peer sites as this site's server identity.
		n.SetPeers(protocol.NewClient(d.Net, srvCred, d.CA, d.Registry))
		site.NJS = n
		gwCfg.NJS = n
	}
	gw, err := gateway.New(gwCfg)
	if err != nil {
		return nil, err
	}
	// Span timestamps follow the virtual clock, so cross-tier traces order
	// on simulation time (the NJS and pool registries are wired likewise).
	gw.Telemetry().SetNow(d.Clock.Now)
	site.Gateway = gw

	// Serve the signed applets the user tier loads (§4.1).
	for _, name := range []string{"jpa", "jmc"} {
		payload := []byte(fmt.Sprintf("signed %s applet for %s", name, spec.Usite))
		applet, err := gateway.SignApplet(d.Software, name, "1.0", payload)
		if err != nil {
			return nil, err
		}
		if err := gw.InstallApplet(applet); err != nil {
			return nil, err
		}
	}

	if spec.Split {
		inner := gateway.NewInner(gw)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("split listener: %w", err)
		}
		go inner.Serve(l)
		frontCred, err := d.CA.IssueServer("front."+strings.ToLower(string(spec.Usite)), host)
		if err != nil {
			return nil, err
		}
		front, err := gateway.NewFront(frontCred, d.CA, gateway.TCPDial(l.Addr().String()))
		if err != nil {
			return nil, err
		}
		site.Front = front
		site.inner = inner
		d.Net.Register(host, front)
	} else {
		d.Net.Register(host, gw)
	}
	d.Registry.Add(spec.Usite, "https://"+host)
	return site, nil
}

// EnableDurability attaches a write-ahead journal store (rooted at dir) to a
// site's NJS. snapshotEvery > 0 sets the automatic snapshot cadence. The
// returned store belongs to the caller: Sync/Close it around a simulated
// crash and hand a reopened store to RestartSite. Replicated sites journal
// per replica; use EnableReplicaDurability.
func (d *Deployment) EnableDurability(u core.Usite, dir string, snapshotEvery int) (*journal.Store, error) {
	site, ok := d.Sites[u]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown usite %q", u)
	}
	if site.NJS == nil {
		return nil, fmt.Errorf("testbed: %s is replicated; use EnableReplicaDurability", u)
	}
	store, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	site.NJS.AttachJournal(store, snapshotEvery)
	return store, nil
}

// replica resolves one replica of a replicated site.
func (d *Deployment) replica(u core.Usite, v core.Vsite, i int) (*Site, *pool.ReplicaSet, *njs.NJS, error) {
	site, ok := d.Sites[u]
	if !ok {
		return nil, nil, nil, fmt.Errorf("testbed: unknown usite %q", u)
	}
	if site.Pool == nil {
		return nil, nil, nil, fmt.Errorf("testbed: %s is not a replicated site", u)
	}
	set, ok := site.Pool.Set(v)
	if !ok {
		return nil, nil, nil, fmt.Errorf("testbed: no vsite %q at %s", v, u)
	}
	reps := site.Replicas[v]
	if i < 0 || i >= len(reps) {
		return nil, nil, nil, fmt.Errorf("testbed: %s/%s has no replica %d", u, v, i)
	}
	return site, set, reps[i], nil
}

// EnableReplicaDurability attaches a journal store (rooted at dir) to one
// replica of a replicated site — each replica owns its own journal, exactly
// as each would in a real multi-process pool.
func (d *Deployment) EnableReplicaDurability(u core.Usite, v core.Vsite, i int, dir string, snapshotEvery int) (*journal.Store, error) {
	_, _, n, err := d.replica(u, v, i)
	if err != nil {
		return nil, err
	}
	store, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	n.AttachJournal(store, snapshotEvery)
	return store, nil
}

// KillReplica simulates an NJS process crash at one replica of a replicated
// site, then sweeps the pool's health checks so the dead replica's breaker
// trips: from this instant no new admission is routed to it, and reads
// pinned to its jobs fail fast with pool.ErrReplicaDown until RestartReplica
// swaps a recovered NJS back in.
func (d *Deployment) KillReplica(u core.Usite, v core.Vsite, i int) error {
	_, set, n, err := d.replica(u, v, i)
	if err != nil {
		return err
	}
	n.Kill()
	set.CheckNow()
	return nil
}

// RestartReplica boots a replacement NJS from the replica's journal store,
// re-wires it (peer client, instance tag), swaps it into the pool under the
// replica's stable name (which re-installs the login mapper and closes the
// breaker), and resumes the recovered workload.
func (d *Deployment) RestartReplica(u core.Usite, v core.Vsite, i int, store *journal.Store, snapshotEvery int) error {
	site, set, _, err := d.replica(u, v, i)
	if err != nil {
		return err
	}
	var vc njs.VsiteConfig
	found := false
	for _, c := range site.Spec.Vsites {
		if c.Name == v {
			vc, found = c, true
			break
		}
	}
	if !found {
		return fmt.Errorf("testbed: no vsite spec %q at %s", v, u)
	}
	n, err := njs.Recover(store, njs.Config{
		Usite:    u,
		Clock:    d.Clock,
		Vsites:   []njs.VsiteConfig{vc},
		Instance: replicaName(i),
	}, snapshotEvery)
	if err != nil {
		return err
	}
	n.SetPeers(protocol.NewClient(d.Net, site.cred, d.CA, d.Registry))
	if err := set.SetService(replicaName(i), n); err != nil {
		return err
	}
	site.Replicas[v][i] = n
	n.ResumeRecovered()
	return nil
}

// KillSite simulates an NJS process crash at a site: the NJS stops
// journaling and every pending clock callback it owns becomes a no-op. The
// gateway keeps running (the §5.2 split survives an inner restart); calls
// reaching the dead NJS are refused or see its frozen state until
// RestartSite swaps in the recovered one.
func (d *Deployment) KillSite(u core.Usite) error {
	site, ok := d.Sites[u]
	if !ok {
		return fmt.Errorf("testbed: unknown usite %q", u)
	}
	if site.NJS == nil {
		return fmt.Errorf("testbed: %s is replicated; use KillReplica", u)
	}
	site.NJS.Kill()
	return nil
}

// RestartSite boots a replacement NJS from the journal store, re-wires it
// (peer client, gateway, login mapping), and resumes the recovered workload.
func (d *Deployment) RestartSite(u core.Usite, store *journal.Store, snapshotEvery int) error {
	site, ok := d.Sites[u]
	if !ok {
		return fmt.Errorf("testbed: unknown usite %q", u)
	}
	if site.NJS == nil {
		return fmt.Errorf("testbed: %s is replicated; use RestartReplica", u)
	}
	n, err := njs.Recover(store, njs.Config{
		Usite:  site.Spec.Usite,
		Clock:  d.Clock,
		Vsites: site.Spec.Vsites,
	}, snapshotEvery)
	if err != nil {
		return err
	}
	n.SetPeers(protocol.NewClient(d.Net, site.cred, d.CA, d.Registry))
	site.Gateway.SetNJS(n) // installs the login mapper
	site.NJS = n
	n.ResumeRecovered()
	return nil
}

// Close tears down split-site sockets and managed-site controllers.
func (d *Deployment) Close() {
	for _, s := range d.Sites {
		if s.Front != nil {
			s.Front.Close()
		}
		if s.inner != nil {
			s.inner.Close()
		}
	}
	for _, m := range d.managed {
		m.Close()
	}
}

// Usites lists the deployed sites in declaration order.
func (d *Deployment) Usites() []core.Usite {
	return append([]core.Usite(nil), d.order...)
}

// Targets lists every Vsite of every site, in declaration order.
func (d *Deployment) Targets() []core.Target {
	var out []core.Target
	for _, u := range d.order {
		for _, vc := range d.Sites[u].Spec.Vsites {
			out = append(out, core.Target{Usite: u, Vsite: vc.Name})
		}
	}
	return out
}

// NewUser issues a user certificate and maps the DN to the login uid at
// every Vsite of every site — the paper's uniform UNICORE user-id backed by
// per-site mappings.
func (d *Deployment) NewUser(commonName, organisation, uid string) (*pki.Credential, error) {
	cred, err := d.CA.IssueUser(commonName, organisation)
	if err != nil {
		return nil, err
	}
	dn := cred.DN()
	for _, u := range d.order {
		site := d.Sites[u]
		site.Users.AddUser(dn, "")
		for _, vc := range site.Spec.Vsites {
			if err := site.Users.AddMapping(dn, vc.Name, uudb.Login{UID: uid, Groups: []string{"unicore"}}); err != nil {
				return nil, err
			}
		}
	}
	return cred, nil
}

// UserClient builds a protocol client for a user credential.
func (d *Deployment) UserClient(cred *pki.Credential) *protocol.Client {
	return protocol.NewClient(d.Net, cred, d.CA, d.Registry)
}

// JPA builds a job preparation agent for a user.
func (d *Deployment) JPA(cred *pki.Credential) *client.JPA {
	return client.NewJPA(d.UserClient(cred))
}

// JMC builds a job monitor controller for a user.
func (d *Deployment) JMC(cred *pki.Credential) *client.JMC {
	return client.NewJMC(d.UserClient(cred))
}

// Session opens a protocol-v2 session (context-aware submit/monitor/control
// with server-push event streams) for a user at one Usite. Under the virtual
// clock, drive the deployment from another goroutine (go d.Run(...)) while a
// Session.Await or Watch blocks — its long-poll wakes as events fire.
func (d *Deployment) Session(cred *pki.Credential, usite core.Usite) *client.Session {
	return client.NewSession(d.UserClient(cred), usite)
}

// Run drives the virtual clock until no events remain (or the safety cap is
// hit) and returns the number of fired events.
func (d *Deployment) Run(maxEvents int) int {
	return d.Clock.RunUntilIdle(maxEvents)
}

// Metrics returns one live telemetry snapshot per origin at a site — the
// gateway's own plus everything behind it (a single NJS, or the pool and
// every replica) — the in-process form of a MsgMetrics scrape, for
// integration tests and tools/benchgate.
func (d *Deployment) Metrics(u core.Usite) ([]telemetry.Snapshot, error) {
	site, ok := d.Sites[u]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown usite %q", u)
	}
	return site.Gateway.Metrics(), nil
}

// Trace collects every span recorded under one trace ID at a site, across
// all tiers, ordered by start time — the per-request path of one client call
// (gateway dispatch → pool routing → NJS admission → journal sync).
func (d *Deployment) Trace(u core.Usite, trace string) ([]telemetry.Span, error) {
	snaps, err := d.Metrics(u)
	if err != nil {
		return nil, err
	}
	var spans []telemetry.Span
	for _, s := range snaps {
		spans = append(spans, s.Trace(trace)...)
	}
	telemetry.SortSpans(spans)
	return spans, nil
}

// Accounting collects every Vsite's batch accounting, tagged with target and
// machine performance, for package accounting.
func (d *Deployment) Accounting() []accounting.Record {
	var out []accounting.Record
	for _, u := range d.order {
		out = append(out, d.SiteAccounting(u)...)
	}
	return out
}

// SiteAccounting collects one Usite's batch accounting (the per-site slice of
// Accounting — the charge-back summary a federated gateway advertises).
func (d *Deployment) SiteAccounting(u core.Usite) []accounting.Record {
	site, ok := d.Sites[u]
	if !ok {
		return nil
	}
	var out []accounting.Record
	for _, vc := range site.Spec.Vsites {
		// A replicated site runs one RMS per replica; each contributes
		// its share of the Vsite's accounting.
		njss := []*njs.NJS{site.NJS}
		if site.NJS == nil {
			njss = site.Replicas[vc.Name]
		}
		for _, n := range njss {
			if n == nil { // managed sites leave holes after scale-down
				continue
			}
			vs, ok := n.Vsite(vc.Name)
			if !ok {
				continue
			}
			for _, rec := range vs.RMS.Accounting() {
				out = append(out, accounting.Record{
					Target:      core.Target{Usite: u, Vsite: vc.Name},
					MFlopsPerPE: vc.Profile.MFlopsPerPE,
					Record:      rec,
				})
			}
		}
	}
	return out
}

// German reproduces the §5.7 deployment: "UNICORE is running at different
// German sites including the Forschungszentrum Jülich (FZ Jülich), the
// Computing Centers of the universities of Stuttgart (RUS) and Karlsruhe
// (RUKA), the Leibniz Computing Center ... in Munich (LRZ), the Konrad-Zuse
// Zentrum für Informationstechnik in Berlin (ZIB), and the Deutscher
// Wetterdienst in Offenbach (DWD). The systems covered are Cray T3E,
// Fujitsu VPP/700, IBM SP-2, and NEC SX-4."
func German() (*Deployment, error) {
	return New(GermanSpecs()...)
}

// GermanSpecs returns the six §5.7 site specifications (exported so callers
// can toggle Split or scheduler options before deploying).
func GermanSpecs() []SiteSpec {
	return []SiteSpec{
		{Usite: "FZJ", Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(512), Backfill: true}}},
		{Usite: "RUS", Vsites: []njs.VsiteConfig{{Name: "SX4", Profile: machine.NECSX4(32)}}},
		{Usite: "RUKA", Vsites: []njs.VsiteConfig{{Name: "SP2", Profile: machine.IBMSP2(256), Backfill: true}}},
		{Usite: "LRZ", Vsites: []njs.VsiteConfig{{Name: "VPP", Profile: machine.FujitsuVPP700(52)}}},
		{Usite: "ZIB", Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(408), Backfill: true}}},
		{Usite: "DWD", Vsites: []njs.VsiteConfig{{Name: "SX4", Profile: machine.NECSX4(16)}}},
	}
}

// SingleSite builds a minimal one-site deployment (the quickstart topology):
// one Usite with one generic-cluster Vsite.
func SingleSite(usite core.Usite, vsite core.Vsite, nodes int) (*Deployment, error) {
	return New(SiteSpec{
		Usite:  usite,
		Vsites: []njs.VsiteConfig{{Name: vsite, Profile: machine.GenericCluster(nodes)}},
	})
}

// ReplicatedSite builds a one-Usite deployment whose generic-cluster Vsite
// is served by a pool of NJS replicas behind health-checked failover
// routing — the scaled-out server tier (package pool).
func ReplicatedSite(usite core.Usite, vsite core.Vsite, nodes, replicas int, policy pool.Policy) (*Deployment, error) {
	return New(SiteSpec{
		Usite:    usite,
		Vsites:   []njs.VsiteConfig{{Name: vsite, Profile: machine.GenericCluster(nodes)}},
		Replicas: replicas,
		Policy:   policy,
	})
}

// QueueConfig is re-exported for site specs that want custom queues.
type QueueConfig = codine.Queue
