// Package testbed assembles complete in-process UNICORE deployments: a
// shared certificate authority, per-site user databases, gateways (combined
// or firewall-split), NJSs with their Vsites, an in-process network, and
// user credentials — everything Figure 2 shows, in one process under one
// virtual clock.
//
// The German() constructor reproduces the §5.7 production deployment: the
// six centres (FZJ, RUS, RUKA, LRZ, ZIB, DWD) with the four system types the
// paper names (Cray T3E, Fujitsu VPP/700, IBM SP-2, NEC SX-4).
package testbed

import (
	"fmt"
	"net"
	"strings"

	"unicore/internal/accounting"
	"unicore/internal/client"
	"unicore/internal/codine"
	"unicore/internal/core"
	"unicore/internal/gateway"
	"unicore/internal/journal"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// SiteSpec declares one Usite of a deployment.
type SiteSpec struct {
	Usite  core.Usite
	Vsites []njs.VsiteConfig
	// Split deploys the site in the §5.2 firewall configuration: the Web
	// server half outside, the NJS half inside, talking over a loopback TCP
	// socket.
	Split bool
	// SiteAuth is the optional site-specific authentication hook.
	SiteAuth gateway.SiteAuth
}

// Site is one deployed Usite.
type Site struct {
	Spec    SiteSpec
	NJS     *njs.NJS
	Gateway *gateway.Gateway
	Users   *uudb.DB
	// Front and inner are set in split deployments.
	Front *gateway.Front
	inner *gateway.Inner

	cred *pki.Credential // server credential, kept for NJS restarts
}

// Deployment is a whole multi-Usite UNICORE installation.
type Deployment struct {
	Clock    *sim.VirtualClock
	CA       *pki.Authority
	Net      *protocol.InProc
	Registry *protocol.Registry
	Software *pki.Credential
	Sites    map[core.Usite]*Site

	order []core.Usite
}

// hostOf derives the in-process host name of a site's gateway.
func hostOf(u core.Usite) string {
	return "gw." + strings.ToLower(string(u)) + ".unicore"
}

// New deploys the given sites. Every gateway gets signed JPA and JMC applet
// payloads, and every NJS gets a server-credentialled peer client so job
// groups can be distributed between the sites (Figure 2).
func New(specs ...SiteSpec) (*Deployment, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("testbed: no sites")
	}
	clock := sim.NewVirtualClock()
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		return nil, err
	}
	software, err := ca.IssueSoftware("UNICORE Consortium")
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Clock:    clock,
		CA:       ca,
		Net:      protocol.NewInProc(),
		Registry: protocol.NewRegistry(),
		Software: software,
		Sites:    make(map[core.Usite]*Site, len(specs)),
	}
	for _, spec := range specs {
		if _, dup := d.Sites[spec.Usite]; dup {
			return nil, fmt.Errorf("testbed: duplicate Usite %q", spec.Usite)
		}
		site, err := d.deploySite(spec)
		if err != nil {
			return nil, fmt.Errorf("testbed: deploying %s: %w", spec.Usite, err)
		}
		d.Sites[spec.Usite] = site
		d.order = append(d.order, spec.Usite)
	}
	return d, nil
}

// deploySite stands up one Usite.
func (d *Deployment) deploySite(spec SiteSpec) (*Site, error) {
	host := hostOf(spec.Usite)
	srvCred, err := d.CA.IssueServer("gateway."+strings.ToLower(string(spec.Usite)), host)
	if err != nil {
		return nil, err
	}
	users := uudb.New(spec.Usite, d.Clock)
	n, err := njs.New(njs.Config{Usite: spec.Usite, Clock: d.Clock, Vsites: spec.Vsites})
	if err != nil {
		return nil, err
	}
	gw, err := gateway.New(gateway.Config{
		Usite:    spec.Usite,
		Cred:     srvCred,
		CA:       d.CA,
		Users:    users,
		NJS:      n,
		SiteAuth: spec.SiteAuth,
	})
	if err != nil {
		return nil, err
	}
	// The NJS talks to peer sites as this site's server identity.
	n.SetPeers(protocol.NewClient(d.Net, srvCred, d.CA, d.Registry))

	// Serve the signed applets the user tier loads (§4.1).
	for _, name := range []string{"jpa", "jmc"} {
		payload := []byte(fmt.Sprintf("signed %s applet for %s", name, spec.Usite))
		applet, err := gateway.SignApplet(d.Software, name, "1.0", payload)
		if err != nil {
			return nil, err
		}
		if err := gw.InstallApplet(applet); err != nil {
			return nil, err
		}
	}

	site := &Site{Spec: spec, NJS: n, Gateway: gw, Users: users, cred: srvCred}
	if spec.Split {
		inner := gateway.NewInner(gw)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("split listener: %w", err)
		}
		go inner.Serve(l)
		frontCred, err := d.CA.IssueServer("front."+strings.ToLower(string(spec.Usite)), host)
		if err != nil {
			return nil, err
		}
		front, err := gateway.NewFront(frontCred, d.CA, gateway.TCPDial(l.Addr().String()))
		if err != nil {
			return nil, err
		}
		site.Front = front
		site.inner = inner
		d.Net.Register(host, front)
	} else {
		d.Net.Register(host, gw)
	}
	d.Registry.Add(spec.Usite, "https://"+host)
	return site, nil
}

// EnableDurability attaches a write-ahead journal store (rooted at dir) to a
// site's NJS. snapshotEvery > 0 sets the automatic snapshot cadence. The
// returned store belongs to the caller: Sync/Close it around a simulated
// crash and hand a reopened store to RestartSite.
func (d *Deployment) EnableDurability(u core.Usite, dir string, snapshotEvery int) (*journal.Store, error) {
	site, ok := d.Sites[u]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown usite %q", u)
	}
	store, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	site.NJS.AttachJournal(store, snapshotEvery)
	return store, nil
}

// KillSite simulates an NJS process crash at a site: the NJS stops
// journaling and every pending clock callback it owns becomes a no-op. The
// gateway keeps running (the §5.2 split survives an inner restart); calls
// reaching the dead NJS are refused or see its frozen state until
// RestartSite swaps in the recovered one.
func (d *Deployment) KillSite(u core.Usite) error {
	site, ok := d.Sites[u]
	if !ok {
		return fmt.Errorf("testbed: unknown usite %q", u)
	}
	site.NJS.Kill()
	return nil
}

// RestartSite boots a replacement NJS from the journal store, re-wires it
// (peer client, gateway, login mapping), and resumes the recovered workload.
func (d *Deployment) RestartSite(u core.Usite, store *journal.Store, snapshotEvery int) error {
	site, ok := d.Sites[u]
	if !ok {
		return fmt.Errorf("testbed: unknown usite %q", u)
	}
	n, err := njs.Recover(store, njs.Config{
		Usite:  site.Spec.Usite,
		Clock:  d.Clock,
		Vsites: site.Spec.Vsites,
	}, snapshotEvery)
	if err != nil {
		return err
	}
	n.SetPeers(protocol.NewClient(d.Net, site.cred, d.CA, d.Registry))
	site.Gateway.SetNJS(n) // installs the login mapper
	site.NJS = n
	n.ResumeRecovered()
	return nil
}

// Close tears down split-site sockets.
func (d *Deployment) Close() {
	for _, s := range d.Sites {
		if s.Front != nil {
			s.Front.Close()
		}
		if s.inner != nil {
			s.inner.Close()
		}
	}
}

// Usites lists the deployed sites in declaration order.
func (d *Deployment) Usites() []core.Usite {
	return append([]core.Usite(nil), d.order...)
}

// Targets lists every Vsite of every site, in declaration order.
func (d *Deployment) Targets() []core.Target {
	var out []core.Target
	for _, u := range d.order {
		for _, vc := range d.Sites[u].Spec.Vsites {
			out = append(out, core.Target{Usite: u, Vsite: vc.Name})
		}
	}
	return out
}

// NewUser issues a user certificate and maps the DN to the login uid at
// every Vsite of every site — the paper's uniform UNICORE user-id backed by
// per-site mappings.
func (d *Deployment) NewUser(commonName, organisation, uid string) (*pki.Credential, error) {
	cred, err := d.CA.IssueUser(commonName, organisation)
	if err != nil {
		return nil, err
	}
	dn := cred.DN()
	for _, u := range d.order {
		site := d.Sites[u]
		site.Users.AddUser(dn, "")
		for _, vc := range site.Spec.Vsites {
			if err := site.Users.AddMapping(dn, vc.Name, uudb.Login{UID: uid, Groups: []string{"unicore"}}); err != nil {
				return nil, err
			}
		}
	}
	return cred, nil
}

// UserClient builds a protocol client for a user credential.
func (d *Deployment) UserClient(cred *pki.Credential) *protocol.Client {
	return protocol.NewClient(d.Net, cred, d.CA, d.Registry)
}

// JPA builds a job preparation agent for a user.
func (d *Deployment) JPA(cred *pki.Credential) *client.JPA {
	return client.NewJPA(d.UserClient(cred))
}

// JMC builds a job monitor controller for a user.
func (d *Deployment) JMC(cred *pki.Credential) *client.JMC {
	return client.NewJMC(d.UserClient(cred))
}

// Run drives the virtual clock until no events remain (or the safety cap is
// hit) and returns the number of fired events.
func (d *Deployment) Run(maxEvents int) int {
	return d.Clock.RunUntilIdle(maxEvents)
}

// Accounting collects every Vsite's batch accounting, tagged with target and
// machine performance, for package accounting.
func (d *Deployment) Accounting() []accounting.Record {
	var out []accounting.Record
	for _, u := range d.order {
		site := d.Sites[u]
		for _, vc := range site.Spec.Vsites {
			vs, ok := site.NJS.Vsite(vc.Name)
			if !ok {
				continue
			}
			for _, rec := range vs.RMS.Accounting() {
				out = append(out, accounting.Record{
					Target:      core.Target{Usite: u, Vsite: vc.Name},
					MFlopsPerPE: vc.Profile.MFlopsPerPE,
					Record:      rec,
				})
			}
		}
	}
	return out
}

// German reproduces the §5.7 deployment: "UNICORE is running at different
// German sites including the Forschungszentrum Jülich (FZ Jülich), the
// Computing Centers of the universities of Stuttgart (RUS) and Karlsruhe
// (RUKA), the Leibniz Computing Center ... in Munich (LRZ), the Konrad-Zuse
// Zentrum für Informationstechnik in Berlin (ZIB), and the Deutscher
// Wetterdienst in Offenbach (DWD). The systems covered are Cray T3E,
// Fujitsu VPP/700, IBM SP-2, and NEC SX-4."
func German() (*Deployment, error) {
	return New(GermanSpecs()...)
}

// GermanSpecs returns the six §5.7 site specifications (exported so callers
// can toggle Split or scheduler options before deploying).
func GermanSpecs() []SiteSpec {
	return []SiteSpec{
		{Usite: "FZJ", Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(512), Backfill: true}}},
		{Usite: "RUS", Vsites: []njs.VsiteConfig{{Name: "SX4", Profile: machine.NECSX4(32)}}},
		{Usite: "RUKA", Vsites: []njs.VsiteConfig{{Name: "SP2", Profile: machine.IBMSP2(256), Backfill: true}}},
		{Usite: "LRZ", Vsites: []njs.VsiteConfig{{Name: "VPP", Profile: machine.FujitsuVPP700(52)}}},
		{Usite: "ZIB", Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(408), Backfill: true}}},
		{Usite: "DWD", Vsites: []njs.VsiteConfig{{Name: "SX4", Profile: machine.NECSX4(16)}}},
	}
}

// SingleSite builds a minimal one-site deployment (the quickstart topology):
// one Usite with one generic-cluster Vsite.
func SingleSite(usite core.Usite, vsite core.Vsite, nodes int) (*Deployment, error) {
	return New(SiteSpec{
		Usite:  usite,
		Vsites: []njs.VsiteConfig{{Name: vsite, Profile: machine.GenericCluster(nodes)}},
	})
}

// QueueConfig is re-exported for site specs that want custom queues.
type QueueConfig = codine.Queue
