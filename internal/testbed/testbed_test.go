package testbed

import (
	"strings"
	"testing"
	"time"

	"unicore/internal/accounting"
	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/resources"
)

func TestSingleSiteQuickJob(t *testing.T) {
	d, err := SingleSite("DEMO", "CLUSTER", 8)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Demo User", "Demo", "demo")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	b := client.NewJob("hello", core.Target{Usite: "DEMO", Vsite: "CLUSTER"})
	b.Script("greet", "echo hello from the testbed\n", resources.Request{Processors: 1, RunTime: time.Minute})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	d.Run(100000)
	sum, err := jmc.Status("DEMO", id)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s", sum.Status)
	}
}

func TestGermanTopology(t *testing.T) {
	d, err := German()
	if err != nil {
		t.Fatalf("German: %v", err)
	}
	defer d.Close()
	if got := len(d.Sites); got != 6 {
		t.Fatalf("sites = %d, want 6", got)
	}
	wantArch := map[core.Usite]string{
		"FZJ": "Cray T3E", "RUS": "NEC SX-4", "RUKA": "IBM SP-2",
		"LRZ": "Fujitsu VPP700", "ZIB": "Cray T3E", "DWD": "NEC SX-4",
	}
	for u, arch := range wantArch {
		site, ok := d.Sites[u]
		if !ok {
			t.Fatalf("missing site %s", u)
		}
		pages := site.NJS.Pages()
		if len(pages) != 1 || pages[0].Architecture != arch {
			t.Fatalf("%s architecture = %+v, want %s", u, pages, arch)
		}
	}
	if got := len(d.Targets()); got != 6 {
		t.Fatalf("targets = %d, want 6", got)
	}
	// Every gateway serves the two signed applets.
	for u, site := range d.Sites {
		names := site.Gateway.AppletNames()
		if len(names) != 2 || names[0] != "jmc" || names[1] != "jpa" {
			t.Fatalf("%s applets = %v", u, names)
		}
	}
}

func TestMultiSiteJobAcrossGermany(t *testing.T) {
	d, err := German()
	if err != nil {
		t.Fatalf("German: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Grid User", "GCS", "grid")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	// Pre-processing at ZIB, main run at FZJ, with a Uspace-to-Uspace
	// transfer between them (§5.6).
	pre := client.NewJob("pre", core.Target{Usite: "ZIB", Vsite: "T3E"})
	pre.Script("prepare", "write grid.dat 4096\necho prepared\n",
		resources.Request{Processors: 1, RunTime: 10 * time.Minute})

	b := client.NewJob("coupled", core.Target{Usite: "FZJ", Vsite: "T3E"})
	sub := b.SubJob(pre)
	tr := b.Transfer("fetch grid", sub, "grid.dat")
	run := b.Script("main", "cat grid.dat > used.tmp\ncpu 30m\necho main done\n",
		resources.Request{Processors: 8, RunTime: 2 * time.Hour})
	b.Chain(sub, tr, run)
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	d.Run(1000000)

	sum, err := jmc.Status("FZJ", id)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		o, oerr := jmc.Outcome("FZJ", id)
		if oerr == nil {
			t.Logf("outcome:\n%s", client.Display(o))
		}
		t.Fatalf("status = %s, want SUCCESSFUL", sum.Status)
	}

	// The ZIB batch system must have run the pre job: cross-site accounting.
	recs := d.Accounting()
	var zibJobs int
	for _, r := range recs {
		if r.Target.Usite == "ZIB" {
			zibJobs++
		}
	}
	if zibJobs != 1 {
		t.Fatalf("ZIB accounting shows %d jobs, want 1", zibJobs)
	}
}

func TestSplitSiteInDeployment(t *testing.T) {
	specs := GermanSpecs()[:2]
	specs[0].Split = true
	d, err := New(specs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	if d.Sites[specs[0].Usite].Front == nil {
		t.Fatal("split site has no front")
	}
	user, err := d.NewUser("Split User", "FZJ", "split")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)
	b := client.NewJob("via-firewall", core.Target{Usite: specs[0].Usite, Vsite: "T3E"})
	b.Script("hello", "echo hello\n", resources.Request{Processors: 1, RunTime: time.Minute})
	job, _ := b.Build()
	id, err := jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit through split gateway: %v", err)
	}
	d.Run(100000)
	sum, err := jmc.Status(specs[0].Usite, id)
	if err != nil || sum.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %v (err %v)", sum.Status, err)
	}
}

func TestWorkloadGeneratorDeterminism(t *testing.T) {
	targets := []core.Target{
		{Usite: "FZJ", Vsite: "T3E"},
		{Usite: "LRZ", Vsite: "VPP"},
	}
	cfg := DefaultWorkload(42, 50, targets)
	w1, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	w2, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	if len(w1) != 50 || len(w2) != 50 {
		t.Fatalf("sizes = %d, %d", len(w1), len(w2))
	}
	for i := range w1 {
		if w1[i].Name() != w2[i].Name() || w1[i].Target != w2[i].Target ||
			w1[i].CountActions() != w2[i].CountActions() {
			t.Fatalf("job %d differs between runs", i)
		}
	}
	// The mix contains all three shapes.
	var compiles, multis, scripts int
	for _, j := range w1 {
		switch {
		case hasKind(j, ajo.KindCompile):
			compiles++
		case hasKind(j, ajo.KindJob):
			multis++
		default:
			scripts++
		}
	}
	if compiles == 0 || multis == 0 || scripts == 0 {
		t.Fatalf("mix = %d compile, %d multi, %d script; want all > 0", compiles, multis, scripts)
	}
}

func hasKind(j *ajo.AbstractJob, k ajo.Kind) bool {
	found := false
	j.Walk(func(a ajo.Action) {
		if a != ajo.Action(j) && a.Kind() == k {
			found = true
		}
	})
	return found
}

func TestWorkloadRunsOnGermanTestbed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute virtual workload")
	}
	d, err := German()
	if err != nil {
		t.Fatalf("German: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Load User", "GCS", "load")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	jobs, err := GenerateWorkload(DefaultWorkload(7, 30, d.Targets()))
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	ids := make(map[core.JobID]core.Usite, len(jobs))
	for _, j := range jobs {
		id, err := jpa.Submit(j)
		if err != nil {
			t.Fatalf("Submit %s: %v", j.Name(), err)
		}
		ids[id] = j.Target.Usite
	}
	d.Run(10_000_000)

	var ok, bad int
	for id, usite := range ids {
		sum, err := jmc.Status(usite, id)
		if err != nil {
			t.Fatalf("Status %s: %v", id, err)
		}
		if sum.Status == ajo.StatusSuccessful {
			ok++
		} else {
			bad++
			o, oerr := jmc.Outcome(usite, id)
			if oerr == nil {
				t.Errorf("job %s failed:\n%s", id, client.Display(o))
			}
		}
	}
	if bad != 0 {
		t.Fatalf("workload: %d ok, %d failed", ok, bad)
	}

	recs := d.Accounting()
	sum := accounting.Summarise(recs)
	if sum.Failed != 0 {
		t.Fatalf("accounting reports %d failed batch jobs:\n%s", sum.Failed, accounting.CSV(recs))
	}
	if sum.Jobs < 30 {
		t.Fatalf("accounting has %d records, want >= 30 (one per executable task)", sum.Jobs)
	}
	if accounting.Makespan(recs) <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestAppletDistribution(t *testing.T) {
	d, err := SingleSite("DEMO", "CLUSTER", 4)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Applet User", "Demo", "app")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	c := d.UserClient(user)
	applet, err := client.FetchApplet(c, d.CA, "DEMO", "jpa")
	if err != nil {
		t.Fatalf("FetchApplet: %v", err)
	}
	if !strings.Contains(string(applet.Payload), "signed jpa applet") {
		t.Fatalf("payload = %q", applet.Payload)
	}
	if applet.Signer.CommonName() != "UNICORE Consortium" {
		t.Fatalf("signer = %s", applet.Signer)
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty deployment created")
	}
	spec := GermanSpecs()[0]
	if _, err := New(spec, spec); err == nil {
		t.Fatal("duplicate Usite accepted")
	}
}
