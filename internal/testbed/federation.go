package testbed

// Federation harness: EnableFederation peers deployed sites' gateways into a
// full mesh, GossipAll drives deterministic gossip rounds under the virtual
// clock, and the gate wrapper simulates gateway-process failures — including
// the cruellest one, a gateway that processes a forwarded consign but loses
// the reply (BlackholeGateway), which is how the durable-ack contract gets
// exercised across sites.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"

	"unicore/internal/accounting"
	"unicore/internal/broker"
	"unicore/internal/core"
	"unicore/internal/federation"
	"unicore/internal/protocol"
)

// Gateway failure modes of the gate wrapper.
const (
	gateAlive = iota
	// gateDead refuses every request before the gateway sees it — a crashed
	// gateway process. Clients observe a transport failure and retry.
	gateDead
	// gateBlackhole hands the request to the gateway (state changes happen)
	// but discards the response — the reply lost in transit.
	gateBlackhole
)

// gate wraps a site's registered handler with a switchable failure mode.
type gate struct {
	inner http.Handler
	mode  chan int // 1-buffered: current mode
}

func newGate(inner http.Handler) *gate {
	g := &gate{inner: inner, mode: make(chan int, 1)}
	g.mode <- gateAlive
	return g
}

func (g *gate) setMode(m int) {
	<-g.mode
	g.mode <- m
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m := <-g.mode
	g.mode <- m
	switch m {
	case gateDead:
		http.Error(w, "testbed: gateway down", http.StatusBadGateway)
	case gateBlackhole:
		g.inner.ServeHTTP(httptest.NewRecorder(), r)
		http.Error(w, "testbed: reply lost", http.StatusBadGateway)
	default:
		g.inner.ServeHTTP(w, r)
	}
}

// EnableFederation peers the named sites' gateways (every site when none are
// named) into a full mesh. Each gateway gets a federation membership speaking
// under the site's server credential, and its registered host is wrapped so
// KillGateway / RestartGateway / BlackholeGateway can simulate gateway
// failures. No gossip timer is armed — drive rounds with GossipAll so tests
// stay deterministic under the virtual clock.
func (d *Deployment) EnableFederation(usites ...core.Usite) error {
	if len(usites) == 0 {
		usites = d.order
	}
	if d.feds == nil {
		d.feds = make(map[core.Usite]*federation.Federation)
		d.gates = make(map[core.Usite]*gate)
	}
	for _, u := range usites {
		site, ok := d.Sites[u]
		if !ok {
			return fmt.Errorf("testbed: unknown usite %q", u)
		}
		if site.Front != nil {
			return fmt.Errorf("testbed: federation on split site %s is not supported", u)
		}
		if _, dup := d.feds[u]; dup {
			continue
		}
		u := u
		fed, err := federation.New(federation.Config{
			Usite:  u,
			URL:    "https://" + hostOf(u),
			Client: protocol.NewClient(d.Net, site.cred, d.CA, d.Registry),
			Clock:  d.Clock,
			Policy: broker.LeastLoaded,
			Usage: func() accounting.Summary {
				return accounting.Summarise(d.SiteAccounting(u))
			},
		})
		if err != nil {
			return err
		}
		site.Gateway.SetFederation(fed)
		d.feds[u] = fed
		g := newGate(site.Gateway)
		d.gates[u] = g
		d.Net.Register(hostOf(u), g)
	}
	// Full mesh: every federated site is a direct peer of every other.
	for a, fa := range d.feds {
		for b := range d.feds {
			if a == b {
				continue
			}
			if err := fa.AddPeer(b, "https://"+hostOf(b)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Federation returns a site's federation membership (nil before
// EnableFederation).
func (d *Deployment) Federation(u core.Usite) *federation.Federation {
	return d.feds[u]
}

// GossipAll runs one gossip round at every federated site, in declaration
// order. Unreachable peers are not fatal — they merely go stale, exactly as
// in production. Two rounds make transitively-learned ads settle.
func (d *Deployment) GossipAll() {
	for _, u := range d.order {
		if fed := d.feds[u]; fed != nil {
			_ = fed.GossipOnce(context.Background())
		}
	}
}

// gateOf resolves a federated site's failure-mode wrapper.
func (d *Deployment) gateOf(u core.Usite) (*gate, error) {
	g, ok := d.gates[u]
	if !ok {
		return nil, fmt.Errorf("testbed: %s has no federated gateway", u)
	}
	return g, nil
}

// KillGateway simulates a crashed gateway process at a federated site: every
// request to its host fails at the transport until RestartGateway. The NJS
// behind it keeps running — kill it separately to crash the whole site.
func (d *Deployment) KillGateway(u core.Usite) error {
	g, err := d.gateOf(u)
	if err != nil {
		return err
	}
	g.setMode(gateDead)
	return nil
}

// RestartGateway brings a killed (or blackholed) gateway back.
func (d *Deployment) RestartGateway(u core.Usite) error {
	g, err := d.gateOf(u)
	if err != nil {
		return err
	}
	g.setMode(gateAlive)
	return nil
}

// BlackholeGateway makes a federated site's gateway process every request but
// lose every reply — the worst-timed partition for a forwarded consign: the
// remote NJS journals the admission, the origin never sees the ack.
func (d *Deployment) BlackholeGateway(u core.Usite) error {
	g, err := d.gateOf(u)
	if err != nil {
		return err
	}
	g.setMode(gateBlackhole)
	return nil
}
