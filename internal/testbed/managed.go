package testbed

// Controller-managed deployments: a site booted from a declarative topology
// spec (deploy.TopologySpec) whose replica pools a controller.Controller
// keeps converged — build, heal, roll, autoscale — instead of the static
// SiteSpec wiring. This is the testbed face of `unicore-ctl apply -f`: the
// chaos suite and the metrics-smoke tool boot whole sites from spec files.

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"unicore/internal/controller"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/gateway"
	"unicore/internal/journal"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
)

// NewManaged stands up a deployment consisting of one controller-managed
// site booted from a topology spec — the spec-file twin of New(SiteSpec...).
// Additional managed sites can join later with ApplySpec.
func NewManaged(spec *deploy.TopologySpec, u core.Usite, stateRoot string) (*Deployment, *ManagedSite, error) {
	clock := sim.NewVirtualClock()
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		return nil, nil, err
	}
	software, err := ca.IssueSoftware("UNICORE Consortium")
	if err != nil {
		return nil, nil, err
	}
	d := &Deployment{
		Clock:    clock,
		CA:       ca,
		Net:      protocol.NewInProc(),
		Registry: protocol.NewRegistry(),
		Software: software,
		Sites:    make(map[core.Usite]*Site),
	}
	m, err := d.ApplySpec(spec, u, stateRoot)
	if err != nil {
		return nil, nil, err
	}
	return d, m, nil
}

// ManagedSite is one controller-managed Usite of a deployment.
type ManagedSite struct {
	d *Deployment
	// Site is the deployed site, registered in Deployment.Sites like any
	// statically-wired one (Site.Replicas maps tag index → live NJS; holes
	// are nil after a scale-down).
	Site *Site
	// Controller converges the site onto its declared topology.
	Controller *controller.Controller

	stateRoot string
	mu        sync.Mutex
	stores    map[string]*journal.Store // vsite/tag → open journal store
}

// ApplySpec boots (or re-declares) a controller-managed site from a parsed
// topology spec. On first use for a Usite it deploys the whole site —
// gateway, UUDB, empty replica pools — and runs one reconcile pass so the
// declared replicas are serving; later calls hand the new declaration to
// the site's controller and reconcile once. stateRoot roots the
// per-replica journals (<stateRoot>/<usite>/<vsite>/<tag>); empty means
// memory-only replicas (spec.JournalDir is used when set).
func (d *Deployment) ApplySpec(spec *deploy.TopologySpec, u core.Usite, stateRoot string) (*ManagedSite, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	site, ok := spec.Site(u)
	if !ok {
		return nil, fmt.Errorf("testbed: topology declares no usite %q", u)
	}
	if m, ok := d.managed[u]; ok {
		if err := m.Controller.Apply(*site); err != nil {
			return nil, err
		}
		if _, err := m.Controller.ReconcileNow(); err != nil {
			return nil, err
		}
		return m, nil
	}
	if _, dup := d.Sites[u]; dup {
		return nil, fmt.Errorf("testbed: %s is already deployed statically", u)
	}
	if stateRoot == "" {
		stateRoot = spec.JournalDir
	}

	host := hostOf(u)
	srvCred, err := d.CA.IssueServer("gateway."+strings.ToLower(string(u)), host)
	if err != nil {
		return nil, err
	}
	users, err := deploy.BuildUsers(u, site.Users, d.Clock)
	if err != nil {
		return nil, err
	}
	router, err := pool.NewRouter(u)
	if err != nil {
		return nil, err
	}
	// Mirror the declared Vsites into a SiteSpec so the generic helpers
	// (NewUser, Targets, Accounting) treat the managed site like any other.
	tspec := SiteSpec{Usite: u}
	for i := range site.Vsites {
		vc, err := site.Vsites[i].NJSConfig()
		if err != nil {
			return nil, err
		}
		tspec.Vsites = append(tspec.Vsites, vc)
	}
	deployed := &Site{
		Spec:     tspec,
		Users:    users,
		Pool:     router,
		Replicas: make(map[core.Vsite][]*njs.NJS, len(site.Vsites)),
		cred:     srvCred,
	}
	m := &ManagedSite{
		d:         d,
		Site:      deployed,
		stateRoot: stateRoot,
		stores:    make(map[string]*journal.Store),
	}
	ctl, err := controller.New(controller.Config{
		Site:    *site,
		Router:  router,
		Clock:   d.Clock,
		Build:   m.build,
		Recover: m.recover,
		Retire:  m.retire,
	})
	if err != nil {
		return nil, err
	}
	m.Controller = ctl
	gw, err := gateway.New(gateway.Config{
		Usite:   u,
		Cred:    srvCred,
		CA:      d.CA,
		Users:   users,
		Backend: router,
	})
	if err != nil {
		return nil, err
	}
	gw.Telemetry().SetNow(d.Clock.Now)
	gw.AddMetricsSource(func() []telemetry.Snapshot {
		return []telemetry.Snapshot{ctl.Telemetry().Snapshot()}
	})
	deployed.Gateway = gw
	d.Net.Register(host, gw)
	d.Registry.Add(u, "https://"+host)
	d.Sites[u] = deployed
	d.order = append(d.order, u)
	if d.managed == nil {
		d.managed = make(map[core.Usite]*ManagedSite)
	}
	d.managed[u] = m
	if _, err := ctl.ReconcileNow(); err != nil {
		return nil, err
	}
	return m, nil
}

// Managed returns the managed handle of a spec-booted site.
func (d *Deployment) Managed(u core.Usite) (*ManagedSite, bool) {
	m, ok := d.managed[u]
	return m, ok
}

func (m *ManagedSite) storeKey(v core.Vsite, tag string) string {
	return string(v) + "/" + tag
}

// track records a live replica in Site.Replicas at its tag index.
func (m *ManagedSite) track(v core.Vsite, tag string, n *njs.NJS) {
	i, ok := pool.ParseReplicaTag(tag)
	if !ok {
		return
	}
	m.mu.Lock()
	reps := m.Site.Replicas[v]
	for len(reps) <= i {
		reps = append(reps, nil)
	}
	reps[i] = n
	m.Site.Replicas[v] = reps
	m.mu.Unlock()
}

// build constructs one replica for the controller: journal-backed under the
// state root when one is declared, with the site's peer client wired in.
func (m *ManagedSite) build(v deploy.TopologyVsite, tag string) (njs.Service, error) {
	vc, err := v.NJSConfig()
	if err != nil {
		return nil, err
	}
	var n *njs.NJS
	if m.stateRoot == "" {
		n, err = deploy.BuildReplica(m.Site.Spec.Usite, vc, m.d.Clock, tag)
	} else {
		dir := filepath.Join(m.stateRoot, string(m.Site.Spec.Usite), string(v.Name), tag)
		var store *journal.Store
		store, err = journal.Open(dir)
		if err != nil {
			return nil, err
		}
		every := v.SnapshotEvery
		if every <= 0 {
			every = controller.DefaultSnapshotEvery
		}
		n, err = deploy.BuildDurableReplica(m.Site.Spec.Usite, vc, m.d.Clock, tag, store, every)
		if err != nil {
			return nil, errors.Join(err, store.Close())
		}
		m.mu.Lock()
		m.stores[m.storeKey(v.Name, tag)] = store
		m.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	n.SetPeers(protocol.NewClient(m.d.Net, m.Site.cred, m.d.CA, m.d.Registry))
	m.track(v.Name, tag, n)
	return n, nil
}

// recover releases the crashed instance's journal handle and rebuilds from
// the same directory — the controller's heal and roll path.
func (m *ManagedSite) recover(v deploy.TopologyVsite, tag string) (njs.Service, error) {
	m.mu.Lock()
	store := m.stores[m.storeKey(v.Name, tag)]
	delete(m.stores, m.storeKey(v.Name, tag))
	m.mu.Unlock()
	if store != nil {
		if err := store.Close(); err != nil {
			return nil, fmt.Errorf("testbed: releasing journal of %s/%s: %w", v.Name, tag, err)
		}
	}
	return m.build(v, tag)
}

// retire shuts a replaced or scaled-down instance down: snapshot, kill,
// close its journal, drop it from Site.Replicas.
func (m *ManagedSite) retire(v deploy.TopologyVsite, tag string, svc njs.Service) error {
	if n, ok := svc.(*njs.NJS); ok && n.Ping() == nil {
		n.Snapshot()
		n.Kill()
	}
	m.mu.Lock()
	store := m.stores[m.storeKey(v.Name, tag)]
	delete(m.stores, m.storeKey(v.Name, tag))
	if i, ok := pool.ParseReplicaTag(tag); ok {
		if reps := m.Site.Replicas[v.Name]; i < len(reps) {
			reps[i] = nil
		}
	}
	m.mu.Unlock()
	if store != nil {
		return store.Close()
	}
	return nil
}

// KillReplica crashes one managed replica by pool tag: the journal is
// synced (the WAL made it to disk — the durable-ack contract), the NJS
// dies, and a health sweep trips its breaker so routing fails over. The
// controller's next pass heals it from the journal.
func (m *ManagedSite) KillReplica(v core.Vsite, tag string) error {
	set, ok := m.Site.Pool.Set(v)
	if !ok {
		return fmt.Errorf("testbed: no vsite %q at %s", v, m.Site.Spec.Usite)
	}
	svc, ok := set.Service(tag)
	if !ok {
		return fmt.Errorf("testbed: no replica %q at %s/%s", tag, m.Site.Spec.Usite, v)
	}
	n, ok := svc.(*njs.NJS)
	if !ok {
		return fmt.Errorf("testbed: replica %q is not an NJS", tag)
	}
	if err := n.SyncJournal(); err != nil {
		return err
	}
	n.Kill()
	set.CheckNow()
	return nil
}

// Reconcile runs one controller pass — the virtual-clock-friendly way to
// drive convergence at exactly the instants a test cares about.
func (m *ManagedSite) Reconcile() (controller.Result, error) {
	return m.Controller.ReconcileNow()
}

// Close stops the controller and closes every replica journal.
func (m *ManagedSite) Close() error {
	m.Controller.Stop()
	var first error
	m.mu.Lock()
	stores := m.stores
	m.stores = make(map[string]*journal.Store)
	m.mu.Unlock()
	for _, store := range stores {
		if err := store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
