package testbed

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/telemetry"
)

// probeRequest is the resource demand of the tiny probe jobs the failover
// tests consign.
func probeRequest() resources.Request {
	return resources.Request{Processors: 1, RunTime: 10 * time.Minute, MemoryMB: 16}
}

// probeJob builds a minimal script job for the pool's Vsite.
func probeJob(t *testing.T, name string) *ajo.AbstractJob {
	t.Helper()
	b := client.NewJob(name, core.Target{Usite: "POOL", Vsite: "CLUSTER"})
	b.Script("noop", "cpu 1m\necho "+name+" done\n", probeRequest())
	job, err := b.Build()
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	return job
}

// failoverSpec is one Usite whose single Vsite is served by three NJS
// replicas behind a pool.Router — the scaled-out server tier.
func failoverSpec(policy pool.Policy) SiteSpec {
	return SiteSpec{
		Usite:    "POOL",
		Vsites:   []njs.VsiteConfig{{Name: "CLUSTER", Profile: machine.GenericCluster(16)}},
		Replicas: 3,
		Policy:   policy,
	}
}

const failoverVictim = 1 // replica index killed mid-workload

// eventWatcher follows every workload job's event stream through the pool
// gateway with cursor-resumed fetches — the client half of the protocol-v2
// session API under failover.
type eventWatcher struct {
	sess    *client.Session
	ids     map[string]core.JobID
	cursors map[string]uint64
	events  map[string][]client.JobEvent
}

func newEventWatcher(sess *client.Session, ids map[string]core.JobID) *eventWatcher {
	return &eventWatcher{
		sess:    sess,
		ids:     ids,
		cursors: make(map[string]uint64),
		events:  make(map[string][]client.JobEvent),
	}
}

// drain pulls every job's stream to exhaustion from its last cursor. With
// tolerateDown set, jobs pinned to an unhealthy replica are skipped (their
// cursors stay put, to resume after the restart) instead of failing the
// test.
func (w *eventWatcher) drain(t *testing.T, tolerateDown bool) {
	t.Helper()
	for name, id := range w.ids {
		for {
			reply, err := w.sess.Events(context.Background(),
				protocol.SubscribeRequest{Job: id, Cursor: w.cursors[name]})
			if err != nil {
				if tolerateDown && strings.Contains(err.Error(), pool.ErrReplicaDown.Error()) {
					break // resume at the same cursor once the replica is back
				}
				t.Fatalf("Events(%s@%d): %v", name, w.cursors[name], err)
			}
			if reply.Gap {
				t.Fatalf("event stream of %s gapped at cursor %d", name, w.cursors[name])
			}
			w.events[name] = append(w.events[name], reply.Events...)
			if reply.Cursor > w.cursors[name] {
				w.cursors[name] = reply.Cursor
			}
			if len(reply.Events) == 0 {
				break
			}
		}
	}
}

// verify asserts event-stream continuity across the whole run: contiguous
// per-job sequences (nothing lost, nothing duplicated — the cursors span the
// replica kill and restart) and exactly one terminal event per job, last.
func (w *eventWatcher) verify(t *testing.T) {
	t.Helper()
	for name := range w.ids {
		evs := w.events[name]
		if len(evs) == 0 {
			t.Fatalf("watcher saw no events for job %s", name)
		}
		terminals := 0
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("job %s: event %d has Seq %d — events lost or duplicated across failover", name, i, ev.Seq)
			}
			if ev.Terminal {
				terminals++
			}
		}
		if terminals != 1 {
			t.Fatalf("job %s: watcher saw %d terminal events across the replica kill, want exactly 1", name, terminals)
		}
		if !evs[len(evs)-1].Terminal {
			t.Fatalf("job %s: terminal event is not the stream's last", name)
		}
	}
}

// runFailoverWorkload deploys the replicated site (every replica journaled),
// submits a deterministic workload, and — when kill is set — crashes one
// replica mid-workload, proves the pool stops routing to it, restarts it
// from its journal, and lets the clock run dry. It returns the canonical
// outcome of every workload job, keyed by name.
func runFailoverWorkload(t *testing.T, kill bool) map[string]string {
	t.Helper()
	d, err := New(failoverSpec(pool.RoundRobin))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Failover User", "Test", "failover")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	const snapshotEvery = 256
	stores := make([]storeHandle, 3)
	for i := range stores {
		dir := t.TempDir()
		store, err := d.EnableReplicaDurability("POOL", "CLUSTER", i, dir, snapshotEvery)
		if err != nil {
			t.Fatalf("EnableReplicaDurability(%d): %v", i, err)
		}
		stores[i] = storeHandle{dir: dir, store: store}
	}
	defer func() {
		for _, h := range stores {
			h.store.Close()
		}
	}()

	cfg := DefaultWorkload(11, 24, d.Targets())
	cfg.MultiSiteFraction = 0 // one Usite: every job is local to the pool
	cfg.MeanCPU = 15 * time.Minute
	cfg.MaxProcs = 8
	jobs, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)
	ids := make(map[string]core.JobID, len(jobs))
	for _, j := range jobs {
		id, err := jpa.Submit(j)
		if err != nil {
			t.Fatalf("Submit(%s): %v", j.Name(), err)
		}
		ids[j.Name()] = id
	}

	// Run to mid-workload: staging done, batch jobs queued/running across
	// the three replicas.
	d.Clock.Advance(10 * time.Minute)

	// A protocol-v2 watcher follows every job's event stream through the
	// pool; its cursors must stay valid across the kill/restart below.
	watcher := newEventWatcher(d.Session(user, "POOL"), ids)
	watcher.drain(t, false)

	if kill {
		live := 0
		for name, id := range ids {
			sum, err := jmc.Status("POOL", id)
			if err != nil {
				t.Fatalf("Status(%s) at kill point: %v", name, err)
			}
			if !sum.Status.Terminal() {
				live++
			}
		}
		if live == 0 {
			t.Fatal("kill point is not mid-workload: every job already terminal")
		}

		victim := d.Sites["POOL"].Replicas["CLUSTER"][failoverVictim]
		ownedBefore, err := victim.List(user.DN())
		if err != nil {
			t.Fatalf("List on victim: %v", err)
		}

		// Crash right after the last fsync, as a real process restart would.
		h := stores[failoverVictim]
		if err := h.store.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		// Kill the NJS but delay the health sweep, so the next traced
		// consigns discover the death themselves: the pool's failover then
		// runs under a live distributed trace, and the victim's refused hop
		// and the survivor's admission land in the same trace.
		victim.Kill()
		var failoverTrace string
		for i := 0; i < 3 && failoverTrace == ""; i++ {
			id, err := watcher.sess.Submit(context.Background(), probeJob(t, fmt.Sprintf("traced-%02d", i)))
			if err != nil {
				t.Fatalf("Submit(traced-%02d) against the un-swept pool: %v", i, err)
			}
			tr, _ := watcher.sess.Trace(id)
			spans, err := d.Trace("POOL", tr)
			if err != nil {
				t.Fatalf("Trace: %v", err)
			}
			var consigns []telemetry.Span
			for _, sp := range spans {
				if sp.Name == "pool.consign" {
					consigns = append(consigns, sp)
				}
			}
			if len(consigns) < 2 {
				continue // round robin started on a healthy replica; try again
			}
			failoverTrace = tr
			// The failed-over consign's trace names both replicas…
			if consigns[0].Note == consigns[1].Note {
				t.Fatalf("failed-over consign recorded one replica twice: %q", consigns[0].Note)
			}
			// …with monotonic hop timestamps under the virtual clock.
			for j := 1; j < len(spans); j++ {
				if spans[j].Start.Before(spans[j-1].Start) {
					t.Fatalf("trace %s hops not monotonic: %s@%v after %s@%v",
						tr, spans[j].Name, spans[j].Start, spans[j-1].Name, spans[j-1].Start)
				}
			}
		}
		if failoverTrace == "" {
			t.Fatal("no traced submit failed over across replicas (round robin never hit the victim first)")
		}
		if err := d.KillReplica("POOL", "CLUSTER", failoverVictim); err != nil {
			t.Fatalf("KillReplica: %v", err)
		}

		// The health check has tripped the victim's breaker: no new
		// admission may reach it, and reads pinned to its jobs fail fast
		// instead of consulting the frozen corpse.
		set, _ := d.Sites["POOL"].Pool.Set("CLUSTER")
		if h := set.Healthy(); len(h) != 2 {
			t.Fatalf("healthy after kill = %v, want 2 replicas", h)
		}
		for i := 0; i < 6; i++ {
			if _, err := jpa.Submit(probeJob(t, fmt.Sprintf("probe-%02d", i))); err != nil {
				t.Fatalf("Submit(probe-%02d) during outage: %v", i, err)
			}
		}
		ownedDuring, err := victim.List(user.DN())
		if err != nil {
			t.Fatalf("List on dead victim: %v", err)
		}
		if len(ownedDuring) != len(ownedBefore) {
			t.Fatalf("dead replica admitted %d jobs after its health check tripped",
				len(ownedDuring)-len(ownedBefore))
		}
		if len(ownedBefore) > 0 {
			_, err := jmc.Status("POOL", ownedBefore[0].Job)
			if err == nil || !strings.Contains(err.Error(), pool.ErrReplicaDown.Error()) {
				t.Fatalf("Status of a job on the dead replica: err = %v, want ErrReplicaDown", err)
			}
		}

		// Mid-outage the watcher keeps consuming the healthy replicas'
		// streams; jobs behind the tripped breaker fail fast and resume at
		// their cursors after the restart.
		watcher.drain(t, true)

		// Recover the victim from its journal and swap it back in under its
		// stable pool name.
		if err := h.store.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		store, err := journalReopen(h.dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		stores[failoverVictim] = storeHandle{dir: h.dir, store: store}
		if err := d.RestartReplica("POOL", "CLUSTER", failoverVictim, store, snapshotEvery); err != nil {
			t.Fatalf("RestartReplica: %v", err)
		}
	}

	if fired := d.Run(10_000_000); fired >= 10_000_000 {
		t.Fatal("clock never went idle")
	}

	// Event-stream continuity: resuming every cursor now must close each
	// stream with exactly one terminal event and no gaps or duplicates.
	watcher.drain(t, false)
	watcher.verify(t)

	// Zero duplicated jobs: the merged pool listing reports every workload
	// job exactly once across the three replicas.
	listed, err := d.Sites["POOL"].Pool.List(user.DN())
	if err != nil {
		t.Fatalf("pool List: %v", err)
	}
	seen := make(map[string]int)
	for _, ji := range listed {
		seen[ji.Name]++
	}
	for name := range ids {
		if seen[name] != 1 {
			t.Fatalf("job %s listed %d times across the pool, want exactly 1", name, seen[name])
		}
	}

	out := make(map[string]string, len(ids))
	for name, id := range ids {
		o, err := jmc.Outcome("POOL", id)
		if err != nil {
			t.Fatalf("Outcome(%s): %v", name, err)
		}
		if !o.Status.Terminal() {
			t.Fatalf("job %s (%s) never finished: %s", name, id, o.Status)
		}
		out[name] = canonicalOutcome(o)
	}
	return out
}

// TestReplicaFailoverMidWorkload is the acceptance test for the replica
// pool: with 3 replicas serving one Vsite, killing one mid-workload (health
// check trips, traffic fails over, victim recovers from its journal) yields
// outcomes identical to an uninterrupted run, with zero duplicated jobs and
// no request routed to the dead replica while its breaker is open.
func TestReplicaFailoverMidWorkload(t *testing.T) {
	base := runFailoverWorkload(t, false)
	failed := runFailoverWorkload(t, true)
	if len(base) != len(failed) {
		t.Fatalf("job counts differ: %d vs %d", len(base), len(failed))
	}
	for name, want := range base {
		got, ok := failed[name]
		if !ok {
			t.Fatalf("job %s missing from failover run", name)
		}
		if got != want {
			t.Errorf("job %s diverged across replica failover:\n--- uninterrupted ---\n%s--- failover ---\n%s", name, want, got)
		}
	}
	for _, s := range base {
		if strings.Contains(s, "FAILED") || strings.Contains(s, "NOT_DONE") {
			t.Fatalf("baseline workload has failures:\n%s", s)
		}
	}
}

// TestConsignFailoverAcrossRealReplicas drives the pool's consign failover
// against real NJS replicas: the first-choice replica is killed between two
// submissions, and the next submission lands on a healthy replica without
// the client seeing an error.
func TestConsignFailoverAcrossRealReplicas(t *testing.T) {
	d, err := New(failoverSpec(pool.ConsistentHash))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Failover User", "Test", "failover")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa := d.JPA(user)
	// Kill whatever replica consistent hashing would pick for this job by
	// killing all but one: the submission must still succeed on the
	// survivor.
	for i := 0; i < 2; i++ {
		if err := d.KillReplica("POOL", "CLUSTER", i); err != nil {
			t.Fatalf("KillReplica(%d): %v", i, err)
		}
	}
	id, err := jpa.Submit(probeJob(t, "solo"))
	if err != nil {
		t.Fatalf("Submit with 2 of 3 replicas dead: %v", err)
	}
	survivor := d.Sites["POOL"].Replicas["CLUSTER"][2]
	if jobs, _ := survivor.List(user.DN()); len(jobs) != 1 || jobs[0].Job != id {
		t.Fatalf("survivor does not own the failed-over job %s", id)
	}
	// Kill the survivor too: a fresh consign now fails cleanly.
	if err := d.KillReplica("POOL", "CLUSTER", 2); err != nil {
		t.Fatalf("KillReplica(2): %v", err)
	}
	if _, err := jpa.Submit(probeJob(t, "solo2")); err == nil || !strings.Contains(err.Error(), pool.ErrNoReplica.Error()) {
		t.Fatalf("Submit on fully drained pool: err = %v, want ErrNoReplica", err)
	}
}
