package testbed

import (
	"context"
	"testing"

	"unicore/internal/pool"
	"unicore/internal/telemetry"
)

// TestTraceSpansSubmitAcrossTiers is the observability acceptance test: one
// Session.Submit on a 3-replica pooled site yields a retrievable distributed
// trace whose spans cover gateway dispatch → pool routing → NJS admission →
// journal sync, every hop with a nonzero wall duration even though the
// deployment runs on a frozen virtual clock; and a live scrape reports the
// headline counters nonzero.
func TestTraceSpansSubmitAcrossTiers(t *testing.T) {
	d, err := New(failoverSpec(pool.RoundRobin))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	for i := 0; i < 3; i++ {
		store, err := d.EnableReplicaDurability("POOL", "CLUSTER", i, t.TempDir(), 256)
		if err != nil {
			t.Fatalf("EnableReplicaDurability(%d): %v", i, err)
		}
		defer store.Close()
	}
	user, err := d.NewUser("Trace User", "Test", "trace")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	sess := d.Session(user, "POOL")

	id, err := sess.Submit(context.Background(), probeJob(t, "traced"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if fired := d.Run(1_000_000); fired >= 1_000_000 {
		t.Fatal("clock never went idle")
	}
	sum, err := sess.Await(context.Background(), id)
	if err != nil {
		t.Fatalf("Await: %v", err)
	}
	if !sum.Status.Terminal() {
		t.Fatalf("job not terminal after Await: %s", sum.Status)
	}

	trace, ok := sess.Trace(id)
	if !ok || trace == "" {
		t.Fatal("Session.Trace: no trace recorded for the submitted job")
	}
	spans, err := d.Trace("POOL", trace)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// Every tier of the admission path must have recorded a hop.
	want := []string{"gateway.dispatch", "pool.consign", "njs.consign", "njs.journal.sync"}
	byName := make(map[string][]telemetry.Span)
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range want {
		hops := byName[name]
		if len(hops) == 0 {
			t.Fatalf("trace %s has no %q span (got %d spans: %v)", trace, name, len(spans), spanNames(spans))
		}
		for _, sp := range hops {
			if sp.Dur <= 0 {
				t.Errorf("span %s at %s has non-positive duration %v", sp.Name, sp.Origin, sp.Dur)
			}
			if sp.Trace != trace {
				t.Errorf("span %s carries trace %q, want %q", sp.Name, sp.Trace, trace)
			}
		}
	}
	// SortSpans ordered the hops on (virtual) start time: non-decreasing.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatalf("spans not in start order: %s@%v after %s@%v",
				spans[i].Name, spans[i].Start, spans[i-1].Name, spans[i-1].Start)
		}
	}

	// The scrape path: merged site-wide metrics report the headline figures.
	snaps, err := d.Metrics("POOL")
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	merged := telemetry.Merge("site", snaps...)
	if got := merged.Total("pki_verify_total"); got == 0 {
		t.Error("pki_verify_total is zero after a submit")
	}
	if got := merged.HistCount("consign_ack_seconds"); got == 0 {
		t.Error("consign_ack_seconds has no observations after a submit")
	}
	if got := merged.HistCount("journal_sync_seconds"); got == 0 {
		t.Error("journal_sync_seconds has no observations on a journaled site")
	}
}

// spanNames lists span names for failure messages.
func spanNames(spans []telemetry.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Origin + "/" + sp.Name
	}
	return out
}
