package testbed

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/protocol"
	"unicore/internal/staging"
)

// chaosCycles is how many kill/heal cycles the soak runs — the acceptance
// floor is 30; CI runs the same count (see the chaos-soak job).
const chaosCycles = 32

// chaosSpec declares the soak topology: one durable 3-replica pool. No
// autoscale block — the count is pinned, so every convergence check below
// is exact.
func chaosSpec() *deploy.TopologySpec {
	return &deploy.TopologySpec{
		Version: deploy.TopologyVersion,
		Sites: []deploy.TopologySite{{
			Usite: "POOL",
			Vsites: []deploy.TopologyVsite{{
				Name:          "CLUSTER",
				Machine:       "cluster",
				Processors:    16,
				Replicas:      3,
				Policy:        "round-robin",
				SnapshotEvery: 64,
			}},
		}},
	}
}

// TestChaosSoakUnderLoad is the acceptance soak for the topology
// controller: a controller-managed durable 3-replica site runs a sustained
// submit/await/stage workload while a chaos sequence kills a random
// replica every few virtual seconds for chaosCycles cycles. After every
// kill the controller must restore the declared replica count by healing
// the victim from its journal; at the end, no acked job may be lost or
// duplicated, every event stream must be contiguous, and the controller's
// reconcile/heal metrics must be visible through the gateway scrape.
func TestChaosSoakUnderLoad(t *testing.T) {
	d, m, err := NewManaged(chaosSpec(), "POOL", t.TempDir())
	if err != nil {
		t.Fatalf("NewManaged: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Chaos User", "Test", "chaos")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	sess := d.Session(user, "POOL")
	set, ok := d.Sites["POOL"].Pool.Set("CLUSTER")
	if !ok {
		t.Fatal("managed site has no CLUSTER pool")
	}
	if h := set.Healthy(); len(h) != 3 {
		t.Fatalf("boot healthy = %v, want the declared 3 replicas", h)
	}

	rng := rand.New(rand.NewSource(0x5eed))
	ids := make(map[string]core.JobID)
	watcher := newEventWatcher(sess, ids)
	ctx := context.Background()

	for cycle := 0; cycle < chaosCycles; cycle++ {
		// Sustained load: two fresh submissions and one staged upload per
		// cycle, all through the pool gateway. Once acked, they must
		// survive every later kill.
		for k := 0; k < 2; k++ {
			name := fmt.Sprintf("soak-%02d-%d", cycle, k)
			id, err := sess.Submit(ctx, probeJob(t, name))
			if err != nil {
				t.Fatalf("cycle %d: Submit(%s): %v", cycle, name, err)
			}
			ids[name] = id
		}
		payload := []byte(fmt.Sprintf("chaos payload %02d", cycle))
		if _, err := sess.Upload(ctx, "CLUSTER", fmt.Sprintf("up-%02d.dat", cycle), bytes.NewReader(payload)); err != nil {
			t.Fatalf("cycle %d: Upload: %v", cycle, err)
		}

		// A few virtual seconds of progress, then the chaos strike: kill a
		// random healthy replica (journal synced — the crash loses nothing
		// that was acked).
		d.Clock.Advance(3 * time.Second)
		healthy := set.Healthy()
		if len(healthy) == 0 {
			t.Fatalf("cycle %d: pool has no healthy replica before the kill", cycle)
		}
		victim := healthy[rng.Intn(len(healthy))]
		if err := m.KillReplica("CLUSTER", victim); err != nil {
			t.Fatalf("cycle %d: KillReplica(%s): %v", cycle, victim, err)
		}

		// One reconcile pass must heal the victim and restore the declared
		// replica count — every cycle.
		res, err := m.Reconcile()
		if err != nil {
			t.Fatalf("cycle %d: Reconcile: %v", cycle, err)
		}
		if res.Healed != 1 {
			t.Fatalf("cycle %d: reconcile = %+v, want exactly one heal of %s", cycle, res, victim)
		}
		if h := set.Healthy(); len(h) != 3 {
			t.Fatalf("cycle %d: healthy after heal = %v, want the declared 3", cycle, h)
		}
		d.Clock.Advance(2 * time.Second)
		watcher.drain(t, true)
	}

	// Let the surviving workload run dry, then audit the whole soak.
	if fired := d.Run(50_000_000); fired >= 50_000_000 {
		t.Fatal("clock never went idle after the soak")
	}
	watcher.drain(t, false)
	watcher.verify(t)

	// Zero lost or duplicated acked jobs: the merged pool listing holds
	// every submission exactly once, and each reached a terminal state.
	listed, err := d.Sites["POOL"].Pool.List(user.DN())
	if err != nil {
		t.Fatalf("pool List: %v", err)
	}
	seen := make(map[string]int)
	for _, ji := range listed {
		seen[ji.Name]++
	}
	for name, id := range ids {
		if seen[name] != 1 {
			t.Fatalf("job %s listed %d times across the pool, want exactly 1", name, seen[name])
		}
		sum, err := sess.Status(ctx, id)
		if err != nil {
			t.Fatalf("Status(%s): %v", name, err)
		}
		if !sum.Status.Terminal() {
			t.Fatalf("job %s (%s) never finished: %s", name, id, sum.Status)
		}
	}

	// Controller metrics ride the same scrape as the serving tiers.
	snaps, err := d.Metrics("POOL")
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	var heals, reconciles float64
	for _, snap := range snaps {
		if snap.Origin == "controller/POOL" {
			heals = snap.Total("controller_heal_total")
			reconciles = snap.Total("controller_reconcile_total")
		}
	}
	if heals < chaosCycles {
		t.Fatalf("controller_heal_total = %v through the gateway scrape, want >= %d", heals, chaosCycles)
	}
	if reconciles < chaosCycles {
		t.Fatalf("controller_reconcile_total = %v, want >= %d", reconciles, chaosCycles)
	}
}

// TestDrainBeforeKillLosesNothing rolls a replica fleet that is holding
// live state: jobs admitted everywhere and a pinned (uncommitted) staged
// upload. The generation bump must replace every replica drain-first, with
// no duplicate or aborted jobs, and the upload's pin re-homed onto the
// journal-recovered instance so the client can finish it afterwards.
func TestDrainBeforeKillLosesNothing(t *testing.T) {
	spec := chaosSpec()
	d, m, err := NewManaged(spec, "POOL", t.TempDir())
	if err != nil {
		t.Fatalf("NewManaged: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Drain User", "Test", "drain")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	sess := d.Session(user, "POOL")
	set, _ := d.Sites["POOL"].Pool.Set("CLUSTER")
	ctx := context.Background()

	// Load every replica with admitted jobs; remember one consign the pool
	// acked so we can prove retries converge across the roll.
	ids := make(map[string]core.JobID)
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("roll-%02d", i)
		id, err := sess.Submit(ctx, probeJob(t, name))
		if err != nil {
			t.Fatalf("Submit(%s): %v", name, err)
		}
		ids[name] = id
	}
	const retryCID = "drain-retry-cid"
	ackedID, err := d.Sites["POOL"].Pool.Consign(ctx, user.DN(), retryCID, probeJob(t, "roll-retry"))
	if err != nil {
		t.Fatalf("Consign(%s): %v", retryCID, err)
	}

	// Open a staged upload and leave it uncommitted — a pinned spool handle
	// the roll must carry across the replacement of its owning replica.
	open, err := sess.PutOpen(ctx, protocol.PutOpenRequest{Vsite: "CLUSTER", Name: "pinned.dat", ChunkSize: 16})
	if err != nil {
		t.Fatalf("PutOpen: %v", err)
	}
	chunk := []byte("0123456789abcdef") // one full 16-byte chunk
	if _, err := sess.PutChunk(ctx, protocol.PutChunkRequest{
		Handle: open.Handle, Index: 0, Data: chunk, CRC: staging.Checksum(chunk),
	}); err != nil {
		t.Fatalf("PutChunk: %v", err)
	}
	pinOwner, ok := set.StagePinOwner(open.Handle)
	if !ok {
		t.Fatal("open upload has no pin owner")
	}

	d.Clock.Advance(2 * time.Second)

	// Declare generation 1 and converge: one drain-settle-retire-recover
	// cycle per replica, at most one replica out of rotation at a time.
	spec.Sites[0].Vsites[0].Generation = 1
	if _, err := d.ApplySpec(spec, "POOL", ""); err != nil {
		t.Fatalf("ApplySpec(gen 1): %v", err)
	}
	rolled := 1 // ApplySpec reconciles once
	for i := 0; i < 8; i++ {
		res, err := m.Reconcile()
		if err != nil {
			t.Fatalf("roll pass %d: %v", i, err)
		}
		rolled += res.Rolled
		if h := set.Healthy(); len(h) < 2 {
			t.Fatalf("roll pass %d: %d replicas in rotation — drained more than one at a time", i, len(h))
		}
		if res.Converged {
			break
		}
	}
	if rolled != 3 {
		t.Fatalf("roll replaced %d replicas, want all 3", rolled)
	}

	// The pinned upload survived its owner's replacement: same handle, same
	// owning tag, and the client can finish the transfer.
	if owner, ok := set.StagePinOwner(open.Handle); !ok || owner != pinOwner {
		t.Fatalf("pin owner after roll = %q (ok=%v), want re-homed onto %q", owner, ok, pinOwner)
	}
	rest := []byte(" and the rest")
	if _, err := sess.PutChunk(ctx, protocol.PutChunkRequest{
		Handle: open.Handle, Index: 1, Data: rest, CRC: staging.Checksum(rest),
	}); err != nil {
		t.Fatalf("PutChunk after roll: %v", err)
	}
	whole := append(append([]byte(nil), chunk...), rest...)
	if _, err := sess.PutCommit(ctx, protocol.PutCommitRequest{
		Handle: open.Handle, CRC: staging.Checksum(whole),
	}); err != nil {
		t.Fatalf("PutCommit after roll: %v", err)
	}

	// Idempotent retries still converge: re-consigning the acked ID on the
	// rolled fleet returns the recorded job instead of duplicating it.
	retryID, err := d.Sites["POOL"].Pool.Consign(ctx, user.DN(), retryCID, probeJob(t, "roll-retry"))
	if err != nil {
		t.Fatalf("retry Consign(%s): %v", retryCID, err)
	}
	if retryID != ackedID {
		t.Fatalf("retry re-admitted as %s, want convergence on %s", retryID, ackedID)
	}

	// No aborted or duplicated jobs: everything runs to a terminal state
	// and lists exactly once.
	if fired := d.Run(20_000_000); fired >= 20_000_000 {
		t.Fatal("clock never went idle after the roll")
	}
	ids["roll-retry"] = ackedID
	listed, err := d.Sites["POOL"].Pool.List(user.DN())
	if err != nil {
		t.Fatalf("pool List: %v", err)
	}
	seen := make(map[string]int)
	for _, ji := range listed {
		seen[ji.Name]++
	}
	for name, id := range ids {
		if seen[name] != 1 {
			t.Fatalf("job %s listed %d times after the roll, want exactly 1", name, seen[name])
		}
		sum, err := sess.Status(ctx, id)
		if err != nil {
			t.Fatalf("Status(%s): %v", name, err)
		}
		if !sum.Status.Terminal() {
			t.Fatalf("job %s aborted or stalled across the roll: %s", name, sum.Status)
		}
	}

	// Drain telemetry: three observed drains, three rolls.
	snap := m.Controller.Telemetry().Snapshot()
	if got := snap.Total("controller_roll_total"); got != 3 {
		t.Fatalf("controller_roll_total = %v, want 3", got)
	}
	if got := snap.HistCount("controller_drain_seconds"); got != 3 {
		t.Fatalf("controller_drain_seconds count = %v, want 3", got)
	}
}
