package testbed

// End-to-end coverage of the federated multi-gateway grid: broker-driven
// placement across gateways, the cross-gateway durable-ack contract under
// the worst-timed gateway failures, DAGs spanning gateways, and a soak that
// kills a peer gateway mid-workload.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/resources"
)

// fedPair deploys a small FZJ (2 PEs) next to a large DWD (32 PEs), federated
// and gossiped: a job needing more than 2 PEs consigned at FZJ can only run
// behind DWD's gateway.
func fedPair(t *testing.T) *Deployment {
	t.Helper()
	d, err := New(
		SiteSpec{Usite: "FZJ", Vsites: []njs.VsiteConfig{{Name: "SMALL", Profile: machine.GenericCluster(2)}}},
		SiteSpec{Usite: "DWD", Vsites: []njs.VsiteConfig{{Name: "BIG", Profile: machine.GenericCluster(32)}}},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(d.Close)
	if err := d.EnableFederation(); err != nil {
		t.Fatalf("EnableFederation: %v", err)
	}
	d.GossipAll()
	d.GossipAll()
	return d
}

// bigJob builds a job only DWD's 32-PE cluster can satisfy, targeted at the
// origin Usite with no Vsite — the `unicore-submit -site auto` shape.
func bigJob(name string) (*ajo.AbstractJob, error) {
	b := client.NewJob(name, core.Target{Usite: "FZJ"})
	b.Script("main", "write out.dat 512\necho ran remotely\n",
		resources.Request{Processors: 8, RunTime: 30 * time.Minute})
	return b.Build()
}

// TestFederatedAutoPlacement is the acceptance scenario: a job consigned at
// gateway A with no explicit Vsite lands on a Vsite fronted by gateway B,
// completes there, and is awaitable and fetchable from A.
func TestFederatedAutoPlacement(t *testing.T) {
	d := fedPair(t)
	user, err := d.NewUser("Fed User", "Grid", "fed")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	job, err := bigJob("auto-placed")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !strings.HasPrefix(string(id), "DWD-") {
		t.Fatalf("job ID %s: auto placement did not forward to DWD", id)
	}
	d.Run(1_000_000)

	// Status, outcome, and file fetch all resolve through the origin.
	sum, err := jmc.Status("FZJ", id)
	if err != nil {
		t.Fatalf("Status via origin: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s, want SUCCESSFUL", sum.Status)
	}
	if _, err := jmc.Outcome("FZJ", id); err != nil {
		t.Fatalf("Outcome via origin: %v", err)
	}
	data, err := jmc.FetchFile("FZJ", id, "out.dat")
	if err != nil {
		t.Fatalf("FetchFile via origin: %v", err)
	}
	if len(data) != 512 {
		t.Fatalf("fetched %d bytes, want 512", len(data))
	}

	// The work was charged where it ran.
	if recs := d.SiteAccounting("DWD"); len(recs) == 0 {
		t.Fatal("no accounting at DWD after a forwarded job ran there")
	}
	// And the forward shows in the origin's federation telemetry.
	snap := d.Federation("FZJ").Registry().Snapshot()
	if p, ok := snap.Get("fed_forward_total", "peer", "DWD"); !ok || p.Value != 1 {
		t.Fatalf("fed_forward_total{peer=DWD} = %+v, want 1", p)
	}
}

// TestFederatedPlacementRefusedByStranger checks the placement record is the
// authorization boundary: a user who did not forward the job through this
// gateway cannot reach it by ID.
func TestFederatedPlacementRefusedByStranger(t *testing.T) {
	d := fedPair(t)
	owner, err := d.NewUser("Owner", "Grid", "owner")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	eve, err := d.NewUser("Eve", "Grid", "eve")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	job, err := bigJob("private")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := d.JPA(owner).Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := d.JMC(eve).Status("FZJ", id); err == nil {
		t.Fatal("stranger polled a remotely-placed job through the origin gateway")
	}
}

// TestFederatedConsignSurvivesPeerGatewayRestart exercises the cross-gateway
// durable-ack contract: the remote gateway processes the forwarded consign
// but its ack is lost, then the gateway dies and restarts — the origin must
// never have acked, the client's retry with the same consign ID must
// converge on the single admitted job, and the job must complete with a
// contiguous event stream readable from the origin.
func TestFederatedConsignSurvivesPeerGatewayRestart(t *testing.T) {
	d := fedPair(t)
	store, err := d.EnableDurability("DWD", t.TempDir(), 0)
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	defer store.Close()
	user, err := d.NewUser("Ack User", "Grid", "ack")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	raw := d.UserClient(user)
	job, err := bigJob("survives-restart")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ajoRaw, err := ajo.Marshal(job)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	const consignID = "fed-restart-1"
	consign := func() (protocol.ConsignReply, error) {
		var reply protocol.ConsignReply
		err := raw.Call(context.Background(), "FZJ", protocol.MsgConsign,
			protocol.ConsignRequest{ConsignID: consignID, AJO: ajoRaw}, &reply)
		return reply, err
	}

	// The remote gateway admits the job but the ack is lost in transit: the
	// origin must answer not-accepted (it cannot know the admission stuck).
	if err := d.BlackholeGateway("DWD"); err != nil {
		t.Fatalf("BlackholeGateway: %v", err)
	}
	reply, err := consign()
	if err != nil {
		t.Fatalf("consign during blackhole: %v", err)
	}
	if reply.Accepted {
		t.Fatal("origin acked a forward whose reply was lost — double-ack risk")
	}

	// Then the gateway process dies outright; a retry still must not ack.
	if err := d.KillGateway("DWD"); err != nil {
		t.Fatalf("KillGateway: %v", err)
	}
	reply, err = consign()
	if err != nil {
		t.Fatalf("consign while peer dead: %v", err)
	}
	if reply.Accepted {
		t.Fatal("origin acked a forward to a dead gateway")
	}

	// Gateway back: the retry with the same consign ID converges on the job
	// the blackholed forward already admitted — accepted exactly once.
	if err := d.RestartGateway("DWD"); err != nil {
		t.Fatalf("RestartGateway: %v", err)
	}
	reply, err = consign()
	if err != nil {
		t.Fatalf("consign after restart: %v", err)
	}
	if !reply.Accepted || reply.Job == "" {
		t.Fatalf("retry after restart not accepted: %+v", reply)
	}
	id := reply.Job

	// Exactly one job exists at the remote site: the retries deduplicated.
	jobs, err := d.JMC(user).List("DWD")
	if err != nil {
		t.Fatalf("List at DWD: %v", err)
	}
	if len(jobs) != 1 || jobs[0].Job != id {
		t.Fatalf("DWD holds %+v, want exactly [%s]", jobs, id)
	}

	d.Run(1_000_000)
	sum, err := d.JMC(user).Status("FZJ", id)
	if err != nil {
		t.Fatalf("Status via origin: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s, want SUCCESSFUL", sum.Status)
	}

	// The event stream read through the origin is complete and contiguous.
	sess := d.Session(user, "FZJ")
	ev, err := sess.Events(context.Background(), protocol.SubscribeRequest{Job: id})
	if err != nil {
		t.Fatalf("Events via origin: %v", err)
	}
	if len(ev.Events) == 0 || ev.Gap {
		t.Fatalf("event stream empty or gapped: %+v", ev)
	}
	for i, e := range ev.Events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d — stream not contiguous", i, e.Seq)
		}
	}
}

// TestDagSpansGateways runs a DAG whose parent is auto-placed behind the
// peer gateway while an explicit sub-job runs back at the origin site, with
// a Uspace-to-Uspace transfer fanning the sub-job's output in.
func TestDagSpansGateways(t *testing.T) {
	d := fedPair(t)
	user, err := d.NewUser("DAG User", "Grid", "dag")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	pre := client.NewJob("pre", core.Target{Usite: "FZJ", Vsite: "SMALL"})
	pre.Script("prepare", "write grid.dat 2048\necho prepared\n",
		resources.Request{Processors: 1, RunTime: 10 * time.Minute})

	b := client.NewJob("spanning", core.Target{Usite: "FZJ"})
	sub := b.SubJob(pre)
	tr := b.Transfer("fetch grid", sub, "grid.dat")
	run := b.Script("main", "cat grid.dat > used.tmp\ncpu 10m\necho main done\n",
		resources.Request{Processors: 8, RunTime: time.Hour})
	b.Chain(sub, tr, run)
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !strings.HasPrefix(string(id), "DWD-") {
		t.Fatalf("job ID %s: parent was not auto-placed at DWD", id)
	}
	d.Run(2_000_000)

	sum, err := jmc.Status("FZJ", id)
	if err != nil {
		t.Fatalf("Status via origin: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		if o, oerr := jmc.Outcome("FZJ", id); oerr == nil {
			t.Logf("outcome:\n%s", client.Display(o))
		}
		t.Fatalf("status = %s, want SUCCESSFUL", sum.Status)
	}
	// Both sides of the grid did work: the sub-job at FZJ, the main at DWD.
	if recs := d.SiteAccounting("FZJ"); len(recs) == 0 {
		t.Fatal("no accounting at FZJ — the sub-job did not run at the origin site")
	}
	if recs := d.SiteAccounting("DWD"); len(recs) == 0 {
		t.Fatal("no accounting at DWD — the parent did not run at the peer")
	}
}

// TestFederationSoakPeerKilledMidWorkload is the chaos soak the CI job
// drives: a stream of auto-placed jobs across two gateways while the peer
// gateway is killed and restarted mid-workload. Every job the origin acked
// must complete exactly once; refused forwards must converge on retry.
func TestFederationSoakPeerKilledMidWorkload(t *testing.T) {
	d := fedPair(t)
	user, err := d.NewUser("Soak User", "Grid", "soak")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	submit := func(i int) (core.JobID, error) {
		job, err := bigJob(fmt.Sprintf("soak-%03d", i))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return jpa.Submit(job)
	}

	accepted := make(map[core.JobID]bool)
	var refused []int
	for i := 0; i < 8; i++ {
		id, err := submit(i)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		accepted[id] = true
	}
	// Kill the peer gateway mid-workload: forwards fail, the origin must
	// refuse (never ack) but keep serving.
	if err := d.KillGateway("DWD"); err != nil {
		t.Fatalf("KillGateway: %v", err)
	}
	for i := 8; i < 12; i++ {
		if _, err := submit(i); err == nil {
			t.Fatalf("Submit %d acked while the peer gateway was dead", i)
		} else {
			refused = append(refused, i)
		}
	}
	if err := d.RestartGateway("DWD"); err != nil {
		t.Fatalf("RestartGateway: %v", err)
	}
	for _, i := range refused {
		id, err := submit(i)
		if err != nil {
			t.Fatalf("re-Submit %d after restart: %v", i, err)
		}
		accepted[id] = true
	}
	if len(accepted) != 12 {
		t.Fatalf("accepted %d distinct jobs, want 12", len(accepted))
	}
	d.Run(5_000_000)
	for id := range accepted {
		sum, err := jmc.Status("FZJ", id)
		if err != nil {
			t.Fatalf("Status %s: %v", id, err)
		}
		if sum.Status != ajo.StatusSuccessful {
			t.Fatalf("job %s = %s, want SUCCESSFUL", id, sum.Status)
		}
	}
	// No duplicate admissions slipped through the failures.
	jobs, err := jmc.List("DWD")
	if err != nil {
		t.Fatalf("List at DWD: %v", err)
	}
	if len(jobs) != len(accepted) {
		t.Fatalf("DWD holds %d jobs, want %d", len(jobs), len(accepted))
	}
}
