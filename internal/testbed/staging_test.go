package testbed

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/staging"
)

// stagedPayload returns n deterministic, position-dependent bytes — any
// reordering, loss, or duplication of a chunk changes the checksum.
func stagedPayload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*31 + i/509)
	}
	return out
}

// killRestartReplica crashes one replica right after an fsync and swaps in a
// journal-recovered replacement, exactly as the failover workload test does.
func killRestartReplica(t *testing.T, d *Deployment, stores []storeHandle, idx, snapshotEvery int) {
	t.Helper()
	h := stores[idx]
	if err := h.store.Sync(); err != nil {
		t.Fatalf("Sync before kill: %v", err)
	}
	if err := d.KillReplica("POOL", "CLUSTER", idx); err != nil {
		t.Fatalf("KillReplica(%d): %v", idx, err)
	}
	if err := h.store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	store, err := journalReopen(h.dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stores[idx] = storeHandle{dir: h.dir, store: store}
	if err := d.RestartReplica("POOL", "CLUSTER", idx, store, snapshotEvery); err != nil {
		t.Fatalf("RestartReplica(%d): %v", idx, err)
	}
}

// spoolHolder finds the replica whose spool holds a transfer handle.
func spoolHolder(t *testing.T, d *Deployment, handle string) int {
	t.Helper()
	for i, n := range d.Sites["POOL"].Replicas["CLUSTER"] {
		if sp, ok := n.StagingSpool("CLUSTER"); ok {
			if _, ok := sp.Stat(handle); ok {
				return i
			}
		}
	}
	t.Fatalf("no replica spool holds handle %s", handle)
	return -1
}

// triggerWriter forwards to a buffer and fires hook (once) as soon as more
// than threshold bytes have passed through — the mid-transfer crash point.
type triggerWriter struct {
	buf       bytes.Buffer
	threshold int
	hook      func()
	once      sync.Once
}

func (w *triggerWriter) Write(p []byte) (int, error) {
	n, err := w.buf.Write(p)
	if w.buf.Len() > w.threshold && w.hook != nil {
		w.once.Do(w.hook)
	}
	return n, err
}

// TestStagedTransferSurvivesReplicaKill is the staging acceptance scenario:
// a large file is uploaded in chunks into a replica's spool with the owning
// replica crash-recovered mid-upload (acknowledged chunks survive via the
// journal), the AJO referencing the staged handle is consigned to the
// replica that holds the bytes, and the result is pulled back through the
// windowed parallel download engine with the owning replica killed and
// journal-recovered mid-download — chunk-level retries ride out the outage
// and the assembled bytes still verify against the whole-file checksum.
func TestStagedTransferSurvivesReplicaKill(t *testing.T) {
	const (
		snapshotEvery = 1024
		chunkSize     = 64 << 10
		fileSize      = 4 << 20 // 64 chunks
	)
	d, err := New(failoverSpec(pool.RoundRobin))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Stage User", "Test", "stage")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	stores := make([]storeHandle, 3)
	for i := range stores {
		dir := t.TempDir()
		store, err := d.EnableReplicaDurability("POOL", "CLUSTER", i, dir, snapshotEvery)
		if err != nil {
			t.Fatalf("EnableReplicaDurability(%d): %v", i, err)
		}
		stores[i] = storeHandle{dir: dir, store: store}
	}
	defer func() {
		for _, h := range stores {
			h.store.Close()
		}
	}()

	sess := d.Session(user, "POOL")
	sess.Transfer = staging.Options{ChunkSize: chunkSize, Window: 4, Retries: 30, Backoff: 10 * time.Millisecond}
	ctx := context.Background()
	payload := stagedPayload(fileSize)

	// --- Phase 1: chunked upload, owning replica crash-recovered halfway ---
	open, err := sess.PutOpen(ctx, protocol.PutOpenRequest{
		Vsite: "CLUSTER", Name: "in.dat", ChunkSize: chunkSize, Window: 4,
	})
	if err != nil {
		t.Fatalf("PutOpen: %v", err)
	}
	victim := spoolHolder(t, d, open.Handle)
	nChunks := fileSize / chunkSize
	sendChunk := func(i int) {
		t.Helper()
		piece := payload[i*chunkSize : (i+1)*chunkSize]
		reply, err := sess.PutChunk(ctx, protocol.PutChunkRequest{
			Handle: open.Handle, Index: int64(i), Data: piece, CRC: staging.Checksum(piece),
		})
		if err != nil {
			t.Fatalf("PutChunk(%d): %v", i, err)
		}
		if reply.Received != int64(i)+1 {
			t.Fatalf("PutChunk(%d): watermark %d, want %d", i, reply.Received, i+1)
		}
	}
	for i := 0; i < nChunks/2; i++ {
		sendChunk(i)
	}
	// Crash the replica holding the half-received upload and recover it from
	// its journal: every acknowledged chunk must still be there.
	killRestartReplica(t, d, stores, victim, snapshotEvery)
	for i := nChunks / 2; i < nChunks; i++ {
		sendChunk(i)
	}
	commit, err := sess.PutCommit(ctx, protocol.PutCommitRequest{Handle: open.Handle, CRC: staging.Checksum(payload)})
	if err != nil {
		t.Fatalf("PutCommit after crash recovery: %v", err)
	}
	if commit.Size != fileSize || commit.CRC != staging.Checksum(payload) {
		t.Fatalf("commit sealed %d/%#x, want %d/%#x", commit.Size, commit.CRC, fileSize, staging.Checksum(payload))
	}

	// --- Phase 2: consign the AJO referencing the handle (payload not inline)
	b := client.NewJob("staged-transfer", core.Target{Usite: "POOL", Vsite: "CLUSTER"})
	imp := b.ImportStaged("stage", open.Handle, "in.dat")
	run := b.Script("copy", "cat in.dat > out.dat\n",
		resources.Request{Processors: 1, RunTime: time.Hour})
	b.After(imp, run)
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := sess.Submit(ctx, job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The consign-affinity hint must have routed the admission to the
	// replica whose spool holds the chunks.
	if want := pool.ReplicaTag(victim); !strings.Contains(string(id), "-"+want+"-") {
		t.Fatalf("staged job %s not admitted on holding replica %s", id, want)
	}
	if fired := d.Run(10_000_000); fired >= 10_000_000 {
		t.Fatal("clock never went idle")
	}
	sum, err := sess.Status(ctx, id)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		o, _ := sess.Outcome(ctx, id)
		t.Fatalf("staged job finished %s:\n%s", sum.Status, client.Display(o))
	}

	// --- Phase 3: parallel download with a mid-transfer replica kill -------
	w := &triggerWriter{threshold: fileSize / 4}
	w.hook = func() {
		killRestartReplica(t, d, stores, victim, snapshotEvery)
	}
	if _, err := sess.Download(ctx, id, "out.dat", w); err != nil {
		t.Fatalf("Download across replica kill: %v", err)
	}
	if !bytes.Equal(w.buf.Bytes(), payload) {
		t.Fatal("downloaded result differs from the staged input across the failover")
	}
}
