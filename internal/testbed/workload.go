package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/resources"
)

// WorkloadConfig parameterises the synthetic job mix. The mix mirrors what
// the paper says the 1999 deployment ran: script tasks ("to include existing
// batch applications"), compile-link-execute jobs ("for new applications",
// F90), and hierarchically structured jobs with parts at several sites.
type WorkloadConfig struct {
	Seed    int64
	Jobs    int
	Targets []core.Target

	// CompileFraction of jobs are compile-link-execute chains; of the rest,
	// MultiSiteFraction carry a sub-job group at another Usite. Whatever
	// remains are plain script jobs with import/export staging.
	CompileFraction   float64
	MultiSiteFraction float64

	// MeanCPU is the mean simulated processor time per task; actual values
	// are uniform in [0.5, 1.5) of the mean.
	MeanCPU time.Duration
	// MaxProcs bounds the per-task processor request (must fit the smallest
	// target machine). Requests are powers of two in [1, MaxProcs].
	MaxProcs int
	// DataKB is the mean size of staged input data in KiB.
	DataKB int
}

// DefaultWorkload is a mixed load sized for the German testbed.
func DefaultWorkload(seed int64, jobs int, targets []core.Target) WorkloadConfig {
	return WorkloadConfig{
		Seed:              seed,
		Jobs:              jobs,
		Targets:           targets,
		CompileFraction:   0.3,
		MultiSiteFraction: 0.25,
		MeanCPU:           20 * time.Minute,
		MaxProcs:          16,
		DataKB:            64,
	}
}

// GenerateWorkload builds a deterministic list of jobs from the config.
func GenerateWorkload(cfg WorkloadConfig) ([]*ajo.AbstractJob, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("testbed: workload needs at least one target")
	}
	if cfg.MaxProcs < 1 {
		cfg.MaxProcs = 1
	}
	if cfg.MeanCPU <= 0 {
		cfg.MeanCPU = 10 * time.Minute
	}
	if cfg.DataKB <= 0 {
		cfg.DataKB = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]*ajo.AbstractJob, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		name := fmt.Sprintf("wl-%04d", i)
		target := cfg.Targets[rng.Intn(len(cfg.Targets))]
		var (
			job *ajo.AbstractJob
			err error
		)
		switch p := rng.Float64(); {
		case p < cfg.CompileFraction:
			job, err = compileJob(rng, cfg, name, target)
		case p < cfg.CompileFraction+cfg.MultiSiteFraction && len(cfg.Targets) > 1:
			other := cfg.Targets[rng.Intn(len(cfg.Targets))]
			for other.Usite == target.Usite {
				other = cfg.Targets[rng.Intn(len(cfg.Targets))]
			}
			job, err = multiSiteJob(rng, cfg, name, target, other)
		default:
			job, err = scriptJob(rng, cfg, name, target)
		}
		if err != nil {
			return nil, fmt.Errorf("testbed: generating %s: %w", name, err)
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// request draws a task resource demand.
func request(rng *rand.Rand, cfg WorkloadConfig, cpu time.Duration) resources.Request {
	procs := 1 << rng.Intn(log2(cfg.MaxProcs)+1)
	if procs > cfg.MaxProcs {
		procs = cfg.MaxProcs
	}
	// Generous wall limit: the slowest machine (speed 0.4) stretches cpu by
	// 2.5x, plus queue-manager overhead.
	limit := 3*cpu + 10*time.Minute
	if limit > 24*time.Hour {
		limit = 24 * time.Hour
	}
	return resources.Request{Processors: procs, RunTime: limit, MemoryMB: 16 << rng.Intn(3)}
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// drawCPU draws a task's simulated processor time.
func drawCPU(rng *rand.Rand, cfg WorkloadConfig) time.Duration {
	return time.Duration((0.5 + rng.Float64()) * float64(cfg.MeanCPU))
}

// drawData draws a staged-data size in bytes.
func drawData(rng *rand.Rand, cfg WorkloadConfig) int {
	return (cfg.DataKB/2 + rng.Intn(cfg.DataKB)) << 10
}

// scriptJob is the bread-and-butter §5.7 shape: import workstation data,
// run an existing batch application, export the result to Xspace.
func scriptJob(rng *rand.Rand, cfg WorkloadConfig, name string, target core.Target) (*ajo.AbstractJob, error) {
	cpu := drawCPU(rng, cfg)
	bytes := drawData(rng, cfg)
	b := client.NewJob(name, target).Project("hpc")
	imp := b.ImportBytes("stage input", input(rng, bytes), "input.dat")
	run := b.Script("application", fmt.Sprintf(
		"cat input.dat > consumed.tmp\ncpu %s\nwrite result.dat %d\necho %s done\n",
		cpu, bytes, name), request(rng, cfg, cpu))
	exp := b.Export("archive result", "result.dat", fmt.Sprintf("/results/%s.dat", name))
	b.After(imp, run).After(run, exp)
	return b.Build()
}

// compileJob is the compile-link-execute chain for new applications (§5.7,
// "the compile is implemented for F90").
func compileJob(rng *rand.Rand, cfg WorkloadConfig, name string, target core.Target) (*ajo.AbstractJob, error) {
	cpu := drawCPU(rng, cfg)
	src := fmt.Sprintf(`! %s — synthetic F90 kernel
!SIM: cpu %s
!SIM: write field.dat %d
!SIM: echo %s kernel complete
program main
  call solve()
end program main
`, name, cpu, drawData(rng, cfg), name)
	b := client.NewJob(name, target).Project("dev")
	imp := b.ImportBytes("stage source", []byte(src), "main.f90")
	cc := b.Compile("compile f90", "f90", []string{"main.f90"}, "main.o", request(rng, cfg, time.Minute))
	ld := b.Link("link", []string{"main.o"}, []string{"MPI"}, "a.out", request(rng, cfg, time.Minute))
	run := b.Execute("execute", "a.out", nil, request(rng, cfg, cpu))
	exp := b.Export("archive field", "field.dat", fmt.Sprintf("/results/%s-field.dat", name))
	b.Chain(imp, cc, ld, run, exp)
	return b.Build()
}

// multiSiteJob reproduces the distributed shape of §3: a pre-processing
// sub-job at another Usite produces data that is transferred between the
// Uspaces and consumed by the main task.
func multiSiteJob(rng *rand.Rand, cfg WorkloadConfig, name string, target, other core.Target) (*ajo.AbstractJob, error) {
	preCPU := drawCPU(rng, cfg) / 4
	mainCPU := drawCPU(rng, cfg)
	bytes := drawData(rng, cfg)

	pre := client.NewJob(name+"/pre", other).Project("hpc")
	pre.Script("preprocess", fmt.Sprintf(
		"cpu %s\nwrite prepped.dat %d\necho %s preprocessing done\n", preCPU, bytes, name),
		request(rng, cfg, preCPU))

	b := client.NewJob(name, target).Project("hpc")
	sub := b.SubJob(pre)
	tr := b.Transfer("fetch preprocessed data", sub, "prepped.dat")
	run := b.Script("main computation", fmt.Sprintf(
		"cat prepped.dat > staged.tmp\ncpu %s\nwrite result.dat %d\necho %s done\n",
		mainCPU, bytes, name), request(rng, cfg, mainCPU))
	exp := b.Export("archive result", "result.dat", fmt.Sprintf("/results/%s.dat", name))
	b.Chain(sub, tr, run, exp)
	return b.Build()
}

// input synthesises deterministic staged data.
func input(rng *rand.Rand, n int) []byte {
	data := make([]byte, n)
	rng.Read(data)
	return data
}
