package resources

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"unicore/internal/core"
)

func samplePage() *Page {
	return &Page{
		Target:       core.Target{Usite: "FZJ", Vsite: "T3E"},
		Architecture: "Cray T3E",
		OpSys:        "UNICOS/mk",
		PerfMFlops:   600,
		Processors:   Range{Min: 1, Max: 512, Default: 16},
		RunTimeSec:   Range{Min: 60, Max: 86400, Default: 3600},
		MemoryMB:     Range{Min: 16, Max: 512, Default: 128},
		PermDiskMB:   Range{Min: 0, Max: 10240, Default: 100},
		TempDiskMB:   Range{Min: 0, Max: 40960, Default: 1024},
		Software: []Software{
			{KindCompiler, "f90", "3.1", "/opt/ctl/bin/f90"},
			{KindCompiler, "f90", "3.3", "/opt/ctl/bin/f90-3.3"},
			{KindLibrary, "MPI", "1.2", "/usr/lib/mpi"},
			{KindPackage, "Gaussian", "94", "/apps/g94"},
		},
	}
}

func TestCheckAccepts(t *testing.T) {
	p := samplePage()
	r := Request{Processors: 64, RunTime: 2 * time.Hour, MemoryMB: 256, PermDiskMB: 50, TempDiskMB: 512}
	if err := p.Check(r); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestCheckZeroUsesDefaults(t *testing.T) {
	p := samplePage()
	if err := p.Check(Request{}); err != nil {
		t.Fatalf("zero request (all defaults) rejected: %v", err)
	}
}

func TestCheckCollectsAllViolations(t *testing.T) {
	p := samplePage()
	r := Request{Processors: 1024, RunTime: time.Second, MemoryMB: 4096}
	err := p.Check(r)
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"processors", "run time", "memory"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %s", msg, want)
		}
	}
}

func TestRangeContains(t *testing.T) {
	rg := Range{Min: 2, Max: 10, Default: 4}
	cases := []struct {
		v    int
		want bool
	}{{0, true}, {1, false}, {2, true}, {10, true}, {11, false}}
	for _, c := range cases {
		if got := rg.Contains(c.v); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestRequestMaxAndDefaults(t *testing.T) {
	a := Request{Processors: 4, MemoryMB: 100}
	b := Request{Processors: 2, RunTime: time.Hour, MemoryMB: 200}
	m := a.Max(b)
	if m.Processors != 4 || m.RunTime != time.Hour || m.MemoryMB != 200 {
		t.Fatalf("Max = %+v", m)
	}
	d := (Request{Processors: 8}).WithDefaults(Request{Processors: 1, MemoryMB: 64})
	if d.Processors != 8 || d.MemoryMB != 64 {
		t.Fatalf("WithDefaults = %+v", d)
	}
}

func TestSoftwareLookup(t *testing.T) {
	p := samplePage()
	if !p.HasSoftware(KindCompiler, "F90", "") {
		t.Fatal("case-insensitive compiler lookup failed")
	}
	if !p.HasSoftware(KindPackage, "Gaussian", "94") {
		t.Fatal("versioned package lookup failed")
	}
	if p.HasSoftware(KindPackage, "Gaussian", "98") {
		t.Fatal("wrong version matched")
	}
	best, ok := p.FindSoftware(KindCompiler, "f90")
	if !ok || best.Version != "3.3" {
		t.Fatalf("FindSoftware = %+v, %v (want highest version)", best, ok)
	}
	if _, ok := p.FindSoftware(KindLibrary, "BLAS"); ok {
		t.Fatal("found software that is not installed")
	}
}

func TestDefaults(t *testing.T) {
	p := samplePage()
	d := p.Defaults()
	if d.Processors != 16 || d.RunTime != time.Hour || d.MemoryMB != 128 {
		t.Fatalf("Defaults = %+v", d)
	}
}

func TestASN1RoundTrip(t *testing.T) {
	p := samplePage()
	der, err := p.MarshalASN1()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalASN1(der)
	if err != nil {
		t.Fatal(err)
	}
	if q.Target != p.Target || q.Architecture != p.Architecture || q.OpSys != p.OpSys {
		t.Fatalf("identity fields differ: %+v", q)
	}
	if q.Processors != p.Processors || q.RunTimeSec != p.RunTimeSec || q.MemoryMB != p.MemoryMB {
		t.Fatalf("ranges differ: %+v", q)
	}
	if len(q.Software) != len(p.Software) {
		t.Fatalf("software list length %d, want %d", len(q.Software), len(p.Software))
	}
	for i := range q.Software {
		if q.Software[i] != p.Software[i] {
			t.Fatalf("software[%d] = %+v, want %+v", i, q.Software[i], p.Software[i])
		}
	}
}

func TestASN1Garbage(t *testing.T) {
	if _, err := UnmarshalASN1([]byte{0x01, 0x02, 0x03}); err == nil {
		t.Fatal("garbage DER accepted")
	}
	// Trailing data must be rejected.
	p := samplePage()
	der, _ := p.MarshalASN1()
	if _, err := UnmarshalASN1(append(der, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCatalog(t *testing.T) {
	t3e := samplePage()
	sp2 := &Page{
		Target:     core.Target{Usite: "LRZ", Vsite: "SP2"},
		Processors: Range{Min: 1, Max: 64, Default: 4},
		RunTimeSec: Range{Min: 60, Max: 43200, Default: 1800},
		MemoryMB:   Range{Min: 32, Max: 1024, Default: 128},
		PermDiskMB: Range{Max: 1024},
		TempDiskMB: Range{Max: 1024},
	}
	c := NewCatalog(t3e, sp2)
	if got := c.Targets(); fmt.Sprint(got) != "[FZJ/T3E LRZ/SP2]" {
		t.Fatalf("Targets = %v", got)
	}
	if _, ok := c.Get(core.Target{Usite: "FZJ", Vsite: "T3E"}); !ok {
		t.Fatal("Get failed")
	}
	// 256 processors only fits the T3E.
	hits := c.Satisfying(Request{Processors: 256})
	if len(hits) != 1 || hits[0].Vsite != "T3E" {
		t.Fatalf("Satisfying = %v", hits)
	}
	// 1 GiB memory only fits the SP2.
	hits = c.Satisfying(Request{MemoryMB: 1024})
	if len(hits) != 1 || hits[0].Vsite != "SP2" {
		t.Fatalf("Satisfying(mem) = %v", hits)
	}
}

// Property: ASN.1 round trip preserves any page with sane field values.
func TestQuickASN1RoundTrip(t *testing.T) {
	f := func(cpuMin, cpuMax uint8, perf uint16, arch string, nSoft uint8) bool {
		if strings.ContainsRune(arch, 0) {
			arch = "x"
		}
		p := &Page{
			Target:       core.Target{Usite: "U", Vsite: "V"},
			Architecture: arch,
			PerfMFlops:   int(perf),
			Processors:   Range{Min: int(cpuMin), Max: int(cpuMin) + int(cpuMax), Default: int(cpuMin)},
			RunTimeSec:   Range{Min: 1, Max: 100, Default: 10},
			MemoryMB:     Range{Min: 1, Max: 100, Default: 10},
			PermDiskMB:   Range{Max: 10},
			TempDiskMB:   Range{Max: 10},
		}
		for i := 0; i < int(nSoft%5); i++ {
			p.Software = append(p.Software, Software{KindLibrary, fmt.Sprintf("lib%d", i), "1", "/l"})
		}
		der, err := p.MarshalASN1()
		if err != nil {
			return false
		}
		q, err := UnmarshalASN1(der)
		if err != nil {
			return false
		}
		if q.Architecture != p.Architecture || q.PerfMFlops != p.PerfMFlops || q.Processors != p.Processors {
			return false
		}
		return len(q.Software) == len(p.Software)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Check(r) == nil implies r is inside every range (with defaults
// substituted), i.e. Check has no false accepts.
func TestQuickCheckSound(t *testing.T) {
	p := samplePage()
	f := func(cpus uint16, mins uint16, mem uint16) bool {
		r := Request{
			Processors: int(cpus),
			RunTime:    time.Duration(mins) * time.Minute,
			MemoryMB:   int(mem),
		}
		err := p.Check(r)
		inRange := p.Processors.Contains(r.Processors) &&
			p.RunTimeSec.Contains(int(r.RunTime/time.Second)) &&
			p.MemoryMB.Contains(r.MemoryMB) &&
			p.PermDiskMB.Contains(0) && p.TempDiskMB.Contains(0)
		return (err == nil) == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
