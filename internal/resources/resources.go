// Package resources implements UNICORE's resource model (paper §5.4):
// requests for "the number of CPUs (or processor elements), the amount of
// execution time, the amount of memory, and the amount of disk space needed,
// both permanent and temporary", and the per-Vsite *resource page* with
// minimum/maximum values, architecture/performance/OS information and the
// available software, "stored in ASN1 format for the JPA".
package resources

import (
	"encoding/asn1"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"unicore/internal/core"
)

// ErrUnsatisfiable tags request-vs-page check failures.
var ErrUnsatisfiable = errors.New("resources: request unsatisfiable at vsite")

// Request is the resource demand of one abstract task.
type Request struct {
	Processors int           // CPUs / processor elements
	RunTime    time.Duration // execution (wall clock) time
	MemoryMB   int           // per-node memory, MiB
	PermDiskMB int           // permanent disk space, MiB
	TempDiskMB int           // temporary disk space, MiB
}

// IsZero reports whether the request demands nothing.
func (r Request) IsZero() bool { return r == Request{} }

// Max returns the component-wise maximum of two requests.
func (r Request) Max(o Request) Request {
	if o.Processors > r.Processors {
		r.Processors = o.Processors
	}
	if o.RunTime > r.RunTime {
		r.RunTime = o.RunTime
	}
	if o.MemoryMB > r.MemoryMB {
		r.MemoryMB = o.MemoryMB
	}
	if o.PermDiskMB > r.PermDiskMB {
		r.PermDiskMB = o.PermDiskMB
	}
	if o.TempDiskMB > r.TempDiskMB {
		r.TempDiskMB = o.TempDiskMB
	}
	return r
}

// WithDefaults fills zero fields from d.
func (r Request) WithDefaults(d Request) Request {
	if r.Processors == 0 {
		r.Processors = d.Processors
	}
	if r.RunTime == 0 {
		r.RunTime = d.RunTime
	}
	if r.MemoryMB == 0 {
		r.MemoryMB = d.MemoryMB
	}
	if r.PermDiskMB == 0 {
		r.PermDiskMB = d.PermDiskMB
	}
	if r.TempDiskMB == 0 {
		r.TempDiskMB = d.TempDiskMB
	}
	return r
}

func (r Request) String() string {
	return fmt.Sprintf("cpus=%d time=%s mem=%dMB perm=%dMB temp=%dMB",
		r.Processors, r.RunTime, r.MemoryMB, r.PermDiskMB, r.TempDiskMB)
}

// Range bounds one resource dimension on a resource page.
type Range struct {
	Min, Max, Default int
}

// Contains reports whether v (with 0 meaning "use default") falls in range.
func (rg Range) Contains(v int) bool {
	if v == 0 {
		v = rg.Default
	}
	return v >= rg.Min && v <= rg.Max
}

// SoftwareKind classifies a resource-page software entry.
type SoftwareKind string

const (
	KindCompiler SoftwareKind = "compiler"
	KindLibrary  SoftwareKind = "library"
	KindPackage  SoftwareKind = "package" // application packages: Gaussian, ANSYS, ...
)

// Software describes one installed compiler, library, or package.
type Software struct {
	Kind    SoftwareKind
	Name    string
	Version string
	Path    string
}

// Page is a Vsite's resource page, prepared by the site administrator
// "through a resource page editor" (§5.4) and shipped to the JPA alongside
// the applet.
type Page struct {
	Target       core.Target
	Architecture string // e.g. "Cray T3E", "IBM SP-2"
	OpSys        string // e.g. "UNICOS/mk"
	PerfMFlops   int    // peak performance per PE, MFlop/s
	Processors   Range
	RunTimeSec   Range
	MemoryMB     Range
	PermDiskMB   Range
	TempDiskMB   Range
	Software     []Software
}

// HasSoftware reports whether the page lists software of the given kind and
// name (any version when version is empty).
func (p *Page) HasSoftware(kind SoftwareKind, name, version string) bool {
	for _, s := range p.Software {
		if s.Kind == kind && strings.EqualFold(s.Name, name) &&
			(version == "" || s.Version == version) {
			return true
		}
	}
	return false
}

// FindSoftware returns the catalog entry for (kind, name), preferring the
// highest version string.
func (p *Page) FindSoftware(kind SoftwareKind, name string) (Software, bool) {
	var best Software
	found := false
	for _, s := range p.Software {
		if s.Kind != kind || !strings.EqualFold(s.Name, name) {
			continue
		}
		if !found || s.Version > best.Version {
			best, found = s, true
		}
	}
	return best, found
}

// Defaults returns the page's default request.
func (p *Page) Defaults() Request {
	return Request{
		Processors: p.Processors.Default,
		RunTime:    time.Duration(p.RunTimeSec.Default) * time.Second,
		MemoryMB:   p.MemoryMB.Default,
		PermDiskMB: p.PermDiskMB.Default,
		TempDiskMB: p.TempDiskMB.Default,
	}
}

// Check validates a request against the page. It collects every violation so
// the JPA can show the user all problems at once.
func (p *Page) Check(r Request) error {
	var problems []string
	if !p.Processors.Contains(r.Processors) {
		problems = append(problems, fmt.Sprintf("processors %d outside [%d,%d]", r.Processors, p.Processors.Min, p.Processors.Max))
	}
	sec := int(r.RunTime / time.Second)
	if !p.RunTimeSec.Contains(sec) {
		problems = append(problems, fmt.Sprintf("run time %s outside [%ds,%ds]", r.RunTime, p.RunTimeSec.Min, p.RunTimeSec.Max))
	}
	if !p.MemoryMB.Contains(r.MemoryMB) {
		problems = append(problems, fmt.Sprintf("memory %dMB outside [%d,%d]", r.MemoryMB, p.MemoryMB.Min, p.MemoryMB.Max))
	}
	if !p.PermDiskMB.Contains(r.PermDiskMB) {
		problems = append(problems, fmt.Sprintf("permanent disk %dMB outside [%d,%d]", r.PermDiskMB, p.PermDiskMB.Min, p.PermDiskMB.Max))
	}
	if !p.TempDiskMB.Contains(r.TempDiskMB) {
		problems = append(problems, fmt.Sprintf("temporary disk %dMB outside [%d,%d]", r.TempDiskMB, p.TempDiskMB.Min, p.TempDiskMB.Max))
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("%w %s: %s", ErrUnsatisfiable, p.Target, strings.Join(problems, "; "))
}

// --- ASN.1 wire format (§5.4: "stored in ASN1 format") ---

// The asn1 package cannot marshal arbitrary structs with time.Duration or
// custom string types, so the page is flattened into a DER-friendly mirror.

type asn1Range struct {
	Min, Max, Default int
}

type asn1Software struct {
	Kind    string
	Name    string
	Version string
	Path    string
}

type asn1Page struct {
	Usite        string
	Vsite        string
	Architecture string
	OpSys        string
	PerfMFlops   int
	Processors   asn1Range
	RunTimeSec   asn1Range
	MemoryMB     asn1Range
	PermDiskMB   asn1Range
	TempDiskMB   asn1Range
	Software     []asn1Software
}

// MarshalASN1 encodes the page as DER.
func (p *Page) MarshalASN1() ([]byte, error) {
	ap := asn1Page{
		Usite:        string(p.Target.Usite),
		Vsite:        string(p.Target.Vsite),
		Architecture: p.Architecture,
		OpSys:        p.OpSys,
		PerfMFlops:   p.PerfMFlops,
		Processors:   asn1Range(p.Processors),
		RunTimeSec:   asn1Range(p.RunTimeSec),
		MemoryMB:     asn1Range(p.MemoryMB),
		PermDiskMB:   asn1Range(p.PermDiskMB),
		TempDiskMB:   asn1Range(p.TempDiskMB),
	}
	for _, s := range p.Software {
		ap.Software = append(ap.Software, asn1Software{string(s.Kind), s.Name, s.Version, s.Path})
	}
	der, err := asn1.Marshal(ap)
	if err != nil {
		return nil, fmt.Errorf("resources: ASN.1 encoding page for %s: %w", p.Target, err)
	}
	return der, nil
}

// UnmarshalASN1 decodes a DER-encoded page.
func UnmarshalASN1(der []byte) (*Page, error) {
	var ap asn1Page
	rest, err := asn1.Unmarshal(der, &ap)
	if err != nil {
		return nil, fmt.Errorf("resources: ASN.1 decoding page: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("resources: %d trailing bytes after page", len(rest))
	}
	p := &Page{
		Target:       core.Target{Usite: core.Usite(ap.Usite), Vsite: core.Vsite(ap.Vsite)},
		Architecture: ap.Architecture,
		OpSys:        ap.OpSys,
		PerfMFlops:   ap.PerfMFlops,
		Processors:   Range(ap.Processors),
		RunTimeSec:   Range(ap.RunTimeSec),
		MemoryMB:     Range(ap.MemoryMB),
		PermDiskMB:   Range(ap.PermDiskMB),
		TempDiskMB:   Range(ap.TempDiskMB),
	}
	for _, s := range ap.Software {
		p.Software = append(p.Software, Software{SoftwareKind(s.Kind), s.Name, s.Version, s.Path})
	}
	return p, nil
}

// Catalog is a set of resource pages keyed by target, as served by a
// gateway to the JPA.
type Catalog struct {
	pages map[core.Target]*Page
}

// NewCatalog builds a catalog from pages.
func NewCatalog(pages ...*Page) *Catalog {
	c := &Catalog{pages: make(map[core.Target]*Page, len(pages))}
	for _, p := range pages {
		c.pages[p.Target] = p
	}
	return c
}

// Add inserts or replaces a page.
func (c *Catalog) Add(p *Page) { c.pages[p.Target] = p }

// Remove drops the page for target, if present.
func (c *Catalog) Remove(t core.Target) { delete(c.pages, t) }

// Get returns the page for target.
func (c *Catalog) Get(target core.Target) (*Page, bool) {
	p, ok := c.pages[target]
	return p, ok
}

// Targets lists all targets, sorted by string form.
func (c *Catalog) Targets() []core.Target {
	out := make([]core.Target, 0, len(c.pages))
	for t := range c.pages {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Satisfying returns the targets whose pages satisfy the request, sorted.
func (c *Catalog) Satisfying(r Request) []core.Target {
	var out []core.Target
	for _, t := range c.Targets() {
		if c.pages[t].Check(r) == nil {
			out = append(out, t)
		}
	}
	return out
}
