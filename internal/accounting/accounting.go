// Package accounting aggregates batch usage records across a UNICORE
// deployment. The paper's outlook (§6) names "accounting functions and load
// information" as the inputs a resource broker needs to "find the best
// system for an application with given time constraints"; this package
// supplies the accounting half and the broker package consumes it.
//
// Records originate in each Vsite's batch subsystem (package codine) and are
// tagged with their target so multi-site usage can be merged, grouped, and
// charged in machine-normalised units.
package accounting

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"unicore/internal/codine"
	"unicore/internal/core"
)

// Record is one site-tagged accounting line.
type Record struct {
	Target core.Target
	// MFlopsPerPE is the peak per-PE performance of the machine that ran the
	// job; charging normalises CPU time by it.
	MFlopsPerPE int
	codine.Record
}

// ChargeUnits converts the record's consumption into machine-normalised
// units: slot-seconds weighted by per-PE peak performance (GFlop-seconds of
// nominal capacity). Sites charged this way can be compared and summed.
func (r Record) ChargeUnits() float64 {
	wall := r.End.Sub(r.Start)
	if wall < 0 {
		wall = 0
	}
	return wall.Seconds() * float64(r.Slots) * float64(r.MFlopsPerPE) / 1000.0
}

// Summary aggregates a set of records.
type Summary struct {
	Jobs      int
	Completed int
	Failed    int
	Cancelled int
	CPUTime   time.Duration
	WallTime  time.Duration // sum over jobs of end-start
	QueueWait time.Duration // sum of start-submit
	SlotSecs  float64       // sum of slots*(end-start) in seconds
	Charge    float64       // sum of ChargeUnits
}

// MeanQueueWait reports the average time jobs waited before dispatch.
func (s Summary) MeanQueueWait() time.Duration {
	if s.Jobs == 0 {
		return 0
	}
	return s.QueueWait / time.Duration(s.Jobs)
}

// add folds one record into the summary.
func (s *Summary) add(r Record) {
	s.Jobs++
	switch r.State {
	case codine.StateDone:
		s.Completed++
	case codine.StateCancelled:
		s.Cancelled++
	default:
		s.Failed++
	}
	s.CPUTime += r.CPUTime
	wall := r.End.Sub(r.Start)
	if wall > 0 {
		s.WallTime += wall
		s.SlotSecs += wall.Seconds() * float64(r.Slots)
	}
	if wait := r.Start.Sub(r.Submit); wait > 0 {
		s.QueueWait += wait
	}
	s.Charge += r.ChargeUnits()
}

// Summarise aggregates all records into one summary.
func Summarise(recs []Record) Summary {
	var s Summary
	for _, r := range recs {
		s.add(r)
	}
	return s
}

// ByOwner groups records by the local login that ran them.
func ByOwner(recs []Record) map[string]Summary {
	out := make(map[string]Summary)
	for _, r := range recs {
		s := out[r.Owner]
		s.add(r)
		out[r.Owner] = s
	}
	return out
}

// ByTarget groups records by Vsite.
func ByTarget(recs []Record) map[core.Target]Summary {
	out := make(map[core.Target]Summary)
	for _, r := range recs {
		s := out[r.Target]
		s.add(r)
		out[r.Target] = s
	}
	return out
}

// Utilization reports the fraction of a machine's capacity consumed by recs
// within [from, to): slot-seconds used divided by slots*window.
func Utilization(recs []Record, totalSlots int, from, to time.Time) float64 {
	window := to.Sub(from)
	if window <= 0 || totalSlots <= 0 {
		return 0
	}
	var used float64
	for _, r := range recs {
		start, end := r.Start, r.End
		if start.Before(from) {
			start = from
		}
		if end.After(to) {
			end = to
		}
		if d := end.Sub(start); d > 0 {
			used += d.Seconds() * float64(r.Slots)
		}
	}
	return used / (window.Seconds() * float64(totalSlots))
}

// Makespan reports the span from the earliest submit to the latest end.
func Makespan(recs []Record) time.Duration {
	if len(recs) == 0 {
		return 0
	}
	first, last := recs[0].Submit, recs[0].End
	for _, r := range recs[1:] {
		if r.Submit.Before(first) {
			first = r.Submit
		}
		if r.End.After(last) {
			last = r.End
		}
	}
	if last.Before(first) {
		return 0
	}
	return last.Sub(first)
}

// CSV renders the records as a comma-separated table, sorted by end time
// (ties by target and job ID) — the exportable accounting report.
func CSV(recs []Record) string {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].End.Equal(sorted[j].End) {
			return sorted[i].End.Before(sorted[j].End)
		}
		if sorted[i].Target != sorted[j].Target {
			return sorted[i].Target.String() < sorted[j].Target.String()
		}
		return sorted[i].Job < sorted[j].Job
	})
	var b strings.Builder
	b.WriteString("target,job,name,owner,project,queue,slots,submit,start,end,cpu_s,state,exit,charge\n")
	for _, r := range sorted {
		fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%s,%d,%s,%s,%s,%.1f,%s,%d,%.2f\n",
			r.Target, r.Job, csvEscape(r.Name), r.Owner, r.Project, r.Queue, r.Slots,
			r.Submit.Format(time.RFC3339), r.Start.Format(time.RFC3339), r.End.Format(time.RFC3339),
			r.CPUTime.Seconds(), r.State, r.ExitCode, r.ChargeUnits())
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
