package accounting

import (
	"strings"
	"testing"
	"time"

	"unicore/internal/codine"
	"unicore/internal/core"
)

var epoch = time.Date(1999, 8, 3, 9, 0, 0, 0, time.UTC)

func rec(target core.Target, owner string, slots int, submit, start, wall time.Duration, state codine.State) Record {
	return Record{
		Target:      target,
		MFlopsPerPE: 600,
		Record: codine.Record{
			Owner:   owner,
			Slots:   slots,
			Submit:  epoch.Add(submit),
			Start:   epoch.Add(start),
			End:     epoch.Add(start + wall),
			CPUTime: wall,
			State:   state,
		},
	}
}

var (
	fzj = core.Target{Usite: "FZJ", Vsite: "T3E"}
	lrz = core.Target{Usite: "LRZ", Vsite: "VPP"}
)

func TestSummarise(t *testing.T) {
	recs := []Record{
		rec(fzj, "alice", 8, 0, time.Minute, time.Hour, codine.StateDone),
		rec(fzj, "alice", 4, 0, 2*time.Minute, 30*time.Minute, codine.StateFailed),
		rec(lrz, "bob", 1, 0, 0, 10*time.Minute, codine.StateCancelled),
	}
	s := Summarise(recs)
	if s.Jobs != 3 || s.Completed != 1 || s.Failed != 1 || s.Cancelled != 1 {
		t.Fatalf("summary = %+v", s)
	}
	wantWall := time.Hour + 30*time.Minute + 10*time.Minute
	if s.WallTime != wantWall {
		t.Fatalf("wall = %s, want %s", s.WallTime, wantWall)
	}
	wantWait := time.Minute + 2*time.Minute
	if s.QueueWait != wantWait {
		t.Fatalf("wait = %s, want %s", s.QueueWait, wantWait)
	}
	if got := s.MeanQueueWait(); got != time.Minute {
		t.Fatalf("mean wait = %s, want 1m", got)
	}
}

func TestChargeUnits(t *testing.T) {
	r := rec(fzj, "alice", 8, 0, 0, time.Hour, codine.StateDone)
	// 3600s * 8 slots * 600 MFlops / 1000 = 17280 GFlop-equivalent units.
	if got, want := r.ChargeUnits(), 3600.0*8*600/1000; got != want {
		t.Fatalf("charge = %v, want %v", got, want)
	}
	zero := Summary{}
	if zero.MeanQueueWait() != 0 {
		t.Fatal("mean wait of empty summary should be 0")
	}
}

func TestGrouping(t *testing.T) {
	recs := []Record{
		rec(fzj, "alice", 1, 0, 0, time.Hour, codine.StateDone),
		rec(fzj, "bob", 1, 0, 0, time.Hour, codine.StateDone),
		rec(lrz, "alice", 1, 0, 0, time.Hour, codine.StateDone),
	}
	byOwner := ByOwner(recs)
	if byOwner["alice"].Jobs != 2 || byOwner["bob"].Jobs != 1 {
		t.Fatalf("byOwner = %+v", byOwner)
	}
	byTarget := ByTarget(recs)
	if byTarget[fzj].Jobs != 2 || byTarget[lrz].Jobs != 1 {
		t.Fatalf("byTarget = %+v", byTarget)
	}
}

func TestUtilization(t *testing.T) {
	recs := []Record{
		// 64 slots for 1h on a 128-slot machine over a 2h window = 25%.
		rec(fzj, "alice", 64, 0, 0, time.Hour, codine.StateDone),
	}
	got := Utilization(recs, 128, epoch, epoch.Add(2*time.Hour))
	if got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	// Records partially outside the window are clipped.
	clip := Utilization(recs, 128, epoch.Add(30*time.Minute), epoch.Add(90*time.Minute))
	if clip != 0.25 {
		t.Fatalf("clipped utilization = %v, want 0.25", clip)
	}
	if Utilization(nil, 0, epoch, epoch) != 0 {
		t.Fatal("degenerate window should be 0")
	}
}

func TestMakespan(t *testing.T) {
	recs := []Record{
		rec(fzj, "a", 1, 0, time.Minute, time.Hour, codine.StateDone),
		rec(fzj, "a", 1, 10*time.Minute, 20*time.Minute, 2*time.Hour, codine.StateDone),
	}
	// Earliest submit at +0, latest end at +20m+2h.
	if got, want := Makespan(recs), 2*time.Hour+20*time.Minute; got != want {
		t.Fatalf("makespan = %s, want %s", got, want)
	}
	if Makespan(nil) != 0 {
		t.Fatal("empty makespan should be 0")
	}
}

func TestCSV(t *testing.T) {
	r := rec(fzj, "alice", 8, 0, time.Minute, time.Hour, codine.StateDone)
	r.Name = `weather, "main" run`
	out := CSV([]Record{r})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "target,job,name") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"weather, ""main"" run"`) {
		t.Fatalf("row does not escape the name: %q", lines[1])
	}
	if !strings.Contains(lines[1], "FZJ/T3E") {
		t.Fatalf("row missing target: %q", lines[1])
	}
}

func TestCSVSortedByEnd(t *testing.T) {
	early := rec(fzj, "a", 1, 0, 0, time.Minute, codine.StateDone)
	late := rec(lrz, "b", 1, 0, 0, 2*time.Hour, codine.StateDone)
	out := CSV([]Record{late, early})
	if strings.Index(out, "FZJ/T3E") > strings.Index(out, "LRZ/VPP") {
		t.Fatalf("rows not sorted by end time:\n%s", out)
	}
}
