package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/events"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/resources"
)

// session opens a v2 session against the rig's site.
func (r *rig) session() *Session {
	return NewSession(r.c, "LRZ")
}

// slowJob builds a two-step script job with real virtual runtime.
func slowJob(t *testing.T) *ajo.AbstractJob {
	t.Helper()
	b := NewJob("awaited", vpp)
	s1 := b.Script("produce", "cpu 5m\necho 42 > answer.txt\n", resources.Request{Processors: 1, RunTime: time.Hour})
	s2 := b.Script("consume", "cpu 2m\ncat answer.txt\n", resources.Request{Processors: 1, RunTime: time.Hour})
	b.After(s1, s2, "answer.txt")
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return job
}

// TestSessionAwaitCompletesOnEventStream runs Await concurrently with the
// virtual-clock driver: the long-polled subscription wakes as the NJS
// appends events, and Await returns the terminal summary without interval
// polling.
func TestSessionAwaitCompletesOnEventStream(t *testing.T) {
	r := newRig(t)
	sess := r.session()
	jid, err := sess.Submit(context.Background(), slowJob(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	type result struct {
		sum ajo.Summary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := sess.Await(context.Background(), jid)
		done <- result{sum, err}
	}()
	// Drive the deployment to completion while Await blocks.
	deadline := time.After(10 * time.Second)
	for {
		r.clock.RunUntilIdle(100000)
		select {
		case res := <-done:
			if res.err != nil {
				t.Fatalf("Await: %v", res.err)
			}
			if res.sum.Status != ajo.StatusSuccessful {
				t.Fatalf("Await status = %s, want SUCCESSFUL", res.sum.Status)
			}
			return
		case <-deadline:
			t.Fatal("Await never returned")
		case <-time.After(time.Millisecond):
			// The Await goroutine may not have subscribed yet; drive again.
		}
	}
}

// TestSessionAwaitCancellation unblocks a held Await as soon as its context
// is cancelled — the cancellation path through protocol.Client and the
// gateway long-poll.
func TestSessionAwaitCancellation(t *testing.T) {
	r := newRig(t)
	sess := r.session()
	jid, err := sess.Submit(context.Background(), slowJob(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sess.Await(ctx, jid)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the long-poll start
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled Await returned nil error")
		}
		if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("cancelled Await returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock Await")
	}
}

// TestSessionWatchDeliversOrderedStream collects the full event stream of a
// job and checks ordering invariants: contiguous per-job sequence from 1,
// admitted first, exactly one terminal event, delivered last.
func TestSessionWatchDeliversOrderedStream(t *testing.T) {
	r := newRig(t)
	sess := r.session()
	jid, err := sess.Submit(context.Background(), slowJob(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ch, err := sess.Watch(context.Background(), jid)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	got := make(chan []JobEvent, 1)
	go func() {
		var evs []JobEvent
		for ev := range ch {
			evs = append(evs, ev)
		}
		got <- evs
	}()
	var evs []JobEvent
	deadline := time.After(10 * time.Second)
collect:
	for {
		r.clock.RunUntilIdle(100000)
		select {
		case evs = <-got:
			break collect
		case <-deadline:
			t.Fatal("Watch channel never closed")
		case <-time.After(time.Millisecond):
			// The watcher may still be mid-subscribe; drive again.
		}
	}
	if len(evs) == 0 {
		t.Fatal("Watch delivered no events")
	}
	terminals := 0
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d — stream not contiguous", i, ev.Seq)
		}
		if ev.Terminal {
			terminals++
		}
	}
	if evs[0].Type != events.TypeAdmitted {
		t.Fatalf("first event = %s, want admitted", evs[0].Type)
	}
	last := evs[len(evs)-1]
	if terminals != 1 || !last.Terminal || last.Status != ajo.StatusSuccessful {
		t.Fatalf("terminal events = %d, last = %+v; want exactly one terminal last", terminals, last)
	}
}

// TestWatchUnknownJobFailsFast surfaces bad subscriptions synchronously.
func TestWatchUnknownJobFailsFast(t *testing.T) {
	r := newRig(t)
	if _, err := r.session().Watch(context.Background(), "LRZ-999999"); err == nil {
		t.Fatal("Watch of an unknown job returned a channel instead of an error")
	}
}

// TestConsignIDFallbackStaysUnique is the regression test for the
// crypto/rand fallback: two submissions minted without entropy must not
// share an idempotency token (a shared token silently dedupes the second
// submission as a "retry" of the first).
func TestConsignIDFallbackStaysUnique(t *testing.T) {
	orig := consignIDReader
	consignIDReader = func([]byte) (int, error) { return 0, errors.New("entropy exhausted") }
	defer func() { consignIDReader = orig }()

	a, b := newConsignID(), newConsignID()
	if a == b {
		t.Fatalf("two entropy-free consign IDs collide: %q", a)
	}
	if a == "consign-fallback" || b == "consign-fallback" {
		t.Fatalf("constant fallback token is back: %q %q", a, b)
	}

	// End to end: two fallback-tokened submissions admit two distinct jobs.
	r := newRig(t)
	id1, err := r.jpa.Submit(slowJob(t))
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	id2, err := r.jpa.Submit(slowJob(t))
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	if id1 == id2 {
		t.Fatalf("second submission deduplicated onto %s", id1)
	}
}

// failAfter passes requests through until n have been served, then fails
// every later round trip — the shape of a transport that dies mid-wait.
type failAfter struct {
	base http.RoundTripper
	left int
}

func (f *failAfter) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.left <= 0 {
		return nil, fmt.Errorf("transport down")
	}
	f.left--
	return f.base.RoundTrip(req)
}

// TestWaitSurfacesTransportError is the regression test for the Wait error
// contract: when a poll fails in transit mid-wait — including on the very
// last round — Wait returns the transport error, never ErrWaitTimeout
// masking it.
func TestWaitSurfacesTransportError(t *testing.T) {
	r := newRig(t)
	jid, err := r.jpa.Submit(slowJob(t))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The job stays non-terminal (nobody drives the clock). Let exactly the
	// first two monitor rounds through, then kill the transport: the final
	// round errors and that error must surface.
	ft := &failAfter{base: r.net, left: 2}
	c := protocol.NewClient(protocol.OverHTTP(ft), r.user, r.ca, r.reg)
	c.Retries = 0
	jmc := NewJMC(c)
	_, err = jmc.Wait("LRZ", jid, time.Millisecond, func(time.Duration) {}, 3)
	if err == nil {
		t.Fatal("Wait returned nil despite the dead transport")
	}
	if errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("Wait masked the transport failure behind ErrWaitTimeout: %v", err)
	}
	if !strings.Contains(err.Error(), "transport down") {
		t.Fatalf("Wait error = %v, want the transport failure", err)
	}
	// Under a lossy-but-retrying transport (the §5.3 claim) Wait still
	// reaches the terminal summary.
	r.clock.RunUntilIdle(1000000)
	flaky := protocol.NewFlaky(r.net, 0.3, 42)
	fc := protocol.NewClient(flaky, r.user, r.ca, r.reg)
	fc.Retries = 50
	sum, err := NewJMC(fc).Wait("LRZ", jid, time.Millisecond, func(time.Duration) {}, 50)
	if err != nil {
		t.Fatalf("Wait over flaky transport: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("Wait status = %s, want SUCCESSFUL", sum.Status)
	}
}

// v1Site mimics a pre-session gateway: it accepts only version-1 envelopes
// (rejecting others with the ErrBadVersion marker, exactly as the old strict
// Open did) and answers polls with a terminal summary.
func v1Site(t *testing.T, ca *pki.Authority, cred *pki.Credential) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var env protocol.Envelope
		if err := json.NewDecoder(req.Body).Decode(&env); err != nil {
			t.Fatalf("v1 site: decode: %v", err)
		}
		seal := func(mt protocol.MsgType, payload any) {
			out, err := protocol.SealAt(cred, 1, mt, payload)
			if err != nil {
				t.Fatalf("v1 site: seal: %v", err)
			}
			w.Write(out)
		}
		if env.Version != 1 {
			seal(protocol.MsgError, protocol.ErrorReply{
				Code:    "authentication",
				Message: fmt.Sprintf("protocol: unsupported protocol version: %d", env.Version),
			})
			return
		}
		switch env.Type {
		case protocol.MsgPoll:
			seal(protocol.MsgPollReply, protocol.PollReply{Found: true, Summary: ajo.Summary{
				Job: "OLD-000001", Status: ajo.StatusSuccessful, Total: 1, Done: 1,
			}})
		default:
			seal(protocol.MsgError, protocol.ErrorReply{Code: string(env.Type), Message: "unsupported"})
		}
	})
}

// TestVersionNegotiationAgainstV1Site downgrades transparently: the first
// call re-seals at v1 after the rejection, later calls go straight to v1,
// Session.Await reports ErrV1Peer, and JMC.Wait falls back to polling.
func TestVersionNegotiationAgainstV1Site(t *testing.T) {
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ca.IssueServer("gateway.old", "gw.old")
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("Vera Vintage", "OLD")
	if err != nil {
		t.Fatal(err)
	}
	net := protocol.NewInProc()
	net.Register("gw.old", v1Site(t, ca, srv))
	reg := protocol.NewRegistry()
	reg.Add("OLD", "https://gw.old")
	c := protocol.NewClient(net, user, ca, reg)

	if v := c.SiteVersion("OLD"); v != protocol.Version {
		t.Fatalf("initial site version = %d, want %d", v, protocol.Version)
	}
	jmc := NewJMC(c)
	sum, err := jmc.Status("OLD", "OLD-000001")
	if err != nil {
		t.Fatalf("Status via negotiation: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s", sum.Status)
	}
	if v := c.SiteVersion("OLD"); v != 1 {
		t.Fatalf("negotiated site version = %d, want 1", v)
	}

	sess := NewSession(c, "OLD")
	if _, err := sess.Await(context.Background(), "OLD-000001"); !errors.Is(err, protocol.ErrV1Peer) {
		t.Fatalf("Await against a v1 site: err = %v, want ErrV1Peer", err)
	}
	// The deprecated Wait still completes by falling back to status polls.
	sum, err = jmc.Wait("OLD", "OLD-000001", time.Millisecond, func(time.Duration) {}, 5)
	if err != nil {
		t.Fatalf("Wait fallback: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("Wait fallback status = %s", sum.Status)
	}
}
