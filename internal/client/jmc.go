package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/staging"
)

// JMC is the job monitor controller: it "shows the job status of the user's
// UNICORE jobs ... the icons are colored to reflect the job status in a
// seamless way" and lets the user list/save task output and control jobs
// (§5.7).
type JMC struct {
	c *protocol.Client

	// Transfer tunes the chunked download engine under FetchFile (zero value
	// = package staging defaults). Set it before first use.
	Transfer staging.Options
}

// NewJMC wraps a protocol client.
func NewJMC(c *protocol.Client) *JMC {
	return &JMC{c: c}
}

// List returns the caller's jobs at a Usite, newest first.
func (m *JMC) List(usite core.Usite) ([]protocol.JobInfo, error) {
	return m.listContext(context.Background(), usite)
}

func (m *JMC) listContext(ctx context.Context, usite core.Usite) ([]protocol.JobInfo, error) {
	var reply protocol.ListReply
	if err := m.c.CallContext(ctx, usite, protocol.MsgList, protocol.ListRequest{}, &reply); err != nil {
		return nil, err
	}
	return reply.Jobs, nil
}

// Status polls the compact summary of one job.
func (m *JMC) Status(usite core.Usite, job core.JobID) (ajo.Summary, error) {
	return m.statusContext(context.Background(), usite, job)
}

func (m *JMC) statusContext(ctx context.Context, usite core.Usite, job core.JobID) (ajo.Summary, error) {
	var reply protocol.PollReply
	if err := m.c.CallContext(ctx, usite, protocol.MsgPoll, protocol.PollRequest{Job: job}, &reply); err != nil {
		return ajo.Summary{}, err
	}
	if !reply.Found {
		return ajo.Summary{}, fmt.Errorf("client: no job %s at %s", job, usite)
	}
	return reply.Summary, nil
}

// Outcome retrieves the full outcome tree of one job.
func (m *JMC) Outcome(usite core.Usite, job core.JobID) (*ajo.Outcome, error) {
	return m.outcomeContext(context.Background(), usite, job)
}

func (m *JMC) outcomeContext(ctx context.Context, usite core.Usite, job core.JobID) (*ajo.Outcome, error) {
	var reply protocol.OutcomeReply
	if err := m.c.CallContext(ctx, usite, protocol.MsgOutcome, protocol.OutcomeRequest{Job: job}, &reply); err != nil {
		return nil, err
	}
	if !reply.Found {
		return nil, fmt.Errorf("client: no job %s at %s", job, usite)
	}
	return ajo.UnmarshalOutcome(reply.Outcome)
}

// control sends one job-control operation.
func (m *JMC) control(usite core.Usite, job core.JobID, op ajo.ControlOp) error {
	return m.controlContext(context.Background(), usite, job, op)
}

func (m *JMC) controlContext(ctx context.Context, usite core.Usite, job core.JobID, op ajo.ControlOp) error {
	var reply protocol.ControlReply
	if err := m.c.CallContext(ctx, usite, protocol.MsgControl, protocol.ControlRequest{Job: job, Op: op}, &reply); err != nil {
		return err
	}
	if !reply.OK {
		return fmt.Errorf("client: %s %s: %s", op, job, reply.Reason)
	}
	return nil
}

// Abort cancels a job and everything in flight for it.
func (m *JMC) Abort(usite core.Usite, job core.JobID) error {
	return m.control(usite, job, ajo.OpAbort)
}

// Hold pauses dispatching of a job's not-yet-started actions.
func (m *JMC) Hold(usite core.Usite, job core.JobID) error {
	return m.control(usite, job, ajo.OpHold)
}

// Resume releases a held job.
func (m *JMC) Resume(usite core.Usite, job core.JobID) error {
	return m.control(usite, job, ajo.OpResume)
}

// ErrWaitTimeout reports that Wait gave up before the job became terminal.
var ErrWaitTimeout = errors.New("client: job did not reach a terminal status in time")

// Wait blocks until the job is terminal, pacing itself with sleep(interval)
// between rounds and giving up after maxPolls rounds (sleep is time.Sleep in
// the CLIs; a virtual-clock advance in simulations).
//
// Deprecated: Wait is the polling predecessor of Session.Await, kept as a
// thin interval-paced wrapper over the same event-stream engine: against a
// protocol-v2 site each round is one cursor fetch of the job's event stream,
// and against a v1 site it falls back to status polling. New code should use
// Session.Await (one long-poll round trip instead of one request per
// interval) or Session.Watch.
//
// A transport failure mid-wait is surfaced immediately — including on the
// final round: the timeout error is returned only when the job was genuinely
// observed non-terminal, never to mask an error. The summary returned
// alongside a mid-wait error is the freshest one Wait happened to fetch
// (the zero Summary on the event path, which carries no summaries).
func (m *JMC) Wait(usite core.Usite, job core.JobID, interval time.Duration, sleep func(time.Duration), maxPolls int) (ajo.Summary, error) {
	ctx := context.Background()
	var last ajo.Summary
	cursor := uint64(0)
	legacy := false
	for i := 0; i < maxPolls; i++ {
		if !legacy {
			reply, err := fetchEvents(ctx, m.c, usite, protocol.SubscribeRequest{Job: job, Cursor: cursor})
			switch {
			case errors.Is(err, protocol.ErrV1Peer):
				legacy = true // the site cannot push events: poll status
			case err != nil:
				return last, err
			default:
				if reply.Cursor > cursor {
					cursor = reply.Cursor
				}
				for _, ev := range reply.Events {
					if ev.Terminal {
						return m.statusContext(ctx, usite, job)
					}
				}
			}
		}
		if legacy {
			s, err := m.statusContext(ctx, usite, job)
			if err != nil {
				return last, err
			}
			last = s
			if s.Status.Terminal() {
				return s, nil
			}
		}
		sleep(interval)
	}
	// Timed out. Fetch the freshest summary for the caller — and if this
	// final poll fails in transit, surface that error instead of masking it
	// behind ErrWaitTimeout.
	s, err := m.statusContext(ctx, usite, job)
	if err != nil {
		return last, err
	}
	if s.Status.Terminal() {
		return s, nil // the job finished during the last sleep
	}
	return s, fmt.Errorf("%w: %s after %d polls", ErrWaitTimeout, job, maxPolls)
}

// fetchEvents performs one non-waiting (unless req.WaitMs asks) subscription
// fetch — the shared engine under Wait, Session.Await, and Session.Watch.
func fetchEvents(ctx context.Context, c *protocol.Client, usite core.Usite, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	var reply protocol.EventsReply
	if err := c.CallContext(ctx, usite, protocol.MsgSubscribe, req, &reply); err != nil {
		return protocol.EventsReply{}, err
	}
	return reply, nil
}

// fetchSource builds the staging engine's chunk source over the owner fetch
// endpoint (MsgFetch): one ranged, idempotent read per call, each reply
// carrying the file's size and whole-file CRC.
func fetchSource(c *protocol.Client, usite core.Usite, job core.JobID, file string) staging.Source {
	return func(ctx context.Context, offset, limit int64) (staging.Chunk, error) {
		var reply protocol.TransferReply
		err := c.CallContext(ctx, usite, protocol.MsgFetch, protocol.FetchRequest{
			Job: job, File: file, Offset: offset, Limit: limit,
		}, &reply)
		if err != nil {
			return staging.Chunk{}, err
		}
		if !reply.Found {
			return staging.Chunk{}, fmt.Errorf("%w: job %s at %s has no file %q", staging.ErrNotFound, job, usite, file)
		}
		return staging.Chunk{Data: reply.Data, Size: reply.Size, CRC: reply.CRC}, nil
	}
}

// fetchOptions applies the v1 fallback to a transfer configuration: against
// a site that negotiated down to protocol v1 the windowed engine degrades to
// the sequential one-chunk-in-flight loop of the original implementation
// (the ranged MsgFetch itself exists since v1).
func fetchOptions(c *protocol.Client, usite core.Usite, opt staging.Options) staging.Options {
	if c.SiteVersion(usite) < 2 {
		opt.Window = 1
	}
	return opt
}

// FetchFile downloads a file from the job's Uspace back to the user's
// workstation — the §5.6 on-request result transfer ("the current
// implementation sends data back to the workstation only on user request
// while the user is working with the JMC"). It runs on the windowed parallel
// streaming engine (package staging): chunks are fetched with readahead,
// verified incrementally against the whole-file checksum, and a file that
// mutates mid-transfer surfaces as an error. Session.Download streams the
// same engine to an io.Writer without materialising the file in memory.
func (m *JMC) FetchFile(usite core.Usite, job core.JobID, file string) ([]byte, error) {
	return m.fetchFileContext(context.Background(), usite, job, file)
}

func (m *JMC) fetchFileContext(ctx context.Context, usite core.Usite, job core.JobID, file string) ([]byte, error) {
	var buf bytes.Buffer
	opt := fetchOptions(m.c, usite, m.Transfer)
	if _, err := staging.Download(ctx, fetchSource(m.c, usite, job, file), &buf, opt); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TaskOutput extracts a task's standard output and error from an outcome
// tree ("the standard output and error files can be listed and/or saved for
// tasks", §5.7).
func TaskOutput(root *ajo.Outcome, id ajo.ActionID) (stdout, stderr []byte, err error) {
	o, ok := root.Find(id)
	if !ok {
		return nil, nil, fmt.Errorf("client: no outcome for action %s", id)
	}
	return o.Stdout, o.Stderr, nil
}

// Display renders the JMC's job display: one line per action with the
// status icon colour, indented by job-group depth — the text equivalent of
// the coloured-icon tree of §5.7.
func Display(root *ajo.Outcome) string {
	var b strings.Builder
	renderOutcome(&b, root, 0)
	return b.String()
}

func renderOutcome(b *strings.Builder, o *ajo.Outcome, depth int) {
	icon := statusIcon(o.Status)
	fmt.Fprintf(b, "%s%s [%s/%s] %s", strings.Repeat("  ", depth), icon, o.Status, o.Status.Colour(), o.Name)
	if o.Reason != "" {
		fmt.Fprintf(b, " (%s)", o.Reason)
	}
	b.WriteByte('\n')
	children := append([]*ajo.Outcome(nil), o.Children...)
	sort.SliceStable(children, func(i, j int) bool { return children[i].Action < children[j].Action })
	for _, c := range children {
		renderOutcome(b, c, depth+1)
	}
}

func statusIcon(s ajo.Status) string {
	switch s {
	case ajo.StatusSuccessful:
		return "●"
	case ajo.StatusFailed, ajo.StatusNotDone, ajo.StatusAborted:
		return "✖"
	case ajo.StatusRunning, ajo.StatusQueued:
		return "◐"
	default:
		return "○"
	}
}
