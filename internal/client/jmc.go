package client

import (
	"errors"
	"fmt"
	"hash/crc64"
	"sort"
	"strings"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
)

// JMC is the job monitor controller: it "shows the job status of the user's
// UNICORE jobs ... the icons are colored to reflect the job status in a
// seamless way" and lets the user list/save task output and control jobs
// (§5.7).
type JMC struct {
	c *protocol.Client
}

// NewJMC wraps a protocol client.
func NewJMC(c *protocol.Client) *JMC {
	return &JMC{c: c}
}

// List returns the caller's jobs at a Usite, newest first.
func (m *JMC) List(usite core.Usite) ([]protocol.JobInfo, error) {
	var reply protocol.ListReply
	if err := m.c.Call(usite, protocol.MsgList, protocol.ListRequest{}, &reply); err != nil {
		return nil, err
	}
	return reply.Jobs, nil
}

// Status polls the compact summary of one job.
func (m *JMC) Status(usite core.Usite, job core.JobID) (ajo.Summary, error) {
	var reply protocol.PollReply
	if err := m.c.Call(usite, protocol.MsgPoll, protocol.PollRequest{Job: job}, &reply); err != nil {
		return ajo.Summary{}, err
	}
	if !reply.Found {
		return ajo.Summary{}, fmt.Errorf("client: no job %s at %s", job, usite)
	}
	return reply.Summary, nil
}

// Outcome retrieves the full outcome tree of one job.
func (m *JMC) Outcome(usite core.Usite, job core.JobID) (*ajo.Outcome, error) {
	var reply protocol.OutcomeReply
	if err := m.c.Call(usite, protocol.MsgOutcome, protocol.OutcomeRequest{Job: job}, &reply); err != nil {
		return nil, err
	}
	if !reply.Found {
		return nil, fmt.Errorf("client: no job %s at %s", job, usite)
	}
	return ajo.UnmarshalOutcome(reply.Outcome)
}

// control sends one job-control operation.
func (m *JMC) control(usite core.Usite, job core.JobID, op ajo.ControlOp) error {
	var reply protocol.ControlReply
	if err := m.c.Call(usite, protocol.MsgControl, protocol.ControlRequest{Job: job, Op: op}, &reply); err != nil {
		return err
	}
	if !reply.OK {
		return fmt.Errorf("client: %s %s: %s", op, job, reply.Reason)
	}
	return nil
}

// Abort cancels a job and everything in flight for it.
func (m *JMC) Abort(usite core.Usite, job core.JobID) error {
	return m.control(usite, job, ajo.OpAbort)
}

// Hold pauses dispatching of a job's not-yet-started actions.
func (m *JMC) Hold(usite core.Usite, job core.JobID) error {
	return m.control(usite, job, ajo.OpHold)
}

// Resume releases a held job.
func (m *JMC) Resume(usite core.Usite, job core.JobID) error {
	return m.control(usite, job, ajo.OpResume)
}

// ErrWaitTimeout reports that Wait gave up before the job became terminal.
var ErrWaitTimeout = errors.New("client: job did not reach a terminal status in time")

// Wait polls until the job is terminal, sleeping between polls with the
// given function (time.Sleep in the CLIs; a virtual-clock advance in
// simulations). maxPolls bounds the wait.
func (m *JMC) Wait(usite core.Usite, job core.JobID, interval time.Duration, sleep func(time.Duration), maxPolls int) (ajo.Summary, error) {
	var last ajo.Summary
	for i := 0; i < maxPolls; i++ {
		s, err := m.Status(usite, job)
		if err != nil {
			return last, err
		}
		last = s
		if s.Status.Terminal() {
			return s, nil
		}
		sleep(interval)
	}
	return last, fmt.Errorf("%w: %s after %d polls", ErrWaitTimeout, job, maxPolls)
}

// fetchChunk bounds one workstation download chunk.
const fetchChunk = 256 << 10

var crcTable = crc64.MakeTable(crc64.ECMA)

// FetchFile downloads a file from the job's Uspace back to the user's
// workstation — the §5.6 on-request result transfer ("the current
// implementation sends data back to the workstation only on user request
// while the user is working with the JMC"). Large files arrive in chunks
// and the whole-file checksum is verified.
func (m *JMC) FetchFile(usite core.Usite, job core.JobID, file string) ([]byte, error) {
	var buf []byte
	offset := int64(0)
	for {
		var reply protocol.TransferReply
		err := m.c.Call(usite, protocol.MsgFetch, protocol.FetchRequest{
			Job: job, File: file, Offset: offset, Limit: fetchChunk,
		}, &reply)
		if err != nil {
			return nil, err
		}
		if !reply.Found {
			return nil, fmt.Errorf("client: job %s at %s has no file %q", job, usite, file)
		}
		buf = append(buf, reply.Data...)
		offset += int64(len(reply.Data))
		if offset >= reply.Size || len(reply.Data) == 0 {
			if crc64.Checksum(buf, crcTable) != reply.CRC {
				return nil, fmt.Errorf("client: checksum mismatch fetching %q from %s", file, usite)
			}
			return buf, nil
		}
	}
}

// TaskOutput extracts a task's standard output and error from an outcome
// tree ("the standard output and error files can be listed and/or saved for
// tasks", §5.7).
func TaskOutput(root *ajo.Outcome, id ajo.ActionID) (stdout, stderr []byte, err error) {
	o, ok := root.Find(id)
	if !ok {
		return nil, nil, fmt.Errorf("client: no outcome for action %s", id)
	}
	return o.Stdout, o.Stderr, nil
}

// Display renders the JMC's job display: one line per action with the
// status icon colour, indented by job-group depth — the text equivalent of
// the coloured-icon tree of §5.7.
func Display(root *ajo.Outcome) string {
	var b strings.Builder
	renderOutcome(&b, root, 0)
	return b.String()
}

func renderOutcome(b *strings.Builder, o *ajo.Outcome, depth int) {
	icon := statusIcon(o.Status)
	fmt.Fprintf(b, "%s%s [%s/%s] %s", strings.Repeat("  ", depth), icon, o.Status, o.Status.Colour(), o.Name)
	if o.Reason != "" {
		fmt.Fprintf(b, " (%s)", o.Reason)
	}
	b.WriteByte('\n')
	children := append([]*ajo.Outcome(nil), o.Children...)
	sort.SliceStable(children, func(i, j int) bool { return children[i].Action < children[j].Action })
	for _, c := range children {
		renderOutcome(b, c, depth+1)
	}
}

func statusIcon(s ajo.Status) string {
	switch s {
	case ajo.StatusSuccessful:
		return "●"
	case ajo.StatusFailed, ajo.StatusNotDone, ajo.StatusAborted:
		return "✖"
	case ajo.StatusRunning, ajo.StatusQueued:
		return "◐"
	default:
		return "○"
	}
}
