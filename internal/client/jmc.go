package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/staging"
)

// JMC is the job monitor controller of the original user tier: it "shows the
// job status of the user's UNICORE jobs ... the icons are colored to reflect
// the job status in a seamless way" and lets the user list/save task output
// and control jobs (§5.7).
//
// Deprecated: JMC survives as the Wait compatibility wrapper. Everything else
// lives on Session — the context-aware surface with server-push event streams
// — and the remaining JMC methods are thin delegates kept so existing callers
// compile. New code should open a Session (unicore.Dial or
// Deployment.Session) and use it directly.
type JMC struct {
	c *protocol.Client

	// Transfer tunes the chunked download engine under FetchFile (zero value
	// = package staging defaults). Set it before first use.
	Transfer staging.Options
}

// NewJMC wraps a protocol client.
//
// Deprecated: use NewSession (or unicore.Dial), which carries the same
// monitoring and control surface with context support.
func NewJMC(c *protocol.Client) *JMC {
	return &JMC{c: c}
}

// List returns the caller's jobs at a Usite, newest first.
//
// Deprecated: use Session.List.
func (m *JMC) List(usite core.Usite) ([]protocol.JobInfo, error) {
	return listJobs(context.Background(), m.c, usite)
}

// Status polls the compact summary of one job.
//
// Deprecated: use Session.Status.
func (m *JMC) Status(usite core.Usite, job core.JobID) (ajo.Summary, error) {
	return pollStatus(context.Background(), m.c, usite, job)
}

// Outcome retrieves the full outcome tree of one job.
//
// Deprecated: use Session.Outcome.
func (m *JMC) Outcome(usite core.Usite, job core.JobID) (*ajo.Outcome, error) {
	return fetchOutcome(context.Background(), m.c, usite, job)
}

// Abort cancels a job and everything in flight for it.
//
// Deprecated: use Session.Abort.
func (m *JMC) Abort(usite core.Usite, job core.JobID) error {
	return controlJob(context.Background(), m.c, usite, job, ajo.OpAbort)
}

// Hold pauses dispatching of a job's not-yet-started actions.
//
// Deprecated: use Session.Hold.
func (m *JMC) Hold(usite core.Usite, job core.JobID) error {
	return controlJob(context.Background(), m.c, usite, job, ajo.OpHold)
}

// Resume releases a held job.
//
// Deprecated: use Session.Resume.
func (m *JMC) Resume(usite core.Usite, job core.JobID) error {
	return controlJob(context.Background(), m.c, usite, job, ajo.OpResume)
}

// FetchFile downloads a file from the job's Uspace back to the user's
// workstation — the §5.6 on-request result transfer.
//
// Deprecated: use Session.FetchFile (whole file in memory) or
// Session.Download (streaming).
func (m *JMC) FetchFile(usite core.Usite, job core.JobID, file string) ([]byte, error) {
	return fetchWholeFile(context.Background(), m.c, usite, job, file, m.Transfer)
}

// ErrWaitTimeout reports that Wait gave up before the job became terminal.
var ErrWaitTimeout = errors.New("client: job did not reach a terminal status in time")

// Wait blocks until the job is terminal, pacing itself with sleep(interval)
// between rounds and giving up after maxPolls rounds (sleep is time.Sleep in
// the CLIs; a virtual-clock advance in simulations).
//
// Deprecated: Wait is the polling predecessor of Session.Await, kept as a
// thin interval-paced wrapper over the same event-stream engine: against a
// protocol-v2 site each round is one cursor fetch of the job's event stream,
// and against a v1 site it falls back to status polling. New code should use
// Session.Await (one long-poll round trip instead of one request per
// interval) or Session.Watch.
//
// A transport failure mid-wait is surfaced immediately — including on the
// final round: the timeout error is returned only when the job was genuinely
// observed non-terminal, never to mask an error. The summary returned
// alongside a mid-wait error is the freshest one Wait happened to fetch
// (the zero Summary on the event path, which carries no summaries).
func (m *JMC) Wait(usite core.Usite, job core.JobID, interval time.Duration, sleep func(time.Duration), maxPolls int) (ajo.Summary, error) {
	ctx := context.Background()
	var last ajo.Summary
	cursor := uint64(0)
	legacy := false
	for i := 0; i < maxPolls; i++ {
		if !legacy {
			reply, err := fetchEvents(ctx, m.c, usite, protocol.SubscribeRequest{Job: job, Cursor: cursor})
			switch {
			case errors.Is(err, protocol.ErrV1Peer):
				legacy = true // the site cannot push events: poll status
			case err != nil:
				return last, err
			default:
				if reply.Cursor > cursor {
					cursor = reply.Cursor
				}
				for _, ev := range reply.Events {
					if ev.Terminal {
						return pollStatus(ctx, m.c, usite, job)
					}
				}
			}
		}
		if legacy {
			s, err := pollStatus(ctx, m.c, usite, job)
			if err != nil {
				return last, err
			}
			last = s
			if s.Status.Terminal() {
				return s, nil
			}
		}
		sleep(interval)
	}
	// Timed out. Fetch the freshest summary for the caller — and if this
	// final poll fails in transit, surface that error instead of masking it
	// behind ErrWaitTimeout.
	s, err := pollStatus(ctx, m.c, usite, job)
	if err != nil {
		return last, err
	}
	if s.Status.Terminal() {
		return s, nil // the job finished during the last sleep
	}
	return s, fmt.Errorf("%w: %s after %d polls", ErrWaitTimeout, job, maxPolls)
}

// TaskOutput extracts a task's standard output and error from an outcome
// tree ("the standard output and error files can be listed and/or saved for
// tasks", §5.7).
func TaskOutput(root *ajo.Outcome, id ajo.ActionID) (stdout, stderr []byte, err error) {
	o, ok := root.Find(id)
	if !ok {
		return nil, nil, fmt.Errorf("client: no outcome for action %s", id)
	}
	return o.Stdout, o.Stderr, nil
}

// Display renders the JMC's job display: one line per action with the
// status icon colour, indented by job-group depth — the text equivalent of
// the coloured-icon tree of §5.7.
func Display(root *ajo.Outcome) string {
	var b strings.Builder
	renderOutcome(&b, root, 0)
	return b.String()
}

func renderOutcome(b *strings.Builder, o *ajo.Outcome, depth int) {
	icon := statusIcon(o.Status)
	fmt.Fprintf(b, "%s%s [%s/%s] %s", strings.Repeat("  ", depth), icon, o.Status, o.Status.Colour(), o.Name)
	if o.Reason != "" {
		fmt.Fprintf(b, " (%s)", o.Reason)
	}
	b.WriteByte('\n')
	children := append([]*ajo.Outcome(nil), o.Children...)
	sort.SliceStable(children, func(i, j int) bool { return children[i].Action < children[j].Action })
	for _, c := range children {
		renderOutcome(b, c, depth+1)
	}
}

func statusIcon(s ajo.Status) string {
	switch s {
	case ajo.StatusSuccessful:
		return "●"
	case ajo.StatusFailed, ajo.StatusNotDone, ajo.StatusAborted:
		return "✖"
	case ajo.StatusRunning, ajo.StatusQueued:
		return "◐"
	default:
		return "○"
	}
}
