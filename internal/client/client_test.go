package client

import (
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/gateway"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// rig is a one-site deployment for client tests.
type rig struct {
	clock *sim.VirtualClock
	ca    *pki.Authority
	gw    *gateway.Gateway
	net   *protocol.InProc
	reg   *protocol.Registry
	user  *pki.Credential
	jpa   *JPA
	jmc   *JMC
	c     *protocol.Client
	njs   *njs.NJS
	users *uudb.DB
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := sim.NewVirtualClock()
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	srv, err := ca.IssueServer("gateway.lrz", "gw.lrz")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	user, err := ca.IssueUser("Clara Client", "LRZ")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	users := uudb.New("LRZ", clock)
	users.AddUser(user.DN(), "clara@lrz.de")
	if err := users.AddMapping(user.DN(), "VPP", uudb.Login{UID: "clara"}); err != nil {
		t.Fatalf("AddMapping: %v", err)
	}
	n, err := njs.New(njs.Config{
		Usite:  "LRZ",
		Clock:  clock,
		Vsites: []njs.VsiteConfig{{Name: "VPP", Profile: machine.FujitsuVPP700(52)}},
	})
	if err != nil {
		t.Fatalf("njs.New: %v", err)
	}
	gw, err := gateway.New(gateway.Config{Usite: "LRZ", Cred: srv, CA: ca, Users: users, NJS: n})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	net := protocol.NewInProc()
	net.Register("gw.lrz", gw)
	reg := protocol.NewRegistry()
	reg.Add("LRZ", "https://gw.lrz")
	c := protocol.NewClient(net, user, ca, reg)
	return &rig{clock: clock, ca: ca, gw: gw, net: net, reg: reg, user: user, jpa: NewJPA(c), jmc: NewJMC(c), c: c, njs: n, users: users}
}

var vpp = core.Target{Usite: "LRZ", Vsite: "VPP"}

func TestBuilderScriptJob(t *testing.T) {
	b := NewJob("demo", vpp)
	s1 := b.Script("hello", "echo hello\n", resources.Request{Processors: 1, RunTime: time.Minute})
	s2 := b.Script("world", "echo world\n", resources.Request{Processors: 1, RunTime: time.Minute})
	b.After(s1, s2, "greeting.txt")
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if job.CountActions() != 3 { // the root job group counts too
		t.Fatalf("actions = %d, want 3", job.CountActions())
	}
	if len(job.Dependencies) != 1 || job.Dependencies[0].Files[0] != "greeting.txt" {
		t.Fatalf("dependencies = %+v", job.Dependencies)
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	b := NewJob("cycle", vpp)
	s1 := b.Script("a", "echo a\n", resources.Request{})
	s2 := b.Script("b", "echo b\n", resources.Request{})
	b.After(s1, s2).After(s2, s1)
	if _, err := b.Build(); err == nil {
		t.Fatal("cyclic job built successfully")
	}
}

func TestBuilderRejectsSelfNesting(t *testing.T) {
	b := NewJob("self", vpp)
	b.SubJob(b)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-nested job built successfully")
	}
}

func TestBuilderChain(t *testing.T) {
	b := NewJob("chain", vpp)
	ids := []ajo.ActionID{
		b.Script("a", "echo a\n", resources.Request{}),
		b.Script("b", "echo b\n", resources.Request{}),
		b.Script("c", "echo c\n", resources.Request{}),
	}
	b.Chain(ids...)
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(job.Dependencies) != 2 {
		t.Fatalf("dependencies = %d, want 2", len(job.Dependencies))
	}
}

func TestFetchResourcesAndValidate(t *testing.T) {
	r := newRig(t)
	pages, err := r.jpa.FetchResources("LRZ")
	if err != nil {
		t.Fatalf("FetchResources: %v", err)
	}
	if len(pages) != 1 || pages[0].Architecture != "Fujitsu VPP700" {
		t.Fatalf("pages = %+v", pages)
	}

	good, err := NewJob("fits", vpp).
		Project("gcs").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := r.jpa.Validate(good); err != nil {
		t.Fatalf("Validate(good): %v", err)
	}

	b := NewJob("too big", vpp)
	b.Script("huge", "echo x\n", resources.Request{Processors: 100000, RunTime: time.Minute})
	big, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := r.jpa.Validate(big); err == nil {
		t.Fatal("oversized job validated")
	}

	// A job for an unknown target cannot be validated.
	other, _ := NewJob("elsewhere", core.Target{Usite: "ZIB", Vsite: "T3E"}).Build()
	if err := r.jpa.Validate(other); err == nil {
		t.Fatal("job for unfetched target validated")
	}
}

func TestValidateCompilerAvailability(t *testing.T) {
	r := newRig(t)
	if _, err := r.jpa.FetchResources("LRZ"); err != nil {
		t.Fatalf("FetchResources: %v", err)
	}
	b := NewJob("compile", vpp)
	b.Compile("build", "f90", []string{"main.f90"}, "main.o", resources.Request{})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := r.jpa.Validate(job); err != nil {
		t.Fatalf("Validate(f90): %v — VPP700 page should list f90", err)
	}

	b2 := NewJob("cobol", vpp)
	b2.Compile("build", "cobol", []string{"main.cob"}, "main.o", resources.Request{})
	job2, _ := b2.Build()
	if err := r.jpa.Validate(job2); err == nil {
		t.Fatal("cobol compile validated on a Vsite without a cobol compiler")
	}
}

func TestSubmitWaitOutcome(t *testing.T) {
	r := newRig(t)
	b := NewJob("round trip", vpp)
	id1 := b.Script("produce", "echo 42 > answer.txt\n", resources.Request{Processors: 1, RunTime: time.Minute})
	id2 := b.Script("consume", "cat answer.txt\n", resources.Request{Processors: 1, RunTime: time.Minute})
	b.After(id1, id2, "answer.txt")
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	jid, err := r.jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.UserDN != r.c.DN() {
		t.Fatalf("Submit did not stamp the user DN: %q", job.UserDN)
	}

	// Drive the virtual clock between polls.
	sum, err := r.jmc.Wait("LRZ", jid, time.Second, func(d time.Duration) { r.clock.Advance(d) }, 10000)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s, want SUCCESSFUL", sum.Status)
	}

	o, err := r.jmc.Outcome("LRZ", jid)
	if err != nil {
		t.Fatalf("Outcome: %v", err)
	}
	stdout, _, err := TaskOutput(o, id2)
	if err != nil {
		t.Fatalf("TaskOutput: %v", err)
	}
	if !strings.Contains(string(stdout), "42") {
		t.Fatalf("consume stdout = %q, want the produced answer", stdout)
	}

	disp := Display(o)
	if !strings.Contains(disp, "green") || !strings.Contains(disp, "round trip") {
		t.Fatalf("display missing green icons or job name:\n%s", disp)
	}
}

func TestHoldResume(t *testing.T) {
	r := newRig(t)
	b := NewJob("held", vpp)
	b.Script("quick", "echo done\n", resources.Request{Processors: 1, RunTime: time.Minute})
	job, _ := b.Build()
	jid, err := r.jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := r.jmc.Hold("LRZ", jid); err != nil {
		t.Fatalf("Hold: %v", err)
	}
	if err := r.jmc.Resume("LRZ", jid); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	r.clock.RunUntilIdle(100000)
	sum, err := r.jmc.Status("LRZ", jid)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if sum.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s after resume, want SUCCESSFUL", sum.Status)
	}
	// Resuming a job that is not held is an error.
	if err := r.jmc.Resume("LRZ", jid); err == nil {
		t.Fatal("resume of a non-held job succeeded")
	}
}

func TestWaitTimesOut(t *testing.T) {
	r := newRig(t)
	b := NewJob("slow", vpp)
	b.Script("sleepy", "cpu 10h\n", resources.Request{Processors: 1, RunTime: 20 * time.Hour})
	job, _ := b.Build()
	jid, err := r.jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	_, err = r.jmc.Wait("LRZ", jid, time.Millisecond, func(d time.Duration) { r.clock.Advance(d) }, 3)
	if err == nil {
		t.Fatal("Wait returned before the job could have finished")
	}
}

func TestFetchAppletVerified(t *testing.T) {
	r := newRig(t)
	software, err := r.ca.IssueSoftware("UNICORE Consortium")
	if err != nil {
		t.Fatalf("IssueSoftware: %v", err)
	}
	applet, err := gateway.SignApplet(software, "jmc", "0.9", []byte("JMC payload"))
	if err != nil {
		t.Fatalf("SignApplet: %v", err)
	}
	if err := r.gw.InstallApplet(applet); err != nil {
		t.Fatalf("InstallApplet: %v", err)
	}
	got, err := FetchApplet(r.c, r.ca, "LRZ", "jmc")
	if err != nil {
		t.Fatalf("FetchApplet: %v", err)
	}
	if got.Version != "0.9" || got.Signer.CommonName() != "UNICORE Consortium" {
		t.Fatalf("applet = %+v", got)
	}
	if _, err := FetchApplet(r.c, r.ca, "LRZ", "jpa"); err == nil {
		t.Fatal("fetching a missing applet succeeded")
	}
}

func TestStatusOfUnknownJob(t *testing.T) {
	r := newRig(t)
	if _, err := r.jmc.Status("LRZ", "LRZ-999999"); err == nil {
		t.Fatal("status of unknown job succeeded")
	}
	if _, err := r.jmc.Outcome("LRZ", "LRZ-999999"); err == nil {
		t.Fatal("outcome of unknown job succeeded")
	}
}

func TestFetchFileToWorkstation(t *testing.T) {
	r := newRig(t)
	b := NewJob("fetch me", vpp)
	b.Script("produce", "write big.dat 300000\necho produced\n",
		resources.Request{Processors: 1, RunTime: time.Minute})
	job, _ := b.Build()
	jid, err := r.jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.clock.RunUntilIdle(100000)

	// The on-request §5.6 transfer back to the workstation, chunked.
	data, err := r.jmc.FetchFile("LRZ", jid, "big.dat")
	if err != nil {
		t.Fatalf("FetchFile: %v", err)
	}
	if len(data) != 300000 {
		t.Fatalf("fetched %d bytes, want 300000", len(data))
	}
	// Missing files are reported cleanly.
	if _, err := r.jmc.FetchFile("LRZ", jid, "ghost.dat"); err == nil {
		t.Fatal("fetching a missing file succeeded")
	}
}

func TestFetchFileRequiresOwnership(t *testing.T) {
	r := newRig(t)
	b := NewJob("private", vpp)
	b.Script("produce", "write secret.dat 64\n", resources.Request{Processors: 1, RunTime: time.Minute})
	job, _ := b.Build()
	jid, err := r.jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.clock.RunUntilIdle(100000)

	eve, err := r.ca.IssueUser("Eve", "Nowhere")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	reg := r.c.Registry()
	eveJMC := NewJMC(protocol.NewClient(r.net, eve, r.ca, reg))
	if _, err := eveJMC.FetchFile("LRZ", jid, "secret.dat"); err == nil {
		t.Fatal("eve fetched another user's job file")
	}
}
