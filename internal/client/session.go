package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/events"
	"unicore/internal/protocol"
	"unicore/internal/staging"
	"unicore/internal/telemetry"
)

// JobEvent is one server-push job lifecycle notification, exactly as the
// server logged it (package events defines the shape; protocol v2 carries
// it). Watch delivers these; Await consumes them internally.
type JobEvent = events.Event

// DefaultLongPoll is the default server-side hold per Watch/Await subscribe
// round. It is real (wall-clock) time: under a virtual-clock testbed the
// round returns as soon as the clock driver appends events, long before the
// hold expires.
const DefaultLongPoll = 30 * time.Second

// Session is the protocol-v2 client handle: one user, one Usite, one
// context-aware API. It unifies the JPA (job preparation, §5.4) and the JMC
// (job monitoring and control, §5.7) behind a single surface, and replaces
// interval polling with the server-push event stream — Await and Watch
// complete a job with O(1) subscribe round trips where JMC.Wait needed one
// poll per interval.
//
// Every method takes a context.Context; cancellation propagates through
// protocol.Client into the transport, so a cancelled Await releases the
// server-side long-poll immediately. A Session is safe for concurrent use.
type Session struct {
	c     *protocol.Client
	usite core.Usite
	jpa   *JPA
	jmc   *JMC

	// LongPoll is the server-side hold requested per subscribe round of
	// Watch/Await (default DefaultLongPoll). Set it before first use.
	LongPoll time.Duration

	// Transfer tunes the chunked transfer engines under Upload, Download,
	// DownloadTo, and FetchFile: chunk size, in-flight window, chunk retries
	// (zero value = package staging defaults). Set it before first use.
	Transfer staging.Options

	// traceMu guards traces, the jobID→trace index Submit fills so a
	// submitted job's distributed trace can be retrieved later (Trace).
	traceMu sync.Mutex
	traces  map[core.JobID]string
}

// NewSession opens a session for one Usite over a protocol client (the same
// client a JPA/JMC would use — unicore.Dial is the facade form).
func NewSession(c *protocol.Client, usite core.Usite) *Session {
	return &Session{c: c, usite: usite, jpa: NewJPA(c), jmc: NewJMC(c), LongPoll: DefaultLongPoll}
}

// Usite returns the site this session talks to.
func (s *Session) Usite() core.Usite { return s.usite }

// DN returns the user identity behind this session.
func (s *Session) DN() core.DN { return s.c.DN() }

// JPA returns the session's job preparation agent (resource pages,
// validation) for workflows the unified surface does not cover.
func (s *Session) JPA() *JPA { return s.jpa }

// JMC returns the session's job monitor controller (deprecated polling
// surface) for workflows the unified surface does not cover.
func (s *Session) JMC() *JMC { return s.jmc }

// Submit validates and consigns a job at this session's Usite. Each Submit
// runs under a distributed trace: unless the caller already put one in ctx
// (telemetry.WithTrace), a fresh trace ID is minted and carried in the v2
// envelope header, so every server-side hop of this admission — gateway
// dispatch, pool routing, NJS admission, journal sync — records a span under
// it. Trace returns the ID after the job is admitted; a v1 peer ignores the
// header and the submission proceeds untraced.
func (s *Session) Submit(ctx context.Context, job *ajo.AbstractJob) (core.JobID, error) {
	if job.Target.Usite != s.usite {
		return "", fmt.Errorf("client: job targets %s, session is bound to %s", job.Target.Usite, s.usite)
	}
	trace := telemetry.TraceFrom(ctx)
	if trace == "" {
		trace = telemetry.NewTraceID()
		ctx = telemetry.WithTrace(ctx, trace)
	}
	id, err := s.jpa.submitContext(ctx, job)
	if err == nil {
		s.traceMu.Lock()
		if s.traces == nil {
			s.traces = make(map[core.JobID]string)
		}
		s.traces[id] = trace
		s.traceMu.Unlock()
	}
	return id, err
}

// Trace returns the distributed trace ID a Submit through this session ran
// under, and whether the job was submitted here.
func (s *Session) Trace(job core.JobID) (string, bool) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	t, ok := s.traces[job]
	return t, ok
}

// Metrics scrapes the live telemetry of the session's Usite (protocol v2):
// the gateway's own registry plus the server tier's, per origin. With
// perReplica set the reply keeps one snapshot per replica instead of the
// site-wide merge; with spans set the per-request trace spans ride along.
// Against a site that negotiated down to protocol v1 it fails with
// protocol.ErrV1Peer.
func (s *Session) Metrics(ctx context.Context, perReplica, spans bool) ([]telemetry.Snapshot, error) {
	var reply protocol.MetricsReply
	req := protocol.MetricsRequest{PerReplica: perReplica, Spans: spans}
	if err := s.c.Call(ctx, s.usite, protocol.MsgMetrics, req, &reply); err != nil {
		return nil, err
	}
	return reply.Snapshots, nil
}

// Status polls the compact summary of one job.
func (s *Session) Status(ctx context.Context, job core.JobID) (ajo.Summary, error) {
	return pollStatus(ctx, s.c, s.usite, job)
}

// Outcome retrieves the full outcome tree of one job.
func (s *Session) Outcome(ctx context.Context, job core.JobID) (*ajo.Outcome, error) {
	return fetchOutcome(ctx, s.c, s.usite, job)
}

// List returns the caller's jobs at the session's Usite, newest first.
func (s *Session) List(ctx context.Context) ([]protocol.JobInfo, error) {
	return listJobs(ctx, s.c, s.usite)
}

// Abort cancels a job and everything in flight for it.
func (s *Session) Abort(ctx context.Context, job core.JobID) error {
	return controlJob(ctx, s.c, s.usite, job, ajo.OpAbort)
}

// Hold pauses dispatching of a job's not-yet-started actions.
func (s *Session) Hold(ctx context.Context, job core.JobID) error {
	return controlJob(ctx, s.c, s.usite, job, ajo.OpHold)
}

// Resume releases a held job.
func (s *Session) Resume(ctx context.Context, job core.JobID) error {
	return controlJob(ctx, s.c, s.usite, job, ajo.OpResume)
}

// FetchFile downloads a whole file from the job's Uspace into memory. For
// large results prefer Download, which streams without buffering the file.
func (s *Session) FetchFile(ctx context.Context, job core.JobID, file string) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := s.Download(ctx, job, file, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Download streams a file from the job's Uspace to w through the windowed
// parallel transfer engine (package staging): s.Transfer.Window ranged
// fetches stay in flight, bytes arrive at w strictly in order with no
// whole-file buffering, and the whole-file checksum is verified
// incrementally. Chunk-level retries ride out replica failover mid-transfer.
// On failure the returned progress resumes the download via ResumeDownload.
func (s *Session) Download(ctx context.Context, job core.JobID, file string, w io.Writer) (staging.Progress, error) {
	opt := fetchOptions(s.c, s.usite, s.Transfer)
	return staging.Download(ctx, fetchSource(s.c, s.usite, job, file), w, opt)
}

// ResumeDownload continues a failed Download from its returned progress
// (against the same writer): nothing already delivered is refetched, and the
// whole-file checksum still covers every byte.
func (s *Session) ResumeDownload(ctx context.Context, job core.JobID, file string, w io.Writer, p staging.Progress) (staging.Progress, error) {
	opt := fetchOptions(s.c, s.usite, s.Transfer)
	return staging.Resume(ctx, fetchSource(s.c, s.usite, job, file), w, p, opt)
}

// DownloadTo streams a file from the job's Uspace into a local file
// (created or truncated), returning the byte count.
func (s *Session) DownloadTo(ctx context.Context, job core.JobID, file, localPath string) (int64, error) {
	f, err := os.Create(localPath)
	if err != nil {
		return 0, err
	}
	p, derr := s.Download(ctx, job, file, f)
	cerr := f.Close()
	if derr != nil {
		return p.Offset, derr
	}
	return p.Offset, cerr
}

// PutOpen begins a staged upload at the session's Usite (protocol v2, part
// of the staging.Putter surface; most callers want Upload).
func (s *Session) PutOpen(ctx context.Context, req protocol.PutOpenRequest) (protocol.PutOpenReply, error) {
	var reply protocol.PutOpenReply
	err := s.c.Call(ctx, s.usite, protocol.MsgPutOpen, req, &reply)
	return reply, err
}

// PutChunk delivers one chunk of a staged upload (idempotent re-send safe).
func (s *Session) PutChunk(ctx context.Context, req protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	var reply protocol.PutChunkReply
	err := s.c.Call(ctx, s.usite, protocol.MsgPutChunk, req, &reply)
	return reply, err
}

// PutCommit seals a staged upload after the server verified its CRC.
func (s *Session) PutCommit(ctx context.Context, req protocol.PutCommitRequest) (protocol.PutCommitReply, error) {
	var reply protocol.PutCommitReply
	err := s.c.Call(ctx, s.usite, protocol.MsgPutCommit, req, &reply)
	return reply, err
}

// Session implements the staging upload surface.
var _ staging.Putter = (*Session)(nil)

// Upload streams r into the spool area of a Vsite at this session's Usite
// and returns the committed transfer handle — the value to reference from an
// ImportTask (Builder.ImportStaged / ajo.ImportSource.Staged) so a bulk
// input travels in CRC-checked chunks ahead of the AJO instead of inline in
// the signed consign envelope. Against a site that negotiated down to
// protocol v1, Upload fails with protocol.ErrV1Peer — fall back to an inline
// import there.
func (s *Session) Upload(ctx context.Context, vsite core.Vsite, name string, r io.Reader) (string, error) {
	handle, _, err := staging.Upload(ctx, s, vsite, name, r, s.Transfer)
	return handle, err
}

// Events performs one raw subscription fetch (protocol v2): the buffered
// events past the request's cursor, long-polled server-side for up to
// req.WaitMs. Most callers want Watch or Await instead.
func (s *Session) Events(ctx context.Context, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	return fetchEvents(ctx, s.c, s.usite, req)
}

// longPollMs returns the per-round server hold in milliseconds.
func (s *Session) longPollMs() int64 {
	lp := s.LongPoll
	if lp <= 0 {
		lp = DefaultLongPoll
	}
	return lp.Milliseconds()
}

// Await blocks until the job is terminal and returns its final summary,
// consuming the server-push event stream: each round is one long-polled
// subscribe that the server holds until events arrive, so a job completes in
// O(1) round trips regardless of how long it runs — where the deprecated
// JMC.Wait burned one signed poll envelope per interval. A lost reply is
// recovered by re-subscribing at the same cursor (no gaps, no duplicates);
// cancelling ctx aborts the in-flight round immediately. Against a site that
// negotiated down to protocol v1, Await fails with protocol.ErrV1Peer — use
// the polling Wait there.
func (s *Session) Await(ctx context.Context, job core.JobID) (ajo.Summary, error) {
	cursor := uint64(0)
	for {
		if err := ctx.Err(); err != nil {
			return ajo.Summary{}, err
		}
		reply, err := s.Events(ctx, protocol.SubscribeRequest{
			Job: job, Cursor: cursor, WaitMs: s.longPollMs(),
		})
		if err != nil {
			return ajo.Summary{}, err
		}
		for _, ev := range reply.Events {
			if ev.Terminal {
				return s.Status(ctx, job)
			}
		}
		if reply.Cursor > cursor {
			cursor = reply.Cursor
		}
	}
}

// ErrWatchGap reports that a subscription cursor fell below the server's
// bounded event log — events were evicted before the watcher consumed them,
// so a gapless stream can no longer be delivered from that cursor. Resume
// with Session.Events at an explicit cursor to read the retained window.
var ErrWatchGap = errors.New("client: events evicted before the watch cursor; stream would be incomplete")

// Watch subscribes to one job's lifecycle events and delivers them in order
// on the returned channel — the server-push replacement for polling the JMC
// status display. The first fetch runs synchronously, so an unknown job, an
// authorization failure, or an already-evicted stream head (ErrWatchGap)
// surfaces as an error instead of a silently closed channel.
//
// Against a protocol-v3 site the watch rides the persistent stream: one
// subscription frame, then server-pushed event batches with no per-batch
// round trip. A site without a stream path (older protocol, a front end that
// cannot upgrade) or a stream that dies mid-watch falls back to the
// long-polled subscribe loop at the same cursor — the handover loses and
// duplicates nothing.
//
// The channel is closed after the job's terminal event has been delivered.
// A closure whose last delivered event is not terminal means the stream
// ended early: ctx was cancelled, or the subscription failed after its
// retries (transient failures — a replica failing over, replies lost in
// transit — are retried at the same cursor, which the idempotent fetch
// makes safe). Consumers that must distinguish completion from truncation
// check the last event's Terminal flag.
func (s *Session) Watch(ctx context.Context, job core.JobID) (<-chan JobEvent, error) {
	first, err := s.Events(ctx, protocol.SubscribeRequest{Job: job})
	if err != nil {
		return nil, err
	}
	if first.Gap {
		return nil, fmt.Errorf("%w (job %s)", ErrWatchGap, job)
	}
	out := make(chan JobEvent, defaultWatchBuffer)
	go func() {
		defer close(out)
		cursor := uint64(0)
		deliver := func(reply protocol.EventsReply) (done bool) {
			for _, ev := range reply.Events {
				select {
				case out <- ev:
				case <-ctx.Done():
					return true
				}
				if ev.Terminal {
					return true
				}
			}
			if reply.Cursor > cursor {
				cursor = reply.Cursor
			}
			return false
		}
		if deliver(first) {
			return
		}
		if s.watchPush(ctx, job, cursor, deliver) {
			return
		}
		fails := 0
		for {
			if ctx.Err() != nil {
				return
			}
			reply, err := s.Events(ctx, protocol.SubscribeRequest{
				Job: job, Cursor: cursor, WaitMs: s.longPollMs(),
			})
			switch {
			case err != nil && ctx.Err() != nil:
				return
			case errors.Is(err, protocol.ErrV1Peer):
				return // permanent: the site cannot push events
			case err != nil:
				// Transient (owning replica failing over, reply lost beyond
				// the client's retries): back off and re-subscribe at the
				// same cursor — the fetch is idempotent, so recovery loses
				// and duplicates nothing.
				fails++
				if fails > watchMaxFailures {
					return
				}
				select {
				case <-time.After(watchRetryBackoff * time.Duration(fails)):
				case <-ctx.Done():
					return
				}
				continue
			case reply.Gap:
				return // fell behind the bounded log: truncation, end early
			}
			fails = 0
			if deliver(reply) {
				return
			}
		}
	}()
	return out, nil
}

// watchPush runs the push half of Watch: one stream subscription starting at
// cursor, batches delivered as the server emits them. It returns true when
// the watch is finished (terminal event delivered, ctx cancelled, or the
// stream reported a gap) and false when the caller should fall back to the
// long-poll loop — no stream path at this site, or the persistent connection
// died mid-watch. deliver advances the shared cursor, so the fallback resumes
// exactly where the push left off.
func (s *Session) watchPush(ctx context.Context, job core.JobID, cursor uint64, deliver func(protocol.EventsReply) bool) (done bool) {
	ch, stop, err := s.c.SubscribeStream(ctx, s.usite, protocol.SubscribeRequest{
		Job: job, Cursor: cursor, WaitMs: s.longPollMs(),
	})
	if err != nil {
		return false // no v3 stream here: long-poll instead
	}
	defer stop()
	for {
		select {
		case reply, ok := <-ch:
			if !ok {
				return false // stream died: resume by long-polling the cursor
			}
			if reply.Gap {
				return true // fell behind the bounded log: truncation
			}
			if deliver(reply) {
				return true
			}
		case <-ctx.Done():
			return true
		}
	}
}

// defaultWatchBuffer decouples Watch delivery from slow consumers for small
// bursts (a coalesced batch) without unbounded buffering.
const defaultWatchBuffer = 16

// watchMaxFailures bounds consecutive failed subscribe rounds before a
// Watch gives up; watchRetryBackoff spaces the retries (real time — the
// failures being ridden out are transport- and failover-level).
const (
	watchMaxFailures  = 5
	watchRetryBackoff = 200 * time.Millisecond
)

// The monitoring and control cores, shared by Session (the primary surface)
// and the deprecated JMC wrappers.

// listJobs fetches the caller's jobs at a Usite, newest first.
func listJobs(ctx context.Context, c *protocol.Client, usite core.Usite) ([]protocol.JobInfo, error) {
	var reply protocol.ListReply
	if err := c.Call(ctx, usite, protocol.MsgList, protocol.ListRequest{}, &reply); err != nil {
		return nil, err
	}
	return reply.Jobs, nil
}

// pollStatus fetches the compact summary of one job.
func pollStatus(ctx context.Context, c *protocol.Client, usite core.Usite, job core.JobID) (ajo.Summary, error) {
	var reply protocol.PollReply
	if err := c.Call(ctx, usite, protocol.MsgPoll, protocol.PollRequest{Job: job}, &reply); err != nil {
		return ajo.Summary{}, err
	}
	if !reply.Found {
		return ajo.Summary{}, fmt.Errorf("client: no job %s at %s", job, usite)
	}
	return reply.Summary, nil
}

// fetchOutcome retrieves and decodes the full outcome tree of one job.
func fetchOutcome(ctx context.Context, c *protocol.Client, usite core.Usite, job core.JobID) (*ajo.Outcome, error) {
	var reply protocol.OutcomeReply
	if err := c.Call(ctx, usite, protocol.MsgOutcome, protocol.OutcomeRequest{Job: job}, &reply); err != nil {
		return nil, err
	}
	if !reply.Found {
		return nil, fmt.Errorf("client: no job %s at %s", job, usite)
	}
	return ajo.UnmarshalOutcome(reply.Outcome)
}

// controlJob sends one job-control operation (abort/hold/resume).
func controlJob(ctx context.Context, c *protocol.Client, usite core.Usite, job core.JobID, op ajo.ControlOp) error {
	var reply protocol.ControlReply
	if err := c.Call(ctx, usite, protocol.MsgControl, protocol.ControlRequest{Job: job, Op: op}, &reply); err != nil {
		return err
	}
	if !reply.OK {
		return fmt.Errorf("client: %s %s: %s", op, job, reply.Reason)
	}
	return nil
}

// fetchWholeFile materialises one Uspace file in memory through the windowed
// transfer engine.
func fetchWholeFile(ctx context.Context, c *protocol.Client, usite core.Usite, job core.JobID, file string, opt staging.Options) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := staging.Download(ctx, fetchSource(c, usite, job, file), &buf, fetchOptions(c, usite, opt)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// fetchEvents performs one non-waiting (unless req.WaitMs asks) subscription
// fetch — the shared engine under JMC.Wait, Session.Await, and the Watch
// long-poll fallback.
func fetchEvents(ctx context.Context, c *protocol.Client, usite core.Usite, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	var reply protocol.EventsReply
	if err := c.Call(ctx, usite, protocol.MsgSubscribe, req, &reply); err != nil {
		return protocol.EventsReply{}, err
	}
	return reply, nil
}

// fetchSource builds the staging engine's chunk source over the owner fetch
// endpoint (MsgFetch): one ranged, idempotent read per call, each reply
// carrying the file's size and whole-file CRC.
func fetchSource(c *protocol.Client, usite core.Usite, job core.JobID, file string) staging.Source {
	return func(ctx context.Context, offset, limit int64) (staging.Chunk, error) {
		var reply protocol.TransferReply
		err := c.Call(ctx, usite, protocol.MsgFetch, protocol.FetchRequest{
			Job: job, File: file, Offset: offset, Limit: limit,
		}, &reply)
		if err != nil {
			return staging.Chunk{}, err
		}
		if !reply.Found {
			return staging.Chunk{}, fmt.Errorf("%w: job %s at %s has no file %q", staging.ErrNotFound, job, usite, file)
		}
		return staging.Chunk{Data: reply.Data, Size: reply.Size, CRC: reply.CRC}, nil
	}
}

// fetchOptions applies the v1 fallback to a transfer configuration: against
// a site that negotiated down to protocol v1 the windowed engine degrades to
// the sequential one-chunk-in-flight loop of the original implementation
// (the ranged MsgFetch itself exists since v1).
func fetchOptions(c *protocol.Client, usite core.Usite, opt staging.Options) staging.Options {
	if c.SiteVersion(usite) < 2 {
		opt.Window = 1
	}
	return opt
}
