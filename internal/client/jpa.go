package client

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/resources"
)

// JPA is the job preparation agent: it fetches resource pages from the
// sites, validates jobs against them before submission (the "seamless"
// support of §5.4 — the GUI knows what the destination system can do), and
// consigns AJOs.
type JPA struct {
	c       *protocol.Client
	catalog *resources.Catalog
}

// NewJPA wraps a protocol client.
func NewJPA(c *protocol.Client) *JPA {
	return &JPA{c: c, catalog: resources.NewCatalog()}
}

// DN returns the user identity behind this JPA.
func (j *JPA) DN() core.DN { return j.c.DN() }

// Catalog exposes the resource pages fetched so far.
func (j *JPA) Catalog() *resources.Catalog { return j.catalog }

// FetchResources retrieves the Usite's resource pages (ASN.1, §5.4), adds
// them to the catalog, and returns them.
func (j *JPA) FetchResources(usite core.Usite) ([]*resources.Page, error) {
	var reply protocol.ResourcesReply
	if err := j.c.Call(context.Background(), usite, protocol.MsgResources, protocol.ResourcesRequest{}, &reply); err != nil {
		return nil, err
	}
	pages := make([]*resources.Page, 0, len(reply.PagesDER))
	for _, der := range reply.PagesDER {
		p, err := resources.UnmarshalASN1(der)
		if err != nil {
			return nil, fmt.Errorf("client: decoding resource page from %s: %w", usite, err)
		}
		pages = append(pages, p)
		j.catalog.Add(p)
	}
	return pages, nil
}

// Validate checks a job (recursively) against the fetched resource pages:
// every target must be known, every task's resources must fit the page, and
// compile tasks need the language's compiler on the destination system.
func (j *JPA) Validate(job *ajo.AbstractJob) error {
	page, ok := j.catalog.Get(job.Target)
	if !ok {
		return fmt.Errorf("client: no resource page for %s (fetch it first)", job.Target)
	}
	for _, a := range job.Actions {
		if sub, isSub := a.(*ajo.AbstractJob); isSub {
			if err := j.Validate(sub); err != nil {
				return fmt.Errorf("client: job group %s: %w", sub.ID(), err)
			}
			continue
		}
		if req, isTask := ajo.TaskResources(a); isTask {
			if err := page.Check(req); err != nil {
				return fmt.Errorf("client: task %s at %s: %w", a.ID(), job.Target, err)
			}
		}
		if c, isCompile := a.(*ajo.CompileTask); isCompile {
			if !page.HasSoftware(resources.KindCompiler, c.Language, "") {
				return fmt.Errorf("client: task %s: no %s compiler at %s", c.ID(), c.Language, job.Target)
			}
		}
	}
	return nil
}

// Submit validates and consigns a job, returning the UNICORE job ID assigned
// by the destination NJS. The AJO's user DN is stamped with the caller's
// certificate identity before sealing.
func (j *JPA) Submit(job *ajo.AbstractJob) (core.JobID, error) {
	return j.submitContext(context.Background(), job)
}

// submitContext is Submit under a context (Session.Submit's engine).
func (j *JPA) submitContext(ctx context.Context, job *ajo.AbstractJob) (core.JobID, error) {
	if err := job.Validate(); err != nil {
		return "", err
	}
	job.UserDN = j.c.DN()
	raw, err := ajo.Marshal(job)
	if err != nil {
		return "", err
	}
	var reply protocol.ConsignReply
	err = j.c.Call(ctx, job.Target.Usite, protocol.MsgConsign, protocol.ConsignRequest{
		ConsignID: newConsignID(),
		AJO:       raw,
	}, &reply)
	if err != nil {
		return "", err
	}
	if !reply.Accepted {
		return "", fmt.Errorf("client: %s refused the job: %s", job.Target.Usite, reply.Reason)
	}
	return reply.Job, nil
}

// consignIDReader is swapped by tests to simulate crypto/rand failure.
var consignIDReader = rand.Read

// consignIDFallback counts entropy-free tokens minted by this process.
var consignIDFallback atomic.Uint64

// newConsignID mints a random idempotency token for one submission attempt;
// retries of the same submission reuse it inside protocol.Client. If
// crypto/rand fails (the token only deduplicates retries, so aborting the
// submission would be worse), the fallback token is still unique per
// submission: a process-local atomic counter plus a wall-clock stamp. A
// constant fallback here would make two distinct submissions share an
// idempotency token, silently deduplicating the second as a "retry".
func newConsignID() string {
	var b [12]byte
	if _, err := consignIDReader(b[:]); err != nil {
		n := consignIDFallback.Add(1)
		return fmt.Sprintf("consign-%d-%d", time.Now().UnixNano(), n)
	}
	return hex.EncodeToString(b[:])
}

// VerifiedApplet is a gateway-served applet whose publisher signature has
// been checked against the CA — the user-side half of Netscape object
// signing (§5.2): only then is the software trusted.
type VerifiedApplet struct {
	Name    string
	Version string
	Payload []byte
	Signer  core.DN
}

// FetchApplet downloads an applet from a Usite and verifies its signature
// before returning it. Tampered or unsigned payloads are rejected.
func FetchApplet(c *protocol.Client, ca *pki.Authority, usite core.Usite, name string) (VerifiedApplet, error) {
	var reply protocol.AppletReply
	if err := c.Call(context.Background(), usite, protocol.MsgApplet, protocol.AppletRequest{Name: name}, &reply); err != nil {
		return VerifiedApplet{}, err
	}
	signer, err := ca.VerifySignature(reply.Payload, reply.Signature, pki.RoleSoftware)
	if err != nil {
		return VerifiedApplet{}, fmt.Errorf("client: applet %q from %s failed verification: %w", name, usite, err)
	}
	return VerifiedApplet{
		Name:    reply.Name,
		Version: reply.Version,
		Payload: reply.Payload,
		Signer:  signer,
	}, nil
}
