package client

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/staging"
	"unicore/internal/uudb"
)

// bigPattern returns n deterministic bytes.
func bigPattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*13 + i/257)
	}
	return out
}

// TestSessionStagedUploadRoundTrip drives the whole bulk path through the
// authenticated gateway: chunked upload into the spool, consign of an AJO
// whose ImportTask references the handle (no payload inline), batch run, and
// a windowed parallel download of the result.
func TestSessionStagedUploadRoundTrip(t *testing.T) {
	r := newRig(t)
	sess := NewSession(r.c, "LRZ")
	sess.Transfer = staging.Options{ChunkSize: 32 << 10, Window: 4}
	payload := bigPattern(300_000) // ~10 chunks

	handle, err := sess.Upload(context.Background(), "VPP", "in.dat", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}

	b := NewJob("staged", vpp)
	imp := b.ImportStaged("stage", handle, "in.dat")
	run := b.Script("copy", "cat in.dat > out.dat\n", resources.Request{Processors: 1, RunTime: time.Minute})
	b.After(imp, run)
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The consign envelope must not carry the payload: the AJO stays small.
	raw, err := ajo.Marshal(job)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(raw) >= len(payload)/2 {
		t.Fatalf("staged AJO serialises to %d bytes — payload travelled inline", len(raw))
	}
	id, err := sess.Submit(context.Background(), job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.clock.RunUntilIdle(1_000_000)
	sum, err := sess.Status(context.Background(), id)
	if err != nil || sum.Status != ajo.StatusSuccessful {
		t.Fatalf("job finished %s (%v)", sum.Status, err)
	}

	var got bytes.Buffer
	if _, err := sess.Download(context.Background(), id, "out.dat", &got); err != nil {
		t.Fatalf("Download: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("downloaded result differs from the staged input")
	}

	// The spool entry was consumed by the import; a sweep collects it.
	sp, ok := r.njs.StagingSpool("VPP")
	if !ok {
		t.Fatal("no spool for VPP")
	}
	info, ok := sp.Stat(handle)
	if !ok || !info.Consumed {
		t.Fatalf("spool entry after the run: %+v, ok %v; want consumed", info, ok)
	}
	if swept := r.njs.SweepStaging(time.Hour); swept != 1 {
		t.Fatalf("sweep removed %d entries, want 1", swept)
	}
}

// TestStagedHandleOfAnotherUserIsRefused: consigning an AJO that references
// someone else's staged upload must fail the import, not leak the bytes.
func TestStagedHandleOfAnotherUserIsRefused(t *testing.T) {
	r := newRig(t)
	sess := NewSession(r.c, "LRZ")
	handle, err := sess.Upload(context.Background(), "VPP", "secret.dat", bytes.NewReader([]byte("secret")))
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}

	// Map a second user so their consignment itself is admitted.
	mallory, err := r.ca.IssueUser("Mallory", "Evil Org")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	r.users.AddUser(mallory.DN(), "")
	if err := r.users.AddMapping(mallory.DN(), "VPP", uudb.Login{UID: "mallory"}); err != nil {
		t.Fatalf("mapping mallory: %v", err)
	}

	b := NewJob("steal", vpp)
	b.ImportStaged("grab", handle, "loot.dat")
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	msess := NewSession(protocol.NewClient(r.net, mallory, r.ca, r.reg), "LRZ")
	id, err := msess.Submit(context.Background(), job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.clock.RunUntilIdle(1_000_000)
	sum, err := msess.Status(context.Background(), id)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if sum.Status == ajo.StatusSuccessful {
		t.Fatal("a job consuming another user's staged upload succeeded")
	}
}

// mutatingTransport forwards to the in-process network and fires a hook
// right after the first response — between the first and second chunk of a
// windowed fetch.
type mutatingTransport struct {
	inner  http.RoundTripper
	mu     sync.Mutex
	calls  int
	mutate func()
}

func (m *mutatingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := m.inner.RoundTrip(req)
	m.mu.Lock()
	m.calls++
	fire := m.calls == 1 && m.mutate != nil
	m.mu.Unlock()
	if fire {
		m.mutate()
	}
	return resp, err
}

// TestFetchFileSurfacesMidTransferMutation is the client-level regression
// test for the seed fetch loop: a Uspace file rewritten between two chunks
// must surface as a checksum/mutation error through JMC.FetchFile — never
// loop, never return mixed bytes.
func TestFetchFileSurfacesMidTransferMutation(t *testing.T) {
	r := newRig(t)
	content := bigPattern(300_000)
	id := runProducerJob(t, r, content)

	vs, ok := r.njs.Vsite("VPP")
	if !ok {
		t.Fatal("no VPP vsite")
	}
	mt := &mutatingTransport{inner: r.net}
	mt.mutate = func() {
		changed := bigPattern(300_000)
		for i := range changed {
			changed[i] ^= 0xff
		}
		if err := vs.Space.WriteJobFile(id, "out.dat", changed); err != nil {
			t.Errorf("mutating out.dat: %v", err)
		}
	}
	jmc := NewJMC(protocol.NewClient(protocol.OverHTTP(mt), r.user, r.ca, r.reg))
	jmc.Transfer = staging.Options{ChunkSize: 64 << 10, Window: 2, Retries: -1}
	_, err := jmc.FetchFile("LRZ", id, "out.dat")
	if !errors.Is(err, staging.ErrMutated) && !errors.Is(err, staging.ErrChecksum) {
		t.Fatalf("fetch of a mutating file: err = %v, want ErrMutated/ErrChecksum", err)
	}
}

// runProducerJob runs a job writing content to out.dat and returns its ID.
func runProducerJob(t *testing.T, r *rig, content []byte) core.JobID {
	t.Helper()
	b := NewJob("producer", vpp)
	b.ImportBytes("stage", content, "out.dat")
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := r.jpa.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r.clock.RunUntilIdle(1_000_000)
	sum, err := r.jmc.Status("LRZ", id)
	if err != nil || sum.Status != ajo.StatusSuccessful {
		t.Fatalf("producer finished %s (%v)", sum.Status, err)
	}
	return id
}
