// Package client implements the UNICORE user tier: the Job Preparation
// Agent (JPA) that builds and submits abstract jobs, and the Job Monitor
// Controller (JMC) that tracks status, retrieves output, and controls jobs
// (paper §4.1, §5.7). In the paper both are signed Java applets running in a
// Web browser; here they are a library plus CLI front ends, and the applet
// trust chain is reproduced by FetchApplet.
package client

import (
	"errors"
	"fmt"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/resources"
)

// Builder assembles an AbstractJob the way the JPA's GUI does: tasks and
// job groups are added one by one, then wired with sequential dependencies
// optionally annotated with the files to hand over (§5.7: "each dependency
// can be augmented by the names of the files to be transferred from one to
// the other").
//
// Builder methods record errors instead of returning them so call sites read
// like the GUI workflow; Build reports everything at once.
type Builder struct {
	job  *ajo.AbstractJob
	errs []error
	seq  int
}

// NewJob starts a job (or job group) destined for target.
func NewJob(name string, target core.Target) *Builder {
	return &Builder{
		job: &ajo.AbstractJob{
			Header: ajo.Header{ActionID: ajo.NewID("job"), ActionName: name},
			Target: target,
		},
	}
}

// Project sets the user account group carried in the AJO.
func (b *Builder) Project(p string) *Builder {
	b.job.Project = p
	return b
}

// SiteSecurity attaches a site-specific security token (the smart-card/DCE
// material of §4.2).
func (b *Builder) SiteSecurity(key, value string) *Builder {
	if b.job.SiteSecurity == nil {
		b.job.SiteSecurity = make(map[string]string)
	}
	b.job.SiteSecurity[key] = value
	return b
}

func (b *Builder) nextID(prefix string) ajo.ActionID {
	b.seq++
	return ajo.ActionID(fmt.Sprintf("%s-%02d", prefix, b.seq))
}

func (b *Builder) add(a ajo.Action) ajo.ActionID {
	b.job.Actions = append(b.job.Actions, a)
	return a.ID()
}

// Script adds an ExecuteScriptTask — an existing batch application (§5.7).
func (b *Builder) Script(name, script string, req resources.Request) ajo.ActionID {
	return b.add(&ajo.ScriptTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: b.nextID("script"), ActionName: name},
			Resources: req,
		},
		Script: script,
	})
}

// Execute adds an ExecuteTask running an executable from the Uspace.
func (b *Builder) Execute(name, executable string, args []string, req resources.Request) ajo.ActionID {
	return b.add(&ajo.ExecuteTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: b.nextID("exec"), ActionName: name},
			Resources: req,
		},
		Executable: executable,
		Arguments:  args,
	})
}

// Command adds a UserTask with a raw command line.
func (b *Builder) Command(name, command string, req resources.Request) ajo.ActionID {
	return b.add(&ajo.UserTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: b.nextID("cmd"), ActionName: name},
			Resources: req,
		},
		Command: command,
	})
}

// Compile adds a CompileTask (F90 in the 1999 prototype).
func (b *Builder) Compile(name, language string, sources []string, output string, req resources.Request) ajo.ActionID {
	return b.add(&ajo.CompileTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: b.nextID("compile"), ActionName: name},
			Resources: req,
		},
		Language: language,
		Sources:  sources,
		Output:   output,
	})
}

// Link adds a LinkTask producing an executable from objects and libraries.
func (b *Builder) Link(name string, objects, libraries []string, output string, req resources.Request) ajo.ActionID {
	return b.add(&ajo.LinkTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: b.nextID("link"), ActionName: name},
			Resources: req,
		},
		Objects:   objects,
		Libraries: libraries,
		Output:    output,
	})
}

// ImportBytes stages workstation data (carried inline in the AJO, §5.6)
// into the job's Uspace.
func (b *Builder) ImportBytes(name string, data []byte, to string) ajo.ActionID {
	return b.add(&ajo.ImportTask{
		Header: ajo.Header{ActionID: b.nextID("import"), ActionName: name},
		Source: ajo.ImportSource{Inline: data},
		To:     to,
	})
}

// ImportStaged stages a committed staged upload (the transfer handle
// returned by Session.Upload) into the job's Uspace — the bulk path: the
// bytes travelled ahead of the AJO through the chunked protocol-v2 staging
// engine, so the consign envelope stays small.
func (b *Builder) ImportStaged(name, handle, to string) ajo.ActionID {
	return b.add(&ajo.ImportTask{
		Header: ajo.Header{ActionID: b.nextID("import"), ActionName: name},
		Source: ajo.ImportSource{Staged: handle},
		To:     to,
	})
}

// ImportXspace stages a file already in the Vsite's Xspace into the Uspace.
func (b *Builder) ImportXspace(name, xspacePath, to string) ajo.ActionID {
	return b.add(&ajo.ImportTask{
		Header: ajo.Header{ActionID: b.nextID("import"), ActionName: name},
		Source: ajo.ImportSource{XspacePath: xspacePath},
		To:     to,
	})
}

// Export copies a Uspace result to permanent Xspace storage.
func (b *Builder) Export(name, from, toXspace string) ajo.ActionID {
	return b.add(&ajo.ExportTask{
		Header:   ajo.Header{ActionID: b.nextID("export"), ActionName: name},
		From:     from,
		ToXspace: toXspace,
	})
}

// Transfer pulls files from a sibling action's Uspace (a sub-job, possibly
// at another Usite) into this job's Uspace.
func (b *Builder) Transfer(name string, fromAction ajo.ActionID, files ...string) ajo.ActionID {
	return b.add(&ajo.TransferTask{
		Header:     ajo.Header{ActionID: b.nextID("transfer"), ActionName: name},
		FromAction: fromAction,
		Files:      files,
	})
}

// SubJob nests another builder's job as a job group, typically destined for
// a different Vsite or Usite. The nested builder must not be reused.
func (b *Builder) SubJob(sub *Builder) ajo.ActionID {
	if sub == b {
		b.errs = append(b.errs, errors.New("client: job cannot nest itself"))
		return ""
	}
	b.errs = append(b.errs, sub.errs...)
	return b.add(sub.job)
}

// After declares that `after` runs only once `before` finished
// successfully; files names the data sets UNICORE guarantees to hand over.
func (b *Builder) After(before, after ajo.ActionID, files ...string) *Builder {
	b.job.Dependencies = append(b.job.Dependencies, ajo.Dependency{
		Before: before,
		After:  after,
		Files:  files,
	})
	return b
}

// Chain wires the given actions sequentially.
func (b *Builder) Chain(ids ...ajo.ActionID) *Builder {
	for i := 1; i < len(ids); i++ {
		b.After(ids[i-1], ids[i])
	}
	return b
}

// Build validates and returns the job.
func (b *Builder) Build() (*ajo.AbstractJob, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if err := b.job.Validate(); err != nil {
		return nil, err
	}
	return b.job, nil
}
