// Package codine implements the resource-management system of the batch
// tier. The UNICORE prototype embedded "the resource management system
// Codine provided by Genias Software GmbH as part of NJS" (paper §5.1); this
// package provides the equivalent operations — submit, status, hold,
// release, cancel — on top of a deterministic discrete-event core, plus the
// queue/slot accounting a site scheduler needs.
//
// Jobs execute through the shell interpreter against the Vsite's file
// system; the simulated CPU time a script consumes, divided by the machine's
// speed factor, becomes the job's wall time on the virtual clock. The
// scheduler is FCFS with optional EASY backfill (an ablation studied in
// bench BenchmarkAblation_Backfill).
package codine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"unicore/internal/machine"
	"unicore/internal/shell"
	"unicore/internal/sim"
	"unicore/internal/vfs"
)

// Errors returned by RMS operations.
var (
	ErrUnknownJob   = errors.New("codine: unknown job")
	ErrUnknownQueue = errors.New("codine: unknown queue")
	ErrBadState     = errors.New("codine: operation invalid in current state")
	ErrBadRequest   = errors.New("codine: malformed job specification")
	ErrOverCapacity = errors.New("codine: request exceeds queue capacity")
)

// JobID identifies a batch job within one RMS instance.
type JobID int64

// State is a batch job's lifecycle state.
type State int

const (
	StatePending State = iota
	StateHeld
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

var stateNames = [...]string{"PENDING", "HELD", "RUNNING", "DONE", "FAILED", "CANCELLED"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed || s == StateCancelled }

// Queue configures one batch queue.
type Queue struct {
	Name     string
	Slots    int           // concurrently usable PEs
	MaxTime  time.Duration // per-job wall limit
	MaxSlots int           // per-job slot limit (0 = Slots)
}

// JobSpec describes a batch job at submission.
type JobSpec struct {
	Name      string
	Owner     string // local uid (after gateway mapping)
	Project   string
	Queue     string
	Slots     int           // PEs requested
	TimeLimit time.Duration // requested wall limit
	Script    string        // batch script (incarnated by the NJS)
	Env       map[string]string
	WorkDir   string  // working directory (the job's Uspace)
	FS        *vfs.FS // the Vsite data space
	// Done, when set, is invoked exactly once when the job reaches a
	// terminal state. It runs on the clock's firing goroutine.
	Done func(JobID, Result)
}

// Result is the terminal record of a job.
type Result struct {
	State     State
	ExitCode  int
	Stdout    string
	Stderr    string
	Reason    string // failure reason (time limit, cancelled, script error)
	CPUTime   time.Duration
	WallTime  time.Duration
	QueueWait time.Duration
}

// Record is one accounting line (§6 mentions accounting as the basis for
// brokerage; the broker package consumes these).
type Record struct {
	Job      JobID
	Name     string
	Owner    string
	Project  string
	Queue    string
	Slots    int
	Submit   time.Time
	Start    time.Time
	End      time.Time
	CPUTime  time.Duration
	State    State
	ExitCode int
}

// EventType tags scheduler events.
type EventType string

const (
	EventSubmitted EventType = "submitted"
	EventStarted   EventType = "started"
	EventFinished  EventType = "finished"
	EventFailed    EventType = "failed"
	EventCancelled EventType = "cancelled"
	EventHeld      EventType = "held"
	EventReleased  EventType = "released"
)

// Event is a scheduler occurrence delivered to observers.
type Event struct {
	Type EventType
	Job  JobID
	Time time.Time
}

// job is the internal job record.
type job struct {
	id     JobID
	spec   JobSpec
	state  State
	submit time.Time
	start  time.Time
	end    time.Time
	result Result
	timer  sim.Timer // completion event when running
}

// Config configures an RMS instance.
type Config struct {
	Machine  machine.Profile
	Queues   []Queue
	Backfill bool
	// ExtraTools are merged over the machine toolchain for script runs
	// (site-specific utilities).
	ExtraTools map[string]shell.Tool
	// DispatchOverhead is added to every job's wall time (queue manager
	// latency). Defaults to 500ms.
	DispatchOverhead time.Duration
}

// RMS is one Vsite's batch subsystem.
type RMS struct {
	mu        sync.Mutex
	clock     sim.Scheduler
	cfg       Config
	queues    map[string]*queueState
	jobs      map[JobID]*job
	nextID    JobID
	records   []Record
	observers []func(Event)
}

type queueState struct {
	cfg     Queue
	used    int     // slots currently running
	pending []JobID // FIFO order
}

// New creates an RMS on the given clock. At least one queue is required;
// queue 0 is the default queue.
func New(clock sim.Scheduler, cfg Config) (*RMS, error) {
	if clock == nil {
		return nil, errors.New("codine: nil clock")
	}
	if len(cfg.Queues) == 0 {
		return nil, errors.New("codine: no queues configured")
	}
	if cfg.Machine.SpeedFactor <= 0 {
		return nil, fmt.Errorf("codine: machine %q has no speed factor", cfg.Machine.Name)
	}
	if cfg.DispatchOverhead == 0 {
		cfg.DispatchOverhead = 500 * time.Millisecond
	}
	r := &RMS{
		clock:  clock,
		cfg:    cfg,
		queues: make(map[string]*queueState, len(cfg.Queues)),
		jobs:   make(map[JobID]*job),
	}
	for _, q := range cfg.Queues {
		if q.Slots <= 0 {
			return nil, fmt.Errorf("codine: queue %q has no slots", q.Name)
		}
		if q.MaxSlots == 0 || q.MaxSlots > q.Slots {
			q.MaxSlots = q.Slots
		}
		if q.MaxTime == 0 {
			q.MaxTime = 24 * time.Hour
		}
		r.queues[q.Name] = &queueState{cfg: q}
	}
	return r, nil
}

// Machine returns the configured machine profile.
func (r *RMS) Machine() machine.Profile { return r.cfg.Machine }

// DefaultQueue returns the first configured queue's name.
func (r *RMS) DefaultQueue() string { return r.cfg.Queues[0].Name }

// Observe registers an event observer (called synchronously, in order).
func (r *RMS) Observe(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observers = append(r.observers, fn)
}

func (r *RMS) emitLocked(t EventType, id JobID) {
	ev := Event{Type: t, Job: id, Time: r.clock.Now()}
	obs := append([]func(Event){}, r.observers...)
	// Deliver outside the lock to let observers call back into the RMS.
	r.mu.Unlock()
	for _, fn := range obs {
		fn(ev)
	}
	r.mu.Lock()
}

// Submit enqueues a job, validating it against the queue limits — "jobs
// delivered through UNICORE are treated the same way any other batch job is
// treated" (§5.5).
func (r *RMS) Submit(spec JobSpec) (JobID, error) {
	if spec.Script == "" || spec.Owner == "" {
		return 0, fmt.Errorf("%w: missing script or owner", ErrBadRequest)
	}
	if spec.FS == nil {
		return 0, fmt.Errorf("%w: no file system", ErrBadRequest)
	}
	if spec.Slots <= 0 {
		spec.Slots = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if spec.Queue == "" {
		spec.Queue = r.cfg.Queues[0].Name
	}
	q, ok := r.queues[spec.Queue]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownQueue, spec.Queue)
	}
	if spec.Slots > q.cfg.MaxSlots {
		return 0, fmt.Errorf("%w: %d slots > queue max %d", ErrOverCapacity, spec.Slots, q.cfg.MaxSlots)
	}
	if spec.TimeLimit == 0 {
		spec.TimeLimit = q.cfg.MaxTime
	}
	if spec.TimeLimit > q.cfg.MaxTime {
		return 0, fmt.Errorf("%w: time limit %s > queue max %s", ErrOverCapacity, spec.TimeLimit, q.cfg.MaxTime)
	}
	r.nextID++
	id := r.nextID
	j := &job{id: id, spec: spec, state: StatePending, submit: r.clock.Now()}
	r.jobs[id] = j
	q.pending = append(q.pending, id)
	r.emitLocked(EventSubmitted, id)
	r.scheduleLocked()
	return id, nil
}

// Status returns the job's current state.
func (r *RMS) Status(id JobID) (State, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return j.state, nil
}

// Result returns the terminal result of a finished job.
func (r *RMS) Result(id JobID) (Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if !j.state.Terminal() {
		return Result{}, fmt.Errorf("%w: job %d is %s", ErrBadState, id, j.state)
	}
	return j.result, nil
}

// Hold prevents a pending job from being dispatched.
func (r *RMS) Hold(id JobID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if j.state != StatePending {
		return fmt.Errorf("%w: hold on %s job", ErrBadState, j.state)
	}
	j.state = StateHeld
	q := r.queues[j.spec.Queue]
	q.pending = removeID(q.pending, id)
	r.emitLocked(EventHeld, id)
	return nil
}

// Release returns a held job to the pending queue.
func (r *RMS) Release(id JobID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if j.state != StateHeld {
		return fmt.Errorf("%w: release on %s job", ErrBadState, j.state)
	}
	j.state = StatePending
	q := r.queues[j.spec.Queue]
	q.pending = append(q.pending, id)
	r.emitLocked(EventReleased, id)
	r.scheduleLocked()
	return nil
}

// Cancel terminates a pending, held, or running job.
func (r *RMS) Cancel(id JobID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	switch j.state {
	case StatePending, StateHeld:
		q := r.queues[j.spec.Queue]
		q.pending = removeID(q.pending, id)
	case StateRunning:
		if j.timer != nil {
			j.timer.Stop()
		}
		r.queues[j.spec.Queue].used -= j.spec.Slots
	default:
		return fmt.Errorf("%w: cancel on %s job", ErrBadState, j.state)
	}
	r.finishLocked(j, StateCancelled, Result{State: StateCancelled, Reason: "cancelled", ExitCode: -1})
	r.scheduleLocked()
	return nil
}

func removeID(ids []JobID, id JobID) []JobID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// scheduleLocked dispatches as many pending jobs as fit. FCFS per queue;
// with backfill enabled, jobs behind a blocked head may start when they
// cannot delay the head's earliest possible start (EASY backfill).
func (r *RMS) scheduleLocked() {
	names := make([]string, 0, len(r.queues))
	for n := range r.queues {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.scheduleQueueLocked(r.queues[n])
	}
}

func (r *RMS) scheduleQueueLocked(q *queueState) {
	for {
		progressed := false
		// Dispatch from the head while it fits.
		for len(q.pending) > 0 {
			head := r.jobs[q.pending[0]]
			if head.state != StatePending {
				q.pending = q.pending[1:]
				continue
			}
			if q.used+head.spec.Slots > q.cfg.Slots {
				break
			}
			q.pending = q.pending[1:]
			r.dispatchLocked(q, head)
			progressed = true
		}
		if !r.cfg.Backfill || len(q.pending) == 0 {
			if !progressed {
				return
			}
			continue
		}
		// EASY backfill: compute the shadow time at which the head could
		// start, then start any later job that fits now and finishes (by
		// its time limit) before the shadow time, or that fits beside the
		// head's reservation.
		head := r.jobs[q.pending[0]]
		shadow, spareAtShadow := r.shadowLocked(q, head)
		backfilled := false
		for i := 1; i < len(q.pending); i++ {
			cand := r.jobs[q.pending[i]]
			if cand.state != StatePending || q.used+cand.spec.Slots > q.cfg.Slots {
				continue
			}
			finishBy := r.clock.Now().Add(cand.spec.TimeLimit + r.cfg.DispatchOverhead)
			fitsWindow := !finishBy.After(shadow)
			fitsBeside := cand.spec.Slots <= spareAtShadow
			if fitsWindow || fitsBeside {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				r.dispatchLocked(q, cand)
				if fitsBeside && !fitsWindow {
					spareAtShadow -= cand.spec.Slots
				}
				backfilled = true
				break // rescan: used/pending changed
			}
		}
		if !backfilled && !progressed {
			return
		}
	}
}

// shadowLocked returns the earliest time enough slots free up for the head
// job, and the slots that would remain free at that time after the head
// starts.
func (r *RMS) shadowLocked(q *queueState, head *job) (time.Time, int) {
	type rel struct {
		at    time.Time
		slots int
	}
	var rels []rel
	for _, j := range r.jobs {
		if j.state == StateRunning && j.spec.Queue == q.cfg.Name {
			rels = append(rels, rel{j.start.Add(j.spec.TimeLimit + r.cfg.DispatchOverhead), j.spec.Slots})
		}
	}
	sort.Slice(rels, func(i, k int) bool { return rels[i].at.Before(rels[k].at) })
	free := q.cfg.Slots - q.used
	now := r.clock.Now()
	shadow := now
	for _, rl := range rels {
		if free >= head.spec.Slots {
			break
		}
		free += rl.slots
		shadow = rl.at
	}
	if free < head.spec.Slots {
		// Even with everything finished it never fits (guarded at submit,
		// but stay safe): place the shadow after the last release.
		if len(rels) > 0 {
			shadow = rels[len(rels)-1].at
		}
		return shadow, 0
	}
	return shadow, free - head.spec.Slots
}

// dispatchLocked starts a job: runs its script through the interpreter,
// derives the wall time, and schedules the completion event.
func (r *RMS) dispatchLocked(q *queueState, j *job) {
	j.state = StateRunning
	j.start = r.clock.Now()
	q.used += j.spec.Slots

	tools := make(map[string]shell.Tool)
	for k, v := range r.cfg.Machine.Tools() {
		tools[k] = v
	}
	for k, v := range r.cfg.ExtraTools {
		tools[k] = v
	}
	env := map[string]string{
		"USER":         j.spec.Owner,
		"QSUB_REQNAME": j.spec.Name,
		"JOB_ID":       fmt.Sprintf("%d", j.id),
		"QUEUE":        q.cfg.Name,
	}
	for k, v := range j.spec.Env {
		env[k] = v
	}
	ctx := &shell.Ctx{FS: j.spec.FS, Cwd: j.spec.WorkDir, Env: env, Tools: tools}
	sres := shell.Run(ctx, j.spec.Script)

	// Wall time: dispatch overhead plus simulated compute scaled by machine
	// speed. Parallel slots do not shorten the script's declared cpu time —
	// the cpu directives already describe the parallel section's duration.
	wall := r.cfg.DispatchOverhead + time.Duration(float64(sres.CPUTime)/r.cfg.Machine.SpeedFactor)
	timedOut := wall > j.spec.TimeLimit
	if timedOut {
		wall = j.spec.TimeLimit
	}

	res := Result{
		ExitCode:  sres.ExitCode,
		Stdout:    sres.Stdout,
		Stderr:    sres.Stderr,
		CPUTime:   sres.CPUTime,
		WallTime:  wall,
		QueueWait: j.start.Sub(j.submit),
	}
	switch {
	case timedOut:
		res.State = StateFailed
		res.Reason = "wall clock limit exceeded"
		res.ExitCode = -1
	case sres.ExitCode != 0:
		res.State = StateFailed
		res.Reason = fmt.Sprintf("script exited with code %d", sres.ExitCode)
	default:
		res.State = StateDone
	}

	r.emitLocked(EventStarted, j.id)
	id := j.id
	j.timer = r.clock.AfterFunc(wall, func() { r.complete(id, res) })
}

// complete finalises a running job (fired from the clock).
func (r *RMS) complete(id JobID, res Result) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok || j.state != StateRunning {
		r.mu.Unlock()
		return
	}
	r.queues[j.spec.Queue].used -= j.spec.Slots
	r.finishLocked(j, res.State, res)
	r.scheduleLocked()
	r.mu.Unlock()
}

// finishLocked records the terminal state, accounting, events, and callback.
func (r *RMS) finishLocked(j *job, st State, res Result) {
	j.state = st
	j.end = r.clock.Now()
	j.result = res
	r.records = append(r.records, Record{
		Job: j.id, Name: j.spec.Name, Owner: j.spec.Owner, Project: j.spec.Project,
		Queue: j.spec.Queue, Slots: j.spec.Slots,
		Submit: j.submit, Start: j.start, End: j.end,
		CPUTime: res.CPUTime, State: st, ExitCode: res.ExitCode,
	})
	switch st {
	case StateDone:
		r.emitLocked(EventFinished, j.id)
	case StateFailed:
		r.emitLocked(EventFailed, j.id)
	case StateCancelled:
		r.emitLocked(EventCancelled, j.id)
	}
	if j.spec.Done != nil {
		done := j.spec.Done
		id := j.id
		r.mu.Unlock()
		done(id, res)
		r.mu.Lock()
	}
}

// Accounting returns a copy of all accounting records.
func (r *RMS) Accounting() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.records))
	copy(out, r.records)
	return out
}

// QueueLoad reports used and total slots for a queue.
func (r *RMS) QueueLoad(name string) (used, total int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[name]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownQueue, name)
	}
	return q.used, q.cfg.Slots, nil
}

// PendingCount reports the queued-but-not-running jobs in a queue.
func (r *RMS) PendingCount(name string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownQueue, name)
	}
	n := 0
	for _, id := range q.pending {
		if r.jobs[id].state == StatePending {
			n++
		}
	}
	return n, nil
}

// Load summarises total RMS occupancy as a fraction in [0,1].
func (r *RMS) Load() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	used, total := 0, 0
	for _, q := range r.queues {
		used += q.used
		total += q.cfg.Slots
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// Backlog reports the total number of jobs waiting (pending or held) across
// every queue — the queue depth a resource broker weighs against capacity.
func (r *RMS) Backlog() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, j := range r.jobs {
		if j.state == StatePending || j.state == StateHeld {
			n++
		}
	}
	return n
}

// QueueNames lists the configured queues in configuration order.
func (r *RMS) QueueNames() []string {
	names := make([]string, 0, len(r.cfg.Queues))
	for _, q := range r.cfg.Queues {
		names = append(names, q.Name)
	}
	return names
}
