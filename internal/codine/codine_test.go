package codine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"unicore/internal/machine"
	"unicore/internal/sim"
	"unicore/internal/vfs"
)

// rig bundles an RMS with its clock and file system.
type rig struct {
	clock *sim.VirtualClock
	fs    *vfs.FS
	rms   *RMS
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	clock := sim.NewVirtualClock()
	fs := vfs.New(clock)
	if err := fs.MkdirAll("/work"); err != nil {
		t.Fatal(err)
	}
	if cfg.Machine.Name == "" {
		cfg.Machine = machine.CrayT3E(64)
	}
	if cfg.Queues == nil {
		cfg.Queues = []Queue{{Name: "batch", Slots: 64}}
	}
	rms, err := New(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, fs: fs, rms: rms}
}

func (r *rig) spec(script string) JobSpec {
	return JobSpec{
		Name: "job", Owner: "alice", Queue: "batch", Slots: 1,
		TimeLimit: time.Hour, Script: script, WorkDir: "/work", FS: r.fs,
	}
}

func TestSubmitRunComplete(t *testing.T) {
	r := newRig(t, Config{})
	var got Result
	done := false
	spec := r.spec("echo starting\ncpu 60s\nwrite out.dat 16\necho finished")
	spec.Done = func(_ JobID, res Result) { got, done = res, true }
	id, err := r.rms.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := r.rms.Status(id); st != StateRunning {
		t.Fatalf("state after submit = %s (empty queue should dispatch at once)", st)
	}
	r.clock.RunUntilIdle(0)
	if !done {
		t.Fatal("Done callback never fired")
	}
	if got.State != StateDone || got.ExitCode != 0 {
		t.Fatalf("result = %+v", got)
	}
	if !strings.Contains(got.Stdout, "finished") {
		t.Fatalf("stdout = %q", got.Stdout)
	}
	if got.CPUTime != 60*time.Second {
		t.Fatalf("CPUTime = %v", got.CPUTime)
	}
	if got.WallTime != 60*time.Second+500*time.Millisecond {
		t.Fatalf("WallTime = %v", got.WallTime)
	}
	if !r.fs.Exists("/work/out.dat") {
		t.Fatal("job output missing from the data space")
	}
}

func TestSpeedFactorScalesWallTime(t *testing.T) {
	r := newRig(t, Config{Machine: machine.FujitsuVPP700(8)}) // speed 2.2
	var res Result
	spec := r.spec("cpu 22s")
	spec.Done = func(_ JobID, rr Result) { res = rr }
	if _, err := r.rms.Submit(spec); err != nil {
		t.Fatal(err)
	}
	r.clock.RunUntilIdle(0)
	want := time.Duration(float64(22*time.Second)/2.2) + 500*time.Millisecond
	if res.WallTime != want {
		t.Fatalf("WallTime = %v, want %v", res.WallTime, want)
	}
}

func TestSequentialWhenSlotsExhausted(t *testing.T) {
	r := newRig(t, Config{Queues: []Queue{{Name: "batch", Slots: 1}}})
	for i := 0; i < 2; i++ {
		s := r.spec("cpu 10s")
		s.Name = fmt.Sprintf("j%d", i)
		if _, err := r.rms.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	r.clock.RunUntilIdle(0)
	recs := r.rms.Accounting()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[1].Start.Before(recs[0].End) {
		t.Fatalf("second job started %v before first ended %v", recs[1].Start, recs[0].End)
	}
	if recs[1].Submit.After(recs[0].Start) {
		t.Fatal("unexpected submit ordering")
	}
}

func TestParallelWhenSlotsAvailable(t *testing.T) {
	r := newRig(t, Config{Queues: []Queue{{Name: "batch", Slots: 4}}})
	for i := 0; i < 4; i++ {
		if _, err := r.rms.Submit(r.spec("cpu 10s")); err != nil {
			t.Fatal(err)
		}
	}
	used, total, _ := r.rms.QueueLoad("batch")
	if used != 4 || total != 4 {
		t.Fatalf("load = %d/%d, want 4/4", used, total)
	}
	r.clock.RunUntilIdle(0)
	recs := r.rms.Accounting()
	for _, rec := range recs[1:] {
		if !rec.Start.Equal(recs[0].Start) {
			t.Fatalf("jobs did not start together: %v vs %v", rec.Start, recs[0].Start)
		}
	}
}

func TestTimeLimitExceeded(t *testing.T) {
	r := newRig(t, Config{})
	var res Result
	spec := r.spec("cpu 2h")
	spec.TimeLimit = time.Minute
	spec.Done = func(_ JobID, rr Result) { res = rr }
	if _, err := r.rms.Submit(spec); err != nil {
		t.Fatal(err)
	}
	r.clock.RunUntilIdle(0)
	if res.State != StateFailed || !strings.Contains(res.Reason, "wall clock") {
		t.Fatalf("result = %+v", res)
	}
	if res.WallTime != time.Minute {
		t.Fatalf("WallTime = %v (killed job should stop at the limit)", res.WallTime)
	}
}

func TestScriptFailure(t *testing.T) {
	r := newRig(t, Config{})
	var res Result
	spec := r.spec("fail disk exploded\necho unreachable")
	spec.Done = func(_ JobID, rr Result) { res = rr }
	if _, err := r.rms.Submit(spec); err != nil {
		t.Fatal(err)
	}
	r.clock.RunUntilIdle(0)
	if res.State != StateFailed || res.ExitCode != 1 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(res.Stderr, "disk exploded") {
		t.Fatalf("stderr = %q", res.Stderr)
	}
}

func TestCancelPending(t *testing.T) {
	r := newRig(t, Config{Queues: []Queue{{Name: "batch", Slots: 1}}})
	id1, _ := r.rms.Submit(r.spec("cpu 10s"))
	id2, _ := r.rms.Submit(r.spec("cpu 10s"))
	if st, _ := r.rms.Status(id2); st != StatePending {
		t.Fatalf("second job state = %s", st)
	}
	if err := r.rms.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.rms.Status(id2); st != StateCancelled {
		t.Fatalf("state after cancel = %s", st)
	}
	r.clock.RunUntilIdle(0)
	if st, _ := r.rms.Status(id1); st != StateDone {
		t.Fatalf("first job = %s", st)
	}
}

func TestCancelRunningFreesSlots(t *testing.T) {
	r := newRig(t, Config{Queues: []Queue{{Name: "batch", Slots: 1}}})
	id1, _ := r.rms.Submit(r.spec("cpu 10h"))
	id2, _ := r.rms.Submit(r.spec("cpu 1s"))
	if err := r.rms.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	// Cancelling the hog must let the second job dispatch.
	if st, _ := r.rms.Status(id2); st != StateRunning {
		t.Fatalf("second job = %s after cancel", st)
	}
	r.clock.RunUntilIdle(0)
	if st, _ := r.rms.Status(id2); st != StateDone {
		t.Fatalf("second job final = %s", st)
	}
	if err := r.rms.Cancel(id2); !errors.Is(err, ErrBadState) {
		t.Fatalf("cancel done job: %v", err)
	}
}

func TestHoldRelease(t *testing.T) {
	r := newRig(t, Config{Queues: []Queue{{Name: "batch", Slots: 1}}})
	busy, _ := r.rms.Submit(r.spec("cpu 10s"))
	id, _ := r.rms.Submit(r.spec("cpu 1s"))
	if err := r.rms.Hold(id); err != nil {
		t.Fatal(err)
	}
	r.clock.RunUntilIdle(0)
	if st, _ := r.rms.Status(id); st != StateHeld {
		t.Fatalf("held job = %s after drain", st)
	}
	if st, _ := r.rms.Status(busy); st != StateDone {
		t.Fatalf("busy job = %s", st)
	}
	if err := r.rms.Release(id); err != nil {
		t.Fatal(err)
	}
	r.clock.RunUntilIdle(0)
	if st, _ := r.rms.Status(id); st != StateDone {
		t.Fatalf("released job = %s", st)
	}
	if err := r.rms.Release(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("double release: %v", err)
	}
	if err := r.rms.Hold(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("hold done job: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	r := newRig(t, Config{Queues: []Queue{{Name: "batch", Slots: 8, MaxTime: time.Hour, MaxSlots: 4}}})
	if _, err := r.rms.Submit(JobSpec{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty spec: %v", err)
	}
	s := r.spec("true")
	s.Queue = "nope"
	if _, err := r.rms.Submit(s); !errors.Is(err, ErrUnknownQueue) {
		t.Fatalf("bad queue: %v", err)
	}
	s = r.spec("true")
	s.Slots = 8
	if _, err := r.rms.Submit(s); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("slots over MaxSlots: %v", err)
	}
	s = r.spec("true")
	s.TimeLimit = 48 * time.Hour
	if _, err := r.rms.Submit(s); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("time over MaxTime: %v", err)
	}
	if _, err := r.rms.Status(999); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown status: %v", err)
	}
	if _, err := r.rms.Result(999); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown result: %v", err)
	}
}

func TestResultOnlyWhenTerminal(t *testing.T) {
	r := newRig(t, Config{})
	id, _ := r.rms.Submit(r.spec("cpu 10s"))
	if _, err := r.rms.Result(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("result of running job: %v", err)
	}
	r.clock.RunUntilIdle(0)
	res, err := r.rms.Result(id)
	if err != nil || res.State != StateDone {
		t.Fatalf("result = %+v, %v", res, err)
	}
}

func TestEventSequence(t *testing.T) {
	r := newRig(t, Config{})
	var seq []EventType
	r.rms.Observe(func(ev Event) { seq = append(seq, ev.Type) })
	_, _ = r.rms.Submit(r.spec("cpu 1s"))
	r.clock.RunUntilIdle(0)
	want := []EventType{EventSubmitted, EventStarted, EventFinished}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", seq, want)
	}
}

func TestAccountingRecords(t *testing.T) {
	r := newRig(t, Config{})
	s := r.spec("cpu 30s")
	s.Project = "zam"
	_, _ = r.rms.Submit(s)
	r.clock.RunUntilIdle(0)
	recs := r.rms.Accounting()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	rec := recs[0]
	if rec.Owner != "alice" || rec.Project != "zam" || rec.State != StateDone {
		t.Fatalf("record = %+v", rec)
	}
	if rec.CPUTime != 30*time.Second || !rec.End.After(rec.Start) {
		t.Fatalf("record times = %+v", rec)
	}
}

// TestBackfillImprovesNarrowJob reproduces the classic EASY scenario: a wide
// job blocks the head of the queue; with backfill a short narrow job runs in
// the hole, without it the narrow job waits.
func TestBackfillImprovesNarrowJob(t *testing.T) {
	run := func(backfill bool) time.Duration {
		r := newRig(t, Config{
			Queues:   []Queue{{Name: "batch", Slots: 4}},
			Backfill: backfill,
		})
		// Hog: 3 slots, long.
		hog := r.spec("cpu 1h")
		hog.Slots = 3
		hog.TimeLimit = 2 * time.Hour
		_, _ = r.rms.Submit(hog)
		// Wide head: needs all 4 slots, must wait for the hog.
		wide := r.spec("cpu 10m")
		wide.Slots = 4
		wide.TimeLimit = time.Hour
		_, _ = r.rms.Submit(wide)
		// Narrow short job: could run on the spare slot right now.
		narrow := r.spec("cpu 5m")
		narrow.Slots = 1
		narrow.TimeLimit = 10 * time.Minute
		narrowID, _ := r.rms.Submit(narrow)
		r.clock.RunUntilIdle(0)
		for _, rec := range r.rms.Accounting() {
			if rec.Job == narrowID {
				return rec.End.Sub(rec.Submit)
			}
		}
		t.Fatal("narrow job not in accounting")
		return 0
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("backfill did not help: with=%v without=%v", with, without)
	}
}

// TestBackfillDoesNotStarveHead: the backfilled job must not delay the wide
// head job beyond the hog's completion.
func TestBackfillDoesNotStarveHead(t *testing.T) {
	r := newRig(t, Config{
		Queues:   []Queue{{Name: "batch", Slots: 4}},
		Backfill: true,
	})
	hog := r.spec("cpu 1h")
	hog.Slots = 3
	hog.TimeLimit = 90 * time.Minute
	_, _ = r.rms.Submit(hog)
	wide := r.spec("cpu 10m")
	wide.Slots = 4
	wide.TimeLimit = time.Hour
	wideID, _ := r.rms.Submit(wide)
	// This narrow job's limit exceeds the shadow window and it does not fit
	// beside the head (head needs all slots) — it must NOT backfill.
	narrow := r.spec("cpu 3h")
	narrow.Slots = 1
	narrow.TimeLimit = 4 * time.Hour
	narrowID, _ := r.rms.Submit(narrow)

	if st, _ := r.rms.Status(narrowID); st != StatePending {
		t.Fatalf("greedy narrow job dispatched (%s); would starve the head", st)
	}
	r.clock.RunUntilIdle(0)
	var wideRec, hogRec Record
	for _, rec := range r.rms.Accounting() {
		switch rec.Job {
		case wideID:
			wideRec = rec
		case 1:
			hogRec = rec
		}
	}
	// The wide job must start essentially when the hog's reservation ends.
	slack := wideRec.Start.Sub(hogRec.End)
	if slack < 0 || slack > time.Hour {
		t.Fatalf("wide start %v vs hog end %v", wideRec.Start, hogRec.End)
	}
}

func TestConfigValidation(t *testing.T) {
	clock := sim.NewVirtualClock()
	if _, err := New(nil, Config{Queues: []Queue{{Name: "q", Slots: 1}}, Machine: machine.CrayT3E(1)}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(clock, Config{Machine: machine.CrayT3E(1)}); err == nil {
		t.Fatal("no queues accepted")
	}
	if _, err := New(clock, Config{Queues: []Queue{{Name: "q", Slots: 0}}, Machine: machine.CrayT3E(1)}); err == nil {
		t.Fatal("zero-slot queue accepted")
	}
	if _, err := New(clock, Config{Queues: []Queue{{Name: "q", Slots: 1}}}); err == nil {
		t.Fatal("zero speed factor accepted")
	}
}

// Property: slots are never oversubscribed, for random workloads with and
// without backfill.
func TestSlotsNeverOversubscribed(t *testing.T) {
	for _, backfill := range []bool{false, true} {
		for seed := int64(0); seed < 15; seed++ {
			rng := rand.New(rand.NewSource(seed))
			slots := 1 + rng.Intn(8)
			r := newRig(t, Config{
				Queues:   []Queue{{Name: "batch", Slots: slots}},
				Backfill: backfill,
			})
			violated := false
			r.rms.Observe(func(Event) {
				used, total, _ := r.rms.QueueLoad("batch")
				if used > total || used < 0 {
					violated = true
				}
			})
			n := 5 + rng.Intn(20)
			for i := 0; i < n; i++ {
				s := r.spec(fmt.Sprintf("cpu %ds", 1+rng.Intn(120)))
				s.Slots = 1 + rng.Intn(slots)
				s.TimeLimit = time.Duration(2+rng.Intn(10)) * time.Minute
				if _, err := r.rms.Submit(s); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			r.clock.RunUntilIdle(0)
			if violated {
				t.Fatalf("seed %d backfill=%v: oversubscription observed", seed, backfill)
			}
			recs := r.rms.Accounting()
			if len(recs) != n {
				t.Fatalf("seed %d: %d records, want %d (lost jobs)", seed, len(recs), n)
			}
		}
	}
}
