package protocol

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Endpoint is the single https endpoint of a UNICORE site; envelopes go in
// and come out of POST bodies.
const Endpoint = "/unicore"

// InProc is an http.RoundTripper that dispatches requests directly to
// registered handlers, keyed by host name. It lets a whole multi-Usite
// deployment run inside one process and one virtual clock, with the same
// handler code that serves real TLS sockets.
type InProc struct {
	mu    sync.RWMutex
	hosts map[string]http.Handler
}

// NewInProc returns an empty in-process network.
func NewInProc() *InProc {
	return &InProc{hosts: make(map[string]http.Handler)}
}

// Register binds a host name (e.g. "gw.fzj.unicore") to a handler.
func (p *InProc) Register(host string, h http.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hosts[host] = h
}

// RoundTrip implements http.RoundTripper.
func (p *InProc) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.RLock()
	h, ok := p.hosts[req.URL.Host]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("inproc: no route to host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// Flaky wraps a transport and injects failures: each request is dropped
// with probability Drop (before reaching the server with probability 0.5,
// after — losing the response — otherwise), modelling the "unreliability of
// the underlying communication mechanism" of §5.3.
type Flaky struct {
	Base http.RoundTripper
	Drop float64
	// Latency is added per successful round trip (0 = none). It burns real
	// time, so keep it tiny in tests.
	Latency time.Duration

	mu   sync.Mutex
	rng  *rand.Rand
	reqs int
	lost int
}

// NewFlaky builds a fault-injecting transport with a deterministic seed.
func NewFlaky(base http.RoundTripper, drop float64, seed int64) *Flaky {
	return &Flaky{Base: base, Drop: drop, rng: rand.New(rand.NewSource(seed))}
}

// Stats reports attempted and lost round trips.
func (f *Flaky) Stats() (reqs, lost int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reqs, f.lost
}

// RoundTrip implements http.RoundTripper.
func (f *Flaky) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.reqs++
	r := f.rng.Float64()
	beforeServer := f.rng.Float64() < 0.5
	drop := r < f.Drop
	if drop {
		f.lost++
	}
	f.mu.Unlock()

	if drop && beforeServer {
		return nil, fmt.Errorf("flaky: request lost in transit")
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	resp, err := f.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if drop {
		// The server processed the request but the reply was lost.
		resp.Body.Close()
		return nil, fmt.Errorf("flaky: response lost in transit")
	}
	return resp, nil
}

// post sends an envelope to a site URL over the given transport and returns
// the reply envelope bytes. The context rides on the request, so handlers
// that wait server-side (the MsgSubscribe long-poll) observe cancellation.
func post(ctx context.Context, rt http.RoundTripper, baseURL string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+Endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("protocol: HTTP %d: %s", resp.StatusCode, truncate(data, 200))
	}
	return data, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
