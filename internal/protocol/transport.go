package protocol

import (
	"bufio"
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Endpoint is the single https endpoint of a UNICORE site; envelopes go in
// and come out of POST bodies.
const Endpoint = "/unicore"

// StreamEndpoint is the protocol v3 upgrade endpoint: a GET with
// `Upgrade: unicore-v3` hijacks the connection into a persistent multiplexed
// frame stream (one long-lived connection per client/site pair).
const StreamEndpoint = "/unicore/v3"

// StreamUpgradeProto names the v3 stream in the HTTP Upgrade handshake.
const StreamUpgradeProto = "unicore-v3"

// ErrNoStream reports that a transport (or the peer behind it) cannot carry
// a persistent v3 stream; callers fall back to the signed-envelope POST
// path. It is a capability signal, not a failure.
var ErrNoStream = errors.New("protocol: transport does not support v3 streams")

// Transport moves bytes between a client and a site gateway. Post carries
// one signed envelope per call — the v1/v2 path and the v3 fallback.
// OpenStream dials the site's persistent v3 frame stream; transports (or
// peers) without stream support return ErrNoStream.
type Transport interface {
	Post(ctx context.Context, baseURL string, body []byte) ([]byte, error)
	OpenStream(ctx context.Context, baseURL string) (net.Conn, error)
}

// StreamServer is implemented by handlers that can serve a v3 frame stream
// (the Gateway). In-process transports probe for it: a registered handler
// that lacks it (the firewall-split Front, wrapped test handlers) simply has
// no stream path, and clients fall back to envelopes.
type StreamServer interface {
	ServeStream(ctx context.Context, conn net.Conn)
}

// InProc is an in-process network: it dispatches envelope POSTs directly to
// registered handlers and v3 streams over net.Pipe, keyed by host name. It
// lets a whole multi-Usite deployment run inside one process and one virtual
// clock, with the same handler code that serves real TLS sockets. It still
// implements http.RoundTripper so HTTP-level test shims can wrap it.
type InProc struct {
	mu    sync.RWMutex
	hosts map[string]http.Handler
}

// NewInProc returns an empty in-process network.
func NewInProc() *InProc {
	return &InProc{hosts: make(map[string]http.Handler)}
}

// Register binds a host name (e.g. "gw.fzj.unicore") to a handler. A handler
// that also implements StreamServer is reachable over OpenStream.
func (p *InProc) Register(host string, h http.Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hosts[host] = h
}

func (p *InProc) lookup(host string) (http.Handler, bool) {
	p.mu.RLock()
	h, ok := p.hosts[host]
	p.mu.RUnlock()
	return h, ok
}

// RoundTrip implements http.RoundTripper.
func (p *InProc) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := p.lookup(req.URL.Host)
	if !ok {
		return nil, fmt.Errorf("inproc: no route to host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// Post implements Transport.
func (p *InProc) Post(ctx context.Context, baseURL string, body []byte) ([]byte, error) {
	return post(ctx, p, baseURL, body)
}

// OpenStream implements Transport: when the registered handler is a
// StreamServer, both stream ends are halves of a net.Pipe.
func (p *InProc) OpenStream(ctx context.Context, baseURL string) (net.Conn, error) {
	h, ok := p.lookup(hostOfURL(baseURL))
	if !ok {
		return nil, fmt.Errorf("inproc: no route to host %q", hostOfURL(baseURL))
	}
	s, ok := h.(StreamServer)
	if !ok {
		return nil, ErrNoStream
	}
	client, server := net.Pipe()
	// The stream outlives the dial call; only the conn's own lifetime bounds
	// the server side.
	go s.ServeStream(context.WithoutCancel(ctx), server)
	return client, nil
}

// hostOfURL extracts the host (with port, if any) from a base URL.
func hostOfURL(baseURL string) string {
	if u, err := url.Parse(baseURL); err == nil && u.Host != "" {
		return u.Host
	}
	return strings.TrimPrefix(strings.TrimPrefix(baseURL, "https://"), "http://")
}

// HTTPShim adapts a plain http.RoundTripper — a test double injecting
// failures at the HTTP layer — to the Transport interface. It has no stream
// path: OpenStream reports ErrNoStream and callers stay on the POST path,
// which is exactly where such shims want the traffic.
type HTTPShim struct{ RT http.RoundTripper }

// OverHTTP wraps an http.RoundTripper as a POST-only Transport.
func OverHTTP(rt http.RoundTripper) *HTTPShim { return &HTTPShim{RT: rt} }

// Post implements Transport.
func (s *HTTPShim) Post(ctx context.Context, baseURL string, body []byte) ([]byte, error) {
	return post(ctx, s.RT, baseURL, body)
}

// OpenStream implements Transport.
func (s *HTTPShim) OpenStream(context.Context, string) (net.Conn, error) {
	return nil, ErrNoStream
}

// HTTPTransport is the real-network Transport: envelopes ride HTTPS POSTs
// through HTTP (an *http.Transport carrying the mutual-TLS config), and v3
// streams are dialed with the same TLS config and switched off HTTP with an
// Upgrade handshake against StreamEndpoint.
type HTTPTransport struct {
	HTTP *http.Transport
	// DialTimeout bounds the TCP+TLS+Upgrade handshake (default 10s).
	DialTimeout time.Duration
}

// NewHTTPTransport wraps an *http.Transport (typically built around
// pki.ClientTLS) as a full Transport.
func NewHTTPTransport(h *http.Transport) *HTTPTransport { return &HTTPTransport{HTTP: h} }

// Post implements Transport.
func (t *HTTPTransport) Post(ctx context.Context, baseURL string, body []byte) ([]byte, error) {
	return post(ctx, t.HTTP, baseURL, body)
}

// OpenStream implements Transport: dial TLS, send the Upgrade handshake,
// hand back the hijacked connection. A peer that answers anything but 101
// (an old build, a plain proxy) yields ErrNoStream.
func (t *HTTPTransport) OpenStream(ctx context.Context, baseURL string) (net.Conn, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("protocol: bad base URL %q: %w", baseURL, err)
	}
	host := u.Host
	if u.Port() == "" {
		if u.Scheme == "http" {
			host = net.JoinHostPort(u.Hostname(), "80")
		} else {
			host = net.JoinHostPort(u.Hostname(), "443")
		}
	}
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var conn net.Conn
	d := &net.Dialer{}
	raw, err := d.DialContext(dctx, "tcp", host)
	if err != nil {
		return nil, err
	}
	if u.Scheme == "http" {
		conn = raw
	} else {
		cfg := t.HTTP.TLSClientConfig
		if cfg == nil {
			cfg = &tls.Config{}
		}
		cfg = cfg.Clone()
		if cfg.ServerName == "" {
			cfg.ServerName = u.Hostname()
		}
		tc := tls.Client(raw, cfg)
		if err := tc.HandshakeContext(dctx); err != nil {
			raw.Close()
			return nil, err
		}
		conn = tc
	}
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		StreamEndpoint, u.Host, StreamUpgradeProto)
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(timeout))
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("protocol: v3 upgrade handshake: %w", err)
	}
	resp.Body.Close()
	conn.SetReadDeadline(time.Time{})
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("%w: peer answered HTTP %d to the upgrade", ErrNoStream, resp.StatusCode)
	}
	// Bytes the server sent right after the 101 may sit in the bufio reader;
	// drain it before reading the conn directly.
	if n := br.Buffered(); n > 0 {
		peeked, _ := br.Peek(n)
		return &bufferedConn{Conn: conn, buf: append([]byte(nil), peeked...)}, nil
	}
	return &bufferedConn{Conn: conn}, nil
}

// bufferedConn replays bytes buffered during the upgrade handshake before
// reading from the connection proper.
type bufferedConn struct {
	net.Conn
	buf []byte
}

func (c *bufferedConn) Read(p []byte) (int, error) {
	if len(c.buf) > 0 {
		n := copy(p, c.buf)
		c.buf = c.buf[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}

// Flaky wraps a Transport and injects failures: each envelope POST is
// dropped with probability Drop (before reaching the server with probability
// 0.5, after — losing the response — otherwise), modelling the
// "unreliability of the underlying communication mechanism" of §5.3.
//
// Streams are a capability switch: with Streams false (the default) the
// flaky network refuses v3 streams outright, pinning traffic to the lossy
// POST path. With Streams true, OpenStream passes through and every live
// stream is tracked so KillStreams can sever them mid-flight — the
// connection-death fault the v3 reconnect logic must absorb.
type Flaky struct {
	Base Transport
	Drop float64
	// Latency is added per successful round trip (0 = none). It burns real
	// time, so keep it tiny in tests.
	Latency time.Duration
	// Streams lets v3 streams through (subject to KillStreams).
	Streams bool

	mu    sync.Mutex
	rng   *rand.Rand
	reqs  int
	lost  int
	kills int
	conns map[*killableConn]struct{}
}

// NewFlaky builds a fault-injecting transport with a deterministic seed.
func NewFlaky(base Transport, drop float64, seed int64) *Flaky {
	return &Flaky{Base: base, Drop: drop, rng: rand.New(rand.NewSource(seed))}
}

// Stats reports attempted and lost envelope round trips.
func (f *Flaky) Stats() (reqs, lost int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reqs, f.lost
}

// KillStreams severs every live v3 stream opened through this transport and
// returns how many it killed.
func (f *Flaky) KillStreams() int {
	f.mu.Lock()
	conns := make([]*killableConn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	f.mu.Lock()
	f.kills += len(conns)
	f.mu.Unlock()
	return len(conns)
}

// Post implements Transport with fault injection.
func (f *Flaky) Post(ctx context.Context, baseURL string, body []byte) ([]byte, error) {
	f.mu.Lock()
	f.reqs++
	drop := f.rng.Float64() < f.Drop
	beforeServer := f.rng.Float64() < 0.5
	if drop {
		f.lost++
	}
	f.mu.Unlock()

	if drop && beforeServer {
		return nil, fmt.Errorf("flaky: request lost in transit")
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	resp, err := f.Base.Post(ctx, baseURL, body)
	if err != nil {
		return nil, err
	}
	if drop {
		// The server processed the request but the reply was lost.
		return nil, fmt.Errorf("flaky: response lost in transit")
	}
	return resp, nil
}

// OpenStream implements Transport (see Streams).
func (f *Flaky) OpenStream(ctx context.Context, baseURL string) (net.Conn, error) {
	if !f.Streams {
		return nil, ErrNoStream
	}
	conn, err := f.Base.OpenStream(ctx, baseURL)
	if err != nil {
		return nil, err
	}
	kc := &killableConn{Conn: conn, f: f}
	f.mu.Lock()
	if f.conns == nil {
		f.conns = make(map[*killableConn]struct{})
	}
	f.conns[kc] = struct{}{}
	f.mu.Unlock()
	return kc, nil
}

// killableConn unregisters itself from the Flaky transport on close.
type killableConn struct {
	net.Conn
	f    *Flaky
	once sync.Once
}

func (c *killableConn) Close() error {
	c.once.Do(func() {
		c.f.mu.Lock()
		delete(c.f.conns, c)
		c.f.mu.Unlock()
	})
	return c.Conn.Close()
}

// post sends an envelope to a site URL over an http.RoundTripper and returns
// the reply envelope bytes. The context rides on the request, so handlers
// that wait server-side (the MsgSubscribe long-poll) observe cancellation.
func post(ctx context.Context, rt http.RoundTripper, baseURL string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+Endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("protocol: HTTP %d: %s", resp.StatusCode, truncate(data, 200))
	}
	return data, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
