// Package protocol implements the UNICORE protocols (paper §5.3): the
// high-level asynchronous client–server protocol whose requests are AJOs and
// whose replies are acks, summaries, and outcomes; and the low-level
// security protocol, here a signed envelope carried over https.
//
// "JPA/JMC act as client while NJS (resp. the gateway) acts as both client
// and server depending on the partner" — the same envelope format is used by
// users talking to a gateway and by an NJS consigning a sub-job to a peer
// site. "It is an asynchronous protocol ... by minimizing the length of time
// that an interaction takes the asynchronous protocol protects against any
// unreliability of the underlying communication mechanism"; robustness.go
// quantifies that claim (experiment E6).
package protocol

import (
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/events"
	"unicore/internal/pki"
	"unicore/internal/telemetry"
)

// parseCert decodes the signer certificate embedded in a signature.
func parseCert(der []byte) (*x509.Certificate, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("%w: bad signer certificate: %v", ErrBadEnvelope, err)
	}
	return cert, nil
}

// Version is the newest wire protocol version this build speaks. Protocol v2
// adds the session API: MsgSubscribe/MsgEventsReply server-push job event
// streams with cursor-resumable batches. Protocol v3 adds the persistent
// multiplexed frame stream (see frame.go): hot message kinds ride a
// long-lived authenticated connection in a compact binary codec, staged
// chunks travel as raw frames integrity-checked by the whole-transfer CRC
// that MsgPutCommit signs, and event batches are pushed server-side. The
// envelope POST path remains fully supported at v3 — streams are purely a
// hot-path overlay, so every v1/v2 exchange is byte-identical to before.
const Version = 3

// MinVersion is the oldest wire protocol version still accepted. v1 peers
// (request/reply polling only) keep working against v2 servers: their
// envelopes verify, and replies are sealed back at the version the request
// arrived with.
const MinVersion = 1

// Errors reported when opening envelopes and negotiating versions.
var (
	ErrBadEnvelope = errors.New("protocol: malformed envelope")
	ErrBadVersion  = errors.New("protocol: unsupported protocol version")
	// ErrV1Peer reports that a v2-only request (MsgSubscribe or a staging
	// MsgPut*) was addressed to a peer that negotiated down to protocol v1.
	ErrV1Peer = errors.New("protocol: peer speaks protocol v1 (no server-push events)")
)

// IsVersionRejection reports whether a server error reply is a protocol
// version rejection — the downgrade signal of the passive version
// negotiation: a client that sealed at v2 and got this back re-seals at v1
// and remembers the peer's version.
func IsVersionRejection(er *ErrorReply) bool {
	return er != nil && strings.Contains(er.Message, ErrBadVersion.Error())
}

// MsgType discriminates envelope payloads.
type MsgType string

// Request and reply message types.
const (
	MsgConsign        MsgType = "consign"
	MsgConsignReply   MsgType = "consign-reply"
	MsgPoll           MsgType = "poll"
	MsgPollReply      MsgType = "poll-reply"
	MsgOutcome        MsgType = "outcome"
	MsgOutcomeReply   MsgType = "outcome-reply"
	MsgList           MsgType = "list"
	MsgListReply      MsgType = "list-reply"
	MsgControl        MsgType = "control"
	MsgControlReply   MsgType = "control-reply"
	MsgResources      MsgType = "resources"
	MsgResourcesReply MsgType = "resources-reply"
	MsgTransfer       MsgType = "transfer"
	MsgTransferReply  MsgType = "transfer-reply"
	MsgApplet         MsgType = "applet"
	MsgAppletReply    MsgType = "applet-reply"
	MsgLoad           MsgType = "load"
	MsgLoadReply      MsgType = "load-reply"
	MsgFetch          MsgType = "fetch"
	MsgFetchReply     MsgType = "fetch-reply"
	// MsgSubscribe fetches a cursor-resumable batch of job lifecycle events,
	// long-polling server-side until events are available (protocol v2).
	MsgSubscribe MsgType = "subscribe"
	// MsgEventsReply answers a subscription with a coalesced event batch.
	MsgEventsReply MsgType = "events-reply"
	// MsgPutOpen begins a staged upload into a Vsite's spool area, returning
	// the transfer handle the chunks are sent under (protocol v2).
	MsgPutOpen MsgType = "put-open"
	// MsgPutOpenReply acknowledges a staged-upload open with its handle.
	MsgPutOpenReply MsgType = "put-open-reply"
	// MsgPutChunk delivers one CRC-checked chunk of a staged upload. Chunk
	// sends are idempotent: a re-send of an already-received index is
	// acknowledged without rewriting.
	MsgPutChunk MsgType = "put-chunk"
	// MsgPutChunkReply acknowledges a chunk with the contiguous watermark.
	MsgPutChunkReply MsgType = "put-chunk-reply"
	// MsgPutCommit seals a staged upload after verifying the whole-file CRC.
	MsgPutCommit MsgType = "put-commit"
	// MsgPutCommitReply acknowledges the seal with the recorded size and CRC.
	MsgPutCommitReply MsgType = "put-commit-reply"
	// MsgMetrics scrapes a point-in-time telemetry snapshot from a live
	// server (protocol v2): per-origin metric values plus recent trace spans,
	// merged across pool replicas by the Router.
	MsgMetrics MsgType = "metrics"
	// MsgMetricsReply carries the scraped snapshots, one per origin.
	MsgMetricsReply MsgType = "metrics-reply"
	// MsgFedAdvertise exchanges federation advertisements between peered
	// gateways (protocol v2): the sender pushes every fresh advertisement it
	// holds — its own plus relayed peers' — and the receiver answers with its
	// view, so one gossip round trip converges both peer tables.
	MsgFedAdvertise MsgType = "fed-advertise"
	// MsgFedAdvertiseReply answers a gossip exchange with the receiver's
	// advertisement set.
	MsgFedAdvertiseReply MsgType = "fed-advertise-reply"
	// MsgHello authenticates a protocol v3 stream: the first frame of every
	// persistent connection carries a signed Hello envelope binding the
	// caller's DN and role to the connection, so the hot frames that follow
	// need no per-message signature.
	MsgHello MsgType = "hello"
	// MsgHelloReply accepts a v3 stream; it is server-signed and the client
	// verifies it before sending any frame.
	MsgHelloReply MsgType = "hello-reply"
	MsgError      MsgType = "error"
)

// V2Only reports whether a message type exists only in protocol v2 and
// later — the client refuses to address these to a peer that negotiated down
// to v1, and servers refuse them inside a v1-sealed envelope.
func V2Only(t MsgType) bool {
	switch t {
	case MsgSubscribe, MsgPutOpen, MsgPutChunk, MsgPutCommit, MsgMetrics,
		MsgFedAdvertise, MsgFedAdvertiseReply:
		return true
	}
	return V3Only(t)
}

// V3Only reports whether a message type exists only in protocol v3 — the
// stream handshake pair, which never appears below v3.
func V3Only(t MsgType) bool {
	return t == MsgHello || t == MsgHelloReply
}

// MinVersionFor returns the lowest protocol version a message kind exists
// at — the floor the client checks before addressing a downgraded peer.
func MinVersionFor(t MsgType) int {
	switch {
	case V3Only(t):
		return 3
	case V2Only(t):
		return 2
	}
	return MinVersion
}

// MsgTypes lists every defined message type, in wire-constant order. Servers
// use it to pre-size lock-free per-type counters.
func MsgTypes() []MsgType {
	return []MsgType{
		MsgConsign, MsgConsignReply,
		MsgPoll, MsgPollReply,
		MsgOutcome, MsgOutcomeReply,
		MsgList, MsgListReply,
		MsgControl, MsgControlReply,
		MsgResources, MsgResourcesReply,
		MsgTransfer, MsgTransferReply,
		MsgApplet, MsgAppletReply,
		MsgLoad, MsgLoadReply,
		MsgFetch, MsgFetchReply,
		MsgSubscribe, MsgEventsReply,
		MsgPutOpen, MsgPutOpenReply,
		MsgPutChunk, MsgPutChunkReply,
		MsgPutCommit, MsgPutCommitReply,
		MsgMetrics, MsgMetricsReply,
		MsgFedAdvertise, MsgFedAdvertiseReply,
		MsgHello, MsgHelloReply,
		MsgError,
	}
}

// Envelope is the signed wire unit. The signature covers the payload bytes;
// the embedded certificate identifies the sender (user or server) to the
// receiver, which verifies it against the CA.
type Envelope struct {
	Version int     `json:"version"`
	Type    MsgType `json:"type"`
	// Trace is the request's distributed trace ID (protocol v2, optional).
	// It rides the envelope header, outside the signed payload, so relays
	// can read it without re-verifying; v1 envelopes omit it entirely and
	// their wire encoding is byte-identical to pre-trace builds.
	Trace     string          `json:"trace,omitempty"`
	Payload   json.RawMessage `json:"payload"`
	Signature pki.Signature   `json:"signature"`
}

// Seal marshals payload, signs it with cred, and returns the encoded
// envelope at the current protocol version.
func Seal(cred *pki.Credential, t MsgType, payload any) ([]byte, error) {
	return SealAt(cred, Version, t, payload)
}

// SealAt seals an envelope at an explicit protocol version — the negotiation
// hook: clients seal at the version a site last accepted, servers seal
// replies at the version the request arrived with.
func SealAt(cred *pki.Credential, version int, t MsgType, payload any) ([]byte, error) {
	return SealTracedAt(cred, version, "", t, payload)
}

// SealTracedAt is SealAt plus a distributed trace ID in the envelope
// header. The trace field is a v2 extension: sealing at v1 drops it so v1
// envelopes stay byte-identical to pre-trace builds (the versiongate
// contract for wire-visible v2 additions).
func SealTracedAt(cred *pki.Credential, version int, trace string, t MsgType, payload any) ([]byte, error) {
	if version < MinVersion || version > Version {
		return nil, fmt.Errorf("%w: cannot seal at version %d", ErrBadVersion, version)
	}
	if version < 2 {
		trace = ""
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("protocol: marshal %s payload: %w", t, err)
	}
	sig, err := cred.Sign(body)
	if err != nil {
		return nil, err
	}
	return json.Marshal(Envelope{Version: version, Type: t, Trace: trace, Payload: body, Signature: sig})
}

// Open decodes an envelope, verifies the payload signature against the CA,
// and returns the message type, raw payload, and signer identity. Any signer
// role chains through the same CA; callers enforce role expectations
// (gateways accept users and servers, clients expect servers).
func Open(ca *pki.Authority, data []byte) (MsgType, json.RawMessage, core.DN, pki.Role, error) {
	_, t, raw, dn, role, err := OpenVersioned(ca, data)
	return t, raw, dn, role, err
}

// OpenVersioned is Open plus the envelope's protocol version, which servers
// mirror when sealing the reply so that v1 peers keep verifying replies.
// Every version in [MinVersion, Version] is accepted. On verification
// failures past the version check, the parsed in-range version is still
// returned (with the error), so a server can seal its error reply at the
// version the failing peer speaks.
func OpenVersioned(ca *pki.Authority, data []byte) (int, MsgType, json.RawMessage, core.DN, pki.Role, error) {
	o, err := OpenTraced(ca, data)
	return o.Version, o.Type, o.Payload, o.From, o.Role, err
}

// Opened is the result of opening an envelope with OpenTraced: the
// negotiated version, the verified payload and signer identity, and the
// optional v2 trace ID from the header.
type Opened struct {
	// Version is the envelope's protocol version.
	Version int
	// Type is the message kind.
	Type MsgType
	// Payload is the verified raw payload.
	Payload json.RawMessage
	// From is the verified signer DN.
	From core.DN
	// Role is the signer's certificate role (user or server).
	Role pki.Role
	// Trace is the distributed trace ID, "" when absent or on a v1
	// envelope (the field is v2-only; a v1 sender cannot set it).
	Trace string
}

// OpenTraced is OpenVersioned returning a structured result that also
// carries the envelope's trace ID. On verification failures past the
// version check, the parsed in-range version (and trace, if any) is still
// returned with the error so servers can seal version-matched error
// replies and attribute the failure to a trace.
func OpenTraced(ca *pki.Authority, data []byte) (Opened, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Opened{}, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	if env.Version < MinVersion || env.Version > Version {
		return Opened{}, fmt.Errorf("%w: %d", ErrBadVersion, env.Version)
	}
	o := Opened{Version: env.Version}
	if env.Version >= 2 {
		o.Trace = env.Trace
	}
	dn, err := ca.VerifySignature(env.Payload, env.Signature, "")
	if err != nil {
		return o, err
	}
	cert, err := parseCert(env.Signature.CertDER)
	if err != nil {
		return o, err
	}
	o.Type, o.Payload, o.From, o.Role = env.Type, env.Payload, dn, pki.CertRole(cert)
	return o, nil
}

// --- high-level protocol messages ---

// ConsignRequest submits an AJO. ConsignID is chosen by the client and makes
// consignment idempotent under retries.
type ConsignRequest struct {
	ConsignID string          `json:"consignID"`
	AJO       json.RawMessage `json:"ajo"` // output of ajo.Marshal
}

// ConsignReply acknowledges (or refuses) a consignment. The protocol is
// asynchronous: acceptance only means the NJS took responsibility — on a
// durable NJS, that the admission record reached the journal. A refused
// reply that still carries a Job means the job was admitted but its
// durability could not be confirmed (journal failure or site shutdown
// mid-consign): clients should reconcile by that ID or retry with the same
// consign ID rather than resubmitting as new work.
type ConsignReply struct {
	Job      core.JobID `json:"job,omitempty"`
	Accepted bool       `json:"accepted"`
	Reason   string     `json:"reason,omitempty"`
}

// PollRequest asks for the compact status of a job.
type PollRequest struct {
	Job core.JobID `json:"job"`
}

// PollReply returns the job summary.
type PollReply struct {
	Found   bool        `json:"found"`
	Summary ajo.Summary `json:"summary"`
}

// OutcomeRequest fetches the full outcome tree of a job.
type OutcomeRequest struct {
	Job core.JobID `json:"job"`
}

// OutcomeReply carries the encoded outcome.
type OutcomeReply struct {
	Found   bool            `json:"found"`
	Outcome json.RawMessage `json:"outcome,omitempty"`
}

// ListRequest asks for the caller's jobs at this Usite.
type ListRequest struct{}

// JobInfo is one row of a ListReply.
type JobInfo struct {
	Job       core.JobID `json:"job"`
	Name      string     `json:"name"`
	Status    ajo.Status `json:"status"`
	Submitted time.Time  `json:"submitted"`
}

// ListReply lists the caller's jobs.
type ListReply struct {
	Jobs []JobInfo `json:"jobs"`
}

// ControlRequest aborts, holds, or resumes a job.
type ControlRequest struct {
	Job core.JobID    `json:"job"`
	Op  ajo.ControlOp `json:"op"`
}

// ControlReply reports the control outcome.
type ControlReply struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// ResourcesRequest fetches resource pages ("" selects every Vsite).
type ResourcesRequest struct {
	Vsite core.Vsite `json:"vsite,omitempty"`
}

// ResourcesReply returns DER-encoded resource pages (§5.4: ASN.1).
type ResourcesReply struct {
	PagesDER [][]byte `json:"pagesDER"`
}

// TransferRequest fetches a file from a job's Uspace — the NJS–NJS side of
// §5.6 Uspace-to-Uspace transfers. Only servers may issue it.
type TransferRequest struct {
	Job  core.JobID `json:"job"`
	File string     `json:"file"`
	// Offset/Limit support chunked transfers of huge files.
	Offset int64 `json:"offset,omitempty"`
	Limit  int64 `json:"limit,omitempty"`
}

// TransferReply carries file bytes.
type TransferReply struct {
	Found bool   `json:"found"`
	Data  []byte `json:"data,omitempty"`
	Size  int64  `json:"size"` // total file size
	CRC   uint64 `json:"crc"`  // whole-file checksum
}

// FetchRequest retrieves a file from the caller's own job Uspace back to
// the workstation — §5.6: "the current implementation sends data back to
// the workstation only on user request while the user is working with the
// JMC". Unlike TransferRequest it is owner-authorised, not server-only.
type FetchRequest struct {
	Job    core.JobID `json:"job"`
	File   string     `json:"file"`
	Offset int64      `json:"offset,omitempty"`
	Limit  int64      `json:"limit,omitempty"`
}

// AppletRequest fetches a signed applet (JPA or JMC payload stand-in).
type AppletRequest struct {
	Name string `json:"name"`
}

// AppletReply carries the applet payload and its software-publisher
// signature — the reproduction of Netscape object signing (§5.2).
type AppletReply struct {
	Name      string        `json:"name"`
	Version   string        `json:"version"`
	Payload   []byte        `json:"payload"`
	Signature pki.Signature `json:"signature"`
}

// LoadRequest asks a Usite for its current batch occupancy — the "load
// information" the §6 resource broker needs to pick an execution server.
type LoadRequest struct{}

// VsiteLoad is the occupancy of one Vsite. Replicas/Healthy expose the
// replica-pool topology behind the Vsite: a single-NJS site reports 1/1,
// a pooled site reports how many NJS replicas serve the Vsite and how many
// currently pass their health checks. Both fields are omitted by pre-pool
// servers; a reader treats 0 replicas as "topology unknown" (legacy single
// NJS), not as a drained site.
type VsiteLoad struct {
	Load     float64 `json:"load"`               // fraction of batch slots in use, [0,1]
	Pending  int     `json:"pending"`            // jobs waiting in the queues
	Inflight int     `json:"inflight,omitempty"` // consigns being admitted right now (live gauge)
	Replicas int     `json:"replicas,omitempty"` // NJS replicas serving this Vsite
	Healthy  int     `json:"healthy,omitempty"`  // replicas currently healthy
}

// LoadReply reports per-Vsite and overall load at a Usite.
type LoadReply struct {
	Overall float64              `json:"overall"`
	Vsites  map[string]VsiteLoad `json:"vsites"`
}

// JobEvent is one protocol-v2 job lifecycle notification — the wire shape is
// exactly the server's log record (package events).
type JobEvent = events.Event

// SubscribeRequest fetches a batch of job lifecycle events past a cursor
// (protocol v2). Job selects one job's stream (resumed at the per-job Cursor);
// an empty Job selects all of the caller's jobs at the Usite (resumed at the
// per-replica Origins cursors). WaitMs asks the server to long-poll: hold the
// request up to that many real milliseconds until events are available, then
// reply with everything buffered (server-side coalescing). Subscription reads
// are idempotent — a lost reply is recovered by re-issuing the request with
// the same cursor, with no gaps and no duplicates.
type SubscribeRequest struct {
	Job     core.JobID        `json:"job,omitempty"`
	Cursor  uint64            `json:"cursor,omitempty"`
	Origins map[string]uint64 `json:"origins,omitempty"`
	Max     int               `json:"max,omitempty"`
	WaitMs  int64             `json:"waitMs,omitempty"`
}

// EventsReply answers a subscription with a coalesced, cursor-ordered event
// batch. Cursor (job streams) and Origins (user streams) are the positions to
// resume at; Gap reports that events below the retained window were evicted
// before the subscriber caught up.
type EventsReply struct {
	Events  []JobEvent        `json:"events,omitempty"`
	Cursor  uint64            `json:"cursor,omitempty"`
	Origins map[string]uint64 `json:"origins,omitempty"`
	Gap     bool              `json:"gap,omitempty"`
}

// PutOpenRequest begins a staged upload into the spool area of a Vsite
// (protocol v2). Huge job inputs travel ahead of the AJO through this chunked
// path instead of riding inline inside one giant signed consign envelope
// (§5.6 "data are transferred in chunks, on user request"): the later
// ImportTask references the committed upload by its handle
// (ajo.ImportSource.Staged).
type PutOpenRequest struct {
	// Vsite is the execution system whose spool receives the upload — the
	// Vsite the staged ImportTask will later be consigned to.
	Vsite core.Vsite `json:"vsite"`
	// Name labels the upload (conventionally the Uspace destination path).
	Name string `json:"name,omitempty"`
	// Size declares the expected total size when known (informational; the
	// commit seals whatever arrived). Zero means unknown.
	Size int64 `json:"size,omitempty"`
	// ChunkSize is the fixed chunk grid the sender will use. The server may
	// clamp it; the reply carries the effective value.
	ChunkSize int64 `json:"chunkSize,omitempty"`
	// Window is how many chunks beyond the contiguous watermark the sender
	// wants in flight. The server may clamp it.
	Window int `json:"window,omitempty"`
	// Owner, honoured only on server-role calls, names the user the upload
	// is opened for: a federated gateway relaying a user's staged upload to
	// the peer fronting the Vsite keeps the user's spool ownership intact —
	// the staging mirror of the consign UserDN rule. Ignored (the signer
	// owns the upload) for user-role callers.
	Owner core.DN `json:"owner,omitempty"`
}

// PutOpenReply acknowledges a staged-upload open.
type PutOpenReply struct {
	// Handle identifies the transfer in every subsequent chunk/commit call
	// and in the consigning AJO's ImportSource.Staged reference.
	Handle string `json:"handle"`
	// ChunkSize and Window are the effective (possibly clamped) values the
	// sender must respect.
	ChunkSize int64 `json:"chunkSize"`
	Window    int   `json:"window"`
}

// PutChunkRequest delivers chunk Index (0-based, on the ChunkSize grid) of a
// staged upload. Chunks are idempotent: re-sending an already-received index
// (a lost reply) is acknowledged without rewriting, and a chunk more than the
// negotiated window beyond the contiguous watermark is rejected.
type PutChunkRequest struct {
	Handle string `json:"handle"`
	Index  int64  `json:"index"`
	Data   []byte `json:"data"`
	// CRC is the crc64 (ECMA) of Data; the server verifies it before writing.
	CRC uint64 `json:"crc"`
	// Owner carries the upload's user on server-role relays (see
	// PutOpenRequest.Owner).
	Owner core.DN `json:"owner,omitempty"`
}

// PutChunkReply acknowledges a chunk. Received is the contiguous watermark —
// the number of chunks received without holes from index 0 — which is where a
// sender resumes after losing replies.
type PutChunkReply struct {
	Received int64 `json:"received"`
}

// PutCommitRequest seals a staged upload: every chunk must have arrived and
// the assembled content must match CRC (crc64 ECMA of the whole file).
type PutCommitRequest struct {
	Handle string `json:"handle"`
	CRC    uint64 `json:"crc"`
	// Owner carries the upload's user on server-role relays (see
	// PutOpenRequest.Owner).
	Owner core.DN `json:"owner,omitempty"`
}

// PutCommitReply acknowledges the seal. A committed upload survives crash
// recovery (the spool is journaled) and is consumed by the ImportTask that
// references its handle; uploads never consigned are garbage-collected.
type PutCommitReply struct {
	Size   int64  `json:"size"`
	CRC    uint64 `json:"crc"`
	Chunks int64  `json:"chunks"`
}

// MetricsRequest scrapes a live telemetry snapshot from a Usite
// (protocol v2). PerReplica asks for the unmerged per-origin breakdown in
// addition to the aggregate; Spans asks to include recent trace spans.
type MetricsRequest struct {
	PerReplica bool `json:"perReplica,omitempty"`
	Spans      bool `json:"spans,omitempty"`
}

// MetricsReply carries the scraped snapshots. The first snapshot is the
// site aggregate (origin "usite/<name>"); when PerReplica was requested the
// remaining entries are the unmerged per-component snapshots (gateway,
// pool, and each NJS replica).
type MetricsReply struct {
	Snapshots []telemetry.Snapshot `json:"snapshots"`
}

// FedAd is one gateway's federation advertisement: the resource pages and
// live load it fronts, plus a charge-back summary, stamped with a
// monotonically increasing epoch so receivers can prefer newer views. Ads
// are relayed between peers with Hops incremented at every relay; receivers
// keep the lowest-hop freshest copy per origin and judge staleness by their
// own receipt clock, never the sender's Stamp (clocks are not assumed
// synchronized across administrative domains).
type FedAd struct {
	Origin core.Usite `json:"origin"`
	URL    string     `json:"url"`   // gateway base URL for direct forwarding
	Epoch  uint64     `json:"epoch"` // origin-local, bumps every self-advertisement
	Stamp  time.Time  `json:"stamp"` // origin clock at advertisement time (informational)
	Hops   int        `json:"hops"`  // relay distance from the origin (0 = self)
	// PagesDER carries the origin's resource catalog, one ASN.1 DER page per
	// Vsite (resources.Page.MarshalASN1) — the same encoding the paper's
	// Network Supervisor exports.
	PagesDER [][]byte             `json:"pagesDER,omitempty"`
	Loads    map[string]VsiteLoad `json:"loads,omitempty"`
	// Jobs and Charge summarize the origin's accounting ledger, the
	// charge-back weight for federated placement.
	Jobs   int     `json:"jobs,omitempty"`
	Charge float64 `json:"charge,omitempty"`
}

// FedAdvertiseRequest is a gossip push: the sender's full fresh view, its
// own ad first. The receiver ingests and answers with its view.
type FedAdvertiseRequest struct {
	From core.Usite `json:"from"`
	Ads  []FedAd    `json:"ads"`
}

// FedAdvertiseReply carries the receiver's advertisement set back.
type FedAdvertiseReply struct {
	Ads []FedAd `json:"ads"`
}

// HelloRequest opens a protocol v3 stream (MsgHello): it rides inside a
// signed envelope as the first frame of every persistent connection. Usite
// names the site the stream is addressed to, so a Hello captured for one
// gateway cannot be replayed against another; Nonce makes every handshake
// envelope distinct.
type HelloRequest struct {
	Usite core.Usite `json:"usite"`
	Nonce string     `json:"nonce"`
}

// HelloReply accepts a v3 stream (MsgHelloReply, server-signed). Nonce
// echoes the request's nonce, binding the acceptance to this handshake.
type HelloReply struct {
	Usite core.Usite `json:"usite"`
	Nonce string     `json:"nonce"`
}

// ErrorReply is the failure payload for any request.
type ErrorReply struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error renders the reply as an error.
func (e ErrorReply) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }
