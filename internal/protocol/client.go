package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/telemetry"
)

// Registry maps Usites to their gateway base URLs — "the different servers
// are connected so that (parts of) UNICORE jobs, data, and control
// information can be exchanged" (paper §4.3). It is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	sites map[core.Usite]string
}

// NewRegistry builds a registry from site→URL pairs.
func NewRegistry() *Registry {
	return &Registry{sites: make(map[core.Usite]string)}
}

// Add registers (or replaces) a site's gateway URL.
func (r *Registry) Add(usite core.Usite, baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites[usite] = baseURL
}

// Lookup returns a site's gateway URL.
func (r *Registry) Lookup(usite core.Usite) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	url, ok := r.sites[usite]
	return url, ok
}

// Sites returns all registered Usites.
func (r *Registry) Sites() []core.Usite {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]core.Usite, 0, len(r.sites))
	for u := range r.sites {
		out = append(out, u)
	}
	return out
}

// CallOpts tunes one Call. The zero value is right for almost every call.
type CallOpts struct {
	// MinVersion overrides the version floor derived from the message kind
	// (MinVersionFor): a caller sending a kind whose semantics changed at a
	// later version can refuse downgraded peers explicitly.
	MinVersion int
	// NoStream pins this call to the signed-envelope POST path even when a
	// v3 stream to the site is available.
	NoStream bool
}

// Client is the signed-envelope RPC client used by the user tier (JPA/JMC/
// Session) and by NJS→peer-gateway communication. It negotiates the protocol
// version per site: requests are sealed at the newest version the site is
// known to accept, and a version rejection downgrades the site one version
// and retries the call transparently (v3→v2→v1). Against a v3 peer the hot
// message kinds (consign, poll, fetch/transfer, staged chunks, event
// subscriptions) ride a persistent multiplexed frame stream; everything
// else — and every call to an older peer — travels as one signed envelope
// per POST, byte-identical to previous releases.
type Client struct {
	tr       Transport
	cred     *pki.Credential
	ca       *pki.Authority
	registry *Registry
	// Retries is the number of additional attempts after a transport
	// failure (the asynchronous protocol makes retries safe: consignment is
	// idempotent via ConsignID, everything else is read-only or
	// idempotent).
	Retries int
	// MaxVersion caps the protocol version this client negotiates (0 = the
	// build's Version). Pinning to 2 reproduces a pre-v3 client exactly.
	MaxVersion int
	// DisableStreams keeps every call on the envelope POST path even
	// against v3 peers — for callers whose traffic must stay per-request
	// (fault-injection shims, conservative relays).
	DisableStreams bool

	// vmu guards the negotiated per-site protocol versions.
	vmu  sync.Mutex
	vers map[core.Usite]int

	// smu guards the per-site persistent streams.
	smu     sync.Mutex
	streams map[core.Usite]*siteStream
}

// siteStream is the per-site stream slot: at most one live connection, and a
// sticky "no stream path to this site" verdict.
type siteStream struct {
	mu       sync.Mutex
	conn     *streamConn
	noStream bool
}

// NewClient builds a client. tr is typically an *InProc for tests or an
// HTTPTransport with pki.ClientTLS config for real deployments; wrap a bare
// http.RoundTripper with OverHTTP.
func NewClient(tr Transport, cred *pki.Credential, ca *pki.Authority, reg *Registry) *Client {
	return &Client{tr: tr, cred: cred, ca: ca, registry: reg, Retries: 2,
		vers: make(map[core.Usite]int), streams: make(map[core.Usite]*siteStream)}
}

// DN returns the client identity.
func (c *Client) DN() core.DN { return c.cred.DN() }

// Registry returns the client's site registry.
func (c *Client) Registry() *Registry { return c.registry }

// maxVersion is the ceiling this client negotiates from.
func (c *Client) maxVersion() int {
	if c.MaxVersion > 0 && c.MaxVersion < Version {
		return c.MaxVersion
	}
	return Version
}

// SiteVersion returns the protocol version this client currently seals
// requests to a site at (the negotiation ceiling until a rejection
// negotiated it down).
func (c *Client) SiteVersion(usite core.Usite) int {
	v := c.maxVersion()
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if cached, ok := c.vers[usite]; ok && cached < v {
		return cached
	}
	return v
}

// setSiteVersion records a negotiated site version.
func (c *Client) setSiteVersion(usite core.Usite, v int) {
	c.vmu.Lock()
	c.vers[usite] = v
	c.vmu.Unlock()
}

// Close tears down every persistent stream. The client remains usable; new
// calls redial as needed.
func (c *Client) Close() {
	c.smu.Lock()
	streams := make([]*siteStream, 0, len(c.streams))
	for _, ss := range c.streams {
		streams = append(streams, ss)
	}
	c.smu.Unlock()
	for _, ss := range streams {
		ss.mu.Lock()
		if ss.conn != nil {
			ss.conn.close()
			ss.conn = nil
		}
		ss.mu.Unlock()
	}
}

// Call sends one request to a Usite's gateway and decodes the reply payload
// into replyOut (a pointer). Server errors arrive as *ErrorReply errors.
// Cancellation aborts the in-flight round trip (a server long-poll —
// MsgSubscribe — unblocks as soon as the caller cancels) and stops the retry
// loop. Call also runs the passive version negotiation: a version-rejection
// error reply downgrades the site one protocol version and retries the call
// transparently, and a version floor (V2Only kinds against a v1 peer) fails
// fast with ErrV1Peer.
func (c *Client) Call(ctx context.Context, usite core.Usite, t MsgType, payload any, replyOut any, opts ...CallOpts) error {
	var opt CallOpts
	if len(opts) > 0 {
		opt = opts[0]
	}
	floor := opt.MinVersion
	if floor == 0 {
		floor = MinVersionFor(t)
	}
	for {
		ver := c.SiteVersion(usite)
		if floor > ver {
			return fmt.Errorf("%w: %s", ErrV1Peer, usite)
		}
		var err error
		handled := false
		if ver >= 3 && !c.DisableStreams && !opt.NoStream {
			err, handled = c.streamCall(ctx, usite, t, payload, replyOut)
		}
		if !handled {
			err = c.callOnce(ctx, usite, ver, t, payload, replyOut)
		}
		var er *ErrorReply
		if errors.As(err, &er) && ver > MinVersion && IsVersionRejection(er) {
			// Downgrade one version and retry: v3→v2 keeps the session API,
			// v2→v1 is the legacy polling floor.
			c.setSiteVersion(usite, ver-1)
			if ver-1 < 3 {
				c.dropSiteStream(usite, nil)
			}
			continue
		}
		return err
	}
}

// callOnce performs one sealed envelope round trip at an explicit version.
func (c *Client) callOnce(ctx context.Context, usite core.Usite, ver int, t MsgType, payload any, replyOut any) error {
	base, ok := c.registry.Lookup(usite)
	if !ok {
		return fmt.Errorf("protocol: unknown Usite %q", usite)
	}
	// Propagate the caller's distributed trace in the envelope header; the
	// field only exists at v2+, so SealTracedAt drops it for v1 peers.
	body, err := SealTracedAt(c.cred, ver, telemetry.TraceFrom(ctx), t, payload)
	if err != nil {
		return err
	}
	var respBody []byte
	attempts := c.Retries + 1
	for i := 0; i < attempts; i++ {
		if err = ctx.Err(); err != nil {
			return fmt.Errorf("protocol: %s to %s: %w", t, usite, err)
		}
		respBody, err = c.tr.Post(ctx, base, body)
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("protocol: %s to %s failed after %d attempts: %w", t, usite, attempts, err)
	}
	rt, raw, _, role, err := Open(c.ca, respBody)
	if err != nil {
		return fmt.Errorf("protocol: verifying reply from %s: %w", usite, err)
	}
	if role != pki.RoleServer {
		return fmt.Errorf("protocol: reply from %s signed by a %s certificate, want server", usite, role)
	}
	if rt == MsgError {
		var er ErrorReply
		if err := json.Unmarshal(raw, &er); err != nil {
			return fmt.Errorf("protocol: undecodable error reply: %w", err)
		}
		return &er
	}
	if replyOut == nil {
		return nil
	}
	if err := json.Unmarshal(raw, replyOut); err != nil {
		return fmt.Errorf("protocol: decoding %s reply: %w", rt, err)
	}
	return nil
}

// stream returns the live persistent stream to a site, dialing one if
// needed. ErrNoStream is sticky: once the transport or the peer refuses the
// stream path, the site stays on envelopes until the client is rebuilt.
func (c *Client) stream(ctx context.Context, usite core.Usite) (*streamConn, error) {
	c.smu.Lock()
	ss := c.streams[usite]
	if ss == nil {
		ss = &siteStream{}
		c.streams[usite] = ss
	}
	c.smu.Unlock()

	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.noStream {
		return nil, ErrNoStream
	}
	if ss.conn != nil && ss.conn.alive() {
		return ss.conn, nil
	}
	ss.conn = nil
	base, ok := c.registry.Lookup(usite)
	if !ok {
		return nil, fmt.Errorf("protocol: unknown Usite %q", usite)
	}
	sc, err := openStream(ctx, c.tr, base, c.cred, c.ca, usite)
	if err != nil {
		if errors.Is(err, ErrNoStream) {
			ss.noStream = true
		}
		return nil, err
	}
	ss.conn = sc
	return sc, nil
}

// dropSiteStream closes the site's stream (all of them when sc is nil; only
// a specific dead one otherwise, so a racing redial is not torn down).
func (c *Client) dropSiteStream(usite core.Usite, sc *streamConn) {
	c.smu.Lock()
	ss := c.streams[usite]
	c.smu.Unlock()
	if ss == nil {
		return
	}
	ss.mu.Lock()
	if ss.conn != nil && (sc == nil || ss.conn == sc) {
		ss.conn.close()
		ss.conn = nil
	}
	ss.mu.Unlock()
	if sc != nil {
		sc.close()
	}
}

// streamCall routes one hot-path call over the site's persistent stream.
// handled=false means "this call did not happen over the stream — use the
// envelope path": unknown kinds, no stream path, a request the server
// cannot serve over frames, or a connection that died even after one
// reconnect (the envelope path has its own retry loop, and every streamable
// request is idempotent, so the replay is safe).
func (c *Client) streamCall(ctx context.Context, usite core.Usite, t MsgType, payload any, replyOut any) (error, bool) {
	kind, body, ok := encodeStreamRequest(t, payload, telemetry.TraceFrom(ctx))
	if !ok {
		return nil, false
	}
	defer putFrameBuf(body)

	f, err := c.streamRoundTrip(ctx, usite, kind, *body)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("protocol: %s to %s: %w", t, usite, ctx.Err()), true
		}
		return nil, false
	}
	if f.Kind == FrameError {
		code, msg := parseStreamError(f.Payload)
		switch code {
		case StreamErrUnsupported:
			return nil, false
		case StreamErrBadFrame:
			c.dropSiteStream(usite, nil)
			return nil, false
		default:
			// Mirror the envelope path's error shape: the gateway would have
			// sealed this as an ErrorReply coded with the request type.
			return &ErrorReply{Code: string(t), Message: msg}, true
		}
	}
	if err := decodeStreamReply(t, f, replyOut); err != nil {
		// An undecodable reply poisons the connection, not the call.
		c.dropSiteStream(usite, nil)
		return nil, false
	}
	return nil, true
}

// streamRoundTrip performs one frame round trip, transparently reconnecting
// and replaying once when the persistent connection died under the call.
func (c *Client) streamRoundTrip(ctx context.Context, usite core.Usite, kind byte, body []byte) (Frame, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		sc, err := c.stream(ctx, usite)
		if err != nil {
			return Frame{}, err
		}
		f, err := sc.roundTrip(ctx, kind, body)
		if err == nil {
			return f, nil
		}
		if ctx.Err() != nil {
			return Frame{}, err
		}
		// The stream died mid-call: drop it and replay on a fresh one.
		c.dropSiteStream(usite, sc)
		lastErr = err
	}
	return Frame{}, lastErr
}

// encodeStreamRequest maps a hot message kind to its frame encoding. The
// returned buffer is pooled; the caller releases it with putFrameBuf.
func encodeStreamRequest(t MsgType, payload any, trace string) (byte, *[]byte, bool) {
	bp := getFrameBuf(0)
	b := (*bp)[:0]
	var kind byte
	switch t {
	case MsgConsign:
		req, ok := asPtr[ConsignRequest](payload)
		if !ok {
			putFrameBuf(bp)
			return 0, nil, false
		}
		kind = FrameCall
		b = encCallHeader(b, binConsign, trace)
		b = encConsignRequest(b, req)
	case MsgPoll:
		req, ok := asPtr[PollRequest](payload)
		if !ok {
			putFrameBuf(bp)
			return 0, nil, false
		}
		kind = FrameCall
		b = encCallHeader(b, binPoll, trace)
		b = encPollRequest(b, req)
	case MsgFetch:
		req, ok := asPtr[FetchRequest](payload)
		if !ok {
			putFrameBuf(bp)
			return 0, nil, false
		}
		kind = FrameFetch
		b = encFetch(b, &binFetch{Job: req.Job, File: req.File, Offset: req.Offset, Limit: req.Limit})
	case MsgTransfer:
		req, ok := asPtr[TransferRequest](payload)
		if !ok {
			putFrameBuf(bp)
			return 0, nil, false
		}
		kind = FrameFetch
		b = encFetch(b, &binFetch{Job: req.Job, File: req.File, Offset: req.Offset, Limit: req.Limit, Transfer: true})
	case MsgPutChunk:
		req, ok := asPtr[PutChunkRequest](payload)
		if !ok {
			putFrameBuf(bp)
			return 0, nil, false
		}
		kind = FramePut
		b = encPutChunk(b, req)
	case MsgSubscribe:
		req, ok := asPtr[SubscribeRequest](payload)
		if !ok {
			putFrameBuf(bp)
			return 0, nil, false
		}
		kind = FrameSub
		b = encSub(b, &binSub{SubscribeRequest: *req, Once: true})
	default:
		putFrameBuf(bp)
		return 0, nil, false
	}
	*bp = b
	return kind, bp, true
}

// decodeStreamReply decodes the reply frame for a hot message kind into
// replyOut (which may be nil: reply discarded, errors still surfaced).
func decodeStreamReply(t MsgType, f Frame, replyOut any) error {
	switch t {
	case MsgConsign:
		if f.Kind != FrameReply {
			return fmt.Errorf("protocol: consign answered with frame kind %#x", f.Kind)
		}
		rep, err := decConsignReply(f.Payload)
		if err != nil {
			return err
		}
		return assignReply(replyOut, rep)
	case MsgPoll:
		if f.Kind != FrameReply {
			return fmt.Errorf("protocol: poll answered with frame kind %#x", f.Kind)
		}
		rep, err := decPollReply(f.Payload)
		if err != nil {
			return err
		}
		return assignReply(replyOut, rep)
	case MsgFetch, MsgTransfer:
		if f.Kind != FrameData {
			return fmt.Errorf("protocol: fetch answered with frame kind %#x", f.Kind)
		}
		rep, err := decData(f.Payload)
		if err != nil {
			return err
		}
		return assignReply(replyOut, rep)
	case MsgPutChunk:
		if f.Kind != FramePutAck {
			return fmt.Errorf("protocol: put-chunk answered with frame kind %#x", f.Kind)
		}
		rep, err := decPutAck(f.Payload)
		if err != nil {
			return err
		}
		return assignReply(replyOut, rep)
	case MsgSubscribe:
		if f.Kind != FrameEvents {
			return fmt.Errorf("protocol: subscribe answered with frame kind %#x", f.Kind)
		}
		rep, err := decEvents(f.Payload)
		if err != nil {
			return err
		}
		return assignReply(replyOut, rep.EventsReply)
	}
	return fmt.Errorf("protocol: no stream decoding for %s", t)
}

// asPtr accepts the payload as either T or *T — call sites use both forms.
func asPtr[T any](payload any) (*T, bool) {
	switch v := payload.(type) {
	case *T:
		return v, true
	case T:
		return &v, true
	}
	return nil, false
}

// assignReply stores a typed reply into the caller's out pointer.
func assignReply[T any](replyOut any, v T) error {
	if replyOut == nil {
		return nil
	}
	p, ok := replyOut.(*T)
	if !ok {
		return fmt.Errorf("protocol: reply out parameter is %T, want *%T", replyOut, v)
	}
	*p = v
	return nil
}

// SubscribeStream opens a push subscription over the site's persistent v3
// stream: the server delivers event batches as they happen, with no
// long-poll round trip per batch. The channel closes when the subscription
// ends (terminal job event, connection loss, consumer overflow); a close
// without a terminal event means "resume by cursor" — re-subscribe or fall
// back to polling; nothing is lost either way. Returns ErrNoStream when the
// site has no stream path (older peer or POST-only transport).
func (c *Client) SubscribeStream(ctx context.Context, usite core.Usite, req SubscribeRequest) (<-chan EventsReply, func(), error) {
	if c.DisableStreams || c.SiteVersion(usite) < 3 {
		return nil, nil, ErrNoStream
	}
	sc, err := c.stream(ctx, usite)
	if err != nil {
		return nil, nil, err
	}
	id, ch, err := sc.subscribe(binSub{SubscribeRequest: req})
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrNoStream, err)
	}
	out := make(chan EventsReply, 16)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			sc.unsubscribe(id)
			close(done)
		})
	}
	go func() {
		defer close(out)
		for {
			select {
			case b, ok := <-ch:
				if !ok {
					return
				}
				select {
				case out <- b.EventsReply:
				case <-done:
					return
				}
			case <-done:
				return
			}
		}
	}()
	return out, stop, nil
}
