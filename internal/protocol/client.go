package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/telemetry"
)

// Registry maps Usites to their gateway base URLs — "the different servers
// are connected so that (parts of) UNICORE jobs, data, and control
// information can be exchanged" (paper §4.3). It is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	sites map[core.Usite]string
}

// NewRegistry builds a registry from site→URL pairs.
func NewRegistry() *Registry {
	return &Registry{sites: make(map[core.Usite]string)}
}

// Add registers (or replaces) a site's gateway URL.
func (r *Registry) Add(usite core.Usite, baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites[usite] = baseURL
}

// Lookup returns a site's gateway URL.
func (r *Registry) Lookup(usite core.Usite) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	url, ok := r.sites[usite]
	return url, ok
}

// Sites returns all registered Usites.
func (r *Registry) Sites() []core.Usite {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]core.Usite, 0, len(r.sites))
	for u := range r.sites {
		out = append(out, u)
	}
	return out
}

// Client is the signed-envelope RPC client used by the user tier (JPA/JMC)
// and by NJS→peer-gateway communication. It negotiates the protocol version
// per site: requests are sealed at the newest version the site is known to
// accept (v2 until proven otherwise), and a version rejection downgrades the
// site to v1 and retries the call transparently.
type Client struct {
	rt       http.RoundTripper
	cred     *pki.Credential
	ca       *pki.Authority
	registry *Registry
	// Retries is the number of additional attempts after a transport
	// failure (the asynchronous protocol makes retries safe: consignment is
	// idempotent via ConsignID, everything else is read-only or
	// idempotent).
	Retries int

	// vmu guards the negotiated per-site protocol versions.
	vmu  sync.Mutex
	vers map[core.Usite]int
}

// NewClient builds a client. rt is typically an *InProc for tests or an
// http.Transport with pki.ClientTLS config for real deployments.
func NewClient(rt http.RoundTripper, cred *pki.Credential, ca *pki.Authority, reg *Registry) *Client {
	return &Client{rt: rt, cred: cred, ca: ca, registry: reg, Retries: 2, vers: make(map[core.Usite]int)}
}

// DN returns the client identity.
func (c *Client) DN() core.DN { return c.cred.DN() }

// Registry returns the client's site registry.
func (c *Client) Registry() *Registry { return c.registry }

// SiteVersion returns the protocol version this client currently seals
// requests to a site at (Version until a rejection negotiated it down).
func (c *Client) SiteVersion(usite core.Usite) int {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if v, ok := c.vers[usite]; ok {
		return v
	}
	return Version
}

// setSiteVersion records a negotiated site version.
func (c *Client) setSiteVersion(usite core.Usite, v int) {
	c.vmu.Lock()
	c.vers[usite] = v
	c.vmu.Unlock()
}

// Call sends one request to a Usite's gateway and decodes the reply payload
// into replyOut (a pointer). Server errors arrive as *ErrorReply errors.
func (c *Client) Call(usite core.Usite, t MsgType, payload any, replyOut any) error {
	return c.CallContext(context.Background(), usite, t, payload, replyOut)
}

// CallContext is Call under a context: cancellation aborts the in-flight
// round trip (the request is built with the context, so a server long-poll —
// MsgSubscribe — unblocks as soon as the caller cancels) and stops the retry
// loop. It also runs the passive version negotiation: a version-rejection
// error reply downgrades the site to v1 and retries the call once.
func (c *Client) CallContext(ctx context.Context, usite core.Usite, t MsgType, payload any, replyOut any) error {
	for {
		ver := c.SiteVersion(usite)
		if V2Only(t) && ver < 2 {
			return fmt.Errorf("%w: %s", ErrV1Peer, usite)
		}
		err := c.callOnce(ctx, usite, ver, t, payload, replyOut)
		var er *ErrorReply
		if errors.As(err, &er) && ver > MinVersion && IsVersionRejection(er) {
			c.setSiteVersion(usite, MinVersion)
			continue // re-seal at v1; MinVersion stops a second downgrade
		}
		return err
	}
}

// callOnce performs one sealed round trip at an explicit version.
func (c *Client) callOnce(ctx context.Context, usite core.Usite, ver int, t MsgType, payload any, replyOut any) error {
	base, ok := c.registry.Lookup(usite)
	if !ok {
		return fmt.Errorf("protocol: unknown Usite %q", usite)
	}
	// Propagate the caller's distributed trace in the envelope header; the
	// field only exists at v2, so SealTracedAt drops it for v1 peers.
	body, err := SealTracedAt(c.cred, ver, telemetry.TraceFrom(ctx), t, payload)
	if err != nil {
		return err
	}
	var respBody []byte
	attempts := c.Retries + 1
	for i := 0; i < attempts; i++ {
		if err = ctx.Err(); err != nil {
			return fmt.Errorf("protocol: %s to %s: %w", t, usite, err)
		}
		respBody, err = post(ctx, c.rt, base, body)
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("protocol: %s to %s failed after %d attempts: %w", t, usite, attempts, err)
	}
	rt, raw, _, role, err := Open(c.ca, respBody)
	if err != nil {
		return fmt.Errorf("protocol: verifying reply from %s: %w", usite, err)
	}
	if role != pki.RoleServer {
		return fmt.Errorf("protocol: reply from %s signed by a %s certificate, want server", usite, role)
	}
	if rt == MsgError {
		var er ErrorReply
		if err := json.Unmarshal(raw, &er); err != nil {
			return fmt.Errorf("protocol: undecodable error reply: %w", err)
		}
		return &er
	}
	if replyOut == nil {
		return nil
	}
	if err := json.Unmarshal(raw, replyOut); err != nil {
		return fmt.Errorf("protocol: decoding %s reply: %w", rt, err)
	}
	return nil
}
