package protocol

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"unicore/internal/core"
	"unicore/internal/pki"
)

// Registry maps Usites to their gateway base URLs — "the different servers
// are connected so that (parts of) UNICORE jobs, data, and control
// information can be exchanged" (paper §4.3). It is safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	sites map[core.Usite]string
}

// NewRegistry builds a registry from site→URL pairs.
func NewRegistry() *Registry {
	return &Registry{sites: make(map[core.Usite]string)}
}

// Add registers (or replaces) a site's gateway URL.
func (r *Registry) Add(usite core.Usite, baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites[usite] = baseURL
}

// Lookup returns a site's gateway URL.
func (r *Registry) Lookup(usite core.Usite) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	url, ok := r.sites[usite]
	return url, ok
}

// Sites returns all registered Usites.
func (r *Registry) Sites() []core.Usite {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]core.Usite, 0, len(r.sites))
	for u := range r.sites {
		out = append(out, u)
	}
	return out
}

// Client is the signed-envelope RPC client used by the user tier (JPA/JMC)
// and by NJS→peer-gateway communication.
type Client struct {
	rt       http.RoundTripper
	cred     *pki.Credential
	ca       *pki.Authority
	registry *Registry
	// Retries is the number of additional attempts after a transport
	// failure (the asynchronous protocol makes retries safe: consignment is
	// idempotent via ConsignID, everything else is read-only or
	// idempotent).
	Retries int
}

// NewClient builds a client. rt is typically an *InProc for tests or an
// http.Transport with pki.ClientTLS config for real deployments.
func NewClient(rt http.RoundTripper, cred *pki.Credential, ca *pki.Authority, reg *Registry) *Client {
	return &Client{rt: rt, cred: cred, ca: ca, registry: reg, Retries: 2}
}

// DN returns the client identity.
func (c *Client) DN() core.DN { return c.cred.DN() }

// Registry returns the client's site registry.
func (c *Client) Registry() *Registry { return c.registry }

// Call sends one request to a Usite's gateway and decodes the reply payload
// into replyOut (a pointer). Server errors arrive as *ErrorReply errors.
func (c *Client) Call(usite core.Usite, t MsgType, payload any, replyOut any) error {
	base, ok := c.registry.Lookup(usite)
	if !ok {
		return fmt.Errorf("protocol: unknown Usite %q", usite)
	}
	body, err := Seal(c.cred, t, payload)
	if err != nil {
		return err
	}
	var respBody []byte
	attempts := c.Retries + 1
	for i := 0; i < attempts; i++ {
		respBody, err = post(c.rt, base, body)
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("protocol: %s to %s failed after %d attempts: %w", t, usite, attempts, err)
	}
	rt, raw, _, role, err := Open(c.ca, respBody)
	if err != nil {
		return fmt.Errorf("protocol: verifying reply from %s: %w", usite, err)
	}
	if role != pki.RoleServer {
		return fmt.Errorf("protocol: reply from %s signed by a %s certificate, want server", usite, role)
	}
	if rt == MsgError {
		var er ErrorReply
		if err := json.Unmarshal(raw, &er); err != nil {
			return fmt.Errorf("protocol: undecodable error reply: %w", err)
		}
		return &er
	}
	if replyOut == nil {
		return nil
	}
	if err := json.Unmarshal(raw, replyOut); err != nil {
		return fmt.Errorf("protocol: decoding %s reply: %w", rt, err)
	}
	return nil
}
