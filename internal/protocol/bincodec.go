package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/events"
)

// Compact binary codec for the protocol v3 hot message kinds. JSON stays the
// payload format of every signed envelope at every version — v1/v2 wire
// bytes are untouched — but the frames of a v3 stream carry these hand-rolled
// uvarint encodings instead: no field names, no base64 expansion of chunk
// data, no reflection. Each encoder appends to a (possibly pooled) buffer;
// each decoder consumes a binReader and leaves error handling to one check
// at the end.

// Binary request discriminators — the first byte of a FrameCall payload.
const (
	binConsign byte = 1
	binPoll    byte = 2
)

var errBinCodec = errors.New("protocol: malformed binary payload")

type binReader struct {
	b   []byte
	bad bool
}

func (r *binReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) bytes() []byte {
	n := r.uvarint()
	if r.bad || uint64(len(r.b)) < n {
		r.bad = true
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *binReader) string() string { return string(r.bytes()) }

func (r *binReader) bool() bool { return r.uvarint() != 0 }

func (r *binReader) time() time.Time {
	// Zero marks the zero time distinctly from unix nano 0. UTC matches what
	// the JSON envelope path yields after an RFC 3339 round trip, so the two
	// decodings of one event compare equal.
	v := r.varint()
	if v == 0 {
		return time.Time{}
	}
	return time.Unix(0, v).UTC()
}

// err returns the decode verdict: one check covers the whole message.
func (r *binReader) err() error {
	if r.bad {
		return errBinCodec
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errBinCodec, len(r.b))
	}
	return nil
}

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendBytes(b []byte, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func appendString(b []byte, v string) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return binary.AppendVarint(b, 0)
	}
	return binary.AppendVarint(b, t.UnixNano())
}

func appendOrigins(b []byte, m map[string]uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(m)))
	for k, v := range m {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func (r *binReader) origins() map[string]uint64 {
	n := r.uvarint()
	if n == 0 || r.bad {
		return nil
	}
	if n > uint64(len(r.b)) { // each entry is ≥ 2 bytes; cheap bound first
		r.bad = true
		return nil
	}
	m := make(map[string]uint64, n)
	for i := uint64(0); i < n && !r.bad; i++ {
		k := r.string()
		m[k] = r.uvarint()
	}
	return m
}

// --- FrameCall header ---

// A FrameCall payload is: u8 request code, uvarint-prefixed trace ID (the
// cross-tier telemetry trace the envelope header used to carry), then the
// code-specific body.
func encCallHeader(b []byte, code byte, trace string) []byte {
	b = append(b, code)
	return appendString(b, trace)
}

func splitCall(p []byte) (code byte, trace string, body []byte, err error) {
	if len(p) == 0 {
		return 0, "", nil, errBinCodec
	}
	r := &binReader{b: p[1:]}
	trace = r.string()
	if r.bad {
		return 0, "", nil, errBinCodec
	}
	return p[0], trace, r.b, nil
}

// --- consign ---

func encConsignRequest(b []byte, req *ConsignRequest) []byte {
	b = appendString(b, req.ConsignID)
	return appendBytes(b, req.AJO)
}

func decConsignRequest(p []byte) (ConsignRequest, error) {
	r := &binReader{b: p}
	var req ConsignRequest
	req.ConsignID = r.string()
	if raw := r.bytes(); len(raw) > 0 {
		req.AJO = append([]byte(nil), raw...)
	}
	return req, r.err()
}

func encConsignReply(b []byte, rep *ConsignReply) []byte {
	b = appendString(b, string(rep.Job))
	b = appendBool(b, rep.Accepted)
	return appendString(b, rep.Reason)
}

func decConsignReply(p []byte) (ConsignReply, error) {
	r := &binReader{b: p}
	var rep ConsignReply
	rep.Job = core.JobID(r.string())
	rep.Accepted = r.bool()
	rep.Reason = r.string()
	return rep, r.err()
}

// --- poll ---

func encPollRequest(b []byte, req *PollRequest) []byte {
	return appendString(b, string(req.Job))
}

func decPollRequest(p []byte) (PollRequest, error) {
	r := &binReader{b: p}
	req := PollRequest{Job: core.JobID(r.string())}
	return req, r.err()
}

func encPollReply(b []byte, rep *PollReply) []byte {
	b = appendBool(b, rep.Found)
	b = appendString(b, rep.Summary.Job)
	b = appendVarint(b, int64(rep.Summary.Status))
	b = appendVarint(b, int64(rep.Summary.Total))
	b = appendVarint(b, int64(rep.Summary.Done))
	b = appendVarint(b, int64(rep.Summary.Failed))
	return appendTime(b, rep.Summary.Updated)
}

func decPollReply(p []byte) (PollReply, error) {
	r := &binReader{b: p}
	var rep PollReply
	rep.Found = r.bool()
	rep.Summary.Job = r.string()
	rep.Summary.Status = ajo.Status(r.varint())
	rep.Summary.Total = int(r.varint())
	rep.Summary.Done = int(r.varint())
	rep.Summary.Failed = int(r.varint())
	rep.Summary.Updated = r.time()
	return rep, r.err()
}

// --- staged-upload chunks (FramePut / FramePutAck) ---

func encPutChunk(b []byte, req *PutChunkRequest) []byte {
	b = appendString(b, req.Handle)
	b = appendVarint(b, req.Index)
	b = appendUvarint(b, req.CRC)
	b = appendString(b, string(req.Owner))
	return appendBytes(b, req.Data)
}

func decPutChunk(p []byte) (PutChunkRequest, error) {
	r := &binReader{b: p}
	var req PutChunkRequest
	req.Handle = r.string()
	req.Index = r.varint()
	req.CRC = r.uvarint()
	req.Owner = core.DN(r.string())
	req.Data = r.bytes()
	return req, r.err()
}

func encPutAck(b []byte, rep *PutChunkReply) []byte {
	return appendVarint(b, rep.Received)
}

func decPutAck(p []byte) (PutChunkReply, error) {
	r := &binReader{b: p}
	rep := PutChunkReply{Received: r.varint()}
	return rep, r.err()
}

// --- ranged reads (FrameFetch / FrameData) ---

// binFetch is the frame form of FetchRequest/TransferRequest; Transfer marks
// the server-role variant (server-to-server Uspace reads) so the gateway
// applies the right authorisation.
type binFetch struct {
	Job      core.JobID
	File     string
	Offset   int64
	Limit    int64
	Transfer bool
}

func encFetch(b []byte, f *binFetch) []byte {
	b = appendString(b, string(f.Job))
	b = appendString(b, f.File)
	b = appendVarint(b, f.Offset)
	b = appendVarint(b, f.Limit)
	return appendBool(b, f.Transfer)
}

func decFetch(p []byte) (binFetch, error) {
	r := &binReader{b: p}
	var f binFetch
	f.Job = core.JobID(r.string())
	f.File = r.string()
	f.Offset = r.varint()
	f.Limit = r.varint()
	f.Transfer = r.bool()
	return f, r.err()
}

func encData(b []byte, rep *TransferReply) []byte {
	b = appendBool(b, rep.Found)
	b = appendVarint(b, rep.Size)
	b = appendUvarint(b, rep.CRC)
	return appendBytes(b, rep.Data)
}

func decData(p []byte) (TransferReply, error) {
	r := &binReader{b: p}
	var rep TransferReply
	rep.Found = r.bool()
	rep.Size = r.varint()
	rep.CRC = r.uvarint()
	rep.Data = r.bytes()
	return rep, r.err()
}

// --- event subscriptions (FrameSub / FrameEvents) ---

// binSub is the frame form of SubscribeRequest. Once marks a one-shot
// subscription (the Client.Call MsgSubscribe compatibility path): the server
// answers with exactly one batch. A push subscription streams batches until
// the job terminates, the client sends FrameSubStop, or the stream dies.
type binSub struct {
	SubscribeRequest
	Once bool
}

func encSub(b []byte, s *binSub) []byte {
	b = appendString(b, string(s.Job))
	b = appendUvarint(b, s.Cursor)
	b = appendOrigins(b, s.Origins)
	b = appendVarint(b, int64(s.Max))
	b = appendVarint(b, s.WaitMs)
	return appendBool(b, s.Once)
}

func decSub(p []byte) (binSub, error) {
	r := &binReader{b: p}
	var s binSub
	s.Job = core.JobID(r.string())
	s.Cursor = r.uvarint()
	s.Origins = r.origins()
	s.Max = int(r.varint())
	s.WaitMs = r.varint()
	s.Once = r.bool()
	return s, r.err()
}

// binEvents is the frame form of EventsReply. End tells a push subscriber no
// further batches follow (terminal job event delivered, or server teardown).
type binEvents struct {
	EventsReply
	End bool
}

func encEvents(b []byte, e *binEvents) []byte {
	b = appendUvarint(b, e.Cursor)
	b = appendOrigins(b, e.Origins)
	b = appendBool(b, e.Gap)
	b = appendBool(b, e.End)
	b = appendUvarint(b, uint64(len(e.Events)))
	for i := range e.Events {
		ev := &e.Events[i]
		b = appendString(b, string(ev.Job))
		b = appendUvarint(b, ev.Seq)
		b = appendUvarint(b, ev.Global)
		b = appendString(b, ev.Origin)
		b = appendString(b, string(ev.Type))
		b = appendString(b, string(ev.Action))
		b = appendVarint(b, int64(ev.Status))
		b = appendString(b, ev.Reason)
		b = appendTime(b, ev.Time)
		b = appendBool(b, ev.Terminal)
	}
	return b
}

func decEvents(p []byte) (binEvents, error) {
	r := &binReader{b: p}
	var e binEvents
	e.Cursor = r.uvarint()
	e.Origins = r.origins()
	e.Gap = r.bool()
	e.End = r.bool()
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)) { // ≥ 10 bytes per event; cheap bound
		r.bad = true
		return e, r.err()
	}
	if n > 0 {
		e.Events = make([]JobEvent, 0, n)
	}
	for i := uint64(0); i < n && !r.bad; i++ {
		var ev events.Event
		ev.Job = core.JobID(r.string())
		ev.Seq = r.uvarint()
		ev.Global = r.uvarint()
		ev.Origin = r.string()
		ev.Type = events.Type(r.string())
		ev.Action = ajo.ActionID(r.string())
		ev.Status = ajo.Status(r.varint())
		ev.Reason = r.string()
		ev.Time = r.time()
		ev.Terminal = r.bool()
		e.Events = append(e.Events, ev)
	}
	return e, r.err()
}
