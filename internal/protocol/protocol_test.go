package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"unicore/internal/pki"
)

// testRig bundles a CA, credentials, and an in-proc network with a minimal
// envelope server.
type testRig struct {
	ca     *pki.Authority
	user   *pki.Credential
	server *pki.Credential
	net    *InProc
	reg    *Registry
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	ca, err := pki.NewAuthority("Test-PCA")
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("Alice", "FZJ")
	if err != nil {
		t.Fatal(err)
	}
	server, err := ca.IssueServer("gw.fzj")
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{ca: ca, user: user, server: server, net: NewInProc(), reg: NewRegistry()}
	rig.reg.Add("FZJ", "http://gw.fzj")
	return rig
}

// echoHandler answers MsgPoll with a fixed PollReply and anything else with
// an error reply. It verifies request envelopes like a real gateway.
func (r *testRig) echoHandler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		mt, _, dn, role, err := Open(r.ca, body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
		if dn.CommonName() != "Alice" || role != pki.RoleUser {
			http.Error(w, "wrong identity", http.StatusForbidden)
			return
		}
		var reply []byte
		if mt == MsgPoll {
			reply, err = Seal(r.server, MsgPollReply, PollReply{Found: true})
		} else {
			reply, err = Seal(r.server, MsgError, ErrorReply{Code: "unsupported", Message: string(mt)})
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(reply)
	})
}

func TestSealOpenRoundTrip(t *testing.T) {
	r := newRig(t)
	body, err := Seal(r.user, MsgPoll, PollRequest{Job: "FZJ-000001"})
	if err != nil {
		t.Fatal(err)
	}
	mt, raw, dn, role, err := Open(r.ca, body)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgPoll || role != pki.RoleUser || dn.CommonName() != "Alice" {
		t.Fatalf("mt=%s role=%s dn=%s", mt, role, dn)
	}
	var pr PollRequest
	if err := json.Unmarshal(raw, &pr); err != nil || pr.Job != "FZJ-000001" {
		t.Fatalf("payload = %+v, %v", pr, err)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	r := newRig(t)
	body, _ := Seal(r.user, MsgPoll, PollRequest{Job: "J"})
	var env Envelope
	_ = json.Unmarshal(body, &env)
	env.Payload = json.RawMessage(`{"job":"EVIL"}`)
	tampered, _ := json.Marshal(env)
	if _, _, _, _, err := Open(r.ca, tampered); !errors.Is(err, pki.ErrBadSignature) {
		t.Fatalf("tampered envelope: %v", err)
	}
}

func TestOpenRejectsForeignCA(t *testing.T) {
	r := newRig(t)
	other, _ := pki.NewAuthority("Other-CA")
	mallory, _ := other.IssueUser("Mallory", "X")
	body, _ := Seal(mallory, MsgPoll, PollRequest{Job: "J"})
	if _, _, _, _, err := Open(r.ca, body); !errors.Is(err, pki.ErrUntrusted) {
		t.Fatalf("foreign envelope: %v", err)
	}
}

func TestOpenRejectsBadVersionAndGarbage(t *testing.T) {
	r := newRig(t)
	body, _ := Seal(r.user, MsgPoll, PollRequest{})
	var env Envelope
	_ = json.Unmarshal(body, &env)
	env.Version = 99
	bad, _ := json.Marshal(env)
	if _, _, _, _, err := Open(r.ca, bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version 99: %v", err)
	}
	if _, _, _, _, err := Open(r.ca, []byte("junk")); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Add("FZJ", "http://a")
	reg.Add("LRZ", "http://b")
	reg.Add("FZJ", "http://a2")
	if url, ok := reg.Lookup("FZJ"); !ok || url != "http://a2" {
		t.Fatalf("Lookup = %q, %v", url, ok)
	}
	if _, ok := reg.Lookup("ZIB"); ok {
		t.Fatal("phantom site found")
	}
	if len(reg.Sites()) != 2 {
		t.Fatalf("Sites = %v", reg.Sites())
	}
}

func TestInProcRouting(t *testing.T) {
	p := NewInProc()
	p.Register("a.example", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("from-a"))
	}))
	req, _ := http.NewRequest("GET", "http://a.example/x", nil)
	resp, err := p.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	if string(data) != "from-a" {
		t.Fatalf("body = %q", data)
	}
	req2, _ := http.NewRequest("GET", "http://ghost.example/x", nil)
	if _, err := p.RoundTrip(req2); err == nil {
		t.Fatal("no-route request succeeded")
	}
}

func TestClientCall(t *testing.T) {
	r := newRig(t)
	r.net.Register("gw.fzj", r.echoHandler(t))
	c := NewClient(r.net, r.user, r.ca, r.reg)
	var reply PollReply
	if err := c.Call(context.Background(), "FZJ", MsgPoll, PollRequest{Job: "J"}, &reply); err != nil {
		t.Fatal(err)
	}
	if !reply.Found {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestClientCallErrorReply(t *testing.T) {
	r := newRig(t)
	r.net.Register("gw.fzj", r.echoHandler(t))
	c := NewClient(r.net, r.user, r.ca, r.reg)
	err := c.Call(context.Background(), "FZJ", MsgList, ListRequest{}, nil)
	var er *ErrorReply
	if !errors.As(err, &er) || er.Code != "unsupported" {
		t.Fatalf("err = %v", err)
	}
}

func TestClientRejectsUserSignedReply(t *testing.T) {
	r := newRig(t)
	// A malicious "gateway" signing replies with a user certificate.
	r.net.Register("gw.fzj", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reply, _ := Seal(r.user, MsgPollReply, PollReply{Found: true})
		_, _ = w.Write(reply)
	}))
	c := NewClient(r.net, r.user, r.ca, r.reg)
	var reply PollReply
	err := c.Call(context.Background(), "FZJ", MsgPoll, PollRequest{Job: "J"}, &reply)
	if err == nil || !strings.Contains(err.Error(), "want server") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientUnknownUsite(t *testing.T) {
	r := newRig(t)
	c := NewClient(r.net, r.user, r.ca, r.reg)
	if err := c.Call(context.Background(), "ZIB", MsgPoll, PollRequest{}, nil); err == nil {
		t.Fatal("unknown usite accepted")
	}
}

func TestClientRetriesOverFlakyLink(t *testing.T) {
	r := newRig(t)
	r.net.Register("gw.fzj", r.echoHandler(t))
	flaky := NewFlaky(r.net, 0.5, 42)
	c := NewClient(flaky, r.user, r.ca, r.reg)
	c.Retries = 20
	ok := 0
	for i := 0; i < 20; i++ {
		var reply PollReply
		if err := c.Call(context.Background(), "FZJ", MsgPoll, PollRequest{Job: "J"}, &reply); err == nil {
			ok++
		}
	}
	if ok != 20 {
		t.Fatalf("only %d/20 calls survived a 50%% lossy link with retries", ok)
	}
	reqs, lost := flaky.Stats()
	if lost == 0 || reqs <= 20 {
		t.Fatalf("fault injection inactive: reqs=%d lost=%d", reqs, lost)
	}
}

func TestFlakyZeroDropPassesThrough(t *testing.T) {
	r := newRig(t)
	r.net.Register("gw.fzj", r.echoHandler(t))
	flaky := NewFlaky(r.net, 0, 1)
	c := NewClient(flaky, r.user, r.ca, r.reg)
	c.Retries = 0
	var reply PollReply
	if err := c.Call(context.Background(), "FZJ", MsgPoll, PollRequest{Job: "J"}, &reply); err != nil {
		t.Fatal(err)
	}
}

// --- E6: the §5.3 robustness claim ---

func TestAsyncVsSyncRobustness(t *testing.T) {
	cfg := RobustnessConfig{
		Link:         LinkModel{FailureRate: 0.01, MsgTime: 200 * time.Millisecond},
		JobDuration:  10 * time.Minute,
		PollInterval: time.Minute,
		Trials:       200,
		MaxRetries:   25,
		Seed:         7,
	}
	res := SimulateRobustness(cfg)
	if res.Async.CompletionRate() < 0.99 {
		t.Fatalf("async completion = %.2f, want ~1 (short interactions shrug off failures)",
			res.Async.CompletionRate())
	}
	if res.Sync.CompletionRate() >= res.Async.CompletionRate() {
		t.Fatalf("sync (%.2f) not worse than async (%.2f) at λ=0.01/s",
			res.Sync.CompletionRate(), res.Async.CompletionRate())
	}
	// The sync protocol wastes work: every broken connection reruns the job.
	if res.Sync.Completed > 0 && res.Sync.JobExecutions <= res.Sync.Completed {
		t.Fatalf("sync executions %d <= completions %d; rerun accounting broken",
			res.Sync.JobExecutions, res.Sync.Completed)
	}
	// The async protocol never reruns jobs.
	if res.Async.JobExecutions != res.Async.Completed {
		t.Fatalf("async executed %d jobs for %d completions",
			res.Async.JobExecutions, res.Async.Completed)
	}
}

func TestRobustnessPerfectLink(t *testing.T) {
	res := SimulateRobustness(RobustnessConfig{
		Link:        LinkModel{FailureRate: 0, MsgTime: 100 * time.Millisecond},
		JobDuration: time.Minute,
		Trials:      50,
		Seed:        1,
	})
	if res.Async.CompletionRate() != 1 || res.Sync.CompletionRate() != 1 {
		t.Fatalf("perfect link: async=%.2f sync=%.2f",
			res.Async.CompletionRate(), res.Sync.CompletionRate())
	}
	if res.Async.MessagesLost != 0 || res.Sync.MessagesLost != 0 {
		t.Fatal("losses on a perfect link")
	}
}

func TestRobustnessDegradesWithJobLength(t *testing.T) {
	// The gap must widen as jobs get longer: that is the whole argument for
	// the asynchronous protocol.
	gap := func(dur time.Duration) float64 {
		res := SimulateRobustness(RobustnessConfig{
			Link:        LinkModel{FailureRate: 0.005, MsgTime: 100 * time.Millisecond},
			JobDuration: dur,
			Trials:      300,
			MaxRetries:  10,
			Seed:        3,
		})
		return res.Async.CompletionRate() - res.Sync.CompletionRate()
	}
	short := gap(30 * time.Second)
	long := gap(30 * time.Minute)
	if long <= short {
		t.Fatalf("robustness gap did not grow with job length: short=%.3f long=%.3f", short, long)
	}
}
