package protocol

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/telemetry"
)

// DefaultStreamWindow bounds how many requests one v3 stream keeps in
// flight: pipelining hides latency, the bound keeps a slow server from
// absorbing unbounded client memory.
const DefaultStreamWindow = 32

// handshakeTimeout bounds the Hello/HelloOK exchange on a fresh stream.
const handshakeTimeout = 10 * time.Second

// ErrStreamClosed reports a request that died with its connection; the
// client reconnects and replays (every v3 frame request is idempotent).
var ErrStreamClosed = errors.New("protocol: v3 stream closed")

// streamConn is the client half of one persistent multiplexed v3 stream:
// correlation-ID routing, a bounded in-flight window, and push-subscription
// channels. All writes are whole frames under wmu; one reader goroutine
// dispatches every inbound frame.
type streamConn struct {
	conn   net.Conn
	window chan struct{}

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Frame
	subs    map[uint64]chan binEvents
	closed  bool
	err     error
	done    chan struct{}
}

// openStream dials baseURL's v3 stream and authenticates it: a signed Hello
// envelope out, a verified server-signed HelloOK back. ErrNoStream (from the
// transport, or from a peer that answers the Hello with an unsupported
// error) means "this pair has no stream path" — the caller pins the site to
// the envelope path.
func openStream(ctx context.Context, tr Transport, baseURL string, cred *pki.Credential, ca *pki.Authority, usite core.Usite) (*streamConn, error) {
	conn, err := tr.OpenStream(ctx, baseURL)
	if err != nil {
		return nil, err
	}
	var nb [16]byte
	if _, err := rand.Read(nb[:]); err != nil {
		conn.Close()
		return nil, err
	}
	nonce := hex.EncodeToString(nb[:])
	hello, err := SealTracedAt(cred, 3, telemetry.TraceFrom(ctx), MsgHello, HelloRequest{Usite: usite, Nonce: nonce})
	if err != nil {
		conn.Close()
		return nil, err
	}
	deadline := time.Now().Add(handshakeTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	if err := writeFrame(conn, FrameHello, 0, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("protocol: v3 hello to %s: %w", usite, err)
	}
	f, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("protocol: v3 hello to %s: %w", usite, err)
	}
	switch f.Kind {
	case FrameHelloOK:
	case FrameError:
		code, msg := parseStreamError(f.Payload)
		conn.Close()
		if code == StreamErrUnsupported {
			return nil, fmt.Errorf("%w: %s", ErrNoStream, msg)
		}
		return nil, fmt.Errorf("protocol: v3 hello to %s refused: %s", usite, msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("protocol: v3 hello to %s answered with frame kind %#x", usite, f.Kind)
	}
	o, err := OpenTraced(ca, f.Payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("protocol: verifying v3 hello reply from %s: %w", usite, err)
	}
	if o.Type != MsgHelloReply || o.Role != pki.RoleServer {
		conn.Close()
		return nil, fmt.Errorf("protocol: v3 hello reply from %s is %s/%s, want %s from a server", usite, o.Type, o.Role, MsgHelloReply)
	}
	var hr HelloReply
	if err := json.Unmarshal(o.Payload, &hr); err != nil || hr.Nonce != nonce {
		conn.Close()
		return nil, fmt.Errorf("protocol: v3 hello reply from %s does not echo the handshake nonce", usite)
	}
	conn.SetDeadline(time.Time{})
	s := &streamConn{
		conn:    conn,
		window:  make(chan struct{}, DefaultStreamWindow),
		pending: make(map[uint64]chan Frame),
		subs:    make(map[uint64]chan binEvents),
		done:    make(chan struct{}),
	}
	go s.readLoop()
	return s, nil
}

// alive reports whether the stream can still carry requests.
func (s *streamConn) alive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// close tears the stream down, failing everything in flight.
func (s *streamConn) close() { s.fail(ErrStreamClosed) }

func (s *streamConn) fail(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	close(s.done)
	s.mu.Unlock()
	s.conn.Close()
}

func (s *streamConn) failErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return ErrStreamClosed
}

// register allocates a correlation ID with a 1-buffered reply channel.
func (s *streamConn) register() (uint64, chan Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, s.err
	}
	s.nextID++
	id := s.nextID
	ch := make(chan Frame, 1)
	s.pending[id] = ch
	return id, ch, nil
}

func (s *streamConn) unregister(id uint64) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// write sends one frame under the write lock.
func (s *streamConn) write(kind byte, id uint64, payload []byte) error {
	s.wmu.Lock()
	err := writeFrame(s.conn, kind, id, payload)
	s.wmu.Unlock()
	if err != nil {
		s.fail(fmt.Errorf("protocol: v3 stream write: %w", err))
	}
	return err
}

// roundTrip sends one request frame and waits for its correlated reply,
// holding one slot of the in-flight window for the duration. A FrameSub
// round trip that is abandoned (context cancelled) tells the server to
// release the long-poll with a FrameSubStop.
func (s *streamConn) roundTrip(ctx context.Context, kind byte, payload []byte) (Frame, error) {
	select {
	case s.window <- struct{}{}:
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	case <-s.done:
		return Frame{}, s.failErr()
	}
	defer func() { <-s.window }()

	id, ch, err := s.register()
	if err != nil {
		return Frame{}, err
	}
	if err := s.write(kind, id, payload); err != nil {
		s.unregister(id)
		return Frame{}, err
	}
	select {
	case f := <-ch:
		return f, nil
	case <-ctx.Done():
		s.unregister(id)
		if kind == FrameSub {
			// Best effort: free the server-side long-poll immediately.
			s.write(FrameSubStop, id, nil)
		}
		return Frame{}, ctx.Err()
	case <-s.done:
		return Frame{}, s.failErr()
	}
}

// subscribe opens a push subscription: the server streams FrameEvents
// batches under the returned ID until the job terminates, unsubscribe is
// called, or the stream dies. The channel closes on any of those; a closed
// channel without a terminal event means "resubscribe or fall back".
func (s *streamConn) subscribe(b binSub) (uint64, <-chan binEvents, error) {
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		return 0, nil, err
	}
	s.nextID++
	id := s.nextID
	ch := make(chan binEvents, 64)
	s.subs[id] = ch
	s.mu.Unlock()

	bp := getFrameBuf(0)
	*bp = encSub((*bp)[:0], &b)
	err := s.write(FrameSub, id, *bp)
	putFrameBuf(bp)
	if err != nil {
		return 0, nil, err
	}
	return id, ch, nil
}

// unsubscribe cancels a push subscription.
func (s *streamConn) unsubscribe(id uint64) {
	s.mu.Lock()
	ch, ok := s.subs[id]
	if ok {
		delete(s.subs, id)
		close(ch)
	}
	closed := s.closed
	s.mu.Unlock()
	if ok && !closed {
		s.write(FrameSubStop, id, nil)
	}
}

// readLoop is the single reader: every inbound frame routes by correlation
// ID to a pending waiter or a subscription channel. A subscription consumer
// that falls behind its buffer is cut off (channel closed) rather than
// allowed to head-of-line block the whole stream — the subscriber falls back
// to cursor-resumable polling, which is lossless by construction.
func (s *streamConn) readLoop() {
	for {
		f, err := readFrame(s.conn)
		if err != nil {
			s.fail(fmt.Errorf("protocol: v3 stream read: %w", err))
			return
		}
		s.mu.Lock()
		if ch, ok := s.subs[f.ID]; ok {
			if f.Kind == FrameEvents {
				if ev, derr := decEvents(f.Payload); derr == nil {
					select {
					case ch <- ev:
						if ev.End {
							delete(s.subs, f.ID)
							close(ch)
						}
					default: // overflow: cut the subscriber off
						delete(s.subs, f.ID)
						close(ch)
					}
				} else {
					delete(s.subs, f.ID)
					close(ch)
				}
			} else { // FrameError or teardown: end the subscription
				delete(s.subs, f.ID)
				close(ch)
			}
			s.mu.Unlock()
			continue
		}
		ch, ok := s.pending[f.ID]
		if ok {
			delete(s.pending, f.ID)
		}
		s.mu.Unlock()
		if ok {
			ch <- f
		}
		// Unmatched frames (reply raced a cancellation) are dropped.
	}
}
