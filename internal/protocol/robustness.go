package protocol

import (
	"math"
	"math/rand"
	"time"
)

// This file quantifies the §5.3 design claim — experiment E6:
//
//	"It is an asynchronous protocol. This design is suitable for batch
//	processing ... and it is more robust than a synchronous protocol. By
//	minimizing the length of time that an interaction takes the
//	asynchronous protocol protects against any unreliability of the
//	underlying communication mechanism."
//
// The model: the link fails independently at rate λ (failures per second of
// held connection); an interaction of duration d survives with probability
// exp(-λ·d).
//
//   - The asynchronous protocol performs short interactions: one consign,
//     then a poll every pollInterval until the job (duration T) finishes,
//     then one outcome fetch. Each interaction takes msgTime. A failed
//     interaction is simply retried; the job keeps running regardless.
//   - The synchronous baseline holds one connection for the whole job
//     (T + msgTime). If the connection breaks, the client must resubmit and
//     the work runs again from the start.

// LinkModel describes an unreliable communication channel.
type LinkModel struct {
	// FailureRate λ is the expected connection failures per second held.
	FailureRate float64
	// MsgTime is the duration of one short protocol interaction.
	MsgTime time.Duration
}

// survives samples whether a connection held for d survives.
func (l LinkModel) survives(rng *rand.Rand, d time.Duration) bool {
	p := math.Exp(-l.FailureRate * d.Seconds())
	return rng.Float64() < p
}

// RobustnessStats summarises one protocol variant's behaviour over trials.
type RobustnessStats struct {
	Trials        int
	Completed     int           // trials finished within the retry budget
	JobExecutions int           // total job runs consumed (re-runs included)
	Messages      int           // protocol interactions attempted
	MessagesLost  int           // interactions that failed
	TotalWall     time.Duration // cumulative completion time over trials
}

// CompletionRate returns the fraction of trials that completed.
func (s RobustnessStats) CompletionRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Trials)
}

// MeanWall returns the mean wall time per completed trial.
func (s RobustnessStats) MeanWall() time.Duration {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalWall / time.Duration(s.Completed)
}

// RobustnessConfig parameterises the experiment.
type RobustnessConfig struct {
	Link         LinkModel
	JobDuration  time.Duration // T: how long the batch job runs
	PollInterval time.Duration // async status poll cadence
	Trials       int
	MaxRetries   int // per-trial budget of failed interactions / resubmissions
	Seed         int64
}

// RobustnessResult pairs the two protocol variants for one configuration.
type RobustnessResult struct {
	Async RobustnessStats
	Sync  RobustnessStats
}

// SimulateRobustness Monte-Carlo-runs both protocol variants under the same
// link model and returns their statistics.
func SimulateRobustness(cfg RobustnessConfig) RobustnessResult {
	if cfg.Trials <= 0 {
		cfg.Trials = 100
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = cfg.JobDuration / 10
		if cfg.PollInterval <= 0 {
			cfg.PollInterval = time.Second
		}
	}
	rngA := rand.New(rand.NewSource(cfg.Seed))
	rngS := rand.New(rand.NewSource(cfg.Seed + 1))
	return RobustnessResult{
		Async: simulateAsync(cfg, rngA),
		Sync:  simulateSync(cfg, rngS),
	}
}

func simulateAsync(cfg RobustnessConfig, rng *rand.Rand) RobustnessStats {
	var s RobustnessStats
	s.Trials = cfg.Trials
	for trial := 0; trial < cfg.Trials; trial++ {
		retries := 0
		wall := time.Duration(0)
		ok := true

		// One job execution, always: the job is unaffected by link trouble
		// once consigned.
		send := func() bool {
			for {
				s.Messages++
				if cfg.Link.survives(rng, cfg.Link.MsgTime) {
					wall += cfg.Link.MsgTime
					return true
				}
				s.MessagesLost++
				retries++
				wall += cfg.Link.MsgTime
				if retries > cfg.MaxRetries {
					return false
				}
			}
		}
		if !send() { // consign
			ok = false
		} else {
			s.JobExecutions++
			// Poll until the job completes.
			elapsed := time.Duration(0)
			for elapsed < cfg.JobDuration {
				step := cfg.PollInterval
				if rem := cfg.JobDuration - elapsed; step > rem {
					step = rem
				}
				elapsed += step
				wall += step
				if !send() { // poll
					ok = false
					break
				}
			}
			if ok && !send() { // outcome fetch
				ok = false
			}
		}
		if ok {
			s.Completed++
			s.TotalWall += wall
		}
	}
	return s
}

func simulateSync(cfg RobustnessConfig, rng *rand.Rand) RobustnessStats {
	var s RobustnessStats
	s.Trials = cfg.Trials
	for trial := 0; trial < cfg.Trials; trial++ {
		retries := 0
		wall := time.Duration(0)
		for {
			s.Messages++
			s.JobExecutions++
			held := cfg.JobDuration + cfg.Link.MsgTime
			if cfg.Link.survives(rng, held) {
				wall += held
				s.Completed++
				s.TotalWall += wall
				break
			}
			// Connection broke somewhere inside the window: the client
			// learns nothing and must resubmit; the spent time is lost.
			s.MessagesLost++
			retries++
			wall += held / 2 // on average the break happens mid-window
			if retries > cfg.MaxRetries {
				break
			}
		}
	}
	return s
}
