package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"unicore/internal/pki"
)

func versionFixture(t *testing.T) (*pki.Authority, *pki.Credential) {
	t.Helper()
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.IssueUser("Version Tester", "FZJ")
	if err != nil {
		t.Fatal(err)
	}
	return ca, cred
}

// TestSealAtOpenVersioned round-trips every supported version and rejects
// the rest on both the seal and open sides.
func TestSealAtOpenVersioned(t *testing.T) {
	ca, cred := versionFixture(t)
	for ver := MinVersion; ver <= Version; ver++ {
		env, err := SealAt(cred, ver, MsgList, ListRequest{})
		if err != nil {
			t.Fatalf("SealAt(%d): %v", ver, err)
		}
		got, mt, _, dn, role, err := OpenVersioned(ca, env)
		if err != nil {
			t.Fatalf("OpenVersioned(v%d): %v", ver, err)
		}
		if got != ver || mt != MsgList || dn != cred.DN() || role != pki.RoleUser {
			t.Fatalf("v%d round trip: got ver=%d type=%s dn=%s role=%s", ver, got, mt, dn, role)
		}
	}
	if _, err := SealAt(cred, Version+1, MsgList, ListRequest{}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("SealAt(future) err = %v, want ErrBadVersion", err)
	}
	if _, err := SealAt(cred, 0, MsgList, ListRequest{}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("SealAt(0) err = %v, want ErrBadVersion", err)
	}
	// A forged future-version envelope is rejected by Open.
	env, err := SealAt(cred, Version, MsgList, ListRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(env, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = json.RawMessage("99")
	forged, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := Open(ca, forged); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("Open(v99) err = %v, want ErrBadVersion", err)
	}
}

// TestSubscribeRequiresV2 fails fast on a site that negotiated down.
func TestSubscribeRequiresV2(t *testing.T) {
	ca, cred := versionFixture(t)
	reg := NewRegistry()
	reg.Add("OLD", "https://gw.old")
	c := NewClient(NewInProc(), cred, ca, reg)
	c.setSiteVersion("OLD", 1)
	err := c.Call(context.Background(), "OLD", MsgSubscribe, SubscribeRequest{}, nil)
	if !errors.Is(err, ErrV1Peer) {
		t.Fatalf("subscribe to a v1 site: err = %v, want ErrV1Peer", err)
	}
}

// TestMetricsScrapeRequiresV2 extends the same guard to the telemetry
// scrape: a client never addresses MsgMetrics to a peer that negotiated
// down, so v1 interop is untouched by the observability additions.
func TestMetricsScrapeRequiresV2(t *testing.T) {
	ca, cred := versionFixture(t)
	reg := NewRegistry()
	reg.Add("OLD", "https://gw.old")
	c := NewClient(NewInProc(), cred, ca, reg)
	c.setSiteVersion("OLD", 1)
	err := c.Call(context.Background(), "OLD", MsgMetrics, MetricsRequest{}, nil)
	if !errors.Is(err, ErrV1Peer) {
		t.Fatalf("metrics scrape of a v1 site: err = %v, want ErrV1Peer", err)
	}
}
