package protocol

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"unicore/internal/pki"
)

// fuzzPKI lazily builds one CA + user credential per test binary; key
// generation is too slow to repeat per fuzz iteration.
var fuzzPKI struct {
	once sync.Once
	ca   *pki.Authority
	cred *pki.Credential
	err  error
}

func fuzzCreds(t testing.TB) (*pki.Authority, *pki.Credential) {
	fuzzPKI.once.Do(func() {
		ca, err := pki.NewAuthority("Fuzz-PCA")
		if err != nil {
			fuzzPKI.err = err
			return
		}
		cred, err := ca.IssueUser("Fuzz User", "Fuzz Org")
		if err != nil {
			fuzzPKI.err = err
			return
		}
		fuzzPKI.ca, fuzzPKI.cred = ca, cred
	})
	if fuzzPKI.err != nil {
		t.Fatalf("building fuzz credentials: %v", fuzzPKI.err)
	}
	return fuzzPKI.ca, fuzzPKI.cred
}

// FuzzOpenVersioned feeds arbitrary bytes to the envelope opener — the
// exact input an internet-facing gateway receives. Invariant: no panic, and
// anything it does accept carries an in-range version and a verified role.
func FuzzOpenVersioned(f *testing.F) {
	ca, cred := fuzzCreds(f)
	sealed, err := SealAt(cred, Version, MsgPoll, PollRequest{Job: "FZJ-1"})
	if err != nil {
		f.Fatalf("sealing seed envelope: %v", err)
	}
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":9,"type":"poll"}`))
	f.Add(sealed)
	tampered := bytes.Clone(sealed)
	tampered[len(tampered)/2] ^= 0x20
	f.Add(tampered)

	f.Fuzz(func(t *testing.T, data []byte) {
		ver, mt, raw, dn, role, err := OpenVersioned(ca, data)
		if err != nil {
			return
		}
		if ver < MinVersion || ver > Version {
			t.Fatalf("accepted out-of-range version %d", ver)
		}
		if mt == "" {
			t.Fatal("accepted an envelope with an empty message type")
		}
		if role != pki.RoleUser && role != pki.RoleServer {
			t.Fatalf("accepted unknown role %q", role)
		}
		if dn == "" {
			t.Fatal("accepted an envelope with no signer identity")
		}
		if !json.Valid(raw) {
			t.Fatal("accepted a non-JSON payload")
		}
	})
}

// fuzzBlob is a binary-safe round-trip payload (base64 through JSON).
type fuzzBlob struct {
	D []byte `json:"d"`
}

// FuzzSealOpenRoundTrip seals arbitrary payloads at both negotiated
// versions and requires the opener to return them verbatim with the right
// version, type, identity and role.
func FuzzSealOpenRoundTrip(f *testing.F) {
	f.Add(int64(2), []byte("payload"))
	f.Add(int64(1), []byte{})
	f.Add(int64(1), []byte{0x00, 0xff, 0xfe})
	f.Fuzz(func(t *testing.T, verSeed int64, blob []byte) {
		ca, cred := fuzzCreds(t)
		ver := MinVersion + int(((verSeed%2)+2)%2) // 1 or 2
		sealed, err := SealAt(cred, ver, MsgPoll, fuzzBlob{D: blob})
		if err != nil {
			t.Fatalf("SealAt(v%d): %v", ver, err)
		}
		gotVer, mt, raw, dn, role, err := OpenVersioned(ca, sealed)
		if err != nil {
			t.Fatalf("OpenVersioned rejected its own seal: %v", err)
		}
		if gotVer != ver || mt != MsgPoll {
			t.Fatalf("round trip changed envelope: v%d %q, want v%d %q", gotVer, mt, ver, MsgPoll)
		}
		if dn != cred.DN() || role != pki.RoleUser {
			t.Fatalf("round trip changed identity: %q %q", dn, role)
		}
		var out fuzzBlob
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("payload undecodable: %v", err)
		}
		if !bytes.Equal(out.D, blob) {
			t.Fatalf("payload mangled: %q != %q", out.D, blob)
		}
	})
}
