package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Protocol v3 replaces the one-POST-per-envelope hot path with a persistent
// multiplexed byte stream per (client, site) pair. The stream carries frames:
//
//	u32 BE  length   — covers kind + id + payload, at most MaxFramePayload+9
//	u8      kind     — frame discriminator (Frame* constants)
//	u64 BE  id       — correlation ID; replies carry the request's id
//	[]byte  payload  — kind-specific body
//
// The first exchange on every stream is a signed Hello envelope (sealed at
// v3) answered by a server-signed HelloOK: the connection is authenticated
// once and the caller's DN and role are bound to it, so the hot frames that
// follow ride without per-message signatures. Staged-upload integrity is
// preserved end to end by the running whole-transfer CRC that MsgPutCommit
// signs inside a regular envelope, and downloads are verified once against
// the whole-file CRC at completion.
const (
	// FrameHello opens a stream: payload is a signed v3 MsgHello envelope.
	FrameHello byte = 0x01
	// FrameHelloOK accepts a stream: payload is a signed MsgHelloReply
	// envelope; the client verifies it against the CA and the server role.
	FrameHelloOK byte = 0x02
	// FrameCall carries a binary-coded request (codec discriminator is the
	// first payload byte); FrameReply answers it under the same id.
	FrameCall  byte = 0x03
	FrameReply byte = 0x04
	// FramePut carries one raw staged-upload chunk; FramePutAck answers with
	// the contiguous watermark.
	FramePut    byte = 0x05
	FramePutAck byte = 0x06
	// FrameFetch requests a byte range of a job file; FrameData answers with
	// the raw bytes plus the whole-file size and CRC.
	FrameFetch byte = 0x07
	FrameData  byte = 0x08
	// FrameSub opens an event subscription; the server answers with one or
	// more FrameEvents batches under the same id. A one-shot subscription
	// (the Client.Call MsgSubscribe path) ends after a single batch; a push
	// subscription (Session.Watch) streams batches until the job terminates
	// or the client sends FrameSubStop.
	FrameSub     byte = 0x09
	FrameEvents  byte = 0x0A
	FrameSubStop byte = 0x0B
	// FrameError reports a per-request failure under the request's id:
	// payload is u8 code + error message. StreamErrUnsupported tells the
	// client to retry that request over the signed-envelope POST path.
	FrameError byte = 0x7F
)

// Stream error codes carried by FrameError payloads.
const (
	// StreamErrGeneric is a server-side request failure; the message mirrors
	// what the envelope path would have returned as an ErrorReply.
	StreamErrGeneric byte = 0
	// StreamErrUnsupported marks a request the server cannot serve over the
	// stream (old build, unknown frame kind or call code): the client falls
	// back to the envelope path for it.
	StreamErrUnsupported byte = 1
	// StreamErrBadFrame reports an undecodable frame; the connection is
	// poisoned and both ends drop it.
	StreamErrBadFrame byte = 2
)

// MaxFramePayload bounds a single frame payload — same ceiling as the
// gateway's HTTP request limit, and comfortably above staging.MaxChunkSize.
const MaxFramePayload = 64 << 20

// frameHeaderLen is the fixed prefix: u32 length + u8 kind + u64 id.
const frameHeaderLen = 4 + 1 + 8

// Frame is one decoded stream frame.
type Frame struct {
	Kind    byte
	ID      uint64
	Payload []byte
}

// Frame decode errors.
var (
	ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxFramePayload")
	ErrFrameShort    = errors.New("protocol: truncated frame")
)

// framePool recycles encode-side scratch buffers: the write path assembles
// header+payload into one buffer so a frame costs a single conn write and no
// steady-state allocation. Buffers above a sanity cap are dropped rather
// than pooled to keep the pool from pinning worst-case frames forever.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

const framePoolMax = 4 << 20

func getFrameBuf(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	return bp
}

func putFrameBuf(bp *[]byte) {
	if cap(*bp) <= framePoolMax {
		*bp = (*bp)[:0]
		framePool.Put(bp)
	}
}

// AppendFrame appends the encoded frame to b and returns the result.
func AppendFrame(b []byte, kind byte, id uint64, payload []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(1+8+len(payload)))
	b = append(b, kind)
	b = binary.BigEndian.AppendUint64(b, id)
	return append(b, payload...)
}

// writeFrame encodes and writes one frame as a single w.Write call, using a
// pooled scratch buffer. It must be called under the stream's write lock.
func writeFrame(w io.Writer, kind byte, id uint64, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	bp := getFrameBuf(frameHeaderLen + len(payload))
	*bp = AppendFrame((*bp)[:0], kind, id, payload)
	_, err := w.Write(*bp)
	putFrameBuf(bp)
	return err
}

// readFrame reads one frame. The payload is freshly allocated: ownership
// passes to the caller (reply payloads outlive the read loop).
func readFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 9 {
		return Frame{}, ErrFrameShort
	}
	if n > MaxFramePayload+9 {
		return Frame{}, ErrFrameTooLarge
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return Frame{}, fmt.Errorf("protocol: reading frame header: %w", err)
	}
	f := Frame{Kind: hdr[4], ID: binary.BigEndian.Uint64(hdr[5:])}
	if n > 9 {
		f.Payload = make([]byte, n-9)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("protocol: reading frame payload: %w", err)
		}
	}
	return f, nil
}

// DecodeFrame decodes one frame from the front of b, returning the frame and
// the number of bytes consumed. It is the pure-function twin of readFrame,
// exposed for the fuzz harness.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrFrameShort
	}
	n := binary.BigEndian.Uint32(b)
	if n < 9 {
		return Frame{}, 0, ErrFrameShort
	}
	if n > MaxFramePayload+9 {
		return Frame{}, 0, ErrFrameTooLarge
	}
	if uint32(len(b)-4) < n {
		return Frame{}, 0, ErrFrameShort
	}
	f := Frame{Kind: b[4], ID: binary.BigEndian.Uint64(b[5:13])}
	if n > 9 {
		f.Payload = append([]byte(nil), b[13:4+n]...)
	}
	return f, int(4 + n), nil
}

// streamError encodes a FrameError payload.
func streamError(code byte, msg string) []byte {
	p := make([]byte, 0, 1+len(msg))
	p = append(p, code)
	return append(p, msg...)
}

// parseStreamError decodes a FrameError payload.
func parseStreamError(p []byte) (code byte, msg string) {
	if len(p) == 0 {
		return StreamErrGeneric, "unknown stream error"
	}
	return p[0], string(p[1:])
}
