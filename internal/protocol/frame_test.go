package protocol

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/events"
)

// TestFrameRoundTrip pushes frames through the write and read halves and the
// pure decoder, including the empty-payload and max-boundary shapes.
func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Kind: FrameHello, ID: 0, Payload: []byte("hello")},
		{Kind: FrameCall, ID: 7, Payload: []byte{binConsign, 0}},
		{Kind: FramePutAck, ID: 1<<64 - 1, Payload: nil},
		{Kind: FrameData, ID: 42, Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
	}
	var buf bytes.Buffer
	for _, f := range cases {
		if err := writeFrame(&buf, f.Kind, f.ID, f.Payload); err != nil {
			t.Fatalf("writeFrame(%#x): %v", f.Kind, err)
		}
	}
	wire := append([]byte(nil), buf.Bytes()...)
	for _, want := range cases {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("readFrame = %#x/%d/%d bytes, want %#x/%d/%d bytes",
				got.Kind, got.ID, len(got.Payload), want.Kind, want.ID, len(want.Payload))
		}
	}
	// The pure decoder consumes the same bytes identically.
	for _, want := range cases {
		got, n, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("DecodeFrame mismatch for kind %#x", want.Kind)
		}
		wire = wire[n:]
	}
	if len(wire) != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", len(wire))
	}
}

// TestFrameDecodeRejects covers the malformed prefixes readFrame/DecodeFrame
// must refuse without over-reading.
func TestFrameDecodeRejects(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{0, 0}); !errors.Is(err, ErrFrameShort) {
		t.Fatalf("short header err = %v", err)
	}
	// Declared length below the kind+id minimum.
	if _, _, err := DecodeFrame([]byte{0, 0, 0, 4, 1, 2, 3, 4}); !errors.Is(err, ErrFrameShort) {
		t.Fatalf("undersized length err = %v", err)
	}
	// Declared length beyond the payload ceiling.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length err = %v", err)
	}
	if err := writeFrame(&bytes.Buffer{}, FramePut, 1, make([]byte, MaxFramePayload+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("writeFrame oversize err = %v", err)
	}
	// Truncated payload: header promises more than the buffer holds.
	trunc := AppendFrame(nil, FrameCall, 1, []byte("abcdef"))
	if _, _, err := DecodeFrame(trunc[:len(trunc)-2]); !errors.Is(err, ErrFrameShort) {
		t.Fatalf("truncated payload err = %v", err)
	}
}

// TestBinCodecRoundTrips round-trips every v3 binary-coded message shape and
// checks decoded values compare deeply equal to the originals — the same
// equality the event-stream recovery tests demand between the JSON and binary
// decodings of one event.
func TestBinCodecRoundTrips(t *testing.T) {
	now := time.Unix(0, 1234567890123456789).UTC()

	creq := ConsignRequest{ConsignID: "c-1", AJO: []byte(`{"job":1}`)}
	if got, err := decConsignRequest(encConsignRequest(nil, &creq)); err != nil || !reflect.DeepEqual(got, creq) {
		t.Fatalf("consign request: %+v, %v", got, err)
	}
	crep := ConsignReply{Job: "FZJ-000001", Accepted: true, Reason: "ok"}
	if got, err := decConsignReply(encConsignReply(nil, &crep)); err != nil || !reflect.DeepEqual(got, crep) {
		t.Fatalf("consign reply: %+v, %v", got, err)
	}

	preq := PollRequest{Job: "FZJ-000002"}
	if got, err := decPollRequest(encPollRequest(nil, &preq)); err != nil || !reflect.DeepEqual(got, preq) {
		t.Fatalf("poll request: %+v, %v", got, err)
	}
	prep := PollReply{Found: true, Summary: ajo.Summary{
		Job: "FZJ-000002", Status: ajo.StatusRunning, Total: 5, Done: 2, Failed: 1, Updated: now,
	}}
	if got, err := decPollReply(encPollReply(nil, &prep)); err != nil || !reflect.DeepEqual(got, prep) {
		t.Fatalf("poll reply: %+v, %v", got, err)
	}

	chunk := PutChunkRequest{Handle: "h-1", Index: 3, CRC: 0xDEADBEEF, Owner: "CN=alice", Data: []byte{1, 2, 3}}
	if got, err := decPutChunk(encPutChunk(nil, &chunk)); err != nil || !reflect.DeepEqual(got, chunk) {
		t.Fatalf("put chunk: %+v, %v", got, err)
	}
	ack := PutChunkReply{Received: 4}
	if got, err := decPutAck(encPutAck(nil, &ack)); err != nil || !reflect.DeepEqual(got, ack) {
		t.Fatalf("put ack: %+v, %v", got, err)
	}

	fetch := binFetch{Job: "FZJ-000003", File: "out.dat", Offset: 1 << 20, Limit: 256 << 10, Transfer: true}
	if got, err := decFetch(encFetch(nil, &fetch)); err != nil || !reflect.DeepEqual(got, fetch) {
		t.Fatalf("fetch: %+v, %v", got, err)
	}
	data := TransferReply{Found: true, Size: 1 << 20, CRC: 0xCAFE, Data: bytes.Repeat([]byte{9}, 512)}
	if got, err := decData(encData(nil, &data)); err != nil || !reflect.DeepEqual(got, data) {
		t.Fatalf("data: %+v, %v", got, err)
	}

	sub := binSub{SubscribeRequest: SubscribeRequest{
		Job: "FZJ-000004", Cursor: 17, Origins: map[string]uint64{"fzj": 9, "dwd": 3}, Max: 64, WaitMs: 30000,
	}, Once: true}
	if got, err := decSub(encSub(nil, &sub)); err != nil || !reflect.DeepEqual(got, sub) {
		t.Fatalf("sub: %+v, %v", got, err)
	}
	evs := binEvents{EventsReply: EventsReply{
		Cursor:  21,
		Origins: map[string]uint64{"fzj": 21},
		Gap:     false,
		Events: []events.Event{{
			Job: "FZJ-000004", Seq: 2, Global: 21, Origin: "fzj", Type: events.Type("status"),
			Action: ajo.ActionID("s1"), Status: ajo.StatusSuccessful, Reason: "done", Time: now, Terminal: true,
		}},
	}, End: true}
	if got, err := decEvents(encEvents(nil, &evs)); err != nil || !reflect.DeepEqual(got, evs) {
		t.Fatalf("events: %+v, %v", got, err)
	}

	// Zero time must round-trip to the zero time, not unix epoch.
	zrep := PollReply{Found: false}
	got, err := decPollReply(encPollReply(nil, &zrep))
	if err != nil || !got.Summary.Updated.IsZero() {
		t.Fatalf("zero time: %+v, %v", got, err)
	}

	// Truncated and trailing-garbage payloads must fail, never panic.
	enc := encPollReply(nil, &prep)
	if _, err := decPollReply(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated poll reply decoded")
	}
	if _, err := decPollReply(append(enc, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestCallHeaderRoundTrip covers the FrameCall prefix (code + trace).
func TestCallHeaderRoundTrip(t *testing.T) {
	body := []byte{1, 2, 3}
	p := encCallHeader(nil, binPoll, "trace-123")
	p = append(p, body...)
	code, trace, rest, err := splitCall(p)
	if err != nil || code != binPoll || trace != "trace-123" || !bytes.Equal(rest, body) {
		t.Fatalf("splitCall = %d %q %v %v", code, trace, rest, err)
	}
	if _, _, _, err := splitCall(nil); err == nil {
		t.Fatal("empty call payload accepted")
	}
}

// FuzzFrameDecode hammers the pure frame decoder with arbitrary bytes: it
// must never panic, never over-consume, and every successfully decoded frame
// must re-encode to exactly the consumed bytes.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 9, FrameHello, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(AppendFrame(nil, FrameCall, 99, []byte("payload")))
	f.Add(AppendFrame(nil, FrameError, 7, streamError(StreamErrUnsupported, "nope")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n < frameHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		reenc := AppendFrame(nil, frame.Kind, frame.ID, frame.Payload)
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", reenc, data[:n])
		}
	})
}
