package protocol

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/telemetry"
)

// Server-side half of the v3 frame protocol. ServeStreamConn owns the
// framing, the Hello authentication handshake, correlation-ID bookkeeping,
// and the push-subscription loops; the typed request handling stays with the
// StreamBackend (the gateway), which shares its implementation with the
// signed-envelope dispatch path. Compare streamConn/openStream in mux.go for
// the client half.

// defaultStreamConcurrency bounds how many request frames one stream serves
// at once — the server-side mirror of the client's in-flight window.
const defaultStreamConcurrency = 64

// maxStreamSubs bounds concurrently-open push subscriptions per stream; each
// holds a goroutine in the backend's long-poll.
const maxStreamSubs = 256

// defaultPushWaitMs is the per-round long-poll the server applies to a push
// subscription whose request did not name a wait: without it an idle
// subscription would spin on empty fetches.
const defaultPushWaitMs = 30_000

// StreamBackend is the typed server behind a v3 stream — implemented by the
// gateway, shared with its envelope dispatch. Identity (dn, asServer) is the
// stream's: it was verified once at Hello and binds every frame after.
type StreamBackend interface {
	// StreamHello authorises a verified Hello envelope before the handshake
	// completes (role policy, site-specific auth). An error refuses the
	// stream.
	StreamHello(o Opened) error
	StreamConsign(ctx context.Context, dn core.DN, asServer bool, req ConsignRequest) (ConsignReply, error)
	StreamPoll(ctx context.Context, dn core.DN, asServer bool, req PollRequest) (PollReply, error)
	StreamPutChunk(ctx context.Context, dn core.DN, asServer bool, req PutChunkRequest) (PutChunkReply, error)
	StreamFetch(ctx context.Context, dn core.DN, asServer bool, req FetchRequest) (TransferReply, error)
	StreamTransfer(ctx context.Context, dn core.DN, asServer bool, req TransferRequest) (TransferReply, error)
	// StreamEvents serves one cursor-resumable event batch (one long-poll
	// round). ServeStreamConn drives it once per one-shot subscription and in
	// a loop for push subscriptions.
	StreamEvents(ctx context.Context, dn core.DN, asServer bool, req SubscribeRequest) (EventsReply, error)
}

// StreamServerOpts configures ServeStreamConn.
type StreamServerOpts struct {
	// Cred signs the HelloOK reply (server role).
	Cred *pki.Credential
	// CA verifies the client's Hello envelope.
	CA *pki.Authority
	// Usite is the site this stream serves; a Hello addressed elsewhere is
	// refused (the stream equivalent of posting to the wrong gateway).
	Usite core.Usite
	// MaxVersion below 3 refuses every stream with an unsupported error —
	// how a version-capped gateway presents exactly like a pre-v3 build.
	MaxVersion int
	// OnFrame, when set, observes every inbound post-handshake frame kind —
	// the telemetry hook. Stream frames are deliberately not envelope
	// requests and never count into gateway Stats().ByType.
	OnFrame func(kind byte)
	// Concurrency overrides the per-stream request window (default
	// defaultStreamConcurrency).
	Concurrency int
}

// streamSession is one accepted v3 stream: single reader, mutex-serialised
// writer, bounded concurrent dispatch, per-subscription cancel registry.
type streamSession struct {
	conn     net.Conn
	be       StreamBackend
	ctx      context.Context
	dn       core.DN
	asServer bool

	wmu sync.Mutex // serialises frame writes
	sem chan struct{}
	wg  sync.WaitGroup

	subMu sync.Mutex
	subs  map[uint64]context.CancelFunc
}

// ServeStreamConn authenticates and serves one v3 stream until the
// connection dies or ctx is cancelled. It blocks; callers run it from the
// upgrade handler's goroutine (or a testbed pipe's).
func ServeStreamConn(ctx context.Context, conn net.Conn, be StreamBackend, opts StreamServerOpts) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	f, err := readFrame(conn)
	if err != nil || f.Kind != FrameHello {
		return
	}
	if opts.MaxVersion > 0 && opts.MaxVersion < 3 {
		writeFrame(conn, FrameError, f.ID, streamError(StreamErrUnsupported,
			fmt.Sprintf("%v: 3", ErrBadVersion)))
		return
	}
	o, err := OpenTraced(opts.CA, f.Payload)
	if err != nil {
		writeFrame(conn, FrameError, f.ID, streamError(StreamErrGeneric, err.Error()))
		return
	}
	var hr HelloRequest
	if o.Type != MsgHello || json.Unmarshal(o.Payload, &hr) != nil {
		writeFrame(conn, FrameError, f.ID, streamError(StreamErrGeneric, "malformed hello"))
		return
	}
	if hr.Usite != "" && opts.Usite != "" && hr.Usite != opts.Usite {
		writeFrame(conn, FrameError, f.ID, streamError(StreamErrGeneric,
			fmt.Sprintf("stream hello addressed to %s, this is %s", hr.Usite, opts.Usite)))
		return
	}
	if err := be.StreamHello(o); err != nil {
		writeFrame(conn, FrameError, f.ID, streamError(StreamErrGeneric, err.Error()))
		return
	}
	helloOK, err := SealTracedAt(opts.Cred, 3, o.Trace, MsgHelloReply, HelloReply{Usite: opts.Usite, Nonce: hr.Nonce})
	if err != nil {
		return
	}
	if writeFrame(conn, FrameHelloOK, f.ID, helloOK) != nil {
		return
	}
	conn.SetDeadline(time.Time{})

	conc := opts.Concurrency
	if conc <= 0 {
		conc = defaultStreamConcurrency
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Parent cancellation (server shutdown) must unblock the read loop.
	go func() {
		<-sctx.Done()
		conn.Close()
	}()
	s := &streamSession{
		conn:     conn,
		be:       be,
		ctx:      sctx,
		dn:       o.From,
		asServer: o.Role == pki.RoleServer,
		sem:      make(chan struct{}, conc),
		subs:     make(map[uint64]context.CancelFunc),
	}
	for {
		f, err := readFrame(conn)
		if err != nil {
			break
		}
		if opts.OnFrame != nil {
			opts.OnFrame(f.Kind)
		}
		switch f.Kind {
		case FrameCall, FramePut, FrameFetch:
			select {
			case s.sem <- struct{}{}:
				s.wg.Add(1)
				go func(f Frame) {
					defer s.wg.Done()
					defer func() { <-s.sem }()
					s.handle(f)
				}(f)
			case <-sctx.Done():
			}
		case FrameSub:
			s.startSub(f)
		case FrameSubStop:
			s.stopSub(f.ID)
		default:
			s.writeErr(f.ID, StreamErrUnsupported, fmt.Sprintf("unsupported frame kind %#x", f.Kind))
		}
		if sctx.Err() != nil {
			break
		}
	}
	cancel()
	s.wg.Wait()
}

// write sends one frame under the write lock; a failed write kills the
// connection, which unwinds the read loop and every subscription.
func (s *streamSession) write(kind byte, id uint64, payload []byte) error {
	s.wmu.Lock()
	err := writeFrame(s.conn, kind, id, payload)
	s.wmu.Unlock()
	if err != nil {
		s.conn.Close()
	}
	return err
}

func (s *streamSession) writeErr(id uint64, code byte, msg string) {
	s.write(FrameError, id, streamError(code, msg))
}

// reply encodes a typed reply through enc into a pooled buffer and sends it.
func (s *streamSession) reply(id uint64, kind byte, enc func([]byte) []byte) {
	bp := getFrameBuf(0)
	*bp = enc((*bp)[:0])
	s.write(kind, id, *bp)
	putFrameBuf(bp)
}

// handle serves one request/response frame. Backend errors travel as generic
// stream errors — the client surfaces them as *ErrorReply exactly like a
// sealed error envelope would.
func (s *streamSession) handle(f Frame) {
	switch f.Kind {
	case FrameCall:
		code, trace, body, err := splitCall(f.Payload)
		if err != nil {
			s.writeErr(f.ID, StreamErrBadFrame, err.Error())
			return
		}
		ctx := s.ctx
		if trace != "" {
			ctx = telemetry.WithTrace(ctx, trace)
		}
		switch code {
		case binConsign:
			req, err := decConsignRequest(body)
			if err != nil {
				s.writeErr(f.ID, StreamErrBadFrame, err.Error())
				return
			}
			rep, err := s.be.StreamConsign(ctx, s.dn, s.asServer, req)
			if err != nil {
				s.writeErr(f.ID, StreamErrGeneric, err.Error())
				return
			}
			s.reply(f.ID, FrameReply, func(b []byte) []byte { return encConsignReply(b, &rep) })
		case binPoll:
			req, err := decPollRequest(body)
			if err != nil {
				s.writeErr(f.ID, StreamErrBadFrame, err.Error())
				return
			}
			rep, err := s.be.StreamPoll(ctx, s.dn, s.asServer, req)
			if err != nil {
				s.writeErr(f.ID, StreamErrGeneric, err.Error())
				return
			}
			s.reply(f.ID, FrameReply, func(b []byte) []byte { return encPollReply(b, &rep) })
		default:
			s.writeErr(f.ID, StreamErrUnsupported, fmt.Sprintf("unsupported call code %d", code))
		}
	case FramePut:
		req, err := decPutChunk(f.Payload)
		if err != nil {
			s.writeErr(f.ID, StreamErrBadFrame, err.Error())
			return
		}
		// The decoded chunk data aliases this frame's read buffer, which is
		// freshly allocated per frame (never pooled) — safe to retain in the
		// spool.
		rep, err := s.be.StreamPutChunk(s.ctx, s.dn, s.asServer, req)
		if err != nil {
			s.writeErr(f.ID, StreamErrGeneric, err.Error())
			return
		}
		s.reply(f.ID, FramePutAck, func(b []byte) []byte { return encPutAck(b, &rep) })
	case FrameFetch:
		bf, err := decFetch(f.Payload)
		if err != nil {
			s.writeErr(f.ID, StreamErrBadFrame, err.Error())
			return
		}
		var rep TransferReply
		if bf.Transfer {
			rep, err = s.be.StreamTransfer(s.ctx, s.dn, s.asServer,
				TransferRequest{Job: bf.Job, File: bf.File, Offset: bf.Offset, Limit: bf.Limit})
		} else {
			rep, err = s.be.StreamFetch(s.ctx, s.dn, s.asServer,
				FetchRequest{Job: bf.Job, File: bf.File, Offset: bf.Offset, Limit: bf.Limit})
		}
		if err != nil {
			s.writeErr(f.ID, StreamErrGeneric, err.Error())
			return
		}
		s.reply(f.ID, FrameData, func(b []byte) []byte { return encData(b, &rep) })
	}
}

// startSub opens a subscription under the frame's correlation ID: one batch
// for a one-shot (the MsgSubscribe compatibility path), a server-driven push
// loop otherwise.
func (s *streamSession) startSub(f Frame) {
	sub, err := decSub(f.Payload)
	if err != nil {
		s.writeErr(f.ID, StreamErrBadFrame, err.Error())
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	s.subMu.Lock()
	if _, dup := s.subs[f.ID]; dup || len(s.subs) >= maxStreamSubs {
		s.subMu.Unlock()
		cancel()
		s.writeErr(f.ID, StreamErrBadFrame, "subscription id in use or too many subscriptions")
		return
	}
	s.subs[f.ID] = cancel
	s.subMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.subMu.Lock()
			delete(s.subs, f.ID)
			s.subMu.Unlock()
			cancel()
		}()
		s.runSub(ctx, f.ID, sub)
	}()
}

func (s *streamSession) stopSub(id uint64) {
	s.subMu.Lock()
	cancel, ok := s.subs[id]
	s.subMu.Unlock()
	if ok {
		cancel()
	}
}

// runSub drives one subscription. Each round is one backend long-poll; a
// push subscription advances its own cursors between rounds, skips empty
// batches, and ends (End=true) once it has delivered the terminal event of a
// job-scoped stream.
func (s *streamSession) runSub(ctx context.Context, id uint64, sub binSub) {
	req := sub.SubscribeRequest
	if !sub.Once && req.WaitMs <= 0 {
		req.WaitMs = defaultPushWaitMs
	}
	for {
		reply, err := s.be.StreamEvents(ctx, s.dn, s.asServer, req)
		if ctx.Err() != nil {
			return // cancelled: FrameSubStop, stream teardown, or shutdown
		}
		if err != nil {
			s.writeErr(id, StreamErrGeneric, err.Error())
			return
		}
		end := false
		if req.Job != "" {
			for i := range reply.Events {
				if reply.Events[i].Terminal && reply.Events[i].Job == req.Job {
					end = true
				}
			}
		}
		if sub.Once {
			s.writeEvents(id, binEvents{EventsReply: reply, End: end})
			return
		}
		if len(reply.Events) > 0 || reply.Gap {
			if !s.writeEvents(id, binEvents{EventsReply: reply, End: end}) {
				return
			}
		}
		if end {
			return
		}
		req.Cursor = reply.Cursor
		if req.Job == "" {
			req.Origins = reply.Origins
		}
	}
}

func (s *streamSession) writeEvents(id uint64, e binEvents) bool {
	bp := getFrameBuf(0)
	*bp = encEvents((*bp)[:0], &e)
	err := s.write(FrameEvents, id, *bp)
	putFrameBuf(bp)
	return err == nil
}
