// Package uudb implements the UNICORE user database. Paper §5.2: "a mapping
// process has been implemented in the form of a Java servlet which maps the
// user's distinguished name to the corresponding user-id. Each UNICORE site
// administration therefore maintains a user data base for the local
// mapping."
//
// The database is per Usite: for every certificate DN it records, per Vsite,
// the local login (uid, groups, default project). This eliminates the need
// for uniform uid/gid pairs across sites (§4) — the same DN may map to
// "alice" at FZJ and "a.ex23" at LRZ.
package uudb

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"unicore/internal/core"
	"unicore/internal/sim"
)

// Errors reported by lookups and updates.
var (
	ErrUnknownUser  = errors.New("uudb: distinguished name not registered")
	ErrNoMapping    = errors.New("uudb: no login mapping for vsite")
	ErrUserBlocked  = errors.New("uudb: user blocked at this site")
	ErrDuplicateMap = errors.New("uudb: mapping already present")
)

// Login is the local identity a DN incarnates to at one Vsite.
type Login struct {
	UID     string   `json:"uid"`
	Groups  []string `json:"groups,omitempty"`
	Project string   `json:"project,omitempty"` // the "user account group" of the AJO
}

// entry is the per-user record.
type entry struct {
	Email    string               `json:"email,omitempty"`
	Blocked  bool                 `json:"blocked,omitempty"`
	Mappings map[core.Vsite]Login `json:"mappings"`
	Extra    map[string]string    `json:"extra,omitempty"` // site-specific authentication hints (smart card, DCE)
}

// AuditRecord logs every successful or failed mapping decision, since the
// gateway is the site's security boundary.
type AuditRecord struct {
	Time    time.Time
	DN      core.DN
	Vsite   core.Vsite
	UID     string
	Allowed bool
	Reason  string
}

// DB is one site's user database. It is safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	usite   core.Usite
	clock   sim.Clock
	entries map[core.DN]*entry
	audit   []AuditRecord
}

// New creates an empty database for the given Usite. A nil clock uses the
// real clock.
func New(usite core.Usite, clock sim.Clock) *DB {
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &DB{
		usite:   usite,
		clock:   clock,
		entries: make(map[core.DN]*entry),
	}
}

// Usite returns the site this database belongs to.
func (db *DB) Usite() core.Usite { return db.usite }

// AddUser registers a DN (idempotent).
func (db *DB) AddUser(dn core.DN, email string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.entries[dn]; !ok {
		db.entries[dn] = &entry{Email: email, Mappings: map[core.Vsite]Login{}}
	}
}

// AddMapping installs the login for dn at vsite. The DN is registered if
// needed. Re-mapping an existing (dn, vsite) pair fails with ErrDuplicateMap;
// use ReplaceMapping for administrative updates.
func (db *DB) AddMapping(dn core.DN, vsite core.Vsite, login Login) error {
	if login.UID == "" {
		return fmt.Errorf("uudb: empty uid for %s at %s", dn, vsite)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[dn]
	if !ok {
		e = &entry{Mappings: map[core.Vsite]Login{}}
		db.entries[dn] = e
	}
	if _, dup := e.Mappings[vsite]; dup {
		return fmt.Errorf("%w: %s at %s", ErrDuplicateMap, dn, vsite)
	}
	e.Mappings[vsite] = login
	return nil
}

// ReplaceMapping overwrites (or creates) the login for dn at vsite.
func (db *DB) ReplaceMapping(dn core.DN, vsite core.Vsite, login Login) error {
	if login.UID == "" {
		return fmt.Errorf("uudb: empty uid for %s at %s", dn, vsite)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[dn]
	if !ok {
		e = &entry{Mappings: map[core.Vsite]Login{}}
		db.entries[dn] = e
	}
	e.Mappings[vsite] = login
	return nil
}

// RemoveMapping removes the mapping of dn at vsite (no-op when absent).
func (db *DB) RemoveMapping(dn core.DN, vsite core.Vsite) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if e, ok := db.entries[dn]; ok {
		delete(e.Mappings, vsite)
	}
}

// Block marks a user as blocked at this site; Map refuses until Unblock.
func (db *DB) Block(dn core.DN) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if e, ok := db.entries[dn]; ok {
		e.Blocked = true
	}
}

// Unblock clears the blocked flag.
func (db *DB) Unblock(dn core.DN) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if e, ok := db.entries[dn]; ok {
		e.Blocked = false
	}
}

// Map translates a DN to the local login at vsite, recording an audit entry
// either way. This is the gateway's central operation (paper §4.2).
func (db *DB) Map(dn core.DN, vsite core.Vsite) (Login, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec := AuditRecord{Time: db.clock.Now(), DN: dn, Vsite: vsite}
	e, ok := db.entries[dn]
	if !ok {
		rec.Reason = "unknown DN"
		db.audit = append(db.audit, rec)
		return Login{}, fmt.Errorf("%w: %s", ErrUnknownUser, dn)
	}
	if e.Blocked {
		rec.Reason = "blocked"
		db.audit = append(db.audit, rec)
		return Login{}, fmt.Errorf("%w: %s", ErrUserBlocked, dn)
	}
	login, ok := e.Mappings[vsite]
	if !ok {
		rec.Reason = "no mapping for vsite"
		db.audit = append(db.audit, rec)
		return Login{}, fmt.Errorf("%w: %s at %s", ErrNoMapping, dn, vsite)
	}
	rec.Allowed = true
	rec.UID = login.UID
	db.audit = append(db.audit, rec)
	return login, nil
}

// Users returns all registered DNs, sorted.
func (db *DB) Users() []core.DN {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]core.DN, 0, len(db.entries))
	for dn := range db.entries {
		out = append(out, dn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Vsites returns the Vsites dn can log into, sorted.
func (db *DB) Vsites(dn core.DN) []core.Vsite {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[dn]
	if !ok {
		return nil
	}
	out := make([]core.Vsite, 0, len(e.Mappings))
	for v := range e.Mappings {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Audit returns a copy of the audit log.
func (db *DB) Audit() []AuditRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]AuditRecord, len(db.audit))
	copy(out, db.audit)
	return out
}

// --- Persistence (the site administrator maintains the database) ---

type fileFormat struct {
	Usite   core.Usite         `json:"usite"`
	Entries map[core.DN]*entry `json:"entries"`
}

// MarshalJSON serialises the whole database.
func (db *DB) MarshalJSON() ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return json.Marshal(fileFormat{Usite: db.usite, Entries: db.entries})
}

// Load replaces the database contents from a serialised form.
func (db *DB) Load(data []byte) error {
	var ff fileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return fmt.Errorf("uudb: decoding database: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ff.Usite != "" {
		db.usite = ff.Usite
	}
	db.entries = ff.Entries
	if db.entries == nil {
		db.entries = map[core.DN]*entry{}
	}
	for _, e := range db.entries {
		if e.Mappings == nil {
			e.Mappings = map[core.Vsite]Login{}
		}
	}
	return nil
}
