package uudb

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"unicore/internal/core"
	"unicore/internal/sim"
)

var (
	alice = core.MakeDN("Alice", "FZJ", "DE")
	bob   = core.MakeDN("Bob", "RUS", "DE")
)

func newDB() *DB { return New("FZJ", sim.NewVirtualClock()) }

func TestMapHappyPath(t *testing.T) {
	db := newDB()
	if err := db.AddMapping(alice, "T3E", Login{UID: "alice", Groups: []string{"hpc"}, Project: "zam"}); err != nil {
		t.Fatal(err)
	}
	login, err := db.Map(alice, "T3E")
	if err != nil {
		t.Fatal(err)
	}
	if login.UID != "alice" || login.Project != "zam" {
		t.Fatalf("login = %+v", login)
	}
}

func TestMapUnknownDN(t *testing.T) {
	db := newDB()
	if _, err := db.Map(alice, "T3E"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapNoVsiteMapping(t *testing.T) {
	db := newDB()
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice"})
	if _, err := db.Map(alice, "SX4"); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("err = %v", err)
	}
}

func TestDifferentUIDsPerVsite(t *testing.T) {
	// The point of the mapping: no uniform uid/gid pairs needed (paper §4).
	db := newDB()
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice"})
	_ = db.AddMapping(alice, "VPP", Login{UID: "a_ex23"})
	l1, _ := db.Map(alice, "T3E")
	l2, _ := db.Map(alice, "VPP")
	if l1.UID == l2.UID {
		t.Fatal("expected distinct local uids per vsite")
	}
}

func TestDuplicateMappingRejected(t *testing.T) {
	db := newDB()
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice"})
	if err := db.AddMapping(alice, "T3E", Login{UID: "other"}); !errors.Is(err, ErrDuplicateMap) {
		t.Fatalf("err = %v", err)
	}
	if err := db.ReplaceMapping(alice, "T3E", Login{UID: "other"}); err != nil {
		t.Fatalf("ReplaceMapping: %v", err)
	}
	l, _ := db.Map(alice, "T3E")
	if l.UID != "other" {
		t.Fatalf("uid after replace = %q", l.UID)
	}
}

func TestEmptyUIDRejected(t *testing.T) {
	db := newDB()
	if err := db.AddMapping(alice, "T3E", Login{}); err == nil {
		t.Fatal("empty uid accepted")
	}
}

func TestBlockUnblock(t *testing.T) {
	db := newDB()
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice"})
	db.Block(alice)
	if _, err := db.Map(alice, "T3E"); !errors.Is(err, ErrUserBlocked) {
		t.Fatalf("blocked map err = %v", err)
	}
	db.Unblock(alice)
	if _, err := db.Map(alice, "T3E"); err != nil {
		t.Fatalf("unblocked map err = %v", err)
	}
}

func TestRemoveMapping(t *testing.T) {
	db := newDB()
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice"})
	db.RemoveMapping(alice, "T3E")
	if _, err := db.Map(alice, "T3E"); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("err after remove = %v", err)
	}
}

func TestUsersAndVsitesSorted(t *testing.T) {
	db := newDB()
	_ = db.AddMapping(bob, "VPP", Login{UID: "bob"})
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice"})
	_ = db.AddMapping(alice, "SX4", Login{UID: "alice2"})
	users := db.Users()
	if len(users) != 2 || users[0] != alice {
		t.Fatalf("Users = %v", users)
	}
	vsites := db.Vsites(alice)
	if fmt.Sprint(vsites) != "[SX4 T3E]" {
		t.Fatalf("Vsites = %v", vsites)
	}
	if got := db.Vsites(core.DN("CN=nobody")); got != nil {
		t.Fatalf("Vsites(unknown) = %v", got)
	}
}

func TestAuditTrail(t *testing.T) {
	db := newDB()
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice"})
	_, _ = db.Map(alice, "T3E") // allowed
	_, _ = db.Map(bob, "T3E")   // unknown
	db.Block(alice)
	_, _ = db.Map(alice, "T3E") // blocked
	recs := db.Audit()
	if len(recs) != 3 {
		t.Fatalf("audit entries = %d, want 3", len(recs))
	}
	if !recs[0].Allowed || recs[0].UID != "alice" {
		t.Fatalf("first record = %+v", recs[0])
	}
	if recs[1].Allowed || recs[1].Reason != "unknown DN" {
		t.Fatalf("second record = %+v", recs[1])
	}
	if recs[2].Allowed || recs[2].Reason != "blocked" {
		t.Fatalf("third record = %+v", recs[2])
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	db := newDB()
	_ = db.AddMapping(alice, "T3E", Login{UID: "alice", Groups: []string{"hpc"}, Project: "zam"})
	_ = db.AddMapping(bob, "VPP", Login{UID: "bob"})
	db.Block(bob)
	data, err := db.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	db2 := New("", sim.NewVirtualClock())
	if err := db2.Load(data); err != nil {
		t.Fatal(err)
	}
	if db2.Usite() != "FZJ" {
		t.Fatalf("usite after load = %q", db2.Usite())
	}
	l, err := db2.Map(alice, "T3E")
	if err != nil || l.UID != "alice" || l.Project != "zam" {
		t.Fatalf("mapping after load = %+v, %v", l, err)
	}
	if _, err := db2.Map(bob, "VPP"); !errors.Is(err, ErrUserBlocked) {
		t.Fatalf("blocked flag lost: %v", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	db := newDB()
	if err := db.Load([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// Property: Map succeeds exactly for the (dn, vsite) pairs added and not
// removed, for any interleaving of adds and removes.
func TestQuickMapReflectsMutations(t *testing.T) {
	type op struct {
		Add   bool
		User  uint8
		Vsite uint8
	}
	f := func(ops []op) bool {
		db := newDB()
		want := map[string]bool{}
		for _, o := range ops {
			dn := core.MakeDN(fmt.Sprintf("u%d", o.User%5), "O", "DE")
			vs := core.Vsite(fmt.Sprintf("v%d", o.Vsite%4))
			key := string(dn) + "|" + string(vs)
			if o.Add {
				_ = db.ReplaceMapping(dn, vs, Login{UID: "x"})
				want[key] = true
			} else {
				db.RemoveMapping(dn, vs)
				delete(want, key)
			}
		}
		for u := 0; u < 5; u++ {
			for v := 0; v < 4; v++ {
				dn := core.MakeDN(fmt.Sprintf("u%d", u), "O", "DE")
				vs := core.Vsite(fmt.Sprintf("v%d", v))
				_, err := db.Map(dn, vs)
				if want[string(dn)+"|"+string(vs)] != (err == nil) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
