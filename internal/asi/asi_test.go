package asi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/resources"
	"unicore/internal/testbed"
)

var t3e = core.Target{Usite: "FZJ", Vsite: "T3E"}

// pageWith returns a T3E resource page on which the given application
// interfaces' packages are installed (at the versions they require).
func pageWith(pkgs ...*Interface) *resources.Page {
	page := machine.CrayT3E(128).ResourcePage()
	page.Target = t3e
	for _, i := range pkgs {
		page.Software = append(page.Software, resources.Software{
			Kind: resources.KindPackage, Name: i.tmpl.Package, Version: i.tmpl.Version,
		})
	}
	return &page
}

func TestTemplateValidation(t *testing.T) {
	if _, err := New(Template{}); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("empty template: %v", err)
	}
	if _, err := New(Template{Package: "X"}); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("no renderer: %v", err)
	}
	render := func(map[string]string, int) (Rendered, error) { return Rendered{}, nil }
	if _, err := New(Template{Package: "X", Render: render,
		Fields: []Field{{Name: "a"}, {Name: "a"}}}); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("duplicate field: %v", err)
	}
	if _, err := New(Template{Package: "X", Render: render,
		Fields: []Field{{Name: ""}}}); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("unnamed field: %v", err)
	}
}

func TestGaussianBuildsValidJob(t *testing.T) {
	g := Gaussian94()
	page := pageWith(Gaussian94())
	input := []byte("%Chk=water\n#HF/6-31G* Opt\n\nwater optimisation\n\n0 1\nO ...\n")
	job, err := g.BuildJob("water", t3e, page,
		map[string]string{"route": "HF/6-31G*", "nproc": "4"}, input, "/results/water")
	if err != nil {
		t.Fatalf("BuildJob: %v", err)
	}
	if err := job.Validate(); err != nil {
		t.Fatalf("built job invalid: %v", err)
	}
	// Structure: import + script + two exports.
	if got := len(job.Actions); got != 4 {
		t.Fatalf("actions = %d, want 4", got)
	}
	var script *ajo.ScriptTask
	exports := 0
	for _, a := range job.Actions {
		switch v := a.(type) {
		case *ajo.ScriptTask:
			script = v
		case *ajo.ExportTask:
			exports++
			if !strings.HasPrefix(v.ToXspace, "/results/water/") {
				t.Fatalf("export destination = %q", v.ToXspace)
			}
		}
	}
	if exports != 2 {
		t.Fatalf("exports = %d, want 2 (log + checkpoint)", exports)
	}
	if script == nil || !strings.Contains(script.Script, "HF/6-31G*") {
		t.Fatalf("script does not carry the route:\n%s", script.Script)
	}
	if script.Resources.Processors != 4 {
		t.Fatalf("processors = %d, want 4", script.Resources.Processors)
	}
}

func TestParameterValidation(t *testing.T) {
	g := Gaussian94()
	page := pageWith(Gaussian94())
	input := []byte("#route\n")

	// Missing required field.
	_, err := g.BuildJob("x", t3e, page, nil, input, "/r")
	if !errors.Is(err, ErrMissingField) {
		t.Fatalf("missing route: %v", err)
	}
	// Unknown field.
	_, err = g.BuildJob("x", t3e, page,
		map[string]string{"route": "HF", "basis": "6-31G"}, input, "/r")
	if !errors.Is(err, ErrUnknownField) {
		t.Fatalf("unknown field: %v", err)
	}
	// Out-of-range value.
	_, err = g.BuildJob("x", t3e, page,
		map[string]string{"route": "HF", "nproc": "99"}, input, "/r")
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad nproc: %v", err)
	}
	// Non-integer value.
	_, err = g.BuildJob("x", t3e, page,
		map[string]string{"route": "HF", "nproc": "many"}, input, "/r")
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("non-integer nproc: %v", err)
	}
	// Empty input.
	_, err = g.BuildJob("x", t3e, page, map[string]string{"route": "HF"}, nil, "/r")
	if !errors.Is(err, ErrMissingInput) {
		t.Fatalf("empty input: %v", err)
	}
}

func TestPackageMustBeInstalled(t *testing.T) {
	g := Gaussian94()
	bare := pageWith() // no packages installed
	_, err := g.BuildJob("x", t3e, bare, map[string]string{"route": "HF"}, []byte("#"), "/r")
	if !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("uninstalled package: %v", err)
	}
	if _, err := g.BuildJob("x", t3e, nil, map[string]string{"route": "HF"}, []byte("#"), "/r"); !errors.Is(err, ErrNoResourcePage) {
		t.Fatalf("nil page: %v", err)
	}
}

func TestAnsysAnalysisTypes(t *testing.T) {
	a := Ansys()
	page := pageWith(Ansys())
	model := make([]byte, 64<<10)

	static, err := a.BuildJob("static", t3e, page, map[string]string{"analysis": "static"}, model, "/r")
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	transient, err := a.BuildJob("transient", t3e, page, map[string]string{"analysis": "transient"}, model, "/r")
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	// Transient analysis asks for more run time than static.
	if transient.MaxResources().RunTime <= static.MaxResources().RunTime {
		t.Fatalf("transient runtime %s not greater than static %s",
			transient.MaxResources().RunTime, static.MaxResources().RunTime)
	}
	// Invalid analysis type.
	if _, err := a.BuildJob("x", t3e, page, map[string]string{"analysis": "quantum"}, model, "/r"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad analysis: %v", err)
	}
}

func TestPamCrashScalesWithTimesteps(t *testing.T) {
	p := PamCrash()
	page := pageWith(PamCrash())
	mesh := make([]byte, 32<<10)
	short, err := p.BuildJob("short", t3e, page, map[string]string{"timesteps": "1000"}, mesh, "/r")
	if err != nil {
		t.Fatalf("short: %v", err)
	}
	long, err := p.BuildJob("long", t3e, page, map[string]string{"timesteps": "100000"}, mesh, "/r")
	if err != nil {
		t.Fatalf("long: %v", err)
	}
	if long.MaxResources().RunTime <= short.MaxResources().RunTime {
		t.Fatal("more timesteps did not increase the requested run time")
	}
}

func TestOversizedRunRefusedByPage(t *testing.T) {
	p := PamCrash()
	// The SX-4 has 16 CPUs; a 64-CPU crash run cannot fit.
	page := machine.NECSX4(16).ResourcePage()
	page.Target = core.Target{Usite: "DWD", Vsite: "SX4"}
	page.Software = append(page.Software, resources.Software{Kind: resources.KindPackage, Name: "PAM-CRASH", Version: "1997"})
	_, err := p.BuildJob("big", page.Target, &page,
		map[string]string{"timesteps": "5000", "cpus": "64"}, make([]byte, 1024), "/r")
	if err == nil {
		t.Fatal("64-CPU run accepted on a 16-CPU machine")
	}
	if !strings.Contains(err.Error(), "does not fit") {
		t.Fatalf("err = %v", err)
	}
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 3 {
		t.Fatalf("catalog = %d interfaces, want 3", len(cat))
	}
	names := map[string]bool{}
	for _, i := range cat {
		names[i.Package()] = true
		if len(i.FieldNames()) == 0 {
			t.Fatalf("%s declares no fields", i.Package())
		}
	}
	for _, want := range []string{"Gaussian94", "ANSYS", "PAM-CRASH"} {
		if !names[want] {
			t.Fatalf("catalog missing %s", want)
		}
	}
}

func TestFieldDefaults(t *testing.T) {
	g := Gaussian94()
	page := pageWith(Gaussian94())
	job, err := g.BuildJob("defaults", t3e, page, map[string]string{"route": "MP2/cc-pVDZ"}, []byte("#"), "/r")
	if err != nil {
		t.Fatalf("BuildJob: %v", err)
	}
	req := job.MaxResources()
	if req.Processors != 1 || req.MemoryMB != 64 {
		t.Fatalf("defaults not applied: %+v", req)
	}
	if req.RunTime < 30*time.Minute {
		t.Fatalf("runtime floor missing: %s", req.RunTime)
	}
}

// TestGaussianRunsEndToEnd pushes an ASI-built job through the whole stack:
// the site administrator installs the package on the Vsite's resource page,
// the interface builds the job in application terms, and the deployment
// runs it to completion with both result files exported.
func TestGaussianRunsEndToEnd(t *testing.T) {
	d, err := testbed.SingleSite("CHEM", "CLUSTER", 8)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Grete Gauss", "Chemie", "ggauss")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	// Install the package at the Vsite (what unicore-idb -software does).
	vs, ok := d.Sites["CHEM"].NJS.Vsite("CLUSTER")
	if !ok {
		t.Fatal("no CLUSTER vsite")
	}
	vs.Page.Software = append(vs.Page.Software, resources.Software{
		Kind: resources.KindPackage, Name: "Gaussian94", Version: "94",
	})

	target := core.Target{Usite: "CHEM", Vsite: "CLUSTER"}
	input := []byte("%Chk=water\n#HF/6-31G* Opt\n\nwater\n\n0 1\nO 0 0 0\nH 0 0 1\nH 0 1 0\n")
	job, err := Gaussian94().BuildJob("water opt", target, &vs.Page,
		map[string]string{"route": "HF/6-31G*", "nproc": "2"}, input, "/results/gauss")
	if err != nil {
		t.Fatalf("BuildJob: %v", err)
	}
	id, err := d.JPA(user).Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	d.Run(1_000_000)

	o, err := d.JMC(user).Outcome("CHEM", id)
	if err != nil {
		t.Fatalf("Outcome: %v", err)
	}
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s\n%s", o.Status, client.Display(o))
	}
	// Both characteristic result files were exported to the Xspace.
	for _, f := range []string{"output.log", "checkpoint.chk"} {
		if _, err := vs.Space.ReadXspace("/results/gauss/" + f); err != nil {
			t.Fatalf("exported %s missing: %v", f, err)
		}
	}
}
