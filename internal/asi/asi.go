// Package asi implements application-specific interfaces — the first
// enhancement the paper's outlook calls for: "application specific
// interfaces for standard packages like Ansys or Pamcrash will make life
// easier especially for users from industry" (§6). The idea follows
// WebSubmit (§2): users describe a run in application terms (route section,
// solver, model file) instead of batch terms; the interface validates the
// parameters, checks the package is installed at the destination Vsite
// (resource page, §5.4), estimates resources, and emits an ordinary
// abstract job — import input, run the package, export the results.
package asi

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/resources"
)

// Errors reported when building application jobs.
var (
	ErrUnknownField   = errors.New("asi: unknown parameter")
	ErrMissingField   = errors.New("asi: required parameter missing")
	ErrBadValue       = errors.New("asi: invalid parameter value")
	ErrNotInstalled   = errors.New("asi: package not installed at the destination")
	ErrMissingInput   = errors.New("asi: application input missing")
	ErrBadTemplate    = errors.New("asi: malformed template")
	ErrNoResourcePage = errors.New("asi: no resource page for the destination")
)

// Field declares one application-level parameter of a template.
type Field struct {
	Name     string
	Required bool
	Default  string
	// Validate, when set, checks a provided value.
	Validate func(value string) error
	// Help describes the field in the GUI.
	Help string
}

// Rendered is what a template produces for one run.
type Rendered struct {
	// Script is the batch script invoking the package.
	Script string
	// InputName is the Uspace file name the staged input is written to.
	InputName string
	// Outputs are Uspace files to export after the run.
	Outputs []string
	// Request is the estimated resource demand.
	Request resources.Request
}

// Template describes one standard package's interface.
type Template struct {
	// Package and Version name the resource-page software entry the
	// destination must carry (kind "package").
	Package string
	Version string
	Fields  []Field
	// Render turns validated parameters and the input size into the run.
	Render func(params map[string]string, inputLen int) (Rendered, error)
}

// Interface is a validated, ready-to-use application interface.
type Interface struct {
	tmpl   Template
	fields map[string]Field
}

// New validates a template.
func New(tmpl Template) (*Interface, error) {
	if tmpl.Package == "" {
		return nil, fmt.Errorf("%w: empty package name", ErrBadTemplate)
	}
	if tmpl.Render == nil {
		return nil, fmt.Errorf("%w: %s has no renderer", ErrBadTemplate, tmpl.Package)
	}
	fields := make(map[string]Field, len(tmpl.Fields))
	for _, f := range tmpl.Fields {
		if f.Name == "" {
			return nil, fmt.Errorf("%w: %s has an unnamed field", ErrBadTemplate, tmpl.Package)
		}
		if _, dup := fields[f.Name]; dup {
			return nil, fmt.Errorf("%w: %s declares %q twice", ErrBadTemplate, tmpl.Package, f.Name)
		}
		fields[f.Name] = f
	}
	return &Interface{tmpl: tmpl, fields: fields}, nil
}

// Package returns the interfaced package name.
func (i *Interface) Package() string { return i.tmpl.Package }

// FieldNames lists the declared parameters, sorted.
func (i *Interface) FieldNames() []string {
	out := make([]string, 0, len(i.fields))
	for n := range i.fields {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// resolve validates user parameters against the fields and fills defaults.
func (i *Interface) resolve(params map[string]string) (map[string]string, error) {
	out := make(map[string]string, len(i.fields))
	for name, value := range params {
		f, ok := i.fields[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownField, name, i.FieldNames())
		}
		if f.Validate != nil {
			if err := f.Validate(value); err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrBadValue, name, err)
			}
		}
		out[name] = value
	}
	for name, f := range i.fields {
		if _, set := out[name]; set {
			continue
		}
		if f.Required && f.Default == "" {
			return nil, fmt.Errorf("%w: %q", ErrMissingField, name)
		}
		if f.Default != "" {
			out[name] = f.Default
		}
	}
	return out, nil
}

// BuildJob assembles the abstract job for one application run: the input
// (carried inline from the workstation, §5.6) is imported, the package is
// invoked, and every declared output is exported to the given Xspace
// directory. page must be the destination's resource page; the build fails
// if the package is not installed there — the seamlessness of §5.4 at
// application level.
func (i *Interface) BuildJob(name string, target core.Target, page *resources.Page, params map[string]string, input []byte, exportDir string) (*ajo.AbstractJob, error) {
	if page == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoResourcePage, target)
	}
	if !page.HasSoftware(resources.KindPackage, i.tmpl.Package, i.tmpl.Version) {
		return nil, fmt.Errorf("%w: %s %s at %s", ErrNotInstalled, i.tmpl.Package, i.tmpl.Version, target)
	}
	if len(input) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrMissingInput, i.tmpl.Package)
	}
	resolved, err := i.resolve(params)
	if err != nil {
		return nil, err
	}
	run, err := i.tmpl.Render(resolved, len(input))
	if err != nil {
		return nil, fmt.Errorf("asi: rendering %s run: %w", i.tmpl.Package, err)
	}
	if run.InputName == "" || run.Script == "" {
		return nil, fmt.Errorf("%w: %s rendered an empty run", ErrBadTemplate, i.tmpl.Package)
	}
	if err := page.Check(run.Request); err != nil {
		return nil, fmt.Errorf("asi: %s run does not fit %s: %w", i.tmpl.Package, target, err)
	}

	b := client.NewJob(name, target)
	imp := b.ImportBytes("stage "+run.InputName, input, run.InputName)
	app := b.Script(i.tmpl.Package+" run", run.Script, run.Request)
	b.After(imp, app)
	for _, out := range run.Outputs {
		exp := b.Export("export "+out, out, exportDir+"/"+out)
		b.After(app, exp)
	}
	return b.Build()
}

// --- validation helpers for the built-in templates ---

// intBetween validates an integer field within [lo, hi].
func intBetween(lo, hi int) func(string) error {
	return func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("want an integer, got %q", v)
		}
		if n < lo || n > hi {
			return fmt.Errorf("%d outside [%d,%d]", n, lo, hi)
		}
		return nil
	}
}

// oneOf validates an enumerated field.
func oneOf(allowed ...string) func(string) error {
	return func(v string) error {
		for _, a := range allowed {
			if v == a {
				return nil
			}
		}
		return fmt.Errorf("%q not one of %v", v, allowed)
	}
}

func atoi(s string, def int) int {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	return def
}

// cpuFor estimates processor time from an input size and a per-KiB cost.
func cpuFor(inputLen int, perKiB time.Duration, floor time.Duration) time.Duration {
	d := time.Duration(inputLen/1024) * perKiB
	if d < floor {
		d = floor
	}
	return d
}
