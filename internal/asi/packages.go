package asi

import (
	"fmt"
	"time"

	"unicore/internal/resources"
)

// The built-in interfaces for the packages the paper names (§2 WebSubmit's
// Gaussian 94; §6 "standard packages like Ansys or Pamcrash"). Each renders
// a deterministic batch script in the simulated shell's vocabulary: the
// input is parsed (`cat`), compute is charged (`cpu`), and the package's
// characteristic result files are produced (`write`).

// Gaussian94 builds the computational-chemistry interface. Parameters:
//
//	route   — the calculation route, e.g. "HF/6-31G*" (required)
//	nproc   — shared-memory processors, 1..8 (default 1)
//	memMB   — dynamic memory, 16..512 MB (default 64)
func Gaussian94() *Interface {
	i, err := New(Template{
		Package: "Gaussian94",
		Version: "94",
		Fields: []Field{
			{Name: "route", Required: true, Help: "calculation route section, e.g. HF/6-31G*"},
			{Name: "nproc", Default: "1", Validate: intBetween(1, 8), Help: "%NProcShared"},
			{Name: "memMB", Default: "64", Validate: intBetween(16, 512), Help: "%Mem in MB"},
		},
		Render: func(p map[string]string, inputLen int) (Rendered, error) {
			nproc := atoi(p["nproc"], 1)
			cpu := cpuFor(inputLen, 2*time.Minute, 10*time.Minute)
			script := fmt.Sprintf(
				"echo Entering Gaussian System\necho route: %s\ncat input.com > parsed.tmp\ncpu %s\nwrite output.log %d\nwrite checkpoint.chk %d\necho Normal termination of Gaussian 94\n",
				p["route"], cpu, 32<<10, 128<<10)
			return Rendered{
				Script:    script,
				InputName: "input.com",
				Outputs:   []string{"output.log", "checkpoint.chk"},
				Request: resources.Request{
					Processors: nproc,
					RunTime:    3*cpu + 30*time.Minute,
					MemoryMB:   atoi(p["memMB"], 64),
					TempDiskMB: 256,
				},
			}, nil
		},
	})
	if err != nil {
		panic(err) // static template: cannot fail
	}
	return i
}

// Ansys builds the structural-analysis interface. Parameters:
//
//	analysis — "static", "modal", or "transient" (default static)
//	cpus     — processors, 1..16 (default 4)
func Ansys() *Interface {
	i, err := New(Template{
		Package: "ANSYS",
		Version: "5.5",
		Fields: []Field{
			{Name: "analysis", Default: "static", Validate: oneOf("static", "modal", "transient"),
				Help: "analysis type"},
			{Name: "cpus", Default: "4", Validate: intBetween(1, 16), Help: "processors"},
		},
		Render: func(p map[string]string, inputLen int) (Rendered, error) {
			cpus := atoi(p["cpus"], 4)
			base := cpuFor(inputLen, time.Minute, 15*time.Minute)
			if p["analysis"] == "transient" {
				base *= 4
			}
			script := fmt.Sprintf(
				"echo ANSYS 5.5 %s analysis\ncat model.db > parsed.tmp\ncpu %s\nwrite results.rst %d\nwrite solve.out %d\necho ANSYS run completed\n",
				p["analysis"], base, 512<<10, 16<<10)
			return Rendered{
				Script:    script,
				InputName: "model.db",
				Outputs:   []string{"results.rst", "solve.out"},
				Request: resources.Request{
					Processors: cpus,
					RunTime:    3*base + time.Hour,
					MemoryMB:   128,
					TempDiskMB: 1024,
				},
			}, nil
		},
	})
	if err != nil {
		panic(err)
	}
	return i
}

// PamCrash builds the crash-simulation interface. Parameters:
//
//	timesteps — explicit integration steps, 1000..1000000 (required)
//	cpus      — processors, 1..64 (default 16)
func PamCrash() *Interface {
	i, err := New(Template{
		Package: "PAM-CRASH",
		Version: "1997",
		Fields: []Field{
			{Name: "timesteps", Required: true, Validate: intBetween(1000, 1000000),
				Help: "explicit time steps"},
			{Name: "cpus", Default: "16", Validate: intBetween(1, 64), Help: "processors"},
		},
		Render: func(p map[string]string, inputLen int) (Rendered, error) {
			steps := atoi(p["timesteps"], 0)
			cpus := atoi(p["cpus"], 16)
			// Cost scales with steps; the mesh size (input) sets the floor.
			cpu := time.Duration(steps/1000)*time.Minute + cpuFor(inputLen, 30*time.Second, 5*time.Minute)
			script := fmt.Sprintf(
				"echo PAM-CRASH explicit solver, %d steps\ncat crash.pc > parsed.tmp\ncpu %s\nwrite d3plot %d\nwrite crash.out %d\necho solver finished\n",
				steps, cpu, 1<<20, 64<<10)
			return Rendered{
				Script:    script,
				InputName: "crash.pc",
				Outputs:   []string{"d3plot", "crash.out"},
				Request: resources.Request{
					Processors: cpus,
					RunTime:    3*cpu + time.Hour,
					MemoryMB:   128,
					TempDiskMB: 4096,
				},
			}, nil
		},
	})
	if err != nil {
		panic(err)
	}
	return i
}

// Catalog lists the built-in application interfaces.
func Catalog() []*Interface {
	return []*Interface{Gaussian94(), Ansys(), PamCrash()}
}
