package njs

import (
	"fmt"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/codine"
	"unicore/internal/core"
	"unicore/internal/incarnation"
	"unicore/internal/telemetry"
)

// startActionLocked dispatches one ready action by class.
func (n *NJS) startActionLocked(uj *unicoreJob, a ajo.Action) {
	o := uj.outcomes[a.ID()]
	o.Started = n.clock.Now()
	switch t := a.(type) {
	case *ajo.ImportTask:
		n.startImportLocked(uj, t)
	case *ajo.ExportTask:
		n.startExportLocked(uj, t)
	case *ajo.TransferTask:
		n.startTransferLocked(uj, t)
	case *ajo.AbstractJob:
		n.startSubJobLocked(uj, t)
	default:
		if a.Kind().IsExecutable() {
			n.startBatchLocked(uj, a)
			return
		}
		n.completeActionLocked(uj, a.ID(), ajo.StatusFailed,
			fmt.Sprintf("unsupported action class %s", a.Kind()))
	}
}

// deferComplete finishes an action after a virtual delay, modelling the
// staging time of file operations. The callback locks only the job it
// advances.
func (n *NJS) deferComplete(uj *unicoreJob, aid ajo.ActionID, d time.Duration, status ajo.Status, reason string) {
	jobID := uj.id
	n.clock.AfterFunc(d, func() {
		if n.dead.Load() {
			return
		}
		j, ok := n.job(jobID)
		if !ok {
			return
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		n.completeActionLocked(j, aid, status, reason)
		n.finalizeIfDoneLocked(j)
	})
}

// startImportLocked stages data into the job's Uspace (§5.6: from the user's
// workstation — carried inside the AJO or pre-staged into the Vsite's spool
// by the chunked upload protocol — or from the Vsite Xspace).
func (n *NJS) startImportLocked(uj *unicoreJob, t *ajo.ImportTask) {
	o := uj.outcomes[t.ID()]
	o.Status = ajo.StatusRunning
	var size int64
	var err error
	switch {
	case t.Source.XspacePath != "":
		err = uj.vsite.Space.ImportXspace(uj.id, t.To, t.Source.XspacePath)
		if err == nil {
			if fi, statErr := uj.vsite.Space.StatJobFile(uj.id, t.To); statErr == nil {
				size = fi.Size
			}
		}
	case t.Source.Staged != "":
		// Consume the committed staged upload from this Vsite's spool. The
		// entry stays (marked consumed) until the next sweep, so a crash
		// recovery that re-dispatches this import finds the bytes again.
		start := time.Now()
		var data []byte
		data, _, err = n.spools[uj.vsite.Name].Consume(uj.owner, t.Source.Staged)
		if err == nil {
			size = int64(len(data))
			err = uj.vsite.Space.WriteJobFile(uj.id, t.To, data)
		}
		if err == nil {
			n.tel.Histogram("staging_import_seconds", telemetry.ScaleSeconds).ObserveSince(start)
			n.tel.Histogram("staging_import_bytes", telemetry.ScaleBytes).Observe(float64(size))
		}
	default:
		size = int64(len(t.Source.Inline))
		err = uj.vsite.Space.ImportInline(uj.id, t.To, t.Source.Inline)
	}
	if err != nil {
		n.deferComplete(uj, t.ID(), fileOpLatency, ajo.StatusFailed, fmt.Sprintf("import: %v", err))
		return
	}
	n.deferComplete(uj, t.ID(), localCopyDelay(size), ajo.StatusSuccessful, "")
}

// startExportLocked copies a result to permanent Xspace storage (§5.6).
func (n *NJS) startExportLocked(uj *unicoreJob, t *ajo.ExportTask) {
	o := uj.outcomes[t.ID()]
	o.Status = ajo.StatusRunning
	fi, err := uj.vsite.Space.Export(uj.id, t.From, t.ToXspace)
	if err != nil {
		n.deferComplete(uj, t.ID(), fileOpLatency, ajo.StatusFailed, fmt.Sprintf("export: %v", err))
		return
	}
	o.Files = append(o.Files, ajo.FileRecord{Path: fi.Path, Size: fi.Size, CRC: fi.CRC})
	n.deferComplete(uj, t.ID(), localCopyDelay(fi.Size), ajo.StatusSuccessful, "")
}

// startTransferLocked pulls files from a sibling action's Uspace into this
// job's Uspace — the §5.6 Uspace-to-Uspace transfer. Local sources are a
// copy; remote sources go through the peer gateway over https.
func (n *NJS) startTransferLocked(uj *unicoreJob, t *ajo.TransferTask) {
	o := uj.outcomes[t.ID()]
	o.Status = ajo.StatusRunning

	var total int64
	copyOne := func(file string) (int64, error) {
		data, err := n.readActionFileLocked(uj, t.FromAction, file)
		if err != nil {
			return 0, err
		}
		if err := uj.vsite.Space.WriteJobFile(uj.id, file, data); err != nil {
			return 0, err
		}
		return int64(len(data)), nil
	}
	for _, f := range t.Files {
		nbytes, err := copyOne(f)
		if err != nil {
			n.deferComplete(uj, t.ID(), fileOpLatency, ajo.StatusFailed,
				fmt.Sprintf("transfer %s from %s: %v", f, t.FromAction, err))
			return
		}
		o.Files = append(o.Files, ajo.FileRecord{Path: f, Size: nbytes})
		total += nbytes
	}
	delay := localCopyDelay(total)
	if _, remote := uj.remote[t.FromAction]; remote {
		delay = httpsTransferDelay(total)
	}
	n.deferComplete(uj, t.ID(), delay, ajo.StatusSuccessful, "")
}

// readActionFileLocked reads a file from the Uspace that backs an action:
// the enclosing job's own Uspace for plain tasks, a child job's Uspace for
// locally expanded sub-jobs, or a remote fetch for sub-jobs at peer Usites.
// A child's vsite is immutable and its Space is thread-safe, so the child's
// lock is not needed.
func (n *NJS) readActionFileLocked(uj *unicoreJob, aid ajo.ActionID, file string) ([]byte, error) {
	if ref, ok := uj.remote[aid]; ok {
		return n.fetchRemoteFile(ref.usite, ref.job, file)
	}
	if childID, ok := uj.children[aid]; ok {
		child, ok := n.job(childID)
		if !ok {
			return nil, fmt.Errorf("%w: child %s", ErrUnknownJob, childID)
		}
		return child.vsite.Space.ReadJobFile(childID, file)
	}
	return uj.vsite.Space.ReadJobFile(uj.id, file)
}

// startBatchLocked incarnates an executable task and submits it to the
// Vsite's batch subsystem.
func (n *NJS) startBatchLocked(uj *unicoreJob, a ajo.Action) {
	o := uj.outcomes[a.ID()]
	inc, err := incarnation.Incarnate(a, uj.login, uj.vsite.Table)
	if err != nil {
		n.completeActionLocked(uj, a.ID(), ajo.StatusFailed, fmt.Sprintf("incarnation: %v", err))
		return
	}
	spec := inc.Spec
	spec.Script = inc.Script
	spec.FS = uj.vsite.Space.FS()
	spec.WorkDir = uj.jobDir
	jobID, aid := uj.id, a.ID()
	// Completion is delivered through the clock: Cancel (and, on saturated
	// machines, Submit) can reach a terminal state synchronously while this
	// NJS still holds its lock, so a direct callback would self-deadlock.
	spec.Done = func(_ codine.JobID, res codine.Result) {
		n.clock.AfterFunc(0, func() { n.onBatchDone(jobID, aid, res) })
	}
	bid, err := uj.vsite.RMS.Submit(spec)
	if err != nil {
		n.completeActionLocked(uj, a.ID(), ajo.StatusFailed, fmt.Sprintf("batch submit: %v", err))
		return
	}
	o.Status = ajo.StatusQueued
	uj.batch[a.ID()] = bid
	n.recordActionStart(uj, a.ID(), ajo.StatusQueued)
	n.regMu.Lock()
	n.batchIndex[batchKey{uj.vsite.Name, bid}] = actionRef{uj.id, a.ID()}
	n.regMu.Unlock()
}

// onBatchStarted flips an outcome to RUNNING when the batch system
// dispatches it (drives the JMC's yellow icons).
func (n *NJS) onBatchStarted(vsite core.Vsite, bid codine.JobID) {
	if n.dead.Load() {
		return
	}
	n.regMu.RLock()
	ref, ok := n.batchIndex[batchKey{vsite, bid}]
	n.regMu.RUnlock()
	if !ok {
		return
	}
	uj, ok := n.job(ref.job)
	if !ok {
		return
	}
	uj.mu.Lock()
	defer uj.mu.Unlock()
	if o := uj.outcomes[ref.action]; o != nil && !o.Status.Terminal() {
		o.Status = ajo.StatusRunning
		n.recordActionStart(uj, ref.action, ajo.StatusRunning)
	}
}

// onBatchDone collects a finished batch job: "collect the standard output
// and error files from the batch jobs belonging to one UNICORE job and make
// them available to the user" (§5.5).
func (n *NJS) onBatchDone(jobID core.JobID, aid ajo.ActionID, res codine.Result) {
	if n.dead.Load() {
		return
	}
	uj, ok := n.job(jobID)
	if !ok {
		return
	}
	uj.mu.Lock()
	defer uj.mu.Unlock()
	if bid, inFlight := uj.batch[aid]; inFlight {
		n.regMu.Lock()
		delete(n.batchIndex, batchKey{uj.vsite.Name, bid})
		n.regMu.Unlock()
		delete(uj.batch, aid)
	}
	o := uj.outcomes[aid]
	if o == nil || o.Status.Terminal() {
		return
	}
	o.Stdout = []byte(res.Stdout)
	o.Stderr = []byte(res.Stderr)
	o.ExitCode = res.ExitCode
	var status ajo.Status
	reason := res.Reason
	switch res.State {
	case codine.StateDone:
		status = ajo.StatusSuccessful
	case codine.StateCancelled:
		status = ajo.StatusAborted
	default:
		status = ajo.StatusFailed
	}
	n.completeActionLocked(uj, aid, status, reason)
	n.finalizeIfDoneLocked(uj)
}

// propagateFilesLocked implements the §5.7 dependency guarantee: "each
// dependency can be augmented by the names of the files to be transferred
// from one to the other. UNICORE then guarantees that the specified data
// sets created by the predecessor are available to the successor."
func (n *NJS) propagateFilesLocked(uj *unicoreJob, before ajo.ActionID) error {
	for _, dep := range uj.job.Dependencies {
		if dep.Before != before || len(dep.Files) == 0 {
			continue
		}
		after, ok := uj.job.Find(dep.After)
		if !ok {
			continue
		}
		for _, file := range dep.Files {
			data, err := n.readActionFileLocked(uj, before, file)
			if err != nil {
				return fmt.Errorf("file %q from %s: %w", file, before, err)
			}
			if _, isSub := after.(*ajo.AbstractJob); isSub {
				// The successor is a job group: stage the file into it as
				// an injected import when it is consigned.
				uj.injections[dep.After] = append(uj.injections[dep.After], injection{name: file, data: data})
				n.recordInject(uj, dep.After, file, data)
				continue
			}
			// The successor is a plain task sharing this job's Uspace:
			// materialise the file there (no-op when already present with
			// identical content).
			if existing, err := uj.vsite.Space.ReadJobFile(uj.id, file); err == nil && string(existing) == string(data) {
				continue
			}
			if err := uj.vsite.Space.WriteJobFile(uj.id, file, data); err != nil {
				return fmt.Errorf("staging %q for %s: %w", file, dep.After, err)
			}
		}
	}
	return nil
}
