package njs_test

// External-package tests for the NJS's distributed machinery (§5.5/§5.6):
// remote sub-job consignment through peer gateways, chunked NJS–NJS file
// transfers, peer failures, refusals, and lost contact. These live in
// njs_test so they can assemble full two-site rigs with the gateway package
// (which itself imports njs).

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/gateway"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// pair is a two-Usite rig ("A" and "B") wired over an in-process network.
type pair struct {
	clock *sim.VirtualClock
	ca    *pki.Authority
	net   *protocol.InProc
	reg   *protocol.Registry
	njsA  *njs.NJS
	njsB  *njs.NJS
	gwB   *gateway.Gateway
	alice *pki.Credential
}

func newPair(t *testing.T) *pair {
	t.Helper()
	clock := sim.NewVirtualClock()
	ca, err := pki.NewAuthority("PAIR-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	alice, err := ca.IssueUser("Alice", "ORG")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	net := protocol.NewInProc()
	reg := protocol.NewRegistry()
	p := &pair{clock: clock, ca: ca, net: net, reg: reg, alice: alice}

	mk := func(usite core.Usite, host string) (*njs.NJS, *gateway.Gateway) {
		cred, err := ca.IssueServer("gw."+string(usite), host)
		if err != nil {
			t.Fatalf("IssueServer: %v", err)
		}
		users := uudb.New(usite, clock)
		users.AddUser(alice.DN(), "")
		if err := users.AddMapping(alice.DN(), "T3E", uudb.Login{UID: "alice"}); err != nil {
			t.Fatalf("AddMapping: %v", err)
		}
		n, err := njs.New(njs.Config{
			Usite:  usite,
			Clock:  clock,
			Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(64)}},
		})
		if err != nil {
			t.Fatalf("njs.New: %v", err)
		}
		gw, err := gateway.New(gateway.Config{Usite: usite, Cred: cred, CA: ca, Users: users, NJS: n})
		if err != nil {
			t.Fatalf("gateway.New: %v", err)
		}
		n.SetPeers(protocol.NewClient(net, cred, ca, reg))
		net.Register(host, gw)
		reg.Add(usite, "https://"+host)
		return n, gw
	}
	p.njsA, _ = mk("A", "gw.a")
	p.njsB, p.gwB = mk("B", "gw.b")
	return p
}

// parentWithRemote builds a parent job at A whose sub-job runs at B and
// hands back `file` of `size` bytes.
func parentWithRemote(file string, size int) *ajo.AbstractJob {
	sub := &ajo.AbstractJob{
		Header: ajo.Header{ActionID: "sub", ActionName: "remote part"},
		Target: core.Target{Usite: "B", Vsite: "T3E"},
		Actions: ajo.ActionList{&ajo.ScriptTask{
			TaskBase: ajo.TaskBase{
				Header:    ajo.Header{ActionID: "produce", ActionName: "produce"},
				Resources: resources.Request{Processors: 1, RunTime: time.Hour},
			},
			Script: "write " + file + " " + itoa(size) + "\n",
		}},
	}
	return &ajo.AbstractJob{
		Header: ajo.Header{ActionID: ajo.NewID("parent"), ActionName: "distributed"},
		Target: core.Target{Usite: "A", Vsite: "T3E"},
		Actions: ajo.ActionList{
			sub,
			&ajo.TransferTask{
				Header:     ajo.Header{ActionID: "pull", ActionName: "pull"},
				FromAction: "sub",
				Files:      []string{file},
			},
		},
		Dependencies: []ajo.Dependency{{Before: "sub", After: "pull"}},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestRemoteSubJobChunkedTransfer(t *testing.T) {
	p := newPair(t)
	// 600 KiB forces three 256 KiB transfer chunks through the peer gateway.
	const size = 600 << 10
	id, err := p.njsA.Consign(context.Background(), p.alice.DN(), "", parentWithRemote("big.dat", size))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	p.clock.RunUntilIdle(1_000_000)
	o, found, err := p.njsA.Outcome(p.alice.DN(), false, id)
	if err != nil || !found {
		t.Fatalf("Outcome: %v found=%v", err, found)
	}
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s\n%s", o.Status, o.Render(4))
	}
	// The transferred file landed in the parent's Uspace, intact.
	vs, _ := p.njsA.Vsite("T3E")
	data, err := vs.Space.ReadJobFile(id, "big.dat")
	if err != nil {
		t.Fatalf("ReadJobFile: %v", err)
	}
	if len(data) != size {
		t.Fatalf("transferred %d bytes, want %d", len(data), size)
	}
	// The remote side accounted for exactly one batch job.
	vsB, _ := p.njsB.Vsite("T3E")
	if recs := vsB.RMS.Accounting(); len(recs) != 1 {
		t.Fatalf("B accounting = %d records, want 1", len(recs))
	}
}

func TestRemoteSubJobPeerUnreachable(t *testing.T) {
	p := newPair(t)
	// Point B's registry entry at a host nobody serves.
	p.reg.Add("B", "https://gw.nowhere")
	id, err := p.njsA.Consign(context.Background(), p.alice.DN(), "", parentWithRemote("x.dat", 16))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	p.clock.RunUntilIdle(1_000_000)
	o, _, _ := p.njsA.Outcome(p.alice.DN(), false, id)
	if o.Status != ajo.StatusFailed {
		t.Fatalf("status = %s, want FAILED", o.Status)
	}
	sub, _ := o.Find("sub")
	if !strings.Contains(sub.Reason, "consigning to B") {
		t.Fatalf("reason = %q", sub.Reason)
	}
	pull, _ := o.Find("pull")
	if pull.Status != ajo.StatusNotDone {
		t.Fatalf("dependent transfer = %s, want NOT_DONE", pull.Status)
	}
}

func TestRemoteSubJobPeerRefuses(t *testing.T) {
	p := newPair(t)
	job := parentWithRemote("x.dat", 16)
	// Address a Vsite B does not have: B's NJS refuses the consignment.
	job.Actions[0].(*ajo.AbstractJob).Target.Vsite = "SX4"
	id, err := p.njsA.Consign(context.Background(), p.alice.DN(), "", job)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	p.clock.RunUntilIdle(1_000_000)
	o, _, _ := p.njsA.Outcome(p.alice.DN(), false, id)
	sub, _ := o.Find("sub")
	if sub.Status != ajo.StatusFailed || !strings.Contains(sub.Reason, "refused") {
		t.Fatalf("sub = %s (%q), want refusal", sub.Status, sub.Reason)
	}
}

// failAfterConsign forwards the first request (the consignment) and then
// drops the peer connection for every later poll.
type failAfterConsign struct {
	inner http.Handler
	seen  int
}

func (f *failAfterConsign) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.seen++
	if f.seen <= 1 {
		f.inner.ServeHTTP(w, r)
		return
	}
	http.Error(w, "site unreachable", http.StatusBadGateway)
}

func TestRemoteSubJobLostContact(t *testing.T) {
	p := newPair(t)
	p.net.Register("gw.b", &failAfterConsign{inner: p.gwB})
	id, err := p.njsA.Consign(context.Background(), p.alice.DN(), "", parentWithRemote("x.dat", 16))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	// The poll loop retries every 2 virtual seconds and gives up after its
	// failure budget; drive well past it.
	p.clock.RunUntilIdle(5_000_000)
	o, _, _ := p.njsA.Outcome(p.alice.DN(), false, id)
	if o.Status != ajo.StatusFailed {
		t.Fatalf("status = %s, want FAILED after losing the peer", o.Status)
	}
	sub, _ := o.Find("sub")
	if !strings.Contains(sub.Reason, "lost contact with B") {
		t.Fatalf("reason = %q", sub.Reason)
	}
}

func TestAbortReachesRemoteSubJob(t *testing.T) {
	p := newPair(t)
	job := parentWithRemote("x.dat", 16)
	// Make the remote part long so it is still running when we abort.
	job.Actions[0].(*ajo.AbstractJob).Actions[0].(*ajo.ScriptTask).Script = "cpu 5h\nwrite x.dat 16\n"
	id, err := p.njsA.Consign(context.Background(), p.alice.DN(), "", job)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	// Let the consignment land and the remote job start.
	p.clock.Advance(5 * time.Second)
	if err := p.njsA.Control(p.alice.DN(), false, id, ajo.OpAbort); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	p.clock.RunUntilIdle(1_000_000)

	o, _, _ := p.njsA.Outcome(p.alice.DN(), false, id)
	if o.Status != ajo.StatusAborted {
		t.Fatalf("parent status = %s, want ABORTED", o.Status)
	}
	// The peer's job must be terminal too — the abort crossed the sites.
	list, err := p.njsB.List(p.alice.DN())
	if err != nil {
		t.Fatalf("List at B: %v", err)
	}
	if len(list) != 1 {
		t.Fatalf("B has %d jobs, want 1", len(list))
	}
	if !list[0].Status.Terminal() {
		t.Fatalf("remote job still %s after cross-site abort", list[0].Status)
	}
}

func TestRemoteDependencyFileInjection(t *testing.T) {
	p := newPair(t)
	// Parent produces a file at A, hands it to a sub-job at B via the §5.7
	// dependency-file guarantee; the sub-job consumes it.
	job := &ajo.AbstractJob{
		Header: ajo.Header{ActionID: ajo.NewID("handover"), ActionName: "handover"},
		Target: core.Target{Usite: "A", Vsite: "T3E"},
		Actions: ajo.ActionList{
			&ajo.ScriptTask{
				TaskBase: ajo.TaskBase{
					Header:    ajo.Header{ActionID: "make", ActionName: "make"},
					Resources: resources.Request{Processors: 1, RunTime: time.Hour},
				},
				Script: "write handoff.dat 2048\n",
			},
			&ajo.AbstractJob{
				Header: ajo.Header{ActionID: "remote", ActionName: "remote consumer"},
				Target: core.Target{Usite: "B", Vsite: "T3E"},
				Actions: ajo.ActionList{&ajo.ScriptTask{
					TaskBase: ajo.TaskBase{
						Header:    ajo.Header{ActionID: "use", ActionName: "use"},
						Resources: resources.Request{Processors: 1, RunTime: time.Hour},
					},
					Script: "cat handoff.dat > consumed.tmp\necho used\n",
				}},
			},
		},
		Dependencies: []ajo.Dependency{{Before: "make", After: "remote", Files: []string{"handoff.dat"}}},
	}
	id, err := p.njsA.Consign(context.Background(), p.alice.DN(), "", job)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	p.clock.RunUntilIdle(1_000_000)
	o, _, _ := p.njsA.Outcome(p.alice.DN(), false, id)
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s\n%s", o.Status, o.Render(4))
	}
	// The staged import must appear inside the remote group's outcome.
	remote, ok := o.Find("remote")
	if !ok {
		t.Fatal("no outcome for the remote group")
	}
	staged := false
	for _, c := range remote.Children {
		if strings.Contains(c.Name, "handoff.dat") {
			staged = true
		}
	}
	if !staged {
		t.Fatalf("no staged dependency import in remote outcome:\n%s", remote.Render(3))
	}
}
