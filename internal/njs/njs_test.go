package njs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// newNJS builds a two-Vsite NJS with a permissive login mapper.
func newNJS(t *testing.T) (*NJS, *sim.VirtualClock) {
	t.Helper()
	clock := sim.NewVirtualClock()
	n, err := New(Config{
		Usite: "FZJ",
		Clock: clock,
		Vsites: []VsiteConfig{
			{Name: "T3E", Profile: machine.CrayT3E(64)},
			{Name: "CLUSTER", Profile: machine.GenericCluster(8)},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.SetLoginMapper(func(dn core.DN, v core.Vsite) (uudb.Login, error) {
		return uudb.Login{UID: "u_" + strings.ToLower(dn.CommonName())}, nil
	})
	return n, clock
}

var alice = core.MakeDN("Alice", "FZJ", "DE")

func script(id, text string) *ajo.ScriptTask {
	return &ajo.ScriptTask{
		TaskBase: ajo.TaskBase{
			Header:    ajo.Header{ActionID: ajo.ActionID(id), ActionName: id},
			Resources: resources.Request{Processors: 1, RunTime: time.Hour},
		},
		Script: text,
	}
}

func job(name string, vsite core.Vsite, actions []ajo.Action, deps []ajo.Dependency) *ajo.AbstractJob {
	return &ajo.AbstractJob{
		Header:       ajo.Header{ActionID: ajo.NewID("job"), ActionName: name},
		Target:       core.Target{Usite: "FZJ", Vsite: vsite},
		Actions:      actions,
		Dependencies: deps,
	}
}

func TestConsignValidation(t *testing.T) {
	n, _ := newNJS(t)

	// Wrong Usite.
	j := job("wrong", "T3E", []ajo.Action{script("s", "echo hi\n")}, nil)
	j.Target.Usite = "ZIB"
	if _, err := n.Consign(context.Background(), alice, "", j); !errors.Is(err, ErrWrongUsite) {
		t.Fatalf("err = %v, want ErrWrongUsite", err)
	}

	// Unknown Vsite.
	j2 := job("novsite", "SX4", []ajo.Action{script("s", "echo hi\n")}, nil)
	if _, err := n.Consign(context.Background(), alice, "", j2); !errors.Is(err, ErrUnknownVsite) {
		t.Fatalf("err = %v, want ErrUnknownVsite", err)
	}

	// Resource admission: the T3E page caps processors at 64.
	huge := script("s", "echo hi\n")
	huge.Resources.Processors = 6500
	j3 := job("huge", "T3E", []ajo.Action{huge}, nil)
	if _, err := n.Consign(context.Background(), alice, "", j3); err == nil {
		t.Fatal("oversized request admitted")
	}

	// No mapper.
	n2, _ := newNJS(t)
	n2.SetLoginMapper(nil)
	j4 := job("nomap", "T3E", []ajo.Action{script("s", "echo hi\n")}, nil)
	if _, err := n2.Consign(context.Background(), alice, "", j4); !errors.Is(err, ErrNoMapper) {
		t.Fatalf("err = %v, want ErrNoMapper", err)
	}
}

func TestDependencyOrderAndFileGuarantee(t *testing.T) {
	n, clock := newNJS(t)
	j := job("chain", "T3E", []ajo.Action{
		script("produce", "write data.bin 1024\necho produced\n"),
		script("consume", "cat data.bin > sink.tmp\necho consumed\n"),
	}, []ajo.Dependency{{Before: "produce", After: "consume", Files: []string{"data.bin"}}})
	id, err := n.Consign(context.Background(), alice, "", j)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.RunUntilIdle(100000)
	o, found, err := n.Outcome(alice, false, id)
	if err != nil || !found {
		t.Fatalf("Outcome: %v found=%v", err, found)
	}
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("job status = %s\n%s", o.Status, o.Render(3))
	}
	prod, _ := o.Find("produce")
	cons, _ := o.Find("consume")
	if prod.Finished.After(cons.Started) {
		t.Fatalf("consume started %s before produce finished %s", cons.Started, prod.Finished)
	}
}

func TestFailureCascadesNotDone(t *testing.T) {
	n, clock := newNJS(t)
	j := job("cascade", "T3E", []ajo.Action{
		script("bad", "fail deliberate\n"),
		script("next", "echo never\n"),
		script("last", "echo never either\n"),
	}, []ajo.Dependency{
		{Before: "bad", After: "next"},
		{Before: "next", After: "last"},
	})
	id, err := n.Consign(context.Background(), alice, "", j)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.RunUntilIdle(100000)
	o, _, _ := n.Outcome(alice, false, id)
	if o.Status != ajo.StatusFailed {
		t.Fatalf("job status = %s, want FAILED", o.Status)
	}
	bad, _ := o.Find("bad")
	if bad.Status != ajo.StatusFailed {
		t.Fatalf("bad = %s", bad.Status)
	}
	for _, dep := range []ajo.ActionID{"next", "last"} {
		d, _ := o.Find(dep)
		if d.Status != ajo.StatusNotDone {
			t.Fatalf("%s = %s, want NOT_DONE", dep, d.Status)
		}
	}
}

func TestMissingDependencyFileFailsSuccessor(t *testing.T) {
	n, clock := newNJS(t)
	j := job("missing", "T3E", []ajo.Action{
		script("produce", "echo no file written\n"),
		script("consume", "cat ghost.bin\n"),
	}, []ajo.Dependency{{Before: "produce", After: "consume", Files: []string{"ghost.bin"}}})
	id, _ := n.Consign(context.Background(), alice, "", j)
	clock.RunUntilIdle(100000)
	o, _, _ := n.Outcome(alice, false, id)
	cons, _ := o.Find("consume")
	if cons.Status != ajo.StatusNotDone {
		t.Fatalf("consume = %s, want NOT_DONE (dependency file missing)", cons.Status)
	}
	if !strings.Contains(cons.Reason, "dependency files unavailable") {
		t.Fatalf("reason = %q", cons.Reason)
	}
}

func TestImportExecuteExport(t *testing.T) {
	n, clock := newNJS(t)
	payload := []byte("input-payload")
	j := job("staging", "T3E", []ajo.Action{
		&ajo.ImportTask{
			Header: ajo.Header{ActionID: "imp", ActionName: "import"},
			Source: ajo.ImportSource{Inline: payload},
			To:     "in.dat",
		},
		script("work", "cat in.dat > out.dat\necho worked\n"),
		&ajo.ExportTask{
			Header:   ajo.Header{ActionID: "exp", ActionName: "export"},
			From:     "out.dat",
			ToXspace: "/archive/out.dat",
		},
	}, []ajo.Dependency{
		{Before: "imp", After: "work"},
		{Before: "work", After: "exp"},
	})
	id, err := n.Consign(context.Background(), alice, "", j)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.RunUntilIdle(100000)
	o, _, _ := n.Outcome(alice, false, id)
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s\n%s", o.Status, o.Render(3))
	}
	// The export must exist in the Vsite's Xspace with the same content.
	vs, _ := n.Vsite("T3E")
	got, err := vs.Space.ReadXspace("/archive/out.dat")
	if err != nil {
		t.Fatalf("ReadXspace: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("exported = %q, want %q", got, payload)
	}
	exp, _ := o.Find("exp")
	if len(exp.Files) != 1 || exp.Files[0].Size != int64(len(payload)) {
		t.Fatalf("export file records = %+v", exp.Files)
	}
}

func TestLocalSubJobOnAnotherVsite(t *testing.T) {
	n, clock := newNJS(t)
	sub := job("sub", "CLUSTER", []ajo.Action{script("pre", "write p.dat 64\necho pre done\n")}, nil)
	parent := job("parent", "T3E", []ajo.Action{
		sub,
		&ajo.TransferTask{
			Header:     ajo.Header{ActionID: "tr", ActionName: "fetch"},
			FromAction: sub.ID(),
			Files:      []string{"p.dat"},
		},
		script("main", "cat p.dat > sink.tmp\necho main done\n"),
	}, []ajo.Dependency{
		{Before: sub.ID(), After: "tr"},
		{Before: "tr", After: "main"},
	})
	id, err := n.Consign(context.Background(), alice, "", parent)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.RunUntilIdle(1000000)
	o, _, _ := n.Outcome(alice, false, id)
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s\n%s", o.Status, o.Render(4))
	}
	// The sub-job ran on the CLUSTER Vsite: its accounting is there.
	vs, _ := n.Vsite("CLUSTER")
	if recs := vs.RMS.Accounting(); len(recs) != 1 {
		t.Fatalf("CLUSTER accounting = %d records, want 1", len(recs))
	}
}

func TestHoldResumeDispatching(t *testing.T) {
	n, clock := newNJS(t)
	j := job("held", "T3E", []ajo.Action{
		script("a", "echo a\n"),
		script("b", "echo b\n"),
	}, []ajo.Dependency{{Before: "a", After: "b"}})
	id, _ := n.Consign(context.Background(), alice, "", j)
	if err := n.Control(alice, false, id, ajo.OpHold); err != nil {
		t.Fatalf("Hold: %v", err)
	}
	clock.RunUntilIdle(100000)
	// Task a was already in flight and finishes; b must stay pending.
	poll, err := n.Poll(alice, false, id)
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if poll.Summary.Status.Terminal() {
		t.Fatalf("held job finished: %s", poll.Summary.Status)
	}
	if err := n.Control(alice, false, id, ajo.OpResume); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	clock.RunUntilIdle(100000)
	poll, _ = n.Poll(alice, false, id)
	if poll.Summary.Status != ajo.StatusSuccessful {
		t.Fatalf("status after resume = %s", poll.Summary.Status)
	}
}

func TestAbortMarksActionsAborted(t *testing.T) {
	n, clock := newNJS(t)
	j := job("abort", "T3E", []ajo.Action{
		script("long", "cpu 5h\necho never\n"),
	}, nil)
	id, _ := n.Consign(context.Background(), alice, "", j)
	clock.Advance(time.Second)
	if err := n.Control(alice, false, id, ajo.OpAbort); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	clock.RunUntilIdle(100000)
	o, _, _ := n.Outcome(alice, false, id)
	if o.Status != ajo.StatusAborted {
		t.Fatalf("status = %s, want ABORTED", o.Status)
	}
	long, _ := o.Find("long")
	if long.Status != ajo.StatusAborted {
		t.Fatalf("task = %s, want ABORTED", long.Status)
	}
	// Aborting again is an error.
	if err := n.Control(alice, false, id, ajo.OpAbort); err == nil {
		t.Fatal("double abort succeeded")
	}
}

func TestAuthorization(t *testing.T) {
	n, clock := newNJS(t)
	j := job("mine", "T3E", []ajo.Action{script("s", "echo hi\n")}, nil)
	id, _ := n.Consign(context.Background(), alice, "", j)
	clock.RunUntilIdle(100000)

	bob := core.MakeDN("Bob", "RUS", "DE")
	if _, err := n.Poll(bob, false, id); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("Poll as bob: %v, want ErrNotAuthorized", err)
	}
	if _, _, err := n.Outcome(bob, false, id); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("Outcome as bob: %v, want ErrNotAuthorized", err)
	}
	if err := n.Control(bob, false, id, ajo.OpAbort); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("Control as bob: %v, want ErrNotAuthorized", err)
	}
	// A peer server may poll on behalf of the consigning site.
	if _, err := n.Poll(bob, true, id); err != nil {
		t.Fatalf("Poll as server: %v", err)
	}
}

func TestConsignIdempotent(t *testing.T) {
	n, clock := newNJS(t)
	j := job("idem", "T3E", []ajo.Action{script("s", "echo hi\n")}, nil)
	id1, err := n.Consign(context.Background(), alice, "key-1", j)
	if err != nil {
		t.Fatalf("Consign 1: %v", err)
	}
	id2, err := n.Consign(context.Background(), alice, "key-1", j)
	if err != nil {
		t.Fatalf("Consign 2: %v", err)
	}
	if id1 != id2 {
		t.Fatalf("idempotent consign returned %s then %s", id1, id2)
	}
	clock.RunUntilIdle(100000)
	jobs, _ := n.List(alice)
	if len(jobs) != 1 {
		t.Fatalf("list = %d jobs, want 1", len(jobs))
	}
}

func TestVsiteLoads(t *testing.T) {
	n, clock := newNJS(t)
	loads := n.VsiteLoads()
	if len(loads) != 2 {
		t.Fatalf("loads = %v", loads)
	}
	if loads["T3E"].Load != 0 || loads["T3E"].Pending != 0 {
		t.Fatalf("idle loads = %+v", loads["T3E"])
	}
	// Fill the 8-node cluster with a 8-proc 2h job plus one waiting.
	mk := func(id string) *ajo.AbstractJob {
		s := script(id, "cpu 1h\necho done\n")
		s.Resources.Processors = 8
		jj := job(id, "CLUSTER", []ajo.Action{s}, nil)
		return jj
	}
	if _, err := n.Consign(context.Background(), alice, "", mk("fill1")); err != nil {
		t.Fatalf("Consign fill1: %v", err)
	}
	if _, err := n.Consign(context.Background(), alice, "", mk("fill2")); err != nil {
		t.Fatalf("Consign fill2: %v", err)
	}
	clock.Advance(time.Second)
	loads = n.VsiteLoads()
	if loads["CLUSTER"].Load != 1 {
		t.Fatalf("cluster load = %v, want 1", loads["CLUSTER"].Load)
	}
	if loads["CLUSTER"].Pending != 1 {
		t.Fatalf("cluster pending = %d, want 1", loads["CLUSTER"].Pending)
	}
	if n.Load() <= 0 {
		t.Fatal("overall load should be positive")
	}
}

func TestListOrdering(t *testing.T) {
	n, clock := newNJS(t)
	var ids []core.JobID
	for _, name := range []string{"first", "second", "third"} {
		clock.Advance(time.Minute)
		id, err := n.Consign(context.Background(), alice, "", job(name, "T3E", []ajo.Action{script("s-"+name, "echo x\n")}, nil))
		if err != nil {
			t.Fatalf("Consign %s: %v", name, err)
		}
		ids = append(ids, id)
	}
	clock.RunUntilIdle(100000)
	list, _ := n.List(alice)
	if len(list) != 3 {
		t.Fatalf("list = %d", len(list))
	}
	// Newest first.
	if list[0].Job != ids[2] || list[2].Job != ids[0] {
		t.Fatalf("order = %v, want newest first %v", list, ids)
	}
}

func TestCompileLinkExecuteOnT3E(t *testing.T) {
	n, clock := newNJS(t)
	src := "!SIM: cpu 30m\n!SIM: echo kernel ran\nprogram p\nend program\n"
	j := job("cle", "T3E", []ajo.Action{
		&ajo.ImportTask{
			Header: ajo.Header{ActionID: "imp", ActionName: "stage source"},
			Source: ajo.ImportSource{Inline: []byte(src)},
			To:     "main.f90",
		},
		&ajo.CompileTask{
			TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "cc", ActionName: "compile"},
				Resources: resources.Request{Processors: 1, RunTime: time.Hour}},
			Language: "f90", Sources: []string{"main.f90"}, Output: "main.o",
		},
		&ajo.LinkTask{
			TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "ld", ActionName: "link"},
				Resources: resources.Request{Processors: 1, RunTime: time.Hour}},
			Objects: []string{"main.o"}, Libraries: []string{"MPI"}, Output: "a.out",
		},
		&ajo.ExecuteTask{
			TaskBase: ajo.TaskBase{Header: ajo.Header{ActionID: "run", ActionName: "run"},
				Resources: resources.Request{Processors: 16, RunTime: 2 * time.Hour}},
			Executable: "a.out",
		},
	}, []ajo.Dependency{
		{Before: "imp", After: "cc"},
		{Before: "cc", After: "ld"},
		{Before: "ld", After: "run"},
	})
	id, err := n.Consign(context.Background(), alice, "", j)
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.RunUntilIdle(1000000)
	o, _, _ := n.Outcome(alice, false, id)
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("status = %s\n%s", o.Status, o.Render(4))
	}
	run, _ := o.Find("run")
	if !strings.Contains(string(run.Stdout), "kernel ran") {
		t.Fatalf("run stdout = %q", run.Stdout)
	}
}
