package njs

import (
	"bytes"
	"context"
	"fmt"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/staging"
)

// This file implements the distributed side of the NJS: "split [the job]
// into the job groups destined for different sites, distribute and control
// the job groups" (§5.5), and the NJS–NJS file transfer of §5.6. Sub-jobs
// for the local Usite are expanded in place; sub-jobs for other Usites are
// consigned to the peer NJS through that site's gateway and polled until
// terminal.

// startSubJobLocked dispatches a nested AbstractJob.
func (n *NJS) startSubJobLocked(uj *unicoreJob, sub *ajo.AbstractJob) {
	o := uj.outcomes[sub.ID()]
	o.Status = ajo.StatusRunning

	// Stage dependency files produced by predecessors into the sub-job as
	// injected inline imports.
	subCopy, err := injectImports(sub, uj.injections[sub.ID()])
	if err != nil {
		n.completeActionLocked(uj, sub.ID(), ajo.StatusFailed, fmt.Sprintf("staging sub-job: %v", err))
		return
	}
	subCopy.UserDN = uj.owner
	if subCopy.Project == "" {
		subCopy.Project = uj.job.Project
	}

	if subCopy.Target.Usite == n.usite {
		n.startLocalSubJobLocked(uj, subCopy)
		return
	}
	n.startRemoteSubJobLocked(uj, subCopy)
}

// startLocalSubJobLocked expands a sub-job at this Usite (same or different
// Vsite) as a child unicoreJob.
func (n *NJS) startLocalSubJobLocked(uj *unicoreJob, sub *ajo.AbstractJob) {
	vs, ok := n.vsites[sub.Target.Vsite]
	if !ok {
		n.completeActionLocked(uj, sub.ID(), ajo.StatusFailed,
			fmt.Sprintf("sub-job: %v: %q", ErrUnknownVsite, sub.Target.Vsite))
		return
	}
	if n.mapLogin == nil {
		n.completeActionLocked(uj, sub.ID(), ajo.StatusFailed, ErrNoMapper.Error())
		return
	}
	login, err := n.mapLogin(uj.owner, sub.Target.Vsite)
	if err != nil {
		n.completeActionLocked(uj, sub.ID(), ajo.StatusFailed, fmt.Sprintf("sub-job mapping: %v", err))
		return
	}
	// admit locks the fresh child while this job's lock is held —
	// ancestor→descendant, the allowed direction. If the child finishes
	// synchronously during admission, its finalizer schedules the
	// parent-side completion through the clock.
	childID, err := n.admit(uj.owner, login, sub, vs, &parentLink{job: uj.id, action: sub.ID()}, "")
	if err != nil {
		n.completeActionLocked(uj, sub.ID(), ajo.StatusFailed, fmt.Sprintf("sub-job admit: %v", err))
		return
	}
	uj.children[sub.ID()] = childID
}

// startRemoteSubJobLocked consigns a sub-job to a peer Usite and starts the
// poll loop. The network call is deferred through the clock so it runs with
// no job lock held — a consign to a peer must never block Poll/Control on
// this job behind a network round trip. The peer client is also checked only
// when the deferred call runs, so a recovered NJS may re-dispatch remote
// sub-jobs before SetPeers has been re-wired.
func (n *NJS) startRemoteSubJobLocked(uj *unicoreJob, sub *ajo.AbstractJob) {
	raw, err := ajo.Marshal(sub)
	if err != nil {
		n.completeActionLocked(uj, sub.ID(), ajo.StatusFailed, fmt.Sprintf("encoding sub-job: %v", err))
		return
	}
	jobID, aid, usite := uj.id, sub.ID(), sub.Target.Usite
	consignID := fmt.Sprintf("%s/%s", jobID, aid)
	n.clock.AfterFunc(0, func() { n.consignRemote(jobID, aid, usite, consignID, raw) })
}

// consignRemote performs the lock-free half of a remote sub-job dispatch:
// the peer consignment call, then (re-locking the job) recording the remote
// reference and arming the poll loop.
func (n *NJS) consignRemote(jobID core.JobID, aid ajo.ActionID, usite core.Usite, consignID string, raw []byte) {
	if n.dead.Load() {
		return
	}
	var reply protocol.ConsignReply
	err := fmt.Errorf("njs: no peer client configured for %s", usite)
	if peers := n.peerClient(); peers != nil {
		err = peers.Call(context.Background(), usite, protocol.MsgConsign,
			protocol.ConsignRequest{ConsignID: consignID, AJO: raw}, &reply)
	}

	uj, ok := n.job(jobID)
	if !ok {
		return
	}
	uj.mu.Lock()
	o := uj.outcomes[aid]
	if o == nil || o.Status.Terminal() {
		// Aborted while the consign was in flight. If the peer accepted,
		// that job is now orphaned — abort it best-effort, outside the lock.
		uj.mu.Unlock()
		if peers := n.peerClient(); err == nil && reply.Accepted && peers != nil {
			_ = peers.Call(context.Background(), usite, protocol.MsgControl,
				protocol.ControlRequest{Job: reply.Job, Op: ajo.OpAbort}, nil)
		}
		return
	}
	defer uj.mu.Unlock()
	if err != nil {
		n.completeActionLocked(uj, aid, ajo.StatusFailed,
			fmt.Sprintf("consigning to %s: %v", usite, err))
		n.finalizeIfDoneLocked(uj)
		return
	}
	if !reply.Accepted {
		n.completeActionLocked(uj, aid, ajo.StatusFailed,
			fmt.Sprintf("peer %s refused: %s", usite, reply.Reason))
		n.finalizeIfDoneLocked(uj)
		return
	}
	ref := &remoteRef{usite: usite, job: reply.Job}
	uj.remote[aid] = ref
	n.recordRemote(uj, aid, ref)
	n.scheduleRemotePollLocked(jobID, aid, ref)
}

// scheduleRemotePollLocked arms the next status poll for a remote sub-job.
func (n *NJS) scheduleRemotePollLocked(jobID core.JobID, aid ajo.ActionID, ref *remoteRef) {
	ref.timer = n.clock.AfterFunc(remotePollInterval, func() {
		n.pollRemote(jobID, aid)
	})
}

// pollRemote checks a remote sub-job; on terminal status it retrieves the
// outcome and completes the action. The network calls happen without any
// lock held; only the owning job is locked to read and advance its state.
func (n *NJS) pollRemote(jobID core.JobID, aid ajo.ActionID) {
	if n.dead.Load() {
		return
	}
	uj, ok := n.job(jobID)
	if !ok {
		return
	}
	uj.mu.Lock()
	ref, ok := uj.remote[aid]
	if !ok || uj.outcomes[aid].Status.Terminal() {
		uj.mu.Unlock()
		return
	}
	usite, remoteJob := ref.usite, ref.job
	uj.mu.Unlock()

	var poll protocol.PollReply
	err := fmt.Errorf("njs: no peer client configured for %s", usite)
	if peers := n.peerClient(); peers != nil {
		err = peers.Call(context.Background(), usite, protocol.MsgPoll, protocol.PollRequest{Job: remoteJob}, &poll)
	}

	uj.mu.Lock()
	ref, ok = uj.remote[aid]
	if !ok { // aborted while the poll was in flight
		uj.mu.Unlock()
		return
	}
	if err != nil || !poll.Found {
		ref.failures++
		if ref.failures > remoteMaxFailures {
			n.completeActionLocked(uj, aid, ajo.StatusFailed,
				fmt.Sprintf("lost contact with %s after %d attempts: %v", usite, ref.failures, err))
			n.finalizeIfDoneLocked(uj)
			uj.mu.Unlock()
			return
		}
		n.scheduleRemotePollLocked(jobID, aid, ref)
		uj.mu.Unlock()
		return
	}
	ref.failures = 0
	if !poll.Summary.Status.Terminal() {
		n.scheduleRemotePollLocked(jobID, aid, ref)
		uj.mu.Unlock()
		return
	}
	// Terminal: fetch the full outcome (best effort — the summary already
	// tells us the status).
	status := poll.Summary.Status
	uj.mu.Unlock()

	var oreply protocol.OutcomeReply
	oerr := fmt.Errorf("njs: no peer client configured for %s", usite)
	if peers := n.peerClient(); peers != nil {
		oerr = peers.Call(context.Background(), usite, protocol.MsgOutcome, protocol.OutcomeRequest{Job: remoteJob}, &oreply)
	}

	uj.mu.Lock()
	defer uj.mu.Unlock()
	if _, ok := uj.remote[aid]; !ok { // aborted while fetching the outcome
		return
	}
	o := uj.outcomes[aid]
	if o == nil || o.Status.Terminal() {
		return
	}
	if oerr == nil && oreply.Found {
		if remote, err := ajo.UnmarshalOutcome(oreply.Outcome); err == nil {
			o.Children = remote.Children
			o.Started = remote.Started
		}
	}
	reason := ""
	if status != ajo.StatusSuccessful {
		reason = fmt.Sprintf("remote sub-job %s at %s finished %s", remoteJob, usite, status)
	}
	n.completeActionLocked(uj, aid, status, reason)
	n.finalizeIfDoneLocked(uj)
}

// fetchRemoteFile pulls one file from a remote job's Uspace via the peer
// gateway (the NJS–NJS transfer path of §5.6), on the shared windowed
// streaming engine: parallel ranged MsgTransfer requests, chunk-level
// retries, and incremental whole-file CRC verification — a file that mutates
// under the transfer surfaces as an error instead of assembling garbage.
func (n *NJS) fetchRemoteFile(usite core.Usite, job core.JobID, file string) ([]byte, error) {
	peers := n.peerClient()
	if peers == nil {
		return nil, fmt.Errorf("njs: no peer client configured for %s", usite)
	}
	src := func(ctx context.Context, offset, limit int64) (staging.Chunk, error) {
		var reply protocol.TransferReply
		err := peers.Call(ctx, usite, protocol.MsgTransfer, protocol.TransferRequest{
			Job: job, File: file, Offset: offset, Limit: limit,
		}, &reply)
		if err != nil {
			return staging.Chunk{}, err
		}
		if !reply.Found {
			return staging.Chunk{}, fmt.Errorf("%w: %s has no file %q in job %s", staging.ErrNotFound, usite, file, job)
		}
		return staging.Chunk{Data: reply.Data, Size: reply.Size, CRC: reply.CRC}, nil
	}
	var buf bytes.Buffer
	if _, err := staging.Download(context.Background(), src, &buf, staging.Options{}); err != nil {
		return nil, fmt.Errorf("njs: transferring %q from %s: %w", file, usite, err)
	}
	return buf.Bytes(), nil
}

// injectImports deep-copies a sub-job and prepends inline ImportTasks for
// the staged dependency files, wiring them before every original root.
func injectImports(sub *ajo.AbstractJob, injections []injection) (*ajo.AbstractJob, error) {
	raw, err := ajo.Marshal(sub)
	if err != nil {
		return nil, err
	}
	back, err := ajo.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	cp, ok := back.(*ajo.AbstractJob)
	if !ok {
		return nil, fmt.Errorf("njs: sub-job decoded as %T", back)
	}
	if len(injections) == 0 {
		return cp, nil
	}
	g, err := cp.Graph()
	if err != nil {
		return nil, err
	}
	roots := g.Roots()
	for i, inj := range injections {
		imp := &ajo.ImportTask{
			Header: ajo.Header{
				ActionID:   ajo.ActionID(fmt.Sprintf("staged-%02d", i)),
				ActionName: fmt.Sprintf("staged dependency file %s", inj.name),
			},
			Source: ajo.ImportSource{Inline: inj.data},
			To:     inj.name,
		}
		cp.Actions = append(cp.Actions, imp)
		for _, r := range roots {
			cp.Dependencies = append(cp.Dependencies, ajo.Dependency{
				Before: imp.ActionID,
				After:  ajo.ActionID(r),
			})
		}
	}
	if err := cp.Validate(); err != nil {
		return nil, fmt.Errorf("njs: injected sub-job invalid: %w", err)
	}
	return cp, nil
}
