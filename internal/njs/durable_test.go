package njs

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/journal"
	"unicore/internal/machine"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// newDurableNJS builds a journal-backed NJS over dir.
func newDurableNJS(t testing.TB, clock *sim.VirtualClock, dir string, snapshotEvery int) (*NJS, *journal.Store) {
	t.Helper()
	store, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	n, err := New(durableCfg(clock))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.SetLoginMapper(testMapper)
	n.AttachJournal(store, snapshotEvery)
	return n, store
}

func durableCfg(clock *sim.VirtualClock) Config {
	return Config{
		Usite: "FZJ",
		Clock: clock,
		Vsites: []VsiteConfig{
			{Name: "T3E", Profile: machine.CrayT3E(64)},
			{Name: "CLUSTER", Profile: machine.GenericCluster(8)},
		},
	}
}

func testMapper(dn core.DN, v core.Vsite) (uudb.Login, error) {
	return uudb.Login{UID: "u_" + strings.ToLower(dn.CommonName())}, nil
}

// crashRestart simulates a process death and restart: the old NJS is killed,
// the store is flushed and closed (the crash point is "right after the last
// fsync"), and a fresh NJS recovers from the directory.
func crashRestart(t testing.TB, old *NJS, store *journal.Store, clock *sim.VirtualClock, dir string, snapshotEvery int) (*NJS, *journal.Store) {
	t.Helper()
	if err := store.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	old.Kill()
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	store2, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	n, err := Recover(store2, durableCfg(clock), snapshotEvery)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	n.SetLoginMapper(testMapper)
	n.ResumeRecovered()
	return n, store2
}

// canonical renders an outcome tree without timestamps, for comparing a
// recovered run against an uninterrupted one.
func canonical(o *ajo.Outcome) string {
	var b strings.Builder
	var rec func(o *ajo.Outcome, depth int)
	rec = func(o *ajo.Outcome, depth int) {
		fmt.Fprintf(&b, "%s%s %s exit=%d stdout=%q files=%d\n",
			strings.Repeat("  ", depth), o.Action, o.Status, o.ExitCode, o.Stdout, len(o.Files))
		for _, c := range o.Children {
			rec(c, depth+1)
		}
	}
	rec(o, 0)
	return b.String()
}

func durableStagedJob(name string) *ajo.AbstractJob {
	b := &ajo.AbstractJob{
		Header: ajo.Header{ActionID: ajo.ActionID(name), ActionName: name},
		Target: core.Target{Usite: "FZJ", Vsite: "CLUSTER"},
	}
	imp := &ajo.ImportTask{
		Header: ajo.Header{ActionID: "imp"},
		Source: ajo.ImportSource{Inline: []byte("input for " + name)},
		To:     "input.dat",
	}
	run := script("run", "cat input.dat > used.tmp\ncpu 10m\nwrite result.dat 2048\necho "+name+" done\n")
	exp := &ajo.ExportTask{
		Header: ajo.Header{ActionID: "exp"}, From: "result.dat", ToXspace: "/results/" + name + ".dat",
	}
	b.Actions = ajo.ActionList{imp, run, exp}
	b.Dependencies = []ajo.Dependency{{Before: "imp", After: "run"}, {Before: "run", After: "exp"}}
	return b
}

func TestRecoverCompletedJobVerbatim(t *testing.T) {
	clock := sim.NewVirtualClock()
	dir := t.TempDir()
	n, store := newDurableNJS(t, clock, dir, 0)

	id, err := n.Consign(context.Background(), alice, "consign-1", durableStagedJob("done-before-crash"))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.RunUntilIdle(0)
	before, found, err := n.Outcome(alice, false, id)
	if err != nil || !found {
		t.Fatalf("Outcome before crash: %v found=%v", err, found)
	}
	if before.Status != ajo.StatusSuccessful {
		t.Fatalf("status before crash = %s", before.Status)
	}

	n2, store2 := crashRestart(t, n, store, clock, dir, 0)
	defer store2.Close()
	clock.RunUntilIdle(0)

	after, found, err := n2.Outcome(alice, false, id)
	if err != nil || !found {
		t.Fatalf("Outcome after recovery: %v found=%v", err, found)
	}
	// A job that was terminal before the crash recovers with full fidelity,
	// timestamps included.
	rawBefore, _ := ajo.MarshalOutcome(before)
	rawAfter, _ := ajo.MarshalOutcome(after)
	if string(rawBefore) != string(rawAfter) {
		t.Fatalf("terminal outcome changed across recovery:\nbefore: %s\nafter:  %s", rawBefore, rawAfter)
	}

	// The Uspace contents survived: the result file is still fetchable.
	reply, err := n2.FetchFileOwned(alice, false, id, "result.dat", 0, 1<<20)
	if err != nil || !reply.Found {
		t.Fatalf("FetchFile after recovery: %v found=%v", err, reply.Found)
	}
	if reply.Size != 2048 {
		t.Fatalf("result.dat size = %d", reply.Size)
	}
	// And the exported Xspace copy too.
	vs, _ := n2.Vsite("CLUSTER")
	if _, err := vs.Space.ReadXspace("/results/done-before-crash.dat"); err != nil {
		t.Fatalf("export lost: %v", err)
	}

	// The idempotent consign index survived: a retry returns the same job.
	again, err := n2.Consign(context.Background(), alice, "consign-1", durableStagedJob("done-before-crash"))
	if err != nil || again != id {
		t.Fatalf("consign retry after recovery: id=%s err=%v, want %s", again, err, id)
	}
}

func TestRecoverMidFlightMatchesUninterruptedRun(t *testing.T) {
	runOnce := func(crash bool) string {
		clock := sim.NewVirtualClock()
		dir := t.TempDir()
		n, store := newDurableNJS(t, clock, dir, 0)
		defer func() { _ = store }()

		var ids []core.JobID
		for i := 0; i < 6; i++ {
			id, err := n.Consign(context.Background(), alice, fmt.Sprintf("c-%d", i), durableStagedJob(fmt.Sprintf("wl-%02d", i)))
			if err != nil {
				t.Fatalf("Consign: %v", err)
			}
			ids = append(ids, id)
		}
		// Mid-workload: imports have landed, batch jobs are queued/running,
		// nothing is finished yet.
		clock.Advance(2 * time.Minute)

		if crash {
			n, store = crashRestart(t, n, store, clock, dir, 0)
		}
		defer store.Close()
		clock.RunUntilIdle(0)

		var b strings.Builder
		for _, id := range ids {
			o, found, err := n.Outcome(alice, false, id)
			if err != nil || !found {
				t.Fatalf("Outcome(%s): %v found=%v", id, err, found)
			}
			b.WriteString(canonical(o))
		}
		return b.String()
	}

	base := runOnce(false)
	crashed := runOnce(true)
	if base != crashed {
		t.Fatalf("recovered outcomes diverge from uninterrupted run:\n--- uninterrupted ---\n%s--- recovered ---\n%s", base, crashed)
	}
	if !strings.Contains(base, "SUCCESSFUL") {
		t.Fatalf("workload did not succeed:\n%s", base)
	}
}

func TestRecoverWithSnapshotCompaction(t *testing.T) {
	clock := sim.NewVirtualClock()
	dir := t.TempDir()
	// Aggressive cadence so several compactions happen mid-workload.
	n, store := newDurableNJS(t, clock, dir, 40)

	var ids []core.JobID
	for i := 0; i < 8; i++ {
		id, err := n.Consign(context.Background(), alice, "", durableStagedJob(fmt.Sprintf("snap-%02d", i)))
		if err != nil {
			t.Fatalf("Consign: %v", err)
		}
		ids = append(ids, id)
	}
	clock.RunUntilIdle(0)

	n2, store2 := crashRestart(t, n, store, clock, dir, 40)
	defer store2.Close()
	clock.RunUntilIdle(0)
	for _, id := range ids {
		o, found, err := n2.Outcome(alice, false, id)
		if err != nil || !found {
			t.Fatalf("Outcome(%s) after compacted recovery: %v found=%v", id, err, found)
		}
		if o.Status != ajo.StatusSuccessful {
			t.Fatalf("job %s = %s after compacted recovery", id, o.Status)
		}
	}
}

func TestRecoverHeldJobStaysHeld(t *testing.T) {
	clock := sim.NewVirtualClock()
	dir := t.TempDir()
	n, store := newDurableNJS(t, clock, dir, 0)

	// Hold before anything dispatches beyond the first actions.
	id, err := n.Consign(context.Background(), alice, "", durableStagedJob("held"))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	if err := n.Control(alice, false, id, ajo.OpHold); err != nil {
		t.Fatalf("Hold: %v", err)
	}
	clock.RunUntilIdle(0)

	n2, store2 := crashRestart(t, n, store, clock, dir, 0)
	defer store2.Close()
	clock.RunUntilIdle(0)

	poll, err := n2.Poll(alice, false, id)
	if err != nil || !poll.Found {
		t.Fatalf("Poll: %v", err)
	}
	if poll.Summary.Status.Terminal() {
		t.Fatalf("held job ran to %s across recovery", poll.Summary.Status)
	}
	if err := n2.Control(alice, false, id, ajo.OpResume); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	clock.RunUntilIdle(0)
	o, _, _ := n2.Outcome(alice, false, id)
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("resumed job = %s", o.Status)
	}
}

func TestRecoverAbortedJobStaysAborted(t *testing.T) {
	clock := sim.NewVirtualClock()
	dir := t.TempDir()
	n, store := newDurableNJS(t, clock, dir, 0)

	id, err := n.Consign(context.Background(), alice, "", durableStagedJob("aborted"))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	clock.Advance(time.Minute)
	if err := n.Control(alice, false, id, ajo.OpAbort); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	n2, store2 := crashRestart(t, n, store, clock, dir, 0)
	defer store2.Close()
	clock.RunUntilIdle(0)

	o, found, err := n2.Outcome(alice, false, id)
	if err != nil || !found {
		t.Fatalf("Outcome: %v found=%v", err, found)
	}
	if o.Status != ajo.StatusAborted {
		t.Fatalf("aborted job recovered as %s", o.Status)
	}
}

// TestRecoverPartialAbortFinishes covers a crash whose durable journal
// prefix ends right after an abort's KindControl entry but before the
// per-action cancellations: the job recovers aborted but non-terminal, and
// since dispatch refuses aborted jobs, ResumeRecovered must finish the abort
// or the job would stay non-terminal forever.
func TestRecoverPartialAbortFinishes(t *testing.T) {
	clock := sim.NewVirtualClock()
	store, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer store.Close()

	// Hand-write the torn prefix: admission, then only the abort control.
	raw, err := ajo.MarshalGob(durableStagedJob("torn-abort"))
	if err != nil {
		t.Fatalf("MarshalGob: %v", err)
	}
	store.Append(journal.Entry{Kind: journal.KindAdmit, Admit: &journal.Admission{
		Job: "FZJ-000001", Owner: string(alice), UID: "u_alice", Vsite: "CLUSTER", AJO: raw,
	}})
	store.Append(journal.Entry{Kind: journal.KindControl,
		Control: &journal.ControlEvent{Job: "FZJ-000001", Op: string(ajo.OpAbort)}})
	if err := store.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	n, err := Recover(store, durableCfg(clock), 0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	n.SetLoginMapper(testMapper)
	n.ResumeRecovered()
	clock.RunUntilIdle(0)

	o, found, err := n.Outcome(alice, false, "FZJ-000001")
	if err != nil || !found {
		t.Fatalf("Outcome: %v found=%v", err, found)
	}
	if o.Status != ajo.StatusAborted {
		t.Fatalf("partially aborted job recovered as %s, want ABORTED", o.Status)
	}
	for _, c := range o.Children {
		if !c.Status.Terminal() {
			t.Fatalf("action %s left non-terminal (%s) after resumed abort", c.Action, c.Status)
		}
	}
}

func TestRecoverLocalSubJobTree(t *testing.T) {
	runOnce := func(crash bool) string {
		clock := sim.NewVirtualClock()
		dir := t.TempDir()
		n, store := newDurableNJS(t, clock, dir, 0)

		// Parent at CLUSTER with a sub-job at T3E (same Usite) feeding a
		// transfer — exercises child recovery and the parent/child links.
		sub := &ajo.AbstractJob{
			Header: ajo.Header{ActionID: "pre", ActionName: "pre"},
			Target: core.Target{Usite: "FZJ", Vsite: "T3E"},
			Actions: ajo.ActionList{
				script("prep", "cpu 5m\nwrite prepped.dat 1024\necho prepped\n"),
			},
		}
		parent := &ajo.AbstractJob{
			Header: ajo.Header{ActionID: "parent", ActionName: "parent"},
			Target: core.Target{Usite: "FZJ", Vsite: "CLUSTER"},
			Actions: ajo.ActionList{
				sub,
				&ajo.TransferTask{Header: ajo.Header{ActionID: "tr"}, FromAction: "pre", Files: []string{"prepped.dat"}},
				script("main", "cat prepped.dat > staged.tmp\ncpu 5m\necho main done\n"),
			},
			Dependencies: []ajo.Dependency{
				{Before: "pre", After: "tr"},
				{Before: "tr", After: "main"},
			},
		}
		id, err := n.Consign(context.Background(), alice, "", parent)
		if err != nil {
			t.Fatalf("Consign: %v", err)
		}
		clock.Advance(90 * time.Second) // sub-job in flight

		if crash {
			n, store = crashRestart(t, n, store, clock, dir, 0)
		}
		defer store.Close()
		clock.RunUntilIdle(0)

		o, found, err := n.Outcome(alice, false, id)
		if err != nil || !found {
			t.Fatalf("Outcome: %v found=%v", err, found)
		}
		return canonical(o)
	}

	base := runOnce(false)
	crashed := runOnce(true)
	if base != crashed {
		t.Fatalf("sub-job recovery diverged:\n--- uninterrupted ---\n%s--- recovered ---\n%s", base, crashed)
	}
	if !strings.Contains(base, "SUCCESSFUL") {
		t.Fatalf("sub-job workload failed:\n%s", base)
	}
}

// TestConsignAckIsDurable is the regression for acknowledging a consignment
// before its admission record is durable: the site dies immediately after the
// Consign call returns — no explicit SyncJournal, no store.Close flushing on
// its behalf — and the acknowledged job must still be recoverable and run to
// completion.
func TestConsignAckIsDurable(t *testing.T) {
	clock := sim.NewVirtualClock()
	dir := t.TempDir()
	n, store := newDurableNJS(t, clock, dir, 0)

	id, err := n.Consign(context.Background(), alice, "ack-1", durableStagedJob("acked"))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	// Crash right after the ack: the dead store is abandoned (never synced or
	// closed), so only what Consign itself made durable is on disk.
	n.Kill()
	defer store.Close()

	store2, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close()
	n2, err := Recover(store2, durableCfg(clock), 0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	n2.SetLoginMapper(testMapper)
	n2.ResumeRecovered()
	clock.RunUntilIdle(0)

	o, found, err := n2.Outcome(alice, false, id)
	if err != nil || !found {
		t.Fatalf("acknowledged job lost across crash: %v found=%v", err, found)
	}
	if o.Status != ajo.StatusSuccessful {
		t.Fatalf("recovered job = %s", o.Status)
	}
	// The idempotent consign index recovered with it.
	again, err := n2.Consign(context.Background(), alice, "ack-1", durableStagedJob("acked"))
	if err != nil || again != id {
		t.Fatalf("consign retry: id=%s err=%v, want %s", again, err, id)
	}
}

// BenchmarkConsignDurable drives concurrent consignments with journaling
// attached: the journal append is an enqueue on the batched flusher, so
// adding durability must not serialize the Consign hot path.
func BenchmarkConsignDurable(b *testing.B) {
	clock := sim.NewVirtualClock()
	n, store := newDurableNJS(b, clock, b.TempDir(), 0)
	defer store.Close()
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if _, err := n.Consign(context.Background(), alice, "", durableStagedJob(fmt.Sprintf("bench-%06d", i))); err != nil {
				b.Fatalf("Consign: %v", err)
			}
		}
	})
	b.StopTimer()
	if err := store.Sync(); err != nil {
		b.Fatalf("Sync: %v", err)
	}
}

// BenchmarkJournalRecover measures boot-time recovery: replaying a journal
// holding many completed jobs (plus their Uspace contents) into a fresh NJS.
func BenchmarkJournalRecover(b *testing.B) {
	clock := sim.NewVirtualClock()
	dir := b.TempDir()
	n, store := newDurableNJS(b, clock, dir, 0)
	const jobs = 50
	for i := 0; i < jobs; i++ {
		if _, err := n.Consign(context.Background(), alice, "", durableStagedJob(fmt.Sprintf("bench-%03d", i))); err != nil {
			b.Fatalf("Consign: %v", err)
		}
	}
	clock.RunUntilIdle(0)
	if err := store.Sync(); err != nil {
		b.Fatalf("Sync: %v", err)
	}
	n.Kill()
	if err := store.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := journal.Open(dir)
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		rn, err := Recover(store, durableCfg(clock), 0)
		if err != nil {
			b.Fatalf("Recover: %v", err)
		}
		rn.Kill()
		store.Close()
	}
}
