package njs

// This file is the NJS's staged-upload surface (protocol v2): bulk job
// inputs are streamed into a per-user spool area on the Vsite's data space
// through MsgPutOpen/MsgPutChunk/MsgPutCommit before the AJO is consigned,
// so a huge ImportTask references a transfer handle instead of carrying its
// payload inline in the signed consign envelope (§5.6 grown to production
// scale). The spool lives entirely in the Vsite file system, so a journaled
// NJS persists acknowledged chunks through the ordinary vfs observer and
// recovery rebuilds the spool index with Rescan.

import (
	"fmt"
	"time"

	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/staging"
	"unicore/internal/telemetry"
)

// SpoolRoot is where each Vsite's staged-upload spool lives on its data
// space, beside the Xspace and Uspace roots.
const SpoolRoot = "/spool"

// DefaultSpoolTTL is how long an unconsumed staged upload survives before a
// sweep collects it — committed-but-never-consigned uploads included.
const DefaultSpoolTTL = 24 * time.Hour

// stageAck makes the preceding spool mutation durable before it is
// acknowledged — the same write-ahead contract as Consign: an acked chunk
// must survive a crash. If the NJS was killed between the mutation and the
// sync, the ack is refused; the client's idempotent re-send converges.
func (n *NJS) stageAck() error {
	if err := n.SyncJournal(); err != nil {
		return err
	}
	if n.dead.Load() {
		return ErrDown
	}
	return nil
}

// spoolOf resolves the Vsite spool holding a transfer handle.
func (n *NJS) spoolOf(handle string) (*staging.Spool, bool) {
	for _, name := range n.VsiteNames() {
		sp := n.spools[name]
		if _, ok := sp.Stat(handle); ok {
			return sp, true
		}
	}
	return nil, false
}

// StagingSpool exposes a Vsite's spool (deployment sweeps and testbed
// introspection).
func (n *NJS) StagingSpool(v core.Vsite) (*staging.Spool, bool) {
	sp, ok := n.spools[v]
	return sp, ok
}

// StagedHandles reports every transfer handle spooled at this NJS (across
// its Vsites) — pool.StageReporter: a replica pool consults it when this NJS
// joins or rejoins a set, so handle→replica pins survive pool restarts and
// replica recovery.
func (n *NJS) StagedHandles() []string {
	var out []string
	for _, name := range n.VsiteNames() {
		out = append(out, n.spools[name].Handles()...)
	}
	return out
}

// SweepStaging garbage-collects every Vsite's spool: consumed uploads go
// immediately, abandoned ones (never committed, or committed but never
// consigned) once older than ttl. Returns how many uploads were removed.
func (n *NJS) SweepStaging(ttl time.Duration) int {
	total := 0
	for _, name := range n.VsiteNames() {
		total += n.spools[name].Sweep(ttl)
	}
	return total
}

// StageOpen begins a staged upload into a Vsite's spool and returns its
// transfer handle (protocol v2). The caller DN owns the upload; only it may
// send chunks, commit, or consign an ImportTask referencing the handle.
func (n *NJS) StageOpen(caller core.DN, asServer bool, req protocol.PutOpenRequest) (protocol.PutOpenReply, error) {
	if n.dead.Load() {
		return protocol.PutOpenReply{}, ErrDown
	}
	sp, ok := n.spools[req.Vsite]
	if !ok {
		return protocol.PutOpenReply{}, fmt.Errorf("%w: %q", ErrUnknownVsite, req.Vsite)
	}
	info, err := sp.Open(caller, req.Name, req.ChunkSize, req.Window)
	if err != nil {
		return protocol.PutOpenReply{}, err
	}
	if err := n.stageAck(); err != nil {
		return protocol.PutOpenReply{}, err
	}
	return protocol.PutOpenReply{Handle: info.Handle, ChunkSize: info.ChunkSize, Window: info.Window}, nil
}

// StageChunk stores one CRC-checked chunk of a staged upload (protocol v2).
// Delivery is idempotent — a re-send after a lost reply is acknowledged
// without rewriting — and the ack is durable before it is sent.
func (n *NJS) StageChunk(caller core.DN, asServer bool, req protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	if n.dead.Load() {
		return protocol.PutChunkReply{}, ErrDown
	}
	sp, ok := n.spoolOf(req.Handle)
	if !ok {
		return protocol.PutChunkReply{}, fmt.Errorf("%w: %q", staging.ErrUnknownHandle, req.Handle)
	}
	received, err := sp.Chunk(caller, req.Handle, req.Index, req.Data, req.CRC)
	if err != nil {
		n.tel.Counter("staging_chunk_errors_total").Inc()
		return protocol.PutChunkReply{}, err
	}
	n.tel.Counter("staging_chunks_total").Inc()
	n.tel.Counter("staging_bytes_total").Add(uint64(len(req.Data)))
	if err := n.stageAck(); err != nil {
		return protocol.PutChunkReply{}, err
	}
	return protocol.PutChunkReply{Received: received}, nil
}

// StageCommit seals a staged upload after verifying the whole-file CRC
// (protocol v2). A sealed upload is what an ImportTask's Staged reference may
// consume; committing twice with the same CRC is acknowledged idempotently.
func (n *NJS) StageCommit(caller core.DN, asServer bool, req protocol.PutCommitRequest) (protocol.PutCommitReply, error) {
	if n.dead.Load() {
		return protocol.PutCommitReply{}, ErrDown
	}
	sp, ok := n.spoolOf(req.Handle)
	if !ok {
		return protocol.PutCommitReply{}, fmt.Errorf("%w: %q", staging.ErrUnknownHandle, req.Handle)
	}
	start := time.Now()
	info, err := sp.Commit(caller, req.Handle, req.CRC)
	if err != nil {
		return protocol.PutCommitReply{}, err
	}
	n.tel.Histogram("staging_commit_seconds", telemetry.ScaleSeconds).ObserveSince(start)
	n.tel.Histogram("staging_upload_bytes", telemetry.ScaleBytes).Observe(float64(info.Size))
	if err := n.stageAck(); err != nil {
		return protocol.PutCommitReply{}, err
	}
	return protocol.PutCommitReply{Size: info.Size, CRC: info.CRC, Chunks: info.Chunks}, nil
}
